# Tier-1 verification gate and developer targets.
GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)

.PHONY: build test check race-core race-serve vet-obs fuzz-smoke loadtest-smoke yieldstream-smoke bench bench-compare bench-prune catalog

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: static analysis plus the full test suite under
# the race detector. ./... covers the golden-regression tests (root package
# and cmd/sramopt) and the serving layer's coalescing/drain tests, so check
# is also the service e2e gate. The core search engine and the server are
# explicitly concurrent — run this before every commit touching either. The
# branch-and-bound parity and best-so-far race gates run first and verbosely,
# so a pruning correctness break is named in the output, not buried in ./...
check: vet-obs
	$(GO) vet ./...
	$(GO) test -race -run 'TestBranchAndBound|TestAtomicMinNeverRegresses' -v ./internal/core/
	$(GO) test -race ./...
	$(MAKE) loadtest-smoke
	$(MAKE) yieldstream-smoke

# race-core is the fast inner loop: only the search-engine package under the
# race detector.
race-core:
	$(GO) test -race ./internal/core/...

# race-serve gates the HTTP serving layer on its own: the cache, coalescing,
# drain and deadline tests under the race detector.
race-serve:
	$(GO) test -race ./internal/serve/...

# fuzz-smoke runs each fuzz target briefly — long enough to catch a fresh
# decoder panic or validation regression, short enough for CI. The committed
# corpora under */testdata/fuzz seed every run.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz=FuzzDecodeBatch -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz=FuzzConfigNormalize -fuzztime=$(FUZZTIME) ./internal/mc/
	$(GO) test -fuzz=FuzzOptionsNormalize -fuzztime=$(FUZZTIME) ./internal/core/

# loadtest-smoke drives a short closed-loop load burst through an in-process
# sramd with the real request mix; -check fails the target on zero recorded
# throughput, any transport error or any 5xx, so a serving-path regression
# that only shows under concurrency breaks the gate, not production.
loadtest-smoke:
	$(GO) run ./cmd/sramload -self -c 4 -warmup 500ms -duration 2s -check -report /dev/null

# yieldstream-smoke exercises the streaming Monte Carlo engine end to end: a
# scrambled-Sobol run must converge inside a 10% relative CI on μ-3σ before
# exhausting its 256-sample budget, or the early-stop machinery is broken.
yieldstream-smoke:
	$(GO) run ./cmd/mcyield -stream -rel-ci 0.1 -n 256 -sampler sobol -metric hsnm -seed 2 | grep -q 'converged inside rel CI'

# vet-obs gates the observability layer on its own: vet plus the obs package
# under the race detector (the sink/registry state is global and concurrent).
vet-obs:
	$(GO) vet ./internal/obs/... ./internal/cliutil/...
	$(GO) test -race ./internal/obs/...

# bench runs every benchmark across the module and archives the machine-
# readable log as BENCH_<date>.json for regression comparison.
bench:
	$(GO) test -json -bench=. -benchmem -run='^$$'  -count=3 ./... | tee BENCH_$(BENCH_DATE).json

# bench-compare re-runs the search hot-path benchmarks and fails if either
# regressed by more than 10% against the most recent archived BENCH_<date>.json
# baseline. The current log is written to a name the baseline glob cannot
# match, so an aborted run never becomes tomorrow's baseline. Each benchmark
# runs -count=3 and benchcompare keeps the fastest run, so one slow iteration
# on a loaded machine does not fail the gate.
BENCH_BASELINE = $(shell ls BENCH_2*.json 2>/dev/null | sort | tail -n 1)
bench-compare:
	@test -n "$(BENCH_BASELINE)" || { echo "bench-compare: no BENCH_<date>.json baseline; run 'make bench' first"; exit 1; }
	$(GO) test -json -bench='^(BenchmarkExhaustiveSearch16KB|BenchmarkExhaustiveSearch16KBPruned|BenchmarkHybridSearch16KB|BenchmarkModelEvaluation|BenchmarkMonteCarloYieldBatched)$$' -benchmem -run='^$$'  -count=3 . > bench_current.tmp.json || { rm -f bench_current.tmp.json; exit 1; }
	$(GO) test -json -bench='^(BenchmarkServeOptimizeCached|BenchmarkServeOptimizeCatalogHit|BenchmarkBatch64)$$' -benchmem -run='^$$'  -count=3 ./internal/serve/ >> bench_current.tmp.json || { rm -f bench_current.tmp.json; exit 1; }
	$(GO) test -json -bench='^BenchmarkCatalogLookup$$' -benchmem -run='^$$'  -count=3 ./internal/catalog/ >> bench_current.tmp.json || { rm -f bench_current.tmp.json; exit 1; }
	$(GO) test -json -bench='^BenchmarkEvalBlock$$' -benchmem -run='^$$'  -count=3 ./internal/array/ >> bench_current.tmp.json || { rm -f bench_current.tmp.json; exit 1; }
	$(GO) run ./cmd/benchcompare -baseline $(BENCH_BASELINE) -current bench_current.tmp.json \
		BenchmarkExhaustiveSearch16KB BenchmarkExhaustiveSearch16KBPruned BenchmarkHybridSearch16KB BenchmarkModelEvaluation \
		BenchmarkMonteCarloYieldBatched \
		BenchmarkServeOptimizeCached BenchmarkServeOptimizeCatalogHit BenchmarkBatch64 \
		BenchmarkCatalogLookup BenchmarkEvalBlock; \
		status=$$?; rm -f bench_current.tmp.json; exit $$status

# bench-prune prints the branch-and-bound evaluated/pruned/skipped breakdown
# for the golden capacity grid, so a bound change that prunes less — while
# staying correct — is visible in review as an efficiency drop.
bench-prune:
	$(GO) run ./cmd/prunestats

# catalog precomputes the default design-space grid into catalog.bin; sramd
# loads it with -catalog and answers grid lookups without running a search.
CATALOG ?= catalog.bin
catalog:
	$(GO) run ./cmd/sramcat build -o $(CATALOG)
