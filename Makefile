# Tier-1 verification gate and developer targets.
GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)

.PHONY: build test check race-core vet-obs bench bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: static analysis plus the full test suite under
# the race detector. The core search engine is explicitly concurrent — run
# this before every commit touching internal/core.
check: vet-obs
	$(GO) vet ./...
	$(GO) test -race ./...

# race-core is the fast inner loop: only the search-engine package under the
# race detector.
race-core:
	$(GO) test -race ./internal/core/...

# vet-obs gates the observability layer on its own: vet plus the obs package
# under the race detector (the sink/registry state is global and concurrent).
vet-obs:
	$(GO) vet ./internal/obs/... ./internal/cliutil/...
	$(GO) test -race ./internal/obs/...

# bench runs every benchmark across the module and archives the machine-
# readable log as BENCH_<date>.json for regression comparison.
bench:
	$(GO) test -json -bench=. -benchmem -run='^$$' ./... | tee BENCH_$(BENCH_DATE).json

# bench-compare re-runs the search hot-path benchmarks and fails if either
# regressed by more than 10% against the most recent archived BENCH_<date>.json
# baseline. The current log is written to a name the baseline glob cannot
# match, so an aborted run never becomes tomorrow's baseline.
BENCH_BASELINE = $(shell ls BENCH_2*.json 2>/dev/null | sort | tail -n 1)
bench-compare:
	@test -n "$(BENCH_BASELINE)" || { echo "bench-compare: no BENCH_<date>.json baseline; run 'make bench' first"; exit 1; }
	$(GO) test -json -bench='^(BenchmarkExhaustiveSearch16KB|BenchmarkModelEvaluation)$$' -benchmem -run='^$$' . > bench_current.tmp.json || { rm -f bench_current.tmp.json; exit 1; }
	$(GO) run ./cmd/benchcompare -baseline $(BENCH_BASELINE) -current bench_current.tmp.json \
		BenchmarkExhaustiveSearch16KB BenchmarkModelEvaluation; \
		status=$$?; rm -f bench_current.tmp.json; exit $$status
