# Tier-1 verification gate and developer targets.
GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)

.PHONY: build test check race-core vet-obs bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: static analysis plus the full test suite under
# the race detector. The core search engine is explicitly concurrent — run
# this before every commit touching internal/core.
check: vet-obs
	$(GO) vet ./...
	$(GO) test -race ./...

# race-core is the fast inner loop: only the search-engine package under the
# race detector.
race-core:
	$(GO) test -race ./internal/core/...

# vet-obs gates the observability layer on its own: vet plus the obs package
# under the race detector (the sink/registry state is global and concurrent).
vet-obs:
	$(GO) vet ./internal/obs/... ./internal/cliutil/...
	$(GO) test -race ./internal/obs/...

# bench runs every benchmark across the module and archives the machine-
# readable log as BENCH_<date>.json for regression comparison.
bench:
	$(GO) test -json -bench=. -benchmem -run='^$$' ./... | tee BENCH_$(BENCH_DATE).json
