# Tier-1 verification gate and developer targets.
GO ?= go

.PHONY: build test check race-core bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the tier-1 gate: static analysis plus the full test suite under
# the race detector. The core search engine is explicitly concurrent — run
# this before every commit touching internal/core.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# race-core is the fast inner loop: only the search-engine package under the
# race detector.
race-core:
	$(GO) test -race ./internal/core/...

# bench regenerates every paper table/figure metric (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem -run='^$$'
