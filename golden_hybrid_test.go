package sramco

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sramco/internal/array"
	"sramco/internal/core"
	"sramco/internal/device"
)

const goldenHybridPath = "testdata/golden_hybrid.json"

// hybridGoldenRow is one committed min-PADP optimum of the hybrid
// cell-assignment study: the full design tuple (including the new
// group/mask/mux dimensions) plus every evaluated metric.
type hybridGoldenRow struct {
	Label  string `json:"label"` // "lvt", "hvt" or "hybrid-g8"
	Groups int    `json:"groups,omitempty"`
	Mask   uint32 `json:"group_mask,omitempty"`

	NR     int `json:"nr"`
	NC     int `json:"nc"`
	Npre   int `json:"npre"`
	Nwr    int `json:"nwr"`
	WLSegs int `json:"wl_segs,omitempty"`
	Mux    int `json:"mux,omitempty"`

	VDDC float64 `json:"vddc_v"`
	VSSC float64 `json:"vssc_v"`
	VWL  float64 `json:"vwl_v"`

	DelayS  float64 `json:"delay_s"`
	EnergyJ float64 `json:"energy_j"`
	EDP     float64 `json:"edp_js"`
	AreaM2  float64 `json:"area_m2"`
	PADP    float64 `json:"padp_jsm2"`
}

type hybridGoldenFile struct {
	Comment string            `json:"comment"`
	Rows    []hybridGoldenRow `json:"rows"`
}

// computeGoldenHybrid runs the three 16 KB M2 min-PADP searches the hybrid
// study compares: pure LVT, pure HVT, and the 8-group hybrid assignment,
// all over the same search space with the column-mux dimension enabled
// (mux ratios up to 4). The study is pinned to the all-columns energy
// accounting and a read-dominated workload (α = 1): under the default
// worst-case-path accounting the 16 KB leakage term dominates so completely
// that the all-HVT mask is optimal and the hybrid dimension degenerates;
// with switching energy fully charged, keeping the one far-from-the-sense-
// amps row group LVT buys back the bitline delay the HVT groups cost, and
// the mixed assignment wins strictly.
func computeGoldenHybrid(t *testing.T) *hybridGoldenFile {
	t.Helper()
	fw, err := NewFrameworkWithAccounting(TechPaper, array.AllColumns)
	if err != nil {
		t.Fatalf("NewFrameworkWithAccounting: %v", err)
	}
	padp, ok := ObjectiveByName("padp")
	if !ok {
		t.Fatal("padp objective missing")
	}
	g := &hybridGoldenFile{
		Comment: "Min-PADP optima at 16 KB / M2 under all-columns accounting with alpha=1, mux<=4: pure LVT, pure HVT, and the 8-group hybrid; regenerate with: go test -run TestGoldenHybrid -update .",
	}
	for _, tc := range []struct {
		label  string
		flavor device.Flavor
		groups int
	}{
		{"lvt", device.LVT, 0},
		{"hvt", device.HVT, 0},
		{"hybrid-g8", device.LVT, 8},
	} {
		sp := core.DefaultSpace()
		sp.MuxMax = 4
		opts := Options{
			CapacityBits: 16 * 1024 * 8,
			Flavor:       tc.flavor,
			Method:       M2,
			Objective:    padp,
			Activity:     array.Activity{Alpha: 1, Beta: 0.5},
			HybridGroups: tc.groups,
			Space:        sp,
		}
		opt, err := fw.OptimizeWith(opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		d, r := opt.Best.Design, opt.Best.Result
		g.Rows = append(g.Rows, hybridGoldenRow{
			Label:  tc.label,
			Groups: d.Groups,
			Mask:   d.GroupMask,
			NR:     d.Geom.NR, NC: d.Geom.NC, Npre: d.Geom.Npre, Nwr: d.Geom.Nwr,
			WLSegs: d.Geom.WLSegs, Mux: d.Geom.Mux,
			VDDC: d.VDDC, VSSC: d.VSSC, VWL: d.VWL,
			DelayS: r.DArray, EnergyJ: r.EArray, EDP: r.EDP,
			AreaM2: r.Area, PADP: r.PADP,
		})
	}
	return g
}

// TestGoldenHybrid pins the hybrid study's headline: at 16 KB under the
// min-PADP objective, mixing cell flavors per row group beats both pure
// flavors strictly — the committed rows lock the winning assignment, its
// mux ratio and every metric.
func TestGoldenHybrid(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid 16 KB searches skipped in -short mode")
	}
	got := computeGoldenHybrid(t)

	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenHybridPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenHybridPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d rows)", goldenHybridPath, len(got.Rows))
		return
	}

	buf, err := os.ReadFile(goldenHybridPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want hybridGoldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row count %d, golden has %d", len(got.Rows), len(want.Rows))
	}
	const relTol = 1e-9
	byLabel := map[string]hybridGoldenRow{}
	for i, w := range want.Rows {
		g := got.Rows[i]
		byLabel[w.Label] = w
		if g.Label != w.Label {
			t.Fatalf("row %d is %q, golden expects %q (ordering changed?)", i, g.Label, w.Label)
		}
		if g.Groups != w.Groups || g.Mask != w.Mask || g.Mux != w.Mux || g.WLSegs != w.WLSegs {
			t.Errorf("%s: hybrid tuple (groups,mask,mux,segs) = (%d,%#x,%d,%d), golden (%d,%#x,%d,%d)",
				w.Label, g.Groups, g.Mask, g.Mux, g.WLSegs, w.Groups, w.Mask, w.Mux, w.WLSegs)
		}
		if g.NR != w.NR || g.NC != w.NC || g.Npre != w.Npre || g.Nwr != w.Nwr {
			t.Errorf("%s: geometry (nr,nc,npre,nwr) = (%d,%d,%d,%d), golden (%d,%d,%d,%d)",
				w.Label, g.NR, g.NC, g.Npre, g.Nwr, w.NR, w.NC, w.Npre, w.Nwr)
		}
		for _, c := range []struct {
			label     string
			got, want float64
		}{
			{"vddc", g.VDDC, w.VDDC},
			{"vssc", g.VSSC, w.VSSC},
			{"vwl", g.VWL, w.VWL},
			{"delay", g.DelayS, w.DelayS},
			{"energy", g.EnergyJ, w.EnergyJ},
			{"edp", g.EDP, w.EDP},
			{"area", g.AreaM2, w.AreaM2},
			{"padp", g.PADP, w.PADP},
		} {
			if !closeRel(c.got, c.want, relTol) {
				t.Errorf("%s: %s = %g, golden %g", w.Label, c.label, c.got, c.want)
			}
		}
	}

	// The acceptance property: the hybrid assignment beats both pure
	// flavors strictly on PADP — in the committed file and in the live run.
	for _, rows := range []map[string]hybridGoldenRow{byLabel, {
		"lvt": got.Rows[0], "hvt": got.Rows[1], "hybrid-g8": got.Rows[2],
	}} {
		hyb, lvt, hvt := rows["hybrid-g8"], rows["lvt"], rows["hvt"]
		if !(hyb.PADP < lvt.PADP && hyb.PADP < hvt.PADP) {
			t.Errorf("hybrid PADP %g is not strictly below pure LVT %g and pure HVT %g",
				hyb.PADP, lvt.PADP, hvt.PADP)
		}
		if hyb.Mask == 0 || hyb.Mask == (1<<uint(hyb.Groups))-1 {
			t.Errorf("winning mask %#x is a pure assignment — the hybrid dimension added nothing", hyb.Mask)
		}
	}
}
