// Quickstart: optimize a single SRAM array with the public sramco API.
//
// It builds the paper-calibrated framework, finds the minimum-EDP design of
// a 4 KB array using HVT cells with unrestricted assist rails (method M2),
// and prints a Table-4-style design row with its delay/energy/EDP.
package main

import (
	"fmt"

	"sramco"
	"sramco/internal/cliutil"
)

func main() {
	cliutil.SetName("quickstart")

	fw, err := sramco.NewFramework(sramco.TechPaper)
	if err != nil {
		cliutil.Fatalf("characterization failed: %v", err)
	}

	const capacityBytes = 4 * 1024
	best, err := fw.Optimize(capacityBytes, sramco.HVT, sramco.M2)
	if err != nil {
		cliutil.Fatalf("optimization failed: %v", err)
	}

	d, r := best.Best.Design, best.Best.Result
	fmt.Printf("Minimum-EDP design for a %d-byte 6T-HVT array (M2):\n", capacityBytes)
	fmt.Printf("  organization:  %d rows x %d columns (W=%d bits/access)\n", d.Geom.NR, d.Geom.NC, d.Geom.W)
	fmt.Printf("  fin sizing:    N_pre=%d  N_wr=%d\n", d.Geom.Npre, d.Geom.Nwr)
	fmt.Printf("  assist rails:  VDDC=%.0fmV  VSSC=%.0fmV  VWL=%.0fmV\n", d.VDDC*1e3, d.VSSC*1e3, d.VWL*1e3)
	fmt.Printf("  delay:         %.1f ps (read %.1f / write %.1f)\n", r.DArray*1e12, r.DRead*1e12, r.DWrite*1e12)
	fmt.Printf("  energy:        %.2f fJ per cycle (leakage share %.0f%%)\n", r.EArray*1e15, 100*r.ELeak/r.EArray)
	fmt.Printf("  EDP:           %.3g J*s\n", r.EDP)
	fmt.Printf("  search cost:   %d analytical model evaluations\n", best.Evaluated)
	fmt.Printf("  search stats:  %s\n", best.Stats)
}
