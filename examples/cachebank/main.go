// Cachebank: size the data array of an L1 cache bank.
//
// A 16 KB L1 data bank with a 64-bit access port is the workload the paper's
// introduction motivates: leakage-dominated capacity where HVT cells shine.
// This example compares all four configurations (LVT/HVT × M1/M2), prints
// the trade-off table, and recommends the minimum-EDP design, also showing
// how the recommendation shifts for a read-heavy workload (β = 0.9).
package main

import (
	"fmt"

	"sramco"
	"sramco/internal/cliutil"
	"sramco/internal/obs"
)

const bankBytes = 16 * 1024

func main() {
	cliutil.SetName("cachebank")

	fw, err := sramco.NewFramework(sramco.TechPaper)
	if err != nil {
		cliutil.Fatalf("characterization failed: %v", err)
	}

	type entry struct {
		name string
		opt  *sramco.Optimum
	}
	var entries []entry
	for _, cfg := range []struct {
		name   string
		flavor sramco.Flavor
		method sramco.Method
	}{
		{"6T-LVT-M1", sramco.LVT, sramco.M1},
		{"6T-HVT-M1", sramco.HVT, sramco.M1},
		{"6T-LVT-M2", sramco.LVT, sramco.M2},
		{"6T-HVT-M2", sramco.HVT, sramco.M2},
	} {
		opt, err := fw.Optimize(bankBytes, cfg.flavor, cfg.method)
		if err != nil {
			cliutil.Fatalf("%s: %v", cfg.name, err)
		}
		entries = append(entries, entry{cfg.name, opt})
	}

	fmt.Printf("16 KB L1 data bank, balanced workload (alpha=0.5, beta=0.5):\n")
	fmt.Printf("%-11s %9s %9s %12s %8s %14s\n", "config", "delay", "energy", "EDP (J*s)", "n_r*n_c", "VSSC")
	best := entries[0]
	for _, e := range entries {
		r := e.opt.Best.Result
		d := e.opt.Best.Design
		fmt.Printf("%-11s %7.1fps %7.1ffJ %12.3g %4dx%-4d %8.0fmV\n",
			e.name, r.DArray*1e12, r.EArray*1e15, r.EDP, d.Geom.NR, d.Geom.NC, d.VSSC*1e3)
		if r.EDP < best.opt.Best.Result.EDP {
			best = e
		}
	}
	fmt.Printf("-> recommended: %s (%.0f%% lower EDP than 6T-LVT-M2, %.0f%% delay penalty)\n\n",
		best.name,
		100*(1-best.opt.Best.Result.EDP/entries[2].opt.Best.Result.EDP),
		100*(best.opt.Best.Result.DArray/entries[2].opt.Best.Result.DArray-1))

	// Read-heavy variant: an instruction-cache-like port (90% reads).
	fmt.Printf("Read-heavy variant (beta=0.9):\n")
	for _, cfg := range []struct {
		name   string
		flavor sramco.Flavor
	}{{"6T-LVT-M2", sramco.LVT}, {"6T-HVT-M2", sramco.HVT}} {
		opt, err := fw.OptimizeWith(sramco.Options{
			CapacityBits: bankBytes * 8,
			Flavor:       cfg.flavor,
			Method:       sramco.M2,
			Activity:     sramco.Activity{Alpha: 0.5, Beta: 0.9},
		})
		if err != nil {
			cliutil.Fatalf("%s: %v", cfg.name, err)
		}
		r := opt.Best.Result
		fmt.Printf("  %-11s delay %.1fps energy %.1ffJ EDP %.3g\n",
			cfg.name, r.DArray*1e12, r.EArray*1e15, r.EDP)
	}

	// Scale up: a 64 KB L2 slice partitioned into banks (extension beyond
	// the paper's 16 KB single-array scope).
	fmt.Printf("\n64 KB HVT-M2 slice, bank partitioning sweep:\n")
	sweep, err := fw.Core().BankSweep(sramco.Options{
		CapacityBits: 64 * 1024 * 8,
		Flavor:       sramco.HVT,
		Method:       sramco.M2,
	}, 8)
	if err != nil {
		cliutil.Fatalf("bank sweep: %v", err)
	}
	for _, s := range sweep {
		fmt.Printf("  %d bank(s) of %4dx%-4d: delay %.1fps (wire %.1fps) energy %.1ffJ EDP %.3g\n",
			s.Banks, s.PerBank.Design.Geom.NR, s.PerBank.Design.Geom.NC,
			s.DArray*1e12, (s.WireDelay+s.BankDecDelay)*1e12, s.EArray*1e15, s.EDP)
	}

	fmt.Printf("\ntotal work: %s\n",
		obs.Default().StatsLine("core.search.runs", "core.search.evaluated", "array.evaluations"))
}
