// Yield: reproduce the paper's Monte Carlo rationale for δ = 0.35·Vdd.
//
// The paper (§2) states that, under the random variation of single-fin 7 nm
// FinFETs, cell margins must exceed 35% of Vdd for a high-yield array. This
// example samples the 6T-HVT cell's read SNM with and without the Vdd-boost
// assist and shows how the assist moves the margin distribution above δ.
package main

import (
	"fmt"

	"sramco"
	"sramco/internal/cell"
	"sramco/internal/cliutil"
)

func main() {
	cliutil.SetName("yield")
	const samples = 48
	delta := sramco.Delta()

	fmt.Printf("Monte Carlo read-SNM yield of 6T-HVT (%d samples, σVt=25mV, δ=%.0fmV):\n\n",
		samples, delta*1e3)

	for _, pt := range []struct {
		name string
		vddc float64
	}{
		{"no assist (VDDC = Vdd)", sramco.Vdd},
		{"Vdd boost (VDDC = 550mV)", 0.550},
		{"Vdd boost (VDDC = 640mV)", 0.640},
	} {
		read := cell.NominalRead(sramco.Vdd)
		read.VDDC = pt.vddc
		res, err := sramco.MonteCarloYield(sramco.MCConfig{
			Flavor:  sramco.HVT,
			N:       samples,
			Seed:    2016, // the paper's year, for reproducibility
			Read:    read,
			Metrics: 2, // RSNM only
		})
		if err != nil {
			cliutil.Fatalf("%v", err)
		}
		s := res.RSNM
		fmt.Printf("%-26s mean=%.0fmV σ=%.1fmV min=%.0fmV μ-3σ=%.0fmV fail(δ)=%.0f%%  [%s]\n",
			pt.name, s.Mean*1e3, s.Std*1e3, s.Min*1e3, (s.Mean-3*s.Std)*1e3,
			res.FailFraction(delta)*100, res.Stats)
	}

	fmt.Println("\nThe boost lifts μ-3σ above δ, which is exactly why the paper pins")
	fmt.Println("VDDC at the minimum level meeting the constraint before searching the")
	fmt.Println("remaining array variables.")
}
