// Assistexplorer: interactively explore the assist-technique trade-offs of
// paper §3 on the simulated 6T cell.
//
// For every catalogued technique it sweeps the knob voltage and prints the
// affected margin together with the cost metric (bitline delay for read
// assists, nothing is free!), annotating which techniques the paper adopts.
package main

import (
	"fmt"

	"sramco/internal/assist"
	"sramco/internal/cell"
	"sramco/internal/cliutil"
	"sramco/internal/device"
	"sramco/internal/exp"
	"sramco/internal/obs"
	"sramco/internal/unit"
)

func main() {
	cliutil.SetName("assistexplorer")
	vdd := device.Vdd
	flavor := device.HVT
	delta := 0.35 * vdd

	fmt.Printf("Assist techniques on 6T-%v at Vdd=%s (yield target: margins >= %s)\n\n",
		flavor, unit.Volts(vdd), unit.Volts(delta))

	for _, tech := range assist.All() {
		status := "evaluated, rejected by the paper"
		if tech.Adopted() {
			status = "ADOPTED by the paper"
		}
		fmt.Printf("--- %s (%s assist; %s) ---\n", tech, tech.Kind(), status)
		switch tech {
		case assist.VddBoost:
			rows, err := exp.Fig3b(flavor, vdd, []float64{0.45, 0.50, 0.55, 0.60, 0.64})
			exitOn(err)
			printRead("VDDC", rows, delta)
		case assist.NegativeGnd:
			rows, err := exp.Fig3c(flavor, vdd, []float64{0, -0.06, -0.12, -0.18, -0.24})
			exitOn(err)
			printRead("VSSC", rows, delta)
		case assist.WLUnderdrive:
			rows, err := exp.Fig3d(flavor, vdd, []float64{0.45, 0.40, 0.35, 0.30})
			exitOn(err)
			printRead("VWL", rows, delta)
		case assist.WLOverdrive:
			rows, err := exp.Fig5a(flavor, vdd, []float64{0.45, 0.49, 0.54, 0.58, 0.62})
			exitOn(err)
			printWrite("VWL", rows, delta)
		case assist.NegativeBL:
			rows, err := exp.Fig5b(flavor, vdd, []float64{0, -0.05, -0.10, -0.15})
			exitOn(err)
			printWrite("VBL", rows, delta)
		}
		fmt.Println()
	}

	// Show the combined operating point the paper lands on.
	c := cell.New(flavor)
	rb := cell.ReadBias{Vdd: vdd, VDDC: 0.55, VSSC: -0.24, VWL: vdd}
	rsnm, err := c.ReadSNM(rb)
	exitOn(err)
	ir, err := c.ReadCurrent(rb)
	exitOn(err)
	fmt.Printf("Combined read assists (VDDC=550mV + VSSC=-240mV): RSNM=%s, I_read=%s\n",
		unit.Volts(rsnm), unit.Amps(ir))

	fmt.Printf("\nsimulator work: %s\n", obs.Default().StatsLine(
		"cell.vtc.sweeps", "cell.snm.extractions", "cell.write.trip_searches",
		"circuit.dc.op_solves", "circuit.tran.runs", "circuit.newton.iterations"))
}

func printRead(knob string, rows []exp.AssistRow, delta float64) {
	for _, r := range rows {
		mark := " "
		if r.RSNM >= delta {
			mark = "*" // meets yield
		}
		fmt.Printf("  %s=%7s  RSNM=%7s%s  I_read=%8s  BL delay(64 cells)=%s\n",
			knob, unit.Volts(r.V), unit.Volts(r.RSNM), mark, unit.Amps(r.IRead), unit.Seconds(r.BLDelay))
	}
}

func printWrite(knob string, rows []exp.WriteAssistRow, delta float64) {
	for _, r := range rows {
		mark := " "
		if r.WM >= delta {
			mark = "*"
		}
		fmt.Printf("  %s=%7s  WM=%7s%s  cell write delay=%s\n",
			knob, unit.Volts(r.V), unit.Volts(r.WM), mark, unit.Seconds(r.WriteDelay))
	}
}

func exitOn(err error) {
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
}
