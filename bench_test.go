// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark reports the headline metric of its experiment via
// b.ReportMetric so that `go test -bench=. -benchmem` doubles as the
// reproduction harness; EXPERIMENTS.md records the paper-vs-measured values.
package sramco

import (
	"sync"
	"testing"

	"sramco/internal/array"
	"sramco/internal/core"
	"sramco/internal/device"
	"sramco/internal/exp"
)

var (
	benchOnce sync.Once
	benchFW   *Framework
	benchErr  error
)

func benchFramework(b *testing.B) *Framework {
	b.Helper()
	benchOnce.Do(func() { benchFW, benchErr = NewFramework(TechPaper) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchFW
}

// BenchmarkFig2HoldSNMAndLeakage regenerates Fig. 2: HSNM and leakage power
// of 6T-LVT vs 6T-HVT over the supply sweep. Reported metric: the leakage
// ratio at nominal Vdd (paper: ≈20×).
func BenchmarkFig2HoldSNMAndLeakage(b *testing.B) {
	vdds := []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig2(vdds)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		ratio = last.LeakLVT / last.LeakHVT
	}
	b.ReportMetric(ratio, "leak-ratio@450mV")
}

// BenchmarkFig3ReadAssists regenerates Figs. 3(a)-(d): the LVT/HVT read
// comparison and the three read-assist sweeps. Reported metric: the RSNM
// ratio of HVT to LVT (paper: 1.9×).
func BenchmarkFig3ReadAssists(b *testing.B) {
	var rsnmRatio float64
	for i := 0; i < b.N; i++ {
		a, err := exp.Fig3a(Vdd)
		if err != nil {
			b.Fatal(err)
		}
		rsnmRatio = a.RSNMRatio()
		if _, err := exp.Fig3b(HVT, Vdd, []float64{0.45, 0.50, 0.55, 0.60, 0.64}); err != nil {
			b.Fatal(err)
		}
		if _, err := exp.Fig3c(HVT, Vdd, []float64{0, -0.06, -0.12, -0.18, -0.24}); err != nil {
			b.Fatal(err)
		}
		if _, err := exp.Fig3d(HVT, Vdd, []float64{0.45, 0.40, 0.35, 0.30}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rsnmRatio, "RSNM-HVT/LVT")
}

// BenchmarkFig5WriteAssists regenerates Fig. 5: the wordline-overdrive and
// negative-bitline write-assist sweeps. Reported metric: the write margin
// at the paper's HVT operating point VWL = 540 mV (paper: exactly δ).
func BenchmarkFig5WriteAssists(b *testing.B) {
	var wm540 float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig5a(HVT, Vdd, []float64{0.45, 0.49, 0.54, 0.58})
		if err != nil {
			b.Fatal(err)
		}
		wm540 = rows[2].WM
		if _, err := exp.Fig5b(HVT, Vdd, []float64{0, -0.05, -0.10}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(wm540*1e3, "WM@540mV-mV")
}

// BenchmarkReadCurrentFit regenerates the §5 read-current law fit
// I_read = b·(V_DDC−V_SSC−V_t)^a. Reported metric: the fitted exponent a
// (paper: 1.3).
func BenchmarkReadCurrentFit(b *testing.B) {
	var a float64
	for i := 0; i < b.N; i++ {
		r, err := exp.ReadCurrentFit(Vdd)
		if err != nil {
			b.Fatal(err)
		}
		a = r.A
	}
	b.ReportMetric(a, "exponent-a")
}

// BenchmarkTable4Optimize regenerates Table 4: the optimal design
// parameters for all five capacities × four configurations. Reported
// metric: total model evaluations across all 20 searches.
func BenchmarkTable4Optimize(b *testing.B) {
	fw := benchFramework(b)
	var evals int
	for i := 0; i < b.N; i++ {
		rows, err := fw.Table4(PaperCapacities())
		if err != nil {
			b.Fatal(err)
		}
		evals = 0
		for _, r := range rows {
			evals += r.Evaluated
		}
	}
	b.ReportMetric(float64(evals), "model-evals")
}

// BenchmarkFig7DelayEnergyEDP regenerates Fig. 7(a)-(d) and the abstract's
// headline statistics. Reported metrics: average EDP reduction and maximum
// delay penalty of HVT-M2 vs LVT-M2 for 1-16 KB (paper: 59 % and 12 %).
func BenchmarkFig7DelayEnergyEDP(b *testing.B) {
	fw := benchFramework(b)
	var h *Headline
	var blReduction float64
	for i := 0; i < b.N; i++ {
		rows, err := fw.Table4(PaperCapacities())
		if err != nil {
			b.Fatal(err)
		}
		if h, err = HeadlineStats(rows); err != nil {
			b.Fatal(err)
		}
		f7d := exp.Fig7d(rows)
		blReduction = 0
		for _, r := range f7d {
			blReduction += r.BLDelayM1 / r.BLDelayM2
		}
		blReduction /= float64(len(f7d))
	}
	b.ReportMetric(h.AvgEDPReduction*100, "EDP-reduction-%")
	b.ReportMetric(h.MaxDelayPenalty*100, "max-delay-penalty-%")
	b.ReportMetric(blReduction, "avg-BL-delay-reduction-x")
}

// BenchmarkExhaustiveSearch16KB measures the cost of the paper's largest
// single exhaustive search (16 KB; the paper reports the whole §5 sweep
// completes in under two minutes on a 2016 server), on the default
// branch-and-bound path. The space-points metric is the full candidate
// space (Evaluated + SkippedRSNM + PrunedBound) — constant whether or not
// pruning fires — so benchcompare can normalize to ns per candidate point
// instead of misreading a pruning change as a latency shift.
func BenchmarkExhaustiveSearch16KB(b *testing.B) {
	fw := benchFramework(b)
	var stats SearchStats
	for i := 0; i < b.N; i++ {
		opt, err := fw.Optimize(16*1024, HVT, M2)
		if err != nil {
			b.Fatal(err)
		}
		stats = opt.Stats
	}
	b.ReportMetric(float64(stats.Evaluated+stats.SkippedRSNM+stats.PrunedBound), "space-points")
	b.ReportMetric(float64(stats.Evaluated), "model-evals")
	b.ReportMetric(float64(stats.PrunedBound), "pruned-bound")
	b.ReportMetric(float64(stats.Chunks), "chunks")
	b.ReportMetric(float64(stats.Workers), "workers")
}

// BenchmarkExhaustiveSearch16KBPruned pins the branch-and-bound path
// explicitly (the default path falls back to full enumeration only for
// custom objectives) and reports the evaluated/pruned/skipped breakdown, so
// a bound going loose — pruning less while staying correct — shows up in the
// bench log as a bound-eff drop, not just latency drift.
func BenchmarkExhaustiveSearch16KBPruned(b *testing.B) {
	fw := benchFramework(b)
	opts := core.Options{CapacityBits: 16 * 1024 * 8, Flavor: device.HVT, Method: core.M2}
	var stats SearchStats
	for i := 0; i < b.N; i++ {
		opt, err := fw.Core().Optimize(opts)
		if err != nil {
			b.Fatal(err)
		}
		stats = opt.Stats
	}
	b.ReportMetric(float64(stats.Evaluated+stats.SkippedRSNM+stats.PrunedBound), "space-points")
	b.ReportMetric(float64(stats.Evaluated), "model-evals")
	b.ReportMetric(float64(stats.PrunedBound), "pruned-bound")
	b.ReportMetric(float64(stats.SkippedTotal()), "skipped")
	b.ReportMetric(stats.BoundEfficiency(), "bound-eff")
}

// BenchmarkAblationGreedyVsExhaustive compares the greedy coordinate-descent
// searcher against the exhaustive optimum on the 4 KB HVT-M2 case.
// Reported metrics: greedy/exhaustive EDP ratio and evaluation counts.
func BenchmarkAblationGreedyVsExhaustive(b *testing.B) {
	fw := benchFramework(b)
	opts := core.Options{CapacityBits: 4 * 1024 * 8, Flavor: device.HVT, Method: core.M2}
	var ratio, gEvals float64
	for i := 0; i < b.N; i++ {
		full, err := fw.Core().Optimize(opts)
		if err != nil {
			b.Fatal(err)
		}
		greedy, err := fw.Core().GreedyOptimize(opts)
		if err != nil {
			b.Fatal(err)
		}
		ratio = greedy.Best.Result.EDP / full.Best.Result.EDP
		gEvals = float64(greedy.Evaluated)
	}
	b.ReportMetric(ratio, "greedy/exhaustive-EDP")
	b.ReportMetric(gEvals, "greedy-evals")
}

// BenchmarkAblationEnergyAccounting re-runs the 16 KB headline comparison
// under the all-columns energy interpretation (DESIGN.md note 1),
// confirming the conclusion is not an artifact of the default accounting.
// Reported metric: EDP reduction of HVT-M2 vs LVT-M2 at 16 KB.
func BenchmarkAblationEnergyAccounting(b *testing.B) {
	fw, err := NewFrameworkWithAccounting(TechPaper, AllColumns)
	if err != nil {
		b.Fatal(err)
	}
	var red float64
	for i := 0; i < b.N; i++ {
		lvt, err := fw.Optimize(16*1024, LVT, M2)
		if err != nil {
			b.Fatal(err)
		}
		hvt, err := fw.Optimize(16*1024, HVT, M2)
		if err != nil {
			b.Fatal(err)
		}
		red = 1 - hvt.Best.Result.EDP/lvt.Best.Result.EDP
	}
	b.ReportMetric(red*100, "EDP-reduction-%")
}

// BenchmarkAblationRailRestriction quantifies what the M1 single-rail
// restriction costs across the paper's capacities. Reported metric: average
// M1/M2 EDP ratio for the HVT arrays.
func BenchmarkAblationRailRestriction(b *testing.B) {
	fw := benchFramework(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = 0
		for _, bits := range PaperCapacities() {
			m1, err := fw.OptimizeWith(Options{CapacityBits: bits, Flavor: HVT, Method: M1})
			if err != nil {
				b.Fatal(err)
			}
			m2, err := fw.OptimizeWith(Options{CapacityBits: bits, Flavor: HVT, Method: M2})
			if err != nil {
				b.Fatal(err)
			}
			ratio += m1.Best.Result.EDP / m2.Best.Result.EDP
		}
		ratio /= float64(len(PaperCapacities()))
	}
	b.ReportMetric(ratio, "M1/M2-EDP")
}

// BenchmarkMonteCarloYield measures the Monte Carlo margin analysis used to
// justify δ = 0.35·Vdd (paper §2). Reported metric: fraction of HVT samples
// whose read SNM falls below δ at nominal bias.
func BenchmarkMonteCarloYield(b *testing.B) {
	var fail float64
	for i := 0; i < b.N; i++ {
		r, err := MonteCarloYield(MCConfig{Flavor: HVT, N: 16, Seed: 7, Metrics: 2 /* RSNM */})
		if err != nil {
			b.Fatal(err)
		}
		fail = r.FailFraction(Delta())
	}
	b.ReportMetric(fail*100, "RSNM-fail-%")
}

// BenchmarkMonteCarloYieldBatched measures the per-sample cost of the
// batched Monte Carlo hot path: full-sim HSNM characterization through the
// reusable per-worker scratch netlists. The samples metric (draws per op)
// lets benchcompare normalize to ns per sample, so a change in the
// benchmark's N is not misread as a latency shift.
func BenchmarkMonteCarloYieldBatched(b *testing.B) {
	const n = 32
	cfg := MCConfig{Flavor: HVT, N: n, Seed: 7, Metrics: 1 /* HSNM */}
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarloYield(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(n, "samples")
}

// BenchmarkAblationFinFreeze quantifies the value of the N_pre/N_wr fin
// sizing freedom the paper adds to the search (DESIGN.md ablation list):
// the same 4 KB HVT-M2 search with both fin counts frozen at 1. Reported
// metric: frozen/free EDP ratio.
func BenchmarkAblationFinFreeze(b *testing.B) {
	fw := benchFramework(b)
	free := core.Options{CapacityBits: 4 * 1024 * 8, Flavor: device.HVT, Method: core.M2}
	frozen := free
	frozen.Space = core.DefaultSpace()
	frozen.Space.NpreMax = 1
	frozen.Space.NwrMax = 1
	var ratio float64
	for i := 0; i < b.N; i++ {
		f, err := fw.Core().Optimize(free)
		if err != nil {
			b.Fatal(err)
		}
		z, err := fw.Core().Optimize(frozen)
		if err != nil {
			b.Fatal(err)
		}
		ratio = z.Best.Result.EDP / f.Best.Result.EDP
	}
	b.ReportMetric(ratio, "frozen/free-EDP")
}

// BenchmarkParetoFront measures full energy-delay frontier extraction for
// the 4 KB HVT-M2 space (extension beyond the paper's single-objective
// search). Reported metric: frontier size.
func BenchmarkParetoFront(b *testing.B) {
	fw := benchFramework(b)
	var size float64
	for i := 0; i < b.N; i++ {
		front, err := fw.ParetoFront(Options{CapacityBits: 4 * 1024 * 8, Flavor: HVT, Method: M2})
		if err != nil {
			b.Fatal(err)
		}
		size = float64(len(front))
	}
	b.ReportMetric(size, "frontier-points")
}

// BenchmarkExtCornerAnalysis characterizes the paper's HVT-M2 operating
// point across all five process corners (extension). Reported metric:
// worst-corner RSNM in mV.
func BenchmarkExtCornerAnalysis(b *testing.B) {
	read := ReadBias{Vdd: Vdd, VDDC: 0.55, VSSC: -0.24, VWL: Vdd}
	write := WriteBias{Vdd: Vdd, VWL: 0.54, VBL: 0}
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := CornerAnalysis(HVT, read, write)
		if err != nil {
			b.Fatal(err)
		}
		worst = rows[0].RSNM
		for _, r := range rows {
			if r.RSNM < worst {
				worst = r.RSNM
			}
		}
	}
	b.ReportMetric(worst*1e3, "worst-corner-RSNM-mV")
}

// BenchmarkExtTemperatureSweep characterizes the HVT cell from -20 C to
// 125 C (extension). Reported metric: hot/cold leakage ratio.
func BenchmarkExtTemperatureSweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := TemperatureSweep(HVT, ReadBias{Vdd: Vdd, VDDC: Vdd, VSSC: 0, VWL: Vdd},
			[]float64{253, 300, 348, 398})
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[len(rows)-1].Leak / rows[0].Leak
	}
	b.ReportMetric(ratio, "leak-125C/-20C")
}

// BenchmarkExtVddScaling runs the supply-scaling-vs-HVT extension
// experiment (fully simulated rails at each supply; §1 argument). Reported
// metric: EDP of LVT@350mV relative to HVT@450mV (expect > 1).
func BenchmarkExtVddScaling(b *testing.B) {
	if testing.Short() {
		b.Skip("per-Vdd characterization skipped in -short mode")
	}
	var rel float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.VddScaling(16*1024*8, []float64{0.35, 0.45})
		if err != nil {
			b.Fatal(err)
		}
		var lvtLow, hvtNom float64
		for _, r := range rows {
			if r.Vdd == 0.35 && r.Flavor == device.LVT {
				lvtLow = r.EDP
			}
			if r.Vdd == 0.45 && r.Flavor == device.HVT {
				hvtNom = r.EDP
			}
		}
		rel = lvtLow / hvtNom
	}
	b.ReportMetric(rel, "LVT@350mV/HVT@450mV-EDP")
}

// BenchmarkExtDividedWordline compares the flat wordline against the
// divided-wordline architecture extension under all-columns accounting
// (where segmentation pays: only the active segment's bitlines are
// disturbed). Reported metric: DWL/flat EDP at 16 KB HVT-M2.
func BenchmarkExtDividedWordline(b *testing.B) {
	fw, err := NewFrameworkWithAccounting(TechPaper, AllColumns)
	if err != nil {
		b.Fatal(err)
	}
	base := Options{CapacityBits: 16 * 1024 * 8, Flavor: HVT, Method: M2}
	var ratio, segs float64
	for i := 0; i < b.N; i++ {
		flat, err := fw.OptimizeWith(base)
		if err != nil {
			b.Fatal(err)
		}
		dwlOpts := base
		dwlOpts.SearchWLSegs = true
		dwl, err := fw.OptimizeWith(dwlOpts)
		if err != nil {
			b.Fatal(err)
		}
		ratio = dwl.Best.Result.EDP / flat.Best.Result.EDP
		segs = float64(dwl.Best.Design.Geom.Segments())
	}
	b.ReportMetric(ratio, "DWL/flat-EDP")
	b.ReportMetric(segs, "chosen-segments")
}

// BenchmarkSensitivity measures the local-optimality certificate around the
// 4 KB HVT-M2 optimum. Reported metric: the tightest neighbor ratio (≥ 1
// certifies the optimum).
func BenchmarkSensitivity(b *testing.B) {
	fw := benchFramework(b)
	opts := core.Options{CapacityBits: 4 * 1024 * 8, Flavor: device.HVT, Method: core.M2}
	opt, err := fw.Core().Optimize(opts)
	if err != nil {
		b.Fatal(err)
	}
	var tightest float64
	for i := 0; i < b.N; i++ {
		sens, err := fw.Core().SensitivityAt(opts, opt.Best)
		if err != nil {
			b.Fatal(err)
		}
		tightest = 1e18
		for _, s := range sens {
			for _, rel := range []float64{s.DownRel, s.UpRel} {
				if rel == rel && rel < tightest { // rel==rel filters NaN
					tightest = rel
				}
			}
		}
	}
	b.ReportMetric(tightest, "tightest-neighbor-rel")
}

// BenchmarkExtBankPartitioning extends the capacity axis beyond the paper's
// 16 KB: a 64 KB HVT-M2 macro optimized as 1-8 banks with a bank decoder
// and H-tree interconnect. Reported metrics: chosen bank count and the
// banked/monolithic EDP ratio.
func BenchmarkExtBankPartitioning(b *testing.B) {
	fw := benchFramework(b)
	opts := core.Options{CapacityBits: 64 * 1024 * 8, Flavor: device.HVT, Method: core.M2}
	var banks, ratio float64
	for i := 0; i < b.N; i++ {
		best, err := fw.Core().OptimizeBanked(opts, 8)
		if err != nil {
			b.Fatal(err)
		}
		mono, err := fw.Core().OptimizeBanked(opts, 1)
		if err != nil {
			b.Fatal(err)
		}
		banks = float64(best.Banks)
		ratio = best.EDP / mono.EDP
	}
	b.ReportMetric(banks, "chosen-banks")
	b.ReportMetric(ratio, "banked/monolithic-EDP")
}

// BenchmarkExtWorkloadSweep re-optimizes both flavors across activity
// factors (extension: the paper fixes α = β = 0.5). Reported metrics: HVT
// EDP gain at idle (α = 0.1) and busy (α = 1.0) 16 KB workloads.
func BenchmarkExtWorkloadSweep(b *testing.B) {
	fw := benchFramework(b)
	var idleGain, busyGain float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.WorkloadSweep(fw.Core(), 16*1024*8, []float64{0.1, 1.0}, []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Alpha == 0.1 {
				idleGain = r.HVTGain()
			} else {
				busyGain = r.HVTGain()
			}
		}
	}
	b.ReportMetric(idleGain*100, "idle-HVT-gain-%")
	b.ReportMetric(busyGain*100, "busy-HVT-gain-%")
}

// BenchmarkModelEvaluation measures a single analytical array-model
// evaluation — the inner loop of the exhaustive search.
func BenchmarkModelEvaluation(b *testing.B) {
	fw := benchFramework(b)
	opt, err := fw.Optimize(4*1024, HVT, M2)
	if err != nil {
		b.Fatal(err)
	}
	d := opt.Best.Design
	act := Activity{Alpha: 0.5, Beta: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Evaluate(HVT, d, act); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelEvaluationPrepared measures the same evaluation through the
// chunk-amortized engine the searchers actually use: the validation and the
// (n_r, n_c, rails)-invariant model terms are hoisted into one Prepare, the
// loop pays only the per-(N_pre, N_wr) terms. The gap to
// BenchmarkModelEvaluation is the per-point work the factorization removed.
func BenchmarkModelEvaluationPrepared(b *testing.B) {
	fw := benchFramework(b)
	opt, err := fw.Optimize(4*1024, HVT, M2)
	if err != nil {
		b.Fatal(err)
	}
	d := opt.Best.Design
	tech, err := fw.Core().ArrayTech(HVT)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := array.NewEvaluator(tech, array.Activity{Alpha: 0.5, Beta: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	if err := ev.Prepare(d.Geom, d.VDDC, d.VSSC, d.VWL); err != nil {
		b.Fatal(err)
	}
	var r array.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.EvalInto(d.Geom.Npre, d.Geom.Nwr, &r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridSearch16KB measures the enlarged hybrid search: the 16 KB
// min-PADP optimization over 8 row groups (every LVT/HVT assignment mask)
// and column-mux ratios up to 4 — the largest candidate space any search in
// the module covers, and the one that leans hardest on the branch-and-bound
// Evaluator. The space-points metric counts the full candidate space
// (Evaluated + SkippedRSNM + PrunedBound), so benchcompare normalizes to ns
// per candidate point and a bound change that merely prunes less does not
// masquerade as a latency shift.
func BenchmarkHybridSearch16KB(b *testing.B) {
	fw := benchFramework(b)
	padp, ok := ObjectiveByName("padp")
	if !ok {
		b.Fatal("padp objective missing")
	}
	sp := core.DefaultSpace()
	sp.MuxMax = 4
	opts := core.Options{
		CapacityBits: 16 * 1024 * 8,
		Flavor:       device.LVT,
		Method:       core.M2,
		Objective:    padp,
		HybridGroups: 8,
		Space:        sp,
	}
	var stats SearchStats
	for i := 0; i < b.N; i++ {
		opt, err := fw.Core().Optimize(opts)
		if err != nil {
			b.Fatal(err)
		}
		stats = opt.Stats
	}
	b.ReportMetric(float64(stats.Evaluated+stats.SkippedRSNM+stats.PrunedBound), "space-points")
	b.ReportMetric(float64(stats.Evaluated), "model-evals")
	b.ReportMetric(float64(stats.PrunedBound), "pruned-bound")
	b.ReportMetric(stats.BoundEfficiency(), "bound-eff")
}
