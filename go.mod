module sramco

go 1.22
