package sramco

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates testdata/golden_optima.json from the current model:
//
//	go test -run TestGoldenOptima -update .
var update = flag.Bool("update", false, "regenerate golden files")

const goldenPath = "testdata/golden_optima.json"

// goldenCapacities is the 1-16 KB headline window of the paper's abstract
// (the capacities over which the 59 % EDP-reduction claim is averaged).
func goldenCapacities() []int {
	return []int{
		1 * 1024 * 8,
		2 * 1024 * 8,
		4 * 1024 * 8,
		8 * 1024 * 8,
		16 * 1024 * 8,
	}
}

// goldenRow is one committed optimum: the min-EDP design tuple plus the
// evaluated delay/energy/EDP for a capacity × flavor × method cell.
type goldenRow struct {
	CapacityBits int    `json:"capacity_bits"`
	Flavor       string `json:"flavor"`
	Method       string `json:"method"` // m1 = no assists, m2 = VDDC/NegGnd/WL assists

	NR   int `json:"nr"`
	NC   int `json:"nc"`
	Npre int `json:"npre"`
	Nwr  int `json:"nwr"`

	VDDC float64 `json:"vddc_v"`
	VSSC float64 `json:"vssc_v"`
	VWL  float64 `json:"vwl_v"`

	DelayS  float64 `json:"delay_s"`
	EnergyJ float64 `json:"energy_j"`
	EDP     float64 `json:"edp_js"`
}

type goldenFile struct {
	Comment  string      `json:"comment"`
	Rows     []goldenRow `json:"rows"`
	Headline struct {
		AvgEDPReduction  float64 `json:"avg_edp_reduction"`
		AvgDelayPenalty  float64 `json:"avg_delay_penalty"`
		MaxDelayPenalty  float64 `json:"max_delay_penalty"`
		EDPReduction16KB float64 `json:"edp_reduction_16kb"`
	} `json:"headline"`
}

func computeGolden(t *testing.T) *goldenFile {
	t.Helper()
	fw, err := Default()
	if err != nil {
		t.Fatalf("Default: %v", err)
	}
	rows, err := fw.Table4(goldenCapacities())
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	h, err := HeadlineStats(rows)
	if err != nil {
		t.Fatalf("HeadlineStats: %v", err)
	}
	g := &goldenFile{
		Comment: "Min-EDP optima for 1-16 KB x {LVT,HVT} x {M1,M2}; regenerate with: go test -run TestGoldenOptima -update .",
	}
	for _, r := range rows {
		g.Rows = append(g.Rows, goldenRow{
			CapacityBits: r.CapacityBits,
			Flavor:       fmt.Sprint(r.Config.Flavor),
			Method:       fmt.Sprint(r.Config.Method),
			NR:           r.NR, NC: r.NC, Npre: r.Npre, Nwr: r.Nwr,
			VDDC: r.VDDC, VSSC: r.VSSC, VWL: r.VWL,
			DelayS: r.Delay, EnergyJ: r.Energy, EDP: r.EDP,
		})
	}
	g.Headline.AvgEDPReduction = h.AvgEDPReduction
	g.Headline.AvgDelayPenalty = h.AvgDelayPenalty
	g.Headline.MaxDelayPenalty = h.MaxDelayPenalty
	g.Headline.EDPReduction16KB = h.EDPReduction16KB
	return g
}

// TestGoldenOptima pins the optimizer's output for the paper's headline
// window: every min-EDP design tuple and its delay/energy/EDP, plus the
// abstract's aggregate claims. The search is deterministic, so the committed
// numbers must reproduce almost exactly; the float tolerance only absorbs
// benign cross-platform differences in floating-point code generation.
func TestGoldenOptima(t *testing.T) {
	got := computeGolden(t)

	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d rows)", goldenPath, len(got.Rows))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row count %d, golden has %d", len(got.Rows), len(want.Rows))
	}
	// Relative tolerance for evaluated metrics. The exhaustive search is
	// deterministic (PR 1), so this only needs to absorb FP codegen
	// differences across architectures, not model noise.
	const relTol = 1e-9
	for i, w := range want.Rows {
		g := got.Rows[i]
		name := fmt.Sprintf("%dB %s %s", w.CapacityBits/8, w.Flavor, w.Method)
		if g.CapacityBits != w.CapacityBits || g.Flavor != w.Flavor || g.Method != w.Method {
			t.Fatalf("row %d is %s/%s/%d, golden expects %s/%s/%d (ordering changed?)",
				i, g.Flavor, g.Method, g.CapacityBits, w.Flavor, w.Method, w.CapacityBits)
		}
		if g.NR != w.NR || g.NC != w.NC || g.Npre != w.Npre || g.Nwr != w.Nwr {
			t.Errorf("%s: geometry (nr,nc,npre,nwr) = (%d,%d,%d,%d), golden (%d,%d,%d,%d)",
				name, g.NR, g.NC, g.Npre, g.Nwr, w.NR, w.NC, w.Npre, w.Nwr)
		}
		for _, c := range []struct {
			label     string
			got, want float64
		}{
			{"vddc", g.VDDC, w.VDDC},
			{"vssc", g.VSSC, w.VSSC},
			{"vwl", g.VWL, w.VWL},
			{"delay", g.DelayS, w.DelayS},
			{"energy", g.EnergyJ, w.EnergyJ},
			{"edp", g.EDP, w.EDP},
		} {
			if !closeRel(c.got, c.want, relTol) {
				t.Errorf("%s: %s = %g, golden %g", name, c.label, c.got, c.want)
			}
		}
	}
}

// TestGoldenHeadline asserts the paper's abstract claims over the committed
// golden matrix: HVT plus the M2 assists (column-selected VDD, negative-Gnd
// write, WL underdrive) cut EDP versus LVT-M2 — averaging 59 % in the paper,
// with a delay penalty of at most 12 % — and the advantage grows with
// capacity, peaking at 78 % for 16 KB.
//
// Documented tolerances: the model is calibrated from digitized figures, so
// it reproduces the paper's trend but not its exact averages — the current
// calibration yields ~40 % average reduction over 1-16 KB (the small-capacity
// cells undershoot; 16 KB reaches 71 % vs the paper's 78 %) and a 13.2 % max
// delay penalty. The bands below are wide enough for that calibration error
// but tight enough to catch gross model drift: avg reduction in [0.35, 0.70]
// around the paper's 59 %, max penalty <= 14 % around the paper's 12 %, and
// 16 KB reduction in [0.60, 0.85] around the paper's 78 %. The exact values
// are pinned to 1e-9 by TestGoldenOptima; this test guards the physics claim.
func TestGoldenHeadline(t *testing.T) {
	if *update {
		t.Skip("golden being regenerated")
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var g goldenFile
	if err := json.Unmarshal(buf, &g); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	h := g.Headline
	if h.AvgEDPReduction < 0.35 || h.AvgEDPReduction > 0.70 {
		t.Errorf("avg EDP reduction = %.1f%%, paper ~59%% (accepted band 35-70%%)", h.AvgEDPReduction*100)
	}
	if h.MaxDelayPenalty > 0.14 {
		t.Errorf("max delay penalty = %.1f%%, paper claims <= 12%% (accepted <= 14%%)", h.MaxDelayPenalty*100)
	}
	if h.AvgDelayPenalty > h.MaxDelayPenalty {
		t.Errorf("avg penalty %.3f exceeds max %.3f: golden is inconsistent", h.AvgDelayPenalty, h.MaxDelayPenalty)
	}
	if h.EDPReduction16KB < 0.60 || h.EDPReduction16KB > 0.85 {
		t.Errorf("16 KB EDP reduction = %.1f%%, paper 78%% (accepted band 60-85%%)", h.EDPReduction16KB*100)
	}
	if h.EDPReduction16KB <= h.AvgEDPReduction {
		t.Errorf("16 KB reduction %.1f%% <= average %.1f%%: the capacity trend inverted",
			h.EDPReduction16KB*100, h.AvgEDPReduction*100)
	}

	// The committed headline must also be what the committed rows imply.
	check := recomputeHeadline(t, g.Rows)
	if !closeRel(check.avgRed, h.AvgEDPReduction, 1e-12) || !closeRel(check.maxPen, h.MaxDelayPenalty, 1e-12) {
		t.Errorf("headline (%.4f, %.4f) does not match rows (%.4f, %.4f): golden edited by hand?",
			h.AvgEDPReduction, h.MaxDelayPenalty, check.avgRed, check.maxPen)
	}
}

type headlineCheck struct{ avgRed, maxPen float64 }

func recomputeHeadline(t *testing.T, rows []goldenRow) headlineCheck {
	t.Helper()
	find := func(bits int, flavor string) goldenRow {
		for _, r := range rows {
			if r.CapacityBits == bits && r.Flavor == flavor && r.Method == "M2" {
				return r
			}
		}
		t.Fatalf("golden missing %d-bit %s M2 row", bits, flavor)
		return goldenRow{}
	}
	var h headlineCheck
	n := 0
	for _, bits := range goldenCapacities() {
		lvt, hvt := find(bits, "LVT"), find(bits, "HVT")
		h.avgRed += 1 - hvt.EDP/lvt.EDP
		if pen := hvt.DelayS/lvt.DelayS - 1; pen > h.maxPen {
			h.maxPen = pen
		}
		n++
	}
	h.avgRed /= float64(n)
	return h
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}
