// Command prunestats prints the branch-and-bound breakdown for the golden
// capacity grid: per (capacity, flavor, method), how many candidate points
// the search evaluated, how many the lower bound pruned, how many each
// constraint skipped, and the resulting bound efficiency. Run it when
// touching the bound (internal/array/bound.go) or the searcher
// (internal/core/bnb.go) — a correctness-preserving change that loosens the
// bound shows up here as an efficiency drop long before it shows up as a
// latency regression.
//
// Usage:
//
//	prunestats [-mode paper]
package main

import (
	"flag"
	"fmt"
	"strings"

	"sramco/internal/cliutil"
	"sramco/internal/core"
	"sramco/internal/device"
	"sramco/internal/unit"
)

func main() {
	cliutil.SetName("prunestats")
	modeStr := flag.String("mode", "paper", "calibration mode: paper or simulated")
	flag.Parse()

	mode := core.TechPaper
	if strings.EqualFold(*modeStr, "simulated") {
		mode = core.TechSimulated
	} else if !strings.EqualFold(*modeStr, "paper") {
		cliutil.Fatalf("unknown mode %q", *modeStr)
	}
	fw, err := core.NewFramework(mode, core.FrameworkOpts{})
	if err != nil {
		cliutil.Fatalf("%v", err)
	}

	fmt.Printf("%-8s %-6s %-6s %12s %12s %12s %10s %10s\n",
		"capacity", "flavor", "method", "evaluated", "pruned", "skipped", "bound-eff", "wall")
	var totalEval, totalPruned, totalSkipped int
	for _, kb := range []int{1, 2, 4, 8, 16} {
		for _, flavor := range []device.Flavor{device.LVT, device.HVT} {
			for _, method := range []core.Method{core.M1, core.M2} {
				opt, err := fw.Optimize(core.Options{
					CapacityBits: kb * 1024 * 8,
					Flavor:       flavor,
					Method:       method,
				})
				if err != nil {
					cliutil.Fatalf("%d KB %v %v: %v", kb, flavor, method, err)
				}
				st := opt.Stats
				fmt.Printf("%-8s %-6v %-6v %12d %12d %12d %9.1f%% %10s\n",
					unit.Bytes(kb*1024*8), flavor, method,
					st.Evaluated, st.PrunedBound, st.SkippedTotal(),
					100*st.BoundEfficiency(), st.Wall.Round(10_000))
				totalEval += st.Evaluated
				totalPruned += st.PrunedBound
				totalSkipped += st.SkippedTotal()
			}
		}
	}
	// One hybrid point: the enlarged (group-assignment × mux) space leans on
	// the bound far harder than the paper grid, so its efficiency is the
	// first number to drop when a bound change loosens the hybrid terms.
	padp, _ := core.ObjectiveByName("padp")
	hybridOpts := core.Options{
		CapacityBits: 16 * 1024 * 8,
		Flavor:       device.LVT,
		Method:       core.M2,
		Objective:    padp,
		HybridGroups: 8,
	}
	sp := core.DefaultSpace()
	sp.MuxMax = 4
	hybridOpts.Space = sp
	opt, err := fw.Optimize(hybridOpts)
	if err != nil {
		cliutil.Fatalf("16 KB hybrid: %v", err)
	}
	st := opt.Stats
	fmt.Printf("%-8s %-6s %-6s %12d %12d %12d %9.1f%% %10s\n",
		"16KB*", "hyb8", "m2", st.Evaluated, st.PrunedBound, st.SkippedTotal(),
		100*st.BoundEfficiency(), st.Wall.Round(10_000))
	totalEval += st.Evaluated
	totalPruned += st.PrunedBound
	totalSkipped += st.SkippedTotal()

	total := totalEval + totalPruned
	eff := 0.0
	if total > 0 {
		eff = float64(totalPruned) / float64(total)
	}
	fmt.Printf("%-8s %-6s %-6s %12d %12d %12d %9.1f%%\n",
		"total", "", "", totalEval, totalPruned, totalSkipped, 100*eff)
}
