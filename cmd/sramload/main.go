// Command sramload is the closed-loop load harness for sramd: it drives a
// configurable request mix (optimize / evaluate / pareto / batch / yield /
// yieldstream) against a running server — or an in-process one with -self —
// at either a fixed concurrency or a target QPS, measures client-side
// latency per endpoint, and writes a JSON report with p50/p90/p99/p999,
// throughput and error counts. The ROADMAP's "millions of users" claim is
// measured with this tool, not asserted.
//
// Usage:
//
//	sramload [-url http://localhost:8347 | -self] [-c 8] [-qps 0]
//	         [-duration 10s] [-warmup 1s] [-timeout 10s] [-seed 1]
//	         [-mix optimize=6,evaluate=3,pareto=0,batch=1,yield=1,yieldstream=0]
//	         [-report report.json] [-check]
//
// With -qps 0 (the default) the harness is purely closed-loop: each of the
// -c workers issues its next request the moment the previous one finishes,
// so measured throughput is the server's capacity at that concurrency. With
// -qps > 0 the workers share a token pacer targeting that aggregate rate.
// Warmup traffic is sent but not recorded, so cold fills and connection
// setup don't pollute the distribution. Latencies are also recorded into
// the process obs registry as sramload.latency{endpoint=...} histograms
// (dump with -metrics).
//
// -check exits non-zero unless the run produced non-zero recorded
// throughput with zero transport errors and zero 5xx responses — the CI
// smoke gate (make loadtest-smoke).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sramco"
	"sramco/internal/cliutil"
	"sramco/internal/obs"
	"sramco/internal/serve"
)

// op names the request kinds in the mix; opBatch exercises the NDJSON
// streaming path with a small mixed batch body, opYield the cached Monte
// Carlo summary path, and opYieldStream the uncached NDJSON checkpoint
// stream (every request runs its own engine — weight it accordingly).
const (
	opOptimize    = "optimize"
	opEvaluate    = "evaluate"
	opPareto      = "pareto"
	opBatch       = "batch"
	opYield       = "yield"
	opYieldStream = "yieldstream"
)

var opOrder = []string{opOptimize, opEvaluate, opPareto, opBatch, opYield, opYieldStream}

// hLatency is the client-side obs histogram per op, mirroring the server's
// per-endpoint series so a combined dump lines both sides up.
var hLatency = func() map[string]*obs.Histogram {
	m := make(map[string]*obs.Histogram, len(opOrder))
	for _, o := range opOrder {
		m[o] = obs.NewHistogram(obs.LabeledName("sramload.latency", "endpoint", o))
	}
	return m
}()

var mSent = obs.NewCounter("sramload.requests")

// loadConfig is one harness run, fully specified.
type loadConfig struct {
	BaseURL     string
	Concurrency int
	TargetQPS   float64
	Duration    time.Duration
	Warmup      time.Duration
	Timeout     time.Duration
	Seed        int64
	Mix         map[string]int
}

// pools of request bodies per op. Small enough that repeats exercise the
// server's cache tiers (the production read path), varied enough that the
// first pass through fills several distinct entries.
type pools struct {
	optimize    []string
	evaluate    []string
	pareto      []string
	batch       []string
	yield       []string
	yieldStream []string
}

func buildPools() pools {
	var p pools
	for _, capBytes := range []int{128, 256, 512, 1024} {
		for _, flavor := range []string{"lvt", "hvt"} {
			p.optimize = append(p.optimize,
				fmt.Sprintf(`{"capacity_bytes":%d,"flavor":%q,"method":"m2"}`, capBytes, flavor))
		}
	}
	for _, nr := range []int{32, 64, 128} {
		nc := 1024 * 8 / nr
		for _, npre := range []int{1, 2, 4} {
			p.evaluate = append(p.evaluate,
				fmt.Sprintf(`{"flavor":"hvt","method":"m2","nr":%d,"nc":%d,"npre":%d,"nwr":2}`, nr, nc, npre))
		}
	}
	for _, capBytes := range []int{128, 256} {
		p.pareto = append(p.pareto,
			fmt.Sprintf(`{"capacity_bytes":%d,"flavor":"hvt","method":"m2"}`, capBytes))
	}
	// One batch body: a few evaluates plus an optimize, exercising the
	// per-line streaming path and the shared batch evaluator.
	var b strings.Builder
	for _, nwr := range []int{1, 2, 4} {
		fmt.Fprintf(&b, `{"op":"evaluate","flavor":"hvt","method":"m2","nr":64,"nc":128,"npre":2,"nwr":%d}`+"\n", nwr)
	}
	b.WriteString(`{"op":"optimize","capacity_bytes":128,"flavor":"hvt","method":"m2"}` + "\n")
	p.batch = append(p.batch, b.String())
	// Yield bodies stay tiny: the first request per body runs n simulated
	// samples, repeats hit the cache. The streaming pool is smaller still —
	// streams are never cached, so every request pays for its engine run.
	for _, seed := range []int{1, 2} {
		for _, metric := range []string{"hsnm", "wm"} {
			p.yield = append(p.yield,
				fmt.Sprintf(`{"flavor":"hvt","n":16,"seed":%d,"metrics":[%q]}`, seed, metric))
		}
	}
	p.yieldStream = append(p.yieldStream,
		`{"flavor":"hvt","n":64,"seed":3,"metrics":["hsnm"],"sampler":"sobol","rel_ci":0.2}`)
	return p
}

func (p pools) body(op string, rng *rand.Rand) string {
	var pool []string
	switch op {
	case opOptimize:
		pool = p.optimize
	case opEvaluate:
		pool = p.evaluate
	case opPareto:
		pool = p.pareto
	case opYield:
		pool = p.yield
	case opYieldStream:
		pool = p.yieldStream
	default:
		pool = p.batch
	}
	return pool[rng.Intn(len(pool))]
}

func endpointPath(op string) string {
	switch op {
	case opBatch:
		return "/v1/batch"
	case opYield:
		return "/v1/yield"
	case opYieldStream:
		return "/v1/yield?stream=1"
	}
	return "/v1/" + op
}

// sample is one recorded request.
type sample struct {
	op  string
	dur time.Duration
	// status 0 means a transport error (no HTTP response).
	status int
}

// workerStats accumulates one worker's recorded samples lock-free; the
// collector merges after all workers join.
type workerStats struct {
	samples []sample
}

// EndpointReport is the per-endpoint section of the JSON report.
type EndpointReport struct {
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"` // transport failures + non-2xx
	Status5xx     int     `json:"status_5xx"`
	ThroughputRPS float64 `json:"throughput_rps"`
	MeanMS        float64 `json:"mean_ms"`
	P50MS         float64 `json:"p50_ms"`
	P90MS         float64 `json:"p90_ms"`
	P99MS         float64 `json:"p99_ms"`
	P999MS        float64 `json:"p999_ms"`
}

// Report is the harness's JSON artifact. Fields are stable so successive
// runs can be archived and diffed bench-compare style.
type Report struct {
	Target      string                    `json:"target"`
	StartTS     string                    `json:"start_ts"`
	WarmupS     float64                   `json:"warmup_s"`
	DurationS   float64                   `json:"duration_s"` // recorded window
	Concurrency int                       `json:"concurrency"`
	TargetQPS   float64                   `json:"target_qps,omitempty"`
	Seed        int64                     `json:"seed"`
	Requests    int                       `json:"requests"`
	Errors      int                       `json:"errors"`
	Status5xx   int                       `json:"status_5xx"`
	Throughput  float64                   `json:"throughput_rps"`
	Endpoints   map[string]EndpointReport `json:"endpoints"`
}

// weightedPick returns an op drawn from the mix weights.
func weightedPick(mix map[string]int, total int, rng *rand.Rand) string {
	n := rng.Intn(total)
	for _, op := range opOrder {
		n -= mix[op]
		if n < 0 {
			return op
		}
	}
	return opOptimize // unreachable for a well-formed mix
}

// runLoad drives the configured load and returns the report. It is the
// whole harness behind the flag parsing, shared with the in-process smoke
// test.
func runLoad(cfg loadConfig) (*Report, error) {
	total := 0
	for _, w := range cfg.Mix {
		if w < 0 {
			return nil, fmt.Errorf("negative mix weight")
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("empty request mix")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	p := buildPools()
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
		},
	}

	start := time.Now()
	recordFrom := start.Add(cfg.Warmup)
	deadline := recordFrom.Add(cfg.Duration)

	// In QPS mode a pacer goroutine drops one token per 1/qps interval;
	// workers block on a token before each request, so the aggregate
	// request rate tracks the target while per-request latency is still
	// measured closed-loop.
	var tokens chan struct{}
	pacerDone := make(chan struct{})
	if cfg.TargetQPS > 0 {
		tokens = make(chan struct{})
		interval := time.Duration(float64(time.Second) / cfg.TargetQPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			defer close(pacerDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			for time.Now().Before(deadline) {
				<-t.C
				select {
				case tokens <- struct{}{}:
				default: // all workers busy; shed the token (closed loop wins)
				}
			}
			close(tokens)
		}()
	} else {
		close(pacerDone)
	}

	stats := make([]workerStats, cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			ws := &stats[w]
			for {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				if tokens != nil {
					if _, ok := <-tokens; !ok {
						return
					}
				}
				op := weightedPick(cfg.Mix, total, rng)
				body := p.body(op, rng)
				t0 := time.Now()
				status := post(client, cfg.BaseURL+endpointPath(op), op, body)
				dur := time.Since(t0)
				mSent.Inc()
				if t0.Before(recordFrom) {
					continue // warmup traffic: sent, not recorded
				}
				hLatency[op].Observe(dur)
				ws.samples = append(ws.samples, sample{op: op, dur: dur, status: status})
			}
		}(w)
	}
	wg.Wait()
	<-pacerDone

	rep := &Report{
		Target:      cfg.BaseURL,
		StartTS:     start.UTC().Format(time.RFC3339),
		WarmupS:     cfg.Warmup.Seconds(),
		DurationS:   time.Since(recordFrom).Seconds(),
		Concurrency: cfg.Concurrency,
		TargetQPS:   cfg.TargetQPS,
		Seed:        cfg.Seed,
		Endpoints:   map[string]EndpointReport{},
	}
	if rep.DurationS <= 0 {
		rep.DurationS = cfg.Duration.Seconds()
	}
	byOp := map[string][]sample{}
	for i := range stats {
		for _, s := range stats[i].samples {
			byOp[s.op] = append(byOp[s.op], s)
		}
	}
	for op, ss := range byOp {
		er := EndpointReport{Requests: len(ss)}
		durs := make([]float64, 0, len(ss))
		var sum float64
		for _, s := range ss {
			ms := float64(s.dur) / float64(time.Millisecond)
			durs = append(durs, ms)
			sum += ms
			if s.status == 0 || s.status >= 400 {
				er.Errors++
			}
			if s.status >= 500 {
				er.Status5xx++
			}
		}
		sort.Float64s(durs)
		er.MeanMS = sum / float64(len(durs))
		er.P50MS = quantile(durs, 0.50)
		er.P90MS = quantile(durs, 0.90)
		er.P99MS = quantile(durs, 0.99)
		er.P999MS = quantile(durs, 0.999)
		er.ThroughputRPS = float64(len(ss)) / rep.DurationS
		rep.Endpoints[op] = er
		rep.Requests += er.Requests
		rep.Errors += er.Errors
		rep.Status5xx += er.Status5xx
	}
	rep.Throughput = float64(rep.Requests) / rep.DurationS
	return rep, nil
}

// post issues one request and drains the response; it returns the HTTP
// status, or 0 on a transport error.
func post(client *http.Client, url, op, body string) int {
	ct := "application/json"
	if op == opBatch {
		ct = "application/x-ndjson"
	}
	resp, err := client.Post(url, ct, strings.NewReader(body))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// quantile returns the q-th quantile of sorted values (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// parseMix parses "optimize=6,evaluate=3,pareto=0,batch=1,yield=1". Omitted
// ops get weight zero; at least one weight must be positive.
func parseMix(s string) (map[string]int, error) {
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want op=weight", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		switch k {
		case opOptimize, opEvaluate, opPareto, opBatch, opYield, opYieldStream:
			mix[k] = w
		default:
			return nil, fmt.Errorf("mix entry %q: unknown op (want optimize, evaluate, pareto, batch, yield or yieldstream)", part)
		}
	}
	return mix, nil
}

// startSelfServer characterizes the framework and serves it on an ephemeral
// loopback port — the in-process target behind -self, so the smoke gate
// needs no separately managed daemon.
func startSelfServer() (baseURL string, shutdown func(), err error) {
	fw, err := sramco.NewFramework(sramco.TechPaper)
	if err != nil {
		return "", nil, err
	}
	srv := serve.New(fw, serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		_ = srv.Drain(ctx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

func main() {
	cliutil.SetName("sramload")
	url := flag.String("url", "http://localhost:8347", "base URL of the target sramd")
	self := flag.Bool("self", false, "ignore -url and load an in-process server instead")
	conc := flag.Int("c", 8, "closed-loop worker count")
	qps := flag.Float64("qps", 0, "target aggregate request rate (0 = unpaced closed loop)")
	duration := flag.Duration("duration", 10*time.Second, "recorded load window")
	warmup := flag.Duration("warmup", 1*time.Second, "unrecorded warmup window before measurement")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request client timeout")
	seed := flag.Int64("seed", 1, "request-mix random seed")
	mixStr := flag.String("mix", "optimize=6,evaluate=3,pareto=0,batch=1,yield=1,yieldstream=0", "request mix weights")
	reportPath := flag.String("report", "", "write the JSON report to `file` (default stdout)")
	check := flag.Bool("check", false, "exit non-zero on zero throughput, transport errors or any 5xx")
	obsFlags := cliutil.ObsFlags()
	flag.Parse()
	if flag.NArg() > 0 {
		cliutil.Fatalf("unexpected arguments %q (a boolean flag like -check takes =false, not a value)", flag.Args())
	}

	mix, err := parseMix(*mixStr)
	if err != nil {
		cliutil.Fatalf("-mix: %v", err)
	}
	if err := obsFlags.Start(); err != nil {
		cliutil.Fatalf("%v", err)
	}

	base := *url
	if *self {
		fmt.Fprintln(os.Stderr, "sramload: characterizing technology for the in-process server...")
		var shutdown func()
		base, shutdown, err = startSelfServer()
		if err != nil {
			cliutil.Fatalf("-self: %v", err)
		}
		defer shutdown()
	}

	stop := obsFlags.StartProgress(func() string {
		return fmt.Sprintf("sramload: %d requests sent", mSent.Value())
	})
	rep, err := runLoad(loadConfig{
		BaseURL:     strings.TrimRight(base, "/"),
		Concurrency: *conc,
		TargetQPS:   *qps,
		Duration:    *duration,
		Warmup:      *warmup,
		Timeout:     *timeout,
		Seed:        *seed,
		Mix:         mix,
	})
	stop()
	if err != nil {
		cliutil.Fatalf("%v", err)
	}

	out := os.Stdout
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			cliutil.Fatalf("-report: %v", err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		cliutil.Fatalf("writing report: %v", err)
	}
	fmt.Fprintf(os.Stderr, "sramload: %d requests in %.1fs (%.1f req/s), %d errors, %d 5xx\n",
		rep.Requests, rep.DurationS, rep.Throughput, rep.Errors, rep.Status5xx)

	if *check {
		switch {
		case rep.Requests == 0:
			cliutil.Fatalf("check failed: no requests recorded")
		case rep.Status5xx > 0:
			cliutil.Fatalf("check failed: %d 5xx responses", rep.Status5xx)
		case rep.Errors > 0:
			cliutil.Fatalf("check failed: %d errors", rep.Errors)
		}
	}
	cliutil.Shutdown()
}
