package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("optimize=6,evaluate=3,pareto=0,batch=1,yield=2,yieldstream=1")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{opOptimize: 6, opEvaluate: 3, opPareto: 0, opBatch: 1, opYield: 2, opYieldStream: 1}
	for k, v := range want {
		if mix[k] != v {
			t.Errorf("mix[%s] = %d, want %d", k, mix[k], v)
		}
	}
	for _, bad := range []string{"optimize", "optimize=x", "optimize=-1", "frobnicate=1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q): want error", bad)
		}
	}
	// Spaces and empty entries are tolerated.
	if _, err := parseMix(" optimize=1 , ,evaluate=2"); err != nil {
		t.Errorf("parseMix with spaces: %v", err)
	}
}

// TestYieldOpsRouteToYieldEndpoint pins the new ops' paths and bodies: both
// hit /v1/yield, the streaming op with the ?stream=1 query, with JSON bodies
// drawn from non-empty pools.
func TestYieldOpsRouteToYieldEndpoint(t *testing.T) {
	if got := endpointPath(opYield); got != "/v1/yield" {
		t.Errorf("endpointPath(yield) = %q", got)
	}
	if got := endpointPath(opYieldStream); got != "/v1/yield?stream=1" {
		t.Errorf("endpointPath(yieldstream) = %q", got)
	}
	p := buildPools()
	rng := rand.New(rand.NewSource(1))
	for _, op := range []string{opYield, opYieldStream} {
		if body := p.body(op, rng); body == "" {
			t.Errorf("empty body pool for %s", op)
		}
	}
}

func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("quantile(nil) = %v, want 0", q)
	}
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0, 1}, {0.5, 5}, {0.99, 9}, {1, 10}} {
		if got := quantile(sorted, tc.q); got != tc.want {
			t.Errorf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestWeightedPickRespectsZeroWeights(t *testing.T) {
	mix := map[string]int{opOptimize: 3, opEvaluate: 1, opPareto: 0, opBatch: 0}
	rng := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[weightedPick(mix, 4, rng)]++
	}
	if counts[opPareto] != 0 || counts[opBatch] != 0 {
		t.Errorf("zero-weight ops were picked: %v", counts)
	}
	if counts[opOptimize] == 0 || counts[opEvaluate] == 0 {
		t.Errorf("positive-weight op never picked: %v", counts)
	}
	// 3:1 ratio within loose bounds.
	ratio := float64(counts[opOptimize]) / float64(counts[opEvaluate])
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("optimize:evaluate ratio = %.2f, want ~3", ratio)
	}
}

// TestRunLoadAgainstStub drives the full harness loop against a stub server:
// warmup traffic must be excluded, mixed outcomes must be counted, and the
// report arithmetic must hold together.
func TestRunLoadAgainstStub(t *testing.T) {
	var n int
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/optimize", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("/v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		// Every third evaluate fails, so the error accounting is exercised.
		n++
		if n%3 == 0 {
			http.Error(w, `{"error":{}}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := runLoad(loadConfig{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		Seed:        7,
		Mix:         map[string]int{opOptimize: 1, opEvaluate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if len(rep.Endpoints) != 2 {
		t.Fatalf("endpoints = %v, want optimize and evaluate only", rep.Endpoints)
	}
	ev := rep.Endpoints[opEvaluate]
	if ev.Status5xx == 0 || ev.Errors < ev.Status5xx {
		t.Errorf("evaluate errors not counted: %+v", ev)
	}
	opt := rep.Endpoints[opOptimize]
	if opt.Errors != 0 || opt.Status5xx != 0 {
		t.Errorf("optimize should be clean: %+v", opt)
	}
	if got := opt.Requests + ev.Requests; got != rep.Requests {
		t.Errorf("endpoint requests sum to %d, total says %d", got, rep.Requests)
	}
	if rep.Status5xx != ev.Status5xx || rep.Errors != ev.Errors {
		t.Errorf("totals %+v disagree with evaluate %+v", rep, ev)
	}
	if rep.Throughput <= 0 || rep.DurationS <= 0 {
		t.Errorf("throughput %.1f over %.2fs, want positive", rep.Throughput, rep.DurationS)
	}
	if opt.P50MS <= 0 || opt.P999MS < opt.P50MS {
		t.Errorf("quantiles out of order: %+v", opt)
	}
}

// TestRunLoadQPSPacing checks the token pacer bounds throughput near the
// target instead of running the closed loop flat out.
func TestRunLoadQPSPacing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	rep, err := runLoad(loadConfig{
		BaseURL:     ts.URL,
		Concurrency: 4,
		TargetQPS:   50,
		Duration:    500 * time.Millisecond,
		Seed:        1,
		Mix:         map[string]int{opOptimize: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unpaced, 4 workers against this stub do thousands of req/s; the pacer
	// should keep it within a few multiples of 50. Generous upper bound to
	// stay robust on slow CI.
	if rep.Throughput > 200 {
		t.Errorf("throughput %.1f req/s ignores the 50 QPS target", rep.Throughput)
	}
	if rep.Requests == 0 {
		t.Error("paced run recorded no requests")
	}
}

func TestRunLoadRejectsEmptyMix(t *testing.T) {
	if _, err := runLoad(loadConfig{Mix: map[string]int{}}); err == nil {
		t.Error("empty mix: want error")
	}
	if _, err := runLoad(loadConfig{Mix: map[string]int{opOptimize: -1}}); err == nil {
		t.Error("negative weight: want error")
	}
}
