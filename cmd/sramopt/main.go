// Command sramopt runs the device-circuit-architecture co-optimization for
// one SRAM array capacity and prints the optimal design point (a Table-4
// style row) together with its full delay/energy breakdown.
//
// Usage:
//
//	sramopt [-bytes 4096] [-flavor hvt] [-method m2] [-mode paper] [-breakdown]
//	        [-compare geom NRxNC:Npre:Nwr:VSSCmV] [-json]
//	        [-trace out.jsonl] [-metrics] [-progress] [-debug]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sramco/internal/array"
	"sramco/internal/cliutil"
	"sramco/internal/core"
	"sramco/internal/device"
	"sramco/internal/obs"
	"sramco/internal/unit"
	"sramco/internal/wire"
)

// jsonReport is the -json output: the optimum design point with its
// evaluation, the noise margins backing its feasibility, and the search
// counters.
type jsonReport struct {
	CapacityBytes int              `json:"capacity_bytes"`
	Flavor        string           `json:"flavor"`
	Method        string           `json:"method"`
	Mode          string           `json:"mode"`
	Design        array.Design     `json:"design"`
	EDP           float64          `json:"edp_js"`
	DArray        float64          `json:"delay_s"`
	EArray        float64          `json:"energy_j"`
	Margins       jsonMargins      `json:"margins"`
	Result        *array.Result    `json:"result"`
	Stats         core.SearchStats `json:"search_stats"`
	// BoundEff is the branch-and-bound prune fraction,
	// PrunedBound / (Evaluated + PrunedBound) — how much of the candidate
	// space the lower bound removed without evaluation.
	BoundEff float64 `json:"bound_efficiency"`
}

// jsonMargins records the noise margins of the chosen operating point
// against the paper's δ = 0.35·Vdd requirement.
type jsonMargins struct {
	Delta      float64 `json:"delta_v"`     // required minimum margin
	HSNM       float64 `json:"hsnm_v"`      // hold SNM at nominal Vdd
	RSNMAtVSSC float64 `json:"rsnm_v"`      // read SNM at the optimum's (VDDC*, VSSC)
	VDDCStar   float64 `json:"vddc_star_v"` // minimum read-assist supply meeting yield
	VWLStar    float64 `json:"vwl_star_v"`  // minimum write wordline meeting yield
}

func main() {
	cliutil.SetName("sramopt")
	bytes := flag.Int("bytes", 4096, "array capacity in bytes (power of two)")
	flavorStr := flag.String("flavor", "hvt", "cell flavor: lvt or hvt")
	methodStr := flag.String("method", "m2", "rail method: m1 (one extra rail) or m2 (unrestricted)")
	modeStr := flag.String("mode", "paper", "calibration mode: paper or simulated")
	breakdown := flag.Bool("breakdown", false, "print the full component breakdown")
	compare := flag.String("compare", "", "also evaluate a fixed design NRxNC:Npre:Nwr:VSSCmV")
	sensitivity := flag.Bool("sensitivity", false, "print the neighbor sensitivity of the optimum")
	dwl := flag.Bool("dwl", false, "also search divided-wordline segmentation (extension)")
	objectiveStr := flag.String("objective", "edp", "search objective: edp, delay, energy, area or padp")
	groups := flag.Int("groups", 0, "hybrid cell-assignment row groups (power of two ≤ 8; 0 = single flavor)")
	mux := flag.Int("mux", 0, "max column-mux ratio searched (power of two; 0 = one SA per column pair)")
	asJSON := flag.Bool("json", false, "emit the optimum as JSON on stdout instead of text")
	obsFlags := cliutil.ObsFlags()
	flag.Parse()

	flavor, err := device.ParseFlavor(*flavorStr)
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
	method, err := core.ParseMethod(*methodStr)
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
	mode := core.TechPaper
	if strings.EqualFold(*modeStr, "simulated") {
		mode = core.TechSimulated
	} else if !strings.EqualFold(*modeStr, "paper") {
		cliutil.Fatalf("unknown mode %q", *modeStr)
	}
	objective, ok := core.ObjectiveByName(*objectiveStr)
	if !ok {
		cliutil.Fatalf("unknown objective %q (want edp, delay, energy, area or padp)", *objectiveStr)
	}
	if err := obsFlags.Start(); err != nil {
		cliutil.Fatalf("%v", err)
	}

	// Ctrl-C / SIGTERM cancels every worker of the in-flight search.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fw, err := core.NewFramework(mode, core.FrameworkOpts{})
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
	opts := core.Options{
		CapacityBits: *bytes * 8, Flavor: flavor, Method: method,
		SearchWLSegs: *dwl, Objective: objective, HybridGroups: *groups,
	}
	if *mux > 1 {
		sp := core.DefaultSpace()
		sp.MuxMax = *mux
		opts.Space = sp
	}
	reg := obs.Default()
	stopProgress := obsFlags.StartProgress(func() string {
		return fmt.Sprintf("search: %d evaluated, chunk %d/%d",
			reg.CounterValue("core.search.evaluated"),
			reg.CounterValue("core.search.chunks_done"),
			int64(reg.GaugeValue("core.search.chunks_total")))
	})
	opt, err := fw.OptimizeContext(ctx, opts)
	stopProgress()
	if err != nil {
		var serr *core.SearchError
		if errors.As(err, &serr) && errors.Is(err, context.Canceled) {
			cliutil.Fatalf("search interrupted after %s", serr.Stats)
		}
		cliutil.Fatalf("%v", err)
	}
	d, r := opt.Best.Design, opt.Best.Result

	if *asJSON {
		if err := writeJSONReport(os.Stdout, buildJSONReport(fw, mode, *bytes, flavor, method, opt)); err != nil {
			cliutil.Fatalf("encoding JSON: %v", err)
		}
		cliutil.Shutdown()
		return
	}

	fmt.Printf("%s 6T-%v-%v (%s mode): optimum over %d evaluations\n",
		unit.Bytes(*bytes*8), flavor, method, mode, opt.Evaluated)
	fmt.Printf("  search: %s\n", opt.Stats)
	fmt.Printf("  n_r=%d n_c=%d N_pre=%d N_wr=%d VDDC=%s VSSC=%s VWL=%s",
		d.Geom.NR, d.Geom.NC, d.Geom.Npre, d.Geom.Nwr,
		unit.Volts(d.VDDC), unit.Volts(d.VSSC), unit.Volts(d.VWL))
	if s := d.Geom.Segments(); s > 1 {
		fmt.Printf(" WLsegs=%d", s)
	}
	if m := d.Geom.MuxRatio(); m > 1 {
		fmt.Printf(" mux=%d", m)
	}
	if d.Groups > 0 {
		fmt.Printf(" groups=%d mask=%#x", d.Groups, d.GroupMask)
	}
	fmt.Println()
	printResult(r)
	if *breakdown {
		printBreakdown(r)
	}
	if *sensitivity {
		sens, err := fw.SensitivityAt(opts, opt.Best)
		if err != nil {
			cliutil.Fatalf("%v", err)
		}
		fmt.Println("  neighbor sensitivity (objective relative to optimum; n/a = outside space):")
		for _, s := range sens {
			fmt.Printf("    %-6s down %-8s up %s\n", s.Variable, relStr(s.DownRel), relStr(s.UpRel))
		}
	}

	if *compare != "" {
		cd, err := parseDesign(*compare, *bytes*8, d)
		if err != nil {
			cliutil.Fatalf("%v", err)
		}
		tech, err := fw.ArrayTech(flavor)
		if err != nil {
			cliutil.Fatalf("%v", err)
		}
		cr, err := array.Evaluate(tech, cd, r.Activity)
		if err != nil {
			cliutil.Fatalf("%v", err)
		}
		fmt.Printf("comparison design n_r=%d n_c=%d N_pre=%d N_wr=%d VSSC=%s:\n",
			cd.Geom.NR, cd.Geom.NC, cd.Geom.Npre, cd.Geom.Nwr, unit.Volts(cd.VSSC))
		printResult(cr)
		if *breakdown {
			printBreakdown(cr)
		}
	}
	cliutil.Shutdown()
}

// buildJSONReport assembles the -json report for an already-completed
// search. Factored out of main so the CLI's JSON contract is testable
// end-to-end without forking the binary.
func buildJSONReport(fw *core.Framework, mode core.Mode, capacityBytes int, flavor device.Flavor, method core.Method, opt *core.Optimum) jsonReport {
	d, r := opt.Best.Design, opt.Best.Result
	cc := fw.Cells[flavor]
	return jsonReport{
		CapacityBytes: capacityBytes,
		Flavor:        flavor.String(),
		Method:        method.String(),
		Mode:          mode.String(),
		Design:        d,
		EDP:           r.EDP,
		DArray:        r.DArray,
		EArray:        r.EArray,
		Margins: jsonMargins{
			Delta:      fw.Delta,
			HSNM:       cc.HSNM,
			RSNMAtVSSC: cc.RSNMAt(d.VSSC),
			VDDCStar:   cc.VDDCStar,
			VWLStar:    cc.VWLStar,
		},
		Result:   r,
		Stats:    opt.Stats,
		BoundEff: opt.Stats.BoundEfficiency(),
	}
}

func writeJSONReport(w io.Writer, rep jsonReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runJSON is the whole `sramopt -json` pipeline — characterize, optimize,
// report — against a caller-supplied writer.
func runJSON(ctx context.Context, w io.Writer, mode core.Mode, capacityBytes int, flavor device.Flavor, method core.Method, dwl bool) error {
	fw, err := core.NewFramework(mode, core.FrameworkOpts{})
	if err != nil {
		return err
	}
	opt, err := fw.OptimizeContext(ctx, core.Options{
		CapacityBits: capacityBytes * 8,
		Flavor:       flavor,
		Method:       method,
		SearchWLSegs: dwl,
	})
	if err != nil {
		return err
	}
	return writeJSONReport(w, buildJSONReport(fw, mode, capacityBytes, flavor, method, opt))
}

func relStr(v float64) string {
	if v != v { // NaN
		return "n/a"
	}
	return fmt.Sprintf("%.4f", v)
}

func printResult(r *array.Result) {
	fmt.Printf("  D_rd=%s D_wr=%s D_array=%s\n",
		unit.Seconds(r.DRead), unit.Seconds(r.DWrite), unit.Seconds(r.DArray))
	fmt.Printf("  E_sw,rd=%s E_sw,wr=%s E_leak=%s E_array=%s\n",
		unit.Joules(r.ESwRead), unit.Joules(r.ESwWrite), unit.Joules(r.ELeak), unit.Joules(r.EArray))
	fmt.Printf("  EDP=%.4g J·s  area=%.4g m²  PADP=%.4g J·s·m²\n", r.EDP, r.Area, r.PADP)
}

func printBreakdown(r *array.Result) {
	b := r.Parts
	fmt.Println("  read delay:")
	fmt.Printf("    row_dec=%s row_drv=%s WL=%s BL=%s | col_dec=%s col_drv=%s COL=%s | SA=%s PRE=%s\n",
		unit.Seconds(b.DRowDec), unit.Seconds(b.DRowDrv), unit.Seconds(b.DWLRead), unit.Seconds(b.DBLRead),
		unit.Seconds(b.DColDec), unit.Seconds(b.DColDrv), unit.Seconds(b.DCOL),
		unit.Seconds(b.DSenseAmp), unit.Seconds(b.DPreRead))
	fmt.Println("  write delay:")
	fmt.Printf("    WL=%s BL=%s cell=%s PRE=%s\n",
		unit.Seconds(b.DWLWrite), unit.Seconds(b.DBLWrite), unit.Seconds(b.DWriteCell), unit.Seconds(b.DPreWrite))
	fmt.Println("  read energy:")
	fmt.Printf("    row_dec=%s row_drv=%s WL=%s BL=%s SA=%s PRE=%s CVDD=%s CVSS=%s col=%s\n",
		unit.Joules(b.ERowDec), unit.Joules(b.ERowDrv), unit.Joules(b.EWLRead), unit.Joules(b.EBLRead),
		unit.Joules(b.ESenseAmp), unit.Joules(b.EPreRead), unit.Joules(b.ECVDD), unit.Joules(b.ECVSS),
		unit.Joules(b.EColDec+b.EColDrv+b.ECOL))
	fmt.Println("  write energy:")
	fmt.Printf("    WL=%s BL=%s cell=%s PRE=%s\n",
		unit.Joules(b.EWLWrite), unit.Joules(b.EBLWrite), unit.Joules(b.EWriteCell), unit.Joules(b.EPreWrite))
	fmt.Printf("  rail settling: CVDD=%s CVSS=%s (in time: %v)\n",
		unit.Seconds(b.DCVDD), unit.Seconds(b.DCVSS), r.RailsSettleInTime)
}

// parseDesign parses "NRxNC:Npre:Nwr:VSSCmV", inheriting rails from base.
func parseDesign(s string, bits int, base array.Design) (array.Design, error) {
	var nr, nc, npre, nwr, vsscMV int
	if _, err := fmt.Sscanf(s, "%dx%d:%d:%d:%d", &nr, &nc, &npre, &nwr, &vsscMV); err != nil {
		return array.Design{}, fmt.Errorf("cannot parse design %q: %w", s, err)
	}
	if nr*nc != bits {
		return array.Design{}, fmt.Errorf("design %dx%d holds %d bits, want %d", nr, nc, nr*nc, bits)
	}
	w := 64
	if nc < w {
		w = nc
	}
	d := base
	d.Geom = wire.Geometry{NR: nr, NC: nc, W: w, Npre: npre, Nwr: nwr}
	d.VSSC = float64(vsscMV) / 1000
	return d, nil
}
