// Command sramopt runs the device-circuit-architecture co-optimization for
// one SRAM array capacity and prints the optimal design point (a Table-4
// style row) together with its full delay/energy breakdown.
//
// Usage:
//
//	sramopt [-bytes 4096] [-flavor hvt] [-method m2] [-mode paper] [-breakdown]
//	        [-compare geom NRxNC:Npre:Nwr:VSSCmV]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sramco/internal/array"
	"sramco/internal/core"
	"sramco/internal/device"
	"sramco/internal/unit"
	"sramco/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sramopt: ")
	bytes := flag.Int("bytes", 4096, "array capacity in bytes (power of two)")
	flavorStr := flag.String("flavor", "hvt", "cell flavor: lvt or hvt")
	methodStr := flag.String("method", "m2", "rail method: m1 (one extra rail) or m2 (unrestricted)")
	modeStr := flag.String("mode", "paper", "calibration mode: paper or simulated")
	breakdown := flag.Bool("breakdown", false, "print the full component breakdown")
	compare := flag.String("compare", "", "also evaluate a fixed design NRxNC:Npre:Nwr:VSSCmV")
	sensitivity := flag.Bool("sensitivity", false, "print the neighbor sensitivity of the optimum")
	dwl := flag.Bool("dwl", false, "also search divided-wordline segmentation (extension)")
	flag.Parse()

	flavor, err := parseFlavor(*flavorStr)
	if err != nil {
		log.Fatal(err)
	}
	method, err := parseMethod(*methodStr)
	if err != nil {
		log.Fatal(err)
	}
	mode := core.TechPaper
	if strings.EqualFold(*modeStr, "simulated") {
		mode = core.TechSimulated
	} else if !strings.EqualFold(*modeStr, "paper") {
		log.Fatalf("unknown mode %q", *modeStr)
	}

	// Ctrl-C / SIGTERM cancels every worker of the in-flight search.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fw, err := core.NewFramework(mode, core.FrameworkOpts{})
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{CapacityBits: *bytes * 8, Flavor: flavor, Method: method, SearchWLSegs: *dwl}
	opt, err := fw.OptimizeContext(ctx, opts)
	if err != nil {
		var serr *core.SearchError
		if errors.As(err, &serr) && errors.Is(err, context.Canceled) {
			log.Fatalf("search interrupted after %s", serr.Stats)
		}
		log.Fatal(err)
	}
	d, r := opt.Best.Design, opt.Best.Result
	fmt.Printf("%s 6T-%v-%v (%s mode): optimum over %d evaluations\n",
		unit.Bytes(*bytes*8), flavor, method, mode, opt.Evaluated)
	fmt.Printf("  search: %s\n", opt.Stats)
	fmt.Printf("  n_r=%d n_c=%d N_pre=%d N_wr=%d VDDC=%s VSSC=%s VWL=%s",
		d.Geom.NR, d.Geom.NC, d.Geom.Npre, d.Geom.Nwr,
		unit.Volts(d.VDDC), unit.Volts(d.VSSC), unit.Volts(d.VWL))
	if s := d.Geom.Segments(); s > 1 {
		fmt.Printf(" WLsegs=%d", s)
	}
	fmt.Println()
	printResult(r)
	if *breakdown {
		printBreakdown(r)
	}
	if *sensitivity {
		sens, err := fw.SensitivityAt(opts, opt.Best)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  neighbor sensitivity (objective relative to optimum; n/a = outside space):")
		for _, s := range sens {
			fmt.Printf("    %-6s down %-8s up %s\n", s.Variable, relStr(s.DownRel), relStr(s.UpRel))
		}
	}

	if *compare != "" {
		cd, err := parseDesign(*compare, *bytes*8, d)
		if err != nil {
			log.Fatal(err)
		}
		tech, err := fw.ArrayTech(flavor)
		if err != nil {
			log.Fatal(err)
		}
		cr, err := array.Evaluate(tech, cd, r.Activity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("comparison design n_r=%d n_c=%d N_pre=%d N_wr=%d VSSC=%s:\n",
			cd.Geom.NR, cd.Geom.NC, cd.Geom.Npre, cd.Geom.Nwr, unit.Volts(cd.VSSC))
		printResult(cr)
		if *breakdown {
			printBreakdown(cr)
		}
	}
}

func relStr(v float64) string {
	if v != v { // NaN
		return "n/a"
	}
	return fmt.Sprintf("%.4f", v)
}

func printResult(r *array.Result) {
	fmt.Printf("  D_rd=%s D_wr=%s D_array=%s\n",
		unit.Seconds(r.DRead), unit.Seconds(r.DWrite), unit.Seconds(r.DArray))
	fmt.Printf("  E_sw,rd=%s E_sw,wr=%s E_leak=%s E_array=%s\n",
		unit.Joules(r.ESwRead), unit.Joules(r.ESwWrite), unit.Joules(r.ELeak), unit.Joules(r.EArray))
	fmt.Printf("  EDP=%.4g J·s\n", r.EDP)
}

func printBreakdown(r *array.Result) {
	b := r.Parts
	fmt.Println("  read delay:")
	fmt.Printf("    row_dec=%s row_drv=%s WL=%s BL=%s | col_dec=%s col_drv=%s COL=%s | SA=%s PRE=%s\n",
		unit.Seconds(b.DRowDec), unit.Seconds(b.DRowDrv), unit.Seconds(b.DWLRead), unit.Seconds(b.DBLRead),
		unit.Seconds(b.DColDec), unit.Seconds(b.DColDrv), unit.Seconds(b.DCOL),
		unit.Seconds(b.DSenseAmp), unit.Seconds(b.DPreRead))
	fmt.Println("  write delay:")
	fmt.Printf("    WL=%s BL=%s cell=%s PRE=%s\n",
		unit.Seconds(b.DWLWrite), unit.Seconds(b.DBLWrite), unit.Seconds(b.DWriteCell), unit.Seconds(b.DPreWrite))
	fmt.Println("  read energy:")
	fmt.Printf("    row_dec=%s row_drv=%s WL=%s BL=%s SA=%s PRE=%s CVDD=%s CVSS=%s col=%s\n",
		unit.Joules(b.ERowDec), unit.Joules(b.ERowDrv), unit.Joules(b.EWLRead), unit.Joules(b.EBLRead),
		unit.Joules(b.ESenseAmp), unit.Joules(b.EPreRead), unit.Joules(b.ECVDD), unit.Joules(b.ECVSS),
		unit.Joules(b.EColDec+b.EColDrv+b.ECOL))
	fmt.Println("  write energy:")
	fmt.Printf("    WL=%s BL=%s cell=%s PRE=%s\n",
		unit.Joules(b.EWLWrite), unit.Joules(b.EBLWrite), unit.Joules(b.EWriteCell), unit.Joules(b.EPreWrite))
	fmt.Printf("  rail settling: CVDD=%s CVSS=%s (in time: %v)\n",
		unit.Seconds(b.DCVDD), unit.Seconds(b.DCVSS), r.RailsSettleInTime)
}

func parseFlavor(s string) (device.Flavor, error) {
	switch strings.ToLower(s) {
	case "lvt":
		return device.LVT, nil
	case "hvt":
		return device.HVT, nil
	}
	return 0, fmt.Errorf("unknown flavor %q (want lvt or hvt)", s)
}

func parseMethod(s string) (core.Method, error) {
	switch strings.ToLower(s) {
	case "m1":
		return core.M1, nil
	case "m2":
		return core.M2, nil
	}
	return 0, fmt.Errorf("unknown method %q (want m1 or m2)", s)
}

// parseDesign parses "NRxNC:Npre:Nwr:VSSCmV", inheriting rails from base.
func parseDesign(s string, bits int, base array.Design) (array.Design, error) {
	var nr, nc, npre, nwr, vsscMV int
	if _, err := fmt.Sscanf(s, "%dx%d:%d:%d:%d", &nr, &nc, &npre, &nwr, &vsscMV); err != nil {
		return array.Design{}, fmt.Errorf("cannot parse design %q: %w", s, err)
	}
	if nr*nc != bits {
		return array.Design{}, fmt.Errorf("design %dx%d holds %d bits, want %d", nr, nc, nr*nc, bits)
	}
	w := 64
	if nc < w {
		w = nc
	}
	d := base
	d.Geom = wire.Geometry{NR: nr, NC: nc, W: w, Npre: npre, Nwr: nwr}
	d.VSSC = float64(vsscMV) / 1000
	return d, nil
}
