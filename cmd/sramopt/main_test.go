package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"testing"

	"sramco/internal/core"
	"sramco/internal/device"
)

var update = flag.Bool("update", false, "regenerate golden files")

const goldenJSON = "testdata/golden_json.json"

// normalizeReport zeroes the environmental search statistics (wall clock,
// worker count) that legitimately vary between runs, leaving everything the
// CLI contract promises to be deterministic.
func normalizeReport(t *testing.T, raw []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	stats, ok := m["search_stats"].(map[string]any)
	if !ok {
		t.Fatalf("report has no search_stats object:\n%s", raw)
	}
	stats["Wall"] = 0.0
	stats["Workers"] = 0.0
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestRunJSONGolden runs the full `sramopt -json` pipeline (characterize,
// optimize, report) on a small capacity and diffs the emitted JSON against
// the committed golden, so the CLI's machine-readable contract — field
// names, units, and the optimum itself — cannot drift silently.
func TestRunJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	err := runJSON(context.Background(), &buf, core.TechPaper, 128, device.HVT, core.M2, false)
	if err != nil {
		t.Fatalf("runJSON: %v", err)
	}
	got := normalizeReport(t, buf.Bytes())

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenJSON, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenJSON, len(got))
		return
	}

	wantRaw, err := os.ReadFile(goldenJSON)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	want := normalizeReport(t, wantRaw)
	if !bytes.Equal(got, want) {
		t.Errorf("sramopt -json output drifted from %s.\ngot:\n%s\nwant:\n%s\n(regenerate with -update if the change is intended)",
			goldenJSON, got, want)
	}
}
