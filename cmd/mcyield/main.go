// Command mcyield runs Monte Carlo yield analysis of the 6T SRAM cell under
// per-transistor threshold variation, reporting margin statistics, μ−kσ
// values and the failure fraction against the paper's δ = 0.35·Vdd
// constraint. With -stream it runs the streaming engine instead: checkpoint
// lines with converging confidence intervals, stopping early once the
// requested relative CI on μ−3σ is met.
//
// Usage:
//
//	mcyield [-flavor hvt] [-n 200] [-sigma 0.025] [-seed 1]
//	        [-vddc 0.45] [-vssc 0] [-vwl 0.45]
//	        [-metric hsnm,rsnm,wm] [-sampler mc|sobol|lhs] [-tilt 1]
//	        [-stream] [-rel-ci 0]
//	        [-trace out.jsonl] [-metrics] [-progress] [-debug]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sramco/internal/cell"
	"sramco/internal/cliutil"
	"sramco/internal/core"
	"sramco/internal/device"
	"sramco/internal/mc"
	"sramco/internal/num"
	"sramco/internal/obs"
	"sramco/internal/unit"
)

// parseMetrics maps a comma-separated metric list onto the mc bitmask.
func parseMetrics(s string) (mc.Metric, error) {
	if s == "" {
		return mc.AllMetrics, nil
	}
	var m mc.Metric
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "hsnm":
			m |= mc.HSNM
		case "rsnm":
			m |= mc.RSNM
		case "wm":
			m |= mc.WM
		default:
			return 0, fmt.Errorf("unknown metric %q (want hsnm, rsnm or wm)", name)
		}
	}
	return m, nil
}

func main() {
	cliutil.SetName("mcyield")
	flavorStr := flag.String("flavor", "hvt", "cell flavor: lvt or hvt")
	n := flag.Int("n", 200, "number of Monte Carlo samples (budget when -rel-ci is set)")
	sigma := flag.Float64("sigma", mc.DefaultSigmaVt, "per-device ΔVt sigma (V)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	vddc := flag.Float64("vddc", device.Vdd, "read-assist cell supply (V)")
	vssc := flag.Float64("vssc", 0, "read-assist cell ground (V, ≤0)")
	vwl := flag.Float64("vwl", device.Vdd, "write wordline level (V)")
	metricStr := flag.String("metric", "", "comma-separated margins to compute (hsnm,rsnm,wm; default all)")
	samplerStr := flag.String("sampler", "mc", "draw sequence: mc, sobol or lhs")
	tilt := flag.Float64("tilt", 1, "importance-sampling σ inflation τ (1 disables)")
	stream := flag.Bool("stream", false, "streaming mode: print a checkpoint line per interval")
	relCI := flag.Float64("rel-ci", 0, "streaming early-stop: target relative 95% CI on μ-3σ (0 disables)")
	obsFlags := cliutil.ObsFlags()
	flag.Parse()

	var flavor device.Flavor
	switch strings.ToLower(*flavorStr) {
	case "lvt":
		flavor = device.LVT
	case "hvt":
		flavor = device.HVT
	default:
		cliutil.Fatalf("unknown flavor %q", *flavorStr)
	}
	metrics, err := parseMetrics(*metricStr)
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
	sampler, err := mc.ParseSampler(strings.ToLower(*samplerStr))
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
	if err := obsFlags.Start(); err != nil {
		cliutil.Fatalf("%v", err)
	}

	read := cell.NominalRead(device.Vdd)
	read.VDDC = *vddc
	read.VSSC = *vssc
	write := cell.NominalWrite(device.Vdd)
	write.VWL = *vwl

	cfg := mc.Config{
		Flavor: flavor, N: *n, SigmaVt: *sigma, Seed: *seed,
		Read: read, Write: write, Metrics: metrics,
		Sampler: sampler, Tilt: *tilt,
	}

	// Ctrl-C / SIGTERM abandons the pending samples; in-flight ones finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.Default()
	stopProgress := obsFlags.StartProgress(func() string {
		// The total comes from the flag, not mc.samples.total: the gauge is
		// an in-flight total shared across concurrent runs.
		return fmt.Sprintf("mc: sample %d/%d", reg.CounterValue("mc.samples.done"), *n)
	})

	delta := core.DefaultDelta(device.Vdd)
	fmt.Printf("6T-%v, %d samples, σVt=%s, sampler=%v tilt=%g, VDDC=%s VSSC=%s VWL=%s\n",
		flavor, *n, unit.Volts(*sigma), sampler, *tilt,
		unit.Volts(*vddc), unit.Volts(*vssc), unit.Volts(*vwl))

	if *stream || *relCI > 0 {
		runStream(ctx, cfg, *relCI, stopProgress)
		cliutil.Shutdown()
		return
	}

	res, err := mc.RunContext(ctx, cfg)
	stopProgress()
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
	fmt.Printf("  run: %s\n", res.Stats)
	report := func(name string, s num.Summary) {
		if s.N == 0 {
			return
		}
		fmt.Printf("  %-5s mean=%s σ=%s min=%s  μ-3σ=%s  μ-6σ=%s\n",
			name, unit.Volts(s.Mean), unit.Volts(s.Std), unit.Volts(s.Min),
			unit.Volts(mc.MuMinusKSigma(s, 3)), unit.Volts(mc.MuMinusKSigma(s, 6)))
	}
	report("HSNM", res.HSNM)
	report("RSNM", res.RSNM)
	report("WM", res.WM)
	fmt.Printf("  fraction with min margin < δ=%s: %.1f%%\n", unit.Volts(delta), res.FailFraction(delta)*100)
	cliutil.Shutdown()
}

// runStream drives the streaming engine, printing one line per checkpoint.
func runStream(ctx context.Context, cfg mc.Config, relCI float64, stopProgress func()) {
	printStat := func(name string, m *mc.MetricStat) {
		if m == nil {
			return
		}
		rel := "n/a"
		if m.RelCI >= 0 {
			rel = fmt.Sprintf("%.2f%%", m.RelCI*100)
		}
		fmt.Printf("  %-5s μ=%s σ=%s  μ-3σ=%s ±%s (rel %s)\n",
			name, unit.Volts(m.Mean), unit.Volts(m.Std), unit.Volts(m.Mu3),
			unit.Volts(m.CIHalf), rel)
	}
	res, err := mc.RunStream(ctx, mc.StreamConfig{Config: cfg, RelCI: relCI}, func(cp mc.Checkpoint) error {
		tag := ""
		if cp.Converged {
			tag = "  [converged]"
		} else if cp.Final {
			tag = "  [final]"
		}
		fmt.Printf("checkpoint: %d samples, ESS %.0f, fail %.2f%% [%.2f%%, %.2f%%]%s\n",
			cp.Samples, cp.ESS, cp.FailFraction*100, cp.FailLo*100, cp.FailHi*100, tag)
		printStat("HSNM", cp.HSNM)
		printStat("RSNM", cp.RSNM)
		printStat("WM", cp.WM)
		return nil
	})
	stopProgress()
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
	fmt.Printf("done: %s, %d checkpoints", res.Stats, res.Checkpoints)
	if res.Final.Converged {
		fmt.Printf(", converged inside rel CI %g after %d of %d samples", relCI, res.Final.Samples, cfg.N)
	}
	fmt.Println()
}
