// Command mcyield runs Monte Carlo yield analysis of the 6T SRAM cell under
// per-transistor threshold variation, reporting margin statistics, μ−kσ
// values and the failure fraction against the paper's δ = 0.35·Vdd
// constraint.
//
// Usage:
//
//	mcyield [-flavor hvt] [-n 200] [-sigma 0.025] [-seed 1]
//	        [-vddc 0.45] [-vssc 0] [-vwl 0.45]
//	        [-trace out.jsonl] [-metrics] [-progress] [-debug]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sramco/internal/cell"
	"sramco/internal/cliutil"
	"sramco/internal/core"
	"sramco/internal/device"
	"sramco/internal/mc"
	"sramco/internal/num"
	"sramco/internal/obs"
	"sramco/internal/unit"
)

func main() {
	cliutil.SetName("mcyield")
	flavorStr := flag.String("flavor", "hvt", "cell flavor: lvt or hvt")
	n := flag.Int("n", 200, "number of Monte Carlo samples")
	sigma := flag.Float64("sigma", mc.DefaultSigmaVt, "per-device ΔVt sigma (V)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	vddc := flag.Float64("vddc", device.Vdd, "read-assist cell supply (V)")
	vssc := flag.Float64("vssc", 0, "read-assist cell ground (V, ≤0)")
	vwl := flag.Float64("vwl", device.Vdd, "write wordline level (V)")
	obsFlags := cliutil.ObsFlags()
	flag.Parse()

	var flavor device.Flavor
	switch strings.ToLower(*flavorStr) {
	case "lvt":
		flavor = device.LVT
	case "hvt":
		flavor = device.HVT
	default:
		cliutil.Fatalf("unknown flavor %q", *flavorStr)
	}
	if err := obsFlags.Start(); err != nil {
		cliutil.Fatalf("%v", err)
	}

	read := cell.NominalRead(device.Vdd)
	read.VDDC = *vddc
	read.VSSC = *vssc
	write := cell.NominalWrite(device.Vdd)
	write.VWL = *vwl

	// Ctrl-C / SIGTERM abandons the pending samples; in-flight ones finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.Default()
	stopProgress := obsFlags.StartProgress(func() string {
		// The total comes from the flag, not mc.samples.total: the gauge is
		// an in-flight total shared across concurrent runs.
		return fmt.Sprintf("mc: sample %d/%d", reg.CounterValue("mc.samples.done"), *n)
	})
	res, err := mc.RunContext(ctx, mc.Config{
		Flavor: flavor, N: *n, SigmaVt: *sigma, Seed: *seed,
		Read: read, Write: write,
	})
	stopProgress()
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
	delta := core.DefaultDelta(device.Vdd)
	fmt.Printf("6T-%v, %d samples, σVt=%s, VDDC=%s VSSC=%s VWL=%s\n",
		flavor, *n, unit.Volts(*sigma), unit.Volts(*vddc), unit.Volts(*vssc), unit.Volts(*vwl))
	fmt.Printf("  run: %s\n", res.Stats)
	report := func(name string, s num.Summary) {
		if s.N == 0 {
			return
		}
		fmt.Printf("  %-5s mean=%s σ=%s min=%s  μ-3σ=%s  μ-6σ=%s\n",
			name, unit.Volts(s.Mean), unit.Volts(s.Std), unit.Volts(s.Min),
			unit.Volts(mc.MuMinusKSigma(s, 3)), unit.Volts(mc.MuMinusKSigma(s, 6)))
	}
	report("HSNM", res.HSNM)
	report("RSNM", res.RSNM)
	report("WM", res.WM)
	fmt.Printf("  fraction with min margin < δ=%s: %.1f%%\n", unit.Volts(delta), res.FailFraction(delta)*100)
	cliutil.Shutdown()
}
