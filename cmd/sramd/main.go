// Command sramd serves the co-optimization framework over HTTP/JSON: the
// /v1/optimize, /v1/evaluate, /v1/pareto and /v1/yield endpoints with a
// bounded LRU result cache, coalescing of concurrent identical requests, a
// worker pool with per-request deadlines, and graceful drain on SIGTERM.
//
// Usage:
//
//	sramd [-addr :8347] [-mode paper] [-cache 256] [-workers N]
//	      [-timeout 60s] [-drain-timeout 30s] [-catalog catalog.bin]
//	      [-access-log] [-trace-buf 4096] [-trace-log spans.jsonl]
//	      [-debug-addr :6060]
//	      [-trace out.jsonl] [-metrics] [-debug]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Observability: every request gets a trace ID (adopted from an inbound W3C
// traceparent header, minted otherwise), echoed as X-Request-Id, stamped on
// every span the request's work emits, logged in the structured access log,
// and buffered in an in-memory ring recorder dumped by GET /debug/trace
// (?limit=N traces). -trace-log additionally mirrors every span to a JSONL
// file; -trace-buf sizes the ring. -debug-addr starts a second listener
// serving net/http/pprof under /debug/pprof/.
//
// With -catalog, sramd serves /v1/optimize and /v1/pareto lookups for the
// standard design-space grid straight from the precomputed catalog file
// (built with sramcat, see internal/catalog). A missing or stale catalog —
// one whose technology fingerprint no longer matches the current device
// library — is recomputed in the background and atomically swapped in (and
// rewritten to the file) once ready; the server answers from live search in
// the meantime.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sramco"
	"sramco/internal/catalog"
	"sramco/internal/cliutil"
	"sramco/internal/obs"
	"sramco/internal/serve"
)

func main() {
	cliutil.SetName("sramd")
	addr := flag.String("addr", ":8347", "listen address")
	modeStr := flag.String("mode", "paper", "calibration mode: paper or simulated")
	cacheSize := flag.Int("cache", 256, "result-cache entries (negative disables caching)")
	workers := flag.Int("workers", 0, "concurrent optimizer runs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request compute deadline cap")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work on shutdown")
	catalogPath := flag.String("catalog", "", "precomputed design-space catalog file (missing or stale: rebuilt in the background)")
	catalogGroups := flag.String("catalog-groups", "", "comma-separated hybrid group counts to precompute per catalog cell (e.g. \"4,8\")")
	accessLog := flag.Bool("access-log", true, "log one structured line per request to stderr")
	traceBuf := flag.Int("trace-buf", 0, "span ring-buffer capacity behind /debug/trace (0 = default)")
	traceLog := flag.String("trace-log", "", "mirror every span/point to a JSON-lines `file`")
	debugAddr := flag.String("debug-addr", "", "optional second listener serving net/http/pprof under /debug/pprof/")
	obsFlags := cliutil.ObsFlags()
	flag.Parse()
	if flag.NArg() > 0 {
		// Catch the classic bool-flag trap: "-access-log file.log" parses
		// -access-log as true and silently drops file.log and every flag
		// after it. Better to refuse than to run half-configured.
		cliutil.Fatalf("unexpected arguments %q (a boolean flag like -access-log takes =false, not a value)", flag.Args())
	}

	mode := sramco.TechPaper
	if strings.EqualFold(*modeStr, "simulated") {
		mode = sramco.TechSimulated
	} else if !strings.EqualFold(*modeStr, "paper") {
		cliutil.Fatalf("unknown mode %q", *modeStr)
	}
	if err := obsFlags.Start(); err != nil {
		cliutil.Fatalf("%v", err)
	}

	// The span recorder backs /debug/trace and is always on: it joins
	// whatever sinks the -trace/-debug flags installed, plus the optional
	// -trace-log JSONL mirror.
	recorder := obs.NewRecorder(*traceBuf)
	sinks := obs.MultiSink{recorder}
	if prev := obs.CurrentSink(); prev != nil {
		sinks = append(sinks, prev)
	}
	if *traceLog != "" {
		f, err := os.Create(*traceLog)
		if err != nil {
			cliutil.Fatalf("-trace-log: %v", err)
		}
		cliutil.OnExit(func() { f.Close() })
		sinks = append(sinks, obs.NewJSONLSink(f))
	}
	obs.SetSink(sinks)
	cliutil.OnExit(func() { obs.SetSink(nil) })

	fmt.Fprintf(os.Stderr, "sramd: characterizing technology (%v mode)...\n", mode)
	fw, err := sramco.NewFramework(mode)
	if err != nil {
		cliutil.Fatalf("%v", err)
	}

	cfg := serve.Config{
		CacheSize: *cacheSize,
		Timeout:   *timeout,
		Workers:   *workers,
		Recorder:  recorder,
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := serve.New(fw, cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}

	// SIGINT/SIGTERM triggers the drain sequence: stop accepting, let
	// in-flight requests finish within the grace period, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *catalogPath != "" {
		grid := serve.DefaultCatalogGrid()
		var err error
		if grid.Groups, err = parseGroupsList(*catalogGroups); err != nil {
			cliutil.Fatalf("-catalog-groups: %v", err)
		}
		setupCatalog(ctx, srv, fw, *catalogPath, grid)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sramd: listening on %s\n", *addr)

	select {
	case err := <-errCh:
		cliutil.Fatalf("listen %s: %v", *addr, err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "sramd: shutdown signal, draining for up to %s\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Shutdown stops the listener and waits for handlers to return; Drain
	// refuses new /v1/* work and only cancels the compute context once the
	// in-flight requests have finished (or the grace period expires).
	shutdownErr := httpSrv.Shutdown(drainCtx)
	drainErr := srv.Drain(drainCtx)
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		cliutil.Fatalf("serve: %v", err)
	}
	if shutdownErr != nil || drainErr != nil {
		cliutil.Fatalf("drain incomplete after %s (shutdown: %v, drain: %v)", *drainTimeout, shutdownErr, drainErr)
	}
	fmt.Fprintln(os.Stderr, "sramd: drained cleanly")
	cliutil.Shutdown()
}

// parseGroupsList parses the -catalog-groups value: a comma-separated list
// of hybrid group counts, each a power of two in [2, 8].
func parseGroupsList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad group count %q: %v", part, err)
		}
		if g < 2 || g > 8 || g&(g-1) != 0 {
			return nil, fmt.Errorf("group count %d must be a power of two in [2, 8]", g)
		}
		out = append(out, g)
	}
	return out, nil
}

// serveDebug runs the pprof listener. It is intentionally separate from the
// service listener so profiling endpoints can stay unexposed (bound to
// localhost, firewalled) while /v1/* serves traffic.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "sramd: pprof listening on %s\n", addr)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "sramd: pprof listener: %v\n", err)
	}
}

// setupCatalog installs the catalog at path if it matches the framework's
// technology fingerprint; otherwise it recomputes the default grid in the
// background (canceled by shutdown), swaps the result in atomically and
// rewrites the file. The server runs on live search until the swap.
func setupCatalog(ctx context.Context, srv *serve.Server, fw *sramco.Framework, path string, grid serve.CatalogGrid) {
	cat, err := catalog.Load(path)
	switch {
	case err == nil && cat.Fingerprint() == fw.Fingerprint():
		srv.SetCatalog(cat)
		fmt.Fprintf(os.Stderr, "sramd: catalog %s loaded (%d entries)\n", path, cat.Len())
		return
	case err == nil:
		fmt.Fprintf(os.Stderr, "sramd: catalog %s is stale (technology changed), recomputing in background\n", path)
	case os.IsNotExist(err):
		fmt.Fprintf(os.Stderr, "sramd: catalog %s missing, computing in background\n", path)
	default:
		fmt.Fprintf(os.Stderr, "sramd: catalog %s unreadable (%v), recomputing in background\n", path, err)
	}
	go func() {
		cat, err := srv.BuildCatalog(ctx, grid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sramd: catalog build failed: %v\n", err)
			return
		}
		srv.SetCatalog(cat)
		if err := cat.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "sramd: writing catalog %s: %v\n", path, err)
			return
		}
		fmt.Fprintf(os.Stderr, "sramd: catalog rebuilt and saved to %s (%d entries)\n", path, cat.Len())
	}()
}
