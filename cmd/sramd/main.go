// Command sramd serves the co-optimization framework over HTTP/JSON: the
// /v1/optimize, /v1/evaluate, /v1/pareto and /v1/yield endpoints with a
// bounded LRU result cache, coalescing of concurrent identical requests, a
// worker pool with per-request deadlines, and graceful drain on SIGTERM.
//
// Usage:
//
//	sramd [-addr :8347] [-mode paper] [-cache 256] [-workers N]
//	      [-timeout 60s] [-drain-timeout 30s]
//	      [-trace out.jsonl] [-metrics] [-debug]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sramco"
	"sramco/internal/cliutil"
	"sramco/internal/serve"
)

func main() {
	cliutil.SetName("sramd")
	addr := flag.String("addr", ":8347", "listen address")
	modeStr := flag.String("mode", "paper", "calibration mode: paper or simulated")
	cacheSize := flag.Int("cache", 256, "result-cache entries (negative disables caching)")
	workers := flag.Int("workers", 0, "concurrent optimizer runs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request compute deadline cap")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work on shutdown")
	obsFlags := cliutil.ObsFlags()
	flag.Parse()

	mode := sramco.TechPaper
	if strings.EqualFold(*modeStr, "simulated") {
		mode = sramco.TechSimulated
	} else if !strings.EqualFold(*modeStr, "paper") {
		cliutil.Fatalf("unknown mode %q", *modeStr)
	}
	if err := obsFlags.Start(); err != nil {
		cliutil.Fatalf("%v", err)
	}

	fmt.Fprintf(os.Stderr, "sramd: characterizing technology (%v mode)...\n", mode)
	fw, err := sramco.NewFramework(mode)
	if err != nil {
		cliutil.Fatalf("%v", err)
	}

	srv := serve.New(fw, serve.Config{
		CacheSize: *cacheSize,
		Timeout:   *timeout,
		Workers:   *workers,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGINT/SIGTERM triggers the drain sequence: stop accepting, let
	// in-flight requests finish within the grace period, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sramd: listening on %s\n", *addr)

	select {
	case err := <-errCh:
		cliutil.Fatalf("listen %s: %v", *addr, err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "sramd: shutdown signal, draining for up to %s\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Shutdown stops the listener and waits for handlers to return; Drain
	// refuses new /v1/* work and only cancels the compute context once the
	// in-flight requests have finished (or the grace period expires).
	shutdownErr := httpSrv.Shutdown(drainCtx)
	drainErr := srv.Drain(drainCtx)
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		cliutil.Fatalf("serve: %v", err)
	}
	if shutdownErr != nil || drainErr != nil {
		cliutil.Fatalf("drain incomplete after %s (shutdown: %v, drain: %v)", *drainTimeout, shutdownErr, drainErr)
	}
	fmt.Fprintln(os.Stderr, "sramd: drained cleanly")
	cliutil.Shutdown()
}
