// Command sramcat builds, inspects and verifies precomputed design-space
// catalogs (internal/catalog): the binary files sramd loads to answer
// /v1/optimize and /v1/pareto lookups without running a search.
//
// Usage:
//
//	sramcat build -o catalog.bin [-mode paper] [-caps 1024,2048,...]
//	        [-flavors lvt,hvt] [-methods m1,m2] [-objectives edp,delay,energy]
//	        [-pareto]
//	sramcat inspect catalog.bin
//	sramcat verify catalog.bin [-mode paper]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sramco"
	"sramco/internal/catalog"
	"sramco/internal/cliutil"
	"sramco/internal/serve"
)

func main() {
	cliutil.SetName("sramcat")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		cliutil.Fatalf("unknown subcommand %q (want build, inspect or verify)", os.Args[1])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sramcat build -o catalog.bin [flags]")
	fmt.Fprintln(os.Stderr, "       sramcat inspect <catalog.bin>")
	fmt.Fprintln(os.Stderr, "       sramcat verify <catalog.bin> [-mode paper]")
	os.Exit(2)
}

// parseMode maps the -mode flag to a calibration mode.
func parseMode(s string) sramco.Mode {
	switch {
	case strings.EqualFold(s, "paper"):
		return sramco.TechPaper
	case strings.EqualFold(s, "simulated"):
		return sramco.TechSimulated
	}
	cliutil.Fatalf("unknown mode %q (want paper or simulated)", s)
	panic("unreachable")
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(flagName, s string) []int {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil || v <= 0 {
			cliutil.Fatalf("-%s: %q is not a positive integer", flagName, f)
		}
		out = append(out, v)
	}
	return out
}

func build(args []string) {
	fs := flag.NewFlagSet("sramcat build", flag.ExitOnError)
	out := fs.String("o", "catalog.bin", "output file")
	modeStr := fs.String("mode", "paper", "calibration mode: paper or simulated")
	def := serve.DefaultCatalogGrid()
	caps := fs.String("caps", intList(def.CapacitiesBytes), "comma-separated capacities in bytes")
	flavors := fs.String("flavors", strings.Join(def.Flavors, ","), "comma-separated device flavors")
	methods := fs.String("methods", strings.Join(def.Methods, ","), "comma-separated assist methods")
	objectives := fs.String("objectives", strings.Join(def.Objectives, ","), "comma-separated objectives")
	pareto := fs.Bool("pareto", def.Pareto, "also precompute the Pareto front of each cell")
	fs.Parse(args)

	grid := serve.CatalogGrid{
		CapacitiesBytes: splitInts("caps", *caps),
		Flavors:         splitList(*flavors),
		Methods:         splitList(*methods),
		Objectives:      splitList(*objectives),
		Pareto:          *pareto,
	}
	if len(grid.CapacitiesBytes) == 0 || len(grid.Flavors) == 0 || len(grid.Methods) == 0 || len(grid.Objectives) == 0 {
		cliutil.Fatalf("empty grid: every dimension needs at least one value")
	}

	mode := parseMode(*modeStr)
	fmt.Fprintf(os.Stderr, "sramcat: characterizing technology (%v mode)...\n", mode)
	fw, err := sramco.NewFramework(mode)
	if err != nil {
		cliutil.Fatalf("%v", err)
	}

	start := time.Now()
	cat, err := serve.New(fw, serve.Config{}).BuildCatalog(context.Background(), grid)
	if err != nil {
		cliutil.Fatalf("build: %v", err)
	}
	if err := cat.WriteFile(*out); err != nil {
		cliutil.Fatalf("%v", err)
	}
	fpr := cat.Fingerprint()
	fmt.Printf("sramcat: wrote %s: %d entries, %d bytes, fingerprint %x, built in %s\n",
		*out, cat.Len(), cat.Size(), fpr[:8], time.Since(start).Round(time.Millisecond))
	cliutil.Shutdown()
}

func inspect(args []string) {
	fs := flag.NewFlagSet("sramcat inspect", flag.ExitOnError)
	keys := fs.Bool("keys", false, "list every entry key")
	fs.Parse(args)
	if fs.NArg() != 1 {
		cliutil.Fatalf("inspect: want exactly one catalog file")
	}
	cat, err := catalog.Load(fs.Arg(0))
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
	fpr := cat.Fingerprint()
	fmt.Printf("file:        %s\n", fs.Arg(0))
	fmt.Printf("version:     %d\n", catalog.Version)
	fmt.Printf("fingerprint: %x\n", fpr)
	fmt.Printf("entries:     %d\n", cat.Len())
	fmt.Printf("size:        %d bytes\n", cat.Size())
	if *keys {
		for _, k := range cat.Keys() {
			body, _ := cat.Lookup(k)
			fmt.Printf("  %s (%d bytes)\n", k, len(body))
		}
	}
	cliutil.Shutdown()
}

func verify(args []string) {
	fs := flag.NewFlagSet("sramcat verify", flag.ExitOnError)
	modeStr := fs.String("mode", "paper", "calibration mode: paper or simulated")
	fs.Parse(args)
	if fs.NArg() != 1 {
		cliutil.Fatalf("verify: want exactly one catalog file")
	}
	cat, err := catalog.Load(fs.Arg(0))
	if err != nil {
		cliutil.Fatalf("%v", err)
	}

	mode := parseMode(*modeStr)
	fmt.Fprintf(os.Stderr, "sramcat: characterizing technology (%v mode)...\n", mode)
	fw, err := sramco.NewFramework(mode)
	if err != nil {
		cliutil.Fatalf("%v", err)
	}
	want, got := fw.Fingerprint(), cat.Fingerprint()
	if want != got {
		cliutil.Fatalf("stale catalog: fingerprint %x, current technology is %x", got[:8], want[:8])
	}
	fmt.Printf("sramcat: %s is current (%d entries, fingerprint %x)\n", fs.Arg(0), cat.Len(), got[:8])
	cliutil.Shutdown()
}

// intList formats ints as a comma-separated flag default.
func intList(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}
