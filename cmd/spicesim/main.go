// Command spicesim runs a SPICE-dialect netlist deck on the bundled circuit
// simulator and the 7 nm FinFET library. It exists so the characterization
// substrate can be exercised standalone — any cell or peripheral circuit in
// this repository can be expressed as a deck and inspected directly.
//
// Usage:
//
//	spicesim deck.sp          # run a deck file
//	spicesim -                # read the deck from stdin
//
// Example deck (an inverter VTC):
//
//	vdd vdd 0 DC 450m
//	vin in 0 DC 0
//	mp out in vdd plvt
//	mn out in 0 nlvt
//	.dc vin 0 450m 10m
//	.print v(out)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"sramco/internal/spice"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spicesim: ")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: spicesim <deck.sp | ->")
	}

	var r io.Reader
	if flag.Arg(0) == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	deck, err := spice.Parse(r, nil)
	if err != nil {
		log.Fatal(err)
	}
	if deck.Title != "" {
		fmt.Printf("* %s\n", deck.Title)
	}
	if err := deck.Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
