// Command figures regenerates every table and figure of the paper's
// evaluation section, printing ASCII tables and optionally writing CSV files
// to an output directory.
//
// Usage:
//
//	figures [-out out/] [-mode paper|simulated] [-skip-sweeps]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"sramco/internal/cell"
	"sramco/internal/core"
	"sramco/internal/device"
	"sramco/internal/exp"
	"sramco/internal/num"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	outDir := flag.String("out", "", "directory for CSV output (empty: no CSV)")
	modeStr := flag.String("mode", "paper", "calibration mode: paper or simulated")
	skipSweeps := flag.Bool("skip-sweeps", false, "skip the cell-level sweep figures (2, 3, 5)")
	ext := flag.Bool("ext", false, "also run the extension experiments (corners, temperature)")
	extVdd := flag.Bool("ext-vdd", false, "also run the Vdd-scaling extension (slow: re-characterizes per supply)")
	flag.Parse()

	mode := core.TechPaper
	if strings.EqualFold(*modeStr, "simulated") {
		mode = core.TechSimulated
	} else if !strings.EqualFold(*modeStr, "paper") {
		log.Fatalf("unknown mode %q", *modeStr)
	}

	emit := func(name string, t *exp.Table) {
		fmt.Println(t.ASCII())
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*outDir, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", path)
		}
	}

	vdd := device.Vdd
	if !*skipSweeps {
		fig2Rows, err := exp.Fig2(num.Linspace(0.10, vdd, 8))
		check(err)
		emit("fig2", exp.Fig2Table(fig2Rows))

		a, err := exp.Fig3a(vdd)
		check(err)
		fmt.Printf("Fig. 3(a): RSNM HVT/LVT = %.2fx (paper 1.9x); I_read HVT/LVT = %.2fx (paper ~0.5x)\n\n",
			a.RSNMRatio(), a.IReadRatio())

		f3b, err := exp.Fig3b(device.HVT, vdd, num.Linspace(vdd, 0.70, 6))
		check(err)
		emit("fig3b", exp.AssistTable("Fig. 3(b): Vdd boost read-assist (6T-HVT)", "V_DDC", f3b))

		f3c, err := exp.Fig3c(device.HVT, vdd, num.Linspace(-0.24, 0, 7))
		check(err)
		emit("fig3c", exp.AssistTable("Fig. 3(c): negative Gnd read-assist (6T-HVT)", "V_SSC", f3c))

		f3d, err := exp.Fig3d(device.HVT, vdd, num.Linspace(0.25, vdd, 6))
		check(err)
		emit("fig3d", exp.AssistTable("Fig. 3(d): WL underdrive read-assist (6T-HVT)", "V_WL", f3d))

		f5a, err := exp.Fig5a(device.HVT, vdd, num.Linspace(vdd, 0.62, 6))
		check(err)
		emit("fig5a", exp.WriteAssistTable("Fig. 5(a): WL overdrive write-assist (6T-HVT)", "V_WL", f5a))

		f5b, err := exp.Fig5b(device.HVT, vdd, num.Linspace(-0.15, 0, 6))
		check(err)
		emit("fig5b", exp.WriteAssistTable("Fig. 5(b): negative BL write-assist (6T-HVT)", "V_BL", f5b))

		fit, err := exp.ReadCurrentFit(vdd)
		check(err)
		fmt.Printf("Read-current fit: a=%.2f (paper %.1f), b=%.3g (paper %.3g); I_read gain @-240mV = %.2fx (paper quotes %.1fx)\n\n",
			fit.A, fit.PaperA, fit.B, fit.PaperB, fit.GainNeg240, fit.PaperGain)
	}

	log.Printf("characterizing %s framework...", mode)
	fw, err := core.NewFramework(mode, core.FrameworkOpts{})
	check(err)
	rows, err := exp.Table4(fw, exp.PaperCapacities())
	check(err)
	emit("table4", exp.Table4Render(rows))
	emit("fig7", exp.Fig7Render(rows))
	emit("fig7d", exp.Fig7dRender(exp.Fig7d(rows)))

	h, err := exp.ComputeHeadline(rows)
	check(err)
	fmt.Printf("Headline (1KB-16KB, HVT-M2 vs LVT-M2): EDP reduction avg %.0f%% (paper 59%%), 16KB %.0f%% (paper 78%%); delay penalty avg %.0f%% max %.0f%% (paper 9%%/12%%)\n",
		h.AvgEDPReduction*100, h.EDPReduction16KB*100, h.AvgDelayPenalty*100, h.MaxDelayPenalty*100)

	if *ext {
		read := cellReadBias(vdd)
		write := cellWriteBias(vdd)
		corners, err := exp.CornerAnalysis(device.HVT, read, write)
		check(err)
		emit("ext_corners", exp.CornerTable("Extension: 6T-HVT at the adopted assist point across process corners", corners))

		temps, err := exp.TemperatureSweep(device.HVT, read, []float64{233, 273, 300, 348, 398})
		check(err)
		emit("ext_temps", exp.TempTable("Extension: 6T-HVT (assisted read bias) across temperature", temps))
	}
	if *extVdd {
		log.Print("re-characterizing per supply (slow)...")
		vs, err := exp.VddScaling(16*1024*8, []float64{0.30, 0.35, 0.40, 0.45})
		check(err)
		emit("ext_vddscale", exp.VddScaleTable(vs))
	}
}

// cellReadBias is the paper's adopted HVT read operating point.
func cellReadBias(vdd float64) cell.ReadBias {
	return cell.ReadBias{Vdd: vdd, VDDC: 0.550, VSSC: -0.240, VWL: vdd}
}

// cellWriteBias is the paper's adopted HVT write operating point.
func cellWriteBias(vdd float64) cell.WriteBias {
	return cell.WriteBias{Vdd: vdd, VWL: 0.540, VBL: 0}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
