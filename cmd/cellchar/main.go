// Command cellchar characterizes the 6T SRAM cell with the bundled circuit
// simulator: noise margins, read current, leakage and write delay for the
// LVT and HVT flavors, with and without the paper's assist techniques.
//
// Usage:
//
//	cellchar [-vdd 0.45]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sramco/internal/cell"
	"sramco/internal/device"
	"sramco/internal/unit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cellchar: ")
	vdd := flag.Float64("vdd", device.Vdd, "nominal supply voltage (V)")
	butterfly := flag.String("butterfly", "", "write read-butterfly CSVs (hold+read) with this filename prefix")
	flag.Parse()

	if *butterfly != "" {
		if err := writeButterflies(*butterfly, *vdd); err != nil {
			log.Fatal(err)
		}
	}

	w := os.Stdout
	for _, f := range []device.Flavor{device.LVT, device.HVT} {
		c := cell.New(f)
		fmt.Fprintf(w, "=== 6T-%s @ Vdd=%s ===\n", f, unit.Volts(*vdd))

		leak, err := c.LeakagePower(*vdd)
		check(err)
		fmt.Fprintf(w, "  leakage power        %s\n", unit.Watts(leak))

		hsnm, err := c.HoldSNM(*vdd)
		check(err)
		fmt.Fprintf(w, "  hold SNM             %s (%.0f%% of Vdd)\n", unit.Volts(hsnm), 100*hsnm / *vdd)

		rb := cell.NominalRead(*vdd)
		rsnm, err := c.ReadSNM(rb)
		check(err)
		fmt.Fprintf(w, "  read SNM (no assist) %s (%.0f%% of Vdd)\n", unit.Volts(rsnm), 100*rsnm / *vdd)

		ir, err := c.ReadCurrent(rb)
		check(err)
		fmt.Fprintf(w, "  read current         %s\n", unit.Amps(ir))

		wb := cell.NominalWrite(*vdd)
		wm, err := c.WriteMargin(wb)
		check(err)
		fmt.Fprintf(w, "  write margin         %s (%.0f%% of Vdd)\n", unit.Volts(wm), 100*wm / *vdd)

		wd, err := c.WriteDelay(wb)
		check(err)
		fmt.Fprintf(w, "  cell write delay     %s\n", unit.Seconds(wd))

		for _, vddc := range []float64{0.50, 0.55, 0.60, 0.64} {
			rb2 := rb
			rb2.VDDC = vddc
			r2, err := c.ReadSNM(rb2)
			check(err)
			i2, err := c.ReadCurrent(rb2)
			check(err)
			fmt.Fprintf(w, "  VDDC=%s: RSNM %s, Iread %s\n", unit.Volts(vddc), unit.Volts(r2), unit.Amps(i2))
		}
		for _, vssc := range []float64{-0.06, -0.12, -0.18, -0.24} {
			rb2 := rb
			rb2.VSSC = vssc
			r2, err := c.ReadSNM(rb2)
			check(err)
			i2, err := c.ReadCurrent(rb2)
			check(err)
			fmt.Fprintf(w, "  VSSC=%s: RSNM %s, Iread %s\n", unit.Volts(vssc), unit.Volts(r2), unit.Amps(i2))
		}
		for _, vwl := range []float64{0.49, 0.54, 0.60} {
			wb2 := wb
			wb2.VWL = vwl
			m2, err := c.WriteMargin(wb2)
			check(err)
			fmt.Fprintf(w, "  VWL=%s: WM %s\n", unit.Volts(vwl), unit.Volts(m2))
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// writeButterflies exports hold and read butterfly branches of both flavors
// as CSV files (x, yA, yB interleaved per curve sample).
func writeButterflies(prefix string, vdd float64) error {
	for _, f := range []device.Flavor{device.LVT, device.HVT} {
		c := cell.New(f)
		hold, err := c.HoldButterfly(vdd)
		if err != nil {
			return err
		}
		read, err := c.ReadButterfly(cell.NominalRead(vdd))
		if err != nil {
			return err
		}
		for name, bf := range map[string]*cell.Butterfly{"hold": hold, "read": read} {
			path := fmt.Sprintf("%s_%s_%s.csv", prefix, f, name)
			var sb strings.Builder
			sb.WriteString("branch,x,y\n")
			for i := range bf.A.X {
				fmt.Fprintf(&sb, "A,%g,%g\n", bf.A.X[i], bf.A.Y[i])
			}
			for i := range bf.B.X {
				fmt.Fprintf(&sb, "B,%g,%g\n", bf.B.X[i], bf.B.Y[i])
			}
			if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
				return err
			}
			log.Printf("wrote %s", path)
		}
	}
	return nil
}
