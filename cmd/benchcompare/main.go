// Command benchcompare guards against performance regressions: it compares
// named benchmarks between two benchmark logs and exits non-zero when the
// current run is slower than the baseline by more than the allowed fraction,
// or when a required benchmark is missing from either log.
//
// Benchmarks that report the searchers' "space-points" metric (the candidate
// space covered, including bound-pruned points) in both logs are compared on
// ns per candidate point instead of raw ns/op, so a branch-and-bound change
// that alters how much of the space is evaluated is judged by its effect on
// total cost per unit of search, not misread as a benchmark-shape change.
//
// Both `go test -json` logs (the BENCH_<date>.json archives written by
// `make bench`) and plain `go test -bench` text output are accepted. When a
// log repeats a benchmark (`-count=N`), the fastest run is used — noise only
// ever adds time, so min-of-N is the stable estimate of true cost.
//
// Usage:
//
//	benchcompare -baseline BENCH_20260806.json -current new.json \
//	             [-max-regress 0.10] BenchmarkA BenchmarkB ...
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the test2json stream benchcompare needs. The
// tool reassembles each package's Output fragments before scanning: test2json
// splits a single benchmark result line across several events (the name and
// the "N ns/op" tail arrive separately), so per-line regexes on raw events
// miss every benchmark.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches one benchmark result in reassembled text output, e.g.
// "BenchmarkModelEvaluation-8   643032   1754 ns/op   560 B/op". The -N
// GOMAXPROCS suffix is stripped so logs from different machines compare; the
// tail of the line is kept so custom metrics can be read out of it.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9]+(?:\.[0-9]+)?) ns/op(.*)$`)

// workUnitsMetric matches a benchmark's work-size metric: the searchers'
// "space-points" (candidate space covered, including bound-pruned points) or
// the Monte Carlo engine's "samples" (draws characterized per op). When both
// logs report the same metric, benchmarks are compared on ns per work unit,
// so a change in how much work one op covers — pruning more of the space,
// stopping a yield run earlier — is not misread as a latency change.
var workUnitsMetric = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?) (space-points|samples)\b`)

// benchResult is one parsed benchmark line: raw ns/op plus the optional
// work-unit normalizer (0 when the benchmark does not report one).
type benchResult struct {
	ns     float64
	points float64
	unit   string // "space-points" or "samples" when points > 0
}

// normalized returns the comparable metric — ns per work unit when the
// benchmark reports its work size, raw ns/op otherwise.
func (r benchResult) normalized(usePoints bool) float64 {
	if usePoints && r.points > 0 {
		return r.ns / r.points
	}
	return r.ns
}

// parseLog extracts Benchmark name → result from a benchmark log in either
// format. For a repeated name (a -count=N run) the fastest result wins:
// scheduler and co-tenant noise only ever add time, so the minimum is the
// best estimate of the code's true cost and makes the gate robust to a
// single slow iteration on a loaded machine.
func parseLog(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	outputs := make(map[string]*strings.Builder) // package → concatenated output
	var order []string
	var plain strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Action == "" {
			// Not a test2json stream: treat the whole file as plain text.
			plain.WriteString(line)
			plain.WriteByte('\n')
			continue
		}
		if ev.Action != "output" {
			continue
		}
		b, ok := outputs[ev.Package]
		if !ok {
			b = &strings.Builder{}
			outputs[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}

	results := make(map[string]benchResult)
	scan := func(text string) {
		for _, m := range benchLine.FindAllStringSubmatch(text, -1) {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			r := benchResult{ns: ns}
			if pm := workUnitsMetric.FindStringSubmatch(m[3]); pm != nil {
				if p, err := strconv.ParseFloat(pm[1], 64); err == nil {
					r.points = p
					r.unit = pm[2]
				}
			}
			if prev, seen := results[m[1]]; !seen || r.normalized(true) < prev.normalized(true) {
				results[m[1]] = r
			}
		}
	}
	for _, pkg := range order {
		scan(outputs[pkg].String())
	}
	scan(plain.String())
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return results, nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline benchmark log (required)")
	current := flag.String("current", "", "current benchmark log (required)")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed ns/op increase as a fraction of the baseline")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchcompare -baseline FILE -current FILE [-max-regress 0.10] [Benchmark...]\n\n"+
				"Without explicit names every benchmark present in both logs is compared;\n"+
				"named benchmarks are required in both logs.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *baseline == "" || *current == "" {
		flag.Usage()
		os.Exit(2)
	}

	base, err := parseLog(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	curr, err := parseLog(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}

	names := flag.Args()
	required := len(names) > 0
	if !required {
		for name := range base {
			if _, ok := curr[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no common benchmarks between the two logs")
		os.Exit(1)
	}

	fmt.Printf("%-40s %14s %14s %9s %10s\n", "benchmark", "baseline", "current", "delta", "unit")
	failed := false
	for _, name := range names {
		b, okB := base[name]
		c, okC := curr[name]
		if !okB || !okC {
			if required {
				missing := *baseline
				if okB {
					missing = *current
				}
				fmt.Printf("%-40s missing from %s\n", name, missing)
				failed = true
			}
			continue
		}
		// Normalize only when both runs report the same work-size metric; a
		// log from before the metric existed still compares on raw ns/op.
		usePoints := b.points > 0 && c.points > 0 && b.unit == c.unit
		unit := "ns/op"
		if usePoints {
			if b.unit == "samples" {
				unit = "ns/sample"
			} else {
				unit = "ns/point"
			}
		}
		bv, cv := b.normalized(usePoints), c.normalized(usePoints)
		delta := (cv - bv) / bv
		mark := ""
		if delta > *maxRegress {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-40s %14.2f %14.2f %8.1f%% %10s%s\n", name, bv, cv, delta*100, unit, mark)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcompare: regression beyond %.0f%% (or missing benchmark) vs %s\n",
			*maxRegress*100, *baseline)
		os.Exit(1)
	}
}
