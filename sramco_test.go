package sramco

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestDefaultFrameworkShared(t *testing.T) {
	f1, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("Default() must return a shared framework")
	}
}

func TestOptimizePublicAPI(t *testing.T) {
	fw, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	best, err := fw.Optimize(1024, HVT, M2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Best.Design.Geom.Bits() != 8192 {
		t.Errorf("capacity = %d bits", best.Best.Design.Geom.Bits())
	}
	if best.Best.Result.EDP <= 0 {
		t.Error("non-positive EDP")
	}
	if _, err := fw.Optimize(0, HVT, M2); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := fw.Optimize(-4, HVT, M2); err == nil {
		t.Error("negative capacity accepted")
	}
	if best.Stats.Evaluated != best.Evaluated || best.Stats.Chunks < 1 || best.Stats.Workers < 1 {
		t.Errorf("search stats not populated: %+v", best.Stats)
	}
}

func TestOptimizeContextPublicAPI(t *testing.T) {
	fw, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = fw.OptimizeContext(ctx, 1024, HVT, M2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled OptimizeContext error = %v, want context.Canceled", err)
	}
	var serr *SearchError
	if !errors.As(err, &serr) {
		t.Fatalf("error %T does not expose SearchStats", err)
	}
	if _, err := fw.Table4Context(ctx, []int{8192}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Table4Context error = %v, want context.Canceled", err)
	}
	// A live context behaves exactly like the plain call.
	got, err := fw.OptimizeWithContext(context.Background(), Options{CapacityBits: 8192, Flavor: HVT, Method: M2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := fw.Optimize(1024, HVT, M2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.Design != plain.Best.Design || got.Evaluated != plain.Evaluated {
		t.Error("context and plain searches disagree")
	}
}

func TestEvaluateRoundTrip(t *testing.T) {
	fw, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	best, err := fw.Optimize(1024, HVT, M2)
	if err != nil {
		t.Fatal(err)
	}
	// Re-evaluating the optimal design must reproduce its metrics.
	r, err := fw.Evaluate(HVT, best.Best.Design, Activity{Alpha: 0.5, Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.EDP-best.Best.Result.EDP)/best.Best.Result.EDP > 1e-12 {
		t.Errorf("re-evaluation EDP %g vs %g", r.EDP, best.Best.Result.EDP)
	}
}

func TestRailsPublic(t *testing.T) {
	fw, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	vddc, vwl, err := fw.Rails(HVT, M2)
	if err != nil {
		t.Fatal(err)
	}
	if vddc != 0.550 || vwl != 0.540 {
		t.Errorf("HVT M2 rails = %g/%g", vddc, vwl)
	}
}

func TestCharacterizeCellPublic(t *testing.T) {
	r, err := CharacterizeCell(HVT)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flavor != HVT {
		t.Error("flavor not propagated")
	}
	if r.HSNM <= 0 || r.RSNM <= 0 || r.WM <= 0 || r.Leakage <= 0 || r.ReadI <= 0 || r.WriteDelay <= 0 {
		t.Errorf("non-positive characterization: %+v", r)
	}
	if r.RSNM >= r.HSNM {
		t.Error("RSNM must be below HSNM")
	}
}

func TestDeltaAndCapacities(t *testing.T) {
	if math.Abs(Delta()-0.35*Vdd) > 1e-12 {
		t.Errorf("Delta = %g", Delta())
	}
	caps := PaperCapacities()
	if len(caps) != 5 || caps[0] != 1024 || caps[4] != 131072 {
		t.Errorf("PaperCapacities = %v", caps)
	}
}

func TestMonteCarloYieldPublic(t *testing.T) {
	r, err := MonteCarloYield(MCConfig{Flavor: HVT, N: 3, Seed: 9, Metrics: 1 /* HSNM */})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) != 3 {
		t.Errorf("samples = %d", len(r.Samples))
	}
}

func TestParetoFrontPublic(t *testing.T) {
	fw, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	front, err := fw.ParetoFront(Options{CapacityBits: 8192, Flavor: HVT, Method: M2})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 2 {
		t.Fatalf("frontier size %d", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].Result.EArray >= front[i-1].Result.EArray {
			t.Fatal("frontier not strictly improving in energy")
		}
	}
}

func TestCornerAnalysisPublic(t *testing.T) {
	rows, err := CornerAnalysis(HVT,
		ReadBias{Vdd: Vdd, VDDC: 0.55, VSSC: -0.24, VWL: Vdd},
		WriteBias{Vdd: Vdd, VWL: 0.54})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("corners = %d", len(rows))
	}
}

func TestTemperatureSweepPublic(t *testing.T) {
	rows, err := TemperatureSweep(HVT, ReadBias{Vdd: Vdd, VDDC: Vdd, VSSC: 0, VWL: Vdd}, []float64{300, 398})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].Leak <= rows[0].Leak {
		t.Fatalf("temperature sweep rows: %+v", rows)
	}
}

func TestHeadlineStatsPublic(t *testing.T) {
	fw, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := fw.Table4([]int{8192, 131072})
	if err != nil {
		t.Fatal(err)
	}
	h, err := HeadlineStats(rows)
	if err != nil {
		t.Fatal(err)
	}
	if h.AvgEDPReduction <= 0 {
		t.Errorf("EDP reduction %g, want positive (paper: 59%%)", h.AvgEDPReduction)
	}
}
