// Package sramco is a device-circuit-architecture co-optimization framework
// for minimizing the energy-delay product (EDP) of FinFET SRAM arrays,
// reproducing Shafaei, Afzali-Kusha and Pedram, "Minimizing the Energy-Delay
// Product of SRAM Arrays using a Device-Circuit-Architecture Co-Optimization
// Framework" (DAC 2016).
//
// The framework spans three levels:
//
//   - Device: a calibrated 7 nm FinFET compact model with LVT and HVT
//     flavors (HVT: 2× lower ION, 20× lower IOFF, 10× higher ON/OFF ratio),
//     plus a compact SPICE-like circuit simulator used for all cell and
//     peripheral characterization.
//   - Circuit: read/write assist techniques — Vdd boost (VDDC), negative
//     Gnd (VSSC) and wordline overdrive (VWL) — whose levels are pinned at
//     the minimum values meeting the yield constraint
//     min(HSNM, RSNM, WM) ≥ 0.35·Vdd.
//   - Architecture: the array organization (rows n_r, columns n_c,
//     precharger fins N_pre, write-buffer fins N_wr), searched exhaustively
//     together with VSSC for the minimum-EDP design.
//
// Basic use:
//
//	fw, err := sramco.NewFramework(sramco.TechPaper)
//	if err != nil { ... }
//	opt, err := fw.Optimize(4096, sramco.HVT, sramco.M2) // a 4 KB array
//	fmt.Println(opt.Best.Design.Geom.NR, opt.Best.Result.EDP)
package sramco

import (
	"context"
	"fmt"
	"sync"

	"sramco/internal/array"
	"sramco/internal/cell"
	"sramco/internal/core"
	"sramco/internal/device"
	"sramco/internal/exp"
	"sramco/internal/mc"
	"sramco/internal/wire"
)

// Re-exported domain types. These aliases give external code names for the
// types flowing through the public API.
type (
	// Flavor is the cell threshold-voltage flavor (LVT or HVT).
	Flavor = device.Flavor
	// Mode selects paper-calibrated or fully simulated characterization.
	Mode = core.Mode
	// Method is the assist-rail restriction (M1: one extra rail; M2: free).
	Method = core.Method
	// Geometry is the array organization (n_r × n_c, W, N_pre, N_wr).
	Geometry = wire.Geometry
	// Design is a candidate design point: geometry plus assist rails.
	Design = array.Design
	// Result is the full analytical evaluation of a design point.
	Result = array.Result
	// Activity carries the workload factors α (access probability) and β
	// (read fraction) of the paper's Eq. (3)/(5).
	Activity = array.Activity
	// EnergyAccounting selects the Table-3 energy interpretation.
	EnergyAccounting = array.EnergyAccounting
	// Options configures a single optimization run in full detail.
	Options = core.Options
	// SearchSpace bounds the exhaustive search (§5 ranges).
	SearchSpace = core.SearchSpace
	// Objective maps an evaluated design to the scalar being minimized.
	Objective = core.Objective
	// Optimum is the outcome of an optimization run.
	Optimum = core.Optimum
	// SearchStats records the observability counters of a search run
	// (evaluations, skips by reason, sharding, wall time).
	SearchStats = core.SearchStats
	// SearchError is returned when a search aborts on a model error or a
	// context cancellation; it carries the counts accumulated so far.
	SearchError = core.SearchError
	// ReadBias and WriteBias are cell bias conditions for characterization.
	ReadBias  = cell.ReadBias
	WriteBias = cell.WriteBias
	// Table4Row is one optimized configuration (paper Table 4 / Fig. 7).
	Table4Row = exp.Table4Row
	// Headline aggregates the paper's abstract statistics.
	Headline = exp.Headline
	// MCConfig and MCResult drive Monte Carlo yield analysis.
	MCConfig = mc.Config
	MCResult = mc.Result
	// MCSampler selects the Monte Carlo draw sequence (plain, Sobol', LHS).
	MCSampler = mc.Sampler
	// MCStreamConfig, MCCheckpoint, MCMetricStat and MCStreamResult drive
	// the streaming yield engine (MonteCarloYieldStream).
	MCStreamConfig = mc.StreamConfig
	MCCheckpoint   = mc.Checkpoint
	MCMetricStat   = mc.MetricStat
	MCStreamResult = mc.StreamResult
)

// Re-exported constants.
const (
	LVT = device.LVT
	HVT = device.HVT

	M1 = core.M1
	M2 = core.M2

	TechPaper     = core.TechPaper
	TechSimulated = core.TechSimulated

	WorstCasePath = array.WorstCasePath
	AllColumns    = array.AllColumns

	// Vdd is the nominal supply voltage of the 7 nm library (450 mV).
	Vdd = device.Vdd
	// DeltaVS is the bitline sense voltage ΔVs (120 mV).
	DeltaVS = core.DefaultDeltaVS
)

// Delta returns the paper's minimum acceptable noise margin δ = 0.35·Vdd.
func Delta() float64 { return core.DefaultDelta(Vdd) }

// DefaultSearchSpace returns the paper's §5 variable ranges — the space
// Optimize sweeps when Options.Space is zero.
func DefaultSearchSpace() SearchSpace { return core.DefaultSpace() }

// ParseFlavor parses "lvt"/"hvt" (case-insensitive) into a Flavor; the
// canonical inverse of Flavor.String, shared by the CLIs and the serving
// layer's request canonicalization.
func ParseFlavor(s string) (Flavor, error) { return device.ParseFlavor(s) }

// ParseMethod parses "m1"/"m2" (case-insensitive) into a Method.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// ObjectiveByName maps "edp" (or ""), "delay", "energy", "area" and "padp"
// to the built-in search objectives. The name, not the function, is the
// canonical form used in serialized requests and cache keys.
func ObjectiveByName(name string) (Objective, bool) { return core.ObjectiveByName(name) }

// ErrInfeasible is wrapped by every "no feasible design" search failure;
// test with errors.Is to distinguish an empty feasible region from a model
// error or a cancellation.
var ErrInfeasible = core.ErrInfeasible

// Framework is a characterized co-optimization context. Construction runs
// circuit simulations; reuse one Framework across optimizations.
type Framework struct {
	core *core.Framework
}

// NewFramework characterizes the 7 nm technology and both cell flavors
// under the given mode.
func NewFramework(mode Mode) (*Framework, error) {
	fw, err := core.NewFramework(mode, core.FrameworkOpts{})
	if err != nil {
		return nil, err
	}
	return &Framework{core: fw}, nil
}

// NewFrameworkWithAccounting is NewFramework with an explicit Table-3
// energy-accounting interpretation (ablation knob).
func NewFrameworkWithAccounting(mode Mode, acct EnergyAccounting) (*Framework, error) {
	fw, err := core.NewFramework(mode, core.FrameworkOpts{Accounting: acct})
	if err != nil {
		return nil, err
	}
	return &Framework{core: fw}, nil
}

var (
	defaultOnce sync.Once
	defaultFW   *Framework
	defaultErr  error
)

// Default returns a process-wide shared TechPaper framework.
func Default() (*Framework, error) {
	defaultOnce.Do(func() { defaultFW, defaultErr = NewFramework(TechPaper) })
	return defaultFW, defaultErr
}

// Core exposes the underlying core framework for advanced use (custom
// objectives, search spaces, greedy ablation).
func (f *Framework) Core() *core.Framework { return f.core }

// Fingerprint digests every model input that shapes a search result —
// calibration mode, constants, peripheral characterization, and the
// per-flavor cell surfaces. Equal fingerprints mean bit-identical searches;
// the precomputed design-space catalog is versioned by it.
func (f *Framework) Fingerprint() [32]byte { return f.core.Fingerprint() }

// Optimize finds the minimum-EDP design for an array of capacityBytes using
// the paper's default workload (α = β = 0.5, W = 64, δ = 0.35·Vdd) and
// search ranges. The search is deterministic: the returned Optimum is
// bit-identical for any GOMAXPROCS.
func (f *Framework) Optimize(capacityBytes int, flavor Flavor, method Method) (*Optimum, error) {
	return f.OptimizeContext(context.Background(), capacityBytes, flavor, method)
}

// OptimizeContext is Optimize with cancellation: the search stops at the
// first model error or when ctx is done, returning a *SearchError that
// carries the causal error and the counts accumulated up to the abort.
func (f *Framework) OptimizeContext(ctx context.Context, capacityBytes int, flavor Flavor, method Method) (*Optimum, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("sramco: capacity %d bytes must be positive", capacityBytes)
	}
	return f.core.OptimizeContext(ctx, core.Options{
		CapacityBits: capacityBytes * 8,
		Flavor:       flavor,
		Method:       method,
	})
}

// OptimizeWith runs an optimization with fully explicit options.
func (f *Framework) OptimizeWith(opts Options) (*Optimum, error) { return f.core.Optimize(opts) }

// OptimizeWithContext is OptimizeWith with cancellation.
func (f *Framework) OptimizeWithContext(ctx context.Context, opts Options) (*Optimum, error) {
	return f.core.OptimizeContext(ctx, opts)
}

// Evaluate runs the analytical array model on one explicit design point. A
// hybrid design (Design.Groups set) assigns row groups selected by
// Design.GroupMask to flavor's alternate (LVT↔HVT) and evaluates the array
// under the per-group cell model.
func (f *Framework) Evaluate(flavor Flavor, d Design, act Activity) (*Result, error) {
	tech, err := f.core.ArrayTech(flavor)
	if err != nil {
		return nil, err
	}
	if d.Groups != 0 {
		alt, err := f.core.HybridAltTerms(flavor)
		if err != nil {
			return nil, err
		}
		return array.EvaluateHybrid(tech, d, act, alt)
	}
	return array.Evaluate(tech, d, act)
}

// Rails returns the assist rail voltages (VDDC, VWL) the method pins for a
// flavor before the search.
func (f *Framework) Rails(flavor Flavor, m Method) (vddc, vwl float64, err error) {
	return f.core.Rails(flavor, m)
}

// Table4 reproduces the paper's Table 4 (and the data behind Fig. 7) over
// the given capacities in bits; pass exp.PaperCapacities() via
// PaperCapacities() for the paper's set.
func (f *Framework) Table4(capacityBits []int) ([]Table4Row, error) {
	return exp.Table4(f.core, capacityBits)
}

// Table4Context is Table4 with cancellation threaded through every search.
func (f *Framework) Table4Context(ctx context.Context, capacityBits []int) ([]Table4Row, error) {
	return exp.Table4Context(ctx, f.core, capacityBits)
}

// HeadlineStats computes the abstract's aggregate numbers from Table-4
// rows: average EDP reduction and delay penalty of HVT-M2 vs LVT-M2.
func HeadlineStats(rows []Table4Row) (*Headline, error) { return exp.ComputeHeadline(rows) }

// PaperCapacities returns the five capacities of Table 4 / Fig. 7 in bits
// (128 B to 16 KB).
func PaperCapacities() []int { return exp.PaperCapacities() }

// CellReport summarizes one characterized 6T cell at nominal conditions.
type CellReport struct {
	Flavor     Flavor
	HSNM       float64 // hold static noise margin (V)
	RSNM       float64 // read static noise margin, no assist (V)
	WM         float64 // write margin, no assist (V)
	Leakage    float64 // standby leakage power (W)
	ReadI      float64 // read current, no assist (A)
	WriteDelay float64 // cell write delay, no assist (s)
}

// CharacterizeCell measures a nominal 6T cell of the given flavor with the
// bundled circuit simulator at the nominal supply.
func CharacterizeCell(flavor Flavor) (*CellReport, error) {
	c := cell.New(flavor)
	r := &CellReport{Flavor: flavor}
	var err error
	if r.HSNM, err = c.HoldSNM(Vdd); err != nil {
		return nil, err
	}
	if r.RSNM, err = c.ReadSNM(cell.NominalRead(Vdd)); err != nil {
		return nil, err
	}
	if r.WM, err = c.WriteMargin(cell.NominalWrite(Vdd)); err != nil {
		return nil, err
	}
	if r.Leakage, err = c.LeakagePower(Vdd); err != nil {
		return nil, err
	}
	if r.ReadI, err = c.ReadCurrent(cell.NominalRead(Vdd)); err != nil {
		return nil, err
	}
	if r.WriteDelay, err = c.WriteDelay(cell.NominalWrite(Vdd)); err != nil {
		return nil, err
	}
	return r, nil
}

// MonteCarloYield runs a Monte Carlo margin analysis (paper §2/§4: the
// yield justification for δ = 0.35·Vdd).
func MonteCarloYield(cfg MCConfig) (*MCResult, error) { return mc.Run(cfg) }

// MonteCarloYieldContext is MonteCarloYield with cancellation: the run stops
// early when ctx is done, abandoning pending samples and returning the
// cancellation cause with the done/total counts.
func MonteCarloYieldContext(ctx context.Context, cfg MCConfig) (*MCResult, error) {
	return mc.RunContext(ctx, cfg)
}

// MonteCarloYieldStream runs the streaming Monte Carlo engine: incremental
// Welford statistics with confidence intervals on μ−3σ and the fail
// fraction, a checkpoint emitted at each block-aligned interval, and an
// early stop once every requested metric's relative CI is inside
// cfg.RelCI. emit may be nil to collect only the final result.
func MonteCarloYieldStream(ctx context.Context, cfg MCStreamConfig, emit func(MCCheckpoint) error) (*MCStreamResult, error) {
	return mc.RunStream(ctx, cfg, emit)
}

// ParseMCSampler parses a sampler name ("mc", "sobol", "lhs").
func ParseMCSampler(s string) (MCSampler, error) { return mc.ParseSampler(s) }

// DesignPoint pairs a design with its evaluated metrics (see ParetoFront).
type DesignPoint = core.DesignPoint

// ParetoResult pairs the energy-delay frontier with the search statistics
// of the sweep that produced it (see ParetoSearch).
type ParetoResult = core.ParetoResult

// ParetoFront returns the full energy-delay frontier of the search space
// instead of the single EDP optimum: every feasible design no other design
// beats on both delay and energy, sorted by increasing delay. Use
// core.KneePoint (via Core()) to pick a balanced point.
func (f *Framework) ParetoFront(opts Options) ([]DesignPoint, error) {
	return f.core.ParetoFront(opts)
}

// ParetoSearch is ParetoFront returning the SearchStats of the sweep
// alongside the frontier, mirroring what Optimize reports.
func (f *Framework) ParetoSearch(opts Options) (*ParetoResult, error) {
	return f.core.ParetoSearch(opts)
}

// ParetoSearchContext is ParetoSearch with cancellation threaded through
// every chunk of the sweep.
func (f *Framework) ParetoSearchContext(ctx context.Context, opts Options) (*ParetoResult, error) {
	return f.core.ParetoSearchContext(ctx, opts)
}

// CornerRow and TempRow are the extension-experiment row types.
type (
	CornerRow = exp.CornerRow
	TempRow   = exp.TempRow
)

// CornerAnalysis characterizes a cell flavor at all five process corners
// under explicit assist biases — sign-off of a chosen operating point
// (extension beyond the paper).
func CornerAnalysis(flavor Flavor, read ReadBias, write WriteBias) ([]CornerRow, error) {
	return exp.CornerAnalysis(flavor, read, write)
}

// TemperatureSweep characterizes a cell flavor across operating
// temperatures (kelvin) at the given read bias (extension).
func TemperatureSweep(flavor Flavor, read ReadBias, temps []float64) ([]TempRow, error) {
	return exp.TemperatureSweep(flavor, read, temps)
}
