.title 6T-HVT read access with Vdd boost and negative Gnd
* Rails: CVDD boosted to 550mV, CVSS at -240mV, WL on, BLs precharged.
vcvdd cvdd 0 DC 550m
vcvss cvss 0 DC -240m
vwl   wl   0 DC 450m
vbl   bl   0 DC 450m
vblb  blb  0 DC 450m
* Left half-cell (stores 0 on q)
mpu1 q qb cvdd phvt
mpd1 q qb cvss nhvt
max1 bl wl q nhvt
* Right half-cell
mpu2 qb q cvdd phvt
mpd2 qb q cvss nhvt
max2 blb wl qb nhvt
.ic v(q)=-240m v(qb)=550m
.op
.print v(q) v(qb)
.end
