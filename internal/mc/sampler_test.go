package mc

import (
	"math"
	"testing"

	"sramco/internal/device"
)

// normCDF is Φ, used to map drawn z values back into (0,1) for
// stratification checks.
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

func TestParseSamplerRoundTrip(t *testing.T) {
	for s := SamplerMC; s < numSamplers; s++ {
		got, err := ParseSampler(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSampler(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if _, err := ParseSampler("halton"); err == nil {
		t.Error("ParseSampler accepted an unknown name")
	}
	if got := Sampler(99).String(); got != "Sampler(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

// TestSampleSeedDistinct guards the SplitMix64 seed derivation: within a run
// every sample must get a distinct PRNG seed, and — the bug the derivation
// replaced — two runs with different base seeds must not share any per-sample
// seeds (the old XOR mixing collided whole sample streams across runs).
func TestSampleSeedDistinct(t *testing.T) {
	const n = 4096
	seen := make(map[int64]string, 2*n)
	for _, base := range []int64{7, 7 ^ 1} { // adjacent seeds: worst case for XOR mixing
		for i := 0; i < n; i++ {
			s := sampleSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (base %d, i %d) and %s both map to %d", base, i, prev, s)
			}
			seen[s] = "earlier sample"
		}
	}
}

func TestPlanBlocks(t *testing.T) {
	for _, n := range []int{2, 3, 31, 32, 33, 64, 300, 301, 1024, 1025, 20000} {
		size, count := planBlocks(n)
		if size < 1 || size > 32 {
			t.Errorf("planBlocks(%d): size %d out of range", n, size)
		}
		if (count-1)*size >= n || count*size < n {
			t.Errorf("planBlocks(%d) = (%d, %d): blocks do not tile the samples", n, size, count)
		}
	}
}

// TestDrawDeterministic draws every sample twice through independent drawers
// and requires bit-identical ΔVt and weights, for each sampler.
func TestDrawDeterministic(t *testing.T) {
	for s := SamplerMC; s < numSamplers; s++ {
		cfg := Config{Flavor: device.HVT, N: 64, Seed: 9, Sampler: s, Tilt: 2}
		if err := cfg.normalize(); err != nil {
			t.Fatal(err)
		}
		d1, err := newDrawer(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		d2, _ := newDrawer(&cfg)
		for i := 0; i < cfg.N; i++ {
			var a, b Sample
			d1.draw(i, &a)
			d2.draw(i, &b)
			if a != b {
				t.Fatalf("%v: sample %d differs between identical drawers", s, i)
			}
		}
	}
}

// TestLHSStratifies checks the Latin-hypercube property: within one
// evaluation block, each dimension's draws occupy every equal-probability
// stratum exactly once (visible through Φ of the reconstructed z).
func TestLHSStratifies(t *testing.T) {
	cfg := Config{Flavor: device.HVT, N: 1024, Seed: 3, Sampler: SamplerLHS}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	d, err := newDrawer(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	bn := d.blockSize
	if bn != 32 {
		t.Fatalf("blockSize = %d, want 32 for N=1024", bn)
	}
	for dim := 0; dim < 6; dim++ {
		hit := make([]bool, bn)
		for j := 0; j < bn; j++ {
			var s Sample
			d.draw(j, &s)
			u := normCDF(s.DVt[dim] / cfg.SigmaVt)
			k := int(u * float64(bn))
			if k < 0 || k >= bn || hit[k] {
				t.Fatalf("dim %d: draw %d lands in stratum %d (u=%g): not a Latin hypercube", dim, j, k, u)
			}
			hit[k] = true
		}
	}
}

// TestSobolStratifies checks that the Sobol-driven ΔVt draws inherit the
// sequence's stratification: Φ of the first 64 draws fills all 64 bins in
// every dimension.
func TestSobolStratifies(t *testing.T) {
	cfg := Config{Flavor: device.HVT, N: 64, Seed: 11, Sampler: SamplerSobol}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	d, err := newDrawer(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Index shift: draw(i) consumes Sobol point i+1, so a full stratified
	// batch of 64 points spans draws 63..126 (points 64..127 share the
	// leading bits that define the 64-bin stratification).
	for dim := 0; dim < 6; dim++ {
		hit := make([]bool, 64)
		for i := 63; i < 127; i++ {
			var s Sample
			d.draw(i, &s)
			u := normCDF(s.DVt[dim] / cfg.SigmaVt)
			k := int(u * 64)
			if k < 0 || k >= 64 || hit[k] {
				t.Fatalf("dim %d: draw %d lands in occupied stratum %d", dim, i, k)
			}
			hit[k] = true
		}
	}
}

// TestTiltWeights cross-checks the importance tilt against an untilted drawer
// with the same seed: plain-MC z draws are identical, so the tilted ΔVt must
// be exactly τ× the untilted ones, with the exact density-ratio weight.
func TestTiltWeights(t *testing.T) {
	const tau = 3.0
	base := Config{Flavor: device.HVT, N: 32, Seed: 5}
	tilted := base
	tilted.Tilt = tau
	if err := base.normalize(); err != nil {
		t.Fatal(err)
	}
	if err := tilted.normalize(); err != nil {
		t.Fatal(err)
	}
	d0, _ := newDrawer(&base)
	d1, _ := newDrawer(&tilted)
	for i := 0; i < base.N; i++ {
		var s0, s1 Sample
		d0.draw(i, &s0)
		d1.draw(i, &s1)
		want := 1.0
		for tr := range s0.DVt {
			// τ·σ·z and τ·(σ·z) round differently; compare to the last ulp.
			if math.Abs(s1.DVt[tr]-tau*s0.DVt[tr]) > 1e-15*math.Abs(s0.DVt[tr]) {
				t.Fatalf("sample %d dim %d: tilted draw %g != τ·%g", i, tr, s1.DVt[tr], s0.DVt[tr])
			}
			z := s0.DVt[tr] / base.SigmaVt
			want *= tau * math.Exp(-(tau*tau-1)*z*z/2)
		}
		if math.Abs(s1.Weight-want) > 1e-12*math.Abs(want) {
			t.Fatalf("sample %d: weight %g, want %g", i, s1.Weight, want)
		}
		if s0.Weight != 1 {
			t.Fatalf("untilted sample %d has weight %g", i, s0.Weight)
		}
	}
}

// TestSampleMinNoAllocs pins Sample.Min to zero allocations: it runs inside
// the per-sample observability hot path and the FailFraction loop.
func TestSampleMinNoAllocs(t *testing.T) {
	s := Sample{HSNM: 0.2, RSNM: math.NaN(), WM: 0.1}
	var sink float64
	if n := testing.AllocsPerRun(100, func() { sink = s.Min() }); n != 0 {
		t.Errorf("Sample.Min allocates %v times per call, want 0", n)
	}
	_ = sink
}
