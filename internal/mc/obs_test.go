package mc

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"sramco/internal/obs"
)

// snapshotAfterRun resets the default registry, runs the config under the
// given GOMAXPROCS, and returns the resulting metric snapshot.
func snapshotAfterRun(t *testing.T, procs int, cfg Config) obs.Snapshot {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	obs.Default().Reset()
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run at GOMAXPROCS=%d: %v", procs, err)
	}
	return obs.Default().Snapshot()
}

// TestCountersDeterministicAcrossGOMAXPROCS proves every counter — the mc
// sample counts and all the circuit/cell work counters underneath — is
// bit-identical whether the samples run on one worker or eight: the metrics
// count work performed, never scheduling.
func TestCountersDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := Config{N: 4, Seed: 7, Metrics: HSNM}
	one := snapshotAfterRun(t, 1, cfg)
	eight := snapshotAfterRun(t, 8, cfg)

	if !reflect.DeepEqual(one.Counters, eight.Counters) {
		t.Errorf("counters differ across GOMAXPROCS:\n 1: %v\n 8: %v", one.Counters, eight.Counters)
	}
	// Histogram observation counts are scheduling-independent too (the
	// recorded durations are not — compare counts only).
	for name, h1 := range one.Histograms {
		if h8, ok := eight.Histograms[name]; ok && h1.Count != h8.Count {
			t.Errorf("histogram %s count %d at GOMAXPROCS=1, %d at 8", name, h1.Count, h8.Count)
		}
	}
	if one.Counters["mc.samples.done"] != int64(cfg.N) {
		t.Errorf("mc.samples.done = %d, want %d", one.Counters["mc.samples.done"], cfg.N)
	}
}

// TestRunContextCanceled proves a canceled context aborts the run before
// any pending sample starts and surfaces the cancellation cause.
func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{N: 8, Seed: 1, Metrics: HSNM})
	if err == nil {
		t.Fatal("RunContext on a canceled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "canceled after 0 of 8 samples") {
		t.Errorf("error %q does not report the done/total counts", err)
	}
}

// TestRunStatsPopulated checks the execution summary of a completed run.
func TestRunStatsPopulated(t *testing.T) {
	res, err := Run(Config{N: 2, Seed: 3, Metrics: HSNM})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Samples != 2 || s.Workers < 1 || s.Wall <= 0 {
		t.Errorf("RunStats = %+v, want 2 samples, ≥1 worker, positive wall time", s)
	}
	if !strings.Contains(s.String(), "2 samples") {
		t.Errorf("RunStats.String() = %q", s.String())
	}
}
