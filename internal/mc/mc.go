// Package mc implements Monte Carlo yield analysis of the 6T SRAM cell
// under random threshold-voltage variation — the analysis the paper uses
// (§2, §4) to justify the noise-margin constraint δ = 0.35·Vdd and the
// μ−kσ yield formulation.
//
// Each sample draws an independent Gaussian ΔVt for each of the six cell
// transistors (random dopant/work-function fluctuation of a single fin) and
// re-characterizes the margins with the circuit simulator. Sampling is
// deterministic for a given seed, independent of parallel scheduling.
package mc

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"sramco/internal/cell"
	"sramco/internal/device"
	"sramco/internal/num"
)

// DefaultSigmaVt is the per-device threshold σ (V) for a single 7 nm fin;
// single-fin devices maximize variability, which is why the paper requires
// margins ≥ 35% of Vdd.
const DefaultSigmaVt = 0.025

// Metric selects which margins a run computes.
type Metric int

const (
	HSNM       Metric = 1 << iota // hold static noise margin
	RSNM                          // read static noise margin
	WM                            // write margin
	AllMetrics = HSNM | RSNM | WM
)

// Config describes one Monte Carlo experiment.
type Config struct {
	Flavor  device.Flavor
	SigmaVt float64 // per-device ΔVt standard deviation; 0 selects DefaultSigmaVt
	N       int     // number of samples (≥ 2)
	Seed    int64   // base PRNG seed; same seed ⇒ same samples

	Read    cell.ReadBias  // bias for RSNM; zero value selects NominalRead(Vdd)
	Write   cell.WriteBias // bias for WM; zero value selects NominalWrite(Vdd)
	Vdd     float64        // nominal supply; 0 selects device.Vdd
	Metrics Metric         // which margins to compute; 0 selects AllMetrics
}

func (c *Config) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("mc: need N ≥ 2 samples, got %d", c.N)
	}
	if c.SigmaVt == 0 {
		c.SigmaVt = DefaultSigmaVt
	}
	if c.SigmaVt < 0 {
		return fmt.Errorf("mc: negative σVt %g", c.SigmaVt)
	}
	if c.Vdd == 0 {
		c.Vdd = device.Vdd
	}
	if c.Read == (cell.ReadBias{}) {
		c.Read = cell.NominalRead(c.Vdd)
	}
	if c.Write == (cell.WriteBias{}) {
		c.Write = cell.NominalWrite(c.Vdd)
	}
	if c.Metrics == 0 {
		c.Metrics = AllMetrics
	}
	return nil
}

// Sample is one Monte Carlo draw. Margins not requested are NaN.
type Sample struct {
	DVt  cell.Variation
	HSNM float64
	RSNM float64
	WM   float64
}

// Min returns the smallest computed margin of the sample.
func (s Sample) Min() float64 {
	m := math.Inf(1)
	for _, v := range []float64{s.HSNM, s.RSNM, s.WM} {
		if !math.IsNaN(v) && v < m {
			m = v
		}
	}
	return m
}

// Result aggregates a Monte Carlo run.
type Result struct {
	Config  Config
	Samples []Sample

	HSNM, RSNM, WM num.Summary // summaries of the computed metrics
}

// Run executes the experiment, parallelized across CPU cores.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	lib := device.Default7nm()
	samples := make([]Sample, cfg.N)
	errs := make([]error, cfg.N)

	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.N {
		workers = cfg.N
	}
	next := make(chan int, cfg.N)
	for i := 0; i < cfg.N; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				samples[i], errs[i] = runSample(lib, cfg, i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mc: sample %d: %w", i, err)
		}
	}
	res := &Result{Config: cfg, Samples: samples}
	collect := func(get func(Sample) float64) num.Summary {
		vals := make([]float64, 0, cfg.N)
		for _, s := range samples {
			if v := get(s); !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return num.Summary{}
		}
		return num.Summarize(vals)
	}
	res.HSNM = collect(func(s Sample) float64 { return s.HSNM })
	res.RSNM = collect(func(s Sample) float64 { return s.RSNM })
	res.WM = collect(func(s Sample) float64 { return s.WM })
	return res, nil
}

// runSample draws the per-transistor shifts for sample i (deterministically
// from the seed) and characterizes the perturbed cell.
func runSample(lib *device.Library, cfg Config, i int) (Sample, error) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(i+1)*0x9E3779B97F4A7C15)))
	var s Sample
	s.HSNM, s.RSNM, s.WM = math.NaN(), math.NaN(), math.NaN()
	for t := range s.DVt {
		s.DVt[t] = rng.NormFloat64() * cfg.SigmaVt
	}
	c := &cell.Cell{Lib: lib, Flavor: cfg.Flavor, DVt: s.DVt}
	var err error
	if cfg.Metrics&HSNM != 0 {
		if s.HSNM, err = c.HoldSNM(cfg.Vdd); err != nil {
			return s, fmt.Errorf("HSNM: %w", err)
		}
	}
	if cfg.Metrics&RSNM != 0 {
		if s.RSNM, err = c.ReadSNM(cfg.Read); err != nil {
			return s, fmt.Errorf("RSNM: %w", err)
		}
	}
	if cfg.Metrics&WM != 0 {
		if s.WM, err = c.WriteMargin(cfg.Write); err != nil {
			// A write margin ≤ 0 (write fails at the applied VWL) is a
			// legitimate fail sample, not an infrastructure error.
			s.WM = 0
		}
	}
	return s, nil
}

// MuMinusKSigma returns μ − k·σ for a summary — the paper's yield statistic.
func MuMinusKSigma(s num.Summary, k float64) float64 { return s.Mean - k*s.Std }

// FailFraction returns the fraction of samples whose minimum computed margin
// falls below delta.
func (r *Result) FailFraction(delta float64) float64 {
	fails := 0
	for _, s := range r.Samples {
		if s.Min() < delta {
			fails++
		}
	}
	return float64(fails) / float64(len(r.Samples))
}
