// Package mc implements Monte Carlo yield analysis of the 6T SRAM cell
// under random threshold-voltage variation — the analysis the paper uses
// (§2, §4) to justify the noise-margin constraint δ = 0.35·Vdd and the
// μ−kσ yield formulation.
//
// Each sample draws a ΔVt for each of the six cell transistors (random
// dopant/work-function fluctuation of a single fin) and re-characterizes the
// margins with the circuit simulator through a per-worker scratch path that
// reuses netlists and Newton workspaces across samples. Draws come from
// plain Monte Carlo, scrambled Sobol', or Latin-hypercube sequences
// (Config.Sampler), optionally tilted toward the distribution tail with
// exact importance weights (Config.Tilt). Sampling is deterministic for a
// given seed, independent of parallel scheduling.
//
// RunContext evaluates a fixed N; RunStream additionally maintains streaming
// Welford statistics with confidence intervals on μ−3σ and the fail
// fraction, emitting checkpoints and stopping early once a requested
// relative CI is met.
package mc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sramco/internal/cell"
	"sramco/internal/device"
	"sramco/internal/num"
	"sramco/internal/obs"
)

// Monte Carlo run metrics: total/done counts drive progress tickers; the
// histogram records per-sample wall time. Sample counts are deterministic
// for a given Config regardless of GOMAXPROCS (streaming early-stop runs may
// evaluate — and discard — blocks past the stop point, so only their merged
// statistics are scheduling-independent, not mc.samples.done).
// mc.samples.total is the number of samples belonging to runs currently in
// flight — each run adds its N on entry and subtracts it on exit, so
// concurrent runs compose instead of clobbering each other.
// mc.samples.writefail counts samples whose write margin was ≤ 0 (a
// legitimate fail draw, not a solver error).
var (
	mRuns         = obs.NewCounter("mc.runs")
	mSamplesDone  = obs.NewCounter("mc.samples.done")
	mSampleFails  = obs.NewCounter("mc.samples.errors")
	mWriteFails   = obs.NewCounter("mc.samples.writefail")
	gSamplesTotal = obs.NewGauge("mc.samples.total")
	hSampleDur    = obs.NewHistogram("mc.sample_duration")
)

// writeMarginFn is a test seam over the write-margin evaluation: the package
// tests swap it in to gate samples and to inject infrastructure errors that
// the real simulator cannot be made to produce deterministically. When nil
// (the default) samples go through the reusable scratch path.
var writeMarginFn func(*cell.Cell, cell.WriteBias) (float64, error)

// DefaultSigmaVt is the per-device threshold σ (V) for a single 7 nm fin;
// single-fin devices maximize variability, which is why the paper requires
// margins ≥ 35% of Vdd.
const DefaultSigmaVt = 0.025

// MaxTilt bounds the importance-sampling σ inflation. Beyond this the
// weight spread makes the effective sample size collapse faster than the
// tail coverage helps.
const MaxTilt = 8.0

// Metric selects which margins a run computes.
type Metric int

const (
	HSNM       Metric = 1 << iota // hold static noise margin
	RSNM                          // read static noise margin
	WM                            // write margin
	AllMetrics = HSNM | RSNM | WM
)

// Config describes one Monte Carlo experiment.
type Config struct {
	Flavor  device.Flavor
	SigmaVt float64 // per-device ΔVt standard deviation; 0 selects DefaultSigmaVt
	N       int     // number of samples (≥ 2)
	Seed    int64   // base PRNG seed; same seed ⇒ same samples

	Read    cell.ReadBias  // bias for RSNM; zero value selects NominalRead(Vdd)
	Write   cell.WriteBias // bias for WM; zero value selects NominalWrite(Vdd)
	Vdd     float64        // nominal supply; 0 selects device.Vdd
	Metrics Metric         // which margins to compute; 0 selects AllMetrics

	Sampler Sampler // draw sequence; zero value is plain Monte Carlo
	// Tilt is the importance-sampling σ inflation τ: draws come from
	// N(0, (τσ)²) with exact density-ratio weights, concentrating samples in
	// the μ−kσ tail. 0 or 1 disables the tilt; valid range is [1, MaxTilt].
	Tilt float64
}

func (c *Config) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("mc: need N ≥ 2 samples, got %d", c.N)
	}
	if c.SigmaVt == 0 {
		c.SigmaVt = DefaultSigmaVt
	}
	if !(c.SigmaVt > 0) || math.IsInf(c.SigmaVt, 0) {
		return fmt.Errorf("mc: σVt %g must be positive and finite", c.SigmaVt)
	}
	if c.Vdd == 0 {
		c.Vdd = device.Vdd
	}
	if !(c.Vdd > 0) || math.IsInf(c.Vdd, 0) {
		return fmt.Errorf("mc: Vdd %g must be positive and finite", c.Vdd)
	}
	if c.Read == (cell.ReadBias{}) {
		c.Read = cell.NominalRead(c.Vdd)
	}
	if c.Write == (cell.WriteBias{}) {
		c.Write = cell.NominalWrite(c.Vdd)
	}
	if c.Metrics == 0 {
		c.Metrics = AllMetrics
	}
	if c.Sampler < 0 || c.Sampler >= numSamplers {
		return fmt.Errorf("mc: unknown sampler %d", int(c.Sampler))
	}
	if c.Tilt == 0 {
		c.Tilt = 1
	}
	if !(c.Tilt >= 1 && c.Tilt <= MaxTilt) { // rejects NaN too
		return fmt.Errorf("mc: tilt %g must be in [1, %g]", c.Tilt, MaxTilt)
	}
	return nil
}

// Sample is one Monte Carlo draw. Margins not requested are NaN. Weight is
// the importance weight of the draw (1 for untilted samplers); a zero Weight
// in a hand-built Sample is treated as 1 by the estimators.
type Sample struct {
	DVt    cell.Variation
	HSNM   float64
	RSNM   float64
	WM     float64
	Weight float64
}

// Min returns the smallest computed margin of the sample. It is
// allocation-free: it sits on the per-sample observability path and in the
// FailFraction loop.
func (s Sample) Min() float64 {
	m := math.Inf(1)
	if !math.IsNaN(s.HSNM) && s.HSNM < m {
		m = s.HSNM
	}
	if !math.IsNaN(s.RSNM) && s.RSNM < m {
		m = s.RSNM
	}
	if !math.IsNaN(s.WM) && s.WM < m {
		m = s.WM
	}
	return m
}

// weight returns the sample's importance weight, defaulting zero to 1.
func (s Sample) weight() float64 {
	if s.Weight == 0 {
		return 1
	}
	return s.Weight
}

// RunStats summarizes the execution of one Monte Carlo run. Samples and
// Workers are deterministic; Wall is environmental.
type RunStats struct {
	Samples int           // samples characterized
	Workers int           // goroutines the samples were distributed over
	Wall    time.Duration // wall-clock time of the run
}

func (s RunStats) String() string {
	return fmt.Sprintf("%d samples on %d workers in %s", s.Samples, s.Workers, s.Wall.Round(time.Microsecond))
}

// Result aggregates a Monte Carlo run.
type Result struct {
	Config  Config
	Samples []Sample
	Stats   RunStats

	// Summaries of the raw computed metric values. Under an importance tilt
	// these describe the tilted draw distribution; the weighted (unbiased)
	// estimators live in RunStream's checkpoints.
	HSNM, RSNM, WM num.Summary
}

// evaluator characterizes perturbed cells for one worker, holding the
// per-worker scratch netlists. Not safe for concurrent use.
type evaluator struct {
	lib *device.Library
	cfg *Config
	dr  *drawer
	scr *cell.Scratch // built on first use
}

func newEvaluator(lib *device.Library, cfg *Config, dr *drawer) *evaluator {
	return &evaluator{lib: lib, cfg: cfg, dr: dr}
}

// sample draws and characterizes sample i.
func (e *evaluator) sample(i int) (Sample, error) {
	cfg := e.cfg
	var s Sample
	s.HSNM, s.RSNM, s.WM = math.NaN(), math.NaN(), math.NaN()
	e.dr.draw(i, &s)

	needScratch := cfg.Metrics&(HSNM|RSNM) != 0 || (cfg.Metrics&WM != 0 && writeMarginFn == nil)
	if needScratch && e.scr == nil {
		scr, err := cell.NewScratch(&cell.Cell{Lib: e.lib, Flavor: cfg.Flavor})
		if err != nil {
			return s, err
		}
		e.scr = scr
	}
	var err error
	if cfg.Metrics&HSNM != 0 {
		if s.HSNM, err = e.scr.HoldSNM(s.DVt, cfg.Vdd); err != nil {
			return s, fmt.Errorf("HSNM: %w", err)
		}
	}
	if cfg.Metrics&RSNM != 0 {
		if s.RSNM, err = e.scr.ReadSNM(s.DVt, cfg.Read); err != nil {
			return s, fmt.Errorf("RSNM: %w", err)
		}
	}
	if cfg.Metrics&WM != 0 {
		var wm float64
		if fn := writeMarginFn; fn != nil {
			c := &cell.Cell{Lib: e.lib, Flavor: cfg.Flavor, DVt: s.DVt}
			wm, err = fn(c, cfg.Write)
		} else {
			wm, err = e.scr.WriteMargin(s.DVt, cfg.Write)
		}
		if err != nil {
			if !errors.Is(err, cell.ErrWriteFail) {
				// A real solver/infrastructure failure must surface, not be
				// folded into the yield statistics as a zero margin.
				return s, fmt.Errorf("WM: %w", err)
			}
			// The cell does not flip at the applied VWL: a legitimate fail
			// sample with zero write margin.
			wm = 0
			mWriteFails.Inc()
		}
		s.WM = wm
	}
	return s, nil
}

// Run executes the experiment, parallelized across CPU cores. It is
// RunContext without cancellation.
func Run(cfg Config) (*Result, error) { return RunContext(context.Background(), cfg) }

// RunContext executes the experiment, parallelized across CPU cores, and
// stops early when ctx is done: in-flight samples finish, pending ones are
// abandoned, and the cancellation cause is returned (wrapping the first real
// sample error, if any sample also failed). Sampling stays deterministic for
// a given seed — each sample's draws depend only on its index — so a
// completed run is bit-identical for any GOMAXPROCS. Work is claimed through
// an atomic cursor, so scheduling memory is O(workers) regardless of N.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	start := time.Now()
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	dr, err := newDrawer(&cfg)
	if err != nil {
		return nil, err
	}
	lib := device.Default7nm()
	samples := make([]Sample, cfg.N)
	errs := make([]error, cfg.N)

	mRuns.Inc()
	// The gauge is a shared in-flight total: delta it rather than Set it, so
	// two overlapping runs (e.g. concurrent /v1/yield requests) report
	// N1+N2 pending samples instead of whichever run registered last.
	gSamplesTotal.Add(float64(cfg.N))
	defer gSamplesTotal.Add(-float64(cfg.N))
	runSpan := obs.StartSpanCtx(ctx, "mc.run")
	runSpan.Int("n", int64(cfg.N))
	runSpan.Int("seed", cfg.Seed)

	var wg sync.WaitGroup
	var done atomic.Int64
	var cursor atomic.Int64
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.N {
		workers = cfg.N
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := newEvaluator(lib, &cfg, dr)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= cfg.N || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				samples[i], errs[i] = ev.sample(i)
				done.Add(1)
				mSamplesDone.Inc()
				hSampleDur.Observe(time.Since(t0))
				if errs[i] != nil {
					mSampleFails.Inc()
				} else if obs.Enabled() {
					obs.PointCtx(ctx, "mc.sample", obs.I64("i", int64(i)), obs.F64("min_margin", samples[i].Min()))
				}
			}
		}()
	}
	wg.Wait()
	runSpan.Int("done", done.Load())
	runSpan.End()
	if ctx.Err() != nil {
		// A cancellation must not mask a real failure: if any completed
		// sample hit a solver error, surface it alongside the cause.
		for i, serr := range errs {
			if serr != nil {
				return nil, fmt.Errorf("mc: sample %d: %w (run canceled after %d of %d samples: %w)",
					i, serr, done.Load(), cfg.N, context.Cause(ctx))
			}
		}
		return nil, fmt.Errorf("mc: run canceled after %d of %d samples: %w", done.Load(), cfg.N, context.Cause(ctx))
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mc: sample %d: %w", i, err)
		}
	}
	res := &Result{
		Config:  cfg,
		Samples: samples,
		Stats:   RunStats{Samples: cfg.N, Workers: workers, Wall: time.Since(start)},
	}
	collect := func(get func(Sample) float64) num.Summary {
		vals := make([]float64, 0, cfg.N)
		for _, s := range samples {
			if v := get(s); !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return num.Summary{}
		}
		return num.Summarize(vals)
	}
	res.HSNM = collect(func(s Sample) float64 { return s.HSNM })
	res.RSNM = collect(func(s Sample) float64 { return s.RSNM })
	res.WM = collect(func(s Sample) float64 { return s.WM })
	return res, nil
}

// MuMinusKSigma returns μ − k·σ for a summary — the paper's yield statistic.
func MuMinusKSigma(s num.Summary, k float64) float64 { return s.Mean - k*s.Std }

// FailFraction returns the weighted fraction of samples whose minimum
// computed margin falls below delta. For unit weights this is the plain
// count fraction.
func (r *Result) FailFraction(delta float64) float64 {
	var wf, wt float64
	for _, s := range r.Samples {
		w := s.weight()
		wt += w
		if s.Min() < delta {
			wf += w
		}
	}
	return wf / wt
}
