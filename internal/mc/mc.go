// Package mc implements Monte Carlo yield analysis of the 6T SRAM cell
// under random threshold-voltage variation — the analysis the paper uses
// (§2, §4) to justify the noise-margin constraint δ = 0.35·Vdd and the
// μ−kσ yield formulation.
//
// Each sample draws an independent Gaussian ΔVt for each of the six cell
// transistors (random dopant/work-function fluctuation of a single fin) and
// re-characterizes the margins with the circuit simulator. Sampling is
// deterministic for a given seed, independent of parallel scheduling.
package mc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sramco/internal/cell"
	"sramco/internal/device"
	"sramco/internal/num"
	"sramco/internal/obs"
)

// Monte Carlo run metrics: total/done counts drive progress tickers; the
// histogram records per-sample wall time. Sample counts are deterministic
// for a given Config regardless of GOMAXPROCS. mc.samples.total is the
// number of samples belonging to runs currently in flight — each run adds
// its N on entry and subtracts it on exit, so concurrent runs compose
// instead of clobbering each other. mc.samples.writefail counts samples
// whose write margin was ≤ 0 (a legitimate fail draw, not a solver error).
var (
	mRuns         = obs.NewCounter("mc.runs")
	mSamplesDone  = obs.NewCounter("mc.samples.done")
	mSampleFails  = obs.NewCounter("mc.samples.errors")
	mWriteFails   = obs.NewCounter("mc.samples.writefail")
	gSamplesTotal = obs.NewGauge("mc.samples.total")
	hSampleDur    = obs.NewHistogram("mc.sample_duration")
)

// writeMarginFn is a test seam over (*cell.Cell).WriteMargin: the package
// tests swap it to gate samples and to inject infrastructure errors that the
// real simulator cannot be made to produce deterministically.
var writeMarginFn = (*cell.Cell).WriteMargin

// DefaultSigmaVt is the per-device threshold σ (V) for a single 7 nm fin;
// single-fin devices maximize variability, which is why the paper requires
// margins ≥ 35% of Vdd.
const DefaultSigmaVt = 0.025

// Metric selects which margins a run computes.
type Metric int

const (
	HSNM       Metric = 1 << iota // hold static noise margin
	RSNM                          // read static noise margin
	WM                            // write margin
	AllMetrics = HSNM | RSNM | WM
)

// Config describes one Monte Carlo experiment.
type Config struct {
	Flavor  device.Flavor
	SigmaVt float64 // per-device ΔVt standard deviation; 0 selects DefaultSigmaVt
	N       int     // number of samples (≥ 2)
	Seed    int64   // base PRNG seed; same seed ⇒ same samples

	Read    cell.ReadBias  // bias for RSNM; zero value selects NominalRead(Vdd)
	Write   cell.WriteBias // bias for WM; zero value selects NominalWrite(Vdd)
	Vdd     float64        // nominal supply; 0 selects device.Vdd
	Metrics Metric         // which margins to compute; 0 selects AllMetrics
}

func (c *Config) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("mc: need N ≥ 2 samples, got %d", c.N)
	}
	if c.SigmaVt == 0 {
		c.SigmaVt = DefaultSigmaVt
	}
	if !(c.SigmaVt > 0) || math.IsInf(c.SigmaVt, 0) {
		return fmt.Errorf("mc: σVt %g must be positive and finite", c.SigmaVt)
	}
	if c.Vdd == 0 {
		c.Vdd = device.Vdd
	}
	if !(c.Vdd > 0) || math.IsInf(c.Vdd, 0) {
		return fmt.Errorf("mc: Vdd %g must be positive and finite", c.Vdd)
	}
	if c.Read == (cell.ReadBias{}) {
		c.Read = cell.NominalRead(c.Vdd)
	}
	if c.Write == (cell.WriteBias{}) {
		c.Write = cell.NominalWrite(c.Vdd)
	}
	if c.Metrics == 0 {
		c.Metrics = AllMetrics
	}
	return nil
}

// Sample is one Monte Carlo draw. Margins not requested are NaN.
type Sample struct {
	DVt  cell.Variation
	HSNM float64
	RSNM float64
	WM   float64
}

// Min returns the smallest computed margin of the sample.
func (s Sample) Min() float64 {
	m := math.Inf(1)
	for _, v := range []float64{s.HSNM, s.RSNM, s.WM} {
		if !math.IsNaN(v) && v < m {
			m = v
		}
	}
	return m
}

// RunStats summarizes the execution of one Monte Carlo run. Samples and
// Workers are deterministic; Wall is environmental.
type RunStats struct {
	Samples int           // samples characterized
	Workers int           // goroutines the samples were distributed over
	Wall    time.Duration // wall-clock time of the run
}

func (s RunStats) String() string {
	return fmt.Sprintf("%d samples on %d workers in %s", s.Samples, s.Workers, s.Wall.Round(time.Microsecond))
}

// Result aggregates a Monte Carlo run.
type Result struct {
	Config  Config
	Samples []Sample
	Stats   RunStats

	HSNM, RSNM, WM num.Summary // summaries of the computed metrics
}

// Run executes the experiment, parallelized across CPU cores. It is
// RunContext without cancellation.
func Run(cfg Config) (*Result, error) { return RunContext(context.Background(), cfg) }

// RunContext executes the experiment, parallelized across CPU cores, and
// stops early when ctx is done: in-flight samples finish, pending ones are
// abandoned, and the cancellation cause is returned. Sampling stays
// deterministic for a given seed — each sample's draws depend only on its
// index — so a completed run is bit-identical for any GOMAXPROCS.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	start := time.Now()
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	lib := device.Default7nm()
	samples := make([]Sample, cfg.N)
	errs := make([]error, cfg.N)

	mRuns.Inc()
	// The gauge is a shared in-flight total: delta it rather than Set it, so
	// two overlapping runs (e.g. concurrent /v1/yield requests) report
	// N1+N2 pending samples instead of whichever run registered last.
	gSamplesTotal.Add(float64(cfg.N))
	defer gSamplesTotal.Add(-float64(cfg.N))
	runSpan := obs.StartSpanCtx(ctx, "mc.run")
	runSpan.Int("n", int64(cfg.N))
	runSpan.Int("seed", cfg.Seed)

	var wg sync.WaitGroup
	var done atomic.Int64
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.N {
		workers = cfg.N
	}
	next := make(chan int, cfg.N)
	for i := 0; i < cfg.N; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				samples[i], errs[i] = runSample(lib, cfg, i)
				done.Add(1)
				mSamplesDone.Inc()
				hSampleDur.Observe(time.Since(t0))
				if errs[i] != nil {
					mSampleFails.Inc()
				} else if obs.Enabled() {
					obs.PointCtx(ctx, "mc.sample", obs.I64("i", int64(i)), obs.F64("min_margin", samples[i].Min()))
				}
			}
		}()
	}
	wg.Wait()
	runSpan.Int("done", done.Load())
	runSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mc: run canceled after %d of %d samples: %w", done.Load(), cfg.N, context.Cause(ctx))
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mc: sample %d: %w", i, err)
		}
	}
	res := &Result{
		Config:  cfg,
		Samples: samples,
		Stats:   RunStats{Samples: cfg.N, Workers: workers, Wall: time.Since(start)},
	}
	collect := func(get func(Sample) float64) num.Summary {
		vals := make([]float64, 0, cfg.N)
		for _, s := range samples {
			if v := get(s); !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return num.Summary{}
		}
		return num.Summarize(vals)
	}
	res.HSNM = collect(func(s Sample) float64 { return s.HSNM })
	res.RSNM = collect(func(s Sample) float64 { return s.RSNM })
	res.WM = collect(func(s Sample) float64 { return s.WM })
	return res, nil
}

// runSample draws the per-transistor shifts for sample i (deterministically
// from the seed) and characterizes the perturbed cell.
func runSample(lib *device.Library, cfg Config, i int) (Sample, error) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(i+1)*0x9E3779B97F4A7C15)))
	var s Sample
	s.HSNM, s.RSNM, s.WM = math.NaN(), math.NaN(), math.NaN()
	for t := range s.DVt {
		s.DVt[t] = rng.NormFloat64() * cfg.SigmaVt
	}
	c := &cell.Cell{Lib: lib, Flavor: cfg.Flavor, DVt: s.DVt}
	var err error
	if cfg.Metrics&HSNM != 0 {
		if s.HSNM, err = c.HoldSNM(cfg.Vdd); err != nil {
			return s, fmt.Errorf("HSNM: %w", err)
		}
	}
	if cfg.Metrics&RSNM != 0 {
		if s.RSNM, err = c.ReadSNM(cfg.Read); err != nil {
			return s, fmt.Errorf("RSNM: %w", err)
		}
	}
	if cfg.Metrics&WM != 0 {
		if s.WM, err = writeMarginFn(c, cfg.Write); err != nil {
			if !errors.Is(err, cell.ErrWriteFail) {
				// A real solver/infrastructure failure must surface, not be
				// folded into the yield statistics as a zero margin.
				return s, fmt.Errorf("WM: %w", err)
			}
			// The cell does not flip at the applied VWL: a legitimate fail
			// sample with zero write margin.
			s.WM = 0
			mWriteFails.Inc()
		}
	}
	return s, nil
}

// MuMinusKSigma returns μ − k·σ for a summary — the paper's yield statistic.
func MuMinusKSigma(s num.Summary, k float64) float64 { return s.Mean - k*s.Std }

// FailFraction returns the fraction of samples whose minimum computed margin
// falls below delta.
func (r *Result) FailFraction(delta float64) float64 {
	fails := 0
	for _, s := range r.Samples {
		if s.Min() < delta {
			fails++
		}
	}
	return float64(fails) / float64(len(r.Samples))
}
