package mc

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sramco/internal/device"
	"sramco/internal/num"
	"sramco/internal/obs"
)

// ci95Z is the 95% two-sided normal quantile used for all streaming CIs.
const ci95Z = 1.959963984540054

// minESSForStop is the smallest effective sample size at which an early stop
// may trigger: below this the variance of the variance estimate makes the CI
// itself too noisy to trust.
const minESSForStop = 16

// StreamConfig configures a streaming Monte Carlo run.
type StreamConfig struct {
	Config

	// RelCI is the early-stop target: the run stops at the first checkpoint
	// where every requested metric's 95% CI half-width on μ−3σ is within
	// RelCI·|μ−3σ|. 0 disables early stop (all N samples run).
	RelCI float64
	// Delta is the fail threshold for the fail-fraction estimate; 0 selects
	// the paper's δ = 0.35·Vdd.
	Delta float64
	// CheckpointEvery is the approximate number of samples between emitted
	// checkpoints; 0 selects 32. Checkpoints land on block boundaries, so
	// the effective interval is rounded up to whole blocks.
	CheckpointEvery int
	// KeepValues retains each metric's raw sample values (in index order) in
	// the StreamResult, enabling full summaries (median/quantiles) after a
	// streaming run.
	KeepValues bool
}

func (c *StreamConfig) normalize() error {
	if err := c.Config.normalize(); err != nil {
		return err
	}
	if !(c.RelCI >= 0 && c.RelCI < 1) || math.IsNaN(c.RelCI) {
		return fmt.Errorf("mc: rel_ci %g must be in [0, 1)", c.RelCI)
	}
	if c.Delta == 0 {
		c.Delta = 0.35 * c.Vdd // core.DefaultDelta, inlined to avoid the framework dependency
	}
	if !(c.Delta > 0) || math.IsInf(c.Delta, 0) {
		return fmt.Errorf("mc: delta %g must be positive and finite", c.Delta)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 32
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("mc: checkpoint interval %d must be ≥ 0", c.CheckpointEvery)
	}
	return nil
}

// MetricStat is the streaming estimate of one margin at a checkpoint. All
// moments are importance-weighted; for untilted samplers they reduce to the
// plain estimators.
type MetricStat struct {
	N      int64   `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mu3    float64 `json:"mu3sigma"`  // μ − 3σ, the paper's yield statistic
	CIHalf float64 `json:"ci_half"`   // 95% half-width on μ−3σ; −1 when not yet computable
	RelCI  float64 `json:"rel_ci"`    // CIHalf / |μ−3σ|; −1 when not yet computable
}

// Checkpoint is one emitted line of a streaming run: the state of all
// estimators after a fixed, scheduling-independent prefix of the sample
// index space.
type Checkpoint struct {
	Samples int     `json:"samples"` // samples merged into the estimators
	ESS     float64 `json:"ess"`     // Kish effective sample size

	HSNM *MetricStat `json:"hsnm,omitempty"`
	RSNM *MetricStat `json:"rsnm,omitempty"`
	WM   *MetricStat `json:"wm,omitempty"`

	Delta        float64 `json:"delta_v"`       // fail threshold in volts
	FailFraction float64 `json:"fail_fraction"` // weighted P(min margin < δ)
	FailLo       float64 `json:"fail_ci_lo"`    // Wilson 95% bounds on the fail fraction
	FailHi       float64 `json:"fail_ci_hi"`

	Converged bool `json:"converged"` // RelCI target met at this checkpoint
	Final     bool `json:"final"`     // last checkpoint of the run
}

// StreamResult is the outcome of a streaming run.
type StreamResult struct {
	Config      StreamConfig
	Final       Checkpoint
	Checkpoints int      // checkpoints emitted (including the final one)
	Stats       RunStats // Samples = samples actually merged

	// Values holds each requested metric's raw sample values in index order
	// when KeepValues was set.
	Values map[Metric][]float64
}

// streamAcc accumulates the streaming estimators over merged samples.
type streamAcc struct {
	cfg    *StreamConfig
	hsnm   num.Welford
	rsnm   num.Welford
	wm     num.Welford
	all    num.Welford // min-margin accumulator; carries ΣW/ΣW² for ESS
	failW  float64     // Σw over samples with min margin < δ
	values map[Metric][]float64
}

func newStreamAcc(cfg *StreamConfig) *streamAcc {
	a := &streamAcc{cfg: cfg}
	if cfg.KeepValues {
		a.values = map[Metric][]float64{}
	}
	return a
}

func (a *streamAcc) add(s *Sample) {
	w := s.weight()
	if a.cfg.Metrics&HSNM != 0 {
		a.hsnm.Add(s.HSNM, w)
		if a.values != nil {
			a.values[HSNM] = append(a.values[HSNM], s.HSNM)
		}
	}
	if a.cfg.Metrics&RSNM != 0 {
		a.rsnm.Add(s.RSNM, w)
		if a.values != nil {
			a.values[RSNM] = append(a.values[RSNM], s.RSNM)
		}
	}
	if a.cfg.Metrics&WM != 0 {
		a.wm.Add(s.WM, w)
		if a.values != nil {
			a.values[WM] = append(a.values[WM], s.WM)
		}
	}
	min := s.Min()
	a.all.Add(min, w)
	if min < a.cfg.Delta {
		a.failW += w
	}
}

// stat converts one Welford accumulator into its checkpoint form, with
// non-finite CI fields sanitized to −1 (JSON-encodable, "not yet known").
func stat(w *num.Welford) *MetricStat {
	m := &MetricStat{
		N: w.Count, Mean: w.Mean(), Std: w.Std(), Min: w.MinV, Max: w.MaxV,
	}
	m.Mu3 = m.Mean - 3*m.Std
	m.CIHalf = w.MuMinusKSigmaCI(3, ci95Z)
	m.RelCI = -1
	if !math.IsInf(m.CIHalf, 0) && !math.IsNaN(m.CIHalf) {
		if abs := math.Abs(m.Mu3); abs > 0 {
			m.RelCI = m.CIHalf / abs
		}
	} else {
		m.CIHalf = -1
	}
	return m
}

// checkpoint snapshots the accumulators after `samples` merged samples.
func (a *streamAcc) checkpoint(samples int, final bool) Checkpoint {
	cp := Checkpoint{
		Samples: samples,
		ESS:     a.all.ESS(),
		Delta:   a.cfg.Delta,
		Final:   final,
	}
	if a.cfg.Metrics&HSNM != 0 {
		cp.HSNM = stat(&a.hsnm)
	}
	if a.cfg.Metrics&RSNM != 0 {
		cp.RSNM = stat(&a.rsnm)
	}
	if a.cfg.Metrics&WM != 0 {
		cp.WM = stat(&a.wm)
	}
	if a.all.SumW > 0 {
		cp.FailFraction = a.failW / a.all.SumW
		cp.FailLo, cp.FailHi = num.WilsonCI(cp.FailFraction, cp.ESS, ci95Z)
	} else {
		cp.FailHi = 1
	}
	return cp
}

// converged reports whether every requested metric's relative CI is inside
// the target.
func (cp *Checkpoint) converged(target float64) bool {
	if target <= 0 || cp.ESS < minESSForStop {
		return false
	}
	for _, m := range []*MetricStat{cp.HSNM, cp.RSNM, cp.WM} {
		if m == nil {
			continue
		}
		if m.RelCI < 0 || m.RelCI > target {
			return false
		}
	}
	return true
}

// RunStream executes a streaming Monte Carlo run: workers claim fixed sample
// blocks through an atomic cursor, and the calling goroutine merges finished
// blocks in index order, emitting a Checkpoint to emit (if non-nil) at every
// block-aligned interval. When cfg.RelCI > 0, the run stops at the first
// checkpoint whose CIs are all inside the target; blocks evaluated beyond
// that point are discarded, so the merged statistics — and therefore the
// entire checkpoint sequence — are bit-identical for any GOMAXPROCS.
//
// emit runs on the caller's goroutine (safe for HTTP streaming). A non-nil
// error from emit aborts the run and is returned.
func RunStream(ctx context.Context, cfg StreamConfig, emit func(Checkpoint) error) (*StreamResult, error) {
	start := time.Now()
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	dr, err := newDrawer(&cfg.Config)
	if err != nil {
		return nil, err
	}
	lib := device.Default7nm()
	blockSize, nBlocks := planBlocks(cfg.N)
	cpBlocks := (cfg.CheckpointEvery + blockSize - 1) / blockSize
	if cpBlocks < 1 {
		cpBlocks = 1
	}

	samples := make([]Sample, cfg.N)
	errs := make([]error, cfg.N)
	blockOK := make([]bool, nBlocks) // block fully evaluated (no cancellation mid-block)

	mRuns.Inc()
	gSamplesTotal.Add(float64(cfg.N))
	defer gSamplesTotal.Add(-float64(cfg.N))
	runSpan := obs.StartSpanCtx(ctx, "mc.stream")
	runSpan.Int("n", int64(cfg.N))
	runSpan.Int("seed", cfg.Seed)

	var wg sync.WaitGroup
	var done atomic.Int64
	var cursor atomic.Int64
	var stop atomic.Bool
	workers := runtime.GOMAXPROCS(0)
	if workers > nBlocks {
		workers = nBlocks
	}
	doneCh := make(chan int, nBlocks)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := newEvaluator(lib, &cfg.Config, dr)
			for {
				b := int(cursor.Add(1)) - 1
				if b >= nBlocks || stop.Load() || ctx.Err() != nil {
					return
				}
				lo, hi := b*blockSize, (b+1)*blockSize
				if hi > cfg.N {
					hi = cfg.N
				}
				ok := true
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						ok = false
						break
					}
					t0 := time.Now()
					samples[i], errs[i] = ev.sample(i)
					done.Add(1)
					mSamplesDone.Inc()
					hSampleDur.Observe(time.Since(t0))
					if errs[i] != nil {
						mSampleFails.Inc()
					} else if obs.Enabled() {
						obs.PointCtx(ctx, "mc.sample", obs.I64("i", int64(i)), obs.F64("min_margin", samples[i].Min()))
					}
				}
				blockOK[b] = ok
				doneCh <- b
			}
		}()
	}
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()
	// Whatever path exits the reducer, halt the workers and wait them out
	// before touching shared state or returning.
	finish := func() {
		stop.Store(true)
		<-workersDone
	}

	acc := newStreamAcc(&cfg)
	ready := make([]bool, nBlocks)
	frontier := 0   // blocks merged so far
	merged := 0     // samples merged so far
	emitted := 0    // checkpoints emitted
	var final *Checkpoint
	var runErr error

	// advance merges every ready in-order block, emitting checkpoints at
	// block-aligned intervals. It returns false when the run should stop
	// (converged, sample error, emit error, or an incomplete block).
	advance := func() bool {
		for frontier < nBlocks && ready[frontier] {
			if !blockOK[frontier] {
				return false // cancellation landed mid-block
			}
			lo, hi := frontier*blockSize, (frontier+1)*blockSize
			if hi > cfg.N {
				hi = cfg.N
			}
			for i := lo; i < hi; i++ {
				if errs[i] != nil {
					runErr = fmt.Errorf("mc: sample %d: %w", i, errs[i])
					return false
				}
				acc.add(&samples[i])
			}
			merged = hi
			frontier++
			if frontier == nBlocks || frontier%cpBlocks == 0 {
				cp := acc.checkpoint(merged, frontier == nBlocks)
				if cp.converged(cfg.RelCI) {
					cp.Converged = true
					cp.Final = true
				}
				emitted++
				if emit != nil {
					if err := emit(cp); err != nil {
						runErr = fmt.Errorf("mc: checkpoint emit: %w", err)
						return false
					}
				}
				if cp.Final {
					final = &cp
					return false
				}
			}
		}
		return true
	}

loop:
	for frontier < nBlocks {
		select {
		case b := <-doneCh:
			ready[b] = true
			if !advance() {
				break loop
			}
		case <-workersDone:
			// Drain any block completions that raced the shutdown.
			for {
				select {
				case b := <-doneCh:
					ready[b] = true
				default:
					advance()
					break loop
				}
			}
		}
	}
	finish()

	runSpan.Int("done", done.Load())
	runSpan.Int("merged", int64(merged))
	runSpan.End()

	if runErr != nil {
		return nil, runErr
	}
	if final == nil {
		// The reducer stopped before reaching a final checkpoint: either the
		// context fired or a worker died without finishing its blocks.
		if ctx.Err() != nil {
			for i, serr := range errs {
				if serr != nil {
					return nil, fmt.Errorf("mc: sample %d: %w (run canceled after %d of %d samples: %w)",
						i, serr, done.Load(), cfg.N, context.Cause(ctx))
				}
			}
			return nil, fmt.Errorf("mc: run canceled after %d of %d samples: %w", done.Load(), cfg.N, context.Cause(ctx))
		}
		for i, serr := range errs {
			if serr != nil {
				return nil, fmt.Errorf("mc: sample %d: %w", i, serr)
			}
		}
		return nil, fmt.Errorf("mc: stream ended after %d of %d samples without a final checkpoint", merged, cfg.N)
	}
	return &StreamResult{
		Config:      cfg,
		Final:       *final,
		Checkpoints: emitted,
		Stats:       RunStats{Samples: merged, Workers: workers, Wall: time.Since(start)},
		Values:      acc.values,
	}, nil
}
