package mc

import (
	"math"
	"testing"

	"sramco/internal/cell"
	"sramco/internal/device"
	"sramco/internal/num"
)

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Flavor: device.HVT, N: 4, Seed: 42, Metrics: HSNM}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Samples {
		if r1.Samples[i].DVt != r2.Samples[i].DVt {
			t.Fatalf("sample %d shifts differ between identical runs", i)
		}
		if r1.Samples[i].HSNM != r2.Samples[i].HSNM {
			t.Fatalf("sample %d HSNM differs between identical runs", i)
		}
	}
	r3, err := Run(Config{Flavor: device.HVT, N: 4, Seed: 43, Metrics: HSNM})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Samples[0].DVt == r3.Samples[0].DVt {
		t.Error("different seeds produced identical shifts")
	}
}

func TestRunComputesRequestedMetricsOnly(t *testing.T) {
	r, err := Run(Config{Flavor: device.HVT, N: 2, Seed: 7, Metrics: RSNM})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Samples {
		if math.IsNaN(s.RSNM) {
			t.Error("requested RSNM missing")
		}
		if !math.IsNaN(s.HSNM) || !math.IsNaN(s.WM) {
			t.Error("unrequested metrics were computed")
		}
	}
	if r.RSNM.N != 2 || r.HSNM.N != 0 {
		t.Errorf("summaries: RSNM.N=%d HSNM.N=%d", r.RSNM.N, r.HSNM.N)
	}
}

func TestVariationSpreadsMargins(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sample MC skipped in -short mode")
	}
	r, err := Run(Config{Flavor: device.HVT, N: 12, Seed: 1, Metrics: RSNM})
	if err != nil {
		t.Fatal(err)
	}
	if r.RSNM.Std <= 0 {
		t.Error("variation must spread RSNM")
	}
	// The mean should be near the nominal value; variation mostly hurts the
	// minimum (asymmetric shifts shrink one lobe).
	nom, err := cell.New(device.HVT).ReadSNM(cell.NominalRead(device.Vdd))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.RSNM.Mean-nom) > 0.35*nom {
		t.Errorf("MC mean RSNM %g far from nominal %g", r.RSNM.Mean, nom)
	}
	if r.RSNM.Min >= nom {
		t.Error("worst MC sample should fall below the nominal RSNM")
	}
}

func TestMuMinusKSigma(t *testing.T) {
	s := num.Summary{Mean: 0.2, Std: 0.03}
	if got := MuMinusKSigma(s, 3); math.Abs(got-0.11) > 1e-12 {
		t.Errorf("μ-3σ = %g, want 0.11", got)
	}
}

func TestFailFraction(t *testing.T) {
	r := &Result{Samples: []Sample{
		{HSNM: 0.20, RSNM: 0.18, WM: math.NaN()},
		{HSNM: 0.10, RSNM: 0.30, WM: math.NaN()},
		{HSNM: 0.25, RSNM: 0.05, WM: math.NaN()},
	}}
	if f := r.FailFraction(0.15); math.Abs(f-2.0/3.0) > 1e-12 {
		t.Errorf("FailFraction = %g, want 2/3", f)
	}
	if f := r.FailFraction(0.01); f != 0 {
		t.Errorf("FailFraction = %g, want 0", f)
	}
}

func TestSampleMin(t *testing.T) {
	s := Sample{HSNM: 0.2, RSNM: 0.1, WM: math.NaN()}
	if s.Min() != 0.1 {
		t.Errorf("Min = %g", s.Min())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Flavor: device.HVT, N: 1}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := Run(Config{Flavor: device.HVT, N: 4, SigmaVt: -0.01}); err == nil {
		t.Error("negative sigma accepted")
	}
}
