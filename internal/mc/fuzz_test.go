package mc

import (
	"math"
	"testing"

	"sramco/internal/device"
)

// FuzzConfigNormalize drives Config.normalize with arbitrary field values.
// normalize is the only gate between user-supplied yield parameters (CLI
// flags, /v1/yield bodies) and the sampler, so the contract is: never panic,
// and on success every field the sampler reads is in its valid domain.
func FuzzConfigNormalize(f *testing.F) {
	f.Add(uint8(0), 0.0, 16, int64(1), 0.0, uint8(0))      // all defaults
	f.Add(uint8(1), 0.025, 2000, int64(42), 0.8, uint8(7)) // typical explicit run
	f.Add(uint8(1), -0.01, 4, int64(0), 0.0, uint8(1))     // negative sigma
	f.Add(uint8(0), math.NaN(), 16, int64(0), 0.0, uint8(0))
	f.Add(uint8(0), math.Inf(1), 16, int64(0), 0.0, uint8(0))
	f.Add(uint8(0), 0.02, 16, int64(0), math.NaN(), uint8(0))
	f.Add(uint8(0), 0.02, 16, int64(0), -0.8, uint8(0))
	f.Add(uint8(3), 0.02, 1, int64(-1), 0.0, uint8(255)) // too few samples, stray metric bits
	f.Add(uint8(0), 0.02, -100, int64(0), 0.0, uint8(0))

	f.Fuzz(func(t *testing.T, flavor uint8, sigma float64, n int, seed int64, vdd float64, metrics uint8) {
		c := Config{
			Flavor:  device.Flavor(flavor),
			SigmaVt: sigma,
			N:       n,
			Seed:    seed,
			Vdd:     vdd,
			Metrics: Metric(metrics),
		}
		if err := c.normalize(); err != nil {
			return // rejection is fine; panicking or accepting junk is not
		}
		if c.N < 2 {
			t.Errorf("normalize accepted N = %d", c.N)
		}
		if !(c.SigmaVt > 0) || math.IsInf(c.SigmaVt, 0) {
			t.Errorf("normalize accepted σVt = %g", c.SigmaVt)
		}
		if !(c.Vdd > 0) || math.IsInf(c.Vdd, 0) {
			t.Errorf("normalize accepted Vdd = %g", c.Vdd)
		}
		if c.Metrics == 0 {
			t.Error("normalize left Metrics unset")
		}
	})
}
