package mc

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"sramco/internal/cell"
	"sramco/internal/device"
)

// syntheticWM wires a cheap deterministic write margin through the seam so
// streaming behavior can be tested at scale without the simulator: the margin
// is an affine function of the drawn ΔVt, so it varies across samples but
// depends only on (seed, index).
func syntheticWM(t *testing.T, offset float64) {
	t.Helper()
	swapWriteMargin(t, func(c *cell.Cell, _ cell.WriteBias) (float64, error) {
		m := offset
		for _, d := range c.DVt {
			m += d
		}
		return m, nil
	})
}

func collectStream(t *testing.T, ctx context.Context, cfg StreamConfig) (*StreamResult, []Checkpoint) {
	t.Helper()
	var cps []Checkpoint
	res, err := RunStream(ctx, cfg, func(cp Checkpoint) error {
		cps = append(cps, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, cps
}

// TestStreamCheckpointsDeterministicAcrossGOMAXPROCS runs the same streaming
// config single-threaded and fully parallel and requires the emitted
// checkpoint sequences to be bit-identical: blocks are merged in index order
// at fixed boundaries, so scheduling must not leak into any estimate.
func TestStreamCheckpointsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	syntheticWM(t, 0.5)
	cfg := StreamConfig{Config: Config{Flavor: device.HVT, N: 301, Seed: 12, Metrics: WM}}

	prev := runtime.GOMAXPROCS(1)
	res1, cps1 := collectStream(t, context.Background(), cfg)
	runtime.GOMAXPROCS(8)
	res8, cps8 := collectStream(t, context.Background(), cfg)
	runtime.GOMAXPROCS(prev)

	if !reflect.DeepEqual(cps1, cps8) {
		t.Fatalf("checkpoint sequences differ between GOMAXPROCS 1 and 8:\n%+v\nvs\n%+v", cps1, cps8)
	}
	if !reflect.DeepEqual(res1.Final, res8.Final) {
		t.Fatalf("final checkpoints differ: %+v vs %+v", res1.Final, res8.Final)
	}
	if res1.Final.Samples != cfg.N || !res1.Final.Final {
		t.Fatalf("final checkpoint covers %d samples, want all %d", res1.Final.Samples, cfg.N)
	}
	if res1.Checkpoints != len(cps1) {
		t.Fatalf("Checkpoints = %d, emitted %d", res1.Checkpoints, len(cps1))
	}
}

// TestStreamEarlyStopHonorsRelCI asserts the tentpole contract: with a
// relative-CI target set, the run stops as soon as the target is met, using
// strictly fewer samples than the fixed-N run, and the reported CI is inside
// the target.
func TestStreamEarlyStopHonorsRelCI(t *testing.T) {
	syntheticWM(t, 0.5)
	base := Config{Flavor: device.HVT, N: 4096, Seed: 4, Metrics: WM}

	full, _ := collectStream(t, context.Background(), StreamConfig{Config: base})
	if full.Final.Samples != base.N {
		t.Fatalf("RelCI=0 run stopped at %d of %d samples", full.Final.Samples, base.N)
	}

	res, cps := collectStream(t, context.Background(), StreamConfig{Config: base, RelCI: 0.10})
	if !res.Final.Converged || !res.Final.Final {
		t.Fatalf("early-stop run did not converge: %+v", res.Final)
	}
	if res.Final.Samples >= base.N {
		t.Fatalf("converged run used %d samples, no fewer than fixed N %d", res.Final.Samples, base.N)
	}
	if res.Stats.Samples != res.Final.Samples {
		t.Fatalf("Stats.Samples %d != merged samples %d", res.Stats.Samples, res.Final.Samples)
	}
	if got := res.Final.WM.RelCI; got < 0 || got > 0.10 {
		t.Fatalf("final rel CI %g outside requested 0.10", got)
	}
	// Every checkpoint before the final one must have been short of the target.
	for _, cp := range cps[:len(cps)-1] {
		if cp.Converged {
			t.Fatalf("non-final checkpoint marked converged: %+v", cp)
		}
	}
}

// TestStreamWriteFailsCountedInFailFraction routes a fraction of samples
// through ErrWriteFail and asserts they enter the fail-fraction estimate
// (zero margin < δ) with a Wilson CI bracketing the point estimate.
func TestStreamWriteFailsCountedInFailFraction(t *testing.T) {
	swapWriteMargin(t, func(c *cell.Cell, _ cell.WriteBias) (float64, error) {
		if c.DVt[0] < -0.01 { // ~a third of draws at σ = 25 mV
			return 0, cell.ErrWriteFail
		}
		return 0.5, nil
	})
	cfg := StreamConfig{Config: Config{Flavor: device.HVT, N: 512, Seed: 21, Metrics: WM}}
	res, _ := collectStream(t, context.Background(), cfg)

	f := res.Final
	if f.FailFraction <= 0 || f.FailFraction >= 1 {
		t.Fatalf("fail fraction %g, want strictly inside (0, 1)", f.FailFraction)
	}
	if !(f.FailLo <= f.FailFraction && f.FailFraction <= f.FailHi) {
		t.Fatalf("Wilson CI [%g, %g] does not bracket fail fraction %g", f.FailLo, f.FailHi, f.FailFraction)
	}
	if f.FailLo <= 0 || f.FailHi >= 1 {
		t.Fatalf("Wilson CI [%g, %g] not strictly inside (0, 1) at N=%d", f.FailLo, f.FailHi, cfg.N)
	}
	if f.WM.Min != 0 {
		t.Fatalf("WM minimum %g, want 0 from the failing writes", f.WM.Min)
	}
}

// TestStreamCancellation cancels the context mid-run and asserts the stream
// aborts with the cancellation cause after the checkpoints already emitted.
func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	swapWriteMargin(t, func(*cell.Cell, cell.WriteBias) (float64, error) {
		if calls.Add(1) == 40 {
			cancel()
		}
		return 0.5, nil
	})
	_, err := RunStream(ctx, StreamConfig{Config: Config{Flavor: device.HVT, N: 8192, Seed: 2, Metrics: WM}}, nil)
	if err == nil {
		t.Fatal("canceled stream returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stream error %v does not wrap context.Canceled", err)
	}
}

// TestStreamSampleErrorAborts asserts a real evaluation error stops the
// stream and is reported by the lowest failing sample index, independent of
// which worker hit it first.
func TestStreamSampleErrorAborts(t *testing.T) {
	boom := errors.New("newton diverged")
	swapWriteMargin(t, func(*cell.Cell, cell.WriteBias) (float64, error) { return 0, boom })
	_, err := RunStream(context.Background(), StreamConfig{Config: Config{Flavor: device.HVT, N: 128, Seed: 2, Metrics: WM}}, nil)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("stream error %v does not wrap the sample error", err)
	}
	if !strings.Contains(err.Error(), "sample 0") {
		t.Fatalf("error %v does not name the first failing sample", err)
	}
}

// TestStreamEmitErrorAborts asserts a failing emit callback (a closed HTTP
// connection, in serving terms) stops the run promptly with the emit error.
func TestStreamEmitErrorAborts(t *testing.T) {
	syntheticWM(t, 0.5)
	sink := errors.New("client went away")
	_, err := RunStream(context.Background(), StreamConfig{Config: Config{Flavor: device.HVT, N: 2048, Seed: 6, Metrics: WM}},
		func(Checkpoint) error { return sink })
	if err == nil || !errors.Is(err, sink) {
		t.Fatalf("stream error %v does not wrap the emit error", err)
	}
}

// TestStreamKeepValues asserts raw metric values are retained in merge order
// when requested, matching the merged sample count.
func TestStreamKeepValues(t *testing.T) {
	syntheticWM(t, 0.5)
	cfg := StreamConfig{Config: Config{Flavor: device.HVT, N: 96, Seed: 8, Metrics: WM}, KeepValues: true}
	res, _ := collectStream(t, context.Background(), cfg)
	if got := len(res.Values[WM]); got != res.Final.Samples {
		t.Fatalf("retained %d WM values, want %d", got, res.Final.Samples)
	}
	// Values are in sample-index order: recompute sample 0 directly
	// (normalize first — RunStream normalized its own copy, not ours).
	if err := cfg.Config.normalize(); err != nil {
		t.Fatal(err)
	}
	dr, err := newDrawer(&cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	var s Sample
	dr.draw(0, &s)
	want := 0.5
	for _, d := range s.DVt {
		want += d
	}
	if res.Values[WM][0] != want {
		t.Fatalf("Values[WM][0] = %g, want %g", res.Values[WM][0], want)
	}
}

// TestStreamConfigValidation covers the streaming-specific knobs.
func TestStreamConfigValidation(t *testing.T) {
	ok := Config{Flavor: device.HVT, N: 4, Metrics: WM}
	bad := []StreamConfig{
		{Config: ok, RelCI: -0.1},
		{Config: ok, RelCI: 1},
		{Config: ok, Delta: -0.2},
		{Config: ok, CheckpointEvery: -1},
		{Config: Config{Flavor: device.HVT, N: 1, Metrics: WM}},
	}
	for i, cfg := range bad {
		if _, err := RunStream(context.Background(), cfg, nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestCanceledRunSurfacesSampleError pins the RunContext cancellation fix: a
// cancellation racing a genuine sample failure must surface the failure
// wrapped together with the cancellation cause, not mask it.
func TestCanceledRunSurfacesSampleError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("solver exploded")
	var calls atomic.Int64
	swapWriteMargin(t, func(*cell.Cell, cell.WriteBias) (float64, error) {
		if calls.Add(1) == 1 {
			cancel() // cancellation lands while this sample's error is in flight
			return 0, boom
		}
		return 0.5, nil
	})
	_, err := RunContext(ctx, Config{Flavor: device.HVT, N: 64, Seed: 3, Metrics: WM})
	if err == nil {
		t.Fatal("run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v masks the sample failure", err)
	}
}
