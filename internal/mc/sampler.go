package mc

import (
	"fmt"
	"math"
	"math/rand"

	"sramco/internal/cell"
	"sramco/internal/num"
)

// Sampler selects how the per-transistor ΔVt draws are generated.
type Sampler int

const (
	// SamplerMC draws independent Gaussians per sample (plain Monte Carlo).
	SamplerMC Sampler = iota
	// SamplerSobol maps a scrambled Sobol' low-discrepancy point through
	// Φ⁻¹ per dimension: the empirical CDF converges ~N⁻¹ instead of
	// ~N^(−1/2), tightening μ and σ estimates at equal sample count.
	SamplerSobol
	// SamplerLHS uses Latin-hypercube stratification within each evaluation
	// block: every block of B samples places exactly one draw in each of the
	// B equal-probability strata per dimension.
	SamplerLHS
	numSamplers
)

var samplerNames = [numSamplers]string{"mc", "sobol", "lhs"}

func (s Sampler) String() string {
	if s < 0 || s >= numSamplers {
		return fmt.Sprintf("Sampler(%d)", int(s))
	}
	return samplerNames[s]
}

// ParseSampler parses a sampler name ("mc", "sobol", "lhs").
func ParseSampler(s string) (Sampler, error) {
	for i, n := range samplerNames {
		if s == n {
			return Sampler(i), nil
		}
	}
	return 0, fmt.Errorf("mc: unknown sampler %q (want mc, sobol, or lhs)", s)
}

// sampleSeed derives the PRNG seed of sample i from the run seed via the
// SplitMix64 finalizer. The finalizer is a bijection over the mixed state
// seed + (i+1)·golden, so within a run every sample gets a distinct seed,
// and its avalanche breaks the across-seed correlations the previous
// XOR-derivation had (seedA ^ f(i) == seedB ^ f(j) collided whole sample
// streams between runs). This intentionally changes the drawn ΔVt sequences
// relative to earlier releases; fixed-seed runs remain fully deterministic.
func sampleSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// lhsSeed derives the permutation seed of one (block, dimension) stratum.
func lhsSeed(seed int64, block, dim int) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(block+1)*0xBF58476D1CE4E5B9 + uint64(dim+1)*0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// planBlocks partitions n samples into contiguous index blocks. The plan
// depends only on n — never on worker count — so block boundaries, LHS
// strata, and streaming checkpoints are identical for any GOMAXPROCS.
// Small runs get single-sample blocks (full parallelism); large runs cap at
// 32-sample blocks.
func planBlocks(n int) (size, count int) {
	size = (n + 31) / 32
	if size > 32 {
		size = 32
	}
	count = (n + size - 1) / size
	return size, count
}

// drawer generates the ΔVt vector and importance weight of a sample from its
// index alone. It is safe for concurrent use (the Sobol generator is
// read-only after construction).
type drawer struct {
	cfg       *Config
	sob       *num.Sobol
	blockSize int
}

func newDrawer(cfg *Config) (*drawer, error) {
	d := &drawer{cfg: cfg}
	d.blockSize, _ = planBlocks(cfg.N)
	if cfg.Sampler == SamplerSobol {
		sob, err := num.NewSobol(int(cell.NumTransistors), uint64(cfg.Seed))
		if err != nil {
			return nil, err
		}
		d.sob = sob
	}
	return d, nil
}

// draw fills s.DVt and s.Weight for sample i. All draws depend only on
// (seed, i): x = τ·σ·z with z standard normal under the chosen sequence, and
// w = Π_t τ·exp(−(τ²−1)·z_t²/2) the exact density ratio N(0,σ²)/N(0,(τσ)²)
// at x (DESIGN.md §12), so weighted averages stay unbiased under the tilt.
func (d *drawer) draw(i int, s *Sample) {
	cfg := d.cfg
	rng := rand.New(rand.NewSource(sampleSeed(cfg.Seed, i)))
	var z [cell.NumTransistors]float64
	switch cfg.Sampler {
	case SamplerSobol:
		var u [cell.NumTransistors]float64
		// Index 1-based: point 0 of the unscrambled sequence sits half an ulp
		// from the origin, which Φ⁻¹ would turn into a ~−6.3σ outlier draw.
		d.sob.At(int64(i)+1, u[:])
		for t := range z {
			z[t] = num.InvNormCDF(u[t])
		}
	case SamplerLHS:
		b := i / d.blockSize
		j := i % d.blockSize
		bn := d.blockSize
		if rem := cfg.N - b*d.blockSize; rem < bn {
			bn = rem
		}
		for t := range z {
			perm := rand.New(rand.NewSource(lhsSeed(cfg.Seed, b, t))).Perm(bn)
			jit := rng.Float64()
			u := (float64(perm[j]) + jit) / float64(bn)
			if u <= 0 { // jit can be exactly 0; keep Φ⁻¹ finite
				u = 0.5 / float64(bn)
			}
			z[t] = num.InvNormCDF(u)
		}
	default:
		for t := range z {
			z[t] = rng.NormFloat64()
		}
	}
	tau := cfg.Tilt
	w := 1.0
	for t := range z {
		s.DVt[t] = tau * cfg.SigmaVt * z[t]
		if tau != 1 {
			w *= tau * math.Exp(-(tau*tau-1)*z[t]*z[t]/2)
		}
	}
	s.Weight = w
}
