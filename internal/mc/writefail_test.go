package mc

import (
	"context"
	"errors"
	"testing"
	"time"

	"sramco/internal/cell"
	"sramco/internal/device"
	"sramco/internal/obs"
)

// swapWriteMargin replaces the WriteMargin seam for the duration of a test.
func swapWriteMargin(t *testing.T, fn func(*cell.Cell, cell.WriteBias) (float64, error)) {
	t.Helper()
	old := writeMarginFn
	writeMarginFn = fn
	t.Cleanup(func() { writeMarginFn = old })
}

// TestWriteFailSampleIsLegitFail drives the real simulator into a genuine
// write failure (VWL far too low to flip the cell) and asserts the run
// treats every sample as a legitimate zero-margin draw, counted under
// mc.samples.writefail — not as an error.
func TestWriteFailSampleIsLegitFail(t *testing.T) {
	write := cell.NominalWrite(device.Vdd)
	write.VWL = 0.05 // cannot flip the cell: write margin ≤ 0 for every draw
	before := obs.Default().CounterValue("mc.samples.writefail")
	res, err := Run(Config{Flavor: device.HVT, N: 2, Seed: 7, Write: write, Metrics: WM})
	if err != nil {
		t.Fatalf("write-fail samples must not fail the run: %v", err)
	}
	for i, s := range res.Samples {
		if s.WM != 0 {
			t.Errorf("sample %d: WM = %g, want 0 for a failing write", i, s.WM)
		}
	}
	if got := obs.Default().CounterValue("mc.samples.writefail") - before; got != 2 {
		t.Errorf("mc.samples.writefail delta = %d, want 2", got)
	}
}

// TestRealWriteMarginErrorPropagates injects an infrastructure error through
// the WriteMargin seam and asserts the run surfaces it instead of silently
// recording a zero margin (the pre-fix behavior).
func TestRealWriteMarginErrorPropagates(t *testing.T) {
	boom := errors.New("transient solver diverged")
	swapWriteMargin(t, func(*cell.Cell, cell.WriteBias) (float64, error) { return 0, boom })
	_, err := Run(Config{Flavor: device.HVT, N: 2, Seed: 7, Metrics: WM})
	if err == nil {
		t.Fatal("infrastructure error swallowed: run succeeded")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("run error %v does not wrap the solver error", err)
	}
}

// TestConcurrentRunsShareSamplesTotal runs two Monte Carlo configs at the
// same time and asserts mc.samples.total reports the sum of their pending
// samples while both are in flight, returning to the baseline afterwards.
// The seam gates every sample so both runs are provably overlapping when
// the gauge is read; pre-fix, Set clobbered one run's total with the
// other's and the sum was never observable.
func TestConcurrentRunsShareSamplesTotal(t *testing.T) {
	gate := make(chan struct{})
	swapWriteMargin(t, func(*cell.Cell, cell.WriteBias) (float64, error) {
		<-gate
		return 0.1, nil
	})

	base := obs.Default().GaugeValue("mc.samples.total")
	const n1, n2 = 7, 11
	errc := make(chan error, 2)
	run := func(n int, seed int64) {
		_, err := RunContext(context.Background(), Config{Flavor: device.HVT, N: n, Seed: seed, Metrics: WM})
		errc <- err
	}
	go run(n1, 1)
	go run(n2, 2)

	deadline := time.After(30 * time.Second)
	for obs.Default().GaugeValue("mc.samples.total") != base+n1+n2 {
		select {
		case <-deadline:
			t.Fatalf("mc.samples.total = %g, never reached %g (base %g + %d + %d)",
				obs.Default().GaugeValue("mc.samples.total"), base+n1+n2, base, n1, n2)
		case <-time.After(time.Millisecond):
		}
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if got := obs.Default().GaugeValue("mc.samples.total"); got != base {
		t.Errorf("mc.samples.total = %g after both runs, want baseline %g", got, base)
	}
}
