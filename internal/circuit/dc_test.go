package circuit

import (
	"math"
	"testing"

	"sramco/internal/device"
)

func TestResistiveDivider(t *testing.T) {
	c := New()
	c.AddV("vin", "in", Ground, DC(1.0))
	c.AddR("r1", "in", "mid", 1e3)
	c.AddR("r2", "mid", Ground, 3e3)
	r, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatalf("DCOperatingPoint: %v", err)
	}
	if got := r.V("mid"); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("V(mid) = %g, want 0.75", got)
	}
	// The source delivers 1 V across 4 kΩ = 250 µA.
	if got := r.SourceCurrent("vin"); math.Abs(got-250e-6) > 1e-12 {
		t.Fatalf("SourceCurrent = %g, want 250e-6", got)
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	c := New()
	// 1 mA pushed from ground into node "out" through the source.
	c.AddI("i1", Ground, "out", DC(1e-3))
	c.AddR("r1", "out", Ground, 2e3)
	r, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatalf("DCOperatingPoint: %v", err)
	}
	if got := r.V("out"); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("V(out) = %g, want 2.0", got)
	}
}

func TestFloatingNodeViaGmin(t *testing.T) {
	// A capacitor-only node is floating in DC; the solve must still succeed
	// (gmin or the pivot tolerance must not blow up) or error cleanly.
	c := New()
	c.AddV("v1", "a", Ground, DC(1))
	c.AddR("r1", "a", "b", 1e3)
	c.AddC("c1", "b", Ground, 1e-15)
	r, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatalf("DCOperatingPoint: %v", err)
	}
	if got := r.V("b"); math.Abs(got-1) > 1e-6 {
		t.Fatalf("V(b) = %g, want ~1 (no DC current through R)", got)
	}
}

// inverter builds a single-fin CMOS inverter from the given flavor.
func inverter(c *Circuit, lib *device.Library, f device.Flavor, in, out, vddNode string) {
	c.AddFET(FET{Name: "mp_" + out, Model: lib.Model(device.PFET, f), Fins: 1, D: out, G: in, S: vddNode})
	c.AddFET(FET{Name: "mn_" + out, Model: lib.Model(device.NFET, f), Fins: 1, D: out, G: in, S: Ground})
}

func TestInverterRails(t *testing.T) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	c.AddV("vin", "in", Ground, DC(0))
	inverter(c, lib, device.LVT, "in", "out", "VDD")

	r, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatalf("input low: %v", err)
	}
	if got := r.V("out"); got < device.Vdd*0.98 {
		t.Fatalf("out with in=0: %g, want ≈Vdd", got)
	}

	c.SetV("vin", DC(device.Vdd))
	r, err = c.DCOperatingPoint()
	if err != nil {
		t.Fatalf("input high: %v", err)
	}
	if got := r.V("out"); got > device.Vdd*0.02 {
		t.Fatalf("out with in=Vdd: %g, want ≈0", got)
	}
}

func TestInverterVTCMonotoneFalling(t *testing.T) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	c.AddV("vin", "in", Ground, DC(0))
	inverter(c, lib, device.HVT, "in", "out", "VDD")

	var vins []float64
	for v := 0.0; v <= device.Vdd+1e-12; v += 0.01 {
		vins = append(vins, v)
	}
	rs, err := c.DCSweep("vin", vins)
	if err != nil {
		t.Fatalf("DCSweep: %v", err)
	}
	prev := math.Inf(1)
	for i, r := range rs {
		out := r.V("out")
		if out > prev+1e-9 {
			t.Fatalf("VTC not monotone at vin=%g: %g after %g", vins[i], out, prev)
		}
		prev = out
	}
	if first := rs[0].V("out"); first < 0.9*device.Vdd {
		t.Fatalf("VTC start %g, want near Vdd", first)
	}
	if last := rs[len(rs)-1].V("out"); last > 0.1*device.Vdd {
		t.Fatalf("VTC end %g, want near 0", last)
	}
}

func TestSRAMLatchBistable(t *testing.T) {
	lib := device.Default7nm()
	build := func(q0 float64) *Circuit {
		c := New()
		c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
		inverter(c, lib, device.LVT, "q", "qb", "VDD")
		inverter(c, lib, device.LVT, "qb", "q", "VDD")
		c.SetIC("q", q0)
		c.SetIC("qb", device.Vdd-q0)
		return c
	}
	r0, err := build(0).DCOperatingPoint()
	if err != nil {
		t.Fatalf("state 0: %v", err)
	}
	r1, err := build(device.Vdd).DCOperatingPoint()
	if err != nil {
		t.Fatalf("state 1: %v", err)
	}
	if r0.V("q") > 0.05 || r0.V("qb") < device.Vdd-0.05 {
		t.Fatalf("state 0 not held: q=%g qb=%g", r0.V("q"), r0.V("qb"))
	}
	if r1.V("q") < device.Vdd-0.05 || r1.V("qb") > 0.05 {
		t.Fatalf("state 1 not held: q=%g qb=%g", r1.V("q"), r1.V("qb"))
	}
}

func TestPassGateConductsBothWays(t *testing.T) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vg", "g", Ground, DC(device.Vdd))
	c.AddV("vin", "a", Ground, DC(0.2))
	c.AddFET(FET{Name: "mpass", Model: lib.NLVT, Fins: 1, D: "a", G: "g", S: "b"})
	c.AddR("rload", "b", Ground, 1e7)
	r, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	if got := r.V("b"); got < 0.15 || got > 0.2 {
		t.Fatalf("pass-gate output = %g, want close to 0.2", got)
	}
}

func TestDCSweepUnknownSource(t *testing.T) {
	c := New()
	c.AddV("v1", "a", Ground, DC(1))
	c.AddR("r1", "a", Ground, 1e3)
	if _, err := c.DCSweep("nope", []float64{1}); err == nil {
		t.Fatal("expected error for unknown source")
	}
}

func TestResultUnknownNodePanics(t *testing.T) {
	c := New()
	c.AddV("v1", "a", Ground, DC(1))
	c.AddR("r1", "a", Ground, 1e3)
	r, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown node")
		}
	}()
	r.V("missing")
}

func TestNetlistValidationPanics(t *testing.T) {
	c := New()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil model", func() { c.AddFET(FET{Name: "m", Fins: 1, D: "d", G: "g", S: "s"}) })
	mustPanic("zero fins", func() {
		c.AddFET(FET{Name: "m", Model: device.Default7nm().NLVT, Fins: 0, D: "d", G: "g", S: "s"})
	})
	mustPanic("bad R", func() { c.AddR("r", "a", "b", -5) })
	mustPanic("bad C", func() { c.AddC("c", "a", "b", 0) })
	mustPanic("nil waveform", func() { c.AddV("v", "a", "b", nil) })
	mustPanic("SetV missing", func() { c.SetV("ghost", DC(0)) })
}

func TestLeakageCurrentMagnitude(t *testing.T) {
	// An off NFET from a 450 mV source: delivered current equals IOFF.
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	c.AddFET(FET{Name: "moff", Model: lib.NHVT, Fins: 1, D: "VDD", G: Ground, S: Ground})
	r, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	got := r.SourceCurrent("vdd")
	want := lib.NHVT.IOFF()
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("leakage = %g, want %g", got, want)
	}
}
