package circuit

import (
	"testing"

	"sramco/internal/device"
)

// TestRingOscillator is a dynamic end-to-end check of the transient engine:
// a 3-stage ring of LVT inverters must oscillate rail-to-rail with a stable
// period in the tens of picoseconds at this node.
func TestRingOscillator(t *testing.T) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	nodes := []string{"n1", "n2", "n3"}
	for i, out := range nodes {
		in := nodes[(i+2)%3]
		inverter(c, lib, device.LVT, in, out, "VDD")
		c.AddC("c"+out, out, Ground, 0.5e-15)
	}
	// Break the symmetry so the ring starts.
	c.SetIC("n1", device.Vdd)
	c.SetIC("n2", 0)
	c.SetIC("n3", device.Vdd/2)

	res, err := c.Transient(TranOpts{TStop: 1.5e-9, DT: 0.25e-12, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	half := device.Vdd / 2
	// Collect rising crossings of n1 after startup.
	var crossings []float64
	tSearch := 0.3e-9
	for {
		tc, err := res.CrossTime("n1", half, RisingEdge, tSearch)
		if err != nil {
			break
		}
		crossings = append(crossings, tc)
		tSearch = tc + 1e-12
	}
	if len(crossings) < 4 {
		t.Fatalf("ring produced only %d rising crossings — not oscillating", len(crossings))
	}
	// Period stability: successive periods within 10%.
	periods := make([]float64, 0, len(crossings)-1)
	for i := 1; i < len(crossings); i++ {
		periods = append(periods, crossings[i]-crossings[i-1])
	}
	for i := 1; i < len(periods); i++ {
		ratio := periods[i] / periods[i-1]
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("unstable period: %g then %g", periods[i-1], periods[i])
		}
	}
	// Sanity band: a 3-stage ring at 450 mV: tens to a few hundred ps.
	if p := periods[0]; p < 10e-12 || p > 500e-12 {
		t.Errorf("period = %g, want 10-500 ps", p)
	}
	// Rail-to-rail swing.
	v := res.V("n1")
	minV, maxV := v[len(v)/2], v[len(v)/2]
	for _, x := range v[len(v)/2:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	if maxV < 0.9*device.Vdd || minV > 0.1*device.Vdd {
		t.Errorf("swing [%g, %g] not rail-to-rail", minV, maxV)
	}
}

// TestTransientWLRampWriteFlip tracks a write through the bistability fold
// dynamically: a slow wordline ramp on a cell whose bitlines force a write
// must flip the state exactly once, at a plausible trip voltage. (The fold
// itself is a singular DC point — SPICE-class DC sweeps jump there too —
// so the dynamic ramp is the well-posed version of this experiment.)
func TestTransientWLRampWriteFlip(t *testing.T) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	inverter(c, lib, device.LVT, "q", "qb", "VDD")
	inverter(c, lib, device.LVT, "qb", "q", "VDD")
	const ramp = 400e-12
	c.AddV("vwl", "wl", Ground, NewPWL(PWLPoint{0, 0}, PWLPoint{ramp, device.Vdd}))
	c.AddV("vbl", "bl", Ground, DC(0)) // writing 0 onto q
	c.AddV("vblb", "blb", Ground, DC(device.Vdd))
	c.AddFET(FET{Name: "maxl", Model: lib.NLVT, Fins: 1, D: "bl", G: "wl", S: "q"})
	c.AddFET(FET{Name: "maxr", Model: lib.NLVT, Fins: 1, D: "blb", G: "wl", S: "qb"})
	c.AddC("cq", "q", Ground, 0.2e-15)
	c.AddC("cqb", "qb", Ground, 0.2e-15)
	c.SetIC("q", device.Vdd)
	c.SetIC("qb", 0)

	res, err := c.Transient(TranOpts{TStop: ramp + 50e-12, DT: 0.5e-12, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	if q0 := res.V("q")[0]; q0 < 0.9*device.Vdd {
		t.Fatalf("initial state lost: q=%g", q0)
	}
	if qEnd := res.Final("q"); qEnd > 0.1*device.Vdd {
		t.Fatalf("write never completed: q=%g at WL=Vdd", qEnd)
	}
	// Exactly one falling crossing of Vdd/2, and the WL level at that
	// moment must be a plausible trip voltage.
	tFlip, err := res.CrossTime("q", device.Vdd/2, FallingEdge, 0)
	if err != nil {
		t.Fatal("no flip observed")
	}
	wlAtFlip := res.AtTime("wl", tFlip)
	if wlAtFlip < 0.05 || wlAtFlip > device.Vdd {
		t.Errorf("flip at WL=%g, implausible trip voltage", wlAtFlip)
	}
	if _, err := res.CrossTime("q", device.Vdd/2, RisingEdge, tFlip); err == nil {
		t.Error("cell un-flipped after the write")
	}
}

// TestGminFallback exercises the gmin-stepping path: a chain of
// diode-connected HVT devices has an extremely high-impedance internal node
// that plain Newton from a zero guess struggles with.
func TestGminFallback(t *testing.T) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	// Three diode-connected NFETs in series.
	c.AddFET(FET{Name: "m1", Model: lib.NHVT, Fins: 1, D: "VDD", G: "VDD", S: "a"})
	c.AddFET(FET{Name: "m2", Model: lib.NHVT, Fins: 1, D: "a", G: "a", S: "b"})
	c.AddFET(FET{Name: "m3", Model: lib.NHVT, Fins: 1, D: "b", G: "b", S: Ground})
	r, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	va, vb := r.V("a"), r.V("b")
	if !(va > vb && vb > 0 && va < device.Vdd) {
		t.Errorf("stack voltages not ordered: a=%g b=%g", va, vb)
	}
}
