package circuit

import "sramco/internal/obs"

// Solver metrics. Counters are deterministic for a given workload (the
// same solves perform the same iterations regardless of scheduling);
// histograms record wall time and are environmental. The hot Newton loop
// accumulates into plain locals and flushes one atomic add per solve, so
// the instrumentation is allocation-free and contention-free.
var (
	mNewtonIters    = obs.NewCounter("circuit.newton.iterations")
	mNewtonSingular = obs.NewCounter("circuit.newton.singular_jacobians")
	mNewtonFails    = obs.NewCounter("circuit.newton.failures")
	mGminSteppings  = obs.NewCounter("circuit.newton.gmin_steppings")
	mSrcSteppings   = obs.NewCounter("circuit.newton.source_steppings")

	mDCOps         = obs.NewCounter("circuit.dc.op_solves")
	mDCSweepPoints = obs.NewCounter("circuit.dc.sweep_points")

	mTranRuns     = obs.NewCounter("circuit.tran.runs")
	mTranSteps    = obs.NewCounter("circuit.tran.steps")
	mTranHalvings = obs.NewCounter("circuit.tran.step_halvings")
	mTranFails    = obs.NewCounter("circuit.tran.failures")

	hTranDur = obs.NewHistogram("circuit.tran.duration")
	hDCOpDur = obs.NewHistogram("circuit.dc.op_duration")
)
