package circuit

import (
	"testing"

	"sramco/internal/device"
)

// BenchmarkDCOperatingPoint6T measures a full 6T-cell operating-point solve
// — the unit of work behind every leakage and read-current measurement.
func BenchmarkDCOperatingPoint6T(b *testing.B) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	c.AddV("vwl", "wl", Ground, DC(0))
	c.AddV("vbl", "bl", Ground, DC(device.Vdd))
	c.AddV("vblb", "blb", Ground, DC(device.Vdd))
	inverter(c, lib, device.HVT, "q", "qb", "VDD")
	inverter(c, lib, device.HVT, "qb", "q", "VDD")
	c.AddFET(FET{Name: "maxl", Model: lib.NHVT, Fins: 1, D: "bl", G: "wl", S: "q"})
	c.AddFET(FET{Name: "maxr", Model: lib.NHVT, Fins: 1, D: "blb", G: "wl", S: "qb"})
	c.SetIC("q", 0)
	c.SetIC("qb", device.Vdd)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DCOperatingPoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVTCSweep measures a 181-point inverter VTC sweep with
// continuation — the unit of work behind every butterfly branch.
func BenchmarkVTCSweep(b *testing.B) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	c.AddV("vin", "in", Ground, DC(0))
	inverter(c, lib, device.HVT, "in", "out", "VDD")
	var vins []float64
	for i := 0; i <= 180; i++ {
		vins = append(vins, device.Vdd*float64(i)/180)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DCSweep("vin", vins); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientInverter measures a 400-step backward-Euler transient.
func BenchmarkTransientInverter(b *testing.B) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	c.AddV("vin", "in", Ground, Step(0, device.Vdd, 10e-12, 2e-12))
	inverter(c, lib, device.LVT, "in", "out", "VDD")
	c.AddC("cl", "out", Ground, 1e-15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Transient(TranOpts{TStop: 200e-12, DT: 0.5e-12}); err != nil {
			b.Fatal(err)
		}
	}
}
