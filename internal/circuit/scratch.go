package circuit

import (
	"fmt"
	"math"
	"time"

	"sramco/internal/obs"
)

// Sweeper is a reusable DC-sweep evaluator bound to one circuit, one swept
// voltage source, and one observed node. It produces exactly the voltages
// DCSweep would report for that node — same continuation, same robust-Newton
// strategy, bit-identical numerics — but reuses the Newton workspace across
// calls and never materializes per-point DCResult maps. The Monte Carlo
// scratch path sweeps the same two VTC netlists tens of thousands of times;
// this is its hot loop.
type Sweeper struct {
	c    *Circuit
	src  *vsource
	node int
	as   *assembler
	x    []float64 // continuation state, reused across calls
}

// NewSweeper binds a sweeper to the named voltage source and observed node.
// The circuit's topology must not change afterwards (SetV, SetIC, and
// SetFETDVt are fine; Add* are not).
func (c *Circuit) NewSweeper(source, node string) (*Sweeper, error) {
	var src *vsource
	for _, v := range c.vsrc {
		if v.name == source {
			src = v
			break
		}
	}
	if src == nil {
		return nil, fmt.Errorf("circuit: NewSweeper: no voltage source %q", source)
	}
	ni, ok := c.nodeIndex[node]
	if !ok {
		return nil, fmt.Errorf("circuit: NewSweeper: no node %q", node)
	}
	as := newAssembler(c)
	return &Sweeper{c: c, src: src, node: ni, as: as, x: make([]float64, as.dim)}, nil
}

// Sweep solves the operating point at each source value with continuation and
// stores the observed node's voltage in out[i]. out must have len(values).
// The source's waveform is restored afterwards.
func (s *Sweeper) Sweep(values []float64, out []float64) error {
	if len(out) != len(values) {
		return fmt.Errorf("circuit: Sweep: len(out)=%d, len(values)=%d", len(out), len(values))
	}
	orig := s.src.wave
	defer func() { s.src.wave = orig }()

	sp := obs.StartSpan("circuit.dc_sweep")
	// Fresh initial guess per call: continuation state must not leak across
	// Monte Carlo samples, or results would depend on evaluation order.
	s.c.initialGuessInto(s.x, 0)
	x := s.x
	for i, val := range values {
		s.src.wave = DC(val)
		xn, err := s.as.solveRobust(x, 0, nil)
		if err != nil {
			mDCSweepPoints.Add(int64(i))
			return fmt.Errorf("circuit: DCSweep %s=%g (point %d): %w", s.src.name, val, i, err)
		}
		copy(s.x, xn)
		x = s.x
		out[i] = nodeV(x, s.node)
	}
	mDCSweepPoints.Add(int64(len(values)))
	sp.Str("source", s.src.name)
	sp.Int("points", int64(len(values)))
	sp.End()
	return nil
}

// initialGuessInto is initialGuess without the allocation: it fills x
// (len ≥ dim) instead of returning a fresh slice.
func (c *Circuit) initialGuessInto(x []float64, t float64) {
	for i := range x {
		x[i] = 0
	}
	for _, v := range c.vsrc {
		if v.b == 0 && v.a != 0 {
			x[v.a-1] = v.wave.At(t)
		}
		if v.a == 0 && v.b != 0 {
			x[v.b-1] = -v.wave.At(t)
		}
	}
	for name, vv := range c.ic {
		if i := c.nodeIndex[name]; i > 0 {
			x[i-1] = vv
		}
	}
}

// TranRunner is a reusable transient evaluator bound to one circuit. It runs
// the same backward-Euler stepping as Transient — same step control, same
// counters — but records no waveforms: only the final state survives, which
// is all the write-margin trip test needs. The Newton workspace is reused
// across runs.
type TranRunner struct {
	c  *Circuit
	as *assembler
	x  []float64 // final state of the last Run
	x0 []float64 // reusable initial state
}

// NewTranRunner binds a transient runner to the circuit. The circuit's
// topology must not change afterwards.
func (c *Circuit) NewTranRunner() *TranRunner {
	as := newAssembler(c)
	return &TranRunner{c: c, as: as, x: make([]float64, as.dim), x0: make([]float64, as.dim)}
}

// Run executes the transient analysis, keeping only the final state. Query it
// with FinalV.
func (tr *TranRunner) Run(opts TranOpts) error {
	if opts.TStop <= 0 || opts.DT <= 0 {
		return fmt.Errorf("circuit: Transient requires positive TStop and DT (got %g, %g)", opts.TStop, opts.DT)
	}
	start := time.Now()
	sp := obs.StartSpan("circuit.transient")
	mTranRuns.Inc()
	as := tr.as
	as.halvings = 0
	tr.c.initialGuessInto(tr.x0, 0)
	var x []float64
	if opts.UIC {
		copy(tr.x, tr.x0)
		x = tr.x
	} else {
		xn, err := as.solveRobust(tr.x0, 0, nil)
		if err != nil {
			return fmt.Errorf("circuit: transient initial operating point: %w", err)
		}
		copy(tr.x, xn)
		x = tr.x
	}

	t := 0.0
	var steps int64
	for t < opts.TStop-opts.DT*1e-9 {
		dt := math.Min(opts.DT, opts.TStop-t)
		xn, tn, err := tr.c.step(as, x, t, dt, 0)
		if err != nil {
			mTranFails.Inc()
			hTranDur.Observe(time.Since(start))
			return err
		}
		copy(tr.x, xn)
		x, t = tr.x, tn
		steps++
	}
	mTranSteps.Add(steps)
	hTranDur.Observe(time.Since(start))
	sp.Int("steps", steps)
	sp.Int("halvings", as.halvings)
	sp.End()
	return nil
}

// FinalV returns the named node's voltage at the end of the last Run.
func (tr *TranRunner) FinalV(node string) float64 {
	i, ok := tr.c.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("circuit: no node %q in transient result", node))
	}
	return nodeV(tr.x, i)
}
