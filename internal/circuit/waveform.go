package circuit

import (
	"fmt"
	"sort"
)

// Waveform is a time-dependent source value. DC analyses evaluate waveforms
// at t = 0.
type Waveform interface {
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At returns the constant value regardless of time.
func (d DC) At(float64) float64 { return float64(d) }

// PWLPoint is one breakpoint of a piecewise-linear waveform.
type PWLPoint struct {
	T float64 // time (s)
	V float64 // value at T
}

// PWL is a piecewise-linear waveform. Before the first point it holds the
// first value; after the last point it holds the last value.
type PWL struct {
	pts []PWLPoint
}

// NewPWL builds a piecewise-linear waveform. Points must be in
// nondecreasing time order.
func NewPWL(pts ...PWLPoint) *PWL {
	if len(pts) == 0 {
		panic("circuit: PWL needs at least one point")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T {
			panic(fmt.Sprintf("circuit: PWL times not sorted at index %d", i))
		}
	}
	return &PWL{pts: append([]PWLPoint(nil), pts...)}
}

// At evaluates the waveform at time t.
func (p *PWL) At(t float64) float64 {
	pts := p.pts
	if t <= pts[0].T {
		return pts[0].V
	}
	last := pts[len(pts)-1]
	if t >= last.T {
		return last.V
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T > t }) - 1
	a, b := pts[i], pts[i+1]
	if b.T == a.T {
		return b.V
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.V + frac*(b.V-a.V)
}

// Step returns a waveform that transitions linearly from v0 to v1 starting
// at t0 over rise seconds.
func Step(v0, v1, t0, rise float64) *PWL {
	return NewPWL(PWLPoint{0, v0}, PWLPoint{t0, v0}, PWLPoint{t0 + rise, v1})
}
