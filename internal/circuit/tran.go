package circuit

import (
	"fmt"
	"math"
	"time"

	"sramco/internal/obs"
)

// TranResult holds a transient waveform set.
type TranResult struct {
	Times []float64
	names map[string]int
	volts [][]float64 // volts[i] is the voltage trace of node index i (incl. ground at 0)
}

// V returns the full voltage trace of a node.
func (r *TranResult) V(node string) []float64 {
	i, ok := r.names[node]
	if !ok {
		panic(fmt.Sprintf("circuit: no node %q in transient result", node))
	}
	return r.volts[i]
}

// AtTime returns the voltage of a node at time t by linear interpolation
// between stored steps, clamping outside the simulated interval.
func (r *TranResult) AtTime(node string, t float64) float64 {
	v := r.V(node)
	ts := r.Times
	if t <= ts[0] {
		return v[0]
	}
	if t >= ts[len(ts)-1] {
		return v[len(v)-1]
	}
	// Binary search for the surrounding interval.
	lo, hi := 0, len(ts)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ts[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - ts[lo]) / (ts[hi] - ts[lo])
	return v[lo] + frac*(v[hi]-v[lo])
}

// Edge selects a crossing direction for CrossTime.
type Edge int

const (
	EitherEdge Edge = iota
	RisingEdge
	FallingEdge
)

// CrossTime returns the first time after tMin at which the node crosses
// level in the given direction, or an error if it never does.
func (r *TranResult) CrossTime(node string, level float64, edge Edge, tMin float64) (float64, error) {
	v := r.V(node)
	for i := 1; i < len(v); i++ {
		if r.Times[i] < tMin {
			continue
		}
		a, b := v[i-1], v[i]
		rising := a < level && b >= level
		falling := a > level && b <= level
		hit := (edge == EitherEdge && (rising || falling)) ||
			(edge == RisingEdge && rising) || (edge == FallingEdge && falling)
		if !hit {
			continue
		}
		if a == b {
			return r.Times[i], nil
		}
		frac := (level - a) / (b - a)
		return r.Times[i-1] + frac*(r.Times[i]-r.Times[i-1]), nil
	}
	return 0, fmt.Errorf("circuit: node %q never crosses %g after %g", node, level, tMin)
}

// Final returns the last value of a node's trace.
func (r *TranResult) Final(node string) float64 {
	v := r.V(node)
	return v[len(v)-1]
}

// TranOpts configures a transient analysis.
type TranOpts struct {
	TStop float64 // end time (s); required
	DT    float64 // base step (s); required
	// UIC skips the initial operating-point solve and starts from the
	// SetIC values directly (nodes without ICs start at 0).
	UIC bool
}

// Transient runs a backward-Euler transient analysis. Each step solves the
// nonlinear companion system with the robust Newton strategy; on failure the
// step is recursively halved (up to 12 levels) before giving up.
func (c *Circuit) Transient(opts TranOpts) (*TranResult, error) {
	if opts.TStop <= 0 || opts.DT <= 0 {
		return nil, fmt.Errorf("circuit: Transient requires positive TStop and DT (got %g, %g)", opts.TStop, opts.DT)
	}
	start := time.Now()
	sp := obs.StartSpan("circuit.transient")
	mTranRuns.Inc()
	as := newAssembler(c)
	var x []float64
	if opts.UIC {
		x = c.initialGuess(0, as.dim)
	} else {
		var err error
		x, err = as.solveRobust(c.initialGuess(0, as.dim), 0, nil)
		if err != nil {
			return nil, fmt.Errorf("circuit: transient initial operating point: %w", err)
		}
	}

	res := &TranResult{names: make(map[string]int, as.nn)}
	for i, name := range c.nodeNames {
		res.names[name] = i
	}
	res.volts = make([][]float64, as.nn)
	record := func(t float64, x []float64) {
		res.Times = append(res.Times, t)
		for n := 0; n < as.nn; n++ {
			res.volts[n] = append(res.volts[n], nodeV(x, n))
		}
	}
	record(0, x)

	t := 0.0
	for t < opts.TStop-opts.DT*1e-9 {
		dt := math.Min(opts.DT, opts.TStop-t)
		xn, tn, err := c.step(as, x, t, dt, 0)
		if err != nil {
			mTranFails.Inc()
			hTranDur.Observe(time.Since(start))
			return nil, err
		}
		x, t = xn, tn
		record(t, x)
	}
	steps := int64(len(res.Times) - 1)
	mTranSteps.Add(steps)
	hTranDur.Observe(time.Since(start))
	sp.Int("steps", steps)
	sp.Int("halvings", as.halvings)
	sp.End()
	return res, nil
}

// step advances one (possibly subdivided) time step.
func (c *Circuit) step(as *assembler, x []float64, t, dt float64, depth int) ([]float64, float64, error) {
	tc := &tranCtx{dt: dt, xprev: x}
	xn, err := as.newton(x, t+dt, 0, 1, tc)
	if err == nil {
		return xn, t + dt, nil
	}
	if depth >= 12 {
		return nil, 0, fmt.Errorf("circuit: transient step at t=%g failed after 12 halvings: %w", t, err)
	}
	mTranHalvings.Inc()
	as.halvings++
	half := dt / 2
	xm, tm, err := c.step(as, x, t, half, depth+1)
	if err != nil {
		return nil, 0, err
	}
	return c.step(as, xm, tm, half, depth+1)
}
