package circuit

import (
	"fmt"
	"math"
	"time"

	"sramco/internal/num"
	"sramco/internal/obs"
)

// Solver tolerances and limits.
const (
	dxTol      = 1e-11 // V, Newton update convergence threshold
	residTol   = 1e-13 // A, KCL residual threshold
	maxNewton  = 400   // Newton iterations per solve attempt
	dampClampV = 0.15  // V, max per-iteration node-voltage change
	fdStep     = 1e-7  // V, finite-difference step for FET conductances
)

// DCResult is the outcome of a DC analysis.
type DCResult struct {
	volts map[string]float64
	isrcs map[string]float64
}

// V returns the solved voltage of a node. Unknown nodes panic: asking for a
// node that is not in the netlist is a programming error.
func (r *DCResult) V(node string) float64 {
	v, ok := r.volts[node]
	if !ok {
		panic(fmt.Sprintf("circuit: no node %q in result", node))
	}
	return v
}

// SourceCurrent returns the current delivered by the named voltage source
// out of its positive terminal into the circuit (positive when the source
// powers the circuit).
func (r *DCResult) SourceCurrent(name string) float64 {
	i, ok := r.isrcs[name]
	if !ok {
		panic(fmt.Sprintf("circuit: no voltage source %q in result", name))
	}
	return i
}

// tranCtx carries backward-Euler companion state for transient solves.
type tranCtx struct {
	dt    float64
	xprev []float64
}

// assembler holds the reusable Newton workspace for one circuit.
type assembler struct {
	c   *Circuit
	nn  int // nodes incl. ground
	nv  int // voltage sources
	dim int // unknowns: (nn-1) node voltages + nv branch currents
	a   *num.Matrix
	rhs []float64

	lu   *num.LU   // reusable factorization storage
	xn   []float64 // reusable Newton-solve output
	fres []float64 // reusable KCL residual vector

	halvings int64 // transient step halvings of this analysis (for tracing)
}

func newAssembler(c *Circuit) *assembler {
	nn := c.NumNodes()
	nv := len(c.vsrc)
	dim := nn - 1 + nv
	for i, v := range c.vsrc {
		v.br = nn - 1 + i
	}
	return &assembler{
		c: c, nn: nn, nv: nv, dim: dim,
		a: num.NewMatrix(dim, dim), rhs: make([]float64, dim),
		lu: num.NewLU(dim), xn: make([]float64, dim), fres: make([]float64, nn-1),
	}
}

// row maps a node index to its matrix row, or -1 for ground.
func row(node int) int { return node - 1 }

// fetEval returns the drain current and small-signal conductances of a FET
// instance at the given terminal voltages.
func fetEval(f *fet, vd, vg, vs float64) (id, gm, gds float64) {
	w := float64(f.Fins)
	eval := func(vd, vg, vs float64) float64 {
		return w * f.Model.IdsShift(vg-vs, vd-vs, f.DVt)
	}
	id = eval(vd, vg, vs)
	gm = (eval(vd, vg+fdStep, vs) - eval(vd, vg-fdStep, vs)) / (2 * fdStep)
	gds = (eval(vd+fdStep, vg, vs) - eval(vd-fdStep, vg, vs)) / (2 * fdStep)
	return id, gm, gds
}

// assemble builds the linearized MNA system A·x_new = rhs around iterate x.
// srcScale scales all independent sources (source stepping); gmin adds a
// leak conductance from every node to ground; tc enables capacitor
// companions for transient steps.
func (as *assembler) assemble(x []float64, t, gmin, srcScale float64, tc *tranCtx) {
	as.a.Zero()
	for i := range as.rhs {
		as.rhs[i] = 0
	}
	a, rhs := as.a, as.rhs

	stampG := func(na, nb int, g float64) {
		ra, rb := row(na), row(nb)
		if ra >= 0 {
			a.Add(ra, ra, g)
		}
		if rb >= 0 {
			a.Add(rb, rb, g)
		}
		if ra >= 0 && rb >= 0 {
			a.Add(ra, rb, -g)
			a.Add(rb, ra, -g)
		}
	}
	// Current i injected INTO node n (from a companion/current source).
	inject := func(n int, i float64) {
		if r := row(n); r >= 0 {
			rhs[r] += i
		}
	}

	for _, r := range as.c.res {
		stampG(r.a, r.b, r.g)
	}
	if gmin > 0 {
		for n := 1; n < as.nn; n++ {
			a.Add(row(n), row(n), gmin)
		}
	}
	for _, f := range as.c.fets {
		vd, vg, vs := nodeV(x, f.d), nodeV(x, f.g), nodeV(x, f.s)
		id, gm, gds := fetEval(f, vd, vg, vs)
		gs := -(gm + gds)
		// Companion current source: the linearization offset.
		ieq := id - gm*vg - gds*vd - gs*vs
		rd, rg, rs := row(f.d), row(f.g), row(f.s)
		add := func(r, cnode int, v float64) {
			if r >= 0 && cnode >= 0 {
				a.Add(r, cnode, v)
			}
		}
		// KCL: current id leaves the drain node into the channel and exits
		// at the source node.
		add(rd, rg, gm)
		add(rd, rd, gds)
		add(rd, rs, gs)
		add(rs, rg, -gm)
		add(rs, rd, -gds)
		add(rs, rs, -gs)
		inject(f.d, -ieq)
		inject(f.s, ieq)
	}
	if tc != nil {
		gc := 1.0 / tc.dt
		for _, cp := range as.c.caps {
			g := cp.cap * gc
			stampG(cp.a, cp.b, g)
			vabPrev := nodeV(tc.xprev, cp.a) - nodeV(tc.xprev, cp.b)
			inject(cp.a, g*vabPrev)
			inject(cp.b, -g*vabPrev)
		}
	}
	for _, s := range as.c.isrc {
		i := s.wave.At(t) * srcScale
		// Current flows from node a through the source into node b.
		inject(s.a, -i)
		inject(s.b, i)
	}
	for _, v := range as.c.vsrc {
		ra, rb, br := row(v.a), row(v.b), v.br
		if ra >= 0 {
			a.Add(ra, br, 1)
			a.Add(br, ra, 1)
		}
		if rb >= 0 {
			a.Add(rb, br, -1)
			a.Add(br, rb, -1)
		}
		rhs[br] = v.wave.At(t) * srcScale
	}
}

// nodeV reads node n's voltage from the unknown vector (ground = 0).
func nodeV(x []float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return x[n-1]
}

// residual computes the KCL residual (net current leaving each non-ground
// node) at iterate x, excluding voltage-source branches, whose currents are
// free variables that absorb their node residuals.
func (as *assembler) residual(x []float64, t, srcScale float64, tc *tranCtx) float64 {
	f := as.fres
	for i := range f {
		f[i] = 0
	}
	addI := func(n int, i float64) { // current i leaves node n
		if r := row(n); r >= 0 {
			f[r] += i
		}
	}
	for _, r := range as.c.res {
		i := (nodeV(x, r.a) - nodeV(x, r.b)) * r.g
		addI(r.a, i)
		addI(r.b, -i)
	}
	for _, ft := range as.c.fets {
		id, _, _ := fetEval(ft, nodeV(x, ft.d), nodeV(x, ft.g), nodeV(x, ft.s))
		addI(ft.d, id)
		addI(ft.s, -id)
	}
	if tc != nil {
		for _, cp := range as.c.caps {
			i := cp.cap / tc.dt * ((nodeV(x, cp.a) - nodeV(x, cp.b)) - (nodeV(tc.xprev, cp.a) - nodeV(tc.xprev, cp.b)))
			addI(cp.a, i)
			addI(cp.b, -i)
		}
	}
	for _, s := range as.c.isrc {
		i := s.wave.At(t) * srcScale
		addI(s.a, i)
		addI(s.b, -i)
	}
	for _, v := range as.c.vsrc {
		i := x[v.br]
		addI(v.a, i)
		addI(v.b, -i)
	}
	return num.NormInf(f)
}

// newton runs damped Newton from x0 with the default damping clamp.
func (as *assembler) newton(x0 []float64, t, gmin, srcScale float64, tc *tranCtx) ([]float64, error) {
	return as.newtonDamped(x0, t, gmin, srcScale, tc, dampClampV)
}

// newtonDamped runs damped Newton from x0 with an explicit per-iteration
// voltage clamp. Smaller clamps converge on stiffer problems (e.g. near a
// bistability fold) at the cost of more iterations.
func (as *assembler) newtonDamped(x0 []float64, t, gmin, srcScale float64, tc *tranCtx, clamp float64) ([]float64, error) {
	x := append([]float64(nil), x0...)
	for it := 0; it < maxNewton; it++ {
		as.assemble(x, t, gmin, srcScale, tc)
		if err := as.lu.Refactor(as.a); err != nil {
			mNewtonIters.Add(int64(it) + 1)
			mNewtonSingular.Inc()
			return nil, fmt.Errorf("circuit: singular Jacobian at iteration %d: %w", it, err)
		}
		as.lu.SolveInto(as.xn, as.rhs)
		xn := as.xn
		var maxDx float64
		for i := 0; i < as.nn-1; i++ {
			dx := xn[i] - x[i]
			if a := math.Abs(dx); a > maxDx {
				maxDx = a
			}
			if dx > clamp {
				dx = clamp
			} else if dx < -clamp {
				dx = -clamp
			}
			x[i] += dx
		}
		for i := as.nn - 1; i < as.dim; i++ {
			x[i] = xn[i]
		}
		if maxDx < dxTol {
			// Re-solve branch currents at the final voltages, then verify KCL.
			if r := as.residual(x, t, srcScale, tc); r < residTol {
				mNewtonIters.Add(int64(it) + 1)
				return x, nil
			}
		}
	}
	mNewtonIters.Add(maxNewton)
	mNewtonFails.Inc()
	return nil, fmt.Errorf("circuit: Newton did not converge in %d iterations", maxNewton)
}

// solveRobust tries plain Newton, then gmin stepping, then source stepping —
// first with the standard damping clamp, then with a small clamp that
// handles stiff points such as bistability folds.
func (as *assembler) solveRobust(x0 []float64, t float64, tc *tranCtx) ([]float64, error) {
	var lastErr error
	for _, clamp := range []float64{dampClampV, dampClampV / 8} {
		if x, err := as.newtonDamped(x0, t, 0, 1, tc, clamp); err == nil {
			return x, nil
		}
		// gmin stepping: relax with a strong leak and tighten it
		// continuously.
		mGminSteppings.Inc()
		x := append([]float64(nil), x0...)
		ok := true
		for _, gmin := range []float64{1e-3, 1e-5, 1e-7, 1e-9, 1e-11, 1e-13, 0} {
			xn, err := as.newtonDamped(x, t, gmin, 1, tc, clamp)
			if err != nil {
				lastErr = err
				ok = false
				break
			}
			x = xn
		}
		if ok {
			return x, nil
		}
		// Source stepping: ramp all sources from 10% to 100%.
		mSrcSteppings.Inc()
		x = make([]float64, as.dim)
		ok = true
		for _, scale := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
			xn, err := as.newtonDamped(x, t, 1e-12, scale, tc, clamp)
			if err != nil {
				lastErr = fmt.Errorf("circuit: source stepping failed at scale %.1f: %w", scale, err)
				ok = false
				break
			}
			x = xn
		}
		if ok {
			if xn, err := as.newtonDamped(x, t, 0, 1, tc, clamp); err == nil {
				return xn, nil
			} else {
				lastErr = err
			}
		}
	}
	return nil, lastErr
}

func (as *assembler) result(x []float64) *DCResult {
	r := &DCResult{volts: make(map[string]float64, as.nn), isrcs: make(map[string]float64, as.nv)}
	for i, name := range as.c.nodeNames {
		r.volts[name] = nodeV(x, i)
	}
	for _, v := range as.c.vsrc {
		// x[v.br] is the current a→b inside the source; the delivered
		// current out of the positive terminal is its negation.
		r.isrcs[v.name] = -x[v.br]
	}
	return r
}

// DCOperatingPoint solves the DC operating point. Initial conditions set via
// SetIC seed the Newton iteration, selecting among stable states of bistable
// circuits such as SRAM cells.
func (c *Circuit) DCOperatingPoint() (*DCResult, error) {
	start := time.Now()
	as := newAssembler(c)
	x0 := c.initialGuess(0, as.dim)
	x, err := as.solveRobust(x0, 0, nil)
	mDCOps.Inc()
	hDCOpDur.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	return as.result(x), nil
}

// DCSweep solves the operating point for each value of the named voltage
// source, using continuation (each solution seeds the next). The source's
// waveform is restored afterwards.
func (c *Circuit) DCSweep(source string, values []float64) ([]*DCResult, error) {
	var src *vsource
	for _, v := range c.vsrc {
		if v.name == source {
			src = v
			break
		}
	}
	if src == nil {
		return nil, fmt.Errorf("circuit: DCSweep: no voltage source %q", source)
	}
	orig := src.wave
	defer func() { src.wave = orig }()

	sp := obs.StartSpan("circuit.dc_sweep")
	as := newAssembler(c)
	results := make([]*DCResult, 0, len(values))
	x := c.initialGuess(0, as.dim)
	for i, val := range values {
		src.wave = DC(val)
		xn, err := as.solveRobust(x, 0, nil)
		if err != nil {
			mDCSweepPoints.Add(int64(i))
			return nil, fmt.Errorf("circuit: DCSweep %s=%g (point %d): %w", source, val, i, err)
		}
		x = xn
		results = append(results, as.result(x))
	}
	mDCSweepPoints.Add(int64(len(values)))
	sp.Str("source", source)
	sp.Int("points", int64(len(values)))
	sp.End()
	return results, nil
}
