package circuit

import (
	"testing"

	"sramco/internal/device"
	"sramco/internal/num"
)

// scratchInverter builds the swept-input inverter used by the scratch-path
// parity tests.
func scratchInverter() *Circuit {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	c.AddV("vin", "IN", Ground, DC(0))
	inverter(c, lib, device.LVT, "IN", "OUT", "VDD")
	return c
}

// TestSweeperMatchesDCSweep proves the scratch sweep path is bit-identical to
// DCSweep on the observed node, including after re-biasing and perturbing a
// FET between calls.
func TestSweeperMatchesDCSweep(t *testing.T) {
	c := scratchInverter()
	xs := num.Linspace(0, device.Vdd, 81)

	sw, err := c.NewSweeper("vin", "OUT")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(xs))

	check := func(tag string) {
		t.Helper()
		ref, err := c.DCSweep("vin", xs)
		if err != nil {
			t.Fatalf("%s: DCSweep: %v", tag, err)
		}
		if err := sw.Sweep(xs, out); err != nil {
			t.Fatalf("%s: Sweep: %v", tag, err)
		}
		for i := range xs {
			if ref[i].V("OUT") != out[i] {
				t.Fatalf("%s: point %d: DCSweep %v != Sweep %v", tag, i, ref[i].V("OUT"), out[i])
			}
		}
	}

	check("nominal")
	// Same sweeper, perturbed device: SetFETDVt must flow into the reused
	// workspace exactly as it does into a fresh assembler.
	c.SetFETDVt("mn_OUT", 0.03)
	check("dvt")
	// And after re-biasing the rail.
	c.SetV("vdd", DC(0.9*device.Vdd))
	check("rebias")
}

func TestSweeperErrors(t *testing.T) {
	c := scratchInverter()
	if _, err := c.NewSweeper("nope", "OUT"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := c.NewSweeper("vin", "NOPE"); err == nil {
		t.Error("unknown node accepted")
	}
	sw, _ := c.NewSweeper("vin", "OUT")
	if err := sw.Sweep([]float64{0, 1}, make([]float64, 1)); err == nil {
		t.Error("mismatched out length accepted")
	}
}

// TestTranRunnerMatchesTransient proves the recording-free transient path
// lands on the same final state as Transient, run twice to catch workspace
// leakage across runs.
func TestTranRunnerMatchesTransient(t *testing.T) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	c.AddV("vin", "IN", Ground, Step(0, device.Vdd, 20e-12, 10e-12))
	inverter(c, lib, device.LVT, "IN", "OUT", "VDD")
	c.AddC("cl", "OUT", Ground, 0.1e-15)
	c.SetIC("OUT", device.Vdd)

	opts := TranOpts{TStop: 100e-12, DT: 1e-12, UIC: true}
	ref, err := c.Transient(opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := c.NewTranRunner()
	for run := 0; run < 2; run++ {
		if err := tr.Run(opts); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if got, want := tr.FinalV("OUT"), ref.Final("OUT"); got != want {
			t.Fatalf("run %d: FinalV %v != Transient final %v", run, got, want)
		}
	}
}

func BenchmarkSweeperVTC(b *testing.B) {
	c := scratchInverter()
	sw, err := c.NewSweeper("vin", "OUT")
	if err != nil {
		b.Fatal(err)
	}
	xs := num.Linspace(0, device.Vdd, 181)
	out := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sw.Sweep(xs, out); err != nil {
			b.Fatal(err)
		}
	}
}
