// Package circuit is a compact SPICE-like simulator used to characterize the
// SRAM cell and peripheral circuits: modified nodal analysis (MNA) with a
// damped Newton DC operating-point solver, gmin/source-stepping fallbacks,
// DC sweeps with continuation, and a backward-Euler transient engine.
//
// It supports exactly the elements this project needs — FinFETs (via
// internal/device compact models), resistors, capacitors, and independent
// voltage/current sources with time-dependent waveforms. Circuits here are
// tiny (a 6T cell plus rails is ~10 nodes), so the solver uses dense LU.
package circuit

import (
	"fmt"
	"math"

	"sramco/internal/device"
)

// Ground is the reserved name of the reference node.
const Ground = "0"

// Circuit is a netlist under construction. The zero value is not usable; use
// New.
type Circuit struct {
	nodeIndex map[string]int // name -> index; Ground -> 0
	nodeNames []string

	fets []*fet
	res  []*resistor
	caps []*capacitor
	vsrc []*vsource
	isrc []*isource

	ic map[string]float64 // initial conditions / Newton hints
}

// New returns an empty circuit containing only the ground node.
func New() *Circuit {
	return &Circuit{
		nodeIndex: map[string]int{Ground: 0},
		nodeNames: []string{Ground},
		ic:        map[string]float64{},
	}
}

func (c *Circuit) node(name string) int {
	if name == "" {
		panic("circuit: empty node name")
	}
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeIndex[name] = i
	c.nodeNames = append(c.nodeNames, name)
	return i
}

// NumNodes returns the number of nodes including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// FET is a FinFET instance description.
type FET struct {
	Name  string
	Model *device.Model
	Fins  int     // width in fins (≥1)
	DVt   float64 // per-instance threshold shift (V), for Monte Carlo
	D     string  // drain node
	G     string  // gate node
	S     string  // source node
}

type fet struct {
	FET
	d, g, s int
}

// AddFET adds a FinFET. It panics on invalid fin counts or a nil model,
// which are programming errors in netlist construction.
func (c *Circuit) AddFET(f FET) {
	if f.Model == nil {
		panic(fmt.Sprintf("circuit: FET %q has nil model", f.Name))
	}
	if f.Fins < 1 {
		panic(fmt.Sprintf("circuit: FET %q has %d fins", f.Name, f.Fins))
	}
	c.fets = append(c.fets, &fet{FET: f, d: c.node(f.D), g: c.node(f.G), s: c.node(f.S)})
}

type resistor struct {
	name string
	a, b int
	g    float64
}

// AddR adds a resistor of r ohms between nodes a and b.
func (c *Circuit) AddR(name, a, b string, r float64) {
	if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
		panic(fmt.Sprintf("circuit: resistor %q has invalid value %g", name, r))
	}
	c.res = append(c.res, &resistor{name: name, a: c.node(a), b: c.node(b), g: 1 / r})
}

type capacitor struct {
	name string
	a, b int
	cap  float64
}

// AddC adds a capacitor of f farads between nodes a and b. Capacitors are
// open circuits in DC and companion-modeled in transient analysis.
func (c *Circuit) AddC(name, a, b string, f float64) {
	if f <= 0 || math.IsInf(f, 0) || math.IsNaN(f) {
		panic(fmt.Sprintf("circuit: capacitor %q has invalid value %g", name, f))
	}
	c.caps = append(c.caps, &capacitor{name: name, a: c.node(a), b: c.node(b), cap: f})
}

type vsource struct {
	name string
	a, b int // positive terminal a, negative terminal b
	wave Waveform
	br   int // branch-current index, assigned at solve time
}

// AddV adds an independent voltage source; terminal a is positive.
func (c *Circuit) AddV(name, a, b string, w Waveform) {
	if w == nil {
		panic(fmt.Sprintf("circuit: source %q has nil waveform", name))
	}
	c.vsrc = append(c.vsrc, &vsource{name: name, a: c.node(a), b: c.node(b), wave: w})
}

// SetV replaces the waveform of an existing voltage source, allowing one
// netlist to be re-solved under different bias points.
func (c *Circuit) SetV(name string, w Waveform) {
	for _, v := range c.vsrc {
		if v.name == name {
			v.wave = w
			return
		}
	}
	panic(fmt.Sprintf("circuit: SetV: no voltage source %q", name))
}

// SetFETDVt replaces the per-instance threshold shift of an existing FET,
// allowing one netlist to be re-solved under different Monte Carlo
// perturbations without rebuilding it.
func (c *Circuit) SetFETDVt(name string, dvt float64) {
	for _, f := range c.fets {
		if f.Name == name {
			f.DVt = dvt
			return
		}
	}
	panic(fmt.Sprintf("circuit: SetFETDVt: no FET %q", name))
}

type isource struct {
	name string
	a, b int // current flows from a through the source to b
	wave Waveform
}

// AddI adds an independent current source pushing current from node a to
// node b through the source (i.e. it pulls node b up).
func (c *Circuit) AddI(name, a, b string, w Waveform) {
	if w == nil {
		panic(fmt.Sprintf("circuit: source %q has nil waveform", name))
	}
	c.isrc = append(c.isrc, &isource{name: name, a: c.node(a), b: c.node(b), wave: w})
}

// SetIC sets an initial condition for a node: the Newton initial guess in DC
// analysis (used to select a stable state of bistable circuits) and the
// t = 0 voltage in transient analysis.
func (c *Circuit) SetIC(node string, v float64) {
	c.node(node)
	c.ic[node] = v
}

// ClearICs removes all initial conditions.
func (c *Circuit) ClearICs() {
	for k := range c.ic {
		delete(c.ic, k)
	}
}

// initialGuess builds the starting unknown vector (node voltages at index
// node-1, then source branch currents) from ICs; sources pin their nodes
// when directly grounded, which speeds convergence.
func (c *Circuit) initialGuess(t float64, dim int) []float64 {
	x := make([]float64, dim)
	for _, v := range c.vsrc {
		if v.b == 0 && v.a != 0 {
			x[v.a-1] = v.wave.At(t)
		}
		if v.a == 0 && v.b != 0 {
			x[v.b-1] = -v.wave.At(t)
		}
	}
	for name, vv := range c.ic {
		if i := c.nodeIndex[name]; i > 0 {
			x[i-1] = vv
		}
	}
	return x
}
