package circuit

import (
	"testing"
	"time"

	"sramco/internal/obs"
)

// rcCircuit builds the cheap series R-C test fixture.
func rcCircuit() *Circuit {
	c := New()
	c.AddV("vin", "in", Ground, Step(0, 1, 0, 1e-12))
	c.AddR("r", "in", "out", 1e3)
	c.AddC("c", "out", Ground, 1e-12)
	return c
}

// TestTransientNoopInstrumentationAllocFree proves the exact obs sequence
// Transient performs — run span with its attrs, counters, duration
// histogram — allocates nothing when no sink is installed, so the
// instrumented solver adds zero allocations on the default path.
func TestTransientNoopInstrumentationAllocFree(t *testing.T) {
	prev := obs.SetSink(nil)
	defer obs.SetSink(prev)
	allocs := testing.AllocsPerRun(1000, func() {
		start := time.Now()
		sp := obs.StartSpan("circuit.transient")
		mTranRuns.Inc()
		mTranSteps.Add(400)
		mTranHalvings.Inc()
		mNewtonIters.Add(3)
		hTranDur.Observe(time.Since(start))
		sp.Int("steps", 400)
		sp.Int("halvings", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op instrumentation sequence allocates %v times per run, want 0", allocs)
	}
}

// TestTransientNoopTracerAddsNoAllocs compares whole-solver allocation
// counts with the tracer disabled and enabled: the disabled run must never
// allocate more, and the two disabled measurements must agree exactly — the
// no-op path is deterministic and pays nothing for the tracing hooks.
func TestTransientNoopTracerAddsNoAllocs(t *testing.T) {
	prev := obs.SetSink(nil)
	defer obs.SetSink(prev)
	run := func() {
		if _, err := rcCircuit().Transient(TranOpts{TStop: 1e-9, DT: 5e-12}); err != nil {
			t.Fatal(err)
		}
	}
	off1 := testing.AllocsPerRun(10, run)
	off2 := testing.AllocsPerRun(10, run)
	if off1 != off2 {
		t.Fatalf("disabled-tracer allocations not stable: %v vs %v", off1, off2)
	}
	obs.SetSink(&obs.CollectorSink{})
	on := testing.AllocsPerRun(10, run)
	obs.SetSink(nil)
	if off1 > on {
		t.Fatalf("disabled tracer allocates more than enabled (%v > %v)", off1, on)
	}
}

// TestTransientSpanReconciles checks the emitted transient span against the
// returned solution and the registry counters.
func TestTransientSpanReconciles(t *testing.T) {
	col := &obs.CollectorSink{}
	prev := obs.SetSink(col)
	defer obs.SetSink(prev)

	reg := obs.Default()
	runs0 := reg.CounterValue("circuit.tran.runs")
	steps0 := reg.CounterValue("circuit.tran.steps")

	res, err := rcCircuit().Transient(TranOpts{TStop: 1e-9, DT: 5e-12})
	if err != nil {
		t.Fatalf("Transient: %v", err)
	}
	steps := int64(len(res.Times) - 1)

	if got := reg.CounterValue("circuit.tran.runs") - runs0; got != 1 {
		t.Errorf("circuit.tran.runs advanced by %d, want 1", got)
	}
	if got := reg.CounterValue("circuit.tran.steps") - steps0; got != steps {
		t.Errorf("circuit.tran.steps advanced by %d, want %d", got, steps)
	}

	var span *obs.Event
	for _, ev := range col.Events() {
		if ev.Name == "circuit.transient" {
			e := ev
			span = &e
		}
	}
	if span == nil {
		t.Fatal("no circuit.transient span emitted")
	}
	got := map[string]int64{}
	for _, a := range span.Attrs {
		got[a.Key] = a.I
	}
	if got["steps"] != steps {
		t.Errorf("span steps attr = %d, want %d", got["steps"], steps)
	}
	if span.Dur <= 0 {
		t.Errorf("span duration %v, want > 0", span.Dur)
	}
}
