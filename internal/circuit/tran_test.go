package circuit

import (
	"math"
	"testing"

	"sramco/internal/device"
)

func TestRCChargeMatchesAnalytic(t *testing.T) {
	// Series R-C driven by a step: v(t) = V(1 - e^{-t/RC}), RC = 1 ns.
	c := New()
	c.AddV("vin", "in", Ground, Step(0, 1, 0, 1e-12))
	c.AddR("r", "in", "out", 1e3)
	c.AddC("c", "out", Ground, 1e-12)
	res, err := c.Transient(TranOpts{TStop: 5e-9, DT: 5e-12})
	if err != nil {
		t.Fatalf("Transient: %v", err)
	}
	rc := 1e-9
	for _, tm := range []float64{0.5e-9, 1e-9, 2e-9, 4e-9} {
		want := 1 - math.Exp(-tm/rc)
		got := res.AtTime("out", tm)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("v(%g) = %g, want %g (±0.01, backward Euler)", tm, got, want)
		}
	}
}

func TestRCCrossTime(t *testing.T) {
	c := New()
	c.AddV("vin", "in", Ground, Step(0, 1, 0, 1e-12))
	c.AddR("r", "in", "out", 1e3)
	c.AddC("c", "out", Ground, 1e-12)
	res, err := c.Transient(TranOpts{TStop: 5e-9, DT: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	// 50% crossing of an RC charge happens at t = RC·ln2 ≈ 0.693 ns.
	tc, err := res.CrossTime("out", 0.5, RisingEdge, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tc-0.693e-9) > 0.02e-9 {
		t.Fatalf("50%% crossing at %g, want ≈0.693 ns", tc)
	}
	// A falling-edge search must fail on a monotone rising node.
	if _, err := res.CrossTime("out", 0.5, FallingEdge, 0); err == nil {
		t.Fatal("expected no falling crossing")
	}
}

func TestCapacitorHoldsICWithUIC(t *testing.T) {
	c := New()
	c.AddC("c", "mem", Ground, 1e-15)
	c.AddR("r", "mem", Ground, 1e12) // slow leak, tau = 1 s
	c.SetIC("mem", 0.45)
	res, err := c.Transient(TranOpts{TStop: 1e-9, DT: 1e-11, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final("mem"); math.Abs(got-0.45) > 1e-3 {
		t.Fatalf("held voltage = %g, want ≈0.45", got)
	}
}

func TestInverterTransientSwitch(t *testing.T) {
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	c.AddV("vin", "in", Ground, Step(0, device.Vdd, 10e-12, 2e-12))
	inverter(c, lib, device.LVT, "in", "out", "VDD")
	c.AddC("cl", "out", Ground, 1e-15)
	res, err := c.Transient(TranOpts{TStop: 200e-12, DT: 0.5e-12})
	if err != nil {
		t.Fatal(err)
	}
	if v0 := res.V("out")[0]; v0 < 0.9*device.Vdd {
		t.Fatalf("initial out = %g, want ≈Vdd", v0)
	}
	tc, err := res.CrossTime("out", device.Vdd/2, FallingEdge, 10e-12)
	if err != nil {
		t.Fatalf("no output transition: %v", err)
	}
	if tc <= 10e-12 || tc > 100e-12 {
		t.Fatalf("output fell at %g, expected shortly after the input step", tc)
	}
	if f := res.Final("out"); f > 0.05*device.Vdd {
		t.Fatalf("final out = %g, want ≈0", f)
	}
}

func TestSRAMCellTransientWrite(t *testing.T) {
	// A full 6T cell: writing a '1' onto a cell holding '0' must flip it.
	lib := device.Default7nm()
	c := New()
	c.AddV("vdd", "VDD", Ground, DC(device.Vdd))
	inverter(c, lib, device.LVT, "q", "qb", "VDD")
	inverter(c, lib, device.LVT, "qb", "q", "VDD")
	c.AddV("vwl", "wl", Ground, Step(0, device.Vdd, 5e-12, 2e-12))
	c.AddV("vbl", "bl", Ground, DC(device.Vdd)) // write '1'
	c.AddV("vblb", "blb", Ground, DC(0))
	c.AddFET(FET{Name: "maxl", Model: lib.NLVT, Fins: 1, D: "bl", G: "wl", S: "q"})
	c.AddFET(FET{Name: "maxr", Model: lib.NLVT, Fins: 1, D: "blb", G: "wl", S: "qb"})
	c.AddC("cq", "q", Ground, 0.2e-15)
	c.AddC("cqb", "qb", Ground, 0.2e-15)
	c.SetIC("q", 0)
	c.SetIC("qb", device.Vdd)
	res, err := c.Transient(TranOpts{TStop: 100e-12, DT: 0.25e-12})
	if err != nil {
		t.Fatal(err)
	}
	if q := res.Final("q"); q < 0.8*device.Vdd {
		t.Fatalf("write failed: final q = %g", q)
	}
	if qb := res.Final("qb"); qb > 0.2*device.Vdd {
		t.Fatalf("write failed: final qb = %g", qb)
	}
}

func TestTransientValidation(t *testing.T) {
	c := New()
	c.AddV("v", "a", Ground, DC(1))
	c.AddR("r", "a", Ground, 1e3)
	if _, err := c.Transient(TranOpts{TStop: 0, DT: 1e-12}); err == nil {
		t.Fatal("expected error for TStop=0")
	}
	if _, err := c.Transient(TranOpts{TStop: 1e-9, DT: 0}); err == nil {
		t.Fatal("expected error for DT=0")
	}
}

func TestPWLWaveform(t *testing.T) {
	w := NewPWL(PWLPoint{0, 0}, PWLPoint{1, 1}, PWLPoint{2, 1}, PWLPoint{3, 0})
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1}, {2.5, 0.5}, {3, 0}, {9, 0},
	}
	for _, c := range cases {
		if got := w.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PWL.At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPWLValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsorted PWL")
		}
	}()
	NewPWL(PWLPoint{1, 0}, PWLPoint{0, 1})
}
