package circuit

import (
	"fmt"
	"io"

	"sramco/internal/device"
)

// WriteNetlist dumps the circuit as a SPICE-dialect deck readable by the
// internal/spice parser (and by humans when debugging a characterization
// setup). Time-dependent sources are emitted as PWL cards sampled at their
// breakpoints; plain DC sources as DC cards. Initial conditions become a
// single .ic card. Analyses are not part of the circuit and must be
// appended by the caller.
func (c *Circuit) WriteNetlist(w io.Writer, title string) error {
	if title != "" {
		if _, err := fmt.Fprintf(w, ".title %s\n", title); err != nil {
			return err
		}
	}
	for _, v := range c.vsrc {
		if err := writeSource(w, "v", v.name, c.nodeNames[v.a], c.nodeNames[v.b], v.wave); err != nil {
			return err
		}
	}
	for _, s := range c.isrc {
		if err := writeSource(w, "i", s.name, c.nodeNames[s.a], c.nodeNames[s.b], s.wave); err != nil {
			return err
		}
	}
	for _, f := range c.fets {
		card := fmt.Sprintf("%s %s %s %s %s", cardName("m", f.Name), c.nodeNames[f.d], c.nodeNames[f.g], c.nodeNames[f.s], modelName(f.Model))
		if f.Fins != 1 {
			card += fmt.Sprintf(" fins=%d", f.Fins)
		}
		if f.DVt != 0 {
			card += fmt.Sprintf(" dvt=%g", f.DVt)
		}
		if _, err := fmt.Fprintln(w, card); err != nil {
			return err
		}
	}
	for _, r := range c.res {
		if _, err := fmt.Fprintf(w, "%s %s %s %g\n", cardName("r", r.name), c.nodeNames[r.a], c.nodeNames[r.b], 1/r.g); err != nil {
			return err
		}
	}
	for _, cp := range c.caps {
		if _, err := fmt.Fprintf(w, "%s %s %s %g\n", cardName("c", cp.name), c.nodeNames[cp.a], c.nodeNames[cp.b], cp.cap); err != nil {
			return err
		}
	}
	if len(c.ic) > 0 {
		if _, err := fmt.Fprint(w, ".ic"); err != nil {
			return err
		}
		// Deterministic order: follow node registration order.
		for _, name := range c.nodeNames {
			if v, ok := c.ic[name]; ok {
				if _, err := fmt.Fprintf(w, " v(%s)=%g", name, v); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// cardName ensures a card name begins with the letter its type requires by
// the classic SPICE first-letter convention, prefixing when needed.
func cardName(prefix, name string) string {
	if len(name) > 0 && (name[0] == prefix[0] || name[0] == prefix[0]-'a'+'A') {
		return name
	}
	return prefix + name
}

func writeSource(w io.Writer, prefix, name, a, b string, wave Waveform) error {
	name = cardName(prefix, name)
	switch wv := wave.(type) {
	case DC:
		_, err := fmt.Fprintf(w, "%s %s %s DC %g\n", name, a, b, float64(wv))
		return err
	case *PWL:
		if _, err := fmt.Fprintf(w, "%s %s %s PWL(", name, a, b); err != nil {
			return err
		}
		for i, p := range wv.pts {
			sep := " "
			if i == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(w, "%s%g %g", sep, p.T, p.V); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w, ")")
		return err
	default:
		// Sample unknown waveform types at t=0 as DC.
		_, err := fmt.Fprintf(w, "%s %s %s DC %g\n", name, a, b, wave.At(0))
		return err
	}
}

// modelName maps a library model to its netlist keyword.
func modelName(m *device.Model) string {
	switch {
	case m.Polarity == device.NFET && m.Flavor == device.LVT:
		return "nlvt"
	case m.Polarity == device.NFET && m.Flavor == device.HVT:
		return "nhvt"
	case m.Polarity == device.PFET && m.Flavor == device.LVT:
		return "plvt"
	default:
		return "phvt"
	}
}
