package obs

import (
	"sync"
	"time"
)

// defaultRecorderCap is the ring capacity NewRecorder selects for
// capacity ≤ 0: enough for a few hundred requests' spans without growing
// the resident set noticeably (an Event is ~100 B plus attrs).
const defaultRecorderCap = 4096

// Recorder is a bounded in-memory ring buffer of trace events — the store
// behind sramd's /debug/trace endpoint. It keeps the most recent `capacity`
// events; once full, every new event overwrites the oldest one, so the
// newest trace is always fully retained as long as it fits in the ring
// (older traces lose events head-first). Emit is safe for concurrent use
// and never blocks on anything but its own mutex.
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // ring write cursor
	total uint64 // events ever emitted; total >= len(buf) means the ring wrapped
}

// NewRecorder returns a recorder holding up to capacity events
// (capacity ≤ 0 selects the default).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = defaultRecorderCap
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Emit implements Sink. The event's Attrs are copied: the tracer hands over
// a fresh slice today, but buffering sinks must not rely on that.
func (r *Recorder) Emit(ev Event) {
	if len(ev.Attrs) > 0 {
		attrs := make([]Attr, len(ev.Attrs))
		copy(attrs, ev.Attrs)
		ev.Attrs = attrs
	}
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.total++
	r.mu.Unlock()
}

// Len returns the number of events currently buffered.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Events returns the buffered events oldest-first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsLocked()
}

func (r *Recorder) eventsLocked() []Event {
	if r.total < uint64(len(r.buf)) {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// TraceEvent is the JSON form of one recorded event inside a TraceDump.
type TraceEvent struct {
	TS    string         `json:"ts"`
	Kind  string         `json:"kind"`
	Name  string         `json:"name"`
	DurNS int64          `json:"dur_ns,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceDump is one request's recorded events, grouped by trace ID.
type TraceDump struct {
	TraceID string       `json:"trace_id"`
	Start   time.Time    `json:"start"`
	Events  []TraceEvent `json:"events"`
}

// Traces groups the buffered events by trace ID and returns up to limit
// traces, most recently active first (limit ≤ 0 means all). Untraced events
// (zero trace ID — background work like catalog builds started outside any
// request) are not part of any dump; read them with Events.
func (r *Recorder) Traces(limit int) []TraceDump {
	r.mu.Lock()
	evs := r.eventsLocked()
	r.mu.Unlock()

	idx := make(map[TraceID]int) // trace → position in dumps
	var dumps []TraceDump
	order := make([]int, 0, 8) // dump positions, most recently active last
	for _, ev := range evs {
		if ev.Trace.IsZero() {
			continue
		}
		pos, ok := idx[ev.Trace]
		if !ok {
			pos = len(dumps)
			idx[ev.Trace] = pos
			dumps = append(dumps, TraceDump{TraceID: ev.Trace.String(), Start: ev.Time})
		} else {
			// Move the trace to the back of the recency order.
			for i, p := range order {
				if p == pos {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
		}
		order = append(order, pos)
		te := TraceEvent{
			TS:    ev.Time.UTC().Format(time.RFC3339Nano),
			Kind:  ev.Kind.String(),
			Name:  ev.Name,
			DurNS: int64(ev.Dur),
		}
		if len(ev.Attrs) > 0 {
			te.Attrs = make(map[string]any, len(ev.Attrs))
			for _, a := range ev.Attrs {
				te.Attrs[a.Key] = a.Value()
			}
		}
		d := &dumps[pos]
		d.Events = append(d.Events, te)
		if ev.Time.Before(d.Start) {
			d.Start = ev.Time
		}
	}
	out := make([]TraceDump, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		out = append(out, dumps[order[i]])
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}
