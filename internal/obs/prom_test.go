package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promNameRe is the Prometheus exposition-format metric/label name charset.
var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promLine is one parsed sample: family member name, raw label block
// (brace-less) and value.
type promLine struct {
	name   string
	labels string
	value  string
}

// parsePromLine splits `name{labels} value` / `name value`. The label block
// can contain escaped quotes, so it scans for the closing brace outside a
// quoted string rather than splitting naively.
func parsePromLine(t *testing.T, line string) promLine {
	t.Helper()
	brace := strings.IndexByte(line, '{')
	sp := strings.IndexByte(line, ' ')
	if brace < 0 || (sp >= 0 && sp < brace) {
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		return promLine{name: line[:sp], value: line[sp+1:]}
	}
	inQuote, esc := false, false
	for i := brace + 1; i < len(line); i++ {
		c := line[i]
		switch {
		case esc:
			esc = false
		case c == '\\':
			esc = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			rest := line[i+1:]
			if !strings.HasPrefix(rest, " ") {
				t.Fatalf("no value after label block in %q", line)
			}
			return promLine{name: line[:brace], labels: line[brace+1 : i], value: rest[1:]}
		}
	}
	t.Fatalf("unterminated label block in %q", line)
	return promLine{}
}

// TestWritePromLint is a promlint-style conformance test for the exposition
// writer: family typing, naming, label escaping and histogram bucket
// invariants, checked on a snapshot that exercises every shape at once.
func TestWritePromLint(t *testing.T) {
	snap := Snapshot{
		Counters: map[string]int64{
			"serve.requests": 7,
			LabeledName("serve.request_errors", "endpoint", "/v1/optimize"): 2,
			LabeledName("serve.request_errors", "endpoint", "/v1/batch"):    1,
			// Label values needing every escape: backslash, quote, newline.
			LabeledName("odd.counter", "path", `C:\tmp`, "msg", "say \"hi\"\nbye"): 3,
		},
		Gauges: map[string]float64{
			"runtime.goroutines":                  42,
			LabeledName("pool.used", "pool", "a"): 0.5,
			LabeledName("pool.used", "pool", "b"): 1.5,
		},
		Histograms: map[string]HistSnapshot{
			LabeledName("serve.request_duration", "endpoint", "/v1/optimize", "outcome", "miss"): {
				Count:  6,
				SumSec: 0.25,
				Buckets: []BucketCount{
					{LeSec: 0.001, N: 3},
					{LeSec: 0.016, N: 2},
					{LeSec: 0, N: 1}, // overflow: folds into +Inf only
				},
			},
			LabeledName("serve.request_duration", "endpoint", "/v1/optimize", "outcome", "hit"): {
				Count:   2,
				SumSec:  0.002,
				Buckets: []BucketCount{{LeSec: 0.001, N: 2}},
			},
		},
	}
	var buf bytes.Buffer
	if err := snap.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// The newline inside a label value must have been escaped: every
	// physical line is either a TYPE comment or a sample.
	typeOf := map[string]string{} // family → counter|gauge|histogram
	typeSeen := map[string]int{}
	var samples []promLine
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			fam, typ := f[2], f[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("unknown type %q in %q", typ, line)
			}
			typeOf[fam] = typ
			typeSeen[fam]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		samples = append(samples, parsePromLine(t, line))
	}
	for fam, n := range typeSeen {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines, want exactly 1", fam, n)
		}
	}

	// famOf maps a sample name back to its family (histograms emit
	// _bucket/_sum/_count members under the family name).
	famOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if typ, ok := typeOf[base]; ok && typ == "histogram" {
					return base
				}
			}
		}
		return name
	}

	type histKey struct{ fam, labels string }
	buckets := map[histKey][]struct {
		le  float64
		n   int64
		inf bool
	}{}
	counts := map[histKey]int64{}
	sums := map[histKey]bool{}

	for _, s := range samples {
		if !promNameRe.MatchString(s.name) {
			t.Errorf("sample name %q violates the exposition charset", s.name)
		}
		fam := famOf(s.name)
		typ, ok := typeOf[fam]
		if !ok {
			t.Errorf("sample %q has no TYPE line", s.name)
			continue
		}
		if _, err := strconv.ParseFloat(strings.TrimPrefix(s.value, "+"), 64); err != nil && s.value != "+Inf" {
			t.Errorf("sample %s value %q is not a number", s.name, s.value)
		}
		if typ != "histogram" {
			continue
		}
		// Collect histogram members, splitting le off the label block.
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, rest := "", make([]string, 0, 4)
			for _, part := range splitLabels(t, s.labels) {
				if v, ok := strings.CutPrefix(part, `le="`); ok {
					le = strings.TrimSuffix(v, `"`)
				} else {
					rest = append(rest, part)
				}
			}
			if le == "" {
				t.Errorf("bucket sample %q has no le label", s.labels)
				continue
			}
			k := histKey{fam, strings.Join(rest, ",")}
			n, _ := strconv.ParseInt(s.value, 10, 64)
			b := struct {
				le  float64
				n   int64
				inf bool
			}{n: n, inf: le == "+Inf"}
			if !b.inf {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("unparseable le %q", le)
				}
				b.le = v
			}
			buckets[k] = append(buckets[k], b)
		case strings.HasSuffix(s.name, "_count"):
			n, _ := strconv.ParseInt(s.value, 10, 64)
			counts[histKey{fam, s.labels}] = n
		case strings.HasSuffix(s.name, "_sum"):
			sums[histKey{fam, s.labels}] = true
		}
	}

	if len(buckets) != 2 {
		t.Fatalf("got %d histogram series, want 2 (hit and miss)", len(buckets))
	}
	for k, bs := range buckets {
		if !bs[len(bs)-1].inf {
			t.Errorf("series %v: last bucket is not +Inf", k)
		}
		for i := 1; i < len(bs); i++ {
			if !bs[i].inf && bs[i].le <= bs[i-1].le {
				t.Errorf("series %v: le bounds not ascending", k)
			}
			if bs[i].n < bs[i-1].n {
				t.Errorf("series %v: bucket counts not cumulative", k)
			}
		}
		want, ok := counts[k]
		if !ok {
			t.Errorf("series %v: no _count sample", k)
		}
		if got := bs[len(bs)-1].n; got != want {
			t.Errorf("series %v: +Inf bucket %d != _count %d", k, got, want)
		}
		if !sums[k] {
			t.Errorf("series %v: no _sum sample", k)
		}
	}
	// The overflow observation is in +Inf but in no bounded bucket.
	missKey := histKey{"serve_request_duration_seconds", `endpoint="/v1/optimize",outcome="miss"`}
	bs, ok := buckets[missKey]
	if !ok {
		keys := make([]string, 0, len(buckets))
		for k := range buckets {
			keys = append(keys, fmt.Sprintf("%v", k))
		}
		sort.Strings(keys)
		t.Fatalf("miss series not found; have %v", keys)
	}
	if last := bs[len(bs)-2]; last.inf || last.n != 5 {
		t.Errorf("largest bounded bucket = %+v, want cumulative 5 (overflow excluded)", last)
	}
	if bs[len(bs)-1].n != 6 {
		t.Errorf("+Inf = %d, want 6 (overflow included)", bs[len(bs)-1].n)
	}

	// Escaping: the rendered label block holds the escaped forms, and the
	// raw newline never leaks into the output.
	if !strings.Contains(out, `path="C:\\tmp"`) {
		t.Errorf("backslash not escaped:\n%s", out)
	}
	if !strings.Contains(out, `msg="say \"hi\"\nbye"`) {
		t.Errorf("quote/newline not escaped:\n%s", out)
	}
}

// splitLabels splits a label block on commas outside quoted values.
func splitLabels(t *testing.T, block string) []string {
	t.Helper()
	if block == "" {
		return nil
	}
	var parts []string
	start, inQuote, esc := 0, false, false
	for i := 0; i < len(block); i++ {
		switch {
		case esc:
			esc = false
		case block[i] == '\\':
			esc = true
		case block[i] == '"':
			inQuote = !inQuote
		case block[i] == ',' && !inQuote:
			parts = append(parts, block[start:i])
			start = i + 1
		}
	}
	return append(parts, block[start:])
}

// TestLabeledNameCanonical locks the LabeledName contract: sorted keys, so
// argument order cannot split one logical series into two registry entries.
func TestLabeledNameCanonical(t *testing.T) {
	a := LabeledName("m", "b", "2", "a", "1")
	b := LabeledName("m", "a", "1", "b", "2")
	if a != b {
		t.Fatalf("label order changed the name: %q vs %q", a, b)
	}
	if a != `m{a="1",b="2"}` {
		t.Fatalf("canonical form = %q", a)
	}
	if got := LabeledName("m"); got != "m" {
		t.Fatalf("no labels should return the base, got %q", got)
	}
	// Label keys are sanitized like metric names.
	if got := LabeledName("m", "end-point", "x"); got != `m{end_point="x"}` {
		t.Fatalf("key not sanitized: %q", got)
	}
	base, labels := splitLabeledName(a)
	if base != "m" || labels != `a="1",b="2"` {
		t.Fatalf("splitLabeledName = %q, %q", base, labels)
	}
}
