package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; Add is a single atomic operation and therefore both
// allocation-free and safe from any goroutine.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a settable float metric (last-write-wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add atomically adds delta to the gauge and returns the new value. It lets
// several concurrent owners share one gauge as an in-flight total: each adds
// its contribution on entry and subtracts it on exit, instead of clobbering
// the others with Set.
func (g *Gauge) Add(delta float64) float64 {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return v
		}
	}
}

func (g *Gauge) reset() { g.bits.Store(0) }

// histBuckets is the fixed log-spaced duration bucket ladder shared by all
// histograms: powers of two from 250 ns up to ~8.6 s, plus an overflow
// bucket. A fixed ladder keeps Observe allocation-free and makes every
// histogram in a dump directly comparable.
var histBuckets = func() [26]time.Duration {
	var b [26]time.Duration
	d := 250 * time.Nanosecond
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}()

// Histogram accumulates durations into the fixed log-spaced ladder.
// The zero value is ready to use.
type Histogram struct {
	count  atomic.Int64
	sumNS  atomic.Int64
	bucket [len(histBuckets) + 1]atomic.Int64 // +1 overflow
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	for i, ub := range histBuckets {
		if d <= ub {
			h.bucket[i].Add(1)
			return
		}
	}
	h.bucket[len(histBuckets)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sumNS.Store(0)
	for i := range h.bucket {
		h.bucket[i].Store(0)
	}
}

// Registry is a namespace of metrics. Metrics register once (usually from
// package-level var initializers) and live for the process lifetime;
// lookup by name is for reporting paths, not hot loops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the named counter's value, or 0 if it does not
// exist. Reporting helper (progress tickers, tests).
func (r *Registry) CounterValue(name string) int64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// GaugeValue returns the named gauge's value, or 0 if absent.
func (r *Registry) GaugeValue(name string) float64 {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g == nil {
		return 0
	}
	return g.Value()
}

// HistogramCount returns the named histogram's observation count, or 0 if
// it does not exist. Reporting helper (tests asserting on labeled series).
func (r *Registry) HistogramCount(name string) int64 {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h == nil {
		return 0
	}
	return h.Count()
}

// Reset zeroes every registered metric (the metrics stay registered).
// Intended for tests that compare runs.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// NewCounter registers a counter in the default registry. Call from
// package-level var initializers of instrumented packages.
func NewCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// NewGauge registers a gauge in the default registry.
func NewGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }

// HistSnapshot is the serializable state of one histogram.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	SumSec  float64       `json:"sum_s"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket: observations ≤ LeSec
// seconds (not cumulative). LeSec is +Inf-serialized as le_s omitted.
type BucketCount struct {
	LeSec float64 `json:"le_s,omitempty"` // upper bound; 0 means overflow
	N     int64   `json:"n"`
}

// Snapshot is a point-in-time copy of a registry, ordered
// deterministically for serialization and comparison.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current metric values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{Count: h.Count(), SumSec: h.Sum().Seconds()}
		for i := range h.bucket {
			n := h.bucket[i].Load()
			if n == 0 {
				continue
			}
			bc := BucketCount{N: n}
			if i < len(histBuckets) {
				bc.LeSec = histBuckets[i].Seconds()
			}
			hs.Buckets = append(hs.Buckets, bc)
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (map keys sorted by
// encoding/json, so the output is deterministic for fixed values).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LabeledName builds a registry name carrying Prometheus-style labels:
// base{k="v",k2="v2"}. The labeled name is an ordinary registry key — the
// registry itself stays a flat namespace — but Snapshot.WriteProm recognizes
// the form and emits the labels as real Prometheus labels on the family
// named by base. kv is alternating key, value pairs; pairs are sorted by key
// so any argument order yields the same series, and values are escaped per
// the exposition format (backslash, double quote, newline). Label keys are
// sanitized like metric names. Callers on hot paths should build the name
// once and cache the returned metric pointer.
func LabeledName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{promName(kv[i]), kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value for the Prometheus text exposition
// format: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitLabeledName splits a registry name of the LabeledName form into the
// family base and the brace-less label block; labels is "" for plain names.
func splitLabeledName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// promName maps a dotted metric name to the Prometheus exposition charset:
// every character outside [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeries is one sample line's identity within a family: the label
// block (without braces, possibly empty) and the registry name it came
// from.
type promSeries struct {
	labels string
	name   string
}

// groupFamilies buckets registry names by Prometheus family (promName of
// the base, before any LabeledName block) and returns the sorted family
// list with each family's series sorted by label block — the deterministic
// emission order of WriteProm.
func groupFamilies(names []string) (ordered []string, byFamily map[string][]promSeries) {
	byFamily = make(map[string][]promSeries)
	for _, n := range names {
		base, labels := splitLabeledName(n)
		fam := promName(base)
		byFamily[fam] = append(byFamily[fam], promSeries{labels: labels, name: n})
	}
	ordered = make([]string, 0, len(byFamily))
	for fam, series := range byFamily {
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		ordered = append(ordered, fam)
	}
	sort.Strings(ordered)
	return ordered, byFamily
}

// WriteProm renders the snapshot in the Prometheus text exposition format:
// counters and gauges as single samples, histograms as cumulative
// `_bucket{le=...}` series with `_sum`/`_count`. Registry names built with
// LabeledName become real labeled series: every name sharing a base is one
// family with a single # TYPE line and one sample (or bucket set) per label
// combination. Families are emitted in sorted name order and series in
// sorted label order, so the output is deterministic for fixed values.
func (s Snapshot) WriteProm(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	// sample renders "name value" with an optional pre-rendered label block
	// and optional extra label (the histogram `le`).
	sample := func(fam, labels, extra, value string) {
		switch {
		case labels == "" && extra == "":
			pf("%s %s\n", fam, value)
		case labels == "":
			pf("%s{%s} %s\n", fam, extra, value)
		case extra == "":
			pf("%s{%s} %s\n", fam, labels, value)
		default:
			pf("%s{%s,%s} %s\n", fam, labels, extra, value)
		}
	}

	counterNames := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		counterNames = append(counterNames, n)
	}
	ordered, families := groupFamilies(counterNames)
	for _, fam := range ordered {
		pf("# TYPE %s counter\n", fam)
		for _, sr := range families[fam] {
			sample(fam, sr.labels, "", fmt.Sprintf("%d", s.Counters[sr.name]))
		}
	}

	gaugeNames := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gaugeNames = append(gaugeNames, n)
	}
	ordered, families = groupFamilies(gaugeNames)
	for _, fam := range ordered {
		pf("# TYPE %s gauge\n", fam)
		for _, sr := range families[fam] {
			sample(fam, sr.labels, "", fmt.Sprintf("%g", s.Gauges[sr.name]))
		}
	}

	histNames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		histNames = append(histNames, n)
	}
	ordered, families = groupFamilies(histNames)
	for _, base := range ordered {
		fam := base + "_seconds"
		pf("# TYPE %s histogram\n", fam)
		for _, sr := range families[base] {
			h := s.Histograms[sr.name]
			cum := int64(0)
			for _, b := range h.Buckets {
				cum += b.N
				if b.LeSec == 0 { // overflow bucket folds into +Inf below
					continue
				}
				sample(fam+"_bucket", sr.labels, fmt.Sprintf("le=\"%g\"", b.LeSec), fmt.Sprintf("%d", cum))
			}
			sample(fam+"_bucket", sr.labels, `le="+Inf"`, fmt.Sprintf("%d", h.Count))
			sample(fam+"_sum", sr.labels, "", fmt.Sprintf("%g", h.SumSec))
			sample(fam+"_count", sr.labels, "", fmt.Sprintf("%d", h.Count))
		}
	}
	return err
}

// StatsLine renders "name=value" pairs for the named counters, skipping
// absent ones — a compact one-line summary for CLIs and examples.
func (r *Registry) StatsLine(names ...string) string {
	var b strings.Builder
	for _, name := range names {
		r.mu.RLock()
		c := r.counters[name]
		r.mu.RUnlock()
		if c == nil {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, c.Value())
	}
	return b.String()
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}
