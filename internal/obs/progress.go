package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a live status ticker: it renders a caller-supplied line at a
// fixed interval (carriage-return overwritten, terminal-style) until
// stopped, then prints the final line once with a trailing newline. The
// render function typically reads registry counters, so the ticker works
// for any instrumented computation without plumbing.
type Progress struct {
	w        io.Writer
	interval time.Duration
	render   func() string

	stop chan struct{}
	done sync.WaitGroup
	once sync.Once
}

// StartProgress launches the ticker. interval ≤ 0 selects 500 ms.
func StartProgress(w io.Writer, interval time.Duration, render func() string) *Progress {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	p := &Progress{w: w, interval: interval, render: render, stop: make(chan struct{})}
	p.done.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.done.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fmt.Fprintf(p.w, "\r\033[K%s", p.render())
		case <-p.stop:
			fmt.Fprintf(p.w, "\r\033[K%s\n", p.render())
			return
		}
	}
}

// Stop halts the ticker, prints the final line, and waits for the
// goroutine to exit. Safe to call more than once.
func (p *Progress) Stop() {
	p.once.Do(func() { close(p.stop) })
	p.done.Wait()
}
