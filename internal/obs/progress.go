package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a live status ticker: it renders a caller-supplied line at a
// fixed interval (carriage-return overwritten, terminal-style) until
// stopped, then prints the final line once with a trailing newline. The
// render function typically reads registry counters, so the ticker works
// for any instrumented computation without plumbing.
type Progress struct {
	w        io.Writer
	interval time.Duration
	render   func() string

	stop chan struct{}
	done sync.WaitGroup
	once sync.Once
}

// DefaultProgressInterval is the tick period StartProgress substitutes for
// a non-positive interval: fast enough to feel live, slow enough that the
// render function (typically registry reads) is never a measurable cost.
const DefaultProgressInterval = 500 * time.Millisecond

// StartProgress launches the ticker. A non-positive interval is not an
// error: it selects DefaultProgressInterval, so callers may pass an unset
// config value directly. Stop is idempotent and always waits for the
// ticker goroutine to exit, even when called before the first tick.
func StartProgress(w io.Writer, interval time.Duration, render func() string) *Progress {
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	p := &Progress{w: w, interval: interval, render: render, stop: make(chan struct{})}
	p.done.Add(1)
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer p.done.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fmt.Fprintf(p.w, "\r\033[K%s", p.render())
		case <-p.stop:
			fmt.Fprintf(p.w, "\r\033[K%s\n", p.render())
			return
		}
	}
}

// Stop halts the ticker, prints the final line, and waits for the
// goroutine to exit. Safe to call more than once (later calls just wait),
// and safe to call before the first tick has fired.
func (p *Progress) Stop() {
	p.once.Do(func() { close(p.stop) })
	p.done.Wait()
}
