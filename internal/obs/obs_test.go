package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("a.gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	h := r.Histogram("a.hist")
	h.Observe(300 * time.Nanosecond) // second bucket (≤500ns)
	h.Observe(time.Millisecond)
	h.Observe(time.Hour) // overflow
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	wantSum := 300*time.Nanosecond + time.Millisecond + time.Hour
	if h.Sum() != wantSum {
		t.Fatalf("hist sum = %v, want %v", h.Sum(), wantSum)
	}

	snap := r.Snapshot()
	if snap.Counters["a.count"] != 42 || snap.Gauges["a.gauge"] != 2.5 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	hs := snap.Histograms["a.hist"]
	if hs.Count != 3 || len(hs.Buckets) != 3 {
		t.Fatalf("hist snapshot = %+v, want 3 obs in 3 distinct buckets", hs)
	}
	// The overflow bucket has no upper bound.
	if hs.Buckets[len(hs.Buckets)-1].LeSec != 0 {
		t.Fatalf("overflow bucket should have LeSec 0, got %+v", hs.Buckets)
	}

	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset did not zero metrics")
	}
}

func TestRegistryConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestStatsLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(3)
	r.Counter("y").Add(7)
	if got := r.StatsLine("x", "missing", "y"); got != "x=3 y=7" {
		t.Fatalf("StatsLine = %q", got)
	}
}

// TestJSONLSinkGolden locks the JSON-lines wire format: fixed events must
// serialize byte-for-byte identically.
func TestJSONLSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 123456789, time.UTC)
	s.Emit(Event{
		Time: t0,
		Name: "core.search.chunk",
		Kind: KindSpan,
		Dur:  1500 * time.Microsecond,
		Attrs: []Attr{
			I64("nr", 256),
			F64("vssc", -0.12),
			I64("evaluated", 1000),
		},
	})
	s.Emit(Event{Time: t0.Add(time.Second), Name: "mc.sample", Kind: KindPoint,
		Attrs: []Attr{I64("i", 7), Str("state", "ok")}})
	s.Emit(Event{Time: t0.Add(2 * time.Second), Name: "bare", Kind: KindSpan, Dur: time.Nanosecond})

	const want = `{"ts":"2026-08-06T12:00:00.123456789Z","kind":"span","name":"core.search.chunk","dur_ns":1500000,"attrs":{"evaluated":1000,"nr":256,"vssc":-0.12}}
{"ts":"2026-08-06T12:00:01.123456789Z","kind":"point","name":"mc.sample","attrs":{"i":7,"state":"ok"}}
{"ts":"2026-08-06T12:00:02.123456789Z","kind":"span","name":"bare","dur_ns":1}
`
	if got := buf.String(); got != want {
		t.Fatalf("JSONL output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTextSinkSmoke(t *testing.T) {
	var buf bytes.Buffer
	s := NewTextSink(&buf)
	s.Emit(Event{Time: time.Now(), Name: "circuit.transient", Kind: KindSpan,
		Dur: time.Millisecond, Attrs: []Attr{I64("steps", 400)}})
	out := buf.String()
	for _, frag := range []string{"circuit.transient", "kind=span", "steps=400", "dur="} {
		if !strings.Contains(out, frag) {
			t.Fatalf("text sink output %q missing %q", out, frag)
		}
	}
}

func TestSpanThroughCollector(t *testing.T) {
	col := &CollectorSink{}
	prev := SetSink(col)
	defer SetSink(prev)

	sp := StartSpan("work")
	sp.Int("n", 5)
	sp.Float("x", 1.5)
	sp.Str("tag", "t")
	sp.End()
	Point("tick", I64("i", 1))

	evs := col.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "work" || evs[0].Kind != KindSpan || len(evs[0].Attrs) != 3 {
		t.Fatalf("span event = %+v", evs[0])
	}
	if evs[0].Attrs[0].Value() != int64(5) || evs[0].Attrs[1].Value() != 1.5 || evs[0].Attrs[2].Value() != "t" {
		t.Fatalf("span attrs = %+v", evs[0].Attrs)
	}
	if evs[1].Name != "tick" || evs[1].Kind != KindPoint {
		t.Fatalf("point event = %+v", evs[1])
	}
}

func TestMultiSink(t *testing.T) {
	a, b := &CollectorSink{}, &CollectorSink{}
	m := MultiSink{a, b}
	m.Emit(Event{Name: "e", Kind: KindPoint})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("MultiSink did not fan out")
	}
}

// TestNoopZeroAllocs proves the disabled instrumentation path — exactly
// the sequence the solver hot loops execute — allocates nothing.
func TestNoopZeroAllocs(t *testing.T) {
	prev := SetSink(nil)
	defer SetSink(prev)
	c := NewCounter("obs_test.noop")
	h := NewHistogram("obs_test.noop_hist")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan("hot")
		sp.Int("n", 1)
		sp.Float("x", 2)
		c.Add(3)
		h.Observe(time.Microsecond)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op instrumentation allocates %.1f per run, want 0", allocs)
	}
}

func TestSetSinkReturnsPrevious(t *testing.T) {
	a := &CollectorSink{}
	old := SetSink(a)
	defer SetSink(old)
	if !Enabled() || CurrentSink() != Sink(a) {
		t.Fatal("sink not installed")
	}
	if got := SetSink(nil); got != Sink(a) {
		t.Fatalf("SetSink(nil) returned %v, want the collector", got)
	}
	if Enabled() {
		t.Fatal("Enabled after SetSink(nil)")
	}
}

func TestProgressTicker(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	n := 0
	p := StartProgress(w, time.Millisecond, func() string {
		n++
		return "tick"
	})
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "tick") || !strings.HasSuffix(out, "tick\n") {
		t.Fatalf("progress output %q", out)
	}
	if n < 2 {
		t.Fatalf("render called %d times, want ≥ 2", n)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
