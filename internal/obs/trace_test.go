package obs

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID minted the invalid all-zero ID")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", s, back, ok)
	}
	if _, ok := ParseTraceID(strings.Repeat("0", 32)); ok {
		t.Error("all-zero trace ID accepted")
	}
	if _, ok := ParseTraceID("xyz"); ok {
		t.Error("short input accepted")
	}
	if _, ok := ParseTraceID(strings.Repeat("g", 32)); ok {
		t.Error("non-hex input accepted")
	}
}

func TestNewTraceIDsAreDistinct(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID after %d mints", i)
		}
		seen[id] = true
	}
}

func TestParseTraceparent(t *testing.T) {
	const (
		tid = "4bf92f3577b34da6a3ce929d0e0e4736"
		sid = "00f067aa0ba902b7"
	)
	good := "00-" + tid + "-" + sid + "-01"
	gotT, gotS, ok := ParseTraceparent(good)
	if !ok || gotT.String() != tid || gotS.String() != sid {
		t.Fatalf("ParseTraceparent(%q) = %v %v %v", good, gotT, gotS, ok)
	}
	// Unknown future version with trailing fields is accepted per spec.
	if _, _, ok := ParseTraceparent("cc-" + tid + "-" + sid + "-01-extra"); !ok {
		t.Error("future version with extra data rejected")
	}
	bad := []string{
		"",
		"00-" + tid + "-" + sid,         // truncated
		"ff-" + tid + "-" + sid + "-01", // forbidden version
		"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", // zero trace
		"00-" + tid + "-0000000000000000-01",                // zero span
		"00_" + tid + "-" + sid + "-01",                     // bad separator
		"0g-" + tid + "-" + sid + "-01",                     // non-hex version
		"00-" + tid + "-" + sid + "-zz",                     // non-hex flags
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
	// Format → parse is the identity.
	t2, s2, ok := ParseTraceparent(FormatTraceparent(gotT, gotS))
	if !ok || t2 != gotT || s2 != gotS {
		t.Error("FormatTraceparent does not round-trip")
	}
}

func TestContextTrace(t *testing.T) {
	ctx := context.Background()
	if got := TraceIDFrom(ctx); !got.IsZero() {
		t.Fatalf("empty context carries trace %v", got)
	}
	// Zero ID: context unchanged, no allocation of a values node.
	if ContextWithTrace(ctx, TraceID{}) != ctx {
		t.Error("zero trace ID should return ctx unchanged")
	}
	id := NewTraceID()
	tctx := ContextWithTrace(ctx, id)
	if got := TraceIDFrom(tctx); got != id {
		t.Fatalf("TraceIDFrom = %v, want %v", got, id)
	}
}

// TestStartSpanCtxDisabledZeroAllocs extends the no-op guarantee to the
// context-carrying span API: with no sink installed, StartSpanCtx must not
// read the context, the clock, or allocate.
func TestStartSpanCtxDisabledZeroAllocs(t *testing.T) {
	prev := SetSink(nil)
	defer SetSink(prev)
	ctx := ContextWithTrace(context.Background(), NewTraceID())
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpanCtx(ctx, "hot")
		sp.Int("n", 1)
		sp.End()
		PointCtx(ctx, "tick")
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpanCtx allocates %.1f per run, want 0", allocs)
	}
}

func TestSpanCarriesTraceToSink(t *testing.T) {
	col := &CollectorSink{}
	prev := SetSink(col)
	defer SetSink(prev)
	id := NewTraceID()
	ctx := ContextWithTrace(context.Background(), id)
	sp := StartSpanCtx(ctx, "work")
	sp.End()
	PointCtx(ctx, "tick")
	evs := col.Events()
	if len(evs) != 2 || evs[0].Trace != id || evs[1].Trace != id {
		t.Fatalf("events did not carry the context trace ID: %+v", evs)
	}
}

func emitTrace(r *Recorder, id TraceID, name string, n int) {
	for i := 0; i < n; i++ {
		r.Emit(Event{
			Time:  time.Date(2026, 8, 8, 0, 0, i, 0, time.UTC),
			Name:  fmt.Sprintf("%s.%d", name, i),
			Kind:  KindSpan,
			Dur:   time.Millisecond,
			Trace: id,
		})
	}
}

// TestRecorderNewestTraceSurvivesWrap is the ring's core guarantee: once
// full, new events overwrite the oldest, so the latest trace is always fully
// retained while older traces lose events head-first.
func TestRecorderNewestTraceSurvivesWrap(t *testing.T) {
	r := NewRecorder(8)
	old, fresh := NewTraceID(), NewTraceID()
	emitTrace(r, old, "old", 8)
	emitTrace(r, fresh, "new", 3)
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want the capacity 8", got)
	}
	dumps := r.Traces(0)
	if len(dumps) != 2 {
		t.Fatalf("got %d traces, want 2: %+v", len(dumps), dumps)
	}
	// Most recently active first, and complete.
	if dumps[0].TraceID != fresh.String() || len(dumps[0].Events) != 3 {
		t.Fatalf("newest trace = %s with %d events, want %s with 3",
			dumps[0].TraceID, len(dumps[0].Events), fresh)
	}
	if dumps[0].Events[0].Name != "new.0" || dumps[0].Events[2].Name != "new.2" {
		t.Errorf("newest trace events out of order: %+v", dumps[0].Events)
	}
	// The old trace lost its 3 oldest events to the overwrite.
	if dumps[1].TraceID != old.String() || len(dumps[1].Events) != 5 {
		t.Fatalf("old trace kept %d events, want 5", len(dumps[1].Events))
	}
	if dumps[1].Events[0].Name != "old.3" {
		t.Errorf("old trace should have lost its head, first event %q", dumps[1].Events[0].Name)
	}
	// limit applies to traces, newest first.
	if lim := r.Traces(1); len(lim) != 1 || lim[0].TraceID != fresh.String() {
		t.Errorf("Traces(1) = %+v, want just the newest trace", lim)
	}
}

func TestRecorderSkipsUntracedEventsInDumps(t *testing.T) {
	r := NewRecorder(16)
	r.Emit(Event{Name: "background", Kind: KindPoint}) // zero trace
	id := NewTraceID()
	emitTrace(r, id, "req", 2)
	if dumps := r.Traces(0); len(dumps) != 1 || len(dumps[0].Events) != 2 {
		t.Fatalf("dumps = %+v, want one trace with 2 events", dumps)
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3 (untraced events still buffered)", got)
	}
}

// TestRecorderConcurrent hammers Emit from many goroutines while readers
// pull Traces and Events; run under -race this is the recorder's thread-
// safety proof, and the final event count must be exact.
func TestRecorderConcurrent(t *testing.T) {
	const (
		writers = 8
		each    = 500
		ringCap = 256
	)
	r := NewRecorder(ringCap)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Traces(4)
				r.Events()
				r.Len()
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			id := NewTraceID()
			for i := 0; i < each; i++ {
				r.Emit(Event{Name: "e", Kind: KindSpan, Trace: id,
					Attrs: []Attr{I64("i", int64(i))}})
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := r.Len(); got != ringCap {
		t.Fatalf("Len = %d after %d emits, want %d", got, writers*each, ringCap)
	}
	n := 0
	for _, d := range r.Traces(0) {
		n += len(d.Events)
	}
	if n != ringCap {
		t.Fatalf("traces hold %d events total, want %d", n, ringCap)
	}
}

// TestProgressStopBeforeTickNoLeak locks in the Stop contract: calling Stop
// before the first tick, and calling it twice, neither panics nor leaks the
// ticker goroutine. Non-positive intervals select the default instead of
// failing.
func TestProgressStopBeforeTickNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	// An interval far beyond the test's lifetime: Stop must not wait for a
	// tick to come around.
	p := StartProgress(io.Discard, time.Hour, func() string { return "x" })
	p.Stop()
	p.Stop() // idempotent
	// Non-positive interval is documented to select the default, not panic.
	for _, iv := range []time.Duration{0, -time.Second} {
		q := StartProgress(io.Discard, iv, func() string { return "y" })
		q.Stop()
		q.Stop()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d > %d",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}
