package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"time"
)

// jsonEvent is the wire form of one JSON-lines trace record.
type jsonEvent struct {
	TS    string         `json:"ts"`
	Kind  string         `json:"kind"`
	Name  string         `json:"name"`
	Trace string         `json:"trace,omitempty"`
	DurNS int64          `json:"dur_ns,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// JSONLSink writes one JSON object per event, newline-delimited — the
// machine-readable trace format behind the CLIs' -trace flag. It is safe
// for concurrent use; each event is written in a single Write call.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing JSON lines to w. The caller owns w
// (and closes it, if it is a file) after the sink is uninstalled.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	je := jsonEvent{
		TS:    ev.Time.UTC().Format(time.RFC3339Nano),
		Kind:  ev.Kind.String(),
		Name:  ev.Name,
		DurNS: int64(ev.Dur),
	}
	if !ev.Trace.IsZero() {
		je.Trace = ev.Trace.String()
	}
	if len(ev.Attrs) > 0 {
		je.Attrs = make(map[string]any, len(ev.Attrs))
		for _, a := range ev.Attrs {
			je.Attrs[a.Key] = a.Value()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Encode appends '\n'; errors (closed file at shutdown) are dropped —
	// tracing must never fail the computation it observes.
	_ = s.enc.Encode(je)
}

// SlogSink forwards events to a slog.Logger at Debug level — the
// human-readable text sink behind the CLIs' -debug flag.
type SlogSink struct{ l *slog.Logger }

// NewSlogSink returns a sink logging through l.
func NewSlogSink(l *slog.Logger) *SlogSink { return &SlogSink{l: l} }

// NewTextSink returns a slog-backed sink writing logfmt-style text to w.
func NewTextSink(w io.Writer) *SlogSink {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug})
	return &SlogSink{l: slog.New(h)}
}

// Emit implements Sink.
func (s *SlogSink) Emit(ev Event) {
	args := make([]any, 0, 4+2*len(ev.Attrs))
	args = append(args, "kind", ev.Kind.String())
	if ev.Kind == KindSpan {
		args = append(args, "dur", ev.Dur)
	}
	if !ev.Trace.IsZero() {
		args = append(args, "trace", ev.Trace.String())
	}
	for _, a := range ev.Attrs {
		args = append(args, a.Key, a.Value())
	}
	s.l.Debug(ev.Name, args...)
}

// MultiSink fans one event out to several sinks (e.g. -trace plus -debug).
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// CollectorSink buffers events in memory for tests and reconciliation
// checks. Safe for concurrent Emit.
type CollectorSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink, deep-copying Attrs (the tracer already hands over
// a fresh slice, but sinks must not rely on that).
func (c *CollectorSink) Emit(ev Event) {
	attrs := make([]Attr, len(ev.Attrs))
	copy(attrs, ev.Attrs)
	ev.Attrs = attrs
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (c *CollectorSink) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}
