package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// Trace identity. A TraceID names one logical request end to end: the HTTP
// layer mints (or adopts, from an inbound W3C traceparent header) one ID per
// request, stores it in the request context, and every span started with
// StartSpanCtx below that point carries it. The ID doubles as the
// client-visible request ID (X-Request-Id), so a client-observed failure can
// be joined against server-side spans, access-log lines and /debug/trace
// dumps without any other correlation key.

// TraceID is a 16-byte W3C trace-context trace identifier. The zero value
// means "untraced".
type TraceID [16]byte

// SpanID is an 8-byte W3C trace-context span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is unset (the W3C invalid all-zero ID).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses 32 hex digits; ok is false for malformed or all-zero
// input.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// idState is the process-local PRNG behind NewTraceID/NewSpanID: a SplitMix64
// walk from a crypto-random origin. IDs must be unique and cheap, not
// unguessable — a single atomic add per 8 bytes keeps ID minting off the
// request hot path's profile.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	_, _ = rand.Read(seed[:]) // a zero seed still yields a valid sequence
	idState.Store(binary.LittleEndian.Uint64(seed[:]))
}

func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 { // keep the all-zero (invalid) IDs unreachable
		x = 1
	}
	return x
}

// NewTraceID mints a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], nextID())
	binary.BigEndian.PutUint64(t[8:], nextID())
	return t
}

// NewSpanID mints a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}

// ParseTraceparent extracts the trace ID and parent span ID from a W3C
// traceparent header ("00-<32 hex>-<16 hex>-<2 hex>"). Unknown versions are
// accepted as long as the fixed prefix parses (per spec); malformed values
// and the all-zero IDs are rejected.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	if !isHex(h[:2]) || h[:2] == "ff" {
		return TraceID{}, SpanID{}, false
	}
	tid, ok := ParseTraceID(h[3:35])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	var sid SpanID
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil || sid == (SpanID{}) {
		return TraceID{}, SpanID{}, false
	}
	if !isHex(h[53:55]) {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

// FormatTraceparent renders a version-00 traceparent header with the
// "sampled" flag set. Single-allocation: it runs once per served request.
func FormatTraceparent(t TraceID, s SpanID) string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, t[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, s[:])
	b = append(b, "-01"...)
	return string(b)
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// traceKey keys the TraceID stored in a context.
type traceKey struct{}

// ContextWithTrace returns a context carrying the trace ID. A zero ID
// returns ctx unchanged, so untraced callers stay allocation-free.
func ContextWithTrace(ctx context.Context, id TraceID) context.Context {
	if id.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom returns the trace ID carried by ctx, or the zero ID.
func TraceIDFrom(ctx context.Context) TraceID {
	if id, ok := ctx.Value(traceKey{}).(TraceID); ok {
		return id
	}
	return TraceID{}
}
