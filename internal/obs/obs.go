// Package obs is the observability layer of the framework: a
// zero-dependency metrics registry (counters, gauges, log-spaced duration
// histograms) and a pluggable tracing front end (spans and point events
// dispatched to a Sink).
//
// Design constraints, in order:
//
//  1. The disabled path is free. With no Sink installed, StartSpan returns
//     a zero Span whose methods do nothing, perform no time.Now call and
//     allocate nothing, so instrumentation can live inside solver inner
//     loops without a build tag. Counters are always live (a single atomic
//     add), which keeps metrics deterministic whether or not tracing is on.
//  2. Metrics are deterministic. Counter totals depend only on the work
//     performed, never on scheduling: the same run produces bit-identical
//     counts for any GOMAXPROCS.
//  3. Everything is stdlib-only.
//
// The package-level default registry and sink serve the whole process;
// tests may build private Registries. CLIs install sinks via SetSink and
// dump the registry with Snapshot/WriteJSON.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Kind discriminates trace events.
type Kind uint8

const (
	// KindSpan is a completed span: Dur holds its length and Time its end.
	KindSpan Kind = iota
	// KindPoint is an instantaneous event.
	KindPoint
)

func (k Kind) String() string {
	if k == KindPoint {
		return "point"
	}
	return "span"
}

// Attr is one key/value annotation on an event. Exactly one of the value
// fields is meaningful, selected by the constructor.
type Attr struct {
	Key string
	I   int64
	F   float64
	S   string
	T   byte // 'i', 'f' or 's'
}

// I64 builds an integer attribute.
func I64(key string, v int64) Attr { return Attr{Key: key, I: v, T: 'i'} }

// F64 builds a float attribute.
func F64(key string, v float64) Attr { return Attr{Key: key, F: v, T: 'f'} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, S: v, T: 's'} }

// Value returns the dynamically-typed attribute value.
func (a Attr) Value() any {
	switch a.T {
	case 'i':
		return a.I
	case 'f':
		return a.F
	default:
		return a.S
	}
}

// Event is one trace record handed to a Sink. Attrs is never retained by
// the tracer after Emit returns; sinks that buffer must copy it.
type Event struct {
	Time  time.Time // end time for spans, occurrence time for points
	Name  string
	Kind  Kind
	Dur   time.Duration // span length; 0 for points
	Trace TraceID       // request correlation; zero for untraced work
	Attrs []Attr
}

// Sink receives trace events. Implementations must be safe for concurrent
// Emit calls: search workers and Monte Carlo samplers trace in parallel.
type Sink interface {
	Emit(Event)
}

// sinkBox wraps a Sink so the global can be swapped atomically.
type sinkBox struct{ s Sink }

var globalSink atomic.Pointer[sinkBox]

// SetSink installs the process-wide trace sink. nil restores the no-op
// tracer. It returns the previously installed sink (nil if none).
func SetSink(s Sink) Sink {
	var old *sinkBox
	if s == nil {
		old = globalSink.Swap(nil)
	} else {
		old = globalSink.Swap(&sinkBox{s: s})
	}
	if old == nil {
		return nil
	}
	return old.s
}

// CurrentSink returns the installed sink, or nil when tracing is off.
func CurrentSink() Sink {
	if b := globalSink.Load(); b != nil {
		return b.s
	}
	return nil
}

// Enabled reports whether a trace sink is installed. Hot paths use it to
// skip attribute computation that is only needed for tracing.
func Enabled() bool { return globalSink.Load() != nil }

// maxSpanAttrs is the fixed attribute capacity of a Span. Instrumentation
// sites use at most this many annotations; the cap keeps Span stack-only.
// (The core.search run span is the widest user: capacity/method/chunks/
// workers at start plus evaluated/pruned_bound/bound_efficiency at end.)
const maxSpanAttrs = 8

// Span is an in-flight trace span. The zero Span (returned when tracing is
// disabled) is inert: all methods are cheap no-ops. Span is a value type —
// keep it on the stack and call End exactly once; do not copy it after
// annotating.
type Span struct {
	sink  Sink
	name  string
	start time.Time
	trace TraceID
	attrs [maxSpanAttrs]Attr
	n     int
}

// StartSpan opens a span against the process sink. When tracing is
// disabled it returns the zero Span without reading the clock.
func StartSpan(name string) Span {
	b := globalSink.Load()
	if b == nil {
		return Span{}
	}
	return Span{sink: b.s, name: name, start: time.Now()}
}

// StartSpanCtx opens a span carrying the trace ID stored in ctx (see
// ContextWithTrace), so every span below one request shares its ID. Like
// StartSpan, the disabled path returns the zero Span without reading the
// clock or the context, and allocates nothing.
func StartSpanCtx(ctx context.Context, name string) Span {
	b := globalSink.Load()
	if b == nil {
		return Span{}
	}
	return Span{sink: b.s, name: name, start: time.Now(), trace: TraceIDFrom(ctx)}
}

// On reports whether the span is live (tracing was enabled at StartSpan).
func (sp *Span) On() bool { return sp.sink != nil }

func (sp *Span) add(a Attr) {
	if sp.sink == nil || sp.n == maxSpanAttrs {
		return
	}
	sp.attrs[sp.n] = a
	sp.n++
}

// Int annotates the span with an integer attribute.
func (sp *Span) Int(key string, v int64) { sp.add(Attr{Key: key, I: v, T: 'i'}) }

// Float annotates the span with a float attribute.
func (sp *Span) Float(key string, v float64) { sp.add(Attr{Key: key, F: v, T: 'f'}) }

// Str annotates the span with a string attribute.
func (sp *Span) Str(key, v string) { sp.add(Attr{Key: key, S: v, T: 's'}) }

// End closes the span and emits it. Calling End on a zero Span does
// nothing.
func (sp *Span) End() {
	if sp.sink == nil {
		return
	}
	end := time.Now()
	var attrs []Attr
	if sp.n > 0 {
		// Copy out of the stack array: the Event may outlive the Span.
		attrs = make([]Attr, sp.n)
		copy(attrs, sp.attrs[:sp.n])
	}
	sp.sink.Emit(Event{
		Time:  end,
		Name:  sp.name,
		Kind:  KindSpan,
		Dur:   end.Sub(sp.start),
		Trace: sp.trace,
		Attrs: attrs,
	})
}

// Point emits an instantaneous event with the given attributes. When
// tracing is disabled the variadic slice is the only cost; guard call
// sites with Enabled() where that matters.
func Point(name string, attrs ...Attr) {
	b := globalSink.Load()
	if b == nil {
		return
	}
	b.s.Emit(Event{Time: time.Now(), Name: name, Kind: KindPoint, Attrs: attrs})
}

// PointCtx emits an instantaneous event tagged with the trace ID carried by
// ctx, correlating the point with the request whose work produced it.
func PointCtx(ctx context.Context, name string, attrs ...Attr) {
	b := globalSink.Load()
	if b == nil {
		return
	}
	b.s.Emit(Event{Time: time.Now(), Name: name, Kind: KindPoint, Trace: TraceIDFrom(ctx), Attrs: attrs})
}
