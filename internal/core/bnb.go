package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sramco/internal/array"
	"sramco/internal/obs"
	"sramco/internal/wire"
)

// This file is the branch-and-bound fast path of the exhaustive searchers.
//
// The search space factors into (chunk × segmentation) units, each an
// (N_pre, N_wr) rectangle sharing one Prepare. A cheap certified lower bound
// (array.BoundRect) over a unit — or a single N_pre row of it — lets the
// searcher skip the rectangle wholesale when even the bound cannot beat the
// incumbent, charging the skipped points to SearchStats.PrunedBound.
//
// Determinism: SearchStats documents that every count is bit-identical for a
// given Options regardless of GOMAXPROCS, and the serving layer's catalog
// relies on byte-identical response bodies. Pruning against a racy
// cross-worker incumbent would make Evaluated/PrunedBound depend on
// scheduling, so pruning thresholds are derived only from
// schedule-independent state (DESIGN.md §11):
//
//  1. a bound pass prepares every unit and bounds its full rectangle;
//  2. the unit with the best bound seeds the search: its chunk is swept
//     first, alone, and its best objective freezes the global threshold T;
//  3. the remaining chunks are sharded over workers, each pruning against
//     min(T, chunk-local best) — both independent of which worker runs the
//     chunk or in what order.
//
// The cross-worker atomic best-so-far (bestSoFar) is still published on
// every improvement — observers (the run span, tests, a progress ticker)
// watch the search converge through it — but no pruning decision reads it.

// bnbMinRun is the N_wr range width below which the searcher sweeps the
// points instead of bisecting further: a BoundRect costs about an eighth of
// sweeping this many points, so bounding smaller ranges stops paying.
const bnbMinRun = 4

// atomicMin is a lock-free monotonically non-increasing float64 cell.
// Publish lowers it via CAS, so concurrent publishers can never regress the
// value; Load returns the current minimum.
type atomicMin struct{ bits atomic.Uint64 }

func newAtomicMin() *atomicMin {
	m := &atomicMin{}
	m.bits.Store(math.Float64bits(math.Inf(1)))
	return m
}

// Publish lowers the cell to v if v improves on the current value.
func (m *atomicMin) Publish(v float64) {
	for {
		old := m.bits.Load()
		if !(v < math.Float64frombits(old)) {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Load returns the current minimum (+Inf before any Publish).
func (m *atomicMin) Load() float64 { return math.Float64frombits(m.bits.Load()) }

// searchUnit is one (chunk, segmentation, mux, group-mask) rectangle of the
// bounded search: a prepared Evaluator plus the lower bound over its full
// (N_pre, N_wr) range. Invalid base geometries keep ev == nil and are charged
// to SkippedGeom; RSNM-infeasible mask classes set rsnmSkip and are charged
// to SkippedRSNM, mirroring the unpruned path's in-loop counts.
type searchUnit struct {
	segs     int
	mux      int
	spec     maskSpec
	valid    bool
	rsnmSkip bool
	ev       *array.Evaluator
	bound    array.Bound
}

// bnbSearch carries the shared state of one bounded search run.
type bnbSearch struct {
	opts      *Options
	specs     []maskSpec
	alt       array.FlavorTerms
	cc, altCC *CellChar
	delta     float64
	evProto   *array.Evaluator
	chunks    []chunk
	units     [][]searchUnit // aligned with chunks
	kind      objKind
	sctx      context.Context
	cancel    context.CancelCauseFunc
	bestSoFar *atomicMin
}

// unitDesign materializes the Design identity of one point of a unit, with
// the hybrid fields stamped exactly as the evaluator stamps its Results so
// tie-break comparisons see identical values.
func (s *bnbSearch) unitDesign(u *searchUnit, nr, nc, width, npre, nwr int, vssc float64) array.Design {
	d := array.Design{
		Geom: wire.Geometry{NR: nr, NC: nc, W: width, Npre: npre, Nwr: nwr, WLSegs: u.segs, Mux: u.mux},
		VDDC: u.spec.vddc, VSSC: vssc, VWL: u.spec.vwl,
	}
	if s.opts.hybridOn() {
		d.Groups, d.GroupMask = s.opts.HybridGroups, u.spec.mask
	}
	return d
}

// objBound reads the lower bound matching the built-in objective.
func (s *bnbSearch) objBound(b array.Bound) float64 {
	switch s.kind {
	case objDelay:
		return b.DArray
	case objEnergy:
		return b.EArray
	case objArea:
		return b.Area
	case objPADP:
		return b.PADP
	}
	return b.EDP
}

// objLane returns the sweep lane matching the built-in objective.
func (s *bnbSearch) objLane(sw *array.SweepBlock) []float64 {
	switch s.kind {
	case objDelay:
		return sw.DArray
	case objEnergy:
		return sw.EArray
	case objArea:
		return sw.Area
	case objPADP:
		return sw.PADP
	}
	return sw.EDP
}

// boundPass prepares every (chunk, segmentation) unit and bounds its full
// rectangle, striping chunks over workers. Unit construction is pure
// per-chunk work, so the stripe assignment cannot affect the result.
func (s *bnbSearch) boundPass(workers int) error {
	s.units = make([][]searchUnit, len(s.chunks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ci := w; ci < len(s.chunks); ci += workers {
				if s.sctx.Err() != nil {
					return
				}
				c := s.chunks[ci]
				width := accessWidth(s.opts.W, c.rc.nc)
				segsList := segCandidates(s.opts, c.rc.nc, width)
				muxList := muxCandidates(s.opts.Space, width)
				us := make([]searchUnit, 0, len(segsList)*len(muxList)*len(s.specs))
				for _, segs := range segsList {
					for _, mux := range muxList {
						base := wire.Geometry{NR: c.rc.nr, NC: c.rc.nc, W: width, Npre: 1, Nwr: 1, WLSegs: segs, Mux: mux}
						if base.Validate() != nil || (s.opts.hybridOn() && c.rc.nr%s.opts.HybridGroups != 0) {
							for _, sp := range s.specs {
								us = append(us, searchUnit{segs: segs, mux: mux, spec: sp})
							}
							continue
						}
						for _, sp := range s.specs {
							if !specRSNMOK(sp, c.vssc, s.cc, s.altCC, s.delta) {
								us = append(us, searchUnit{segs: segs, mux: mux, spec: sp, rsnmSkip: true})
								continue
							}
							ev := s.evProto.Clone()
							var perr error
							if s.opts.hybridOn() {
								perr = ev.PrepareHybrid(base, sp.vddc, c.vssc, sp.vwl,
									array.Hybrid{Groups: s.opts.HybridGroups, Mask: sp.mask, Alt: s.alt})
							} else {
								perr = ev.Prepare(base, sp.vddc, c.vssc, sp.vwl)
							}
							if perr != nil {
								s.cancel(fmt.Errorf("core: evaluating n_r=%d n_c=%d N_pre=%d N_wr=%d VSSC=%g: %w",
									c.rc.nr, c.rc.nc, 1, 1, c.vssc, perr))
								return
							}
							b, err := ev.BoundRect(1, s.opts.Space.NpreMax, 1, s.opts.Space.NwrMax)
							if err != nil {
								s.cancel(fmt.Errorf("core: evaluating n_r=%d n_c=%d N_pre=%d N_wr=%d VSSC=%g: %w",
									c.rc.nr, c.rc.nc, 1, 1, c.vssc, err))
								return
							}
							us = append(us, searchUnit{segs: segs, mux: mux, spec: sp, valid: true, ev: ev, bound: b})
						}
					}
				}
				s.units[ci] = us
			}
		}(w)
	}
	wg.Wait()
	return context.Cause(s.sctx)
}

// pickSeed returns the chunk containing the unit with the smallest objective
// bound among rail-feasible units (ties: lowest chunk index, then unit
// order) — the rectangle most likely to contain the global optimum, so the
// threshold frozen after sweeping it prunes aggressively everywhere else.
func (s *bnbSearch) pickSeed() (int, bool) {
	best, ci := math.Inf(1), -1
	for i, us := range s.units {
		for _, u := range us {
			if !u.valid || !u.bound.RailsSettleInTime {
				continue
			}
			if b := s.objBound(u.bound); b < best {
				best, ci = b, i
			}
		}
	}
	return ci, ci >= 0
}

// bnbWorker accumulates one worker's partial view of the bounded search.
type bnbWorker struct {
	best    *DesignPoint
	obj     float64
	stats   SearchStats
	sweep   array.SweepBlock
	scratch array.Result
}

// processChunk sweeps one chunk's units under the frozen threshold T,
// accumulating evaluations, prunes and the worker-local best into slot. The
// chunk is processed by exactly one goroutine, so the chunk-local incumbent
// that refines T is deterministic. Returns false on cancellation or error.
func (s *bnbSearch) processChunk(ci int, T float64, slot *bnbWorker) bool {
	c := s.chunks[ci]
	space := s.opts.Space
	width := accessWidth(s.opts.W, c.rc.nc)
	pts := space.NpreMax * space.NwrMax

	chunkStart := time.Now()
	sp := obs.StartSpanCtx(s.sctx, "core.search.chunk")
	evals0 := slot.stats.Evaluated
	pruned0 := slot.stats.PrunedBound
	flushed := evals0
	endChunk := func(completed bool) {
		mSearchEvaluated.Add(int64(slot.stats.Evaluated - flushed))
		flushed = slot.stats.Evaluated
		if completed {
			mSearchChunks.Inc()
			hChunkDur.Observe(time.Since(chunkStart))
		}
		sp.Int("nr", int64(c.rc.nr))
		sp.Int("nc", int64(c.rc.nc))
		sp.Float("vssc", c.vssc)
		sp.Int("evaluated", int64(slot.stats.Evaluated-evals0))
		sp.Int("pruned_bound", int64(slot.stats.PrunedBound-pruned0))
		sp.End()
	}

	local := math.Inf(1) // chunk-local incumbent objective
	for ui := range s.units[ci] {
		u := &s.units[ci][ui]
		if s.sctx.Err() != nil {
			endChunk(false)
			return false
		}
		if u.rsnmSkip {
			slot.stats.SkippedRSNM += pts
			continue
		}
		if !u.valid {
			slot.stats.SkippedGeom += pts
			continue
		}
		if !u.bound.RailsSettleInTime {
			// Rail settling is chunk-invariant (§4): the whole rectangle is
			// infeasible and pruned without evaluation. (The unpruned path
			// evaluates these points and counts them under SkippedRails.)
			slot.stats.PrunedBound += pts
			continue
		}
		if s.objBound(u.bound) > math.Min(T, local) {
			slot.stats.PrunedBound += pts
			continue
		}
		for npre := 1; npre <= space.NpreMax; npre++ {
			if s.sctx.Err() != nil {
				endChunk(false)
				return false
			}
			// Refine the row by bisection on the N_wr range. The bound's
			// write-buffer current is taken at the range's high end, so its
			// slack on a full row is ~NwrMax×; each halving tightens it 2×,
			// and a BoundRect is ~an eighth of sweeping the points it can
			// prune. Recursion is sequential within the chunk, so the counts
			// and the incumbent updates stay deterministic.
			var refine func(lo, hi int) bool
			refine = func(lo, hi int) bool {
				rb, err := u.ev.BoundRect(npre, npre, lo, hi)
				if err != nil {
					s.cancel(fmt.Errorf("core: evaluating n_r=%d n_c=%d N_pre=%d N_wr=%d VSSC=%g: %w",
						c.rc.nr, c.rc.nc, npre, lo, c.vssc, err))
					return false
				}
				if s.objBound(rb) > math.Min(T, local) {
					slot.stats.PrunedBound += hi - lo + 1
					return true
				}
				if hi-lo+1 > bnbMinRun {
					mid := (lo + hi) / 2
					return refine(lo, mid) && refine(mid+1, hi)
				}
				if err := u.ev.EvalSweep(npre, lo, hi, &slot.sweep); err != nil {
					s.cancel(fmt.Errorf("core: evaluating n_r=%d n_c=%d N_pre=%d N_wr=%d VSSC=%g: %w",
						c.rc.nr, c.rc.nc, npre, lo, c.vssc, err))
					return false
				}
				slot.stats.Evaluated += hi - lo + 1
				lane := s.objLane(&slot.sweep)[:hi-lo+1]
				for i, v := range lane {
					if v < local {
						local = v
					}
					nwr := lo + i
					win := slot.best == nil || v < slot.obj
					if !win && v == slot.obj {
						cand := s.unitDesign(u, c.rc.nr, c.rc.nc, width, npre, nwr, c.vssc)
						win = designLess(cand, slot.best.Design)
					}
					if win {
						// Materialize the winning point once; the sweep lanes
						// are bit-identical to EvalInto, so the stored
						// objective v matches the Result exactly.
						if err := u.ev.EvalInto(npre, nwr, &slot.scratch); err != nil {
							s.cancel(fmt.Errorf("core: evaluating n_r=%d n_c=%d N_pre=%d N_wr=%d VSSC=%g: %w",
								c.rc.nr, c.rc.nc, npre, nwr, c.vssc, err))
							return false
						}
						rc := slot.scratch
						slot.best, slot.obj = &DesignPoint{Design: rc.Design, Result: &rc}, v
						s.bestSoFar.Publish(v)
					}
				}
				return true
			}
			if !refine(1, space.NwrMax) {
				endChunk(false)
				return false
			}
			mSearchEvaluated.Add(int64(slot.stats.Evaluated - flushed))
			flushed = slot.stats.Evaluated
		}
	}
	endChunk(true)
	return true
}

// optimizeBounded is OptimizeContext's branch-and-bound path: bound pass →
// seed sweep → frozen-threshold parallel sweep → deterministic reduction.
// It owns the run from after the run-span setup through the final Optimum.
func (f *Framework) optimizeBounded(runSpan obs.Span, start time.Time, opts *Options,
	stats SearchStats, chunks []chunk, workers int, evProto *array.Evaluator,
	specs []maskSpec, alt array.FlavorTerms, cc, altCC *CellChar, ctx context.Context) (*Optimum, error) {

	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	s := &bnbSearch{
		opts: opts, specs: specs, alt: alt, cc: cc, altCC: altCC, delta: f.Delta,
		evProto: evProto, chunks: chunks,
		kind: objectiveKind(opts.Objective), sctx: sctx, cancel: cancel,
		bestSoFar: newAtomicMin(),
	}

	finish := func(slots []bnbWorker) (SearchStats, *DesignPoint, float64) {
		var best *DesignPoint
		obj := math.Inf(1)
		for i := range slots {
			stats.addWorker(slots[i].stats)
			if slots[i].best != nil && betterPoint(slots[i].best, slots[i].obj, best, obj) {
				best, obj = slots[i].best, slots[i].obj
			}
		}
		st := finishStats(stats, start, workers)
		runSpan.Int("evaluated", int64(st.Evaluated))
		runSpan.Int("pruned_bound", int64(st.PrunedBound))
		runSpan.Float("bound_efficiency", st.BoundEfficiency())
		runSpan.End()
		return st, best, obj
	}

	slots := make([]bnbWorker, workers)
	for i := range slots {
		slots[i].obj = math.Inf(1)
	}

	if err := s.boundPass(workers); err != nil {
		st, _, _ := finish(slots)
		return nil, &SearchError{Stats: st, Cause: err}
	}

	// Seed: sweep the most promising chunk alone and freeze the global
	// pruning threshold at its best objective.
	T := math.Inf(1)
	seedCi := -1
	if ci, ok := s.pickSeed(); ok {
		seedCi = ci
		if !s.processChunk(ci, T, &slots[0]) {
			st, _, _ := finish(slots)
			return nil, &SearchError{Stats: st, Cause: context.Cause(sctx)}
		}
		T = slots[0].obj
	}

	jobs := make(chan int, len(chunks))
	for ci := range chunks {
		if ci != seedCi {
			jobs <- ci
		}
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot *bnbWorker) {
			defer wg.Done()
			for ci := range jobs {
				if !s.processChunk(ci, T, slot) {
					return
				}
			}
		}(&slots[w])
	}
	wg.Wait()

	st, best, _ := finish(slots)
	if cause := context.Cause(sctx); cause != nil {
		return nil, &SearchError{Stats: st, Cause: cause}
	}
	if best == nil {
		return nil, fmt.Errorf("core: %w for %d bits (all %d candidates rejected)",
			ErrInfeasible, opts.CapacityBits, st.SkippedTotal()+st.PrunedBound)
	}
	return &Optimum{Best: *best, Evaluated: st.Evaluated, Skipped: st.SkippedTotal(), Stats: st}, nil
}

// frontDominatesRect reports whether a front member proves every point of a
// rectangle with metric lower bounds (bD, bE) redundant: some q is ≤ the
// bound in both metrics and strictly below in at least one. Strictness in
// one coordinate protects exact metric ties, whose canonical replacement in
// insertPareto must still see the candidate.
func frontDominatesRect(front []DesignPoint, bD, bE float64) bool {
	for _, q := range front {
		qd, qe := q.Result.DArray, q.Result.EArray
		if (qd <= bD && qe < bE) || (qd < bD && qe <= bE) {
			return true
		}
	}
	return false
}

// paretoWouldChange mirrors insertPareto's decision for a point with metrics
// (d, e) and design cand without materializing its Result: false when an
// existing member weakly dominates it (and an exact tie would keep the
// canonical incumbent), true when inserting would alter the front.
func paretoWouldChange(front []DesignPoint, d, e float64, cand array.Design) bool {
	for _, q := range front {
		qd, qe := q.Result.DArray, q.Result.EArray
		if qd == d && qe == e {
			return designLess(cand, q.Design)
		}
		if qd <= d && qe <= e {
			return false
		}
	}
	return true
}

// bnbParetoWorker accumulates one worker's partial frontier.
type bnbParetoWorker struct {
	front   []DesignPoint
	stats   SearchStats
	sweep   array.SweepBlock
	scratch array.Result
}

// processParetoChunk sweeps one chunk for the Pareto search, pruning
// rectangles that the frozen seed front f0 proves redundant. Per-point
// insertion decisions consult the worker-local front only to avoid
// materializing dominated Results — they never affect the counts, so stats
// stay schedule-independent.
func (s *bnbSearch) processParetoChunk(ci int, f0 []DesignPoint, slot *bnbParetoWorker) bool {
	c := s.chunks[ci]
	space := s.opts.Space
	width := accessWidth(s.opts.W, c.rc.nc)
	pts := space.NpreMax * space.NwrMax

	chunkStart := time.Now()
	sp := obs.StartSpanCtx(s.sctx, "core.search.chunk")
	evals0 := slot.stats.Evaluated
	pruned0 := slot.stats.PrunedBound
	flushed := evals0
	endChunk := func(completed bool) {
		mSearchEvaluated.Add(int64(slot.stats.Evaluated - flushed))
		flushed = slot.stats.Evaluated
		if completed {
			mSearchChunks.Inc()
			hChunkDur.Observe(time.Since(chunkStart))
		}
		sp.Int("nr", int64(c.rc.nr))
		sp.Int("nc", int64(c.rc.nc))
		sp.Float("vssc", c.vssc)
		sp.Int("evaluated", int64(slot.stats.Evaluated-evals0))
		sp.Int("pruned_bound", int64(slot.stats.PrunedBound-pruned0))
		sp.End()
	}

	for ui := range s.units[ci] {
		u := &s.units[ci][ui]
		if s.sctx.Err() != nil {
			endChunk(false)
			return false
		}
		if u.rsnmSkip {
			slot.stats.SkippedRSNM += pts
			continue
		}
		if !u.valid {
			slot.stats.SkippedGeom += pts
			continue
		}
		if !u.bound.RailsSettleInTime {
			slot.stats.PrunedBound += pts
			continue
		}
		if frontDominatesRect(f0, u.bound.DArray, u.bound.EArray) {
			slot.stats.PrunedBound += pts
			continue
		}
		for npre := 1; npre <= space.NpreMax; npre++ {
			if s.sctx.Err() != nil {
				endChunk(false)
				return false
			}
			// Same N_wr bisection as the scalar searcher: halving the range
			// tightens the bound's write-buffer-current slack 2× per level.
			var refine func(lo, hi int) bool
			refine = func(lo, hi int) bool {
				rb, err := u.ev.BoundRect(npre, npre, lo, hi)
				if err != nil {
					s.cancel(fmt.Errorf("core: pareto evaluating n_r=%d N_pre=%d N_wr=%d VSSC=%g: %w",
						c.rc.nr, npre, lo, c.vssc, err))
					return false
				}
				if frontDominatesRect(f0, rb.DArray, rb.EArray) {
					slot.stats.PrunedBound += hi - lo + 1
					return true
				}
				if hi-lo+1 > bnbMinRun {
					mid := (lo + hi) / 2
					return refine(lo, mid) && refine(mid+1, hi)
				}
				if err := u.ev.EvalSweep(npre, lo, hi, &slot.sweep); err != nil {
					s.cancel(fmt.Errorf("core: pareto evaluating n_r=%d N_pre=%d N_wr=%d VSSC=%g: %w",
						c.rc.nr, npre, lo, c.vssc, err))
					return false
				}
				slot.stats.Evaluated += hi - lo + 1
				for i := 0; i < hi-lo+1; i++ {
					d, e := slot.sweep.DArray[i], slot.sweep.EArray[i]
					nwr := lo + i
					cand := s.unitDesign(u, c.rc.nr, c.rc.nc, width, npre, nwr, c.vssc)
					if !paretoWouldChange(slot.front, d, e, cand) {
						continue
					}
					if err := u.ev.EvalInto(npre, nwr, &slot.scratch); err != nil {
						s.cancel(fmt.Errorf("core: pareto evaluating n_r=%d N_pre=%d N_wr=%d VSSC=%g: %w",
							c.rc.nr, npre, nwr, c.vssc, err))
						return false
					}
					rc := slot.scratch
					slot.front = insertPareto(slot.front, DesignPoint{Design: rc.Design, Result: &rc})
				}
				return true
			}
			if !refine(1, space.NwrMax) {
				endChunk(false)
				return false
			}
			mSearchEvaluated.Add(int64(slot.stats.Evaluated - flushed))
			flushed = slot.stats.Evaluated
		}
	}
	endChunk(true)
	return true
}

// paretoBounded is ParetoSearchContext's branch-and-bound path. The seed
// chunk is swept in full and its frontier frozen as f0; the remaining
// chunks prune any rectangle some f0 member dominates. A pruned rectangle
// can only contain points that were globally dominated anyway (domination is
// transitive through the bound), so the merged frontier is bit-identical to
// the full enumeration's.
func (f *Framework) paretoBounded(runSpan obs.Span, start time.Time, opts *Options,
	stats SearchStats, chunks []chunk, workers int, evProto *array.Evaluator,
	specs []maskSpec, alt array.FlavorTerms, cc, altCC *CellChar, ctx context.Context) (*ParetoResult, error) {

	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	s := &bnbSearch{
		opts: opts, specs: specs, alt: alt, cc: cc, altCC: altCC, delta: f.Delta,
		evProto: evProto, chunks: chunks,
		kind: objEDP, sctx: sctx, cancel: cancel, bestSoFar: newAtomicMin(),
	}

	slots := make([]bnbParetoWorker, workers)
	finish := func() SearchStats {
		for i := range slots {
			stats.addWorker(slots[i].stats)
		}
		st := finishStats(stats, start, workers)
		runSpan.Int("evaluated", int64(st.Evaluated))
		runSpan.Int("pruned_bound", int64(st.PrunedBound))
		runSpan.Float("bound_efficiency", st.BoundEfficiency())
		runSpan.End()
		return st
	}

	if err := s.boundPass(workers); err != nil {
		return nil, &SearchError{Stats: finish(), Cause: err}
	}

	var f0 []DesignPoint
	seedCi := -1
	if ci, ok := s.pickSeed(); ok {
		seedCi = ci
		if !s.processParetoChunk(ci, nil, &slots[0]) {
			return nil, &SearchError{Stats: finish(), Cause: context.Cause(sctx)}
		}
		// Freeze a copy: insertPareto mutates fronts in place, and the seed
		// slot keeps accumulating in phase 2.
		f0 = append([]DesignPoint(nil), slots[0].front...)
	}

	jobs := make(chan int, len(chunks))
	for ci := range chunks {
		if ci != seedCi {
			jobs <- ci
		}
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot *bnbParetoWorker) {
			defer wg.Done()
			for ci := range jobs {
				if !s.processParetoChunk(ci, f0, slot) {
					return
				}
			}
		}(&slots[w])
	}
	wg.Wait()

	st := finish()
	if cause := context.Cause(sctx); cause != nil {
		return nil, &SearchError{Stats: st, Cause: cause}
	}
	var candidates []DesignPoint
	for i := range slots {
		candidates = append(candidates, slots[i].front...)
	}
	return mergePareto(candidates, st, opts.CapacityBits)
}
