package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"sramco/internal/array"
	"sramco/internal/obs"
	"sramco/internal/wire"
)

// ParetoResult pairs the energy-delay frontier with the search statistics of
// the sweep that produced it, mirroring Optimum for the scalarized search.
type ParetoResult struct {
	Front []DesignPoint
	Stats SearchStats
}

// ParetoFront is ParetoFrontContext without cancellation.
func (f *Framework) ParetoFront(opts Options) ([]DesignPoint, error) {
	return f.ParetoFrontContext(context.Background(), opts)
}

// ParetoFrontContext returns just the frontier of ParetoSearchContext,
// preserving the historical signature.
func (f *Framework) ParetoFrontContext(ctx context.Context, opts Options) ([]DesignPoint, error) {
	res, err := f.ParetoSearchContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	return res.Front, nil
}

// ParetoSearch is ParetoSearchContext without cancellation.
func (f *Framework) ParetoSearch(opts Options) (*ParetoResult, error) {
	return f.ParetoSearchContext(context.Background(), opts)
}

// ParetoSearchContext exhaustively enumerates the same search space as
// Optimize — including divided-wordline segmentation when
// Options.SearchWLSegs is set — but returns the full energy-delay Pareto
// frontier instead of the single minimum-EDP point: every feasible design
// for which no other feasible design is both faster and lower-energy. Points
// are returned sorted by increasing delay (hence decreasing energy),
// together with the same SearchStats the other searchers report.
//
// The frontier exposes the trade-off the EDP scalarization hides — e.g. how
// much energy a delay-critical cache bank must pay to match LVT speed.
//
// Like OptimizeContext the sweep shards (row × VSSC) chunks over workers,
// uses the chunk-amortized array.Evaluator on the hot path, emits the
// core.search span/counter scheme (run span core.search.pareto, one
// core.search.chunk span per shard), cancels on the first model error or ctx
// cancellation — returning a *SearchError carrying the counts so far — and
// resolves metric ties canonically so the returned frontier is
// deterministic for any GOMAXPROCS.
func (f *Framework) ParetoSearchContext(ctx context.Context, opts Options) (*ParetoResult, error) {
	start := time.Now()
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	tech, err := f.ArrayTech(opts.Flavor)
	if err != nil {
		return nil, err
	}
	cc := f.Cells[opts.Flavor]
	specs, alt, altCC, err := f.maskSpecs(&opts)
	if err != nil {
		return nil, err
	}
	if altCC != nil && altCC.HSNM < f.Delta {
		return nil, fmt.Errorf("core: 6T-%v HSNM %.3f below δ=%.3f at Vdd=%.3f", altCC.Flavor, altCC.HSNM, f.Delta, f.Vdd)
	}
	eval := opts.evalHook
	if eval != nil && opts.hybridOn() {
		return nil, fmt.Errorf("core: hybrid groups are not supported with an eval hook")
	}
	var evProto *array.Evaluator
	if eval == nil {
		evProto, err = array.NewEvaluator(tech, opts.Activity)
		if err != nil {
			return nil, err
		}
	}

	rows := rowCandidates(opts.CapacityBits, opts.Space)
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: %w: no feasible organization for %d bits", ErrInfeasible, opts.CapacityBits)
	}
	var stats SearchStats
	// Prune a VSSC level only when every group-assignment class fails the
	// read-stability constraint, as in OptimizeContext.
	var feasVSSC []float64
	for _, v := range vsscCandidates(opts.Method, opts.Space) {
		anyOK := false
		for _, s := range specs {
			if specRSNMOK(s, v, cc, altCC, f.Delta) {
				anyOK = true
				break
			}
		}
		if !anyOK {
			stats.PrunedVSSC++
			continue
		}
		feasVSSC = append(feasVSSC, v)
	}
	if stats.PrunedVSSC > 0 {
		stats.SkippedRSNM = stats.PrunedVSSC * validCombosPerLevel(&opts, rows)
	}
	var chunks []chunk
	for _, rc := range rows {
		for _, vssc := range feasVSSC {
			chunks = append(chunks, chunk{rc: rc, vssc: vssc})
		}
	}
	if len(chunks) == 0 {
		return nil, &SearchError{
			Stats: finishStats(stats, start, 0),
			Cause: fmt.Errorf("%w: empty Pareto front for %d bits", ErrInfeasible, opts.CapacityBits),
		}
	}
	stats.Chunks = len(chunks)

	workers := runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}

	mSearchRuns.Inc()
	gSearchChunks.Set(float64(len(chunks)))
	runSpan := obs.StartSpanCtx(ctx, "core.search.pareto")
	runSpan.Int("capacity_bits", int64(opts.CapacityBits))
	runSpan.Str("method", opts.Method.String())
	runSpan.Int("chunks", int64(len(chunks)))
	runSpan.Int("workers", int64(workers))

	// Branch-and-bound fast path: a rectangle some frozen-front member
	// dominates in both metrics cannot contribute to the frontier, so it is
	// pruned without evaluation; the merged front is bit-identical to the
	// full enumeration's (DESIGN.md §11).
	if eval == nil && !opts.DisableBounds {
		return f.paretoBounded(runSpan, start, &opts, stats, chunks, workers, evProto, specs, alt, cc, altCC, ctx)
	}

	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	jobs := make(chan chunk, len(chunks))
	for _, c := range chunks {
		jobs <- c
	}
	close(jobs)

	type paretoWorker struct {
		front []DesignPoint
		stats SearchStats
	}
	slots := make([]paretoWorker, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot *paretoWorker) {
			defer wg.Done()
			var ev *array.Evaluator
			if evProto != nil {
				ev = evProto.Clone()
			}
			var scratch array.Result
			for c := range jobs {
				if sctx.Err() != nil {
					return
				}
				chunkStart := time.Now()
				sp := obs.StartSpanCtx(sctx, "core.search.chunk")
				evals0 := slot.stats.Evaluated
				flushed := evals0
				endChunk := func(completed bool) {
					mSearchEvaluated.Add(int64(slot.stats.Evaluated - flushed))
					flushed = slot.stats.Evaluated
					if completed {
						mSearchChunks.Inc()
						hChunkDur.Observe(time.Since(chunkStart))
					}
					sp.Int("nr", int64(c.rc.nr))
					sp.Int("nc", int64(c.rc.nc))
					sp.Float("vssc", c.vssc)
					sp.Int("evaluated", int64(slot.stats.Evaluated-evals0))
					sp.End()
				}
				nr, nc := c.rc.nr, c.rc.nc
				width := accessWidth(opts.W, nc)
				pts := opts.Space.NpreMax * opts.Space.NwrMax
				for _, segs := range segCandidates(&opts, nc, width) {
					for _, mux := range muxCandidates(opts.Space, width) {
						base := wire.Geometry{NR: nr, NC: nc, W: width, Npre: 1, Nwr: 1, WLSegs: segs, Mux: mux}
						if ev != nil {
							if base.Validate() != nil || (opts.hybridOn() && nr%opts.HybridGroups != 0) {
								slot.stats.SkippedGeom += pts * len(specs)
								continue
							}
						}
						for _, s := range specs {
							if !specRSNMOK(s, c.vssc, cc, altCC, f.Delta) {
								slot.stats.SkippedRSNM += pts
								continue
							}
							if ev != nil {
								var perr error
								if opts.hybridOn() {
									perr = ev.PrepareHybrid(base, s.vddc, c.vssc, s.vwl,
										array.Hybrid{Groups: opts.HybridGroups, Mask: s.mask, Alt: alt})
								} else {
									perr = ev.Prepare(base, s.vddc, c.vssc, s.vwl)
								}
								if perr != nil {
									cancel(fmt.Errorf("core: pareto evaluating n_r=%d N_pre=%d N_wr=%d VSSC=%g: %w",
										nr, 1, 1, c.vssc, perr))
									endChunk(false)
									return
								}
							}
							for npre := 1; npre <= opts.Space.NpreMax; npre++ {
								if sctx.Err() != nil {
									endChunk(false)
									return
								}
								for nwr := 1; nwr <= opts.Space.NwrMax; nwr++ {
									var r *array.Result
									var d array.Design
									if ev != nil {
										if err := ev.EvalInto(npre, nwr, &scratch); err != nil {
											cancel(fmt.Errorf("core: pareto evaluating n_r=%d N_pre=%d N_wr=%d VSSC=%g: %w",
												nr, npre, nwr, c.vssc, err))
											endChunk(false)
											return
										}
										r, d = &scratch, scratch.Design
									} else {
										d = array.Design{
											Geom: wire.Geometry{NR: nr, NC: nc, W: width, Npre: npre, Nwr: nwr, WLSegs: segs, Mux: mux},
											VDDC: s.vddc, VSSC: c.vssc, VWL: s.vwl,
										}
										if d.Geom.Validate() != nil {
											slot.stats.SkippedGeom++
											continue
										}
										var err error
										r, err = eval(tech, d, opts.Activity)
										if err != nil {
											cancel(fmt.Errorf("core: pareto evaluating n_r=%d N_pre=%d N_wr=%d VSSC=%g: %w",
												nr, npre, nwr, c.vssc, err))
											endChunk(false)
											return
										}
									}
									slot.stats.Evaluated++
									if !r.RailsSettleInTime {
										slot.stats.SkippedRails++
										continue
									}
									rc := *r
									slot.front = insertPareto(slot.front, DesignPoint{Design: d, Result: &rc})
								}
								mSearchEvaluated.Add(int64(slot.stats.Evaluated - flushed))
								flushed = slot.stats.Evaluated
							}
						}
					}
				}
				endChunk(true)
			}
		}(&slots[w])
	}
	wg.Wait()

	for i := range slots {
		stats.addWorker(slots[i].stats)
	}
	stats = finishStats(stats, start, workers)
	runSpan.Int("evaluated", int64(stats.Evaluated))
	runSpan.End()
	if cause := context.Cause(sctx); cause != nil {
		return nil, &SearchError{Stats: stats, Cause: cause}
	}

	var candidates []DesignPoint
	for i := range slots {
		candidates = append(candidates, slots[i].front...)
	}
	return mergePareto(candidates, stats, opts.CapacityBits)
}

// mergePareto reduces worker-local fronts to the global frontier. A globally
// non-dominated point survives every worker-local reduction, so the union of
// local fronts contains the global frontier regardless of how chunks were
// distributed. Inserting the union in canonical design order makes metric
// ties order-free too; the result is sorted by increasing delay.
func mergePareto(candidates []DesignPoint, stats SearchStats, capacityBits int) (*ParetoResult, error) {
	sort.Slice(candidates, func(i, j int) bool {
		return designLess(candidates[i].Design, candidates[j].Design)
	})
	var merged []DesignPoint
	for _, p := range candidates {
		merged = insertPareto(merged, p)
	}
	if len(merged) == 0 {
		return nil, &SearchError{
			Stats: stats,
			Cause: fmt.Errorf("%w: empty Pareto front for %d bits", ErrInfeasible, capacityBits),
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		di, dj := merged[i].Result, merged[j].Result
		if di.DArray != dj.DArray {
			return di.DArray < dj.DArray
		}
		if di.EArray != dj.EArray {
			return di.EArray < dj.EArray
		}
		return designLess(merged[i].Design, merged[j].Design)
	})
	return &ParetoResult{Front: merged, Stats: stats}, nil
}

// insertPareto inserts p into a non-dominated set, dropping p if dominated
// and evicting any points p dominates. Domination is on (DArray, EArray),
// minimizing both; exact metric ties keep the canonically smaller design so
// the front does not depend on insertion order.
func insertPareto(front []DesignPoint, p DesignPoint) []DesignPoint {
	pd, pe := p.Result.DArray, p.Result.EArray
	for i, q := range front {
		qd, qe := q.Result.DArray, q.Result.EArray
		if qd == pd && qe == pe {
			if designLess(p.Design, q.Design) {
				front[i] = p
			}
			return front
		}
		if qd <= pd && qe <= pe {
			// q dominates p: keep the existing front unchanged.
			return front
		}
	}
	keep := front[:0]
	for _, q := range front {
		if !(pd <= q.Result.DArray && pe <= q.Result.EArray) {
			keep = append(keep, q)
		}
	}
	return append(keep, p)
}

// KneePoint returns the index of the frontier point closest (in normalized
// log space) to the utopia point (min delay, min energy) — a useful default
// pick when EDP is not the intended scalarization. It panics on an empty
// frontier.
func KneePoint(front []DesignPoint) int {
	if len(front) == 0 {
		panic("core: KneePoint of empty frontier")
	}
	minD, minE := math.Inf(1), math.Inf(1)
	maxD, maxE := math.Inf(-1), math.Inf(-1)
	for _, p := range front {
		minD = math.Min(minD, p.Result.DArray)
		minE = math.Min(minE, p.Result.EArray)
		maxD = math.Max(maxD, p.Result.DArray)
		maxE = math.Max(maxE, p.Result.EArray)
	}
	spanD, spanE := maxD-minD, maxE-minE
	if spanD == 0 {
		spanD = 1
	}
	if spanE == 0 {
		spanE = 1
	}
	best, bestDist := 0, math.Inf(1)
	for i, p := range front {
		dd := (p.Result.DArray - minD) / spanD
		de := (p.Result.EArray - minE) / spanE
		if dist := dd*dd + de*de; dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}
