package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"sramco/internal/array"
	"sramco/internal/wire"
)

// ParetoFront exhaustively enumerates the same search space as Optimize but
// returns the full energy-delay Pareto frontier instead of the single
// minimum-EDP point: every feasible design for which no other feasible
// design is both faster and lower-energy. Points are returned sorted by
// increasing delay (hence decreasing energy).
//
// The frontier exposes the trade-off the EDP scalarization hides — e.g. how
// much energy a delay-critical cache bank must pay to match LVT speed.
func (f *Framework) ParetoFront(opts Options) ([]DesignPoint, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	tech, err := f.ArrayTech(opts.Flavor)
	if err != nil {
		return nil, err
	}
	cc := f.Cells[opts.Flavor]
	vddc, vwl, err := f.Rails(opts.Flavor, opts.Method)
	if err != nil {
		return nil, err
	}

	var vsscs []float64
	if opts.Method == M1 {
		vsscs = []float64{0}
	} else {
		for v := 0.0; v >= opts.Space.VSSCMin-1e-9; v -= opts.Space.VSSCStep {
			vsscs = append(vsscs, v)
		}
	}
	type rowCand struct{ nr, nc int }
	var rows []rowCand
	for nr := 2; nr <= opts.Space.NRMax; nr *= 2 {
		if opts.CapacityBits%nr != 0 {
			continue
		}
		nc := opts.CapacityBits / nr
		if nc >= 1 && nc <= opts.Space.NCMax {
			rows = append(rows, rowCand{nr, nc})
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: no feasible organization for %d bits", opts.CapacityBits)
	}

	jobs := make(chan rowCand, len(rows))
	for _, rc := range rows {
		jobs <- rc
	}
	close(jobs)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(rows) {
		workers = len(rows)
	}
	fronts := make([][]DesignPoint, workers)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []DesignPoint
			for rc := range jobs {
				width := opts.W
				if rc.nc < width {
					width = rc.nc
				}
				for _, vssc := range vsscs {
					if cc.RSNMAt(vssc) < f.Delta-1e-9 {
						continue
					}
					for npre := 1; npre <= opts.Space.NpreMax; npre++ {
						for nwr := 1; nwr <= opts.Space.NwrMax; nwr++ {
							d := array.Design{
								Geom: wire.Geometry{NR: rc.nr, NC: rc.nc, W: width, Npre: npre, Nwr: nwr},
								VDDC: vddc, VSSC: vssc, VWL: vwl,
							}
							if d.Geom.Validate() != nil {
								continue
							}
							r, err := array.Evaluate(tech, d, opts.Activity)
							if err != nil {
								errCh <- err
								return
							}
							if !r.RailsSettleInTime {
								continue
							}
							local = insertPareto(local, DesignPoint{Design: d, Result: r})
						}
					}
				}
			}
			fronts[w] = local
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	var merged []DesignPoint
	for _, fr := range fronts {
		for _, p := range fr {
			merged = insertPareto(merged, p)
		}
	}
	if len(merged) == 0 {
		return nil, fmt.Errorf("core: empty Pareto front for %d bits", opts.CapacityBits)
	}
	sort.Slice(merged, func(i, j int) bool {
		return merged[i].Result.DArray < merged[j].Result.DArray
	})
	return merged, nil
}

// insertPareto inserts p into a non-dominated set, dropping p if dominated
// and evicting any points p dominates. Domination is on (DArray, EArray),
// minimizing both.
func insertPareto(front []DesignPoint, p DesignPoint) []DesignPoint {
	pd, pe := p.Result.DArray, p.Result.EArray
	keep := front[:0]
	for _, q := range front {
		qd, qe := q.Result.DArray, q.Result.EArray
		if qd <= pd && qe <= pe {
			// q dominates (or equals) p: keep the existing front unchanged.
			return front
		}
		if !(pd <= qd && pe <= qe) {
			keep = append(keep, q)
		}
	}
	return append(keep, p)
}

// KneePoint returns the index of the frontier point closest (in normalized
// log space) to the utopia point (min delay, min energy) — a useful default
// pick when EDP is not the intended scalarization. It panics on an empty
// frontier.
func KneePoint(front []DesignPoint) int {
	if len(front) == 0 {
		panic("core: KneePoint of empty frontier")
	}
	minD, minE := math.Inf(1), math.Inf(1)
	maxD, maxE := math.Inf(-1), math.Inf(-1)
	for _, p := range front {
		minD = math.Min(minD, p.Result.DArray)
		minE = math.Min(minE, p.Result.EArray)
		maxD = math.Max(maxD, p.Result.DArray)
		maxE = math.Max(maxE, p.Result.EArray)
	}
	spanD, spanE := maxD-minD, maxE-minE
	if spanD == 0 {
		spanD = 1
	}
	if spanE == 0 {
		spanE = 1
	}
	best, bestDist := 0, math.Inf(1)
	for i, p := range front {
		dd := (p.Result.DArray - minD) / spanD
		de := (p.Result.EArray - minE) / spanE
		if dist := dd*dd + de*de; dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}
