package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"sramco/internal/array"
	"sramco/internal/wire"
)

// ParetoFront is ParetoFrontContext without cancellation.
func (f *Framework) ParetoFront(opts Options) ([]DesignPoint, error) {
	return f.ParetoFrontContext(context.Background(), opts)
}

// ParetoFrontContext exhaustively enumerates the same search space as
// Optimize (flat wordlines only) but returns the full energy-delay Pareto
// frontier instead of the single minimum-EDP point: every feasible design
// for which no other feasible design is both faster and lower-energy. Points
// are returned sorted by increasing delay (hence decreasing energy).
//
// The frontier exposes the trade-off the EDP scalarization hides — e.g. how
// much energy a delay-critical cache bank must pay to match LVT speed.
//
// Like OptimizeContext the sweep shards (row × VSSC) chunks over workers,
// cancels on the first model error or ctx cancellation, and resolves metric
// ties canonically so the returned frontier is deterministic.
func (f *Framework) ParetoFrontContext(ctx context.Context, opts Options) ([]DesignPoint, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	tech, err := f.ArrayTech(opts.Flavor)
	if err != nil {
		return nil, err
	}
	cc := f.Cells[opts.Flavor]
	vddc, vwl, err := f.Rails(opts.Flavor, opts.Method)
	if err != nil {
		return nil, err
	}
	eval := opts.evalHook
	if eval == nil {
		eval = array.Evaluate
	}

	rows := rowCandidates(opts.CapacityBits, opts.Space)
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: %w: no feasible organization for %d bits", ErrInfeasible, opts.CapacityBits)
	}
	var feasVSSC []float64
	for _, v := range vsscCandidates(opts.Method, opts.Space) {
		if cc.RSNMAt(v) >= f.Delta-1e-9 {
			feasVSSC = append(feasVSSC, v)
		}
	}
	var chunks []chunk
	for _, rc := range rows {
		for _, vssc := range feasVSSC {
			chunks = append(chunks, chunk{rc: rc, vssc: vssc})
		}
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("core: %w: empty Pareto front for %d bits", ErrInfeasible, opts.CapacityBits)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	jobs := make(chan chunk, len(chunks))
	for _, c := range chunks {
		jobs <- c
	}
	close(jobs)

	fronts := make([][]DesignPoint, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []DesignPoint
			for c := range jobs {
				if sctx.Err() != nil {
					return
				}
				width := accessWidth(opts.W, c.rc.nc)
				for npre := 1; npre <= opts.Space.NpreMax; npre++ {
					if sctx.Err() != nil {
						return
					}
					for nwr := 1; nwr <= opts.Space.NwrMax; nwr++ {
						d := array.Design{
							Geom: wire.Geometry{NR: c.rc.nr, NC: c.rc.nc, W: width, Npre: npre, Nwr: nwr},
							VDDC: vddc, VSSC: c.vssc, VWL: vwl,
						}
						if d.Geom.Validate() != nil {
							continue
						}
						r, err := eval(tech, d, opts.Activity)
						if err != nil {
							cancel(fmt.Errorf("core: pareto evaluating n_r=%d N_pre=%d N_wr=%d VSSC=%g: %w",
								c.rc.nr, npre, nwr, c.vssc, err))
							return
						}
						if !r.RailsSettleInTime {
							continue
						}
						local = insertPareto(local, DesignPoint{Design: d, Result: r})
					}
				}
			}
			fronts[w] = local
		}(w)
	}
	wg.Wait()
	if cause := context.Cause(sctx); cause != nil {
		return nil, cause
	}

	// Deterministic merge: a globally non-dominated point survives every
	// worker-local reduction, so the union of local fronts contains the
	// global frontier regardless of how chunks were distributed. Inserting
	// the union in canonical design order makes metric ties order-free too.
	var candidates []DesignPoint
	for _, fr := range fronts {
		candidates = append(candidates, fr...)
	}
	sort.Slice(candidates, func(i, j int) bool {
		return designLess(candidates[i].Design, candidates[j].Design)
	})
	var merged []DesignPoint
	for _, p := range candidates {
		merged = insertPareto(merged, p)
	}
	if len(merged) == 0 {
		return nil, fmt.Errorf("core: %w: empty Pareto front for %d bits", ErrInfeasible, opts.CapacityBits)
	}
	sort.Slice(merged, func(i, j int) bool {
		di, dj := merged[i].Result, merged[j].Result
		if di.DArray != dj.DArray {
			return di.DArray < dj.DArray
		}
		if di.EArray != dj.EArray {
			return di.EArray < dj.EArray
		}
		return designLess(merged[i].Design, merged[j].Design)
	})
	return merged, nil
}

// insertPareto inserts p into a non-dominated set, dropping p if dominated
// and evicting any points p dominates. Domination is on (DArray, EArray),
// minimizing both; exact metric ties keep the canonically smaller design so
// the front does not depend on insertion order.
func insertPareto(front []DesignPoint, p DesignPoint) []DesignPoint {
	pd, pe := p.Result.DArray, p.Result.EArray
	for i, q := range front {
		qd, qe := q.Result.DArray, q.Result.EArray
		if qd == pd && qe == pe {
			if designLess(p.Design, q.Design) {
				front[i] = p
			}
			return front
		}
		if qd <= pd && qe <= pe {
			// q dominates p: keep the existing front unchanged.
			return front
		}
	}
	keep := front[:0]
	for _, q := range front {
		if !(pd <= q.Result.DArray && pe <= q.Result.EArray) {
			keep = append(keep, q)
		}
	}
	return append(keep, p)
}

// KneePoint returns the index of the frontier point closest (in normalized
// log space) to the utopia point (min delay, min energy) — a useful default
// pick when EDP is not the intended scalarization. It panics on an empty
// frontier.
func KneePoint(front []DesignPoint) int {
	if len(front) == 0 {
		panic("core: KneePoint of empty frontier")
	}
	minD, minE := math.Inf(1), math.Inf(1)
	maxD, maxE := math.Inf(-1), math.Inf(-1)
	for _, p := range front {
		minD = math.Min(minD, p.Result.DArray)
		minE = math.Min(minE, p.Result.EArray)
		maxD = math.Max(maxD, p.Result.DArray)
		maxE = math.Max(maxE, p.Result.EArray)
	}
	spanD, spanE := maxD-minD, maxE-minE
	if spanD == 0 {
		spanD = 1
	}
	if spanE == 0 {
		spanE = 1
	}
	best, bestDist := 0, math.Inf(1)
	for i, p := range front {
		dd := (p.Result.DArray - minD) / spanD
		de := (p.Result.EArray - minE) / spanE
		if dist := dd*dd + de*de; dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}
