package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"math"

	"sramco/internal/device"
	"sramco/internal/num"
)

// Fingerprint returns a stable digest of every model input that shapes a
// search result: the calibration mode, the workload and constraint
// constants, the peripheral characterization, the wire capacitances, and
// each flavor's cell characterization — scalars plus the IRead, WriteDelay
// and RSNMAt surfaces sampled on the characterization grids. Two frameworks
// with equal fingerprints run bit-identical searches, so the fingerprint
// versions the precomputed design-space catalog (DESIGN.md §9): any change
// to a device parameter, a model constant or the calibration mode changes
// the digest and invalidates catalogs built against the old technology.
func (f *Framework) Fingerprint() [32]byte {
	h := sha256.New()
	writeF := func(vs ...float64) {
		var buf [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	fmt.Fprintf(h, "sramco-fingerprint-v1|mode=%d|acct=%d|", f.Mode, f.Accounting)
	writeF(f.Vdd, f.DeltaVS, f.Delta, f.DCDC)
	writeF(f.Periph.Vdd, f.Periph.Tau, f.Periph.PInv, f.Periph.SADelay, f.Periph.SAEnergy)
	writeF(f.Caps.Cdn, f.Caps.Cdp, f.Caps.Cgn, f.Caps.Cgp)

	// Sample the per-flavor model functions on the grids the framework was
	// characterized over; the closures themselves cannot be hashed, but on
	// these grids they determine the LUT (or law) everywhere.
	vddcGrid := num.Linspace(f.Vdd, f.Vdd+0.25, 6)
	vsscGrid := num.Linspace(-0.26, 0, 7)
	for _, flavor := range []device.Flavor{device.LVT, device.HVT} {
		cc, ok := f.Cells[flavor]
		if !ok {
			fmt.Fprintf(h, "|cell=%v:absent|", flavor)
			continue
		}
		fmt.Fprintf(h, "|cell=%v|", flavor)
		writeF(cc.VDDCStar, cc.VWLStar, cc.HSNM, cc.Leak, cc.WriteEnergy)
		for _, vddc := range vddcGrid {
			for _, vssc := range vsscGrid {
				writeF(cc.IRead(vddc, vssc))
			}
		}
		for _, vwl := range vddcGrid {
			writeF(cc.WriteDelay(vwl))
		}
		for _, vssc := range vsscGrid {
			writeF(cc.RSNMAt(vssc))
		}
	}
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}
