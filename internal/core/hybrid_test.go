package core

import (
	"reflect"
	"testing"

	"sramco/internal/array"
	"sramco/internal/device"
)

// stripEnv zeroes the environmental (non-deterministic) stats fields so two
// runs of the same search can be compared with reflect.DeepEqual.
func stripEnv(s SearchStats) SearchStats {
	s.Wall = 0
	s.Workers = 0
	s.Chunks = 0
	return s
}

// TestHybridDegenerateParity is the bit-identity gate of the hybrid
// tentpole: HybridGroups = 1 (a single row group, explicitly degenerate)
// must reproduce the plain single-flavor search exactly — same optimum
// design, every Result field bit-identical, and the same search accounting —
// across both wordline architectures, both energy accountings, both flavors
// and the scalar objectives. The per-group machinery (mask enumeration,
// per-group read currents, hybrid bitline delay) must collapse to exact
// no-ops, not merely close approximations.
func TestHybridDegenerateParity(t *testing.T) {
	accountings := []struct {
		name string
		fw   *Framework
	}{
		{"worstcase", paperFramework(t)}, // zero FrameworkOpts → WorstCasePath
	}
	allCols, err := NewFramework(TechPaper, FrameworkOpts{Accounting: array.AllColumns})
	if err != nil {
		t.Fatal(err)
	}
	accountings = append(accountings, struct {
		name string
		fw   *Framework
	}{"allcolumns", allCols})

	for _, acc := range accountings {
		for _, flavor := range []device.Flavor{device.LVT, device.HVT} {
			for _, segs := range []bool{false, true} {
				for _, objName := range []string{"edp", "delay", "energy"} {
					obj, ok := ObjectiveByName(objName)
					if !ok {
						t.Fatalf("unknown objective %q", objName)
					}
					opts := Options{
						CapacityBits: 4 * 1024 * 8,
						Flavor:       flavor,
						Method:       M2,
						Objective:    obj,
						SearchWLSegs: segs,
					}
					plain, err := acc.fw.Optimize(opts)
					if err != nil {
						t.Fatalf("%s %v segs=%v %s plain: %v", acc.name, flavor, segs, objName, err)
					}
					hyb := opts
					hyb.HybridGroups = 1
					degen, err := acc.fw.Optimize(hyb)
					if err != nil {
						t.Fatalf("%s %v segs=%v %s groups=1: %v", acc.name, flavor, segs, objName, err)
					}
					if !reflect.DeepEqual(degen.Best, plain.Best) {
						t.Errorf("%s %v segs=%v %s: groups=1 optimum diverges from plain search:\nhybrid %+v\nplain  %+v",
							acc.name, flavor, segs, objName, degen.Best, plain.Best)
					}
					if got, want := stripEnv(degen.Stats), stripEnv(plain.Stats); got != want {
						t.Errorf("%s %v segs=%v %s: groups=1 stats diverge:\nhybrid %+v\nplain  %+v",
							acc.name, flavor, segs, objName, got, want)
					}
				}
			}
		}
	}
}

// TestHybridDegenerateParityPareto extends the degenerate gate to the
// frontier search: a one-group hybrid sweep must return a bit-identical
// Pareto front to the plain search.
func TestHybridDegenerateParityPareto(t *testing.T) {
	f := paperFramework(t)
	for _, flavor := range []device.Flavor{device.LVT, device.HVT} {
		opts := Options{CapacityBits: 4 * 1024 * 8, Flavor: flavor, Method: M2}
		plain, err := f.ParetoSearch(opts)
		if err != nil {
			t.Fatalf("%v plain: %v", flavor, err)
		}
		hyb := opts
		hyb.HybridGroups = 1
		degen, err := f.ParetoSearch(hyb)
		if err != nil {
			t.Fatalf("%v groups=1: %v", flavor, err)
		}
		if !reflect.DeepEqual(degen.Front, plain.Front) {
			t.Errorf("%v: groups=1 Pareto front diverges from plain search (%d vs %d points)",
				flavor, len(degen.Front), len(plain.Front))
		}
		if got, want := stripEnv(degen.Stats), stripEnv(plain.Stats); got != want {
			t.Errorf("%v: groups=1 Pareto stats diverge:\nhybrid %+v\nplain  %+v", flavor, got, want)
		}
	}
}

// TestBranchAndBoundParityHybrid is the pruning-correctness gate over the
// enlarged (group-assignment × mux) space: branch-and-bound must return the
// exact DesignPoint full enumeration finds, while the accounting identity
//
//	Evaluated + SkippedRSNM + PrunedBound == levels × validCombosPerLevel
//
// holds over the hybrid candidate space (one unit per mask spec per mux
// ratio per segmentation).
func TestBranchAndBoundParityHybrid(t *testing.T) {
	f := paperFramework(t)
	padp, _ := ObjectiveByName("padp")
	for _, tc := range []struct {
		kb     int
		flavor device.Flavor
		method Method
		groups int
		muxMax int
		obj    Objective
		name   string
	}{
		{2, device.LVT, M2, 4, 4, padp, "2KB-lvt-m2-g4-mux4-padp"},
		{4, device.HVT, M1, 2, 2, nil, "4KB-hvt-m1-g2-mux2-edp"},
		{1, device.LVT, M2, 8, 0, nil, "1KB-lvt-m2-g8-edp"},
	} {
		sp := DefaultSpace()
		sp.MuxMax = tc.muxMax
		opts := Options{
			CapacityBits: tc.kb * 1024 * 8,
			Flavor:       tc.flavor,
			Method:       tc.method,
			Objective:    tc.obj,
			HybridGroups: tc.groups,
			Space:        sp,
		}
		pruned, err := f.Optimize(opts)
		if err != nil {
			t.Fatalf("%s pruned: %v", tc.name, err)
		}
		full := opts
		full.DisableBounds = true
		ref, err := f.Optimize(full)
		if err != nil {
			t.Fatalf("%s full: %v", tc.name, err)
		}
		if !reflect.DeepEqual(pruned.Best, ref.Best) {
			t.Errorf("%s: pruned optimum diverges from full enumeration:\npruned %+v\nfull   %+v",
				tc.name, pruned.Best, ref.Best)
		}

		normOpts := opts
		if err := normOpts.normalize(); err != nil {
			t.Fatal(err)
		}
		rows := rowCandidates(normOpts.CapacityBits, normOpts.Space)
		levels := len(vsscCandidates(normOpts.Method, normOpts.Space))
		valid := validCombosPerLevel(&normOpts, rows)
		st := pruned.Stats
		if got, want := st.Evaluated+st.SkippedRSNM+st.PrunedBound, levels*valid; got != want {
			t.Errorf("%s: Evaluated (%d) + SkippedRSNM (%d) + PrunedBound (%d) = %d, want %d",
				tc.name, st.Evaluated, st.SkippedRSNM, st.PrunedBound, got, want)
		}
		if st.PrunedBound == 0 {
			t.Errorf("%s: bound pruned nothing", tc.name)
		}
		if st.SkippedRails != 0 {
			t.Errorf("%s: bounded search evaluated %d rail-infeasible points", tc.name, st.SkippedRails)
		}
		if ref.Stats.PrunedBound != 0 {
			t.Errorf("%s: DisableBounds still pruned %d points", tc.name, ref.Stats.PrunedBound)
		}
		// Full enumeration covers the identical candidate space.
		rst := ref.Stats
		if got, want := rst.Evaluated+rst.SkippedRSNM, levels*valid; got != want {
			t.Errorf("%s: full enumeration Evaluated (%d) + SkippedRSNM (%d) = %d, want %d",
				tc.name, rst.Evaluated, rst.SkippedRSNM, got, want)
		}
	}
}

// TestBranchAndBoundParityHybridPareto pins the frontier search over the
// hybrid space: bounded and full sweeps must agree point-for-point and the
// bounded accounting must reconcile with the enumerated space.
func TestBranchAndBoundParityHybridPareto(t *testing.T) {
	f := paperFramework(t)
	sp := DefaultSpace()
	sp.MuxMax = 2
	opts := Options{
		CapacityBits: 2 * 1024 * 8,
		Flavor:       device.LVT,
		Method:       M2,
		HybridGroups: 2,
		Space:        sp,
	}
	pruned, err := f.ParetoSearch(opts)
	if err != nil {
		t.Fatalf("pruned: %v", err)
	}
	full := opts
	full.DisableBounds = true
	ref, err := f.ParetoSearch(full)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	if !reflect.DeepEqual(pruned.Front, ref.Front) {
		t.Fatalf("pruned front (%d points) diverges from full enumeration (%d points)",
			len(pruned.Front), len(ref.Front))
	}
	st := pruned.Stats
	if got, want := st.Evaluated+st.SkippedRSNM+st.PrunedBound, ref.Stats.Evaluated+ref.Stats.SkippedRSNM; got != want {
		t.Errorf("bounded space (%d) does not reconcile with full enumeration (%d)", got, want)
	}
}

// TestHybridNeverWorseThanPure pins the dominance property that makes the
// hybrid dimension sound: the all-base mask and the all-alternate mask are
// members of the hybrid candidate space, so the hybrid optimum can never be
// worse than the better of the two pure-flavor optima under the same
// search space.
func TestHybridNeverWorseThanPure(t *testing.T) {
	f := paperFramework(t)
	for _, objName := range []string{"edp", "padp"} {
		obj, _ := ObjectiveByName(objName)
		for _, groups := range []int{2, 8} {
			base := Options{
				CapacityBits: 4 * 1024 * 8,
				Flavor:       device.LVT,
				Method:       M2,
				Objective:    obj,
			}
			lvt, err := f.Optimize(base)
			if err != nil {
				t.Fatalf("%s pure LVT: %v", objName, err)
			}
			hvtOpts := base
			hvtOpts.Flavor = device.HVT
			hvt, err := f.Optimize(hvtOpts)
			if err != nil {
				t.Fatalf("%s pure HVT: %v", objName, err)
			}
			hybOpts := base
			hybOpts.HybridGroups = groups
			hyb, err := f.Optimize(hybOpts)
			if err != nil {
				t.Fatalf("%s groups=%d: %v", objName, groups, err)
			}
			bestPure := obj(lvt.Best.Result)
			if v := obj(hvt.Best.Result); v < bestPure {
				bestPure = v
			}
			if got := obj(hyb.Best.Result); got > bestPure {
				t.Errorf("%s groups=%d: hybrid optimum %g worse than best pure optimum %g",
					objName, groups, got, bestPure)
			}
		}
	}
}

// TestHybridRejectsUnsupportedModes pins the guard rails: greedy search and
// sensitivity analysis evaluate under a single-flavor cell model and must
// refuse hybrid inputs instead of silently mis-evaluating them.
func TestHybridRejectsUnsupportedModes(t *testing.T) {
	f := paperFramework(t)
	if _, err := f.Optimize(Options{CapacityBits: 1024, Flavor: device.LVT, Method: M2, HybridGroups: 3}); err == nil {
		t.Error("HybridGroups=3 (not a power of two) accepted")
	}
	if _, err := f.Optimize(Options{CapacityBits: 1024, Flavor: device.LVT, Method: M2, HybridGroups: 16}); err == nil {
		t.Error("HybridGroups=16 (> array.MaxGroups) accepted")
	}
	if _, err := f.GreedyOptimize(Options{CapacityBits: 1024, Flavor: device.LVT, Method: M2, HybridGroups: 2}); err == nil {
		t.Error("greedy search accepted a hybrid configuration")
	}
	opt, err := f.Optimize(Options{CapacityBits: 1024, Flavor: device.LVT, Method: M2, HybridGroups: 2})
	if err != nil {
		t.Fatalf("hybrid optimize: %v", err)
	}
	if _, err := f.SensitivityAt(Options{CapacityBits: 1024, Flavor: device.LVT, Method: M2}, opt.Best); err == nil {
		t.Error("sensitivity analysis accepted a hybrid design point")
	}
}
