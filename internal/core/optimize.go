package core

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"time"

	"sramco/internal/array"
	"sramco/internal/device"
	"sramco/internal/obs"
	"sramco/internal/wire"
)

// Method selects the rail-count restriction of §5.
type Method int

const (
	// M1 allows only one extra voltage level besides Vdd: a single high rail
	// at max(VDDC*, VWL*) shared by the cell supply boost and the wordline
	// overdrive; no negative Gnd.
	M1 Method = iota
	// M2 places no restriction on rail count: VDDC*, VWL* and a swept
	// negative VSSC are all available.
	M2
)

func (m Method) String() string {
	if m == M2 {
		return "M2"
	}
	return "M1"
}

// ParseMethod parses a method name ("m1" or "m2", case-insensitive) — the
// inverse of String, shared by the CLIs and the serving layer so the
// canonical forms in request cache keys cannot drift.
func ParseMethod(s string) (Method, error) {
	switch {
	case strings.EqualFold(s, "m1"):
		return M1, nil
	case strings.EqualFold(s, "m2"):
		return M2, nil
	}
	return 0, fmt.Errorf("core: unknown method %q (want m1 or m2)", s)
}

// SearchSpace bounds the exhaustive search (§5 defaults).
type SearchSpace struct {
	VSSCMin  float64 // most negative VSSC (default -0.240)
	VSSCStep float64 // sweep step (default 0.010)
	NRMax    int     // max rows (default 1024)
	NCMax    int     // max columns (default 1024, the rail-driver sizing limit)
	NpreMax  int     // max precharger fins (default 50)
	NwrMax   int     // max write-buffer fins (default 20)

	// MuxMax enables the sense-amp sharing dimension: mux ratios
	// 2, 4, …, min(MuxMax, W) are searched alongside the unshared
	// organization. ≤ 1 (including the zero value) searches only the
	// paper's one-amp-per-bit organization.
	MuxMax int
}

// DefaultSpace returns the paper's §5 variable ranges.
func DefaultSpace() SearchSpace {
	return SearchSpace{VSSCMin: -0.240, VSSCStep: 0.010, NRMax: 1024, NCMax: 1024, NpreMax: 50, NwrMax: 20}
}

// Objective maps an evaluated design to the scalar being minimized.
type Objective func(*array.Result) float64

// Built-in objectives.
var (
	ObjectiveEDP    Objective = func(r *array.Result) float64 { return r.EDP }
	ObjectiveDelay  Objective = func(r *array.Result) float64 { return r.DArray }
	ObjectiveEnergy Objective = func(r *array.Result) float64 { return r.EArray }
	ObjectiveArea   Objective = func(r *array.Result) float64 { return r.Area }
	ObjectivePADP   Objective = func(r *array.Result) float64 { return r.PADP }
)

// ObjectiveByName maps the canonical objective names ("edp", "delay",
// "energy", "area", "padp") to the built-in objectives. Objectives are
// functions and so cannot appear in a serialized request; callers that key
// caches on a request pass the name through this table and keep the name as
// the canonical form.
func ObjectiveByName(name string) (Objective, bool) {
	switch strings.ToLower(name) {
	case "", "edp":
		return ObjectiveEDP, true
	case "delay":
		return ObjectiveDelay, true
	case "energy":
		return ObjectiveEnergy, true
	case "area":
		return ObjectiveArea, true
	case "padp":
		return ObjectivePADP, true
	}
	return nil, false
}

// objKind identifies which built-in metric an Objective minimizes, so the
// branch-and-bound searcher can read the matching lower bound off an
// array.Bound. Custom objective functions are opaque — no bound is known —
// and map to objCustom, which disables pruning.
type objKind int

const (
	objCustom objKind = iota
	objEDP
	objDelay
	objEnergy
	objArea
	objPADP
)

func objectiveKind(o Objective) objKind {
	switch reflect.ValueOf(o).Pointer() {
	case reflect.ValueOf(ObjectiveEDP).Pointer():
		return objEDP
	case reflect.ValueOf(ObjectiveDelay).Pointer():
		return objDelay
	case reflect.ValueOf(ObjectiveEnergy).Pointer():
		return objEnergy
	case reflect.ValueOf(ObjectiveArea).Pointer():
		return objArea
	case reflect.ValueOf(ObjectivePADP).Pointer():
		return objPADP
	}
	return objCustom
}

// Options configures one optimization run.
type Options struct {
	CapacityBits int
	Flavor       device.Flavor
	Method       Method

	Activity  array.Activity // zero value selects α = β = 0.5
	W         int            // access width in bits; 0 selects 64
	Space     SearchSpace    // zero value selects DefaultSpace
	Objective Objective      // nil selects EDP

	// HybridGroups enables the hybrid cell-assignment dimension: the rows
	// are split into this many contiguous groups (ordered from the
	// sense-amp end) and every per-group assignment of the two
	// characterized flavors is searched, Options.Flavor acting as the base
	// flavor of the all-clear mask. Must be 0 (off), 1 (explicitly the
	// single global flavor, identical to 0) or a power of two ≤
	// array.MaxGroups. Only the exhaustive searcher supports it.
	HybridGroups int

	// SearchWLSegs additionally searches divided-wordline segmentation
	// (1/2/4/8 segments) — an architecture extension beyond the paper's
	// flat wordline. Most effective under the AllColumns energy
	// accounting, where segmentation cuts the per-access bitline disturb.
	// Both the exhaustive and the greedy searcher honor it.
	SearchWLSegs bool

	// DisableBounds turns off the branch-and-bound rectangle pruning of the
	// exhaustive searchers, forcing a full enumeration of the candidate
	// space. The optimum, Pareto front and infeasibility outcomes are
	// bit-identical either way (the parity tests enforce it) — only
	// SearchStats.Evaluated/PrunedBound and the wall time change. Pruning is
	// also disabled automatically for custom Objective functions (no lower
	// bound is known for them) and when an evalHook is injected.
	DisableBounds bool

	// evalHook replaces array.Evaluate in tests (error injection,
	// search-space tracing). nil selects the real model.
	evalHook evalFunc
}

func (o *Options) normalize() error {
	if o.CapacityBits < 4 {
		return fmt.Errorf("core: capacity %d bits too small", o.CapacityBits)
	}
	if o.CapacityBits&(o.CapacityBits-1) != 0 {
		return fmt.Errorf("core: capacity %d bits must be a power of two", o.CapacityBits)
	}
	if o.Activity == (array.Activity{}) {
		o.Activity = array.Activity{Alpha: DefaultAlpha, Beta: DefaultBeta}
	}
	if err := o.Activity.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if o.W == 0 {
		o.W = DefaultW
	}
	if o.W < 0 || o.W > o.CapacityBits {
		return fmt.Errorf("core: access width %d outside (0, capacity %d]", o.W, o.CapacityBits)
	}
	if o.Space == (SearchSpace{}) {
		o.Space = DefaultSpace()
	}
	if o.Space.MuxMax < 0 {
		return fmt.Errorf("core: MuxMax %d must be ≥ 0", o.Space.MuxMax)
	}
	if m := o.Space.MuxMax; m > 1 && m&(m-1) != 0 {
		return fmt.Errorf("core: MuxMax %d must be a power of two", m)
	}
	if g := o.HybridGroups; g < 0 || g > array.MaxGroups || (g > 1 && g&(g-1) != 0) {
		return fmt.Errorf("core: HybridGroups %d must be 0, 1 or a power of two ≤ %d", g, array.MaxGroups)
	}
	if o.Objective == nil {
		o.Objective = ObjectiveEDP
	}
	return nil
}

// hybridOn reports whether the options select a real hybrid search (two or
// more row groups); 0 and 1 both mean the single global flavor.
func (o *Options) hybridOn() bool { return o.HybridGroups > 1 }

// DesignPoint pairs a design with its evaluation.
type DesignPoint struct {
	Design array.Design
	Result *array.Result
}

// Optimum is the outcome of a search. Evaluated and Skipped mirror
// Stats.Evaluated and Stats.SkippedTotal().
type Optimum struct {
	Best      DesignPoint
	Evaluated int // model evaluations performed
	Skipped   int // candidate points rejected by constraints
	Stats     SearchStats
}

// Rails returns the rail voltages (VDDC, VWL) the method assigns before the
// remaining variables are searched (§5: VDDC and VWL are set to the minimum
// levels meeting yield; M1 merges them into one shared high rail).
func (f *Framework) Rails(flavor device.Flavor, m Method) (vddc, vwl float64, err error) {
	cc, ok := f.Cells[flavor]
	if !ok {
		return 0, 0, fmt.Errorf("core: flavor %v not characterized", flavor)
	}
	switch m {
	case M1:
		hi := math.Max(cc.VDDCStar, cc.VWLStar)
		return hi, hi, nil
	case M2:
		return cc.VDDCStar, cc.VWLStar, nil
	default:
		return 0, 0, fmt.Errorf("core: unknown method %d", m)
	}
}

// Optimize exhaustively searches (V_SSC, n_r, N_pre, N_wr) for the design
// minimizing the objective under the yield constraint, with VDDC/VWL pinned
// by the method. It is OptimizeContext without cancellation; see there for
// the sharding and determinism guarantees.
func (f *Framework) Optimize(opts Options) (*Optimum, error) {
	return f.OptimizeContext(context.Background(), opts)
}

// GreedyOptimize is the coordinate-descent ablation searcher without
// cancellation; see GreedyOptimizeContext.
func (f *Framework) GreedyOptimize(opts Options) (*Optimum, error) {
	return f.GreedyOptimizeContext(context.Background(), opts)
}

// GreedyOptimizeContext is the coordinate-descent ablation searcher:
// starting from a balanced square-ish organization with minimum fins and no
// negative Gnd, it repeatedly sweeps one variable at a time (n_r, V_SSC,
// wordline segmentation when enabled, N_pre, N_wr) keeping the others fixed,
// until no single-variable move improves the objective. It typically needs
// orders of magnitude fewer evaluations than the exhaustive search but may
// land in a local minimum.
//
// A model-evaluation error aborts the search and is propagated (wrapped in a
// *SearchError carrying the counts so far), as is a ctx cancellation;
// infeasible points are merely skipped.
func (f *Framework) GreedyOptimizeContext(ctx context.Context, opts Options) (*Optimum, error) {
	start := time.Now()
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if opts.hybridOn() {
		return nil, fmt.Errorf("core: greedy search does not support hybrid groups (HybridGroups=%d)", opts.HybridGroups)
	}
	tech, err := f.ArrayTech(opts.Flavor)
	if err != nil {
		return nil, err
	}
	cc := f.Cells[opts.Flavor]
	vddc, vwl, err := f.Rails(opts.Flavor, opts.Method)
	if err != nil {
		return nil, err
	}
	eval := opts.evalHook
	// Without a test hook, coordinate descent uses the chunk-amortized
	// Evaluator: the N_pre and N_wr sweeps revisit one (geometry, rails)
	// chunk, so Prepare memo-hits and each step costs only the per-point
	// terms.
	var ev *array.Evaluator
	if eval == nil {
		ev, err = array.NewEvaluator(tech, opts.Activity)
		if err != nil {
			return nil, err
		}
	}

	mSearchRuns.Inc()
	sp := obs.StartSpanCtx(ctx, "core.search.greedy")
	sp.Int("capacity_bits", int64(opts.CapacityBits))
	sp.Str("method", opts.Method.String())

	var stats SearchStats
	// evalAt returns (nil, nil) for points outside the space or failing a
	// constraint, and a non-nil error only for cancellation or a genuine
	// model failure — which must surface, not masquerade as infeasibility.
	evalAt := func(nrI int, vssc float64, segs, npre, nwr int) (*array.Result, error) {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		if nrI < 2 || nrI > opts.Space.NRMax || opts.CapacityBits%nrI != 0 {
			return nil, nil
		}
		nc := opts.CapacityBits / nrI
		if nc < 1 || nc > opts.Space.NCMax {
			return nil, nil
		}
		width := accessWidth(opts.W, nc)
		if segs > 1 && nc/segs < width {
			return nil, nil
		}
		if cc.RSNMAt(vssc) < f.Delta-1e-9 {
			stats.SkippedRSNM++
			return nil, nil
		}
		d := array.Design{
			Geom: wire.Geometry{NR: nrI, NC: nc, W: width, Npre: npre, Nwr: nwr, WLSegs: segs},
			VDDC: vddc, VSSC: vssc, VWL: vwl,
		}
		if d.Geom.Validate() != nil {
			stats.SkippedGeom++
			return nil, nil
		}
		var r *array.Result
		var evalErr error
		if ev != nil {
			if evalErr = ev.Prepare(d.Geom, d.VDDC, d.VSSC, d.VWL); evalErr == nil {
				r, evalErr = ev.Eval(d.Geom.Npre, d.Geom.Nwr)
			}
		} else {
			r, evalErr = eval(tech, d, opts.Activity)
		}
		if evalErr != nil {
			return nil, fmt.Errorf("core: greedy evaluating n_r=%d N_pre=%d N_wr=%d VSSC=%g: %w", nrI, npre, nwr, vssc, evalErr)
		}
		stats.Evaluated++
		mSearchEvaluated.Inc()
		if !r.RailsSettleInTime {
			stats.SkippedRails++
			return nil, nil
		}
		return r, nil
	}

	// Start: square-ish organization, flat wordline, no assists beyond the
	// pinned rails.
	nr := 2
	for nr*nr < opts.CapacityBits && nr < opts.Space.NRMax {
		nr *= 2
	}
	vssc, segs, npre, nwr := 0.0, 1, 1, 1
	var bestR *array.Result
	var bestD array.Design
	bestObj := math.Inf(1)
	improve := func(r *array.Result, nrI int, vs float64, sg, np, nw int) bool {
		if r == nil {
			return false
		}
		if v := opts.Objective(r); v < bestObj {
			bestObj = v
			bestR = r
			bestD = r.Design
			nr, vssc, segs, npre, nwr = nrI, vs, sg, np, nw
			return true
		}
		return false
	}
	r, err := evalAt(nr, vssc, segs, npre, nwr)
	if err != nil {
		return nil, &SearchError{Stats: finishStats(stats, start, 1), Cause: err}
	}
	improve(r, nr, vssc, segs, npre, nwr)
	for pass := 0; pass < 20; pass++ {
		changed := false
		for cand := 2; cand <= opts.Space.NRMax; cand *= 2 {
			r, err := evalAt(cand, vssc, segs, npre, nwr)
			if err != nil {
				return nil, &SearchError{Stats: finishStats(stats, start, 1), Cause: err}
			}
			changed = improve(r, cand, vssc, segs, npre, nwr) || changed
		}
		// The shared index-based candidate helper keeps the greedy sweep on
		// exactly the levels the exhaustive search visits (a lone zero level
		// under M1) — no accumulated float drift, no divergent copies.
		for _, v := range vsscCandidates(opts.Method, opts.Space) {
			r, err := evalAt(nr, v, segs, npre, nwr)
			if err != nil {
				return nil, &SearchError{Stats: finishStats(stats, start, 1), Cause: err}
			}
			changed = improve(r, nr, v, segs, npre, nwr) || changed
		}
		if opts.SearchWLSegs {
			for sg := 1; sg <= 8; sg *= 2 {
				r, err := evalAt(nr, vssc, sg, npre, nwr)
				if err != nil {
					return nil, &SearchError{Stats: finishStats(stats, start, 1), Cause: err}
				}
				changed = improve(r, nr, vssc, sg, npre, nwr) || changed
			}
		}
		for np := 1; np <= opts.Space.NpreMax; np++ {
			r, err := evalAt(nr, vssc, segs, np, nwr)
			if err != nil {
				return nil, &SearchError{Stats: finishStats(stats, start, 1), Cause: err}
			}
			changed = improve(r, nr, vssc, segs, np, nwr) || changed
		}
		for nw := 1; nw <= opts.Space.NwrMax; nw++ {
			r, err := evalAt(nr, vssc, segs, npre, nw)
			if err != nil {
				return nil, &SearchError{Stats: finishStats(stats, start, 1), Cause: err}
			}
			changed = improve(r, nr, vssc, segs, npre, nw) || changed
		}
		if !changed {
			break
		}
	}
	stats = finishStats(stats, start, 1)
	sp.Int("evaluated", int64(stats.Evaluated))
	sp.End()
	if bestR == nil {
		return nil, fmt.Errorf("core: greedy search: %w for %d bits", ErrInfeasible, opts.CapacityBits)
	}
	return &Optimum{
		Best:      DesignPoint{Design: bestD, Result: bestR},
		Evaluated: stats.Evaluated,
		Skipped:   stats.SkippedTotal(),
		Stats:     stats,
	}, nil
}
