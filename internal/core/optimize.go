package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"sramco/internal/array"
	"sramco/internal/device"
	"sramco/internal/wire"
)

// Method selects the rail-count restriction of §5.
type Method int

const (
	// M1 allows only one extra voltage level besides Vdd: a single high rail
	// at max(VDDC*, VWL*) shared by the cell supply boost and the wordline
	// overdrive; no negative Gnd.
	M1 Method = iota
	// M2 places no restriction on rail count: VDDC*, VWL* and a swept
	// negative VSSC are all available.
	M2
)

func (m Method) String() string {
	if m == M2 {
		return "M2"
	}
	return "M1"
}

// SearchSpace bounds the exhaustive search (§5 defaults).
type SearchSpace struct {
	VSSCMin  float64 // most negative VSSC (default -0.240)
	VSSCStep float64 // sweep step (default 0.010)
	NRMax    int     // max rows (default 1024)
	NCMax    int     // max columns (default 1024, the rail-driver sizing limit)
	NpreMax  int     // max precharger fins (default 50)
	NwrMax   int     // max write-buffer fins (default 20)
}

// DefaultSpace returns the paper's §5 variable ranges.
func DefaultSpace() SearchSpace {
	return SearchSpace{VSSCMin: -0.240, VSSCStep: 0.010, NRMax: 1024, NCMax: 1024, NpreMax: 50, NwrMax: 20}
}

// Objective maps an evaluated design to the scalar being minimized.
type Objective func(*array.Result) float64

// Built-in objectives.
var (
	ObjectiveEDP    Objective = func(r *array.Result) float64 { return r.EDP }
	ObjectiveDelay  Objective = func(r *array.Result) float64 { return r.DArray }
	ObjectiveEnergy Objective = func(r *array.Result) float64 { return r.EArray }
)

// Options configures one optimization run.
type Options struct {
	CapacityBits int
	Flavor       device.Flavor
	Method       Method

	Activity  array.Activity // zero value selects α = β = 0.5
	W         int            // access width in bits; 0 selects 64
	Space     SearchSpace    // zero value selects DefaultSpace
	Objective Objective      // nil selects EDP

	// SearchWLSegs additionally searches divided-wordline segmentation
	// (1/2/4/8 segments) — an architecture extension beyond the paper's
	// flat wordline. Most effective under the AllColumns energy
	// accounting, where segmentation cuts the per-access bitline disturb.
	SearchWLSegs bool
}

func (o *Options) normalize() error {
	if o.CapacityBits < 4 {
		return fmt.Errorf("core: capacity %d bits too small", o.CapacityBits)
	}
	if o.CapacityBits&(o.CapacityBits-1) != 0 {
		return fmt.Errorf("core: capacity %d bits must be a power of two", o.CapacityBits)
	}
	if o.Activity == (array.Activity{}) {
		o.Activity = array.Activity{Alpha: DefaultAlpha, Beta: DefaultBeta}
	}
	if o.W == 0 {
		o.W = DefaultW
	}
	if o.Space == (SearchSpace{}) {
		o.Space = DefaultSpace()
	}
	if o.Objective == nil {
		o.Objective = ObjectiveEDP
	}
	return nil
}

// DesignPoint pairs a design with its evaluation.
type DesignPoint struct {
	Design array.Design
	Result *array.Result
}

// Optimum is the outcome of a search.
type Optimum struct {
	Best      DesignPoint
	Evaluated int // model evaluations performed
	Skipped   int // candidate points rejected by constraints
}

// Rails returns the rail voltages (VDDC, VWL) the method assigns before the
// remaining variables are searched (§5: VDDC and VWL are set to the minimum
// levels meeting yield; M1 merges them into one shared high rail).
func (f *Framework) Rails(flavor device.Flavor, m Method) (vddc, vwl float64, err error) {
	cc, ok := f.Cells[flavor]
	if !ok {
		return 0, 0, fmt.Errorf("core: flavor %v not characterized", flavor)
	}
	switch m {
	case M1:
		hi := math.Max(cc.VDDCStar, cc.VWLStar)
		return hi, hi, nil
	case M2:
		return cc.VDDCStar, cc.VWLStar, nil
	default:
		return 0, 0, fmt.Errorf("core: unknown method %d", m)
	}
}

// Optimize exhaustively searches (V_SSC, n_r, N_pre, N_wr) for the design
// minimizing the objective under the yield constraint, with VDDC/VWL pinned
// by the method. The search parallelizes across row-count candidates.
func (f *Framework) Optimize(opts Options) (*Optimum, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	tech, err := f.ArrayTech(opts.Flavor)
	if err != nil {
		return nil, err
	}
	cc := f.Cells[opts.Flavor]
	vddc, vwl, err := f.Rails(opts.Flavor, opts.Method)
	if err != nil {
		return nil, err
	}
	// Yield feasibility that does not depend on the searched variables:
	// HSNM at nominal and WM at VWL* are met by construction of the starred
	// rails; HSNM is checked here.
	if cc.HSNM < f.Delta {
		return nil, fmt.Errorf("core: 6T-%v HSNM %.3f below δ=%.3f at Vdd=%.3f", opts.Flavor, cc.HSNM, f.Delta, f.Vdd)
	}

	// VSSC candidates.
	var vsscs []float64
	if opts.Method == M1 {
		vsscs = []float64{0}
	} else {
		for v := 0.0; v >= opts.Space.VSSCMin-1e-9; v -= opts.Space.VSSCStep {
			vsscs = append(vsscs, v)
		}
	}

	// Row-count candidates: powers of two with integral n_c within bounds.
	type rowCand struct{ nr, nc int }
	var rows []rowCand
	for nr := 2; nr <= opts.Space.NRMax; nr *= 2 {
		if opts.CapacityBits%nr != 0 {
			continue
		}
		nc := opts.CapacityBits / nr
		if nc < 1 || nc > opts.Space.NCMax {
			continue
		}
		rows = append(rows, rowCand{nr, nc})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: no feasible organization for %d bits within the search space", opts.CapacityBits)
	}

	type work struct{ rc rowCand }
	jobs := make(chan work, len(rows))
	for _, rc := range rows {
		jobs <- work{rc}
	}
	close(jobs)

	var (
		mu   sync.Mutex
		best *DesignPoint
		obj  = math.Inf(1)
		eval int
		skip int
	)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(rows) {
		workers = len(rows)
	}
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localBest, localObj := (*DesignPoint)(nil), math.Inf(1)
			localEval, localSkip := 0, 0
			for job := range jobs {
				nr, nc := job.rc.nr, job.rc.nc
				width := opts.W
				if nc < width {
					width = nc // narrow arrays access one full row (Table 4's 128 B case)
				}
				segsCands := []int{1}
				if opts.SearchWLSegs {
					for s := 2; s <= 8 && nc/s >= width; s *= 2 {
						segsCands = append(segsCands, s)
					}
				}
				for _, vssc := range vsscs {
					// Read-stability feasibility across the VSSC sweep.
					if cc.RSNMAt(vssc) < f.Delta-1e-9 {
						localSkip += opts.Space.NpreMax * opts.Space.NwrMax * len(segsCands)
						continue
					}
					for _, segs := range segsCands {
						for npre := 1; npre <= opts.Space.NpreMax; npre++ {
							for nwr := 1; nwr <= opts.Space.NwrMax; nwr++ {
								d := array.Design{
									Geom: wire.Geometry{NR: nr, NC: nc, W: width, Npre: npre, Nwr: nwr, WLSegs: segs},
									VDDC: vddc, VSSC: vssc, VWL: vwl,
								}
								if d.Geom.Validate() != nil {
									localSkip++
									continue
								}
								r, err := array.Evaluate(tech, d, opts.Activity)
								if err != nil {
									errs <- err
									return
								}
								localEval++
								if !r.RailsSettleInTime {
									localSkip++
									continue
								}
								if v := opts.Objective(r); v < localObj {
									localObj = v
									localBest = &DesignPoint{Design: d, Result: r}
								}
							}
						}
					}
				}
			}
			mu.Lock()
			defer mu.Unlock()
			eval += localEval
			skip += localSkip
			if localBest != nil && localObj < obj {
				obj = localObj
				best = localBest
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("core: no feasible design for %d bits (all %d candidates rejected)", opts.CapacityBits, skip)
	}
	return &Optimum{Best: *best, Evaluated: eval, Skipped: skip}, nil
}

// GreedyOptimize is the coordinate-descent ablation searcher: starting from
// a balanced square-ish organization with minimum fins and no negative Gnd,
// it repeatedly sweeps one variable at a time (n_r, V_SSC, N_pre, N_wr)
// keeping the others fixed, until no single-variable move improves the
// objective. It typically needs orders of magnitude fewer evaluations than
// the exhaustive search but may land in a local minimum.
func (f *Framework) GreedyOptimize(opts Options) (*Optimum, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	tech, err := f.ArrayTech(opts.Flavor)
	if err != nil {
		return nil, err
	}
	cc := f.Cells[opts.Flavor]
	vddc, vwl, err := f.Rails(opts.Flavor, opts.Method)
	if err != nil {
		return nil, err
	}

	evalCount, skip := 0, 0
	evalAt := func(nr, vssc float64, npre, nwr int) (*array.Result, bool) {
		nrI := int(nr)
		if nrI < 2 || nrI > opts.Space.NRMax || opts.CapacityBits%nrI != 0 {
			return nil, false
		}
		nc := opts.CapacityBits / nrI
		if nc < 1 || nc > opts.Space.NCMax {
			return nil, false
		}
		width := opts.W
		if nc < width {
			width = nc
		}
		if cc.RSNMAt(vssc) < f.Delta-1e-9 {
			skip++
			return nil, false
		}
		d := array.Design{
			Geom: wire.Geometry{NR: nrI, NC: nc, W: width, Npre: npre, Nwr: nwr},
			VDDC: vddc, VSSC: vssc, VWL: vwl,
		}
		if d.Geom.Validate() != nil {
			return nil, false
		}
		r, err2 := array.Evaluate(tech, d, opts.Activity)
		if err2 != nil {
			return nil, false
		}
		evalCount++
		if !r.RailsSettleInTime {
			skip++
			return nil, false
		}
		return r, true
	}

	// Start: square-ish organization, no assists beyond the pinned rails.
	nr := 2
	for nr*nr < opts.CapacityBits && nr < opts.Space.NRMax {
		nr *= 2
	}
	vssc, npre, nwr := 0.0, 1, 1
	var bestR *array.Result
	var bestD array.Design
	bestObj := math.Inf(1)
	improve := func(r *array.Result, nrI int, vs float64, np, nw int) bool {
		if r == nil {
			return false
		}
		if v := opts.Objective(r); v < bestObj {
			bestObj = v
			bestR = r
			bestD = r.Design
			nr, vssc, npre, nwr = nrI, vs, np, nw
			return true
		}
		return false
	}
	if r, ok := evalAt(float64(nr), vssc, npre, nwr); ok {
		improve(r, nr, vssc, npre, nwr)
	}
	for pass := 0; pass < 20; pass++ {
		changed := false
		for cand := 2; cand <= opts.Space.NRMax; cand *= 2 {
			if r, ok := evalAt(float64(cand), vssc, npre, nwr); ok {
				changed = improve(r, cand, vssc, npre, nwr) || changed
			}
		}
		for v := 0.0; v >= opts.Space.VSSCMin-1e-9; v -= opts.Space.VSSCStep {
			if opts.Method == M1 && v != 0 {
				break
			}
			if r, ok := evalAt(float64(nr), v, npre, nwr); ok {
				changed = improve(r, nr, v, npre, nwr) || changed
			}
		}
		for np := 1; np <= opts.Space.NpreMax; np++ {
			if r, ok := evalAt(float64(nr), vssc, np, nwr); ok {
				changed = improve(r, nr, vssc, np, nwr) || changed
			}
		}
		for nw := 1; nw <= opts.Space.NwrMax; nw++ {
			if r, ok := evalAt(float64(nr), vssc, npre, nw); ok {
				changed = improve(r, nr, vssc, npre, nw) || changed
			}
		}
		if !changed {
			break
		}
	}
	if bestR == nil {
		return nil, fmt.Errorf("core: greedy search found no feasible design for %d bits", opts.CapacityBits)
	}
	return &Optimum{Best: DesignPoint{Design: bestD, Result: bestR}, Evaluated: evalCount, Skipped: skip}, nil
}
