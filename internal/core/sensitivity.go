package core

import (
	"fmt"
	"math"

	"sramco/internal/array"
)

// Sensitivity reports how the objective responds to a unit move of one
// search variable away from a design point: the neighbor objectives
// relative to the point's own. Values are NaN when the neighbor falls
// outside the search space or is infeasible.
//
// At a true optimum every finite entry is ≥ 1 — SensitivityAt therefore
// doubles as a local-optimality certificate for the exhaustive search, and
// as a design-insight table ("which knob is the design most sensitive to").
type Sensitivity struct {
	Variable string  // "n_r", "V_SSC", "N_pre", "N_wr"
	DownRel  float64 // objective(neighbor with smaller value) / objective(point)
	UpRel    float64 // objective(neighbor with larger value) / objective(point)
}

// SensitivityAt evaluates the four search variables' neighbors around a
// design point under the given options (objective, activity, space).
func (f *Framework) SensitivityAt(opts Options, at DesignPoint) ([]Sensitivity, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	tech, err := f.ArrayTech(opts.Flavor)
	if err != nil {
		return nil, err
	}
	cc, ok := f.Cells[opts.Flavor]
	if !ok {
		return nil, fmt.Errorf("core: flavor %v not characterized", opts.Flavor)
	}
	if opts.hybridOn() || at.Design.Groups != 0 {
		// The neighborhood evaluator prepares a single-flavor chunk; a hybrid
		// point would silently evaluate under the wrong cell model.
		return nil, fmt.Errorf("core: sensitivity analysis does not support hybrid designs")
	}
	base := opts.Objective(at.Result)
	if base <= 0 {
		return nil, fmt.Errorf("core: non-positive base objective %g", base)
	}
	// One validated engine for the whole neighborhood; neighbors along the
	// N_pre/N_wr axes share the center's chunk, so Prepare memo-hits.
	ev, err := array.NewEvaluator(tech, opts.Activity)
	if err != nil {
		return nil, err
	}

	eval := func(mutate func(*array.Design) bool) float64 {
		d := at.Design
		if !mutate(&d) {
			return math.NaN()
		}
		// Re-derive the access width for the mutated column count.
		w := opts.W
		if d.Geom.NC < w {
			w = d.Geom.NC
		}
		d.Geom.W = w
		if d.Geom.Validate() != nil {
			return math.NaN()
		}
		if cc.RSNMAt(d.VSSC) < f.Delta-1e-9 {
			return math.NaN()
		}
		if ev.Prepare(d.Geom, d.VDDC, d.VSSC, d.VWL) != nil {
			return math.NaN()
		}
		r, err := ev.Eval(d.Geom.Npre, d.Geom.Nwr)
		if err != nil || !r.RailsSettleInTime {
			return math.NaN()
		}
		return opts.Objective(r) / base
	}

	bits := at.Design.Geom.Bits()
	out := []Sensitivity{
		{
			Variable: "n_r",
			DownRel: eval(func(d *array.Design) bool {
				if d.Geom.NR/2 < 2 {
					return false
				}
				d.Geom.NR /= 2
				d.Geom.NC = bits / d.Geom.NR
				return d.Geom.NC <= opts.Space.NCMax
			}),
			UpRel: eval(func(d *array.Design) bool {
				if d.Geom.NR*2 > opts.Space.NRMax {
					return false
				}
				d.Geom.NR *= 2
				if bits%d.Geom.NR != 0 {
					return false
				}
				d.Geom.NC = bits / d.Geom.NR
				return d.Geom.NC >= 1
			}),
		},
		{
			Variable: "V_SSC",
			DownRel: eval(func(d *array.Design) bool {
				if opts.Method == M1 {
					return false // VSSC is not a free variable under M1
				}
				d.VSSC -= opts.Space.VSSCStep
				return d.VSSC >= opts.Space.VSSCMin-1e-9
			}),
			UpRel: eval(func(d *array.Design) bool {
				if opts.Method == M1 {
					return false
				}
				d.VSSC += opts.Space.VSSCStep
				return d.VSSC <= 1e-9
			}),
		},
		{
			Variable: "N_pre",
			DownRel: eval(func(d *array.Design) bool {
				d.Geom.Npre--
				return d.Geom.Npre >= 1
			}),
			UpRel: eval(func(d *array.Design) bool {
				d.Geom.Npre++
				return d.Geom.Npre <= opts.Space.NpreMax
			}),
		},
		{
			Variable: "N_wr",
			DownRel: eval(func(d *array.Design) bool {
				d.Geom.Nwr--
				return d.Geom.Nwr >= 1
			}),
			UpRel: eval(func(d *array.Design) bool {
				d.Geom.Nwr++
				return d.Geom.Nwr <= opts.Space.NwrMax
			}),
		},
	}
	return out, nil
}
