package core

import (
	"math"
	"testing"

	"sramco/internal/device"
)

func TestOptimizeBankedSingleBankMatchesPlain(t *testing.T) {
	f := paperFramework(t)
	opts := Options{CapacityBits: 32768, Flavor: device.HVT, Method: M2}
	plain, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	banked, err := f.OptimizeBanked(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if banked.Banks != 1 {
		t.Fatalf("maxBanks=1 chose %d banks", banked.Banks)
	}
	if banked.BankDecDelay != 0 || banked.WireDelay != 0 || banked.WireEnergy != 0 {
		t.Error("single bank must have no global path")
	}
	if math.Abs(banked.DArray-plain.Best.Result.DArray) > 1e-18 {
		t.Errorf("single-bank delay %g vs plain %g", banked.DArray, plain.Best.Result.DArray)
	}
	if math.Abs(banked.EDP-plain.Best.Result.EDP)/plain.Best.Result.EDP > 1e-9 {
		t.Errorf("single-bank EDP %g vs plain %g", banked.EDP, plain.Best.Result.EDP)
	}
}

func TestOptimizeBankedLargeCapacity(t *testing.T) {
	f := paperFramework(t)
	opts := Options{CapacityBits: 64 * 1024 * 8, Flavor: device.HVT, Method: M2}
	best, err := f.OptimizeBanked(opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if best.Banks < 1 || best.Banks > 8 {
		t.Fatalf("banks = %d", best.Banks)
	}
	if best.Banks*best.PerBank.Design.Geom.Bits() != opts.CapacityBits {
		t.Errorf("capacity mismatch: %d banks × %d bits", best.Banks, best.PerBank.Design.Geom.Bits())
	}
	// Composition invariant.
	want := best.BankDecDelay + best.WireDelay + best.PerBank.Result.DArray
	if math.Abs(best.DArray-want) > 1e-18 {
		t.Error("banked delay composition violated")
	}
	if best.EDP <= 0 || math.IsNaN(best.EDP) {
		t.Fatalf("EDP = %g", best.EDP)
	}
	// The chosen point must be the best of the sweep.
	sweep, err := f.BankSweep(opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) < 2 {
		t.Fatalf("sweep has %d entries", len(sweep))
	}
	for _, s := range sweep {
		if s.EDP < best.EDP*(1-1e-9) {
			t.Errorf("sweep point with %d banks beats the chosen optimum", s.Banks)
		}
		if s.Banks > 1 && (s.WireDelay <= 0 || s.WireEnergy <= 0) {
			t.Errorf("%d banks: missing global path costs", s.Banks)
		}
	}
}

func TestOptimizeBankedValidation(t *testing.T) {
	f := paperFramework(t)
	if _, err := f.OptimizeBanked(Options{CapacityBits: 32768, Flavor: device.HVT}, 0); err == nil {
		t.Error("maxBanks=0 accepted")
	}
}
