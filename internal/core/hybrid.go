package core

import (
	"fmt"
	"math"

	"sramco/internal/array"
	"sramco/internal/device"
)

// maskSpec is one hybrid group-assignment class of a search: the group mask
// plus everything that depends only on which flavors are present — the
// pinned rails and the per-flavor read-stability needs. A global-flavor
// search has exactly one spec, the all-clear mask with the base flavor's
// rails, so the degenerate search walks literally the same (rails, mask)
// unit the pre-hybrid engine did.
type maskSpec struct {
	mask      uint32
	vddc, vwl float64
	needBase  bool // base flavor populates at least one group
	needAlt   bool // alternate flavor populates at least one group
}

// otherFlavor returns the hybrid search's alternate flavor.
func otherFlavor(fl device.Flavor) device.Flavor { return fl.Other() }

// altTerms assembles the alternate flavor's cell terms for the evaluator.
func altTerms(cc *CellChar) array.FlavorTerms {
	return array.FlavorTerms{
		LeakCell:        cc.Leak,
		IRead:           cc.IRead,
		WriteDelayCell:  cc.WriteDelay,
		WriteEnergyCell: cc.WriteEnergy,
	}
}

// maskSpecs enumerates the group-assignment classes of a search in
// deterministic mask order (0 … 2^G−1), together with the alternate
// flavor's terms and characterization (nil for a global-flavor search).
//
// Rails per class: a pure mask keeps its own flavor's starred rails exactly
// (so pure-mask hybrid units are bit-compatible with the pure searches); a
// mixed mask must satisfy both flavors' yield stars simultaneously, so each
// shared rail takes the per-rail max (under M1 the single extra rail is the
// max of all four stars, which the per-flavor M1 rails already encode).
func (f *Framework) maskSpecs(opts *Options) ([]maskSpec, array.FlavorTerms, *CellChar, error) {
	vddc, vwl, err := f.Rails(opts.Flavor, opts.Method)
	if err != nil {
		return nil, array.FlavorTerms{}, nil, err
	}
	if !opts.hybridOn() {
		return []maskSpec{{mask: 0, vddc: vddc, vwl: vwl, needBase: true}}, array.FlavorTerms{}, nil, nil
	}
	alt := otherFlavor(opts.Flavor)
	altCC, ok := f.Cells[alt]
	if !ok {
		return nil, array.FlavorTerms{}, nil, fmt.Errorf("core: hybrid alternate flavor %v not characterized", alt)
	}
	altVDDC, altVWL, err := f.Rails(alt, opts.Method)
	if err != nil {
		return nil, array.FlavorTerms{}, nil, err
	}
	mixVDDC, mixVWL := math.Max(vddc, altVDDC), math.Max(vwl, altVWL)
	full := uint32(1)<<uint(opts.HybridGroups) - 1
	specs := make([]maskSpec, 0, full+1)
	for mask := uint32(0); mask <= full; mask++ {
		s := maskSpec{mask: mask, needBase: mask != full, needAlt: mask != 0}
		switch mask {
		case 0:
			s.vddc, s.vwl = vddc, vwl
		case full:
			s.vddc, s.vwl = altVDDC, altVWL
		default:
			s.vddc, s.vwl = mixVDDC, mixVWL
		}
		specs = append(specs, s)
	}
	return specs, altTerms(altCC), altCC, nil
}

// HybridAltTerms returns the evaluator cell terms of base's hybrid alternate
// flavor, for evaluating an explicit hybrid design point outside a search.
func (f *Framework) HybridAltTerms(base device.Flavor) (array.FlavorTerms, error) {
	alt := otherFlavor(base)
	altCC, ok := f.Cells[alt]
	if !ok {
		return array.FlavorTerms{}, fmt.Errorf("core: hybrid alternate flavor %v not characterized", alt)
	}
	return altTerms(altCC), nil
}

// specRSNMOK reports whether every flavor present in the class meets the
// read-stability constraint at the VSSC level (each flavor is judged by its
// own characterization, as in the pure searches; altCC may be nil when the
// class never needs it).
func specRSNMOK(s maskSpec, vssc float64, baseCC, altCC *CellChar, delta float64) bool {
	if s.needBase && baseCC.RSNMAt(vssc) < delta-1e-9 {
		return false
	}
	if s.needAlt && altCC.RSNMAt(vssc) < delta-1e-9 {
		return false
	}
	return true
}

// muxCandidates enumerates the sense-amp sharing ratios searched for one
// access width: the unshared organization first (encoded 0, the
// wire.Geometry zero value, so degenerate designs serialize unchanged),
// then powers of two up to min(MuxMax, width).
func muxCandidates(s SearchSpace, width int) []int {
	out := []int{0}
	for m := 2; m <= s.MuxMax && m <= width; m *= 2 {
		out = append(out, m)
	}
	return out
}
