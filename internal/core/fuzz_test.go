package core

import (
	"math"
	"testing"

	"sramco/internal/array"
	"sramco/internal/device"
)

// FuzzOptionsNormalize drives Options.normalize with arbitrary field values.
// Every search entry point funnels through normalize, so the contract is:
// never panic, and on success the options the searchers read are in their
// valid domains (power-of-two capacity, in-range activity, usable width,
// non-nil objective, populated search space).
func FuzzOptionsNormalize(f *testing.F) {
	f.Add(8192, uint8(0), uint8(0), 0.0, 0.0, 0, false)     // all defaults
	f.Add(128*1024, uint8(1), uint8(1), 0.5, 0.9, 64, true) // typical explicit run
	f.Add(2, uint8(0), uint8(0), 0.0, 0.0, 0, false)        // below minimum capacity
	f.Add(-8192, uint8(0), uint8(0), 0.0, 0.0, 0, false)    // negative capacity
	f.Add(8192+1, uint8(0), uint8(0), 0.0, 0.0, 0, false)   // not a power of two
	f.Add(8192, uint8(0), uint8(0), 2.0, 0.5, 0, false)     // activity out of range
	f.Add(8192, uint8(0), uint8(0), math.NaN(), 0.5, 0, false)
	f.Add(8192, uint8(0), uint8(0), 0.5, math.Inf(1), 0, false)
	f.Add(8192, uint8(0), uint8(0), 0.5, 0.5, -8, false) // negative width
	f.Add(16, uint8(0), uint8(0), 0.5, 0.5, 0, false)    // default width exceeds capacity
	f.Add(8192, uint8(7), uint8(9), 0.5, 0.5, 32, true)  // out-of-range enums

	f.Fuzz(func(t *testing.T, capacity int, flavor, method uint8, alpha, beta float64, w int, segs bool) {
		o := Options{
			CapacityBits: capacity,
			Flavor:       device.Flavor(flavor),
			Method:       Method(method),
			Activity:     array.Activity{Alpha: alpha, Beta: beta},
			W:            w,
			SearchWLSegs: segs,
		}
		if err := o.normalize(); err != nil {
			return // rejection is fine; panicking or accepting junk is not
		}
		if o.CapacityBits < 4 || o.CapacityBits&(o.CapacityBits-1) != 0 {
			t.Errorf("normalize accepted capacity %d", o.CapacityBits)
		}
		if err := o.Activity.Validate(); err != nil {
			t.Errorf("normalize accepted activity: %v", err)
		}
		if o.W <= 0 || o.W > o.CapacityBits {
			t.Errorf("normalize accepted W = %d for capacity %d", o.W, o.CapacityBits)
		}
		if o.Objective == nil {
			t.Error("normalize left Objective nil")
		}
		if o.Space == (SearchSpace{}) {
			t.Error("normalize left Space empty")
		}
	})
}
