package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"sramco/internal/array"
	"sramco/internal/obs"
	"sramco/internal/wire"
)

// evalFunc matches array.Evaluate; Options.evalHook substitutes it in tests
// to inject model errors and observe the explored space.
type evalFunc func(*array.Tech, array.Design, array.Activity) (*array.Result, error)

// rowCand is one feasible array organization: a power-of-two row count with
// an integral column count inside the search space.
type rowCand struct{ nr, nc int }

// chunk is one shard of the exhaustive search: a single (row organization,
// VSSC level) pair. Sharding on the cross product instead of row counts
// alone keeps every core busy — a 16 KB capacity has only four row
// candidates but ~100 chunks.
type chunk struct {
	rc   rowCand
	vssc float64
}

// vsscCandidates enumerates the negative-Gnd sweep (a single zero level
// under M1).
func vsscCandidates(m Method, s SearchSpace) []float64 {
	if m == M1 {
		return []float64{0}
	}
	var out []float64
	for v := 0.0; v >= s.VSSCMin-1e-9; v -= s.VSSCStep {
		out = append(out, v)
	}
	return out
}

// rowCandidates enumerates the power-of-two organizations of a capacity
// within the search space, in increasing row count.
func rowCandidates(capacityBits int, s SearchSpace) []rowCand {
	var rows []rowCand
	for nr := 2; nr <= s.NRMax; nr *= 2 {
		if capacityBits%nr != 0 {
			continue
		}
		nc := capacityBits / nr
		if nc < 1 || nc > s.NCMax {
			continue
		}
		rows = append(rows, rowCand{nr, nc})
	}
	return rows
}

// segCandidates enumerates the wordline segmentations searched for one
// organization: flat only, plus 2/4/8 segments wide enough for the access
// width when divided-wordline search is enabled.
func segCandidates(opts *Options, nc, width int) []int {
	segs := []int{1}
	if opts.SearchWLSegs {
		for s := 2; s <= 8 && nc/s >= width; s *= 2 {
			segs = append(segs, s)
		}
	}
	return segs
}

// accessWidth clamps the access width to the column count (narrow arrays
// access one full row — Table 4's 128 B case).
func accessWidth(w, nc int) int {
	if nc < w {
		return nc
	}
	return w
}

// designLess is the total order on design tuples used to break objective
// ties, making the parallel reduction deterministic: prefer fewer rows, then
// the weaker (less negative) Gnd assist, then fewer wordline segments, then
// fewer precharger fins, then fewer write-buffer fins.
func designLess(a, b array.Design) bool {
	if a.Geom.NR != b.Geom.NR {
		return a.Geom.NR < b.Geom.NR
	}
	if a.VSSC != b.VSSC {
		return a.VSSC > b.VSSC
	}
	if as, bs := a.Geom.Segments(), b.Geom.Segments(); as != bs {
		return as < bs
	}
	if a.Geom.Npre != b.Geom.Npre {
		return a.Geom.Npre < b.Geom.Npre
	}
	return a.Geom.Nwr < b.Geom.Nwr
}

// betterPoint reports whether the candidate beats the incumbent: strictly
// lower objective, or an equal objective with a canonically smaller design
// tuple. The comparison is a total order, so folding points in any order —
// any worker count, any scheduling — reaches the same minimum.
func betterPoint(cand *DesignPoint, candObj float64, inc *DesignPoint, incObj float64) bool {
	if inc == nil {
		return true
	}
	if candObj != incObj {
		return candObj < incObj
	}
	return designLess(cand.Design, inc.Design)
}

// searchWorker accumulates one worker's partial view of the search.
type searchWorker struct {
	best  *DesignPoint
	obj   float64
	stats SearchStats // Evaluated / SkippedGeom / SkippedRails only
	err   error
}

// OptimizeContext is Optimize with cancellation: the search stops at the
// first model error or when ctx is done, whichever comes first, and the
// returned *SearchError carries the counts accumulated by every worker up to
// the abort together with the causal error.
//
// The search shards (row organization × VSSC) chunks over GOMAXPROCS
// workers and reduces worker-local optima with a total order (objective,
// then the design tuple), so the returned Optimum — design, result and
// counts — is bit-identical for any GOMAXPROCS.
func (f *Framework) OptimizeContext(ctx context.Context, opts Options) (*Optimum, error) {
	start := time.Now()
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	tech, err := f.ArrayTech(opts.Flavor)
	if err != nil {
		return nil, err
	}
	cc := f.Cells[opts.Flavor]
	vddc, vwl, err := f.Rails(opts.Flavor, opts.Method)
	if err != nil {
		return nil, err
	}
	// Yield feasibility that does not depend on the searched variables:
	// HSNM at nominal and WM at VWL* are met by construction of the starred
	// rails; HSNM is checked here.
	if cc.HSNM < f.Delta {
		return nil, fmt.Errorf("core: 6T-%v HSNM %.3f below δ=%.3f at Vdd=%.3f", opts.Flavor, cc.HSNM, f.Delta, f.Vdd)
	}
	eval := opts.evalHook
	if eval == nil {
		eval = array.Evaluate
	}

	rows := rowCandidates(opts.CapacityBits, opts.Space)
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: %w: no feasible organization for %d bits within the search space", ErrInfeasible, opts.CapacityBits)
	}

	var stats SearchStats
	// Read-stability feasibility depends on VSSC alone: prune infeasible
	// sweep levels once, up front, instead of per worker per row.
	var feasVSSC []float64
	for _, v := range vsscCandidates(opts.Method, opts.Space) {
		if cc.RSNMAt(v) < f.Delta-1e-9 {
			stats.PrunedVSSC++
			continue
		}
		feasVSSC = append(feasVSSC, v)
	}
	if stats.PrunedVSSC > 0 {
		for _, rc := range rows {
			width := accessWidth(opts.W, rc.nc)
			stats.SkippedRSNM += stats.PrunedVSSC * len(segCandidates(&opts, rc.nc, width)) *
				opts.Space.NpreMax * opts.Space.NwrMax
		}
	}
	if len(feasVSSC) == 0 {
		return nil, &SearchError{
			Stats: finishStats(stats, start, 0),
			Cause: fmt.Errorf("%w: every VSSC level fails the read-stability constraint", ErrInfeasible),
		}
	}

	chunks := make([]chunk, 0, len(rows)*len(feasVSSC))
	for _, rc := range rows {
		for _, vssc := range feasVSSC {
			chunks = append(chunks, chunk{rc: rc, vssc: vssc})
		}
	}
	stats.Chunks = len(chunks)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}

	mSearchRuns.Inc()
	gSearchChunks.Set(float64(len(chunks)))
	runSpan := obs.StartSpan("core.search")
	runSpan.Int("capacity_bits", int64(opts.CapacityBits))
	runSpan.Str("method", opts.Method.String())
	runSpan.Int("chunks", int64(len(chunks)))
	runSpan.Int("workers", int64(workers))

	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	jobs := make(chan chunk, len(chunks))
	for _, c := range chunks {
		jobs <- c
	}
	close(jobs)

	slots := make([]searchWorker, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot *searchWorker) {
			defer wg.Done()
			slot.obj = math.Inf(1)
			for c := range jobs {
				if sctx.Err() != nil {
					return
				}
				chunkStart := time.Now()
				sp := obs.StartSpan("core.search.chunk")
				evals0 := slot.stats.Evaluated
				flushed := evals0
				// endChunk publishes the chunk's evaluation count to the
				// live counter and closes its trace span; it runs on every
				// exit from the chunk, including cancellation and error.
				endChunk := func(completed bool) {
					mSearchEvaluated.Add(int64(slot.stats.Evaluated - flushed))
					flushed = slot.stats.Evaluated
					if completed {
						mSearchChunks.Inc()
						hChunkDur.Observe(time.Since(chunkStart))
					}
					sp.Int("nr", int64(c.rc.nr))
					sp.Int("nc", int64(c.rc.nc))
					sp.Float("vssc", c.vssc)
					sp.Int("evaluated", int64(slot.stats.Evaluated-evals0))
					sp.End()
				}
				nr, nc := c.rc.nr, c.rc.nc
				width := accessWidth(opts.W, nc)
				for _, segs := range segCandidates(&opts, nc, width) {
					for npre := 1; npre <= opts.Space.NpreMax; npre++ {
						if sctx.Err() != nil {
							endChunk(false)
							return
						}
						for nwr := 1; nwr <= opts.Space.NwrMax; nwr++ {
							d := array.Design{
								Geom: wire.Geometry{NR: nr, NC: nc, W: width, Npre: npre, Nwr: nwr, WLSegs: segs},
								VDDC: vddc, VSSC: c.vssc, VWL: vwl,
							}
							if d.Geom.Validate() != nil {
								slot.stats.SkippedGeom++
								continue
							}
							r, err := eval(tech, d, opts.Activity)
							if err != nil {
								slot.err = fmt.Errorf("core: evaluating n_r=%d n_c=%d N_pre=%d N_wr=%d VSSC=%g: %w",
									nr, nc, npre, nwr, c.vssc, err)
								cancel(slot.err)
								endChunk(false)
								return
							}
							slot.stats.Evaluated++
							if !r.RailsSettleInTime {
								slot.stats.SkippedRails++
								continue
							}
							// Allocate the candidate point only when it wins,
							// keeping the hot loop free of per-point garbage.
							if v := opts.Objective(r); slot.best == nil || v < slot.obj ||
								(v == slot.obj && designLess(d, slot.best.Design)) {
								slot.best, slot.obj = &DesignPoint{Design: d, Result: r}, v
							}
						}
						// Flush the live counter once per N_wr sweep — cheap
						// enough for the hot loop, fresh enough for -progress.
						mSearchEvaluated.Add(int64(slot.stats.Evaluated - flushed))
						flushed = slot.stats.Evaluated
					}
				}
				endChunk(true)
			}
		}(&slots[w])
	}
	wg.Wait()

	var best *DesignPoint
	obj := math.Inf(1)
	for i := range slots {
		stats.addWorker(slots[i].stats)
		if slots[i].best != nil && betterPoint(slots[i].best, slots[i].obj, best, obj) {
			best, obj = slots[i].best, slots[i].obj
		}
	}
	stats = finishStats(stats, start, workers)
	runSpan.Int("evaluated", int64(stats.Evaluated))
	runSpan.End()

	if cause := context.Cause(sctx); cause != nil {
		return nil, &SearchError{Stats: stats, Cause: cause}
	}
	if best == nil {
		return nil, fmt.Errorf("core: %w for %d bits (all %d candidates rejected)",
			ErrInfeasible, opts.CapacityBits, stats.SkippedTotal())
	}
	return &Optimum{Best: *best, Evaluated: stats.Evaluated, Skipped: stats.SkippedTotal(), Stats: stats}, nil
}

func finishStats(s SearchStats, start time.Time, workers int) SearchStats {
	s.Workers = workers
	s.Wall = time.Since(start)
	return s
}
