package core

import (
	"math"
	"testing"

	"sramco/internal/array"
	"sramco/internal/device"
)

// TestSensitivityCertifiesLocalOptimality: every finite neighbor of the
// exhaustive optimum must have a relative objective ≥ 1 — the strongest
// direct check that the search really found a (local, hence with exhaustive
// enumeration global) minimum.
func TestSensitivityCertifiesLocalOptimality(t *testing.T) {
	f := paperFramework(t)
	for _, flavor := range []device.Flavor{device.LVT, device.HVT} {
		opts := Options{CapacityBits: 32768, Flavor: flavor, Method: M2}
		opt, err := f.Optimize(opts)
		if err != nil {
			t.Fatal(err)
		}
		sens, err := f.SensitivityAt(opts, opt.Best)
		if err != nil {
			t.Fatal(err)
		}
		if len(sens) != 4 {
			t.Fatalf("got %d sensitivity rows", len(sens))
		}
		for _, s := range sens {
			for dir, rel := range map[string]float64{"down": s.DownRel, "up": s.UpRel} {
				if math.IsNaN(rel) {
					continue // boundary or infeasible neighbor
				}
				if rel < 1-1e-9 {
					t.Errorf("%v %s %s neighbor beats the optimum: rel=%.6f", flavor, s.Variable, dir, rel)
				}
			}
		}
	}
}

func TestSensitivityM1FreezesVSSC(t *testing.T) {
	f := paperFramework(t)
	opts := Options{CapacityBits: 8192, Flavor: device.HVT, Method: M1}
	opt, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	sens, err := f.SensitivityAt(opts, opt.Best)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sens {
		if s.Variable == "V_SSC" {
			if !math.IsNaN(s.DownRel) || !math.IsNaN(s.UpRel) {
				t.Errorf("M1 VSSC sensitivity should be NaN, got %g/%g", s.DownRel, s.UpRel)
			}
		}
	}
}

func TestSensitivityDetectsNonOptimum(t *testing.T) {
	f := paperFramework(t)
	opts := Options{CapacityBits: 8192, Flavor: device.HVT, Method: M2}
	opt, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the optimum: freeze N_pre at 1 and re-evaluate. Moving N_pre
	// up from this deliberately bad point must improve the objective.
	d := opt.Best.Design
	d.Geom.Npre = 1
	tech, err := f.ArrayTech(device.HVT)
	if err != nil {
		t.Fatal(err)
	}
	r, err := array.Evaluate(tech, d, array.Activity{Alpha: DefaultAlpha, Beta: DefaultBeta})
	if err != nil {
		t.Fatal(err)
	}
	sens, err := f.SensitivityAt(opts, DesignPoint{Design: d, Result: r})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sens {
		if s.Variable == "N_pre" {
			if !(s.UpRel < 1) {
				t.Errorf("N_pre up from a starved design should improve: rel=%g", s.UpRel)
			}
		}
	}
}
