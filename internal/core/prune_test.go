package core

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"sramco/internal/device"
)

// TestBranchAndBoundParity is the correctness gate of the branch-and-bound
// tentpole: across the standard capacity grid, both flavors and both rail
// methods, the pruned search must return the exact DesignPoint — design and
// every Result field bit-identical — that full enumeration
// (Options.DisableBounds) finds, while satisfying the accounting invariant
//
//	Evaluated + SkippedRSNM + PrunedBound == levels × validCombosPerLevel.
func TestBranchAndBoundParity(t *testing.T) {
	f := paperFramework(t)
	for _, kb := range []int{1, 2, 4, 8, 16} {
		for _, flavor := range []device.Flavor{device.LVT, device.HVT} {
			for _, method := range []Method{M1, M2} {
				opts := Options{CapacityBits: kb * 1024 * 8, Flavor: flavor, Method: method}
				pruned, err := f.Optimize(opts)
				if err != nil {
					t.Fatalf("%dKB %v %v pruned: %v", kb, flavor, method, err)
				}
				full := opts
				full.DisableBounds = true
				ref, err := f.Optimize(full)
				if err != nil {
					t.Fatalf("%dKB %v %v full: %v", kb, flavor, method, err)
				}
				if !reflect.DeepEqual(pruned.Best, ref.Best) {
					t.Errorf("%dKB %v %v: pruned optimum diverges from full enumeration:\npruned %+v\nfull   %+v",
						kb, flavor, method, pruned.Best, ref.Best)
				}

				normOpts := opts
				if err := normOpts.normalize(); err != nil {
					t.Fatal(err)
				}
				rows := rowCandidates(normOpts.CapacityBits, normOpts.Space)
				levels := len(vsscCandidates(normOpts.Method, normOpts.Space))
				valid := validCombosPerLevel(&normOpts, rows)
				st := pruned.Stats
				if got, want := st.Evaluated+st.SkippedRSNM+st.PrunedBound, levels*valid; got != want {
					t.Errorf("%dKB %v %v: Evaluated (%d) + SkippedRSNM (%d) + PrunedBound (%d) = %d, want %d",
						kb, flavor, method, st.Evaluated, st.SkippedRSNM, st.PrunedBound, got, want)
				}
				if st.PrunedBound == 0 {
					t.Errorf("%dKB %v %v: bound pruned nothing", kb, flavor, method)
				}
				// Rail-infeasible rectangles are pruned before evaluation in
				// the bounded search; SkippedRails counts evaluated points
				// only and must stay zero.
				if st.SkippedRails != 0 {
					t.Errorf("%dKB %v %v: bounded search evaluated %d rail-infeasible points",
						kb, flavor, method, st.SkippedRails)
				}
				// Full enumeration must not have pruned anything.
				if ref.Stats.PrunedBound != 0 {
					t.Errorf("%dKB %v %v: DisableBounds still pruned %d points",
						kb, flavor, method, ref.Stats.PrunedBound)
				}
			}
		}
	}
}

// TestBranchAndBoundParityPareto extends the parity gate to the frontier
// search: the bounded sweep must return a bit-identical Pareto front —
// same points in the same order, every metric equal — as full enumeration.
func TestBranchAndBoundParityPareto(t *testing.T) {
	f := paperFramework(t)
	for _, tc := range []struct {
		kb     int
		flavor device.Flavor
		method Method
	}{
		{4, device.HVT, M2},
		{16, device.LVT, M1},
		{8, device.HVT, M1},
	} {
		opts := Options{CapacityBits: tc.kb * 1024 * 8, Flavor: tc.flavor, Method: tc.method}
		pruned, err := f.ParetoSearch(opts)
		if err != nil {
			t.Fatalf("%dKB %v %v pruned: %v", tc.kb, tc.flavor, tc.method, err)
		}
		full := opts
		full.DisableBounds = true
		ref, err := f.ParetoSearch(full)
		if err != nil {
			t.Fatalf("%dKB %v %v full: %v", tc.kb, tc.flavor, tc.method, err)
		}
		if len(pruned.Front) != len(ref.Front) {
			t.Fatalf("%dKB %v %v: pruned front has %d points, full %d",
				tc.kb, tc.flavor, tc.method, len(pruned.Front), len(ref.Front))
		}
		for i := range pruned.Front {
			if !reflect.DeepEqual(pruned.Front[i], ref.Front[i]) {
				t.Errorf("%dKB %v %v: frontier point %d diverges:\npruned %+v\nfull   %+v",
					tc.kb, tc.flavor, tc.method, i, pruned.Front[i], ref.Front[i])
			}
		}
		st := pruned.Stats
		if got, want := st.Evaluated+st.SkippedRSNM+st.PrunedBound, ref.Stats.Evaluated+ref.Stats.SkippedRSNM; got != want {
			t.Errorf("%dKB %v %v: bounded space (%d) does not reconcile with full enumeration (%d)",
				tc.kb, tc.flavor, tc.method, got, want)
		}
	}
}

// TestBranchAndBoundParityInfeasible pins the failure-path parity: when every
// candidate is rejected, the bounded and full searches must both surface
// ErrInfeasible — the seedless bounded path must not invent an optimum or
// mask the error.
func TestBranchAndBoundParityInfeasible(t *testing.T) {
	f := pruningFramework(t, 1) // every VSSC level fails read stability
	opts := Options{
		CapacityBits: 4096,
		Flavor:       device.HVT,
		Method:       M2,
		Space:        SearchSpace{VSSCMin: -0.03, VSSCStep: 0.01, NRMax: 1024, NCMax: 1024, NpreMax: 2, NwrMax: 2},
	}
	if _, err := f.Optimize(opts); err == nil {
		t.Fatal("pruned search of an infeasible space succeeded")
	}
	full := opts
	full.DisableBounds = true
	if _, err := f.Optimize(full); err == nil {
		t.Fatal("full search of an infeasible space succeeded")
	}
}

// TestAtomicMinNeverRegresses is the race gate for the published best-so-far
// (run with -race via make check): GOMAXPROCS publishers hammer the cell
// with random values while readers assert the loaded minimum is monotonically
// non-increasing and finally equals the true minimum of everything published.
func TestAtomicMinNeverRegresses(t *testing.T) {
	m := newAtomicMin()
	if v := m.Load(); !math.IsInf(v, 1) {
		t.Fatalf("initial value %v, want +Inf", v)
	}

	const publishers = 8
	const perPublisher = 2000
	var trueMin atomic.Uint64
	trueMin.Store(math.Float64bits(math.Inf(1)))
	stop := make(chan struct{})

	// Readers: the observed minimum must never increase.
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			last := math.Inf(1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := m.Load()
				if v > last {
					t.Errorf("best-so-far regressed: %v after %v", v, last)
					return
				}
				last = v
			}
		}()
	}

	var pubs sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubs.Add(1)
		go func(seed int64) {
			defer pubs.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perPublisher; i++ {
				v := rng.Float64()
				m.Publish(v)
				for {
					old := trueMin.Load()
					if v >= math.Float64frombits(old) ||
						trueMin.CompareAndSwap(old, math.Float64bits(v)) {
						break
					}
				}
			}
		}(int64(p) + 1)
	}
	pubs.Wait()
	close(stop)
	readers.Wait()

	if got, want := m.Load(), math.Float64frombits(trueMin.Load()); got != want {
		t.Errorf("final minimum %v, want %v", got, want)
	}
}
