// Package core implements the paper's contribution: the device-circuit-
// architecture co-optimization framework. Given an array capacity and a cell
// flavor, it pins the Vdd-boost and wordline-overdrive rails at the minimum
// levels that satisfy the yield constraint min(HSNM, RSNM, WM) ≥ δ, then
// exhaustively searches the remaining variables — negative-Gnd level V_SSC,
// row count n_r, precharger fins N_pre and write-buffer fins N_wr — for the
// design minimizing the energy-delay product (§4-§5).
//
// Two calibration modes are supported (DESIGN.md §2): TechPaper anchors
// cell-level quantities to the paper's published values for apples-to-apples
// reproduction of Table 4 / Fig. 7, while TechSimulated re-derives every
// quantity by running the bundled circuit simulator — the paper's own
// methodology executed end to end.
package core

import (
	"fmt"
	"math"

	"sramco/internal/array"
	"sramco/internal/cell"
	"sramco/internal/device"
	"sramco/internal/lut"
	"sramco/internal/num"
	"sramco/internal/periph"
	"sramco/internal/wire"
)

// Mode selects how cell-level anchor quantities are obtained.
type Mode int

const (
	// TechPaper pins VDDC*, VWL*, cell leakage and the HVT read-current law
	// to the values published in the paper (§5), simulating only what the
	// paper does not publish (the write-delay LUT and the LVT current law's
	// threshold).
	TechPaper Mode = iota
	// TechSimulated derives every anchor by circuit simulation of the
	// compact device models: minimum-yield rail search, leakage operating
	// points, and read-current / write-delay LUT characterization.
	TechSimulated
)

func (m Mode) String() string {
	if m == TechSimulated {
		return "simulated"
	}
	return "paper-calibrated"
}

// Paper-published anchors (§5, Table 4).
const (
	paperVDDCStarLVT = 0.640
	paperVDDCStarHVT = 0.550
	paperVWLStarLVT  = 0.490
	paperVWLStarHVT  = 0.540
	paperLeakLVT     = 1.692e-9
	paperLeakHVT     = 0.082e-9
	paperIReadA      = 1.3    // HVT read-current exponent
	paperIReadB      = 9.5e-5 // HVT read-current coefficient (A/V^1.3)
	paperIReadVt     = 0.335  // HVT read-current threshold (V)
)

// Default workload and constraint constants (§5).
const (
	DefaultVdd     = device.Vdd
	DefaultDeltaVS = 0.120
	DefaultAlpha   = 0.5
	DefaultBeta    = 0.5
	DefaultW       = 64
	DefaultDCDC    = 1.25
)

// DefaultDelta returns the minimum acceptable noise margin δ = 0.35·Vdd.
func DefaultDelta(vdd float64) float64 { return 0.35 * vdd }

// CellChar holds the characterized (or paper-anchored) cell quantities for
// one flavor.
type CellChar struct {
	Flavor device.Flavor

	VDDCStar float64 // minimum VDDC meeting the RSNM yield requirement
	VWLStar  float64 // minimum write VWL meeting the WM yield requirement

	HSNM float64 // hold SNM at nominal Vdd
	Leak float64 // standby leakage power per cell (W)

	// IRead(vddc, vssc) in amperes.
	IRead func(vddc, vssc float64) float64
	// WriteDelay(vwl) in seconds.
	WriteDelay func(vwl float64) float64
	// WriteEnergy is the cell-internal energy of one write (J).
	WriteEnergy float64

	// RSNMAt reports the read SNM at (VDDCStar, vssc); used for the
	// feasibility constraint across the VSSC sweep.
	RSNMAt func(vssc float64) float64
}

// Framework is a fully characterized co-optimization context.
type Framework struct {
	Mode    Mode
	Vdd     float64
	DeltaVS float64
	Delta   float64 // minimum acceptable margin δ

	Periph *periph.Tech
	Caps   wire.DeviceCaps
	Cells  map[device.Flavor]*CellChar

	DCDC       float64
	Accounting array.EnergyAccounting
}

// FrameworkOpts tunes framework construction; zero values select the
// paper's defaults.
type FrameworkOpts struct {
	Vdd        float64
	DeltaVS    float64
	Delta      float64
	DCDC       float64
	Accounting array.EnergyAccounting
}

// NewFramework characterizes the technology and both cell flavors under the
// given mode. Construction runs circuit simulations and takes a few seconds
// in TechSimulated mode.
func NewFramework(mode Mode, opts FrameworkOpts) (*Framework, error) {
	lib := device.Default7nm()
	vdd := opts.Vdd
	if vdd == 0 {
		vdd = DefaultVdd
	}
	dvs := opts.DeltaVS
	if dvs == 0 {
		dvs = DefaultDeltaVS
	}
	delta := opts.Delta
	if delta == 0 {
		delta = DefaultDelta(vdd)
	}
	dcdc := opts.DCDC
	if dcdc == 0 {
		dcdc = DefaultDCDC
	}
	p, err := periph.Characterize(lib, periph.CharacterizeOpts{Vdd: vdd, DeltaV: dvs})
	if err != nil {
		return nil, fmt.Errorf("core: peripheral characterization: %w", err)
	}
	f := &Framework{
		Mode:    mode,
		Vdd:     vdd,
		DeltaVS: dvs,
		Delta:   delta,
		Periph:  p,
		Caps: wire.DeviceCaps{
			Cdn: lib.NLVT.CdFin, Cdp: lib.PLVT.CdFin,
			Cgn: lib.NLVT.CgFin, Cgp: lib.PLVT.CgFin,
		},
		Cells:      make(map[device.Flavor]*CellChar, 2),
		DCDC:       dcdc,
		Accounting: opts.Accounting,
	}
	for _, flavor := range []device.Flavor{device.LVT, device.HVT} {
		cc, err := f.characterizeCell(lib, flavor)
		if err != nil {
			return nil, fmt.Errorf("core: characterizing 6T-%v: %w", flavor, err)
		}
		f.Cells[flavor] = cc
	}
	return f, nil
}

// characterizeCell builds the CellChar for one flavor under the framework's
// mode.
func (f *Framework) characterizeCell(lib *device.Library, flavor device.Flavor) (*CellChar, error) {
	c := &cell.Cell{Lib: lib, Flavor: flavor}
	cc := &CellChar{Flavor: flavor}

	hsnm, err := c.HoldSNM(f.Vdd)
	if err != nil {
		return nil, err
	}
	cc.HSNM = hsnm

	// Cell write delay LUT (simulated in both modes; the paper publishes
	// only the single 1.5 ps no-assist number).
	wdGrid := num.Linspace(f.Vdd, f.Vdd+0.25, 6)
	wdTab, err := lut.Build1D(fmt.Sprintf("writeDelay-%v", flavor), wdGrid, func(vwl float64) (float64, error) {
		b := cell.NominalWrite(f.Vdd)
		b.VWL = vwl
		return c.WriteDelay(b)
	})
	if err != nil {
		return nil, err
	}
	cc.WriteDelay = wdTab.Eval
	cc.WriteEnergy = 2 * c.StorageNodeCap() * f.Vdd * f.Vdd

	switch f.Mode {
	case TechPaper:
		if flavor == device.LVT {
			cc.VDDCStar, cc.VWLStar, cc.Leak = paperVDDCStarLVT, paperVWLStarLVT, paperLeakLVT
			// The paper publishes no LVT current law; use the paper's
			// functional form with the calibrated LVT threshold, scaled to
			// the library's 2× ION relation at the nominal read condition.
			vtL := lib.NLVT.Vt0
			iHVTnom := paperIReadB * math.Pow(f.Vdd-paperIReadVt, paperIReadA)
			bL := 2 * iHVTnom / math.Pow(f.Vdd-vtL, paperIReadA)
			cc.IRead = func(vddc, vssc float64) float64 {
				return bL * math.Pow(math.Max(vddc-vssc-vtL, 1e-6), paperIReadA)
			}
		} else {
			cc.VDDCStar, cc.VWLStar, cc.Leak = paperVDDCStarHVT, paperVWLStarHVT, paperLeakHVT
			cc.IRead = func(vddc, vssc float64) float64 {
				return paperIReadB * math.Pow(math.Max(vddc-vssc-paperIReadVt, 1e-6), paperIReadA)
			}
		}
		// The paper establishes feasibility of the full VSSC range at the
		// starred rails (Fig. 3(b)-(c)); the margin is δ by construction at
		// VSSC = 0 and does not degrade above -240 mV.
		cc.RSNMAt = func(vssc float64) float64 { return f.Delta }

	case TechSimulated:
		leak, err := c.LeakagePower(f.Vdd)
		if err != nil {
			return nil, err
		}
		cc.Leak = leak
		vddcStar, err := c.MinVDDCForReadSNM(cell.NominalRead(f.Vdd), f.Delta, f.Vdd+0.30)
		if err != nil {
			return nil, err
		}
		cc.VDDCStar = vddcStar
		vwlStar, err := c.MinVWLForWriteMargin(cell.NominalWrite(f.Vdd), f.Delta, f.Vdd+0.30)
		if err != nil {
			return nil, err
		}
		cc.VWLStar = vwlStar

		iTab, err := lut.Build2D(fmt.Sprintf("iread-%v", flavor),
			num.Linspace(f.Vdd, f.Vdd+0.25, 6),
			num.Linspace(-0.26, 0, 7),
			func(vddc, vssc float64) (float64, error) {
				b := cell.ReadBias{Vdd: f.Vdd, VDDC: vddc, VSSC: vssc, VWL: f.Vdd}
				return c.ReadCurrent(b)
			})
		if err != nil {
			return nil, err
		}
		cc.IRead = iTab.Eval

		rsnmTab, err := lut.Build1D(fmt.Sprintf("rsnm-%v", flavor),
			[]float64{-0.26, -0.13, 0},
			func(vssc float64) (float64, error) {
				b := cell.ReadBias{Vdd: f.Vdd, VDDC: cc.VDDCStar, VSSC: vssc, VWL: f.Vdd}
				return c.ReadSNM(b)
			})
		if err != nil {
			return nil, err
		}
		cc.RSNMAt = rsnmTab.Eval

	default:
		return nil, fmt.Errorf("core: unknown mode %d", f.Mode)
	}
	return cc, nil
}

// ArrayTech assembles the array-model technology view for one flavor.
func (f *Framework) ArrayTech(flavor device.Flavor) (*array.Tech, error) {
	cc, ok := f.Cells[flavor]
	if !ok {
		return nil, fmt.Errorf("core: flavor %v not characterized", flavor)
	}
	return &array.Tech{
		Periph:          f.Periph,
		Caps:            f.Caps,
		Vdd:             f.Vdd,
		DeltaVS:         f.DeltaVS,
		LeakCell:        cc.Leak,
		IRead:           cc.IRead,
		WriteDelayCell:  cc.WriteDelay,
		WriteEnergyCell: cc.WriteEnergy,
		DCDCFactor:      f.DCDC,
		Accounting:      f.Accounting,
	}, nil
}
