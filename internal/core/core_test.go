package core

import (
	"math"
	"sync"
	"testing"

	"sramco/internal/array"
	"sramco/internal/device"
)

var (
	paperOnce sync.Once
	paperFW   *Framework
	paperErr  error

	simOnce sync.Once
	simFW   *Framework
	simErr  error
)

func paperFramework(t *testing.T) *Framework {
	t.Helper()
	paperOnce.Do(func() { paperFW, paperErr = NewFramework(TechPaper, FrameworkOpts{}) })
	if paperErr != nil {
		t.Fatalf("NewFramework(TechPaper): %v", paperErr)
	}
	return paperFW
}

func simFramework(t *testing.T) *Framework {
	t.Helper()
	if testing.Short() {
		t.Skip("TechSimulated characterization skipped in -short mode")
	}
	simOnce.Do(func() { simFW, simErr = NewFramework(TechSimulated, FrameworkOpts{}) })
	if simErr != nil {
		t.Fatalf("NewFramework(TechSimulated): %v", simErr)
	}
	return simFW
}

func TestPaperFrameworkAnchors(t *testing.T) {
	f := paperFramework(t)
	lvt, hvt := f.Cells[device.LVT], f.Cells[device.HVT]
	if lvt.VDDCStar != 0.640 || lvt.VWLStar != 0.490 {
		t.Errorf("LVT rails = %g/%g, want 0.640/0.490", lvt.VDDCStar, lvt.VWLStar)
	}
	if hvt.VDDCStar != 0.550 || hvt.VWLStar != 0.540 {
		t.Errorf("HVT rails = %g/%g, want 0.550/0.540", hvt.VDDCStar, hvt.VWLStar)
	}
	if lvt.Leak != 1.692e-9 || hvt.Leak != 0.082e-9 {
		t.Errorf("leakage anchors = %g/%g", lvt.Leak, hvt.Leak)
	}
	// The paper's HVT read-current law at VDDC=550mV, VSSC=0.
	want := 9.5e-5 * math.Pow(0.55-0.335, 1.3)
	if got := hvt.IRead(0.55, 0); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("HVT IRead(0.55, 0) = %g, want %g", got, want)
	}
	// LVT read current ≈ 2× HVT at the nominal read condition.
	if r := lvt.IRead(0.45, 0) / hvt.IRead(0.45, 0); math.Abs(r-2) > 0.01 {
		t.Errorf("LVT/HVT nominal read-current ratio = %g, want 2", r)
	}
	// Write-delay LUT decreases with overdrive.
	if !(hvt.WriteDelay(0.65) < hvt.WriteDelay(0.45)) {
		t.Error("write delay must fall with WL overdrive")
	}
}

func TestRails(t *testing.T) {
	f := paperFramework(t)
	// M1: a single shared high rail at max(VDDC*, VWL*).
	vddc, vwl, err := f.Rails(device.LVT, M1)
	if err != nil {
		t.Fatal(err)
	}
	if vddc != 0.640 || vwl != 0.640 {
		t.Errorf("LVT M1 rails = %g/%g, want 0.640/0.640", vddc, vwl)
	}
	vddc, vwl, err = f.Rails(device.HVT, M1)
	if err != nil {
		t.Fatal(err)
	}
	if vddc != 0.550 || vwl != 0.550 {
		t.Errorf("HVT M1 rails = %g/%g, want 0.550/0.550", vddc, vwl)
	}
	// M2: independent starred rails.
	vddc, vwl, err = f.Rails(device.LVT, M2)
	if err != nil {
		t.Fatal(err)
	}
	if vddc != 0.640 || vwl != 0.490 {
		t.Errorf("LVT M2 rails = %g/%g, want 0.640/0.490", vddc, vwl)
	}
}

func TestOptimize4KBHVTM2(t *testing.T) {
	f := paperFramework(t)
	opt, err := f.Optimize(Options{CapacityBits: 4 * 1024 * 8, Flavor: device.HVT, Method: M2})
	if err != nil {
		t.Fatal(err)
	}
	d := opt.Best.Design
	if d.Geom.Bits() != 32768 {
		t.Fatalf("best design capacity %d bits", d.Geom.Bits())
	}
	// The paper's 4KB HVT-M2 optimum uses a strong negative Gnd (-240 mV)
	// and a tall aspect ratio; require the searched optimum to use a
	// substantial negative rail.
	if d.VSSC > -0.10 {
		t.Errorf("optimal VSSC = %g, expected strongly negative (paper: -0.240)", d.VSSC)
	}
	if d.Geom.NR < d.Geom.NC {
		t.Errorf("optimal aspect n_r=%d < n_c=%d; paper prefers more rows with negative Gnd", d.Geom.NR, d.Geom.NC)
	}
	// Branch-and-bound skips most points, but evaluated + bound-pruned must
	// still cover the full candidate space.
	if covered := opt.Evaluated + opt.Stats.PrunedBound; covered < 10000 {
		t.Errorf("exhaustive search covered only %d points", covered)
	}
}

func TestM2NeverWorseThanM1(t *testing.T) {
	f := paperFramework(t)
	for _, flavor := range []device.Flavor{device.LVT, device.HVT} {
		for _, bits := range []int{1024, 8192, 131072} {
			m1, err := f.Optimize(Options{CapacityBits: bits, Flavor: flavor, Method: M1})
			if err != nil {
				t.Fatal(err)
			}
			m2, err := f.Optimize(Options{CapacityBits: bits, Flavor: flavor, Method: M2})
			if err != nil {
				t.Fatal(err)
			}
			if m2.Best.Result.EDP > m1.Best.Result.EDP*(1+1e-9) {
				t.Errorf("%v %d bits: M2 EDP (%g) worse than M1 (%g) — more rails can never hurt",
					flavor, bits, m2.Best.Result.EDP, m1.Best.Result.EDP)
			}
		}
	}
}

func TestDelayGrowsWithCapacity(t *testing.T) {
	f := paperFramework(t)
	prev := 0.0
	for _, bits := range []int{1024, 8192, 32768, 131072} {
		opt, err := f.Optimize(Options{CapacityBits: bits, Flavor: device.HVT, Method: M2})
		if err != nil {
			t.Fatal(err)
		}
		if opt.Best.Result.DArray < prev {
			t.Errorf("optimal delay shrank with capacity at %d bits", bits)
		}
		prev = opt.Best.Result.DArray
	}
}

func TestHeadlineEDPReduction(t *testing.T) {
	// Paper abstract: for 1KB-16KB arrays, HVT-M2 achieves on average 59%
	// lower EDP than LVT-M2 with ≤12% performance penalty. On our substrate
	// we require the same direction with generous bands: ≥30% average EDP
	// reduction and ≤30% delay penalty.
	f := paperFramework(t)
	var edpGain, worstPenalty float64
	caps := []int{8192, 32768, 131072} // 1KB, 4KB, 16KB
	for _, bits := range caps {
		lvt, err := f.Optimize(Options{CapacityBits: bits, Flavor: device.LVT, Method: M2})
		if err != nil {
			t.Fatal(err)
		}
		hvt, err := f.Optimize(Options{CapacityBits: bits, Flavor: device.HVT, Method: M2})
		if err != nil {
			t.Fatal(err)
		}
		red := 1 - hvt.Best.Result.EDP/lvt.Best.Result.EDP
		pen := hvt.Best.Result.DArray/lvt.Best.Result.DArray - 1
		t.Logf("%d bits: EDP reduction %.0f%%, delay penalty %.0f%%", bits, red*100, pen*100)
		edpGain += red
		if pen > worstPenalty {
			worstPenalty = pen
		}
	}
	if avg := edpGain / float64(len(caps)); avg < 0.30 {
		t.Errorf("average EDP reduction %.0f%%, want ≥30%% (paper: 59%%)", avg*100)
	}
	if worstPenalty > 0.30 {
		t.Errorf("worst delay penalty %.0f%%, want ≤30%% (paper: 12%%)", worstPenalty*100)
	}
}

func TestGreedyMatchesOrApproachesExhaustive(t *testing.T) {
	f := paperFramework(t)
	opts := Options{CapacityBits: 8192, Flavor: device.HVT, Method: M2}
	full, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := f.GreedyOptimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The exhaustive search prunes by bound, so compare greedy's cost
	// against the space the exhaustive sweep had to cover, not just the
	// points its bound let through.
	if covered := full.Evaluated + full.Stats.PrunedBound; greedy.Evaluated >= covered {
		t.Errorf("greedy used %d evals, exhaustive covered %d — greedy must be cheaper", greedy.Evaluated, covered)
	}
	if ratio := greedy.Best.Result.EDP / full.Best.Result.EDP; ratio > 1.25 {
		t.Errorf("greedy EDP %.2f× the exhaustive optimum, want ≤1.25×", ratio)
	}
	if greedy.Best.Result.EDP < full.Best.Result.EDP*(1-1e-9) {
		t.Error("greedy found a better point than the exhaustive search — search space mismatch")
	}
}

func TestAlternativeObjectives(t *testing.T) {
	f := paperFramework(t)
	base := Options{CapacityBits: 32768, Flavor: device.HVT, Method: M2}
	edp, err := f.Optimize(base)
	if err != nil {
		t.Fatal(err)
	}
	dOpts := base
	dOpts.Objective = ObjectiveDelay
	dOpt, err := f.Optimize(dOpts)
	if err != nil {
		t.Fatal(err)
	}
	eOpts := base
	eOpts.Objective = ObjectiveEnergy
	eOpt, err := f.Optimize(eOpts)
	if err != nil {
		t.Fatal(err)
	}
	if dOpt.Best.Result.DArray > edp.Best.Result.DArray*(1+1e-9) {
		t.Error("delay-optimal design slower than EDP-optimal")
	}
	if eOpt.Best.Result.EArray > edp.Best.Result.EArray*(1+1e-9) {
		t.Error("energy-optimal design burns more than EDP-optimal")
	}
}

func TestOptimizeValidation(t *testing.T) {
	f := paperFramework(t)
	if _, err := f.Optimize(Options{CapacityBits: 1000, Flavor: device.HVT}); err == nil {
		t.Error("non-power-of-two capacity accepted")
	}
	if _, err := f.Optimize(Options{CapacityBits: 2, Flavor: device.HVT}); err == nil {
		t.Error("tiny capacity accepted")
	}
}

func TestModeAndMethodStrings(t *testing.T) {
	if TechPaper.String() == TechSimulated.String() {
		t.Error("mode strings collide")
	}
	if M1.String() != "M1" || M2.String() != "M2" {
		t.Error("method strings")
	}
}

func TestSimulatedFrameworkShape(t *testing.T) {
	f := simFramework(t)
	lvt, hvt := f.Cells[device.LVT], f.Cells[device.HVT]
	// Ordering relations the paper establishes must hold in the fully
	// simulated mode too.
	if !(hvt.Leak < lvt.Leak/10) {
		t.Errorf("simulated leakage: HVT %g should be ≫ lower than LVT %g", hvt.Leak, lvt.Leak)
	}
	if !(hvt.VWLStar > lvt.VWLStar) {
		t.Errorf("simulated VWL*: HVT %g should exceed LVT %g", hvt.VWLStar, lvt.VWLStar)
	}
	if !(hvt.IRead(0.55, 0) < lvt.IRead(0.64, 0)) {
		t.Error("simulated starred-rail read current: HVT should be below LVT")
	}
	// Negative Gnd must boost the simulated read current substantially.
	if gain := hvt.IRead(0.55, -0.24) / hvt.IRead(0.55, 0); gain < 2 {
		t.Errorf("simulated VSSC=-240mV read-current gain %.2f, want ≥2", gain)
	}
}

func TestSimulatedOptimizeAgreesInShape(t *testing.T) {
	fSim := simFramework(t)
	fPaper := paperFramework(t)
	bits := 32768
	for _, m := range []Method{M1, M2} {
		sim, err := fSim.Optimize(Options{CapacityBits: bits, Flavor: device.HVT, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		pap, err := fPaper.Optimize(Options{CapacityBits: bits, Flavor: device.HVT, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		// Same structural direction: M2 uses negative Gnd in both modes.
		if m == M2 {
			if sim.Best.Design.VSSC > -0.05 || pap.Best.Design.VSSC > -0.05 {
				t.Errorf("M2 optimum should use negative Gnd: sim %g, paper %g",
					sim.Best.Design.VSSC, pap.Best.Design.VSSC)
			}
		}
	}
	// The two modes agree that HVT-M2 beats HVT-M1 on EDP.
	simM1, _ := fSim.Optimize(Options{CapacityBits: bits, Flavor: device.HVT, Method: M1})
	simM2, _ := fSim.Optimize(Options{CapacityBits: bits, Flavor: device.HVT, Method: M2})
	if simM2.Best.Result.EDP >= simM1.Best.Result.EDP {
		t.Error("simulated mode: M2 should beat M1 on EDP")
	}
}

func TestWorstCaseAccountingAblation(t *testing.T) {
	// The headline conclusion (HVT-M2 beats LVT-M2 on EDP for large arrays)
	// must be insensitive to the energy-accounting interpretation.
	fw, err := NewFramework(TechPaper, FrameworkOpts{Accounting: array.WorstCasePath})
	if err != nil {
		t.Fatal(err)
	}
	lvt, err := fw.Optimize(Options{CapacityBits: 131072, Flavor: device.LVT, Method: M2})
	if err != nil {
		t.Fatal(err)
	}
	hvt, err := fw.Optimize(Options{CapacityBits: 131072, Flavor: device.HVT, Method: M2})
	if err != nil {
		t.Fatal(err)
	}
	if hvt.Best.Result.EDP >= lvt.Best.Result.EDP {
		t.Errorf("worst-case-path accounting flips the conclusion: HVT %g vs LVT %g",
			hvt.Best.Result.EDP, lvt.Best.Result.EDP)
	}
}
