package core

import (
	"context"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sramco/internal/array"
	"sramco/internal/device"
	"sramco/internal/obs"
)

// pruningFramework returns a shallow copy of the paper framework whose HVT
// cell fails read stability below cutoff — TechPaper's RSNMAt is the
// constant δ (the starred rails are chosen to meet it), so pruning tests
// need an explicit cliff.
func pruningFramework(t *testing.T, cutoff float64) *Framework {
	t.Helper()
	base := paperFramework(t)
	f := *base
	f.Cells = make(map[device.Flavor]*CellChar, len(base.Cells))
	for k, v := range base.Cells {
		cc := *v
		f.Cells[k] = &cc
	}
	hvt := f.Cells[device.HVT]
	delta := base.Delta
	hvt.RSNMAt = func(vssc float64) float64 {
		if vssc < cutoff {
			return 0
		}
		return delta
	}
	return &f
}

// TestSkippedRSNMReconcilesWithValidatedSpace covers the up-front pruning
// accounting bug: pruned VSSC levels used to be charged NpreMax·NwrMax
// points for every organization, including (npre, nwr) combinations
// Geom.Validate rejects on the feasible levels — so Evaluated + SkippedRSNM
// could not reconcile with the candidate space. The fix counts pruned
// levels against the validated space only, giving the exact identity
//
//	Evaluated + SkippedRSNM == levels × validCombosPerLevel
//
// The space is picked so geometry skips actually occur: capacity 64 bits
// with W = 6 makes the wide organizations fail the power-of-two access
// width check.
func TestSkippedRSNMReconcilesWithValidatedSpace(t *testing.T) {
	f := pruningFramework(t, -0.015) // prunes -0.02 and -0.03
	opts := Options{
		CapacityBits: 64,
		Flavor:       device.HVT,
		Method:       M2,
		W:            6,
		Space:        SearchSpace{VSSCMin: -0.03, VSSCStep: 0.01, NRMax: 1024, NCMax: 1024, NpreMax: 2, NwrMax: 2},
	}
	opt, err := f.Optimize(opts)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	st := opt.Stats

	levels := len(vsscCandidates(opts.Method, opts.Space))
	if levels != 4 {
		t.Fatalf("levels = %d, want 4", levels)
	}
	if st.PrunedVSSC != 2 {
		t.Fatalf("PrunedVSSC = %d, want 2", st.PrunedVSSC)
	}
	// Organizations: nr ∈ {2..64} with nc = 64/nr; width = min(6, nc) is a
	// valid power of two only for nc ∈ {4, 2, 1} → 3 valid organizations ×
	// NpreMax×NwrMax fin combinations each.
	normOpts := opts
	if err := normOpts.normalize(); err != nil {
		t.Fatal(err)
	}
	valid := validCombosPerLevel(&normOpts, rowCandidates(normOpts.CapacityBits, normOpts.Space))
	if valid != 12 {
		t.Fatalf("validCombosPerLevel = %d, want 12", valid)
	}
	if got, want := st.Evaluated+st.SkippedRSNM+st.PrunedBound, levels*valid; got != want {
		t.Errorf("Evaluated (%d) + SkippedRSNM (%d) + PrunedBound (%d) = %d, want levels×valid = %d",
			st.Evaluated, st.SkippedRSNM, st.PrunedBound, got, want)
	}
	if want := st.PrunedVSSC * valid; st.SkippedRSNM != want {
		t.Errorf("SkippedRSNM = %d, want PrunedVSSC×valid = %d", st.SkippedRSNM, want)
	}
	// Feasible levels either evaluate a validated combination or prune it by
	// bound (rails failures are evaluated points in the unpruned sweep and
	// bound-pruned in the branch-and-bound one), so Evaluated + PrunedBound
	// is exactly (levels−pruned)×valid.
	if want := (levels - st.PrunedVSSC) * valid; st.Evaluated+st.PrunedBound != want {
		t.Errorf("Evaluated (%d) + PrunedBound (%d) = %d, want %d",
			st.Evaluated, st.PrunedBound, st.Evaluated+st.PrunedBound, want)
	}
	// Geometry skips: the 3 invalid organizations × NpreMax×NwrMax, charged
	// only on the feasible (actually searched) levels.
	if want := (levels - st.PrunedVSSC) * 3 * 4; st.SkippedGeom != want {
		t.Errorf("SkippedGeom = %d, want %d", st.SkippedGeom, want)
	}
	if opt.Skipped != st.SkippedTotal() {
		t.Errorf("Optimum.Skipped (%d) != Stats.SkippedTotal (%d)", opt.Skipped, st.SkippedTotal())
	}
}

// TestVSSCCandidatesAreExactLiterals covers the float-drift bugfix: the
// accumulating v -= step loop smeared rounding error into the deeper levels
// (-0.07000000000000001 after seven 0.01 steps). Index-based generation
// keeps every level bit-equal to the decimal literal it prints as.
func TestVSSCCandidatesAreExactLiterals(t *testing.T) {
	got := vsscCandidates(M2, DefaultSpace())
	if len(got) != 25 {
		t.Fatalf("%d levels, want 25", len(got))
	}
	want := []float64{0, -0.01, -0.02, -0.03, -0.04, -0.05, -0.06, -0.07, -0.08, -0.09,
		-0.10, -0.11, -0.12, -0.13, -0.14, -0.15, -0.16, -0.17, -0.18, -0.19,
		-0.20, -0.21, -0.22, -0.23, -0.24}
	for i, v := range got {
		if v != want[i] { // == on float64: literal-exact, no tolerance
			t.Errorf("level %d = %v (bits %x), want the literal %v", i, v, math.Float64bits(v), want[i])
		}
		if s := strconv.FormatFloat(v, 'g', -1, 64); strings.Contains(s, "000000000") {
			t.Errorf("level %d prints with drift: %s", i, s)
		}
	}
	if math.Signbit(got[0]) {
		t.Error("level 0 is -0, want +0")
	}

	// M1 collapses to the lone zero level regardless of the range.
	if m1 := vsscCandidates(M1, DefaultSpace()); len(m1) != 1 || m1[0] != 0 {
		t.Errorf("M1 candidates = %v, want [0]", m1)
	}
	// Degenerate spaces fall back to the zero level instead of looping.
	if z := vsscCandidates(M2, SearchSpace{VSSCMin: 0, VSSCStep: 0.01}); len(z) != 1 || z[0] != 0 {
		t.Errorf("VSSCMin=0 candidates = %v, want [0]", z)
	}
	if z := vsscCandidates(M2, SearchSpace{VSSCMin: -0.1, VSSCStep: 0}); len(z) != 1 || z[0] != 0 {
		t.Errorf("zero-step candidates = %v, want [0]", z)
	}
	// A range that is not an exact multiple of the step keeps the historical
	// 1e-9 slack: -0.025 admits -0.02 but not -0.03.
	if got := vsscCandidates(M2, SearchSpace{VSSCMin: -0.025, VSSCStep: 0.01}); len(got) != 3 || got[2] != -0.02 {
		t.Errorf("non-multiple range candidates = %v, want [0 -0.01 -0.02]", got)
	}
}

// TestGreedySweepsSameVSSCLevelsAsExhaustive pins the searcher-parity fix:
// the greedy searcher used to run its own accumulating sweep loop and could
// land on drifted levels the exhaustive search never visits. Both now share
// vsscCandidates, so a greedy optimum's VSSC is bit-equal (==) to one of
// the shared candidates.
func TestGreedySweepsSameVSSCLevelsAsExhaustive(t *testing.T) {
	f := paperFramework(t)
	opts := Options{
		CapacityBits: 4096,
		Flavor:       device.HVT,
		Method:       M2,
		Space:        SearchSpace{VSSCMin: -0.07, VSSCStep: 0.01, NRMax: 1024, NCMax: 1024, NpreMax: 6, NwrMax: 4},
	}
	opt, err := f.GreedyOptimize(opts)
	if err != nil {
		t.Fatalf("GreedyOptimize: %v", err)
	}
	levels := vsscCandidates(opts.Method, opts.Space)
	found := false
	for _, v := range levels {
		if opt.Best.Design.VSSC == v {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("greedy VSSC %x not among the shared candidates %v",
			math.Float64bits(opt.Best.Design.VSSC), levels)
	}
}

// TestParetoStatsAndTraceReconcile covers the searcher-parity satellite for
// the Pareto sweep: it must report the same SearchStats scheme as Optimize
// and emit the core.search instrumentation (run span core.search.pareto,
// one core.search.chunk span per shard, evaluation counts that reconcile
// exactly with the stats and the live counter).
func TestParetoStatsAndTraceReconcile(t *testing.T) {
	f := paperFramework(t)
	col := &obs.CollectorSink{}
	prev := obs.SetSink(col)
	defer obs.SetSink(prev)
	reg := obs.Default()
	before := reg.CounterValue("core.search.evaluated")

	opts := Options{
		CapacityBits: 4096,
		Flavor:       device.HVT,
		Method:       M2,
		Space:        SearchSpace{VSSCMin: -0.03, VSSCStep: 0.01, NRMax: 1024, NCMax: 1024, NpreMax: 4, NwrMax: 3},
	}
	res, err := f.ParetoSearch(opts)
	if err != nil {
		t.Fatalf("ParetoSearch: %v", err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty frontier")
	}
	st := res.Stats

	normOpts := opts
	if err := normOpts.normalize(); err != nil {
		t.Fatal(err)
	}
	rows := rowCandidates(normOpts.CapacityBits, normOpts.Space)
	levels := len(vsscCandidates(normOpts.Method, normOpts.Space))
	if want := len(rows) * levels; st.Chunks != want {
		t.Errorf("Chunks = %d, want rows×levels = %d", st.Chunks, want)
	}
	// Paper-mode RSNMAt is the constant δ: nothing prunes, every validated
	// combination is evaluated.
	if st.PrunedVSSC != 0 || st.SkippedRSNM != 0 {
		t.Errorf("unexpected pruning: %+v", st)
	}
	if want := levels * validCombosPerLevel(&normOpts, rows); st.Evaluated+st.PrunedBound != want {
		t.Errorf("Evaluated (%d) + PrunedBound (%d) = %d, want %d",
			st.Evaluated, st.PrunedBound, st.Evaluated+st.PrunedBound, want)
	}
	if st.Workers < 1 || st.Wall <= 0 {
		t.Errorf("missing worker/wall accounting: %+v", st)
	}

	var chunkSpans int
	var chunkSum, runTotal, prunedSum, runPruned int64
	runSpans := 0
	for _, ev := range col.Events() {
		switch ev.Name {
		case "core.search.chunk":
			chunkSpans++
			chunkSum += attrInt(t, ev, "evaluated")
			prunedSum += attrInt(t, ev, "pruned_bound")
		case "core.search.pareto":
			runSpans++
			runTotal = attrInt(t, ev, "evaluated")
			runPruned = attrInt(t, ev, "pruned_bound")
		}
	}
	if runSpans != 1 {
		t.Fatalf("%d core.search.pareto run spans, want 1", runSpans)
	}
	if chunkSpans != st.Chunks {
		t.Errorf("%d chunk spans, want %d (one per shard)", chunkSpans, st.Chunks)
	}
	if chunkSum != int64(st.Evaluated) || runTotal != int64(st.Evaluated) {
		t.Errorf("span evaluation counts (%d chunk / %d run) disagree with Stats.Evaluated %d",
			chunkSum, runTotal, st.Evaluated)
	}
	if prunedSum != int64(st.PrunedBound) || runPruned != int64(st.PrunedBound) {
		t.Errorf("span prune counts (%d chunk / %d run) disagree with Stats.PrunedBound %d",
			prunedSum, runPruned, st.PrunedBound)
	}
	if got := reg.CounterValue("core.search.evaluated") - before; got != int64(st.Evaluated) {
		t.Errorf("counter advanced by %d, Stats.Evaluated = %d", got, st.Evaluated)
	}
}

// TestParetoHonorsSearchWLSegs covers the parity gap where the Pareto sweep
// silently ignored Options.SearchWLSegs: with segmentation enabled it must
// enumerate the same divided-wordline candidates as Optimize (observed
// through the evalHook seam), and the hook-free Evaluator fast path must
// agree with the hooked sweep point for point.
func TestParetoHonorsSearchWLSegs(t *testing.T) {
	f := paperFramework(t)
	opts := Options{
		CapacityBits: 8192,
		Flavor:       device.HVT,
		Method:       M1,
		Space:        SearchSpace{VSSCMin: -0.01, VSSCStep: 0.01, NRMax: 1024, NCMax: 1024, NpreMax: 3, NwrMax: 2},
	}
	flat, err := f.ParetoSearch(opts)
	if err != nil {
		t.Fatalf("flat ParetoSearch: %v", err)
	}

	segOpts := opts
	segOpts.SearchWLSegs = true
	var mu sync.Mutex
	segSeen := make(map[int]bool)
	segOpts.evalHook = func(tech *array.Tech, d array.Design, act array.Activity) (*array.Result, error) {
		mu.Lock()
		segSeen[d.Geom.Segments()] = true
		mu.Unlock()
		return array.Evaluate(tech, d, act)
	}
	hooked, err := f.ParetoSearchContext(context.Background(), segOpts)
	if err != nil {
		t.Fatalf("segmented ParetoSearch: %v", err)
	}
	for _, s := range []int{1, 2, 4, 8} {
		if !segSeen[s] {
			t.Errorf("segmentation %d never evaluated", s)
		}
	}
	if hooked.Stats.Evaluated <= flat.Stats.Evaluated {
		t.Errorf("SearchWLSegs did not widen the sweep: %d vs %d evaluations",
			hooked.Stats.Evaluated, flat.Stats.Evaluated)
	}

	// The hook-free fast path must agree with the hooked sweep exactly.
	// Bounds stay disabled so both runs enumerate the full space and the
	// evaluation counts — not just the frontiers — can be compared 1:1.
	segOpts.evalHook = nil
	segOpts.DisableBounds = true
	fast, err := f.ParetoSearch(segOpts)
	if err != nil {
		t.Fatalf("fast segmented ParetoSearch: %v", err)
	}
	if fast.Stats.Evaluated != hooked.Stats.Evaluated {
		t.Errorf("fast path evaluated %d points, hook path %d", fast.Stats.Evaluated, hooked.Stats.Evaluated)
	}
	if len(fast.Front) != len(hooked.Front) {
		t.Fatalf("fast front has %d points, hook front %d", len(fast.Front), len(hooked.Front))
	}
	for i := range fast.Front {
		if fast.Front[i].Design != hooked.Front[i].Design ||
			fast.Front[i].Result.EDP != hooked.Front[i].Result.EDP {
			t.Fatalf("frontier point %d diverges between fast and hook paths", i)
		}
	}
}
