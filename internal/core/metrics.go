package core

import "sramco/internal/obs"

// Search metrics. core.search.evaluated is flushed in small batches from
// worker-local counters (never per evaluation), so the exhaustive search's
// hot loop pays one atomic add per N_wr sweep; the counter is still live
// enough to drive a progress ticker. Totals are deterministic for a given
// Options regardless of GOMAXPROCS.
var (
	mSearchRuns      = obs.NewCounter("core.search.runs")
	mSearchEvaluated = obs.NewCounter("core.search.evaluated")
	mSearchChunks    = obs.NewCounter("core.search.chunks_done")
	gSearchChunks    = obs.NewGauge("core.search.chunks_total")
	hChunkDur        = obs.NewHistogram("core.search.chunk_duration")
)
