package core

import (
	"testing"

	"sramco/internal/device"
	"sramco/internal/obs"
)

func attrInt(t *testing.T, ev obs.Event, key string) int64 {
	t.Helper()
	for _, a := range ev.Attrs {
		if a.Key == key {
			return a.I
		}
	}
	t.Fatalf("event %s missing attr %q", ev.Name, key)
	return 0
}

// TestSearchTraceReconciles proves the invariant CLI traces rely on: the
// per-chunk span evaluation counts sum exactly to SearchStats.Evaluated,
// one chunk span is emitted per shard, and the run span reports the same
// total.
func TestSearchTraceReconciles(t *testing.T) {
	f := paperFramework(t)
	col := &obs.CollectorSink{}
	prev := obs.SetSink(col)
	defer obs.SetSink(prev)

	opt, err := f.Optimize(Options{
		CapacityBits: 16 * 1024,
		Flavor:       device.HVT,
		Method:       M2,
		Space:        SearchSpace{VSSCMin: -0.04, VSSCStep: 0.02, NRMax: 1024, NCMax: 1024, NpreMax: 4, NwrMax: 3},
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}

	var chunkSpans int
	var chunkSum, runTotal int64
	runSpans := 0
	for _, ev := range col.Events() {
		switch ev.Name {
		case "core.search.chunk":
			chunkSpans++
			chunkSum += attrInt(t, ev, "evaluated")
		case "core.search":
			runSpans++
			runTotal = attrInt(t, ev, "evaluated")
		}
	}
	if runSpans != 1 {
		t.Fatalf("%d core.search run spans, want 1", runSpans)
	}
	if chunkSpans != opt.Stats.Chunks {
		t.Errorf("%d chunk spans, want %d (one per shard)", chunkSpans, opt.Stats.Chunks)
	}
	if chunkSum != int64(opt.Stats.Evaluated) {
		t.Errorf("chunk span evaluations sum to %d, SearchStats.Evaluated = %d", chunkSum, opt.Stats.Evaluated)
	}
	if runTotal != int64(opt.Stats.Evaluated) {
		t.Errorf("run span reports %d evaluations, SearchStats.Evaluated = %d", runTotal, opt.Stats.Evaluated)
	}
}

// TestSearchCounterMatchesStats proves the live core.search.evaluated
// counter advances by exactly the deterministic SearchStats total.
func TestSearchCounterMatchesStats(t *testing.T) {
	f := paperFramework(t)
	reg := obs.Default()
	before := reg.CounterValue("core.search.evaluated")
	opt, err := f.Optimize(Options{
		CapacityBits: 4096,
		Flavor:       device.LVT,
		Method:       M1,
		Space:        SearchSpace{VSSCMin: -0.02, VSSCStep: 0.01, NRMax: 1024, NCMax: 1024, NpreMax: 3, NwrMax: 2},
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if got := reg.CounterValue("core.search.evaluated") - before; got != int64(opt.Stats.Evaluated) {
		t.Errorf("counter advanced by %d, SearchStats.Evaluated = %d", got, opt.Stats.Evaluated)
	}
}
