package core

import (
	"testing"

	"sramco/internal/array"
	"sramco/internal/device"
)

func TestParetoFrontProperties(t *testing.T) {
	f := paperFramework(t)
	opts := Options{CapacityBits: 8192, Flavor: device.HVT, Method: M2}
	front, err := f.ParetoFront(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 3 {
		t.Fatalf("frontier has only %d points", len(front))
	}
	// Sorted by delay, strictly decreasing energy (non-domination).
	for i := 1; i < len(front); i++ {
		if front[i].Result.DArray < front[i-1].Result.DArray {
			t.Fatal("frontier not sorted by delay")
		}
		if front[i].Result.EArray >= front[i-1].Result.EArray {
			t.Fatalf("frontier point %d not dominated-free: E %g after %g",
				i, front[i].Result.EArray, front[i-1].Result.EArray)
		}
	}
	// The EDP optimum must lie on (or at least not dominate) the frontier.
	opt, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	bestEDP := opt.Best.Result.EDP
	onFront := false
	for _, p := range front {
		if p.Result.EDP <= bestEDP*(1+1e-9) {
			onFront = true
			break
		}
	}
	if !onFront {
		t.Error("EDP optimum not represented on the Pareto frontier")
	}
	// Every frontier point is feasible and at the pinned rails.
	for _, p := range front {
		if p.Design.VDDC != 0.550 || p.Design.VWL != 0.540 {
			t.Fatalf("frontier point has wrong rails: %+v", p.Design)
		}
	}
}

func TestParetoFrontM1SubsetDominatedByM2(t *testing.T) {
	f := paperFramework(t)
	m1, err := f.ParetoFront(Options{CapacityBits: 8192, Flavor: device.HVT, Method: M1})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := f.ParetoFront(Options{CapacityBits: 8192, Flavor: device.HVT, Method: M2})
	if err != nil {
		t.Fatal(err)
	}
	// M2's search space contains M1's designs with VSSC = 0 — wait: M1 pins
	// VDDC = VWL = max(VDDC*, VWL*) which differs from M2's rails, so the
	// frontiers are not strictly nested. But M2's fastest point must be at
	// least as fast as M1's fastest (negative Gnd only adds speed).
	if m2[0].Result.DArray > m1[0].Result.DArray*(1+1e-9) {
		t.Errorf("M2 min delay (%g) worse than M1 (%g)", m2[0].Result.DArray, m1[0].Result.DArray)
	}
}

func TestKneePoint(t *testing.T) {
	mk := func(d, e float64) DesignPoint {
		return DesignPoint{Result: &array.Result{DArray: d, EArray: e}}
	}
	front := []DesignPoint{mk(1, 10), mk(2, 3), mk(10, 1)}
	if k := KneePoint(front); k != 1 {
		t.Errorf("KneePoint = %d, want 1 (the balanced middle point)", k)
	}
	if k := KneePoint(front[:1]); k != 0 {
		t.Errorf("single-point knee = %d", k)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty frontier should panic")
		}
	}()
	KneePoint(nil)
}

func TestInsertPareto(t *testing.T) {
	mk := func(d, e float64) DesignPoint {
		return DesignPoint{Result: &array.Result{DArray: d, EArray: e}}
	}
	var front []DesignPoint
	front = insertPareto(front, mk(2, 2))
	front = insertPareto(front, mk(1, 3)) // incomparable: stays
	front = insertPareto(front, mk(3, 3)) // dominated by (2,2): dropped
	if len(front) != 2 {
		t.Fatalf("front size %d, want 2", len(front))
	}
	front = insertPareto(front, mk(1, 1)) // dominates everything
	if len(front) != 1 || front[0].Result.DArray != 1 || front[0].Result.EArray != 1 {
		t.Fatalf("front after dominator: %+v", front)
	}
	// Duplicate of an existing point is rejected (treated as dominated).
	front = insertPareto(front, mk(1, 1))
	if len(front) != 1 {
		t.Fatalf("duplicate inflated front to %d", len(front))
	}
}
