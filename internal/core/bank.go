package core

import (
	"context"
	"errors"
	"fmt"

	"sramco/internal/wire"
)

// BankedOptimum is the outcome of a multi-bank optimization: capacity is
// split across identical banks, one of which is active per access, with a
// bank decoder and a global H-tree interconnect joining them. This extends
// the paper's single-array model to the cache-scale capacities its
// introduction motivates.
type BankedOptimum struct {
	Banks   int         // chosen bank count (power of two)
	PerBank DesignPoint // the optimized design of one bank

	// Global-path components.
	BankDecDelay float64
	WireDelay    float64
	WireEnergy   float64

	// Totals for the banked macro.
	DArray float64 // bank-decode + wire + bank access
	EArray float64 // α-weighted switching (+wire) + all-bank leakage
	EDP    float64

	Evaluated int // total model evaluations across bank candidates
}

// OptimizeBanked is OptimizeBankedContext without cancellation.
func (f *Framework) OptimizeBanked(opts Options, maxBanks int) (*BankedOptimum, error) {
	return f.OptimizeBankedContext(context.Background(), opts, maxBanks)
}

// OptimizeBankedContext searches bank counts 1, 2, …, maxBanks (powers of
// two), optimizing each bank's internal design with the usual exhaustive
// search and charging the bank decoder, global wiring and the idle banks'
// leakage. It returns the bank count minimizing the macro EDP.
//
// Partitionings with an empty feasible region are skipped; a model error or
// a ctx cancellation aborts the whole sweep.
func (f *Framework) OptimizeBankedContext(ctx context.Context, opts Options, maxBanks int) (*BankedOptimum, error) {
	if maxBanks < 1 {
		return nil, fmt.Errorf("core: maxBanks %d must be ≥ 1", maxBanks)
	}
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	cc, ok := f.Cells[opts.Flavor]
	if !ok {
		return nil, fmt.Errorf("core: flavor %v not characterized", opts.Flavor)
	}
	var best *BankedOptimum
	evaluated := 0
	for banks := 1; banks <= maxBanks; banks *= 2 {
		if opts.CapacityBits%banks != 0 || opts.CapacityBits/banks < 4 {
			continue
		}
		bankOpts := opts
		bankOpts.CapacityBits = opts.CapacityBits / banks
		opt, err := f.OptimizeContext(ctx, bankOpts)
		if errors.Is(err, ErrInfeasible) {
			continue // this partitioning has no feasible bank organization
		}
		if err != nil {
			return nil, err
		}
		evaluated += opt.Evaluated
		cand := f.assembleBanked(banks, opt.Best, cc.Leak, opts)
		if best == nil || cand.EDP < best.EDP {
			best = cand
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: %w: no banked organization for %d bits", ErrInfeasible, opts.CapacityBits)
	}
	best.Evaluated = evaluated
	return best, nil
}

// assembleBanked combines one optimized bank with the global path.
func (f *Framework) assembleBanked(banks int, bank DesignPoint, leakCell float64, opts Options) *BankedOptimum {
	out := &BankedOptimum{Banks: banks, PerBank: bank}
	g := bank.Design.Geom

	if banks > 1 {
		// Bank decoder: log2(banks) bits, predecode lines spanning the
		// bank column.
		dec := f.Periph.Decoder(log2i(banks), float64(banks)*float64(g.NR)*wire.CHeight())
		out.BankDecDelay = dec.Delay

		// Global H-tree: address/data wires reach the farthest bank. The
		// macro tiles banks in a near-square grid of bank footprints.
		bankW := float64(g.NC) * wire.CellWidth
		bankH := float64(g.NR) * wire.CellHeight
		cols := 1 << ((log2i(banks) + 1) / 2)
		rows := banks / cols
		span := float64(cols)*bankW/2 + float64(rows)*bankH/2
		cWire := span * wire.Cw
		// One address/data trunk switches per access; driven by the same
		// 27-fin driver class as the WL/COL rails.
		iDrive := 0.25 * 27 * f.Periph.IONPfet()
		out.WireDelay = cWire * f.Vdd / iDrive
		out.WireEnergy = cWire * f.Vdd * f.Vdd
		out.WireEnergy += dec.Energy
	}

	r := bank.Result
	out.DArray = out.BankDecDelay + out.WireDelay + r.DArray
	// All banks leak for the (longer) macro cycle; only the active bank
	// switches.
	totalBits := float64(banks) * float64(g.Bits())
	leak := totalBits * leakCell * out.DArray
	out.EArray = opts.Activity.Alpha*(r.ESw+out.WireEnergy) + leak
	out.EDP = out.EArray * out.DArray
	return out
}

func log2i(n int) int {
	b := 0
	for v := n; v > 1; v >>= 1 {
		b++
	}
	return b
}

// BankSweep evaluates every bank count up to maxBanks (not just the best),
// for plotting the partitioning trade-off. Like OptimizeBankedContext it
// skips infeasible partitionings but propagates model errors.
func (f *Framework) BankSweep(opts Options, maxBanks int) ([]BankedOptimum, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	cc, ok := f.Cells[opts.Flavor]
	if !ok {
		return nil, fmt.Errorf("core: flavor %v not characterized", opts.Flavor)
	}
	var out []BankedOptimum
	for banks := 1; banks <= maxBanks; banks *= 2 {
		if opts.CapacityBits%banks != 0 || opts.CapacityBits/banks < 4 {
			continue
		}
		bankOpts := opts
		bankOpts.CapacityBits = opts.CapacityBits / banks
		opt, err := f.Optimize(bankOpts)
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			return nil, err
		}
		cand := f.assembleBanked(banks, opt.Best, cc.Leak, opts)
		cand.Evaluated = opt.Evaluated
		out = append(out, *cand)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: %w: no banked organization for %d bits", ErrInfeasible, opts.CapacityBits)
	}
	return out, nil
}
