package core

import (
	"errors"
	"fmt"
	"time"
)

// ErrInfeasible is wrapped by every "no feasible design" failure of the
// searchers, so callers sweeping partitionings or search-space variants can
// distinguish an empty feasible region (errors.Is(err, ErrInfeasible)) from
// a genuine model or cancellation error.
var ErrInfeasible = errors.New("no feasible design")

// SearchStats is the observability record of one search run. Every field
// except Wall and Workers is deterministic for a given Options: the same
// search returns bit-identical counts regardless of GOMAXPROCS or scheduling.
type SearchStats struct {
	Evaluated    int // model evaluations performed
	SkippedRSNM  int // structurally valid points pruned by the read-stability constraint (never evaluated)
	SkippedGeom  int // points rejected by geometry validation (never evaluated)
	SkippedRails int // evaluated points whose assist rails miss the access cycle
	PrunedVSSC   int // VSSC sweep levels removed up front by the read-stability check
	PrunedBound  int // points skipped by branch-and-bound: their rectangle's lower bound (or rail feasibility) proved they cannot win (never evaluated)

	Chunks  int           // (row organization × VSSC) work units sharded across workers
	Workers int           // goroutines the shards were distributed over
	Wall    time.Duration // wall-clock time of the search (environmental, not deterministic)
}

// SkippedTotal returns the total candidate points rejected without producing
// a feasible evaluation. Branch-and-bound prunes are tracked separately in
// PrunedBound: those points are not rejected by a constraint, they are
// proven unable to beat the incumbent (the reconciliation invariant is
// Evaluated + SkippedRSNM + PrunedBound == levels × validCombosPerLevel).
func (s SearchStats) SkippedTotal() int { return s.SkippedRSNM + s.SkippedGeom + s.SkippedRails }

// BoundEfficiency returns the fraction of the bounded candidate space the
// branch-and-bound pass removed without evaluation:
// PrunedBound / (Evaluated + PrunedBound). Zero when pruning was disabled or
// nothing reached the bounded sweep.
func (s SearchStats) BoundEfficiency() float64 {
	if t := s.Evaluated + s.PrunedBound; t > 0 {
		return float64(s.PrunedBound) / float64(t)
	}
	return 0
}

func (s SearchStats) String() string {
	return fmt.Sprintf("%d evaluated, %d bound-pruned (%.0f%%), %d skipped (stability %d, geometry %d, rails %d), %d VSSC levels pruned, %d chunks on %d workers in %s",
		s.Evaluated, s.PrunedBound, 100*s.BoundEfficiency(),
		s.SkippedTotal(), s.SkippedRSNM, s.SkippedGeom, s.SkippedRails,
		s.PrunedVSSC, s.Chunks, s.Workers, s.Wall.Round(time.Microsecond))
}

// addWorker folds one worker's partial counters into the aggregate.
func (s *SearchStats) addWorker(o SearchStats) {
	s.Evaluated += o.Evaluated
	s.SkippedRSNM += o.SkippedRSNM
	s.SkippedGeom += o.SkippedGeom
	s.SkippedRails += o.SkippedRails
	s.PrunedBound += o.PrunedBound
}

// SearchError is returned when a search aborts — a model-evaluation error or
// a context cancellation — and carries the statistics accumulated by every
// worker up to the abort, so the cost of a failed search is still observable.
type SearchError struct {
	Stats SearchStats
	Cause error
}

func (e *SearchError) Error() string {
	return fmt.Sprintf("core: search aborted after %s: %v", e.Stats, e.Cause)
}

func (e *SearchError) Unwrap() error { return e.Cause }
