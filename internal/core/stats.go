package core

import (
	"errors"
	"fmt"
	"time"
)

// ErrInfeasible is wrapped by every "no feasible design" failure of the
// searchers, so callers sweeping partitionings or search-space variants can
// distinguish an empty feasible region (errors.Is(err, ErrInfeasible)) from
// a genuine model or cancellation error.
var ErrInfeasible = errors.New("no feasible design")

// SearchStats is the observability record of one search run. Every field
// except Wall and Workers is deterministic for a given Options: the same
// search returns bit-identical counts regardless of GOMAXPROCS or scheduling.
type SearchStats struct {
	Evaluated    int // model evaluations performed
	SkippedRSNM  int // structurally valid points pruned by the read-stability constraint (never evaluated)
	SkippedGeom  int // points rejected by geometry validation (never evaluated)
	SkippedRails int // evaluated points whose assist rails miss the access cycle
	PrunedVSSC   int // VSSC sweep levels removed up front by the read-stability check

	Chunks  int           // (row organization × VSSC) work units sharded across workers
	Workers int           // goroutines the shards were distributed over
	Wall    time.Duration // wall-clock time of the search (environmental, not deterministic)
}

// SkippedTotal returns the total candidate points rejected without producing
// a feasible evaluation.
func (s SearchStats) SkippedTotal() int { return s.SkippedRSNM + s.SkippedGeom + s.SkippedRails }

func (s SearchStats) String() string {
	return fmt.Sprintf("%d evaluated, %d skipped (stability %d, geometry %d, rails %d), %d VSSC levels pruned, %d chunks on %d workers in %s",
		s.Evaluated, s.SkippedTotal(), s.SkippedRSNM, s.SkippedGeom, s.SkippedRails,
		s.PrunedVSSC, s.Chunks, s.Workers, s.Wall.Round(time.Microsecond))
}

// addWorker folds one worker's partial counters into the aggregate.
func (s *SearchStats) addWorker(o SearchStats) {
	s.Evaluated += o.Evaluated
	s.SkippedRSNM += o.SkippedRSNM
	s.SkippedGeom += o.SkippedGeom
	s.SkippedRails += o.SkippedRails
}

// SearchError is returned when a search aborts — a model-evaluation error or
// a context cancellation — and carries the statistics accumulated by every
// worker up to the abort, so the cost of a failed search is still observable.
type SearchError struct {
	Stats SearchStats
	Cause error
}

func (e *SearchError) Error() string {
	return fmt.Sprintf("core: search aborted after %s: %v", e.Stats, e.Cause)
}

func (e *SearchError) Unwrap() error { return e.Cause }
