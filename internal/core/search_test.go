package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"sramco/internal/array"
	"sramco/internal/device"
	"sramco/internal/wire"
)

func wireGeom(nr, nc, segs, npre, nwr int) wire.Geometry {
	return wire.Geometry{NR: nr, NC: nc, W: 64, Npre: npre, Nwr: nwr, WLSegs: segs}
}

// normalizeOptimum zeroes the environmental stats fields (wall time, worker
// count) so the rest of the Optimum can be compared bit-for-bit.
func normalizeOptimum(o *Optimum) Optimum {
	n := *o
	n.Stats.Wall = 0
	n.Stats.Workers = 0
	return n
}

// TestOptimizeDeterministicAcrossGOMAXPROCS is the acceptance gate for the
// deterministic reduction: the 4 KB HVT/M2 search must return a
// bit-identical Optimum — design, result and counts — for any worker count,
// and across repeated runs.
func TestOptimizeDeterministicAcrossGOMAXPROCS(t *testing.T) {
	f := paperFramework(t)
	opts := Options{CapacityBits: 4 * 1024 * 8, Flavor: device.HVT, Method: M2}
	var ref Optimum
	for i, procs := range []int{1, 2, 8, 8} {
		prev := runtime.GOMAXPROCS(procs)
		opt, err := f.Optimize(opts)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		got := normalizeOptimum(opt)
		if i == 0 {
			ref = got
			continue
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("GOMAXPROCS=%d run %d: Optimum differs from GOMAXPROCS=1 baseline:\n  base %+v\n  got  %+v",
				procs, i, ref.Best.Design, got.Best.Design)
		}
	}
}

// TestOptimizeTieBreakOnObjectiveTies forces every feasible point to tie and
// checks the winner is schedule-independent.
func TestOptimizeTieBreakOnObjectiveTies(t *testing.T) {
	f := paperFramework(t)
	opts := Options{
		CapacityBits: 4096,
		Flavor:       device.HVT,
		Method:       M2,
		Space:        SearchSpace{VSSCMin: -0.04, VSSCStep: 0.02, NRMax: 1024, NCMax: 1024, NpreMax: 4, NwrMax: 3},
		Objective:    func(*array.Result) float64 { return 1 },
	}
	var ref Optimum
	for i, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		opt, err := f.Optimize(opts)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		got := normalizeOptimum(opt)
		if i == 0 {
			ref = got
			continue
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("all-ties search is schedule-dependent: %+v vs %+v", ref.Best.Design, got.Best.Design)
		}
	}
	// With every objective equal, no feasible design may precede the winner
	// in the canonical order within its own (row, VSSC) block.
	d := ref.Best.Design
	if d.Geom.Npre != 1 || d.Geom.Nwr != 1 {
		// Npre/Nwr do not affect feasibility gates ahead of evaluation, so
		// the canonical minimum of a tied block always has 1/1 fins.
		t.Errorf("tie-break winner has N_pre=%d N_wr=%d, want the canonical 1/1", d.Geom.Npre, d.Geom.Nwr)
	}
}

func TestBetterPointTotalOrder(t *testing.T) {
	mk := func(nr, nc, segs, npre, nwr int, vssc float64) *DesignPoint {
		return &DesignPoint{Design: array.Design{
			Geom: wireGeom(nr, nc, segs, npre, nwr),
			VSSC: vssc,
		}}
	}
	a := mk(32, 1024, 1, 1, 1, 0)
	b := mk(64, 512, 1, 1, 1, 0)
	if !betterPoint(a, 1, b, 2) {
		t.Error("lower objective must win regardless of design order")
	}
	if betterPoint(b, 2, a, 1) {
		t.Error("higher objective must lose")
	}
	// Ties: fewer rows first.
	if !betterPoint(a, 1, b, 1) || betterPoint(b, 1, a, 1) {
		t.Error("tie must prefer fewer rows")
	}
	// Ties at equal rows: weaker (less negative) VSSC first.
	c := mk(32, 1024, 1, 1, 1, -0.05)
	if !betterPoint(a, 1, c, 1) || betterPoint(c, 1, a, 1) {
		t.Error("tie must prefer the weaker VSSC assist")
	}
	// Then fewer segments, fewer Npre, fewer Nwr.
	for _, pair := range [][2]*DesignPoint{
		{mk(32, 1024, 1, 5, 5, 0), mk(32, 1024, 2, 1, 1, 0)},
		{mk(32, 1024, 1, 1, 9, 0), mk(32, 1024, 1, 2, 1, 0)},
		{mk(32, 1024, 1, 1, 1, 0), mk(32, 1024, 1, 1, 2, 0)},
	} {
		if !betterPoint(pair[0], 1, pair[1], 1) || betterPoint(pair[1], 1, pair[0], 1) {
			t.Errorf("tie order violated for %+v vs %+v", pair[0].Design.Geom, pair[1].Design.Geom)
		}
		if !designLess(pair[0].Design, pair[1].Design) || designLess(pair[1].Design, pair[0].Design) {
			t.Errorf("designLess not a strict order for %+v vs %+v", pair[0].Design.Geom, pair[1].Design.Geom)
		}
	}
	// A nil incumbent always loses.
	if !betterPoint(a, math.Inf(1), nil, math.Inf(1)) {
		t.Error("first candidate must beat the nil incumbent")
	}
}

// TestOptimizeErrorCancelsWithAccurateCounts injects a model error mid-search
// and checks the search aborts with the causal error and with Evaluated
// equal to the number of evaluations that actually succeeded — including
// those of workers that were cancelled rather than erroring themselves.
func TestOptimizeErrorCancelsWithAccurateCounts(t *testing.T) {
	f := paperFramework(t)
	sentinel := errors.New("injected model failure")
	var calls, successes atomic.Int64
	opts := Options{
		CapacityBits: 4 * 1024 * 8,
		Flavor:       device.HVT,
		Method:       M2,
		Space:        SearchSpace{VSSCMin: -0.240, VSSCStep: 0.010, NRMax: 1024, NCMax: 1024, NpreMax: 10, NwrMax: 10},
		evalHook: func(tech *array.Tech, d array.Design, act array.Activity) (*array.Result, error) {
			if calls.Add(1) > 50 {
				return nil, sentinel
			}
			r, err := array.Evaluate(tech, d, act)
			if err == nil {
				successes.Add(1)
			}
			return r, err
		},
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	_, err := f.Optimize(opts)
	if !errors.Is(err, sentinel) {
		t.Fatalf("Optimize error = %v, want the injected sentinel", err)
	}
	var serr *SearchError
	if !errors.As(err, &serr) {
		t.Fatalf("Optimize error %T does not carry SearchStats", err)
	}
	if got, want := serr.Stats.Evaluated, int(successes.Load()); got != want {
		t.Errorf("aborted search reports %d evaluations, %d actually succeeded", got, want)
	}
	full := 6 * 25 * 10 * 10 // rows × VSSC levels × Npre × Nwr
	if serr.Stats.Evaluated >= full {
		t.Errorf("search ran to completion (%d evals) despite the error", serr.Stats.Evaluated)
	}
}

func TestOptimizePreCancelledContext(t *testing.T) {
	f := paperFramework(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.OptimizeContext(ctx, Options{CapacityBits: 4 * 1024 * 8, Flavor: device.HVT, Method: M2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	var serr *SearchError
	if !errors.As(err, &serr) {
		t.Fatalf("error %T does not carry SearchStats", err)
	}
	if serr.Stats.Evaluated != 0 {
		t.Errorf("pre-cancelled search still evaluated %d points", serr.Stats.Evaluated)
	}
}

// TestGreedyPropagatesModelError: a model bug must surface as an error, not
// masquerade as an infeasible search space.
func TestGreedyPropagatesModelError(t *testing.T) {
	f := paperFramework(t)
	sentinel := errors.New("injected model failure")
	opts := Options{
		CapacityBits: 8192,
		Flavor:       device.HVT,
		Method:       M2,
		evalHook: func(*array.Tech, array.Design, array.Activity) (*array.Result, error) {
			return nil, sentinel
		},
	}
	_, err := f.GreedyOptimize(opts)
	if !errors.Is(err, sentinel) {
		t.Fatalf("GreedyOptimize error = %v, want the injected sentinel", err)
	}
	if errors.Is(err, ErrInfeasible) {
		t.Error("model error misreported as an infeasible search space")
	}
	var serr *SearchError
	if !errors.As(err, &serr) {
		t.Fatalf("error %T does not carry SearchStats", err)
	}
}

// TestInfeasibleSpaceIsClassified: when every point fails a constraint, both
// searchers report ErrInfeasible (so bank sweeps can skip the partitioning)
// rather than a generic error.
func TestInfeasibleSpaceIsClassified(t *testing.T) {
	f := paperFramework(t)
	hook := func(tech *array.Tech, d array.Design, act array.Activity) (*array.Result, error) {
		r, err := array.Evaluate(tech, d, act)
		if err != nil {
			return nil, err
		}
		r.RailsSettleInTime = false
		return r, nil
	}
	opts := Options{
		CapacityBits: 4096,
		Flavor:       device.HVT,
		Method:       M2,
		Space:        SearchSpace{VSSCMin: -0.02, VSSCStep: 0.01, NRMax: 1024, NCMax: 1024, NpreMax: 2, NwrMax: 2},
		evalHook:     hook,
	}
	if _, err := f.Optimize(opts); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Optimize error = %v, want ErrInfeasible", err)
	}
	if _, err := f.GreedyOptimize(opts); !errors.Is(err, ErrInfeasible) {
		t.Errorf("GreedyOptimize error = %v, want ErrInfeasible", err)
	}
}

// TestGreedyHonorsSearchWLSegs: the greedy searcher must explore the same
// divided-wordline axis as the exhaustive one when SearchWLSegs is set, and
// stay flat otherwise.
func TestGreedyHonorsSearchWLSegs(t *testing.T) {
	f := paperFramework(t)
	for _, dwl := range []bool{false, true} {
		maxSegs := 0
		opts := Options{
			CapacityBits: 32768,
			Flavor:       device.HVT,
			Method:       M2,
			W:            8,
			Space:        SearchSpace{VSSCMin: -0.02, VSSCStep: 0.01, NRMax: 1024, NCMax: 1024, NpreMax: 5, NwrMax: 5},
			SearchWLSegs: dwl,
			evalHook: func(tech *array.Tech, d array.Design, act array.Activity) (*array.Result, error) {
				if s := d.Geom.Segments(); s > maxSegs {
					maxSegs = s
				}
				return array.Evaluate(tech, d, act)
			},
		}
		if _, err := f.GreedyOptimize(opts); err != nil {
			t.Fatalf("SearchWLSegs=%v: %v", dwl, err)
		}
		if dwl && maxSegs < 2 {
			t.Errorf("SearchWLSegs=true but greedy never evaluated a divided wordline (max segments %d)", maxSegs)
		}
		if !dwl && maxSegs > 1 {
			t.Errorf("SearchWLSegs=false but greedy evaluated %d-segment wordlines", maxSegs)
		}
	}
}

// TestOptimizeShardsFinerThanRows: the work must be sharded on (row × VSSC)
// chunks, not row candidates alone, so parallelism is not capped by the
// handful of feasible organizations.
func TestOptimizeShardsFinerThanRows(t *testing.T) {
	f := paperFramework(t)
	opts := Options{
		CapacityBits: 4 * 1024 * 8,
		Flavor:       device.HVT,
		Method:       M2,
		Space:        SearchSpace{VSSCMin: -0.240, VSSCStep: 0.010, NRMax: 1024, NCMax: 1024, NpreMax: 2, NwrMax: 2},
	}
	opt, err := f.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	rows := len(rowCandidates(opts.CapacityBits, opts.Space))
	vsscs := len(vsscCandidates(opts.Method, opts.Space))
	if rows != 6 || vsscs != 25 {
		t.Fatalf("candidate enumeration changed: %d rows, %d VSSC levels", rows, vsscs)
	}
	if opt.Stats.Chunks != rows*vsscs {
		t.Errorf("Chunks = %d, want the full (row × VSSC) cross product %d", opt.Stats.Chunks, rows*vsscs)
	}
	if opt.Stats.Chunks <= rows {
		t.Errorf("sharding no finer than the %d row candidates", rows)
	}
	wantWorkers := runtime.GOMAXPROCS(0)
	if wantWorkers > opt.Stats.Chunks {
		wantWorkers = opt.Stats.Chunks
	}
	if opt.Stats.Workers != wantWorkers {
		t.Errorf("Workers = %d, want min(GOMAXPROCS, chunks) = %d", opt.Stats.Workers, wantWorkers)
	}
	if opt.Evaluated != opt.Stats.Evaluated || opt.Skipped != opt.Stats.SkippedTotal() {
		t.Error("Optimum.Evaluated/Skipped out of sync with Stats")
	}
}

// TestParetoFrontDeterministic: the frontier merge must also be
// schedule-independent.
func TestParetoFrontDeterministic(t *testing.T) {
	f := paperFramework(t)
	opts := Options{
		CapacityBits: 4096,
		Flavor:       device.HVT,
		Method:       M2,
		Space:        SearchSpace{VSSCMin: -0.06, VSSCStep: 0.02, NRMax: 1024, NCMax: 1024, NpreMax: 6, NwrMax: 4},
	}
	var ref []DesignPoint
	for i, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		front, err := f.ParetoFront(opts)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if i == 0 {
			ref = front
			continue
		}
		if !reflect.DeepEqual(ref, front) {
			t.Errorf("Pareto front is schedule-dependent: %d vs %d points", len(ref), len(front))
		}
	}
}
