package exp

import (
	"strings"
	"testing"

	"sramco/internal/device"
)

func TestVddScalingArgument(t *testing.T) {
	if testing.Short() {
		t.Skip("per-Vdd TechSimulated characterization skipped in -short mode")
	}
	// The paper's §1 claim: lowering Vdd on an LVT array is a weaker lever
	// than adopting HVT cells at nominal supply, because leakage dominates
	// large arrays and FinFET DIBL is negligible.
	rows, err := VddScaling(16*1024*8, []float64{0.35, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	get := func(vdd float64, f device.Flavor) VddScaleRow {
		for _, r := range rows {
			if r.Vdd == vdd && r.Flavor == f {
				return r
			}
		}
		t.Fatalf("missing row %g %v", vdd, f)
		return VddScaleRow{}
	}
	lvtLow := get(0.35, device.LVT)
	lvtNom := get(0.45, device.LVT)
	hvtNom := get(0.45, device.HVT)

	// Scaling helps the LVT array's energy...
	if !(lvtLow.Energy < lvtNom.Energy) {
		t.Errorf("Vdd scaling should cut LVT energy: %g -> %g", lvtNom.Energy, lvtLow.Energy)
	}
	// ...and cuts its cell leakage...
	if !(lvtLow.LeakCell < lvtNom.LeakCell) {
		t.Errorf("Vdd scaling should cut LVT leakage: %g -> %g", lvtNom.LeakCell, lvtLow.LeakCell)
	}
	// ...but the scaled-LVT leakage stays far above HVT at nominal (paper
	// Fig. 2(b): even LVT@100mV leaks ~5× HVT@450mV)...
	if !(lvtLow.LeakCell > 2*hvtNom.LeakCell) {
		t.Errorf("scaled LVT leakage (%g) should stay well above nominal HVT (%g)", lvtLow.LeakCell, hvtNom.LeakCell)
	}
	// ...and HVT at nominal still wins the energy-delay product.
	if !(hvtNom.EDP < lvtLow.EDP) {
		t.Errorf("HVT@450mV EDP (%g) should beat LVT@350mV (%g)", hvtNom.EDP, lvtLow.EDP)
	}

	tab := VddScaleTable(rows)
	if !strings.Contains(tab.ASCII(), "350") {
		t.Error("table missing the scaled-Vdd row")
	}
}
