package exp

import (
	"fmt"

	"sramco/internal/cell"
	"sramco/internal/device"
)

// CornerRow is one process corner's cell characterization — an extension
// experiment beyond the paper: sign-off of the chosen assist operating
// point across global process variation.
type CornerRow struct {
	Corner device.Corner
	RSNM   float64
	WM     float64
	IRead  float64
	Leak   float64
}

// CornerAnalysis characterizes the cell at every process corner under the
// given assist biases.
func CornerAnalysis(flavor device.Flavor, read cell.ReadBias, write cell.WriteBias) ([]CornerRow, error) {
	base := device.Default7nm()
	rows := make([]CornerRow, 0, len(device.Corners()))
	for _, corner := range device.Corners() {
		c := &cell.Cell{Lib: base.AtCorner(corner), Flavor: flavor}
		row := CornerRow{Corner: corner}
		var err error
		if row.RSNM, err = c.ReadSNM(read); err != nil {
			return nil, fmt.Errorf("exp: corner %v RSNM: %w", corner, err)
		}
		if row.WM, err = c.WriteMargin(write); err != nil {
			return nil, fmt.Errorf("exp: corner %v WM: %w", corner, err)
		}
		if row.IRead, err = c.ReadCurrent(read); err != nil {
			return nil, fmt.Errorf("exp: corner %v I_read: %w", corner, err)
		}
		if row.Leak, err = c.LeakagePower(read.Vdd); err != nil {
			return nil, fmt.Errorf("exp: corner %v leakage: %w", corner, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CornerTable renders a corner analysis.
func CornerTable(title string, rows []CornerRow) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"corner", "RSNM (mV)", "WM (mV)", "I_read (µA)", "P_leak (nW)"},
	}
	for _, r := range rows {
		t.AddRow(r.Corner.String(), r.RSNM*1e3, r.WM*1e3, r.IRead*1e6, r.Leak*1e9)
	}
	return t
}

// TempRow is one temperature point of the environmental sweep (extension
// experiment): cell leakage, read current and read stability vs temperature.
type TempRow struct {
	TempK float64
	Leak  float64
	IRead float64
	RSNM  float64
}

// TemperatureSweep characterizes the cell across operating temperatures at
// the given read bias.
func TemperatureSweep(flavor device.Flavor, read cell.ReadBias, temps []float64) ([]TempRow, error) {
	base := device.Default7nm()
	rows := make([]TempRow, 0, len(temps))
	for _, tk := range temps {
		c := &cell.Cell{Lib: base.AtTemperature(tk), Flavor: flavor}
		row := TempRow{TempK: tk}
		var err error
		if row.Leak, err = c.LeakagePower(read.Vdd); err != nil {
			return nil, fmt.Errorf("exp: %gK leakage: %w", tk, err)
		}
		if row.IRead, err = c.ReadCurrent(read); err != nil {
			return nil, fmt.Errorf("exp: %gK I_read: %w", tk, err)
		}
		if row.RSNM, err = c.ReadSNM(read); err != nil {
			return nil, fmt.Errorf("exp: %gK RSNM: %w", tk, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TempTable renders a temperature sweep.
func TempTable(title string, rows []TempRow) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"T (K)", "P_leak (nW)", "I_read (µA)", "RSNM (mV)"},
	}
	for _, r := range rows {
		t.AddRow(r.TempK, r.Leak*1e9, r.IRead*1e6, r.RSNM*1e3)
	}
	return t
}
