package exp

import (
	"fmt"

	"sramco/internal/cell"
	"sramco/internal/device"
	"sramco/internal/wire"
)

// fig3Column is the column depth assumed by the Fig. 3 bitline-delay curves
// ("a column with 64 SRAM cells is assumed").
const fig3Column = 64

// fig3DeltaVS is the sense voltage used for the BL-delay curves (§5).
const fig3DeltaVS = 0.120

// Fig2Row is one supply point of Fig. 2: hold SNM and leakage power of both
// flavors.
type Fig2Row struct {
	Vdd     float64
	HSNMLVT float64
	HSNMHVT float64
	LeakLVT float64
	LeakHVT float64
}

// Fig2 characterizes HSNM (Fig. 2(a)) and leakage power (Fig. 2(b)) of the
// 6T-LVT and 6T-HVT cells over the supply sweep.
func Fig2(vdds []float64) ([]Fig2Row, error) {
	lvt, hvt := cell.New(device.LVT), cell.New(device.HVT)
	rows := make([]Fig2Row, 0, len(vdds))
	for _, v := range vdds {
		r := Fig2Row{Vdd: v}
		var err error
		if r.HSNMLVT, err = lvt.HoldSNM(v); err != nil {
			return nil, fmt.Errorf("exp: Fig2 LVT HSNM at %gV: %w", v, err)
		}
		if r.HSNMHVT, err = hvt.HoldSNM(v); err != nil {
			return nil, fmt.Errorf("exp: Fig2 HVT HSNM at %gV: %w", v, err)
		}
		if r.LeakLVT, err = lvt.LeakagePower(v); err != nil {
			return nil, fmt.Errorf("exp: Fig2 LVT leakage at %gV: %w", v, err)
		}
		if r.LeakHVT, err = hvt.LeakagePower(v); err != nil {
			return nil, fmt.Errorf("exp: Fig2 HVT leakage at %gV: %w", v, err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Fig2Table renders Fig. 2 rows.
func Fig2Table(rows []Fig2Row) *Table {
	t := &Table{
		Title:   "Fig. 2: HSNM and leakage power vs Vdd (6T-LVT vs 6T-HVT)",
		Headers: []string{"Vdd (mV)", "HSNM LVT (mV)", "HSNM HVT (mV)", "P_leak LVT (nW)", "P_leak HVT (nW)"},
	}
	for _, r := range rows {
		t.AddRow(r.Vdd*1e3, r.HSNMLVT*1e3, r.HSNMHVT*1e3, r.LeakLVT*1e9, r.LeakHVT*1e9)
	}
	return t
}

// Fig3aResult compares RSNM and read current of 6T-HVT normalized to 6T-LVT
// at nominal bias (Fig. 3(a); paper: RSNM 1.9×, I_read ≈ 0.5×).
type Fig3aResult struct {
	RSNMLVT, RSNMHVT   float64
	IReadLVT, IReadHVT float64
}

// RSNMRatio returns RSNM_HVT / RSNM_LVT.
func (r Fig3aResult) RSNMRatio() float64 { return r.RSNMHVT / r.RSNMLVT }

// IReadRatio returns I_read,HVT / I_read,LVT.
func (r Fig3aResult) IReadRatio() float64 { return r.IReadHVT / r.IReadLVT }

// Fig3a measures the flavor comparison at nominal read bias.
func Fig3a(vdd float64) (*Fig3aResult, error) {
	lvt, hvt := cell.New(device.LVT), cell.New(device.HVT)
	b := cell.NominalRead(vdd)
	var res Fig3aResult
	var err error
	if res.RSNMLVT, err = lvt.ReadSNM(b); err != nil {
		return nil, err
	}
	if res.RSNMHVT, err = hvt.ReadSNM(b); err != nil {
		return nil, err
	}
	if res.IReadLVT, err = lvt.ReadCurrent(b); err != nil {
		return nil, err
	}
	if res.IReadHVT, err = hvt.ReadCurrent(b); err != nil {
		return nil, err
	}
	return &res, nil
}

// AssistRow is one knob point of a read-assist sweep (Figs. 3(b)-(d)):
// margin and 64-cell-column bitline delay.
type AssistRow struct {
	V       float64 // the technique's knob voltage
	RSNM    float64
	IRead   float64
	BLDelay float64 // C_BL(64 rows)·ΔVs / I_read
}

// readAssistSweep evaluates a read bias builder over knob values.
func readAssistSweep(flavor device.Flavor, vdd float64, knobs []float64, bias func(v float64) cell.ReadBias) ([]AssistRow, error) {
	c := cell.New(flavor)
	caps := deviceCaps()
	geom := wire.Geometry{NR: fig3Column, NC: 64, W: 64, Npre: 1, Nwr: 1}
	cbl := wire.BL(geom, caps)
	rows := make([]AssistRow, 0, len(knobs))
	for _, v := range knobs {
		b := bias(v)
		row := AssistRow{V: v}
		var err error
		if row.RSNM, err = c.ReadSNM(b); err != nil {
			return nil, fmt.Errorf("exp: RSNM at %gV: %w", v, err)
		}
		if row.IRead, err = c.ReadCurrent(b); err != nil {
			return nil, fmt.Errorf("exp: I_read at %gV: %w", v, err)
		}
		row.BLDelay = cbl * fig3DeltaVS / row.IRead
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig3b sweeps the Vdd-boost level VDDC (Fig. 3(b)).
func Fig3b(flavor device.Flavor, vdd float64, vddcs []float64) ([]AssistRow, error) {
	return readAssistSweep(flavor, vdd, vddcs, func(v float64) cell.ReadBias {
		b := cell.NominalRead(vdd)
		b.VDDC = v
		return b
	})
}

// Fig3c sweeps the negative-Gnd level VSSC (Fig. 3(c)).
func Fig3c(flavor device.Flavor, vdd float64, vsscs []float64) ([]AssistRow, error) {
	return readAssistSweep(flavor, vdd, vsscs, func(v float64) cell.ReadBias {
		b := cell.NominalRead(vdd)
		b.VSSC = v
		return b
	})
}

// Fig3d sweeps the wordline underdrive level VWL (Fig. 3(d)).
func Fig3d(flavor device.Flavor, vdd float64, vwls []float64) ([]AssistRow, error) {
	return readAssistSweep(flavor, vdd, vwls, func(v float64) cell.ReadBias {
		b := cell.NominalRead(vdd)
		b.VWL = v
		return b
	})
}

// AssistTable renders a read-assist sweep.
func AssistTable(title, knob string, rows []AssistRow) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{knob + " (mV)", "RSNM (mV)", "I_read (µA)", "BL delay, 64 cells (ps)"},
	}
	for _, r := range rows {
		t.AddRow(r.V*1e3, r.RSNM*1e3, r.IRead*1e6, r.BLDelay*1e12)
	}
	return t
}

// WriteAssistRow is one knob point of a write-assist sweep (Fig. 5).
type WriteAssistRow struct {
	V          float64
	WM         float64
	WriteDelay float64
}

// Fig5a sweeps the wordline-overdrive level (Fig. 5(a)).
func Fig5a(flavor device.Flavor, vdd float64, vwls []float64) ([]WriteAssistRow, error) {
	return writeAssistSweep(flavor, vwls, func(v float64) cell.WriteBias {
		b := cell.NominalWrite(vdd)
		b.VWL = v
		return b
	})
}

// Fig5b sweeps the negative-BL level (Fig. 5(b)).
func Fig5b(flavor device.Flavor, vdd float64, vbls []float64) ([]WriteAssistRow, error) {
	return writeAssistSweep(flavor, vbls, func(v float64) cell.WriteBias {
		b := cell.NominalWrite(vdd)
		b.VBL = v
		return b
	})
}

func writeAssistSweep(flavor device.Flavor, knobs []float64, bias func(v float64) cell.WriteBias) ([]WriteAssistRow, error) {
	c := cell.New(flavor)
	rows := make([]WriteAssistRow, 0, len(knobs))
	for _, v := range knobs {
		b := bias(v)
		row := WriteAssistRow{V: v}
		var err error
		if row.WM, err = c.WriteMargin(b); err != nil {
			return nil, fmt.Errorf("exp: WM at %gV: %w", v, err)
		}
		if row.WriteDelay, err = c.WriteDelay(b); err != nil {
			return nil, fmt.Errorf("exp: write delay at %gV: %w", v, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteAssistTable renders a write-assist sweep.
func WriteAssistTable(title, knob string, rows []WriteAssistRow) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{knob + " (mV)", "WM (mV)", "cell write delay (ps)"},
	}
	for _, r := range rows {
		t.AddRow(r.V*1e3, r.WM*1e3, r.WriteDelay*1e12)
	}
	return t
}

// deviceCaps assembles the Table-1 capacitance inputs from the default
// library.
func deviceCaps() wire.DeviceCaps {
	lib := device.Default7nm()
	return wire.DeviceCaps{
		Cdn: lib.NLVT.CdFin, Cdp: lib.PLVT.CdFin,
		Cgn: lib.NLVT.CgFin, Cgp: lib.PLVT.CgFin,
	}
}

// ReadCurrentFitResult reports the power-law fit of the simulated read
// current against the paper's published HVT law (§5).
type ReadCurrentFitResult struct {
	A, B       float64 // fitted exponent and coefficient
	PaperA     float64 // 1.3
	PaperB     float64 // 9.5e-5
	GainNeg240 float64 // I(VDDC*, -240mV) / I(VDDC*, 0) — paper quotes 4.3×
	PaperGain  float64
}

// ReadCurrentFit fits the simulated 6T-HVT read current at VDDC = 550 mV
// over the VSSC sweep.
func ReadCurrentFit(vdd float64) (*ReadCurrentFitResult, error) {
	c := cell.New(device.HVT)
	rb := cell.NominalRead(vdd)
	rb.VDDC = 0.550
	vsscs := []float64{0, -0.04, -0.08, -0.12, -0.16, -0.20, -0.24}
	a, b, err := c.ReadCurrentFit(rb, vsscs, c.Lib.NHVT.Vt0)
	if err != nil {
		return nil, err
	}
	i0, err := c.ReadCurrent(rb)
	if err != nil {
		return nil, err
	}
	rbn := rb
	rbn.VSSC = -0.240
	i1, err := c.ReadCurrent(rbn)
	if err != nil {
		return nil, err
	}
	return &ReadCurrentFitResult{
		A: a, B: b,
		PaperA: 1.3, PaperB: 9.5e-5,
		GainNeg240: i1 / i0, PaperGain: 4.3,
	}, nil
}
