package exp

import (
	"context"
	"fmt"

	"sramco/internal/core"
	"sramco/internal/device"
	"sramco/internal/unit"
)

// PaperCapacities are the five capacities of Table 4 / Fig. 7, in bits.
func PaperCapacities() []int {
	return []int{
		128 * 8,       // 128 B
		256 * 8,       // 256 B
		1 * 1024 * 8,  // 1 KB
		4 * 1024 * 8,  // 4 KB
		16 * 1024 * 8, // 16 KB
	}
}

// Config identifies one of the four array configurations of §5
// (6T-{LVT,HVT}-{M1,M2}).
type Config struct {
	Flavor device.Flavor
	Method core.Method
}

func (c Config) String() string { return fmt.Sprintf("6T-%v-%v", c.Flavor, c.Method) }

// AllConfigs returns the four configurations in the paper's order.
func AllConfigs() []Config {
	return []Config{
		{device.LVT, core.M1},
		{device.HVT, core.M1},
		{device.LVT, core.M2},
		{device.HVT, core.M2},
	}
}

// Table4Row is one optimized design point: the paper's Table 4 columns plus
// the evaluation totals needed for Fig. 7.
type Table4Row struct {
	CapacityBits int
	Config       Config

	NR, NC, Npre, Nwr int
	VDDC, VSSC, VWL   float64

	Delay   float64 // D_array
	Energy  float64 // E_array
	EDP     float64
	BLDelay float64 // read bitline delay component (Fig. 7(d))

	Evaluated int // search cost
}

// Table4 runs the co-optimization for every capacity × configuration.
func Table4(fw *core.Framework, capacities []int) ([]Table4Row, error) {
	return Table4Context(context.Background(), fw, capacities)
}

// Table4Context is Table4 with cancellation threaded through every search.
func Table4Context(ctx context.Context, fw *core.Framework, capacities []int) ([]Table4Row, error) {
	var rows []Table4Row
	for _, bits := range capacities {
		for _, cfg := range AllConfigs() {
			opt, err := fw.OptimizeContext(ctx, core.Options{
				CapacityBits: bits,
				Flavor:       cfg.Flavor,
				Method:       cfg.Method,
			})
			if err != nil {
				return nil, fmt.Errorf("exp: Table4 %s %s: %w", unit.Bytes(bits), cfg, err)
			}
			d, r := opt.Best.Design, opt.Best.Result
			rows = append(rows, Table4Row{
				CapacityBits: bits,
				Config:       cfg,
				NR:           d.Geom.NR, NC: d.Geom.NC,
				Npre: d.Geom.Npre, Nwr: d.Geom.Nwr,
				VDDC: d.VDDC, VSSC: d.VSSC, VWL: d.VWL,
				Delay:     r.DArray,
				Energy:    r.EArray,
				EDP:       r.EDP,
				BLDelay:   r.Parts.DBLRead,
				Evaluated: opt.Evaluated,
			})
		}
	}
	return rows, nil
}

// Table4Render renders the Table-4 design parameters.
func Table4Render(rows []Table4Row) *Table {
	t := &Table{
		Title:   "Table 4: SRAM array design parameters for the minimum energy-delay point (voltages in mV)",
		Headers: []string{"M", "SRAM", "n_r", "n_c", "N_pre", "N_wr", "V_DDC", "V_SSC", "V_WL"},
	}
	for _, r := range rows {
		t.AddRow(unit.Bytes(r.CapacityBits), r.Config.String(),
			r.NR, r.NC, r.Npre, r.Nwr,
			fmt.Sprintf("%.0f", r.VDDC*1e3), fmt.Sprintf("%.0f", r.VSSC*1e3), fmt.Sprintf("%.0f", r.VWL*1e3))
	}
	return t
}

// Fig7Render renders the Fig. 7(a)-(c) series: delay, energy and EDP of the
// four configurations per capacity.
func Fig7Render(rows []Table4Row) *Table {
	t := &Table{
		Title:   "Fig. 7(a)-(c): delay, energy and EDP of the optimized arrays",
		Headers: []string{"M", "SRAM", "delay (ps)", "energy (fJ)", "EDP (aJ·s·1e-9)"},
	}
	for _, r := range rows {
		t.AddRow(unit.Bytes(r.CapacityBits), r.Config.String(),
			r.Delay*1e12, r.Energy*1e15, r.EDP*1e27)
	}
	return t
}

// Fig7dRow compares BL delay vs total delay for the HVT arrays (Fig. 7(d)).
type Fig7dRow struct {
	CapacityBits       int
	BLDelayM1, TotalM1 float64
	BLDelayM2, TotalM2 float64
}

// Fig7d extracts the HVT M1-vs-M2 bitline/total delay comparison from
// Table-4 rows.
func Fig7d(rows []Table4Row) []Fig7dRow {
	byCap := map[int]*Fig7dRow{}
	var order []int
	for _, r := range rows {
		if r.Config.Flavor != device.HVT {
			continue
		}
		fr, ok := byCap[r.CapacityBits]
		if !ok {
			fr = &Fig7dRow{CapacityBits: r.CapacityBits}
			byCap[r.CapacityBits] = fr
			order = append(order, r.CapacityBits)
		}
		if r.Config.Method == core.M1 {
			fr.BLDelayM1, fr.TotalM1 = r.BLDelay, r.Delay
		} else {
			fr.BLDelayM2, fr.TotalM2 = r.BLDelay, r.Delay
		}
	}
	out := make([]Fig7dRow, 0, len(order))
	for _, bits := range order {
		out = append(out, *byCap[bits])
	}
	return out
}

// Fig7dRender renders the Fig. 7(d) comparison.
func Fig7dRender(rows []Fig7dRow) *Table {
	t := &Table{
		Title:   "Fig. 7(d): BL delay vs total delay in 6T-HVT-M1 and 6T-HVT-M2 arrays (ps)",
		Headers: []string{"M", "BL delay M1", "total M1", "BL delay M2", "total M2", "BL reduction", "total reduction"},
	}
	for _, r := range rows {
		t.AddRow(unit.Bytes(r.CapacityBits),
			r.BLDelayM1*1e12, r.TotalM1*1e12, r.BLDelayM2*1e12, r.TotalM2*1e12,
			fmt.Sprintf("%.2fx", r.BLDelayM1/r.BLDelayM2),
			fmt.Sprintf("%.2fx", r.TotalM1/r.TotalM2))
	}
	return t
}

// Headline aggregates the paper's abstract numbers from Table-4 rows:
// average EDP reduction and delay penalty of HVT-M2 vs LVT-M2 for arrays of
// at least 1 KB.
type Headline struct {
	AvgEDPReduction  float64 // paper: 0.59
	AvgDelayPenalty  float64 // paper: 0.09
	MaxDelayPenalty  float64 // paper: 0.12
	EDPReduction16KB float64 // paper: 0.78
}

// ComputeHeadline derives the headline statistics from Table-4 rows.
func ComputeHeadline(rows []Table4Row) (*Headline, error) {
	find := func(bits int, cfg Config) (Table4Row, error) {
		for _, r := range rows {
			if r.CapacityBits == bits && r.Config == cfg {
				return r, nil
			}
		}
		return Table4Row{}, fmt.Errorf("exp: missing row %s %s", unit.Bytes(bits), cfg)
	}
	var caps []int
	seen := map[int]bool{}
	for _, r := range rows {
		if !seen[r.CapacityBits] {
			seen[r.CapacityBits] = true
			caps = append(caps, r.CapacityBits)
		}
	}
	var h Headline
	n := 0
	for _, bits := range caps {
		if bits < 8192 {
			continue // headline covers 1 KB-16 KB
		}
		lvt, err := find(bits, Config{device.LVT, core.M2})
		if err != nil {
			return nil, err
		}
		hvt, err := find(bits, Config{device.HVT, core.M2})
		if err != nil {
			return nil, err
		}
		red := 1 - hvt.EDP/lvt.EDP
		pen := hvt.Delay/lvt.Delay - 1
		h.AvgEDPReduction += red
		h.AvgDelayPenalty += pen
		if pen > h.MaxDelayPenalty {
			h.MaxDelayPenalty = pen
		}
		if bits == 16*1024*8 {
			h.EDPReduction16KB = red
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("exp: no rows ≥ 1KB")
	}
	h.AvgEDPReduction /= float64(n)
	h.AvgDelayPenalty /= float64(n)
	return &h, nil
}
