package exp

import (
	"math"
	"strings"
	"sync"
	"testing"

	"sramco/internal/core"
	"sramco/internal/device"
)

var (
	fwOnce sync.Once
	fwVal  *core.Framework
	fwErr  error
)

func paperFW(t *testing.T) *core.Framework {
	t.Helper()
	fwOnce.Do(func() { fwVal, fwErr = core.NewFramework(core.TechPaper, core.FrameworkOpts{}) })
	if fwErr != nil {
		t.Fatalf("NewFramework: %v", fwErr)
	}
	return fwVal
}

func TestFig2ShapeMatchesPaper(t *testing.T) {
	rows, err := Fig2([]float64{0.25, 0.35, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	last := rows[len(rows)-1]
	// At nominal: ~20× leakage gap (Fig. 2(b)).
	if r := last.LeakLVT / last.LeakHVT; r < 15 || r > 25 {
		t.Errorf("leakage ratio at nominal = %.1f, want ≈20", r)
	}
	// Leakage and HSNM decrease as Vdd drops.
	for i := 1; i < len(rows); i++ {
		if rows[i].LeakLVT <= rows[i-1].LeakLVT || rows[i].LeakHVT <= rows[i-1].LeakHVT {
			t.Error("leakage must grow with Vdd")
		}
		if rows[i].HSNMLVT <= rows[i-1].HSNMLVT {
			t.Error("HSNM must grow with Vdd")
		}
	}
}

func TestFig2PaperLVT100mVComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("low-voltage characterization skipped in -short mode")
	}
	// Paper §2: LVT leakage at 100 mV is still ~5× the HVT leakage at
	// 450 mV. Accept 2-12× on our substrate.
	rows, err := Fig2([]float64{0.10, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	ratio := rows[0].LeakLVT / rows[1].LeakHVT
	if ratio < 2 || ratio > 12 {
		t.Errorf("LVT@100mV / HVT@450mV leakage = %.1f, paper: ≈5", ratio)
	}
}

func TestFig3aRatios(t *testing.T) {
	r, err := Fig3a(device.Vdd)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 3(a): RSNM_HVT ≈ 1.9× LVT; I_read,HVT ≈ 0.5× LVT.
	if rr := r.RSNMRatio(); rr < 1.2 || rr > 2.5 {
		t.Errorf("RSNM ratio = %.2f, paper ≈1.9", rr)
	}
	if ir := r.IReadRatio(); ir < 0.3 || ir > 0.7 {
		t.Errorf("I_read ratio = %.2f, paper ≈0.5", ir)
	}
}

func TestFig3cNegativeGndSweepShape(t *testing.T) {
	rows, err := Fig3c(device.HVT, device.Vdd, []float64{0, -0.12, -0.24})
	if err != nil {
		t.Fatal(err)
	}
	// BL delay falls steeply and RSNM rises mildly as VSSC goes negative.
	for i := 1; i < len(rows); i++ {
		if rows[i].BLDelay >= rows[i-1].BLDelay {
			t.Error("BL delay must fall with more negative VSSC")
		}
		if rows[i].RSNM < rows[i-1].RSNM-0.002 {
			t.Error("RSNM should not degrade over this VSSC range")
		}
	}
	if gain := rows[0].BLDelay / rows[len(rows)-1].BLDelay; gain < 2 {
		t.Errorf("BL delay gain at -240 mV = %.2f×, want ≥2× (paper ≈4×)", gain)
	}
}

func TestFig3dUnderdriveTradeoff(t *testing.T) {
	rows, err := Fig3d(device.HVT, device.Vdd, []float64{0.45, 0.35, 0.30})
	if err != nil {
		t.Fatal(err)
	}
	// Lower VWL: higher RSNM, higher BL delay (the rejection reason).
	for i := 1; i < len(rows); i++ {
		if rows[i].RSNM <= rows[i-1].RSNM {
			t.Error("RSNM must rise as WL is underdriven")
		}
		if rows[i].BLDelay <= rows[i-1].BLDelay {
			t.Error("BL delay must rise as WL is underdriven")
		}
	}
}

func TestFig5aOverdriveShape(t *testing.T) {
	rows, err := Fig5a(device.HVT, device.Vdd, []float64{0.45, 0.54, 0.60})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].WM <= rows[i-1].WM {
			t.Error("WM must rise with WL overdrive")
		}
		if rows[i].WriteDelay >= rows[i-1].WriteDelay {
			t.Error("write delay must fall with WL overdrive")
		}
	}
}

func TestFig5bNegativeBLShape(t *testing.T) {
	rows, err := Fig5b(device.HVT, device.Vdd, []float64{0, -0.10})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].WM <= rows[0].WM {
		t.Error("WM must rise with negative BL")
	}
	if rows[1].WriteDelay >= rows[0].WriteDelay {
		t.Error("write delay must fall with negative BL")
	}
}

func TestReadCurrentFitAgainstPaperLaw(t *testing.T) {
	r, err := ReadCurrentFit(device.Vdd)
	if err != nil {
		t.Fatal(err)
	}
	if r.A < 0.9 || r.A > 1.8 {
		t.Errorf("fitted exponent %.2f, paper 1.3", r.A)
	}
	if r.GainNeg240 < 2.5 || r.GainNeg240 > 6 {
		t.Errorf("I_read gain at -240 mV = %.2f×, paper quotes 4.3× (law: 2.65×)", r.GainNeg240)
	}
}

func TestTable4AndFig7(t *testing.T) {
	fw := paperFW(t)
	caps := []int{1024, 8192, 131072} // 128 B, 1 KB, 16 KB for test speed
	rows, err := Table4(fw, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(caps)*4 {
		t.Fatalf("got %d rows, want %d", len(rows), len(caps)*4)
	}
	for _, r := range rows {
		if r.NR*r.NC != r.CapacityBits {
			t.Errorf("%s %s: n_r·n_c = %d ≠ %d", r.Config, r.Config, r.NR*r.NC, r.CapacityBits)
		}
		if r.Config.Method == core.M1 && r.VSSC != 0 {
			t.Errorf("M1 row has VSSC = %g", r.VSSC)
		}
		if r.Config.Method == core.M2 && r.Config.Flavor == device.HVT && r.VSSC > -0.05 {
			t.Errorf("HVT-M2 should use negative Gnd, got VSSC = %g", r.VSSC)
		}
		if r.EDP <= 0 || r.Delay <= 0 || r.Energy <= 0 {
			t.Errorf("non-positive metrics in row %+v", r)
		}
	}
	// Fig. 7(d): M2 must cut both BL and total delay of the HVT arrays.
	f7d := Fig7d(rows)
	if len(f7d) != len(caps) {
		t.Fatalf("Fig7d rows = %d", len(f7d))
	}
	for _, r := range f7d {
		if !(r.BLDelayM2 < r.BLDelayM1) {
			t.Errorf("%d bits: M2 BL delay (%g) not below M1 (%g)", r.CapacityBits, r.BLDelayM2, r.BLDelayM1)
		}
		if !(r.TotalM2 < r.TotalM1) {
			t.Errorf("%d bits: M2 total delay not below M1", r.CapacityBits)
		}
	}
	// Headline statistics over the ≥1KB subset.
	h, err := ComputeHeadline(rows)
	if err != nil {
		t.Fatal(err)
	}
	if h.AvgEDPReduction < 0.3 {
		t.Errorf("avg EDP reduction %.0f%%, paper 59%%", h.AvgEDPReduction*100)
	}
	if h.EDPReduction16KB < h.AvgEDPReduction-0.35 {
		t.Errorf("16KB reduction (%.0f%%) should be at least near the average", h.EDPReduction16KB*100)
	}
	// Rendering smoke checks.
	for _, tab := range []*Table{Table4Render(rows), Fig7Render(rows), Fig7dRender(f7d)} {
		if !strings.Contains(tab.ASCII(), "16KB") {
			t.Errorf("render missing 16KB row:\n%s", tab.ASCII())
		}
		if lines := strings.Count(tab.CSV(), "\n"); lines < 2 {
			t.Error("CSV render too short")
		}
	}
}

func TestComputeHeadlineErrors(t *testing.T) {
	if _, err := ComputeHeadline(nil); err == nil {
		t.Error("empty rows accepted")
	}
	rows := []Table4Row{{CapacityBits: 8192, Config: Config{device.LVT, core.M2}, EDP: 1, Delay: 1}}
	if _, err := ComputeHeadline(rows); err == nil {
		t.Error("missing HVT row accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "b"}}
	tab.AddRow("x,y", 1.5)
	tab.AddRow("plain", 2)
	ascii := tab.ASCII()
	if !strings.Contains(ascii, "T\n") || !strings.Contains(ascii, "plain") {
		t.Errorf("ASCII:\n%s", ascii)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("CSV quoting failed:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("CSV header:\n%s", csv)
	}
}

func TestFig2TableRender(t *testing.T) {
	tab := Fig2Table([]Fig2Row{{Vdd: 0.45, HSNMLVT: 0.22, HSNMHVT: 0.22, LeakLVT: 1.6e-9, LeakHVT: 8e-11}})
	if !strings.Contains(tab.ASCII(), "450") {
		t.Error("Fig2 table missing voltage")
	}
	at := AssistTable("t", "VSSC", []AssistRow{{V: -0.1, RSNM: 0.15, IRead: 1e-5, BLDelay: 5e-11}})
	if !strings.Contains(at.ASCII(), "-100") {
		t.Error("assist table missing knob")
	}
	wt := WriteAssistTable("t", "VWL", []WriteAssistRow{{V: 0.54, WM: 0.18, WriteDelay: 5e-12}})
	if !strings.Contains(wt.ASCII(), "540") {
		t.Error("write assist table missing knob")
	}
}

func TestFig3aRatioHelpers(t *testing.T) {
	r := Fig3aResult{RSNMLVT: 0.1, RSNMHVT: 0.19, IReadLVT: 10e-6, IReadHVT: 5e-6}
	if math.Abs(r.RSNMRatio()-1.9) > 1e-12 || math.Abs(r.IReadRatio()-0.5) > 1e-12 {
		t.Error("ratio helpers")
	}
}
