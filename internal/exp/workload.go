package exp

import (
	"context"
	"fmt"

	"sramco/internal/array"
	"sramco/internal/core"
	"sramco/internal/device"
)

// WorkloadRow is one (α, β) point of the workload-sensitivity extension:
// the optimized LVT-M2 and HVT-M2 EDPs under that activity profile.
type WorkloadRow struct {
	Alpha, Beta float64
	EDPLVT      float64
	EDPHVT      float64
}

// HVTGain returns the EDP reduction of HVT over LVT at this workload.
func (r WorkloadRow) HVTGain() float64 { return 1 - r.EDPHVT/r.EDPLVT }

// WorkloadSweep re-optimizes both flavors (method M2) over a grid of
// activity factors. The paper fixes α = β = 0.5; this extension shows how
// the HVT advantage grows as the array idles more (lower α: leakage
// dominates) and shrinks for switching-dominated profiles.
func WorkloadSweep(fw *core.Framework, capacityBits int, alphas, betas []float64) ([]WorkloadRow, error) {
	return WorkloadSweepContext(context.Background(), fw, capacityBits, alphas, betas)
}

// WorkloadSweepContext is WorkloadSweep with cancellation threaded through
// every search.
func WorkloadSweepContext(ctx context.Context, fw *core.Framework, capacityBits int, alphas, betas []float64) ([]WorkloadRow, error) {
	var rows []WorkloadRow
	for _, a := range alphas {
		for _, b := range betas {
			row := WorkloadRow{Alpha: a, Beta: b}
			for _, flavor := range []device.Flavor{device.LVT, device.HVT} {
				opt, err := fw.OptimizeContext(ctx, core.Options{
					CapacityBits: capacityBits,
					Flavor:       flavor,
					Method:       core.M2,
					Activity:     array.Activity{Alpha: a, Beta: b},
				})
				if err != nil {
					return nil, fmt.Errorf("exp: workload (α=%g β=%g) %v: %w", a, b, flavor, err)
				}
				if flavor == device.LVT {
					row.EDPLVT = opt.Best.Result.EDP
				} else {
					row.EDPHVT = opt.Best.Result.EDP
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WorkloadTable renders the workload sweep.
func WorkloadTable(rows []WorkloadRow) *Table {
	t := &Table{
		Title:   "Extension: HVT-M2 EDP gain over LVT-M2 across workload activity factors",
		Headers: []string{"alpha", "beta", "EDP LVT (1e-27 J*s)", "EDP HVT (1e-27 J*s)", "HVT gain"},
	}
	for _, r := range rows {
		t.AddRow(r.Alpha, r.Beta, r.EDPLVT*1e27, r.EDPHVT*1e27,
			fmt.Sprintf("%.0f%%", r.HVTGain()*100))
	}
	return t
}
