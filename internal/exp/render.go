// Package exp contains the experiment harness that regenerates every table
// and figure of the paper's evaluation (§5): the Fig. 2 voltage sweeps, the
// Fig. 3/Fig. 5 assist sweeps, the Table 4 design-parameter optimization and
// the Fig. 7 delay/energy/EDP comparison, plus the read-current law fit.
//
// Each runner returns typed rows; this file renders them as ASCII tables and
// CSV for the cmd/figures tool and EXPERIMENTS.md.
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row. Values are rendered with %v unless they
// are already strings.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (RFC-4180 quoting for
// cells containing commas or quotes).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
