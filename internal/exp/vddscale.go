package exp

import (
	"context"
	"fmt"

	"sramco/internal/core"
	"sramco/internal/device"
)

// VddScaleRow is one point of the Vdd-scaling extension experiment: the
// optimized array metrics of a flavor at a scaled supply, with the assist
// rails re-derived by simulation at that supply.
type VddScaleRow struct {
	Vdd    float64
	Flavor device.Flavor

	VDDCStar, VWLStar float64 // re-derived minimum-yield rails
	LeakCell          float64

	Delay  float64
	Energy float64
	EDP    float64
}

// VddScaling quantifies the paper's §1 argument that supply scaling is a
// weaker lever than HVT adoption: for each supply it builds a fully
// simulated framework (rails, leakage and current laws re-derived at that
// Vdd), optimizes the array for both flavors under M2, and reports the
// resulting metrics. Expect the LVT array's energy to fall with Vdd but its
// EDP to remain above the HVT array at nominal supply.
func VddScaling(capacityBits int, vdds []float64) ([]VddScaleRow, error) {
	return VddScalingContext(context.Background(), capacityBits, vdds)
}

// VddScalingContext is VddScaling with cancellation threaded through every
// per-supply framework build and search.
func VddScalingContext(ctx context.Context, capacityBits int, vdds []float64) ([]VddScaleRow, error) {
	var rows []VddScaleRow
	for _, vdd := range vdds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fw, err := core.NewFramework(core.TechSimulated, core.FrameworkOpts{Vdd: vdd})
		if err != nil {
			return nil, fmt.Errorf("exp: VddScaling framework at %gV: %w", vdd, err)
		}
		for _, flavor := range []device.Flavor{device.LVT, device.HVT} {
			opt, err := fw.OptimizeContext(ctx, core.Options{CapacityBits: capacityBits, Flavor: flavor, Method: core.M2})
			if err != nil {
				return nil, fmt.Errorf("exp: VddScaling %v at %gV: %w", flavor, vdd, err)
			}
			cc := fw.Cells[flavor]
			r := opt.Best.Result
			rows = append(rows, VddScaleRow{
				Vdd: vdd, Flavor: flavor,
				VDDCStar: cc.VDDCStar, VWLStar: cc.VWLStar, LeakCell: cc.Leak,
				Delay: r.DArray, Energy: r.EArray, EDP: r.EDP,
			})
		}
	}
	return rows, nil
}

// VddScaleTable renders the Vdd-scaling experiment.
func VddScaleTable(rows []VddScaleRow) *Table {
	t := &Table{
		Title:   "Extension: supply scaling vs HVT adoption (M2-optimized arrays, fully simulated rails)",
		Headers: []string{"Vdd (mV)", "flavor", "VDDC* (mV)", "VWL* (mV)", "P_leak/cell (pW)", "delay (ps)", "energy (fJ)", "EDP (1e-27 J·s)"},
	}
	for _, r := range rows {
		t.AddRow(r.Vdd*1e3, r.Flavor.String(), r.VDDCStar*1e3, r.VWLStar*1e3,
			r.LeakCell*1e12, r.Delay*1e12, r.Energy*1e15, r.EDP*1e27)
	}
	return t
}
