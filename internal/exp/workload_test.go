package exp

import (
	"strings"
	"testing"
)

func TestWorkloadSweep(t *testing.T) {
	fw := paperFW(t)
	rows, err := WorkloadSweep(fw, 16*1024*8, []float64{0.1, 1.0}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	byAlpha := map[float64]WorkloadRow{}
	for _, r := range rows {
		byAlpha[r.Alpha] = r
		if r.EDPLVT <= 0 || r.EDPHVT <= 0 {
			t.Fatalf("non-positive EDP in %+v", r)
		}
	}
	// At 16 KB the HVT array must win at every activity level...
	for a, r := range byAlpha {
		if r.HVTGain() <= 0 {
			t.Errorf("α=%g: HVT gain %.0f%%, expected positive at 16 KB", a, r.HVTGain()*100)
		}
	}
	// ...and the gain must grow as the array idles more (leakage-dominated
	// regime is where low-IOFF cells pay off).
	if !(byAlpha[0.1].HVTGain() > byAlpha[1.0].HVTGain()) {
		t.Errorf("idle gain (%.0f%%) should exceed busy gain (%.0f%%)",
			byAlpha[0.1].HVTGain()*100, byAlpha[1.0].HVTGain()*100)
	}
	tab := WorkloadTable(rows)
	if !strings.Contains(tab.ASCII(), "HVT gain") {
		t.Error("workload table render")
	}
}
