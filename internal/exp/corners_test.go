package exp

import (
	"strings"
	"testing"

	"sramco/internal/cell"
	"sramco/internal/device"
)

func TestCornerAnalysis(t *testing.T) {
	read := cell.ReadBias{Vdd: device.Vdd, VDDC: 0.55, VSSC: -0.24, VWL: device.Vdd}
	write := cell.WriteBias{Vdd: device.Vdd, VWL: 0.54, VBL: 0}
	rows, err := CornerAnalysis(device.HVT, read, write)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d corners", len(rows))
	}
	byCorner := map[device.Corner]CornerRow{}
	for _, r := range rows {
		byCorner[r.Corner] = r
		if r.RSNM <= 0 || r.IRead <= 0 || r.Leak <= 0 {
			t.Errorf("corner %v: non-positive characterization %+v", r.Corner, r)
		}
	}
	// FF leaks more and reads faster than SS.
	if !(byCorner[device.FF].Leak > byCorner[device.SS].Leak) {
		t.Error("FF must leak more than SS")
	}
	if !(byCorner[device.FF].IRead > byCorner[device.SS].IRead) {
		t.Error("FF must read faster than SS")
	}
	// The FS corner (fast N = strong access+PD with extra-strong access
	// disturb, slow P = weak keeper) is the classic read-stability worst
	// case: RSNM must not exceed the TT value.
	if byCorner[device.FS].RSNM > byCorner[device.TT].RSNM {
		t.Errorf("FS RSNM (%g) above TT (%g)", byCorner[device.FS].RSNM, byCorner[device.TT].RSNM)
	}
	// The SF corner (slow access, fast pull-up) is the write worst case.
	if byCorner[device.SF].WM > byCorner[device.TT].WM {
		t.Errorf("SF WM (%g) above TT (%g)", byCorner[device.SF].WM, byCorner[device.TT].WM)
	}
	tab := CornerTable("corners", rows)
	if !strings.Contains(tab.ASCII(), "FS") {
		t.Error("corner table missing FS row")
	}
}

func TestTemperatureSweep(t *testing.T) {
	read := cell.NominalRead(device.Vdd)
	rows, err := TemperatureSweep(device.HVT, read, []float64{253, 300, 398})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Leakage rises strongly with temperature.
	if !(rows[0].Leak < rows[1].Leak && rows[1].Leak < rows[2].Leak) {
		t.Error("leakage must rise with temperature")
	}
	if ratio := rows[2].Leak / rows[0].Leak; ratio < 5 {
		t.Errorf("leak(398K)/leak(253K) = %.1f, want ≥5", ratio)
	}
	tab := TempTable("temps", rows)
	if !strings.Contains(tab.ASCII(), "398") {
		t.Error("temp table missing hot row")
	}
}
