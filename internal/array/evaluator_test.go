package array

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sramco/internal/wire"
)

// lvtLikeIRead emulates the stronger low-Vt flavor: same functional form as
// the paper's fitted HVT law with a lower threshold and higher drive.
func lvtLikeIRead(vddc, vssc float64) float64 {
	return 2.0e-4 * math.Pow(vddc-vssc-0.280, 1.25)
}

// evaluatorTechs builds the four (accounting × flavor) technology variants
// the bit-identity property must span.
func evaluatorTechs(t *testing.T) []*Tech {
	t.Helper()
	base := testTech(t) // HVT-law, AllColumns
	hvtWC := *base
	hvtWC.Accounting = WorstCasePath
	lvtAC := *base
	lvtAC.IRead = lvtLikeIRead
	lvtAC.LeakCell = 1.692e-9
	lvtAC.WriteDelayCell = func(vwl float64) float64 { return 1.5e-12 * 0.55 / vwl }
	lvtWC := lvtAC
	lvtWC.Accounting = WorstCasePath
	return []*Tech{base, &hvtWC, &lvtAC, &lvtWC}
}

// TestEvaluatorBitIdenticalToEvaluate is the contract test of the evaluation
// engine: over a randomized sample of designs spanning flat and divided
// wordlines, both energy accountings and both flavors, Evaluator.Eval must
// reproduce array.Evaluate field for field at the == level (reflect.DeepEqual
// on the Result structs — no tolerance). A single Evaluator per (tech,
// activity) is reused across the whole sample, so Prepare's memoization and
// chunk transitions are exercised, and each design is additionally evaluated
// at a neighbor point of the same chunk to hit the memo fast path.
func TestEvaluatorBitIdenticalToEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	acts := []Activity{{Alpha: 0.5, Beta: 0.5}, {Alpha: 0.31, Beta: 0.82}}
	for _, tech := range evaluatorTechs(t) {
		for _, a := range acts {
			ev, err := NewEvaluator(tech, a)
			if err != nil {
				t.Fatalf("NewEvaluator: %v", err)
			}
			checked := 0
			for checked < 200 {
				nr := 2 << rng.Intn(10)  // 2..1024
				nc := 1 << rng.Intn(11)  // 1..1024
				segs := 1 << rng.Intn(4) // 1..8
				w := 64
				if nc < w {
					w = nc
				}
				d := Design{
					Geom: wire.Geometry{
						NR: nr, NC: nc, W: w,
						Npre: 1 + rng.Intn(50), Nwr: 1 + rng.Intn(20),
						WLSegs: segs,
					},
					VDDC: 0.55, VSSC: -0.01 * float64(rng.Intn(25)), VWL: 0.55,
				}
				if d.Geom.Validate() != nil {
					continue
				}
				checked++
				want, err := Evaluate(tech, d, a)
				if err != nil {
					t.Fatalf("Evaluate(%+v): %v", d, err)
				}
				if err := ev.Prepare(d.Geom, d.VDDC, d.VSSC, d.VWL); err != nil {
					t.Fatalf("Prepare(%+v): %v", d, err)
				}
				got, err := ev.Eval(d.Geom.Npre, d.Geom.Nwr)
				if err != nil {
					t.Fatalf("Eval(%+v): %v", d, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("Evaluator diverges from Evaluate at %+v:\n  want %+v\n  got  %+v", d, want, got)
				}
				// A neighbor inside the same chunk: Prepare memo-hits, the
				// per-point terms are recomputed from the cached invariants.
				n := d
				n.Geom.Npre = 1 + d.Geom.Npre%50
				n.Geom.Nwr = 1 + d.Geom.Nwr%20
				want2, err := Evaluate(tech, n, a)
				if err != nil {
					t.Fatalf("Evaluate(%+v): %v", n, err)
				}
				if err := ev.Prepare(n.Geom, n.VDDC, n.VSSC, n.VWL); err != nil {
					t.Fatalf("Prepare memo(%+v): %v", n, err)
				}
				got2, err := ev.Eval(n.Geom.Npre, n.Geom.Nwr)
				if err != nil {
					t.Fatalf("Eval(%+v): %v", n, err)
				}
				if !reflect.DeepEqual(want2, got2) {
					t.Fatalf("memoized Evaluator diverges at %+v:\n  want %+v\n  got  %+v", n, want2, got2)
				}
			}
		}
	}
}

// TestEvaluatorEvalIntoMatchesEval proves the allocation-free form fills the
// caller's Result identically to Eval.
func TestEvaluatorEvalIntoMatchesEval(t *testing.T) {
	tech := testTech(t)
	ev, err := NewEvaluator(tech, act)
	if err != nil {
		t.Fatal(err)
	}
	g := wire.Geometry{NR: 256, NC: 64, W: 64, Npre: 1, Nwr: 1}
	if err := ev.Prepare(g, 0.55, -0.1, 0.55); err != nil {
		t.Fatal(err)
	}
	want, err := ev.Eval(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	got.EDP = math.NaN() // stale garbage EvalInto must fully overwrite
	if err := ev.EvalInto(7, 3, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*want, got) {
		t.Fatalf("EvalInto diverges from Eval:\n  want %+v\n  got  %+v", *want, got)
	}
}

// TestEvaluatorErrors covers the guard paths: unprepared Eval, invalid fin
// counts, invalid rails and geometry in Prepare, zero Evaluator, and a
// non-positive read current.
func TestEvaluatorErrors(t *testing.T) {
	tech := testTech(t)
	ev, err := NewEvaluator(tech, act)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Eval(1, 1); err == nil {
		t.Error("Eval before Prepare accepted")
	}
	g := wire.Geometry{NR: 128, NC: 64, W: 64, Npre: 1, Nwr: 1}
	if err := ev.Prepare(g, 0.40, 0, 0.55); err == nil {
		t.Error("VDDC below Vdd accepted")
	}
	if err := ev.Prepare(g, 0.55, 0.05, 0.55); err == nil {
		t.Error("positive VSSC accepted")
	}
	if err := ev.Prepare(g, 0.55, 0, 0.40); err == nil {
		t.Error("VWL below Vdd accepted")
	}
	bad := g
	bad.NR = 3
	if err := ev.Prepare(bad, 0.55, 0, 0.55); err == nil {
		t.Error("invalid geometry accepted")
	}
	if err := ev.Prepare(g, 0.55, 0, 0.55); err != nil {
		t.Fatalf("valid Prepare after failures: %v", err)
	}
	if _, err := ev.Eval(0, 1); err == nil {
		t.Error("N_pre = 0 accepted")
	}
	if _, err := ev.Eval(1, 0); err == nil {
		t.Error("N_wr = 0 accepted")
	}
	if _, err := NewEvaluator(tech, Activity{Alpha: 2}); err == nil {
		t.Error("invalid activity accepted")
	}
	badTech := *tech
	badTech.IRead = nil
	if _, err := NewEvaluator(&badTech, act); err == nil {
		t.Error("invalid tech accepted")
	}
	var zero Evaluator
	if err := zero.Prepare(g, 0.55, 0, 0.55); err == nil {
		t.Error("zero Evaluator accepted Prepare")
	}
	zeroI := *tech
	zeroI.IRead = func(a, b float64) float64 { return 0 }
	ev2, err := NewEvaluator(&zeroI, act)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev2.Prepare(g, 0.55, 0, 0.55); err == nil {
		t.Error("zero read current accepted")
	}
	if _, err := ev2.Eval(1, 1); err == nil {
		t.Error("Eval after failed Prepare accepted")
	}
}

// TestEvaluatorClonesShareTechConcurrently mirrors the sharded search's use
// of the engine: one validated Evaluator, one clone per worker, all sharing
// the read-only *Tech while preparing different chunks concurrently. Run
// under -race (the Makefile check gate) this proves the sharing is sound.
func TestEvaluatorClonesShareTechConcurrently(t *testing.T) {
	tech := testTech(t)
	proto, err := NewEvaluator(tech, act)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Evaluate(tech, design(512, 64, 5, 2, 0.55, -0.12, 0.55), act)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			ev := proto.Clone()
			vssc := -0.01 * float64(worker)
			for nr := 2; nr <= 1024; nr *= 2 {
				g := wire.Geometry{NR: nr, NC: 64, W: 64, Npre: 1, Nwr: 1}
				if err := ev.Prepare(g, 0.55, vssc, 0.55); err != nil {
					errs <- err
					return
				}
				var r Result
				for npre := 1; npre <= 8; npre++ {
					for nwr := 1; nwr <= 4; nwr++ {
						if err := ev.EvalInto(npre, nwr, &r); err != nil {
							errs <- err
							return
						}
					}
				}
			}
			// One worker re-derives the reference point on its clone.
			if worker == 5 {
				g := wire.Geometry{NR: 512, NC: 64, W: 64}
				if err := ev.Prepare(g, 0.55, -0.12, 0.55); err != nil {
					errs <- err
					return
				}
				got, err := ev.Eval(5, 2)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("concurrent clone diverges from Evaluate")
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
