package array

import (
	"math"
	"reflect"
	"testing"

	"sramco/internal/wire"
)

// altTerms is a deliberately different second flavor for the hybrid tests:
// lower leakage, weaker read current, slower write — the qualitative shape
// of an HVT cell next to the fixture's base terms.
func altTerms() FlavorTerms {
	return FlavorTerms{
		LeakCell:        0.011e-9,
		IRead:           func(vddc, vssc float64) float64 { return 0.6 * paperIRead(vddc, vssc) },
		WriteDelayCell:  func(vwl float64) float64 { return 4.5e-12 * 0.55 / vwl },
		WriteEnergyCell: 4e-18,
	}
}

// hybridDesign stamps the hybrid fields onto the shared design fixture.
func hybridDesign(nr, nc, npre, nwr int, vddc, vssc, vwl float64, groups int, mask uint32) Design {
	d := design(nr, nc, npre, nwr, vddc, vssc, vwl)
	d.Groups = groups
	d.GroupMask = mask
	return d
}

// TestHybridUniformMaskBitIdentity is the bit-identity anchor of the hybrid
// model: a hybrid evaluation whose mask assigns every group the same flavor
// must reproduce the corresponding single-flavor evaluation exactly — the
// all-clear mask matches the base technology and the all-set mask matches a
// technology whose cell terms are the alternate flavor's. Only the Design
// stamp (Groups/GroupMask) may differ.
func TestHybridUniformMaskBitIdentity(t *testing.T) {
	tech := testTech(t)
	alt := altTerms()
	for _, groups := range []int{2, 4, 8} {
		d := hybridDesign(256, 128, 8, 2, 0.55, -0.1, 0.55, groups, 0)
		hyb, err := EvaluateHybrid(tech, d, act, alt)
		if err != nil {
			t.Fatalf("groups=%d mask=0: %v", groups, err)
		}
		plain, err := Evaluate(tech, design(256, 128, 8, 2, 0.55, -0.1, 0.55), act)
		if err != nil {
			t.Fatal(err)
		}
		hyb.Design = plain.Design
		if !reflect.DeepEqual(hyb, plain) {
			t.Errorf("groups=%d mask=0 diverges from the base-flavor evaluation:\nhybrid %+v\nplain  %+v",
				groups, hyb, plain)
		}

		full := uint32(1)<<groups - 1
		d = hybridDesign(256, 128, 8, 2, 0.55, -0.1, 0.55, groups, full)
		hyb, err = EvaluateHybrid(tech, d, act, alt)
		if err != nil {
			t.Fatalf("groups=%d mask=%#x: %v", groups, full, err)
		}
		altTech := *tech
		altTech.LeakCell = alt.LeakCell
		altTech.IRead = alt.IRead
		altTech.WriteDelayCell = alt.WriteDelayCell
		altTech.WriteEnergyCell = alt.WriteEnergyCell
		ref, err := Evaluate(&altTech, design(256, 128, 8, 2, 0.55, -0.1, 0.55), act)
		if err != nil {
			t.Fatal(err)
		}
		hyb.Design = ref.Design
		if !reflect.DeepEqual(hyb, ref) {
			t.Errorf("groups=%d mask=%#x diverges from the alt-flavor evaluation:\nhybrid %+v\nalt    %+v",
				groups, full, hyb, ref)
		}
	}
}

// TestHybridMixedMaskBounds pins the qualitative physics of a mixed mask:
// with a leakier base and a low-leak/slow alternate, any mixed assignment
// must land between the two pure evaluations on leakage energy, and its
// read delay must be at least the pure-base read delay (the alternate's
// weaker read current can only slow the worst bitline down).
func TestHybridMixedMaskBounds(t *testing.T) {
	tech := testTech(t)
	alt := altTerms()
	base, err := EvaluateHybrid(tech, hybridDesign(256, 128, 8, 2, 0.55, -0.1, 0.55, 4, 0), act, alt)
	if err != nil {
		t.Fatal(err)
	}
	all, err := EvaluateHybrid(tech, hybridDesign(256, 128, 8, 2, 0.55, -0.1, 0.55, 4, 0xF), act, alt)
	if err != nil {
		t.Fatal(err)
	}
	for mask := uint32(1); mask < 0xF; mask++ {
		mixed, err := EvaluateHybrid(tech, hybridDesign(256, 128, 8, 2, 0.55, -0.1, 0.55, 4, mask), act, alt)
		if err != nil {
			t.Fatalf("mask=%#x: %v", mask, err)
		}
		lo, hi := all.ELeak, base.ELeak
		if lo > hi {
			lo, hi = hi, lo
		}
		if mixed.ELeak < lo || mixed.ELeak > hi {
			t.Errorf("mask=%#x: ELeak %g outside pure range [%g, %g]", mask, mixed.ELeak, lo, hi)
		}
		if mixed.Parts.DBLRead < base.Parts.DBLRead {
			t.Errorf("mask=%#x: DBLRead %g faster than the pure base %g",
				mask, mixed.Parts.DBLRead, base.Parts.DBLRead)
		}
		if mixed.Parts.DBLRead > all.Parts.DBLRead+1e-18 && mixed.Parts.DBLRead > base.Parts.DBLRead+1e-18 {
			// The worst group delay is bounded by the slower pure case.
			worst := math.Max(base.Parts.DBLRead, all.Parts.DBLRead)
			if mixed.Parts.DBLRead > worst {
				t.Errorf("mask=%#x: DBLRead %g above both pure cases (worst %g)",
					mask, mixed.Parts.DBLRead, worst)
			}
		}
	}
}

// TestHybridRejectsBadConfigs pins the validation surface of the hybrid
// design fields.
func TestHybridRejectsBadConfigs(t *testing.T) {
	tech := testTech(t)
	alt := altTerms()
	for _, tc := range []struct {
		name   string
		groups int
		mask   uint32
		nr     int
	}{
		{"groups not power of two", 3, 0, 256},
		{"groups=1 (core canonicalizes, array rejects)", 1, 0, 256},
		{"groups above MaxGroups", 16, 0, 256},
		{"negative-equivalent mask overflow", 2, 4, 256},
		{"rows not divisible by groups", 8, 0, 68},
	} {
		d := hybridDesign(tc.nr, 128, 8, 2, 0.55, -0.1, 0.55, tc.groups, tc.mask)
		// Keep NR=68 structurally valid for the geometry layer by rounding
		// to a divisible-by-4 (but not by-8) row count.
		if _, err := EvaluateHybrid(tech, d, act, alt); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := EvaluateHybrid(tech, hybridDesign(256, 128, 8, 2, 0.55, -0.1, 0.55, 2, 1),
		act, FlavorTerms{}); err == nil {
		t.Error("empty alternate flavor terms accepted")
	}
}

// TestBoundRectDominatesHybridMux extends the bound-soundness property to
// the new dimensions: over hybrid chunks with mixed masks and column
// muxing, BoundRect's certificate must lower-bound every point of the
// rectangle on all five bounded metrics.
func TestBoundRectDominatesHybridMux(t *testing.T) {
	tech := testTech(t)
	alt := altTerms()
	ev, err := NewEvaluator(tech, act)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		mux    int
		groups int
		mask   uint32
	}{
		{0, 0, 0},
		{4, 0, 0},
		{0, 4, 0x5},
		{2, 8, 0x7F},
	} {
		g := wire.Geometry{NR: 256, NC: 128, W: 64, Npre: 1, Nwr: 1, WLSegs: 2, Mux: tc.mux}
		if tc.groups > 0 {
			err = ev.PrepareHybrid(g, 0.55, -0.1, 0.55, Hybrid{Groups: tc.groups, Mask: tc.mask, Alt: alt})
		} else {
			err = ev.Prepare(g, 0.55, -0.1, 0.55)
		}
		if err != nil {
			t.Fatalf("mux=%d groups=%d: %v", tc.mux, tc.groups, err)
		}
		const npreHi, nwrHi = 16, 4
		b, err := ev.BoundRect(1, npreHi, 1, nwrHi)
		if err != nil {
			t.Fatalf("mux=%d groups=%d BoundRect: %v", tc.mux, tc.groups, err)
		}
		var r Result
		for npre := 1; npre <= npreHi; npre++ {
			for nwr := 1; nwr <= nwrHi; nwr++ {
				if err := ev.EvalInto(npre, nwr, &r); err != nil {
					t.Fatalf("mux=%d groups=%d EvalInto(%d,%d): %v", tc.mux, tc.groups, npre, nwr, err)
				}
				if b.DArray > r.DArray || b.EArray > r.EArray || b.EDP > r.EDP ||
					b.Area > r.Area || b.PADP > r.PADP {
					t.Errorf("mux=%d groups=%d mask=%#x (npre=%d nwr=%d): bound exceeds point:\nbound %+v\npoint DArray=%g EArray=%g EDP=%g Area=%g PADP=%g",
						tc.mux, tc.groups, tc.mask, npre, nwr, b, r.DArray, r.EArray, r.EDP, r.Area, r.PADP)
				}
			}
		}
	}
}

// TestMuxDegenerateBitIdentity pins the mux no-op contract: Mux = 0 and the
// canonical degenerate encodings evaluate bit-identically to a geometry
// without the field, and a real mux ratio strictly changes the evaluation.
func TestMuxDegenerateBitIdentity(t *testing.T) {
	tech := testTech(t)
	base := design(256, 128, 8, 2, 0.55, -0.1, 0.55)
	plain, err := Evaluate(tech, base, act)
	if err != nil {
		t.Fatal(err)
	}
	muxed := base
	muxed.Geom.Mux = 4
	r, err := Evaluate(tech, muxed, act)
	if err != nil {
		t.Fatal(err)
	}
	if r.DArray <= plain.DArray {
		t.Error("mux=4 should slow the array down (select line + shared-column load)")
	}
	if r.Area == plain.Area {
		t.Error("mux=4 should change the layout area (sense amps shared, transmission gates added)")
	}
	if want := wire.Area(muxed.Geom); r.Area != want {
		t.Errorf("muxed Area %g diverges from wire.Area %g", r.Area, want)
	}
	if want := wire.Area(base.Geom); plain.Area != want {
		t.Errorf("unmuxed Area %g diverges from wire.Area %g", plain.Area, want)
	}
	if r.Parts.DMuxSel <= 0 || r.Parts.EMuxSel <= 0 {
		t.Error("mux=4 should produce non-zero select-line delay and energy")
	}
	if plain.Parts.DMuxSel != 0 || plain.Parts.EMuxSel != 0 {
		t.Error("unmuxed evaluation must carry exact-zero mux components")
	}
}
