package array

import (
	"math/rand"
	"reflect"
	"testing"

	"sramco/internal/wire"
)

// randomChunk draws a structurally valid chunk (geometry base + rails) for
// the given rng, spanning flat/divided wordlines and the VSSC sweep range.
func randomChunk(rng *rand.Rand) (wire.Geometry, float64) {
	for {
		nr := 2 << rng.Intn(10)  // 2..1024
		nc := 1 << rng.Intn(11)  // 1..1024
		segs := 1 << rng.Intn(4) // 1..8
		w := 64
		if nc < w {
			w = nc
		}
		g := wire.Geometry{NR: nr, NC: nc, W: w, Npre: 1, Nwr: 1, WLSegs: segs}
		if g.Validate() == nil {
			return g, -0.01 * float64(rng.Intn(25))
		}
	}
}

// TestEvalNextBitIdenticalToEvalInto is the delta-evaluation contract:
// advancing a Result along the inner N_wr sweep with EvalNext must reproduce
// a fresh EvalInto of the same point field for field at the == level, across
// all four (accounting × flavor) variants, random chunks and every N_wr step
// of several N_pre rows.
func TestEvalNextBitIdenticalToEvalInto(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	acts := []Activity{{Alpha: 0.5, Beta: 0.5}, {Alpha: 0.31, Beta: 0.82}}
	for _, tech := range evaluatorTechs(t) {
		for _, a := range acts {
			ev, err := NewEvaluator(tech, a)
			if err != nil {
				t.Fatal(err)
			}
			for chunkN := 0; chunkN < 40; chunkN++ {
				g, vssc := randomChunk(rng)
				if err := ev.Prepare(g, 0.55, vssc, 0.55); err != nil {
					t.Fatalf("Prepare(%+v): %v", g, err)
				}
				for _, npre := range []int{1, 1 + rng.Intn(50), 50} {
					var walk, fresh Result
					if err := ev.EvalInto(npre, 1, &walk); err != nil {
						t.Fatalf("EvalInto(%d,1): %v", npre, err)
					}
					for nwr := 2; nwr <= 20; nwr++ {
						if err := ev.EvalNext(&walk); err != nil {
							t.Fatalf("EvalNext to N_wr=%d: %v", nwr, err)
						}
						if err := ev.EvalInto(npre, nwr, &fresh); err != nil {
							t.Fatalf("EvalInto(%d,%d): %v", npre, nwr, err)
						}
						if !reflect.DeepEqual(walk, fresh) {
							t.Fatalf("EvalNext diverges from EvalInto at chunk %+v VSSC=%g N_pre=%d N_wr=%d:\n  walk  %+v\n  fresh %+v",
								g, vssc, npre, nwr, walk, fresh)
						}
					}
				}
			}
		}
	}
}

// TestEvalNextRejectsForeignResult: a Result from another chunk (or a
// zero/unevaluated Result) must be rejected instead of silently producing a
// mixed-chunk evaluation.
func TestEvalNextRejectsForeignResult(t *testing.T) {
	tech := testTech(t)
	ev, err := NewEvaluator(tech, act)
	if err != nil {
		t.Fatal(err)
	}
	g := wire.Geometry{NR: 256, NC: 64, W: 64, Npre: 1, Nwr: 1}
	if err := ev.Prepare(g, 0.55, -0.1, 0.55); err != nil {
		t.Fatal(err)
	}
	var r Result
	if err := ev.EvalNext(&r); err == nil {
		t.Error("EvalNext accepted a zero Result")
	}
	if err := ev.EvalInto(3, 2, &r); err != nil {
		t.Fatal(err)
	}
	foreign := r
	foreign.Design.VSSC = -0.2
	if err := ev.EvalNext(&foreign); err == nil {
		t.Error("EvalNext accepted a Result from different rails")
	}
	var unprepared Evaluator
	if err := unprepared.EvalNext(&r); err == nil {
		t.Error("EvalNext on an unprepared Evaluator succeeded")
	}
}

// TestEvalBlockBitIdenticalToEvalInto: a batched block over random
// (N_pre, N_wr) pairs — deliberately including runs sharing one N_pre so the
// row-term amortization path is exercised — must fill out[i] exactly as
// per-point EvalInto calls would.
func TestEvalBlockBitIdenticalToEvalInto(t *testing.T) {
	rng := rand.New(rand.NewSource(20260809))
	for _, tech := range evaluatorTechs(t) {
		ev, err := NewEvaluator(tech, Activity{Alpha: 0.5, Beta: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for chunkN := 0; chunkN < 25; chunkN++ {
			g, vssc := randomChunk(rng)
			if err := ev.Prepare(g, 0.55, vssc, 0.55); err != nil {
				t.Fatalf("Prepare(%+v): %v", g, err)
			}
			n := 1 + rng.Intn(16)
			npres := make([]int, n)
			nwrs := make([]int, n)
			npre := 1 + rng.Intn(50)
			for i := range npres {
				if rng.Intn(3) == 0 { // start a new N_pre run
					npre = 1 + rng.Intn(50)
				}
				npres[i], nwrs[i] = npre, 1+rng.Intn(20)
			}
			out := make([]Result, n)
			if err := ev.EvalBlock(npres, nwrs, out); err != nil {
				t.Fatalf("EvalBlock: %v", err)
			}
			var want Result
			for i := range npres {
				if err := ev.EvalInto(npres[i], nwrs[i], &want); err != nil {
					t.Fatalf("EvalInto(%d,%d): %v", npres[i], nwrs[i], err)
				}
				if !reflect.DeepEqual(out[i], want) {
					t.Fatalf("EvalBlock[%d] diverges at (%d,%d) chunk %+v:\n  got  %+v\n  want %+v",
						i, npres[i], nwrs[i], g, out[i], want)
				}
			}
		}
	}
	// Shape validation.
	ev, err := NewEvaluator(testTech(t), act)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Prepare(wire.Geometry{NR: 256, NC: 64, W: 64, Npre: 1, Nwr: 1}, 0.55, 0, 0.55); err != nil {
		t.Fatal(err)
	}
	if err := ev.EvalBlock([]int{1, 2}, []int{1}, make([]Result, 2)); err == nil {
		t.Error("EvalBlock accepted mismatched npre/nwr lengths")
	}
	if err := ev.EvalBlock([]int{1, 2}, []int{1, 1}, make([]Result, 1)); err == nil {
		t.Error("EvalBlock accepted an undersized out slice")
	}
	if err := ev.EvalBlock([]int{0}, []int{1}, make([]Result, 1)); err == nil {
		t.Error("EvalBlock accepted N_pre = 0")
	}
}

// TestEvalSweepBitIdenticalToEvalInto: the struct-of-arrays row kernel must
// reproduce EvalInto's DArray/EArray/EDP at the == level for every point of
// full and partial N_wr ranges, across chunk transitions (which invalidate
// the cached SoA lanes) and on Clones (which must not share them).
func TestEvalSweepBitIdenticalToEvalInto(t *testing.T) {
	rng := rand.New(rand.NewSource(20260810))
	acts := []Activity{{Alpha: 0.5, Beta: 0.5}, {Alpha: 0.31, Beta: 0.82}}
	for _, tech := range evaluatorTechs(t) {
		for _, a := range acts {
			proto, err := NewEvaluator(tech, a)
			if err != nil {
				t.Fatal(err)
			}
			ev := proto.Clone()
			var sweep SweepBlock
			var want Result
			for chunkN := 0; chunkN < 30; chunkN++ {
				g, vssc := randomChunk(rng)
				if err := ev.Prepare(g, 0.55, vssc, 0.55); err != nil {
					t.Fatalf("Prepare(%+v): %v", g, err)
				}
				lo := 1 + rng.Intn(3)
				hi := lo + rng.Intn(21-lo)
				for _, npre := range []int{1, 1 + rng.Intn(50)} {
					if err := ev.EvalSweep(npre, lo, hi, &sweep); err != nil {
						t.Fatalf("EvalSweep(%d,%d,%d): %v", npre, lo, hi, err)
					}
					for nwr := lo; nwr <= hi; nwr++ {
						if err := ev.EvalInto(npre, nwr, &want); err != nil {
							t.Fatal(err)
						}
						i := nwr - lo
						if sweep.DArray[i] != want.DArray || sweep.EArray[i] != want.EArray || sweep.EDP[i] != want.EDP {
							t.Fatalf("EvalSweep diverges at chunk %+v VSSC=%g N_pre=%d N_wr=%d:\n  got  D=%x E=%x EDP=%x\n  want D=%x E=%x EDP=%x",
								g, vssc, npre, nwr,
								sweep.DArray[i], sweep.EArray[i], sweep.EDP[i],
								want.DArray, want.EArray, want.EDP)
						}
					}
				}
			}
		}
	}
}

// TestBoundRectIsLowerBound: for random chunks and random rectangles, the
// bound must not exceed the exact metrics of any point inside the rectangle
// — the soundness property branch-and-bound pruning rests on. Tightness at
// the corner point is also checked loosely (within 1%) so the bound cannot
// silently degenerate to zero.
func TestBoundRectIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(20260811))
	for _, tech := range evaluatorTechs(t) {
		ev, err := NewEvaluator(tech, Activity{Alpha: 0.5, Beta: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for chunkN := 0; chunkN < 30; chunkN++ {
			g, vssc := randomChunk(rng)
			if err := ev.Prepare(g, 0.55, vssc, 0.55); err != nil {
				t.Fatalf("Prepare(%+v): %v", g, err)
			}
			npreLo := 1 + rng.Intn(40)
			npreHi := npreLo + rng.Intn(51-npreLo)
			nwrLo := 1 + rng.Intn(15)
			nwrHi := nwrLo + rng.Intn(21-nwrLo)
			bound, err := ev.BoundRect(npreLo, npreHi, nwrLo, nwrHi)
			if err != nil {
				t.Fatalf("BoundRect: %v", err)
			}
			var r Result
			minEDP := 0.0
			for npre := npreLo; npre <= npreHi; npre++ {
				for nwr := nwrLo; nwr <= nwrHi; nwr++ {
					if err := ev.EvalInto(npre, nwr, &r); err != nil {
						t.Fatal(err)
					}
					if bound.RailsSettleInTime != r.RailsSettleInTime {
						t.Fatalf("bound feasibility %v disagrees with point (%d,%d) %v",
							bound.RailsSettleInTime, npre, nwr, r.RailsSettleInTime)
					}
					if bound.DArray > r.DArray || bound.EArray > r.EArray || bound.EDP > r.EDP {
						t.Fatalf("bound exceeds point (%d,%d) of rect [%d,%d]×[%d,%d] chunk %+v VSSC=%g:\n  bound D=%g E=%g EDP=%g\n  point D=%g E=%g EDP=%g",
							npre, nwr, npreLo, npreHi, nwrLo, nwrHi, g, vssc,
							bound.DArray, bound.EArray, bound.EDP, r.DArray, r.EArray, r.EDP)
					}
					if minEDP == 0 || r.EDP < minEDP {
						minEDP = r.EDP
					}
				}
			}
			if !(bound.EDP > 0) || !(bound.DArray > 0) || !(bound.EArray > 0) {
				t.Errorf("degenerate bound %+v for rect [%d,%d]×[%d,%d] chunk %+v",
					bound, npreLo, npreHi, nwrLo, nwrHi, g)
			}
			// On a 1×1 rectangle every corner coincides with the point, so
			// the bound must be exact up to the one-sided safety slack.
			pb, err := ev.BoundRect(npreLo, npreLo, nwrLo, nwrLo)
			if err != nil {
				t.Fatal(err)
			}
			if err := ev.EvalInto(npreLo, nwrLo, &r); err != nil {
				t.Fatal(err)
			}
			if pb.EDP > r.EDP || pb.EDP < r.EDP*(1-1e-9) {
				t.Errorf("1×1 bound EDP %g not tight against exact %g", pb.EDP, r.EDP)
			}
		}
	}
	// Validation.
	ev, err := NewEvaluator(testTech(t), act)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.BoundRect(1, 1, 1, 1); err == nil {
		t.Error("BoundRect before Prepare succeeded")
	}
	if err := ev.Prepare(wire.Geometry{NR: 256, NC: 64, W: 64, Npre: 1, Nwr: 1}, 0.55, 0, 0.55); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.BoundRect(2, 1, 1, 1); err == nil {
		t.Error("BoundRect accepted an inverted N_pre range")
	}
	if _, err := ev.BoundRect(1, 1, 0, 1); err == nil {
		t.Error("BoundRect accepted N_wr = 0")
	}
}
