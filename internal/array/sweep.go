package array

import (
	"fmt"
	"math"
)

// SweepBlock is the struct-of-arrays output of EvalSweep: entry i holds the
// Eq. (2)-(5) totals of the point (npre, nwrLo+i). Keeping the three metric
// lanes in separate dense slices lets the searcher scan a whole N_wr row
// with no per-point Result traffic; slices are grown in place and reused
// across calls.
type SweepBlock struct {
	DArray []float64
	EArray []float64
	EDP    []float64
	Area   []float64
	PADP   []float64
}

// grow resizes the block to n entries, reusing capacity.
func (s *SweepBlock) grow(n int) {
	if cap(s.DArray) < n {
		s.DArray = make([]float64, n)
		s.EArray = make([]float64, n)
		s.EDP = make([]float64, n)
		s.Area = make([]float64, n)
		s.PADP = make([]float64, n)
		return
	}
	s.DArray = s.DArray[:n]
	s.EArray = s.EArray[:n]
	s.EDP = s.EDP[:n]
	s.Area = s.Area[:n]
	s.PADP = s.PADP[:n]
}

// ensureSoA fills the chunk-invariant per-N_wr arrays up to n entries
// (index i ↔ N_wr = i+1): the N_wr term of C_BL, the column-select
// component, and the write-buffer drain current. They depend only on the
// prepared chunk, so Prepare invalidates them and every row of the sweep
// reuses them.
func (e *Evaluator) ensureSoA(n int) {
	if e.soaN >= n {
		return
	}
	if cap(e.soaBL) < n {
		e.soaBL = make([]float64, n)
		e.soaDCOL = make([]float64, n)
		e.soaECOL = make([]float64, n)
		e.soaIBLwr = make([]float64, n)
		e.soaN = 0
	} else {
		e.soaBL = e.soaBL[:n]
		e.soaDCOL = e.soaDCOL[:n]
		e.soaECOL = e.soaECOL[:n]
		e.soaIBLwr = e.soaIBLwr[:n]
	}
	for i := e.soaN; i < n; i++ {
		fnwr := float64(i + 1)
		if e.muxed {
			e.soaBL[i] = 2 * fnwr * e.sumCd
			cCOL := e.colBase + e.colW*fnwr*e.sumCg
			e.soaDCOL[i], e.soaECOL[i] = component(cCOL, e.vdd, e.vdd, e.iCol)
		} else {
			e.soaBL[i] = fnwr * e.sumCd
			e.soaDCOL[i], e.soaECOL[i] = 0, 0
		}
		e.soaIBLwr[i] = coefBLwr * fnwr * e.iTG
	}
	e.soaN = n
}

// EvalSweep evaluates the full N_wr row nwrLo..nwrHi at a fixed npre into
// out, bit-identical (==) to EvalInto's DArray/EArray/EDP at every point.
// This is the branch-and-bound searcher's hot loop: the N_pre-independent
// terms come from the cached struct-of-arrays lanes, the row-invariant
// precharge terms are hoisted, and the inner loop indexes equal-length
// slices so the compiler drops the bounds checks.
func (e *Evaluator) EvalSweep(npre, nwrLo, nwrHi int, out *SweepBlock) error {
	if !e.prepared {
		return fmt.Errorf("array: Eval before a successful Prepare")
	}
	if npre < 1 {
		return fmt.Errorf("wire: N_pre = %d must be ≥ 1", npre)
	}
	if nwrLo < 1 || nwrHi < nwrLo {
		return fmt.Errorf("array: EvalSweep: invalid N_wr range [%d,%d]", nwrLo, nwrHi)
	}
	n := nwrHi - nwrLo + 1
	e.ensureSoA(nwrHi)
	out.grow(n)
	mEvals.Add(int64(n))

	// Row-invariant per-point terms (exact EvalInto expressions).
	blBase := e.blFixed + float64(npre+1)*e.cdp
	iPre := coefPRE * float64(npre) * e.ionP
	areaRow := e.area0 + float64(npre)*e.areaPre
	// The non-muxed bitline adds one shared-precharger drain on top of the
	// N_wr term; adding a literal zero in the muxed case keeps the loop
	// branch-free without perturbing the value (cBL > 0).
	extra := e.cdp
	if e.muxed {
		extra = 0
	}
	dvBLRd, deltaVS, vdd := e.dvBLRd, e.deltaVS, e.vdd
	iRead := e.iRead
	saD, wcD := e.parts.DSenseAmp, e.parts.DWriteCell
	colDecE, colDrvE := e.parts.EColDec, e.parts.EColDrv
	allCols := e.allCols
	hybrid := e.hGroups > 1

	bl := e.soaBL[nwrLo-1 : nwrHi]
	dcol := e.soaDCOL[nwrLo-1 : nwrHi]
	ecol := e.soaECOL[nwrLo-1 : nwrHi]
	iblw := e.soaIBLwr[nwrLo-1 : nwrHi]
	od := out.DArray[:n]
	oe := out.EArray[:n]
	op := out.EDP[:n]
	oa := out.Area[:n]
	oq := out.PADP[:n]
	if len(bl) != n || len(dcol) != n || len(ecol) != n || len(iblw) != n {
		return fmt.Errorf("array: EvalSweep: internal lane length mismatch")
	}

	for i := range od {
		cBL := blBase + bl[i] + extra + e.blMuxCd
		dblr, eblr := component(cBL, dvBLRd, deltaVS, iRead)
		if hybrid {
			dblr = e.hybridBLDelay(cBL)
		}
		dblw, eblw := component(cBL, vdd, vdd, iblw[i])
		dpr, epr := component(cBL, vdd, deltaVS, iPre)
		dpw, epw := component(cBL, vdd, vdd, iPre)

		readRow := e.dReadRow + dblr
		readCol := e.dColBase + dcol[i]
		dRead := math.Max(readRow, readCol) + saD + dpr + e.dMuxExtra
		writeCol := e.dColBase + dcol[i] + dblw
		dWrite := math.Max(e.dWriteRow, writeCol) + wcD + dpw

		preWrE := epw
		if allCols {
			preWrE = e.wMult*epw + e.acMinusW*epr
		}
		eRead := e.eReadBase + e.blRdMult*eblr +
			colDecE + colDrvE + ecol[i] +
			e.saE + e.preRdMult*epr +
			e.railE + e.eMuxExtra
		eWrite := e.eWriteBase + ecol[i] +
			e.wrMult*eblw + e.wrCellE + preWrE

		dArray := math.Max(dRead, dWrite)
		eSw := e.beta*eRead + e.oneMinusBeta*eWrite
		eLeak := e.leakCoef * dArray
		eArray := e.alpha*eSw + eLeak
		edp := eArray * dArray
		area := areaRow + float64(nwrLo+i)*e.areaWr
		od[i] = dArray
		oe[i] = eArray
		op[i] = edp
		oa[i] = area
		oq[i] = edp * area
	}
	return nil
}

// EvalNext advances res from its current point (N_pre, N_wr) to
// (N_pre, N_wr+1) in place: adjacent points of the inner N_wr sweep share
// everything except the bitline/column capacitance and write-buffer drain
// terms, so only those components and the Eq. (2)-(5) totals are
// recomputed — the chunk-invariant Parts fields, the design rails and the
// feasibility flag survive from the previous point untouched. res must have
// been produced by EvalInto, EvalBlock or EvalNext on the same prepared
// chunk. Bit-identical (==) to a fresh EvalInto of (N_pre, N_wr+1).
func (e *Evaluator) EvalNext(res *Result) error {
	if !e.prepared {
		return fmt.Errorf("array: Eval before a successful Prepare")
	}
	d := &res.Design
	if d.Geom.NR != e.nr || d.Geom.NC != e.nc || d.Geom.W != e.w || d.Geom.WLSegs != e.segs ||
		d.Geom.Mux != e.mux || d.Groups != e.hGroups || d.GroupMask != e.hMask ||
		d.VDDC != e.vddc || d.VSSC != e.vssc || d.VWL != e.vwl {
		return fmt.Errorf("array: EvalNext on a Result from a different chunk")
	}
	npre, nwr := d.Geom.Npre, d.Geom.Nwr+1
	if npre < 1 || nwr < 2 {
		return fmt.Errorf("array: EvalNext on an unevaluated Result (N_pre=%d, N_wr=%d)", npre, nwr-1)
	}
	mEvals.Inc()
	b := &res.Parts
	fnwr := float64(nwr)

	blBase := e.blFixed + float64(npre+1)*e.cdp
	var cBL, cCOL float64
	if e.muxed {
		cBL = blBase + 2*fnwr*e.sumCd + e.blMuxCd
		cCOL = e.colBase + e.colW*fnwr*e.sumCg
	} else {
		cBL = blBase + fnwr*e.sumCd + e.cdp + e.blMuxCd
	}

	b.DCOL, b.ECOL = component(cCOL, e.vdd, e.vdd, e.iCol)
	b.DBLRead, b.EBLRead = component(cBL, e.dvBLRd, e.deltaVS, e.iRead)
	if e.hGroups > 1 {
		b.DBLRead = e.hybridBLDelay(cBL)
	}
	b.DBLWrite, b.EBLWrite = component(cBL, e.vdd, e.vdd, coefBLwr*fnwr*e.iTG)
	iPre := coefPRE * float64(npre) * e.ionP
	b.DPreRead, b.EPreRead = component(cBL, e.vdd, e.deltaVS, iPre)
	b.DPreWrite, b.EPreWrite = component(cBL, e.vdd, e.vdd, iPre)

	readRow := e.dReadRow + b.DBLRead
	readCol := e.dColBase + b.DCOL
	dRead := math.Max(readRow, readCol) + b.DSenseAmp + b.DPreRead + e.dMuxExtra
	writeCol := e.dColBase + b.DCOL + b.DBLWrite
	dWrite := math.Max(e.dWriteRow, writeCol) + b.DWriteCell + b.DPreWrite

	preWrE := b.EPreWrite
	if e.allCols {
		preWrE = e.wMult*b.EPreWrite + e.acMinusW*b.EPreRead
	}
	eRead := e.eReadBase + e.blRdMult*b.EBLRead +
		b.EColDec + b.EColDrv + b.ECOL +
		e.saE + e.preRdMult*b.EPreRead +
		e.railE + e.eMuxExtra
	eWrite := e.eWriteBase + b.ECOL +
		e.wrMult*b.EBLWrite + e.wrCellE + preWrE

	dArray := math.Max(dRead, dWrite)
	eSw := e.beta*eRead + e.oneMinusBeta*eWrite
	eLeak := e.leakCoef * dArray

	d.Geom.Nwr = nwr
	res.DRead, res.DWrite, res.DArray = dRead, dWrite, dArray
	res.ESwRead, res.ESwWrite, res.ESw = eRead, eWrite, eSw
	res.ELeak = eLeak
	res.EArray = e.alpha*eSw + eLeak
	res.EDP = res.EArray * dArray
	res.Area = (e.area0 + float64(npre)*e.areaPre) + float64(nwr)*e.areaWr
	res.PADP = res.EDP * res.Area
	return nil
}

// EvalBlock evaluates the batch of points (npres[i], nwrs[i]) into out[i],
// bit-identical (==) to calling EvalInto per point. The per-call validation
// and evaluation counting are amortized over the block, and the row terms
// (precharge current, bitline base) are recomputed only when npres[i]
// changes, so callers batching 4-8 points of one N_pre row pay them once.
func (e *Evaluator) EvalBlock(npres, nwrs []int, out []Result) error {
	if !e.prepared {
		return fmt.Errorf("array: Eval before a successful Prepare")
	}
	if len(npres) != len(nwrs) || len(npres) > len(out) {
		return fmt.Errorf("array: EvalBlock: mismatched block lengths (%d npre, %d nwr, %d out)",
			len(npres), len(nwrs), len(out))
	}
	if len(npres) == 0 {
		return nil
	}
	for _, np := range npres {
		if np < 1 {
			return fmt.Errorf("wire: N_pre = %d must be ≥ 1", np)
		}
	}
	for _, nw := range nwrs {
		if nw < 1 {
			return fmt.Errorf("wire: N_wr = %d must be ≥ 1", nw)
		}
	}
	mEvals.Add(int64(len(npres)))

	g := e.geom
	lastNpre := -1
	var blBase, iPre, areaRow float64
	for i := range npres {
		npre, nwr := npres[i], nwrs[i]
		if npre != lastNpre {
			blBase = e.blFixed + float64(npre+1)*e.cdp
			iPre = coefPRE * float64(npre) * e.ionP
			areaRow = e.area0 + float64(npre)*e.areaPre
			lastNpre = npre
		}
		b := e.parts
		fnwr := float64(nwr)
		var cBL, cCOL float64
		if e.muxed {
			cBL = blBase + 2*fnwr*e.sumCd + e.blMuxCd
			cCOL = e.colBase + e.colW*fnwr*e.sumCg
		} else {
			cBL = blBase + fnwr*e.sumCd + e.cdp + e.blMuxCd
		}

		b.DCOL, b.ECOL = component(cCOL, e.vdd, e.vdd, e.iCol)
		b.DBLRead, b.EBLRead = component(cBL, e.dvBLRd, e.deltaVS, e.iRead)
		if e.hGroups > 1 {
			b.DBLRead = e.hybridBLDelay(cBL)
		}
		b.DBLWrite, b.EBLWrite = component(cBL, e.vdd, e.vdd, coefBLwr*fnwr*e.iTG)
		b.DPreRead, b.EPreRead = component(cBL, e.vdd, e.deltaVS, iPre)
		b.DPreWrite, b.EPreWrite = component(cBL, e.vdd, e.vdd, iPre)

		readRow := e.dReadRow + b.DBLRead
		readCol := e.dColBase + b.DCOL
		dRead := math.Max(readRow, readCol) + b.DSenseAmp + b.DPreRead + e.dMuxExtra
		writeCol := e.dColBase + b.DCOL + b.DBLWrite
		dWrite := math.Max(e.dWriteRow, writeCol) + b.DWriteCell + b.DPreWrite

		preWrE := b.EPreWrite
		if e.allCols {
			preWrE = e.wMult*b.EPreWrite + e.acMinusW*b.EPreRead
		}
		eRead := e.eReadBase + e.blRdMult*b.EBLRead +
			b.EColDec + b.EColDrv + b.ECOL +
			e.saE + e.preRdMult*b.EPreRead +
			e.railE + e.eMuxExtra
		eWrite := e.eWriteBase + b.ECOL +
			e.wrMult*b.EBLWrite + e.wrCellE + preWrE

		dArray := math.Max(dRead, dWrite)
		eSw := e.beta*eRead + e.oneMinusBeta*eWrite
		eLeak := e.leakCoef * dArray
		eArray := e.alpha*eSw + eLeak
		edp := eArray * dArray
		area := areaRow + fnwr*e.areaWr

		g.Npre, g.Nwr = npre, nwr
		out[i] = Result{
			Design: Design{Geom: g, VDDC: e.vddc, VSSC: e.vssc, VWL: e.vwl,
				Groups: e.hGroups, GroupMask: e.hMask},
			Activity:          e.act,
			DRead:             dRead,
			DWrite:            dWrite,
			DArray:            dArray,
			ESwRead:           eRead,
			ESwWrite:          eWrite,
			ESw:               eSw,
			ELeak:             eLeak,
			EArray:            eArray,
			EDP:               edp,
			Area:              area,
			PADP:              edp * area,
			RailsSettleInTime: e.settles,
			Parts:             b,
		}
	}
	return nil
}
