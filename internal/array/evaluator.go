package array

import (
	"fmt"
	"math"

	"sramco/internal/wire"
)

// Evaluator is the chunk-amortized form of Evaluate, built for the search
// hot path. The paper's exhaustive search fixes a (geometry base, assist
// rails) chunk and sweeps only the precharger and write-buffer fin counts
// inside it; every Table-1 wire capacitance except the N_pre/N_wr drain
// terms, both rail components, the WL read/write and COL components, the
// decoder/driver blocks, the sense amplifier, and the cell write
// delay/energy are invariant across that inner sweep. The Evaluator computes
// them once per Prepare and lets Eval fill in only the per-point terms and
// the Eq. (2)-(5) totals.
//
// Bit-identity contract: for any design accepted by both paths,
//
//	Evaluate(t, d, act)  ==  ev.Prepare(d.Geom, rails); ev.Eval(Npre, Nwr)
//
// field for field, at the == level — not within a tolerance. This holds
// because every precomputed value is produced by the exact expression (same
// floating-point operation order) Evaluate used inline, and Eval re-applies
// the remaining per-point operations in Evaluate's order. The property test
// in evaluator_test.go enforces this on randomized designs.
//
// An Evaluator is NOT safe for concurrent use: Prepare mutates its memo
// state. Share the validated construction by calling Clone once per worker;
// clones share the read-only *Tech and revalidate nothing.
type Evaluator struct {
	tech *Tech
	act  Activity

	// Activity-derived constants (set at construction).
	alpha, beta, oneMinusBeta float64

	// Prepared-chunk key: Prepare is memoized on the last (geometry base,
	// rails) so repeated calls inside one chunk cost a few comparisons.
	prepared             bool
	nr, nc, w, segs, mux int
	vddc, vssc, vwl      float64
	geom                 wire.Geometry // base geometry stamped into results

	// Chunk-invariant Table-2 components, ready to copy into each Result.
	parts Breakdown

	// Per-point capacitance builders (Table 1 factorization; see wire.BLFixed
	// and wire.COLFixed).
	muxed   bool
	blFixed float64 // n_r(C_height + C_dn)
	cdp     float64 // C_dp
	sumCd   float64 // C_dn + C_dp
	colBase float64 // n_c·C_width + 27(C_dn + C_dp), muxed only
	colW    float64 // 2·W, muxed only
	sumCg   float64 // C_gn + C_gp

	// Per-point current denominators and voltages.
	iRead   float64 // cell read current at (VDDC, VSSC)
	dvBLRd  float64 // VDDC - VSSC: bitline swing voltage of the read component
	iCol    float64 // coefCOL·27·ION,pfet
	iTG     float64 // ION of one write transmission gate fin
	ionP    float64 // ION,pfet per fin (precharger)
	vdd     float64
	deltaVS float64

	// Partial Table-3 delay sums.
	dReadRow  float64 // DRowDec + DRowDrv + DWLRead
	dColBase  float64 // DColDec + DColDrv
	dWriteRow float64 // DRowDec + DRowDrv + DWLWrite (fully invariant)

	// Partial Table-3 energy sums and accounting multipliers.
	eReadBase  float64 // ERowDec + ERowDrv + EWLRead
	eWriteBase float64 // ERowDec + ERowDrv + dcdc·EWLWrite + EColDec + EColDrv
	saE        float64 // saMult·ESenseAmp
	railE      float64 // dcdc·(ECVDD + ECVSS)
	wrCellE    float64 // wrMult·EWriteCell
	blRdMult   float64
	preRdMult  float64
	wrMult     float64
	allCols    bool
	wMult      float64 // W, AllColumns precharge-write weighting
	acMinusW   float64 // activeCols - W

	// Eq. (3)-(5) constants.
	leakCoef float64 // Bits·LeakCell (hybrid: per-group weighted sum)

	// Output-mux (sense-amp sharing) terms. All are exact zeros when the
	// geometry shares no sense amps, so appending them to the existing
	// per-point chains leaves the degenerate results bit-identical.
	muxRatio  int     // normalized sharing ratio (≥ 1)
	blMuxCd   float64 // extra bitline drain cap of the mux TG stack
	dMuxExtra float64 // DMuxSel, appended to the read delay
	eMuxExtra float64 // EMuxSel, appended to the read energy

	// Layout-area terms (wire.Area factorization).
	area0, areaPre, areaWr float64

	// Hybrid per-row-group flavor state (hGroups == 0 when the chunk was
	// prepared for a single global flavor). Group 0 is nearest the sense
	// amps; hBLFix[g] is the effective fixed bitline capacitance seen when
	// group g's cell drives the read (its rows plus the wire up to it), with
	// hBLFix[G-1] exactly blFixed so a uniform mask reproduces the global
	// evaluation bit-identically.
	hGroups int
	hMask   uint32
	hIRead  [MaxGroups]float64
	hBLFix  [MaxGroups]float64

	// §4 rail-settling feasibility (invariant: depends only on rails/WL).
	settles bool

	// Struct-of-arrays lanes of the N_wr-dependent per-point terms, filled
	// lazily by ensureSoA (index i ↔ N_wr = i+1) and invalidated whenever
	// Prepare switches chunks. EvalSweep's inner loop reads them instead of
	// recomputing the column/write-buffer terms per point.
	soaN     int
	soaBL    []float64 // N_wr term of C_BL: fnwr·ΣCd (muxed: (2·fnwr)·ΣCd)
	soaDCOL  []float64 // column-select delay component
	soaECOL  []float64 // column-select energy component
	soaIBLwr []float64 // write-buffer drain current coefBLwr·fnwr·I_TG
}

// NewEvaluator validates the technology and activity once and returns an
// unprepared Evaluator. The returned Evaluator (and its clones) never
// revalidates t, so t must not be mutated while evaluators built from it are
// alive.
func NewEvaluator(t *Tech, act Activity) (*Evaluator, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := act.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{}
	e.init(t, act)
	return e, nil
}

// init is the unchecked constructor shared by NewEvaluator and the Evaluate
// wrapper (which performs its own validation in the historical order).
func (e *Evaluator) init(t *Tech, act Activity) {
	e.tech = t
	e.act = act
	e.alpha = act.Alpha
	e.beta = act.Beta
	e.oneMinusBeta = 1 - act.Beta
	e.vdd = t.Vdd
	e.deltaVS = t.DeltaVS
}

// Clone returns a fresh unprepared Evaluator sharing the validated *Tech.
// Each search worker should own a clone; the shared Tech is read-only.
func (e *Evaluator) Clone() *Evaluator {
	c := *e
	c.prepared = false
	c.soaN = 0
	c.soaBL, c.soaDCOL, c.soaECOL, c.soaIBLwr = nil, nil, nil, nil
	return &c
}

// Prepare fixes the chunk: the geometry base (N_pre and N_wr in g are
// ignored) and the assist rails, computing everything invariant across the
// inner (N_pre, N_wr) sweep. It validates the rails against the technology
// and the base geometry structurally (with N_pre = N_wr = 1, since validity
// of the base does not depend on the swept fin counts), and rejects a
// non-positive read current exactly as Evaluate does. Repeated calls with
// the same chunk return immediately.
func (e *Evaluator) Prepare(g wire.Geometry, vddc, vssc, vwl float64) error {
	if e.tech == nil {
		return fmt.Errorf("array: Prepare on zero Evaluator (use NewEvaluator)")
	}
	if e.prepared && e.hGroups == 0 &&
		g.NR == e.nr && g.NC == e.nc && g.W == e.w && g.WLSegs == e.segs && g.Mux == e.mux &&
		vddc == e.vddc && vssc == e.vssc && vwl == e.vwl {
		return nil
	}
	return e.prepare(g, vddc, vssc, vwl, nil)
}

// PrepareHybrid is Prepare for a per-row-group flavor assignment: the chunk
// additionally fixes (Groups, Mask, alternate flavor terms). Groups ≤ 1
// degenerates to the global-flavor Prepare (Mask must then be zero). Unlike
// Prepare it never memoizes, because the alternate terms are not part of the
// memo key.
func (e *Evaluator) PrepareHybrid(g wire.Geometry, vddc, vssc, vwl float64, h Hybrid) error {
	if e.tech == nil {
		return fmt.Errorf("array: Prepare on zero Evaluator (use NewEvaluator)")
	}
	if h.Groups <= 1 {
		if h.Mask != 0 {
			return fmt.Errorf("array: GroupMask=%#x requires Groups ≥ 2", h.Mask)
		}
		return e.Prepare(g, vddc, vssc, vwl)
	}
	if err := h.Alt.Validate(); err != nil {
		return err
	}
	if err := (Design{Geom: g, Groups: h.Groups, GroupMask: h.Mask}).validateHybrid(); err != nil {
		return err
	}
	return e.prepare(g, vddc, vssc, vwl, &h)
}

// prepare is the shared chunk computation behind Prepare and PrepareHybrid;
// h == nil selects the single global flavor.
func (e *Evaluator) prepare(g wire.Geometry, vddc, vssc, vwl float64, h *Hybrid) error {
	e.prepared = false

	t := e.tech
	if vddc < t.Vdd {
		return fmt.Errorf("array: VDDC=%g below Vdd=%g", vddc, t.Vdd)
	}
	if vssc > 0 {
		return fmt.Errorf("array: VSSC=%g must be ≤ 0", vssc)
	}
	if vwl < t.Vdd {
		return fmt.Errorf("array: VWL=%g below Vdd=%g (WLOD only)", vwl, t.Vdd)
	}
	base := g
	base.Npre, base.Nwr = 1, 1
	if err := base.Validate(); err != nil {
		return err
	}

	p := t.Periph
	var b Breakdown

	// --- Table 1 capacitances (the N_pre/N_wr-independent ones) ---
	cCVDD := wire.CVDD(g, t.Caps)
	cCVSS := wire.CVSS(g, t.Caps)
	cWL := wire.WL(g, t.Caps)

	// --- Table 2 components invariant across the inner sweep ---
	b.DCVDD, b.ECVDD = component(cCVDD, t.Vdd, vddc-t.Vdd, coefCVDD*railFins*p.ICVDD(vddc))
	b.DCVSS, b.ECVSS = component(cCVSS, t.Vdd, math.Abs(vssc), coefCVSS*railFins*p.ICVSS(vssc))
	if segs := g.Segments(); segs > 1 {
		// Divided wordline: global wire + per-segment AND + local wordline.
		cGWL := wire.GWL(g, t.Caps)
		cLWL := wire.LWL(g, t.Caps)
		lwlFins := float64(wire.LWLDriverFins())
		dAnd := 2 * p.Tau * (2 + p.PInv) // NAND2 + local driver input stage
		eAnd := lwlFins * (t.Caps.Cgn + t.Caps.Cgp) * t.Vdd * t.Vdd
		dg, eg := component(cGWL, t.Vdd, t.Vdd, coefWLrd*driveFins*p.IONPfet())
		dl, el := component(cLWL, t.Vdd, t.Vdd, coefWLrd*lwlFins*p.IONPfet())
		b.DWLGlobal, b.DWLLocal = dg, dl
		b.DWLRead = dg + dAnd + dl
		b.EWLRead = eg + eAnd + el
		dlw, elw := component(cLWL, t.Vdd, vwl, coefWLwr*lwlFins*p.IWL(vwl))
		b.DWLWrite = dg + dAnd + dlw
		b.EWLWrite = eg + eAnd + elw
	} else {
		b.DWLRead, b.EWLRead = component(cWL, t.Vdd, t.Vdd, coefWLrd*driveFins*p.IONPfet())
		b.DWLWrite, b.EWLWrite = component(cWL, t.Vdd, vwl, coefWLwr*driveFins*p.IWL(vwl))
	}
	e.hGroups, e.hMask = 0, 0
	var iRead float64
	if h == nil {
		iRead = t.IRead(vddc, vssc)
		if iRead <= 0 {
			return fmt.Errorf("array: non-positive read current %g at VDDC=%g VSSC=%g", iRead, vddc, vssc)
		}
	} else {
		for gi := 0; gi < h.Groups; gi++ {
			ir := t.IRead
			if h.Mask>>uint(gi)&1 == 1 {
				ir = h.Alt.IRead
			}
			v := ir(vddc, vssc)
			if v <= 0 {
				return fmt.Errorf("array: non-positive read current %g at VDDC=%g VSSC=%g (group %d)", v, vddc, vssc, gi)
			}
			e.hIRead[gi] = v
		}
		// The far group sees the full bitline; its current feeds the shared
		// component call, which the hybrid max in EvalInto then refines.
		iRead = e.hIRead[h.Groups-1]
	}

	// --- Peripheral blocks ---
	rowDec := p.RowDecoder(g)
	colDec := p.ColumnDecoder(g)
	rowDrv := p.Driver(driveFins)
	b.DRowDec, b.ERowDec = rowDec.Delay, rowDec.Energy
	b.DRowDrv, b.ERowDrv = rowDrv.Delay, rowDrv.Energy
	if g.Muxed() {
		colDrv := p.Driver(driveFins)
		b.DColDec, b.EColDec = colDec.Delay, colDec.Energy
		b.DColDrv, b.EColDrv = colDrv.Delay, colDrv.Energy
	}
	b.DSenseAmp, b.ESenseAmp = p.SADelay, p.SAEnergy
	b.DWriteCell = t.WriteDelayCell(vwl)
	b.EWriteCell = t.WriteEnergyCell
	if h != nil {
		full := uint32(1)<<uint(h.Groups) - 1
		switch {
		case h.Mask == 0:
			// Uniform base flavor: already exact.
		case h.Mask == full:
			b.DWriteCell = h.Alt.WriteDelayCell(vwl)
			b.EWriteCell = h.Alt.WriteEnergyCell
		default:
			// Mixed: the slower flavor's write dominates the cell flip.
			if ad := h.Alt.WriteDelayCell(vwl); ad > b.DWriteCell {
				b.DWriteCell = ad
				b.EWriteCell = h.Alt.WriteEnergyCell
			}
		}
	}

	// --- Per-point builders (Table 1 factorization) ---
	e.muxed = g.Muxed()
	e.blFixed = wire.BLFixed(g, t.Caps)
	e.cdp = t.Caps.Cdp
	e.sumCd = t.Caps.Cdn + t.Caps.Cdp
	e.colBase = wire.COLFixed(g, t.Caps)
	e.colW = 2 * float64(g.W)
	e.sumCg = t.Caps.Cgn + t.Caps.Cgp
	e.iRead = iRead
	e.dvBLRd = vddc - vssc
	e.iCol = coefCOL * driveFins * p.IONPfet()
	e.iTG = p.IONTG()
	e.ionP = p.IONPfet()

	// --- Output mux (sense-amp sharing) ---
	m := g.MuxRatio()
	e.muxRatio = m
	e.blMuxCd = 0
	if m > 1 {
		e.blMuxCd = float64(m) * e.sumCd
	}
	cMuxSel := wire.MuxSel(g, t.Caps)
	b.DMuxSel, b.EMuxSel = component(cMuxSel, t.Vdd, t.Vdd, coefCOL*driveFins*p.IONPfet())
	e.dMuxExtra, e.eMuxExtra = b.DMuxSel, b.EMuxSel

	// --- Layout area (wire.Area factorization) ---
	e.area0 = wire.AreaBase(g)
	e.areaPre = wire.AreaPreUnit(g)
	e.areaWr = wire.AreaWrUnit(g)

	// --- Hybrid per-group effective bitline capacitances ---
	if h != nil {
		e.hGroups, e.hMask = h.Groups, h.Mask
		for gi := 0; gi < h.Groups-1; gi++ {
			e.hBLFix[gi] = e.blFixed * (float64(gi+1) / float64(h.Groups))
		}
		e.hBLFix[h.Groups-1] = e.blFixed
	}

	// --- Partial Table-3 sums (prefixes of Evaluate's left-associative
	// chains, so completing them per point reproduces the full sums
	// bit-for-bit) ---
	e.dReadRow = b.DRowDec + b.DRowDrv + b.DWLRead
	e.dColBase = b.DColDec + b.DColDrv
	e.dWriteRow = b.DRowDec + b.DRowDrv + b.DWLWrite

	activeCols := float64(g.NC / g.Segments())
	w := float64(g.W)
	blRdMult, preRdMult, saMult, wrMult := 1.0, 1.0, 1.0, 1.0
	e.allCols = t.Accounting == AllColumns
	if e.allCols {
		blRdMult, preRdMult, saMult, wrMult = activeCols, activeCols, w, w
		if m > 1 {
			// Shared sense amps: only W/m amps fire per access.
			saMult = w / float64(m)
		}
	}
	e.blRdMult, e.preRdMult, e.wrMult = blRdMult, preRdMult, wrMult
	e.wMult = w
	e.acMinusW = activeCols - w
	dcdc := t.DCDCFactor
	e.eReadBase = b.ERowDec + b.ERowDrv + b.EWLRead
	e.saE = saMult * b.ESenseAmp
	e.railE = dcdc * (b.ECVDD + b.ECVSS)
	e.eWriteBase = b.ERowDec + b.ERowDrv + dcdc*b.EWLWrite + b.EColDec + b.EColDrv
	e.wrCellE = wrMult * b.EWriteCell

	e.leakCoef = float64(g.Bits()) * t.LeakCell
	if h != nil {
		full := uint32(1)<<uint(h.Groups) - 1
		switch h.Mask {
		case 0:
			// Uniform base flavor: the single multiply above is already exact.
		case full:
			e.leakCoef = float64(g.Bits()) * h.Alt.LeakCell
		default:
			perGroup := float64(g.Bits() / h.Groups)
			sum := 0.0
			for gi := 0; gi < h.Groups; gi++ {
				lk := t.LeakCell
				if h.Mask>>uint(gi)&1 == 1 {
					lk = h.Alt.LeakCell
				}
				sum += perGroup * lk
			}
			e.leakCoef = sum
		}
	}

	// Rails must settle before WL reaches 50% (§4) — invariant, as neither
	// the rail components nor the WL path depend on N_pre or N_wr.
	wlHalf := b.DRowDec + b.DRowDrv + 0.5*b.DWLRead
	e.settles = math.Max(b.DCVDD, b.DCVSS) <= wlHalf

	e.parts = b
	e.soaN = 0 // the SoA lanes belong to the previous chunk
	e.nr, e.nc, e.w, e.segs, e.mux = g.NR, g.NC, g.W, g.WLSegs, g.Mux
	e.vddc, e.vssc, e.vwl = vddc, vssc, vwl
	e.geom = g
	e.prepared = true
	return nil
}

// hybridBLDelay returns the read bitline delay of a hybrid chunk: the worst
// group, each seeing the bitline wire and drains up to its own rows plus the
// full per-point (precharger, write-buffer, mux) drain terms. The far group
// uses cBL verbatim, so a uniform mask reproduces the global-flavor
// component delay bit-identically.
func (e *Evaluator) hybridBLDelay(cBL float64) float64 {
	last := e.hGroups - 1
	d := cBL * e.deltaVS / e.hIRead[last]
	for gi := 0; gi < last; gi++ {
		ce := (cBL - e.blFixed) + e.hBLFix[gi]
		if dg := ce * e.deltaVS / e.hIRead[gi]; dg > d {
			d = dg
		}
	}
	return d
}

// Eval evaluates one (N_pre, N_wr) point of the prepared chunk, allocating
// the Result. See EvalInto for the allocation-free form.
func (e *Evaluator) Eval(npre, nwr int) (*Result, error) {
	res := new(Result)
	if err := e.EvalInto(npre, nwr, res); err != nil {
		return nil, err
	}
	return res, nil
}

// EvalInto evaluates one (N_pre, N_wr) point of the prepared chunk into res,
// overwriting it completely. Search loops reuse one scratch Result and copy
// it only when a candidate wins, keeping the hot loop allocation-free.
func (e *Evaluator) EvalInto(npre, nwr int, res *Result) error {
	if !e.prepared {
		return fmt.Errorf("array: Eval before a successful Prepare")
	}
	if npre < 1 {
		return fmt.Errorf("wire: N_pre = %d must be ≥ 1", npre)
	}
	if nwr < 1 {
		return fmt.Errorf("wire: N_wr = %d must be ≥ 1", nwr)
	}
	mEvals.Inc()
	b := e.parts
	fnwr := float64(nwr)

	// --- Table 1, per-point: BL and COL (wire.BL / wire.COL op order; the
	// mux drain term is an exact zero add in the degenerate organization) ---
	blBase := e.blFixed + float64(npre+1)*e.cdp
	var cBL, cCOL float64
	if e.muxed {
		cBL = blBase + 2*fnwr*e.sumCd + e.blMuxCd
		cCOL = e.colBase + e.colW*fnwr*e.sumCg
	} else {
		cBL = blBase + fnwr*e.sumCd + e.cdp + e.blMuxCd
	}

	// --- Table 2, per-point components (Evaluate's order) ---
	b.DCOL, b.ECOL = component(cCOL, e.vdd, e.vdd, e.iCol)
	b.DBLRead, b.EBLRead = component(cBL, e.dvBLRd, e.deltaVS, e.iRead)
	if e.hGroups > 1 {
		b.DBLRead = e.hybridBLDelay(cBL)
	}
	b.DBLWrite, b.EBLWrite = component(cBL, e.vdd, e.vdd, coefBLwr*fnwr*e.iTG)
	iPre := coefPRE * float64(npre) * e.ionP
	b.DPreRead, b.EPreRead = component(cBL, e.vdd, e.deltaVS, iPre)
	b.DPreWrite, b.EPreWrite = component(cBL, e.vdd, e.vdd, iPre)

	// --- Table 3 delays ---
	readRow := e.dReadRow + b.DBLRead
	readCol := e.dColBase + b.DCOL
	dRead := math.Max(readRow, readCol) + b.DSenseAmp + b.DPreRead + e.dMuxExtra

	writeCol := e.dColBase + b.DCOL + b.DBLWrite
	dWrite := math.Max(e.dWriteRow, writeCol) + b.DWriteCell + b.DPreWrite

	// --- Table 3 energies ---
	preWrE := b.EPreWrite
	if e.allCols {
		preWrE = e.wMult*b.EPreWrite + e.acMinusW*b.EPreRead
	}
	eRead := e.eReadBase + e.blRdMult*b.EBLRead +
		b.EColDec + b.EColDrv + b.ECOL +
		e.saE + e.preRdMult*b.EPreRead +
		e.railE + e.eMuxExtra
	eWrite := e.eWriteBase + b.ECOL +
		e.wrMult*b.EBLWrite + e.wrCellE + preWrE

	// --- Eqs. (2)-(5), area and the products ---
	dArray := math.Max(dRead, dWrite)
	eSw := e.beta*eRead + e.oneMinusBeta*eWrite
	eLeak := e.leakCoef * dArray
	eArray := e.alpha*eSw + eLeak
	edp := eArray * dArray
	area := (e.area0 + float64(npre)*e.areaPre) + float64(nwr)*e.areaWr

	g := e.geom
	g.Npre, g.Nwr = npre, nwr
	*res = Result{
		Design: Design{Geom: g, VDDC: e.vddc, VSSC: e.vssc, VWL: e.vwl,
			Groups: e.hGroups, GroupMask: e.hMask},
		Activity:          e.act,
		DRead:             dRead,
		DWrite:            dWrite,
		DArray:            dArray,
		ESwRead:           eRead,
		ESwWrite:          eWrite,
		ESw:               eSw,
		ELeak:             eLeak,
		EArray:            eArray,
		EDP:               edp,
		Area:              area,
		PADP:              edp * area,
		RailsSettleInTime: e.settles,
		Parts:             b,
	}
	return nil
}
