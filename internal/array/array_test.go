package array

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"sramco/internal/device"
	"sramco/internal/periph"
	"sramco/internal/wire"
)

var (
	fixOnce sync.Once
	fixTech *Tech
	fixErr  error
)

// paperIRead is the paper's fitted HVT read-current law (§5):
// I_read = 9.5e-5 · (V_DDC − V_SSC − 0.335)^1.3.
func paperIRead(vddc, vssc float64) float64 {
	return 9.5e-5 * math.Pow(vddc-vssc-0.335, 1.3)
}

func testTech(t testing.TB) *Tech {
	t.Helper()
	fixOnce.Do(func() {
		p, err := periph.Characterize(device.Default7nm(), periph.CharacterizeOpts{})
		if err != nil {
			fixErr = err
			return
		}
		lib := device.Default7nm()
		fixTech = &Tech{
			Periph: p,
			Caps: wire.DeviceCaps{
				Cdn: lib.NLVT.CdFin, Cdp: lib.PLVT.CdFin,
				Cgn: lib.NLVT.CgFin, Cgp: lib.PLVT.CgFin,
			},
			Vdd:             device.Vdd,
			DeltaVS:         0.120,
			LeakCell:        0.082e-9,
			IRead:           paperIRead,
			WriteDelayCell:  func(vwl float64) float64 { return 3e-12 * 0.55 / vwl },
			WriteEnergyCell: 5e-18,
			DCDCFactor:      1.25,
			Accounting:      AllColumns,
		}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fixTech
}

func design(nr, nc, npre, nwr int, vddc, vssc, vwl float64) Design {
	w := 64
	if nc < w {
		w = nc
	}
	return Design{
		Geom: wire.Geometry{NR: nr, NC: nc, W: w, Npre: npre, Nwr: nwr},
		VDDC: vddc, VSSC: vssc, VWL: vwl,
	}
}

var act = Activity{Alpha: 0.5, Beta: 0.5}

func TestEvaluateBasicInvariants(t *testing.T) {
	tech := testTech(t)
	r, err := Evaluate(tech, design(128, 64, 12, 2, 0.55, -0.24, 0.55), act)
	if err != nil {
		t.Fatal(err)
	}
	if r.DRead <= 0 || r.DWrite <= 0 {
		t.Fatalf("non-positive delays: %+v", r)
	}
	if r.DArray != math.Max(r.DRead, r.DWrite) {
		t.Error("Eq.(2) violated: DArray != max(DRead, DWrite)")
	}
	wantESw := act.Beta*r.ESwRead + (1-act.Beta)*r.ESwWrite
	if math.Abs(r.ESw-wantESw) > 1e-24 {
		t.Error("Eq.(3) violated")
	}
	wantLeak := float64(128*64) * tech.LeakCell * r.DArray
	if math.Abs(r.ELeak-wantLeak) > 1e-24 {
		t.Error("Eq.(4) violated")
	}
	wantE := act.Alpha*r.ESw + r.ELeak
	if math.Abs(r.EArray-wantE) > 1e-24 {
		t.Error("Eq.(5) violated")
	}
	if math.Abs(r.EDP-r.EArray*r.DArray) > 1e-36 {
		t.Error("EDP != E·D")
	}
	if !r.RailsSettleInTime {
		t.Error("20-fin rail drivers should settle the rails before WL half-swing")
	}
}

func TestDelayComponentsComposition(t *testing.T) {
	tech := testTech(t)
	r, err := Evaluate(tech, design(256, 128, 8, 2, 0.55, -0.1, 0.55), act)
	if err != nil {
		t.Fatal(err)
	}
	b := r.Parts
	readRow := b.DRowDec + b.DRowDrv + b.DWLRead + b.DBLRead
	readCol := b.DColDec + b.DColDrv + b.DCOL
	want := math.Max(readRow, readCol) + b.DSenseAmp + b.DPreRead
	if math.Abs(r.DRead-want) > 1e-18 {
		t.Errorf("Table-3 D_rd composition: %g vs %g", r.DRead, want)
	}
	writeRow := b.DRowDec + b.DRowDrv + b.DWLWrite
	writeCol := b.DColDec + b.DColDrv + b.DCOL + b.DBLWrite
	wantW := math.Max(writeRow, writeCol) + b.DWriteCell + b.DPreWrite
	if math.Abs(r.DWrite-wantW) > 1e-18 {
		t.Errorf("Table-3 D_wr composition: %g vs %g", r.DWrite, wantW)
	}
}

func TestUnmuxedArrayHasNoColumnPath(t *testing.T) {
	tech := testTech(t)
	r, err := Evaluate(tech, design(128, 64, 8, 2, 0.55, 0, 0.55), act)
	if err != nil {
		t.Fatal(err)
	}
	b := r.Parts
	if b.DColDec != 0 || b.DColDrv != 0 || b.DCOL != 0 || b.EColDec != 0 || b.ECOL != 0 {
		t.Errorf("column components must vanish when n_c ≤ W: %+v", b)
	}
}

func TestNegativeGndCutsBLDelay(t *testing.T) {
	tech := testTech(t)
	d0 := design(512, 64, 8, 2, 0.55, 0, 0.55)
	d1 := design(512, 64, 8, 2, 0.55, -0.24, 0.55)
	r0, err := Evaluate(tech, d0, act)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Evaluate(tech, d1, act)
	if err != nil {
		t.Fatal(err)
	}
	if !(r1.Parts.DBLRead < r0.Parts.DBLRead/1.5) {
		t.Errorf("VSSC=-240mV must cut BL delay strongly: %g -> %g", r0.Parts.DBLRead, r1.Parts.DBLRead)
	}
	if !(r1.DRead < r0.DRead) {
		t.Errorf("negative Gnd must cut total read delay: %g -> %g", r0.DRead, r1.DRead)
	}
	// But it costs CVSS switching energy.
	if !(r1.Parts.ECVSS > 0) || r0.Parts.ECVSS != 0 {
		t.Errorf("ECVSS: %g -> %g", r0.Parts.ECVSS, r1.Parts.ECVSS)
	}
}

func TestMorePrechargerFinsTradeoff(t *testing.T) {
	tech := testTech(t)
	small, err := Evaluate(tech, design(512, 64, 2, 2, 0.55, -0.1, 0.55), act)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Evaluate(tech, design(512, 64, 30, 2, 0.55, -0.1, 0.55), act)
	if err != nil {
		t.Fatal(err)
	}
	if !(big.Parts.DPreRead < small.Parts.DPreRead) {
		t.Error("more precharger fins must cut precharge delay")
	}
	if !(big.Parts.DBLRead > small.Parts.DBLRead) {
		t.Error("more precharger fins must raise BL capacitance and delay")
	}
}

func TestLeakageScalesWithBits(t *testing.T) {
	tech := testTech(t)
	r1, err := Evaluate(tech, design(128, 64, 8, 2, 0.55, 0, 0.55), act)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(tech, design(512, 256, 8, 2, 0.55, 0, 0.55), act)
	if err != nil {
		t.Fatal(err)
	}
	// 16× the bits: leakage per cycle must grow by more than 16× (delay
	// also grows), never less.
	if !(r2.ELeak > 16*r1.ELeak) {
		t.Errorf("leakage energy scaling: %g -> %g", r1.ELeak, r2.ELeak)
	}
}

func TestWorstCasePathBelowAllColumns(t *testing.T) {
	tech := testTech(t)
	d := design(256, 256, 8, 2, 0.55, -0.1, 0.55)
	all, err := Evaluate(tech, d, act)
	if err != nil {
		t.Fatal(err)
	}
	wcTech := *tech
	wcTech.Accounting = WorstCasePath
	wc, err := Evaluate(&wcTech, d, act)
	if err != nil {
		t.Fatal(err)
	}
	if !(wc.ESw < all.ESw) {
		t.Errorf("worst-case-path energy (%g) must be below all-columns (%g)", wc.ESw, all.ESw)
	}
	if wc.DArray != all.DArray {
		t.Error("accounting must not change delays")
	}
}

func TestBLDelayMatchesBreakdown(t *testing.T) {
	tech := testTech(t)
	d := design(512, 64, 8, 2, 0.55, -0.2, 0.55)
	r, err := Evaluate(tech, d, act)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := BLDelay(tech, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bl-r.Parts.DBLRead) > 1e-18 {
		t.Errorf("BLDelay (%g) disagrees with breakdown (%g)", bl, r.Parts.DBLRead)
	}
}

func TestValidationErrors(t *testing.T) {
	tech := testTech(t)
	good := design(128, 64, 8, 2, 0.55, -0.1, 0.55)
	cases := []struct {
		name   string
		mutate func(*Design)
	}{
		{"VDDC below Vdd", func(d *Design) { d.VDDC = 0.40 }},
		{"positive VSSC", func(d *Design) { d.VSSC = 0.05 }},
		{"VWL below Vdd", func(d *Design) { d.VWL = 0.40 }},
		{"bad geometry", func(d *Design) { d.Geom.NR = 3 }},
	}
	for _, c := range cases {
		d := good
		c.mutate(&d)
		if _, err := Evaluate(tech, d, act); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := Evaluate(tech, good, Activity{Alpha: 2, Beta: 0.5}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	badTech := *tech
	badTech.IRead = nil
	if _, err := Evaluate(&badTech, good, act); err == nil {
		t.Error("nil IRead accepted")
	}
	badTech2 := *tech
	badTech2.DCDCFactor = 0.5
	if _, err := Evaluate(&badTech2, good, act); err == nil {
		t.Error("DC-DC factor < 1 accepted")
	}
	zeroI := *tech
	zeroI.IRead = func(a, b float64) float64 { return 0 }
	if _, err := Evaluate(&zeroI, good, act); err == nil {
		t.Error("zero read current accepted")
	}
}

// TestEDPPositivity is a property test over the whole search region: every
// valid design point must produce finite positive delay, energy and EDP.
func TestEDPPositivity(t *testing.T) {
	tech := testTech(t)
	prop := func(e1, e2, pre, wr, vs uint8) bool {
		nr := 2 << (e1 % 10) // 2..1024
		nc := 1 << (e2 % 11) // 1..1024
		if nc < 1 {
			return true
		}
		npre := 1 + int(pre%50)
		nwr := 1 + int(wr%20)
		vssc := -0.01 * float64(vs%25)
		d := design(nr, nc, npre, nwr, 0.55, vssc, 0.55)
		if d.Geom.Validate() != nil {
			return true // outside the structural space
		}
		r, err := Evaluate(tech, d, act)
		if err != nil {
			return false
		}
		return r.EDP > 0 && !math.IsInf(r.EDP, 0) && !math.IsNaN(r.EDP) &&
			r.DArray > 0 && r.EArray > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccountingString(t *testing.T) {
	if AllColumns.String() != "all-columns" || WorstCasePath.String() != "worst-case-path" {
		t.Error("EnergyAccounting.String mismatch")
	}
}

func TestDividedWordlineCutsDisturbEnergy(t *testing.T) {
	tech := testTech(t) // AllColumns accounting fixture
	flat := design(256, 512, 8, 2, 0.55, -0.1, 0.55)
	dwl := flat
	dwl.Geom.WLSegs = 8
	rFlat, err := Evaluate(tech, flat, act)
	if err != nil {
		t.Fatal(err)
	}
	rDWL, err := Evaluate(tech, dwl, act)
	if err != nil {
		t.Fatal(err)
	}
	// Only n_c/8 columns are disturbed: read switching energy must drop
	// substantially under all-columns accounting.
	if !(rDWL.ESwRead < 0.6*rFlat.ESwRead) {
		t.Errorf("DWL read energy %g not well below flat %g", rDWL.ESwRead, rFlat.ESwRead)
	}
	// The breakdown must expose the global/local split.
	if rDWL.Parts.DWLGlobal <= 0 || rDWL.Parts.DWLLocal <= 0 {
		t.Error("DWL breakdown missing global/local delays")
	}
	if rFlat.Parts.DWLGlobal != 0 {
		t.Error("flat design should not report a global WL delay")
	}
	// Total WL delay includes both legs plus the AND stage.
	if rDWL.Parts.DWLRead <= rDWL.Parts.DWLGlobal+rDWL.Parts.DWLLocal-1e-18 {
		t.Error("DWL read delay should include the AND stage")
	}
}

func TestDividedWordlineWorstCaseAccounting(t *testing.T) {
	wcTech := *testTech(t)
	wcTech.Accounting = WorstCasePath
	flat := design(256, 512, 8, 2, 0.55, -0.1, 0.55)
	dwl := flat
	dwl.Geom.WLSegs = 4
	rFlat, err := Evaluate(&wcTech, flat, act)
	if err != nil {
		t.Fatal(err)
	}
	rDWL, err := Evaluate(&wcTech, dwl, act)
	if err != nil {
		t.Fatal(err)
	}
	// Under worst-case-path accounting the BL terms don't scale with
	// segments; only the WL wire itself changes. Both must stay positive
	// and finite.
	if rDWL.EDP <= 0 || rFlat.EDP <= 0 {
		t.Fatal("non-positive EDP")
	}
}
