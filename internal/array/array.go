// Package array implements the paper's analytical SRAM array model (§4):
// the Table-1 interconnect capacitances, the Table-2 delay/energy components
// (D = C·ΔV/I, E_sw = C·V·ΔV), the Table-3 read/write delay and switching
// energy equations, and the Eq. (2)-(5) totals combining switching and
// leakage energy under the array activity factors.
package array

import (
	"fmt"
	"math"

	"sramco/internal/obs"
	"sramco/internal/periph"
	"sramco/internal/wire"
)

// Table-2 current coefficients ("obtained for adopted FinFET devices to fit
// the model with SPICE simulations").
const (
	coefCVDD  = 0.30
	coefCVSS  = 0.15
	coefWLrd  = 0.25
	coefWLwr  = 0.18
	coefCOL   = 0.33
	coefBLwr  = 0.50
	coefPRE   = 0.50
	railFins  = periph.RailDriverFins
	driveFins = periph.WLDriverFins
)

// EnergyAccounting selects how per-column components enter the switching
// energy totals (DESIGN.md interpretation note 1).
type EnergyAccounting int

const (
	// WorstCasePath (default) counts each Table-3 component exactly once,
	// as the equations are literally printed in the paper. This is the
	// accounting that reproduces the paper's Fig. 7 behavior, where leakage
	// dominates the energy of large LVT arrays.
	WorstCasePath EnergyAccounting = iota
	// AllColumns additionally charges every bitline on the accessed row
	// (they all discharge and are precharged), W sense amplifiers and write
	// buffers, and W written cells — the physically conservative
	// accounting, provided as an ablation.
	AllColumns
)

func (e EnergyAccounting) String() string {
	if e == WorstCasePath {
		return "worst-case-path"
	}
	return "all-columns"
}

// Tech carries everything the analytical model consults about the
// technology and the chosen cell flavor. Build one via the core package (or
// assemble it directly in tests).
type Tech struct {
	Periph *periph.Tech    // characterized LVT peripherals
	Caps   wire.DeviceCaps // per-fin device capacitances entering Table 1

	Vdd     float64 // nominal supply (V)
	DeltaVS float64 // bitline sense voltage ΔVs (V)

	LeakCell float64 // P_leak,sram: standby leakage power per cell (W)

	// IRead is the cell read current as a function of the read-assist rails
	// (characterized LUT or the paper's fitted law).
	IRead func(vddc, vssc float64) float64
	// WriteDelayCell is the cell-level write delay as a function of the
	// write wordline voltage.
	WriteDelayCell func(vwl float64) float64
	// WriteEnergyCell is the cell-internal switching energy of one write.
	WriteEnergyCell float64

	// DCDCFactor scales assist-rail energies for DC-DC converter
	// inefficiency ("multiplied by a scaling factor", §5).
	DCDCFactor float64

	Accounting EnergyAccounting
}

// Validate reports structural problems in the technology description.
func (t *Tech) Validate() error {
	if t.Periph == nil {
		return fmt.Errorf("array: nil peripheral tech")
	}
	if err := t.Caps.Validate(); err != nil {
		return err
	}
	if t.Vdd <= 0 || t.DeltaVS <= 0 || t.DeltaVS >= t.Vdd {
		return fmt.Errorf("array: invalid Vdd=%g / ΔVs=%g", t.Vdd, t.DeltaVS)
	}
	if t.LeakCell < 0 {
		return fmt.Errorf("array: negative cell leakage %g", t.LeakCell)
	}
	if t.IRead == nil || t.WriteDelayCell == nil {
		return fmt.Errorf("array: missing IRead/WriteDelayCell providers")
	}
	if t.DCDCFactor < 1 {
		return fmt.Errorf("array: DC-DC factor %g must be ≥ 1", t.DCDCFactor)
	}
	return nil
}

// Design is one candidate array design point: the organization plus the
// assist rail voltages.
type Design struct {
	Geom wire.Geometry
	VDDC float64 // cell supply rail during read
	VSSC float64 // cell ground rail during read (≤ 0)
	VWL  float64 // wordline rail during write
}

// Validate checks the design against the paper's structural constraints.
func (d Design) Validate(t *Tech) error {
	if err := d.Geom.Validate(); err != nil {
		return err
	}
	if d.VDDC < t.Vdd {
		return fmt.Errorf("array: VDDC=%g below Vdd=%g", d.VDDC, t.Vdd)
	}
	if d.VSSC > 0 {
		return fmt.Errorf("array: VSSC=%g must be ≤ 0", d.VSSC)
	}
	if d.VWL < t.Vdd {
		return fmt.Errorf("array: VWL=%g below Vdd=%g (WLOD only)", d.VWL, t.Vdd)
	}
	return nil
}

// Activity carries the workload parameters of Eq. (3)/(5).
type Activity struct {
	Alpha float64 // probability of accessing the array in a cycle
	Beta  float64 // fraction of accesses that are reads
}

// Validate checks both factors are probabilities.
func (a Activity) Validate() error {
	if a.Alpha < 0 || a.Alpha > 1 || a.Beta < 0 || a.Beta > 1 {
		return fmt.Errorf("array: activity α=%g β=%g must be within [0,1]", a.Alpha, a.Beta)
	}
	return nil
}

// Breakdown itemizes every Table-2/Table-3 component (seconds and joules).
type Breakdown struct {
	// Divided-wordline split of the WL delays (zero for flat wordlines):
	// DWLRead/DWLWrite then hold the global+AND+local total.
	DWLGlobal, DWLLocal float64

	// Read-path delays.
	DRowDec, DRowDrv, DWLRead, DBLRead float64
	DColDec, DColDrv, DCOL             float64
	DSenseAmp, DPreRead                float64
	// Write-path delays.
	DWLWrite, DBLWrite, DWriteCell, DPreWrite float64
	// Assist rail settling (feasibility, not on the access critical path).
	DCVDD, DCVSS float64

	// Read energies.
	ERowDec, ERowDrv, EWLRead, EBLRead float64
	EColDec, EColDrv, ECOL             float64
	ESenseAmp, EPreRead, ECVDD, ECVSS  float64
	// Write energies.
	EWLWrite, EBLWrite, EWriteCell, EPreWrite float64
}

// Result is the full evaluation of one design point.
type Result struct {
	Design   Design
	Activity Activity

	DRead  float64 // D_rd (Table 3)
	DWrite float64 // D_wr (Table 3)
	DArray float64 // Eq. (2)

	ESwRead  float64 // E_sw,rd (Table 3)
	ESwWrite float64 // E_sw,wr (Table 3)
	ESw      float64 // Eq. (3)
	ELeak    float64 // Eq. (4)
	EArray   float64 // Eq. (5)

	EDP float64 // E_array · D_array

	// RailsSettleInTime reports the paper's §4 requirement that CVDD and
	// CVSS reach their assist levels before the wordline reaches 50 % of
	// Vdd (guaranteed by the fixed 20-fin rail drivers).
	RailsSettleInTime bool

	Parts Breakdown
}

// component computes Eq. (1): D = C·ΔV/I and E = C·V·ΔV.
func component(c, v, dv, i float64) (delay, energy float64) {
	if dv == 0 || c == 0 {
		return 0, 0
	}
	return c * dv / i, c * v * dv
}

// mEvals counts analytical model evaluations — the fundamental unit of
// work of every search (one per candidate design point).
var mEvals = obs.NewCounter("array.evaluations")

// Evaluate computes the full array model for one design point.
func Evaluate(t *Tech, d Design, act Activity) (*Result, error) {
	mEvals.Inc()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(t); err != nil {
		return nil, err
	}
	if err := act.Validate(); err != nil {
		return nil, err
	}
	g := d.Geom
	p := t.Periph
	var b Breakdown

	// --- Table 1 capacitances ---
	cCVDD := wire.CVDD(g, t.Caps)
	cCVSS := wire.CVSS(g, t.Caps)
	cWL := wire.WL(g, t.Caps)
	cCOL := wire.COL(g, t.Caps)
	cBL := wire.BL(g, t.Caps)

	// --- Table 2 components ---
	b.DCVDD, b.ECVDD = component(cCVDD, t.Vdd, d.VDDC-t.Vdd, coefCVDD*railFins*p.ICVDD(d.VDDC))
	b.DCVSS, b.ECVSS = component(cCVSS, t.Vdd, math.Abs(d.VSSC), coefCVSS*railFins*p.ICVSS(d.VSSC))
	if segs := g.Segments(); segs > 1 {
		// Divided wordline: global wire + per-segment AND + local wordline.
		cGWL := wire.GWL(g, t.Caps)
		cLWL := wire.LWL(g, t.Caps)
		lwlFins := float64(wire.LWLDriverFins())
		dAnd := 2 * p.Tau * (2 + p.PInv) // NAND2 + local driver input stage
		eAnd := lwlFins * (t.Caps.Cgn + t.Caps.Cgp) * t.Vdd * t.Vdd
		dg, eg := component(cGWL, t.Vdd, t.Vdd, coefWLrd*driveFins*p.IONPfet())
		dl, el := component(cLWL, t.Vdd, t.Vdd, coefWLrd*lwlFins*p.IONPfet())
		b.DWLGlobal, b.DWLLocal = dg, dl
		b.DWLRead = dg + dAnd + dl
		b.EWLRead = eg + eAnd + el
		dlw, elw := component(cLWL, t.Vdd, d.VWL, coefWLwr*lwlFins*p.IWL(d.VWL))
		b.DWLWrite = dg + dAnd + dlw
		b.EWLWrite = eg + eAnd + elw
	} else {
		b.DWLRead, b.EWLRead = component(cWL, t.Vdd, t.Vdd, coefWLrd*driveFins*p.IONPfet())
		b.DWLWrite, b.EWLWrite = component(cWL, t.Vdd, d.VWL, coefWLwr*driveFins*p.IWL(d.VWL))
	}
	b.DCOL, b.ECOL = component(cCOL, t.Vdd, t.Vdd, coefCOL*driveFins*p.IONPfet())
	iRead := t.IRead(d.VDDC, d.VSSC)
	if iRead <= 0 {
		return nil, fmt.Errorf("array: non-positive read current %g at VDDC=%g VSSC=%g", iRead, d.VDDC, d.VSSC)
	}
	b.DBLRead, b.EBLRead = component(cBL, d.VDDC-d.VSSC, t.DeltaVS, iRead)
	b.DBLWrite, b.EBLWrite = component(cBL, t.Vdd, t.Vdd, coefBLwr*float64(g.Nwr)*p.IONTG())
	b.DPreRead, b.EPreRead = component(cBL, t.Vdd, t.DeltaVS, coefPRE*float64(g.Npre)*p.IONPfet())
	b.DPreWrite, b.EPreWrite = component(cBL, t.Vdd, t.Vdd, coefPRE*float64(g.Npre)*p.IONPfet())

	// --- Peripheral blocks ---
	rowDec := p.RowDecoder(g)
	colDec := p.ColumnDecoder(g)
	rowDrv := p.Driver(driveFins)
	b.DRowDec, b.ERowDec = rowDec.Delay, rowDec.Energy
	b.DRowDrv, b.ERowDrv = rowDrv.Delay, rowDrv.Energy
	if g.Muxed() {
		colDrv := p.Driver(driveFins)
		b.DColDec, b.EColDec = colDec.Delay, colDec.Energy
		b.DColDrv, b.EColDrv = colDrv.Delay, colDrv.Energy
	}
	b.DSenseAmp, b.ESenseAmp = p.SADelay, p.SAEnergy
	b.DWriteCell = t.WriteDelayCell(d.VWL)
	b.EWriteCell = t.WriteEnergyCell

	// --- Table 3 delays ---
	readRow := b.DRowDec + b.DRowDrv + b.DWLRead + b.DBLRead
	readCol := b.DColDec + b.DColDrv + b.DCOL
	dRead := math.Max(readRow, readCol) + b.DSenseAmp + b.DPreRead

	writeRow := b.DRowDec + b.DRowDrv + b.DWLWrite
	writeCol := b.DColDec + b.DColDrv + b.DCOL + b.DBLWrite
	dWrite := math.Max(writeRow, writeCol) + b.DWriteCell + b.DPreWrite

	// --- Table 3 energies ---
	// With a divided wordline only the active segment's columns see the
	// access disturb.
	activeCols := float64(g.NC / g.Segments())
	w := float64(g.W)
	blRdMult, preRdMult, saMult, wrMult, preWrE := 1.0, 1.0, 1.0, 1.0, b.EPreWrite
	if t.Accounting == AllColumns {
		// Every disturbed bitline discharges by ΔVs and is precharged; W
		// sense amplifiers and write buffers operate; after a write, the W
		// written columns recover a full swing and the other disturbed
		// columns recover the read-disturb ΔVs.
		blRdMult, preRdMult, saMult, wrMult = activeCols, activeCols, w, w
		preWrE = w*b.EPreWrite + (activeCols-w)*b.EPreRead
	}
	dcdc := t.DCDCFactor
	eRead := b.ERowDec + b.ERowDrv + b.EWLRead + blRdMult*b.EBLRead +
		b.EColDec + b.EColDrv + b.ECOL +
		saMult*b.ESenseAmp + preRdMult*b.EPreRead +
		dcdc*(b.ECVDD+b.ECVSS)
	eWrite := b.ERowDec + b.ERowDrv + dcdc*b.EWLWrite +
		b.EColDec + b.EColDrv + b.ECOL +
		wrMult*b.EBLWrite + wrMult*b.EWriteCell + preWrE

	// --- Eqs. (2)-(5) ---
	dArray := math.Max(dRead, dWrite)
	eSw := act.Beta*eRead + (1-act.Beta)*eWrite
	eLeak := float64(g.Bits()) * t.LeakCell * dArray
	eArray := act.Alpha*eSw + eLeak

	res := &Result{
		Design:   d,
		Activity: act,
		DRead:    dRead,
		DWrite:   dWrite,
		DArray:   dArray,
		ESwRead:  eRead,
		ESwWrite: eWrite,
		ESw:      eSw,
		ELeak:    eLeak,
		EArray:   eArray,
		EDP:      eArray * dArray,
		Parts:    b,
	}
	// Rails must settle before WL reaches 50% (§4).
	wlHalf := b.DRowDec + b.DRowDrv + 0.5*b.DWLRead
	res.RailsSettleInTime = math.Max(b.DCVDD, b.DCVSS) <= wlHalf
	return res, nil
}

// BLDelay returns just the read bitline delay of a design (used by the
// Fig. 3 assist sweeps and the Fig. 7(d) breakdown).
func BLDelay(t *Tech, d Design) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if err := d.Validate(t); err != nil {
		return 0, err
	}
	i := t.IRead(d.VDDC, d.VSSC)
	if i <= 0 {
		return 0, fmt.Errorf("array: non-positive read current %g", i)
	}
	return wire.BL(d.Geom, t.Caps) * t.DeltaVS / i, nil
}
