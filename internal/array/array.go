// Package array implements the paper's analytical SRAM array model (§4):
// the Table-1 interconnect capacitances, the Table-2 delay/energy components
// (D = C·ΔV/I, E_sw = C·V·ΔV), the Table-3 read/write delay and switching
// energy equations, and the Eq. (2)-(5) totals combining switching and
// leakage energy under the array activity factors.
package array

import (
	"fmt"

	"sramco/internal/obs"
	"sramco/internal/periph"
	"sramco/internal/wire"
)

// Table-2 current coefficients ("obtained for adopted FinFET devices to fit
// the model with SPICE simulations").
const (
	coefCVDD  = 0.30
	coefCVSS  = 0.15
	coefWLrd  = 0.25
	coefWLwr  = 0.18
	coefCOL   = 0.33
	coefBLwr  = 0.50
	coefPRE   = 0.50
	railFins  = periph.RailDriverFins
	driveFins = periph.WLDriverFins
)

// EnergyAccounting selects how per-column components enter the switching
// energy totals (DESIGN.md interpretation note 1).
type EnergyAccounting int

const (
	// WorstCasePath (default) counts each Table-3 component exactly once,
	// as the equations are literally printed in the paper. This is the
	// accounting that reproduces the paper's Fig. 7 behavior, where leakage
	// dominates the energy of large LVT arrays.
	WorstCasePath EnergyAccounting = iota
	// AllColumns additionally charges every bitline on the accessed row
	// (they all discharge and are precharged), W sense amplifiers and write
	// buffers, and W written cells — the physically conservative
	// accounting, provided as an ablation.
	AllColumns
)

func (e EnergyAccounting) String() string {
	if e == WorstCasePath {
		return "worst-case-path"
	}
	return "all-columns"
}

// Tech carries everything the analytical model consults about the
// technology and the chosen cell flavor. Build one via the core package (or
// assemble it directly in tests).
type Tech struct {
	Periph *periph.Tech    // characterized LVT peripherals
	Caps   wire.DeviceCaps // per-fin device capacitances entering Table 1

	Vdd     float64 // nominal supply (V)
	DeltaVS float64 // bitline sense voltage ΔVs (V)

	LeakCell float64 // P_leak,sram: standby leakage power per cell (W)

	// IRead is the cell read current as a function of the read-assist rails
	// (characterized LUT or the paper's fitted law).
	IRead func(vddc, vssc float64) float64
	// WriteDelayCell is the cell-level write delay as a function of the
	// write wordline voltage.
	WriteDelayCell func(vwl float64) float64
	// WriteEnergyCell is the cell-internal switching energy of one write.
	WriteEnergyCell float64

	// DCDCFactor scales assist-rail energies for DC-DC converter
	// inefficiency ("multiplied by a scaling factor", §5).
	DCDCFactor float64

	Accounting EnergyAccounting
}

// Validate reports structural problems in the technology description.
func (t *Tech) Validate() error {
	if t.Periph == nil {
		return fmt.Errorf("array: nil peripheral tech")
	}
	if err := t.Caps.Validate(); err != nil {
		return err
	}
	if t.Vdd <= 0 || t.DeltaVS <= 0 || t.DeltaVS >= t.Vdd {
		return fmt.Errorf("array: invalid Vdd=%g / ΔVs=%g", t.Vdd, t.DeltaVS)
	}
	if t.LeakCell < 0 {
		return fmt.Errorf("array: negative cell leakage %g", t.LeakCell)
	}
	if t.IRead == nil || t.WriteDelayCell == nil {
		return fmt.Errorf("array: missing IRead/WriteDelayCell providers")
	}
	if t.DCDCFactor < 1 {
		return fmt.Errorf("array: DC-DC factor %g must be ≥ 1", t.DCDCFactor)
	}
	return nil
}

// Design is one candidate array design point: the organization plus the
// assist rail voltages, and — for hybrid arrays — the per-row-group cell
// flavor assignment.
type Design struct {
	Geom wire.Geometry
	VDDC float64 // cell supply rail during read
	VSSC float64 // cell ground rail during read (≤ 0)
	VWL  float64 // wordline rail during write

	// Groups splits the rows into equal contiguous groups ordered from the
	// sense-amp end; GroupMask bit g set means group g uses the alternate
	// cell flavor instead of the base one. 0 (the zero value) selects the
	// paper's single global flavor; omitempty keeps that encoding
	// byte-identical to designs that predate hybrid assignment.
	Groups    int    `json:",omitempty"`
	GroupMask uint32 `json:",omitempty"`
}

// Validate checks the design against the paper's structural constraints.
func (d Design) Validate(t *Tech) error {
	if err := d.Geom.Validate(); err != nil {
		return err
	}
	if d.VDDC < t.Vdd {
		return fmt.Errorf("array: VDDC=%g below Vdd=%g", d.VDDC, t.Vdd)
	}
	if d.VSSC > 0 {
		return fmt.Errorf("array: VSSC=%g must be ≤ 0", d.VSSC)
	}
	if d.VWL < t.Vdd {
		return fmt.Errorf("array: VWL=%g below Vdd=%g (WLOD only)", d.VWL, t.Vdd)
	}
	if err := d.validateHybrid(); err != nil {
		return err
	}
	return nil
}

// validateHybrid checks the per-row-group assignment fields on their own.
func (d Design) validateHybrid() error {
	if d.Groups == 0 {
		if d.GroupMask != 0 {
			return fmt.Errorf("array: GroupMask=%#x requires Groups ≥ 2", d.GroupMask)
		}
		return nil
	}
	if d.Groups < 2 || d.Groups > MaxGroups || d.Groups&(d.Groups-1) != 0 {
		return fmt.Errorf("array: Groups=%d must be a power of two in [2,%d]", d.Groups, MaxGroups)
	}
	if d.Geom.NR%d.Groups != 0 || d.Geom.NR < d.Groups {
		return fmt.Errorf("array: Groups=%d must divide n_r=%d", d.Groups, d.Geom.NR)
	}
	if d.GroupMask >= 1<<uint(d.Groups) {
		return fmt.Errorf("array: GroupMask=%#x has bits beyond Groups=%d", d.GroupMask, d.Groups)
	}
	return nil
}

// MaxGroups bounds the per-row-group hybrid assignment: at most 8 contiguous
// row groups, so a full assignment fits one mask byte and the search space
// stays enumerable.
const MaxGroups = 8

// FlavorTerms carries the cell-level quantities of one flavor that the
// hybrid evaluator needs per row group. The base flavor's terms live in
// Tech; an alternate flavor supplies its own via Hybrid.
type FlavorTerms struct {
	LeakCell        float64                          // standby leakage power per cell (W)
	IRead           func(vddc, vssc float64) float64 // read current under the assist rails
	WriteDelayCell  func(vwl float64) float64        // cell write delay under WLOD
	WriteEnergyCell float64                          // cell-internal write switching energy
}

// Validate reports structural problems in the flavor terms.
func (ft FlavorTerms) Validate() error {
	if ft.LeakCell < 0 {
		return fmt.Errorf("array: negative alt cell leakage %g", ft.LeakCell)
	}
	if ft.IRead == nil || ft.WriteDelayCell == nil {
		return fmt.Errorf("array: missing alt IRead/WriteDelayCell providers")
	}
	return nil
}

// Hybrid describes a per-row-group flavor assignment for the evaluator:
// Groups contiguous row groups ordered from the sense-amp end, mask bit g
// selecting the Alt flavor for group g (clear bits keep the Tech's base
// flavor).
type Hybrid struct {
	Groups int
	Mask   uint32
	Alt    FlavorTerms
}

// Activity carries the workload parameters of Eq. (3)/(5).
type Activity struct {
	Alpha float64 // probability of accessing the array in a cycle
	Beta  float64 // fraction of accesses that are reads
}

// Validate checks both factors are probabilities. The inverted comparison
// also rejects NaN, which would otherwise slip through a range check and
// poison every downstream energy term.
func (a Activity) Validate() error {
	if !(a.Alpha >= 0 && a.Alpha <= 1 && a.Beta >= 0 && a.Beta <= 1) {
		return fmt.Errorf("array: activity α=%g β=%g must be within [0,1]", a.Alpha, a.Beta)
	}
	return nil
}

// Breakdown itemizes every Table-2/Table-3 component (seconds and joules).
type Breakdown struct {
	// Divided-wordline split of the WL delays (zero for flat wordlines):
	// DWLRead/DWLWrite then hold the global+AND+local total.
	DWLGlobal, DWLLocal float64

	// Read-path delays.
	DRowDec, DRowDrv, DWLRead, DBLRead float64
	DColDec, DColDrv, DCOL             float64
	DSenseAmp, DPreRead                float64
	// Output-mux select line (zero when no sense amps are shared).
	DMuxSel float64
	// Write-path delays.
	DWLWrite, DBLWrite, DWriteCell, DPreWrite float64
	// Assist rail settling (feasibility, not on the access critical path).
	DCVDD, DCVSS float64

	// Read energies.
	ERowDec, ERowDrv, EWLRead, EBLRead float64
	EColDec, EColDrv, ECOL             float64
	ESenseAmp, EPreRead, ECVDD, ECVSS  float64
	// Output-mux select line (zero when no sense amps are shared).
	EMuxSel float64
	// Write energies.
	EWLWrite, EBLWrite, EWriteCell, EPreWrite float64
}

// Result is the full evaluation of one design point.
type Result struct {
	Design   Design
	Activity Activity

	DRead  float64 // D_rd (Table 3)
	DWrite float64 // D_wr (Table 3)
	DArray float64 // Eq. (2)

	ESwRead  float64 // E_sw,rd (Table 3)
	ESwWrite float64 // E_sw,wr (Table 3)
	ESw      float64 // Eq. (3)
	ELeak    float64 // Eq. (4)
	EArray   float64 // Eq. (5)

	EDP float64 // E_array · D_array

	Area float64 // layout area (m²): wire.Area of the geometry
	PADP float64 // power-area-delay product: EDP · Area

	// RailsSettleInTime reports the paper's §4 requirement that CVDD and
	// CVSS reach their assist levels before the wordline reaches 50 % of
	// Vdd (guaranteed by the fixed 20-fin rail drivers).
	RailsSettleInTime bool

	Parts Breakdown
}

// component computes Eq. (1): D = C·ΔV/I and E = C·V·ΔV.
func component(c, v, dv, i float64) (delay, energy float64) {
	if dv == 0 || c == 0 {
		return 0, 0
	}
	return c * dv / i, c * v * dv
}

// mEvals counts analytical model evaluations — the fundamental unit of
// work of every search (one per candidate design point).
var mEvals = obs.NewCounter("array.evaluations")

// Evaluate computes the full array model for one design point. It is a thin
// wrapper over the Evaluator engine: one Prepare for the point's chunk plus
// one Eval, after the full historical validation sequence. Search loops that
// sweep (N_pre, N_wr) inside a fixed chunk should hold an Evaluator instead
// and amortize the Prepare.
func Evaluate(t *Tech, d Design, act Activity) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(t); err != nil {
		return nil, err
	}
	if err := act.Validate(); err != nil {
		return nil, err
	}
	var e Evaluator
	e.init(t, act)
	if err := e.Prepare(d.Geom, d.VDDC, d.VSSC, d.VWL); err != nil {
		return nil, err
	}
	return e.Eval(d.Geom.Npre, d.Geom.Nwr)
}

// EvaluateHybrid computes the full array model for one hybrid design point:
// the design's Groups/GroupMask assignment over the base flavor in t and the
// alternate flavor terms in alt. A design with Groups == 0 degenerates to
// Evaluate.
func EvaluateHybrid(t *Tech, d Design, act Activity, alt FlavorTerms) (*Result, error) {
	if d.Groups == 0 {
		return Evaluate(t, d, act)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(t); err != nil {
		return nil, err
	}
	if err := act.Validate(); err != nil {
		return nil, err
	}
	var e Evaluator
	e.init(t, act)
	h := Hybrid{Groups: d.Groups, Mask: d.GroupMask, Alt: alt}
	if err := e.PrepareHybrid(d.Geom, d.VDDC, d.VSSC, d.VWL, h); err != nil {
		return nil, err
	}
	return e.Eval(d.Geom.Npre, d.Geom.Nwr)
}

// BLDelay returns just the read bitline delay of a design (used by the
// Fig. 3 assist sweeps and the Fig. 7(d) breakdown).
func BLDelay(t *Tech, d Design) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if err := d.Validate(t); err != nil {
		return 0, err
	}
	i := t.IRead(d.VDDC, d.VSSC)
	if i <= 0 {
		return 0, fmt.Errorf("array: non-positive read current %g", i)
	}
	return wire.BL(d.Geom, t.Caps) * t.DeltaVS / i, nil
}
