package array

import (
	"fmt"
	"math"
)

// Bound is a certified lower bound on the array metrics over a whole
// (N_pre, N_wr) rectangle of the prepared chunk: no point inside the
// rectangle can evaluate to a DArray, EArray or EDP below the corresponding
// field. A branch-and-bound searcher compares a Bound against its incumbent
// and skips the rectangle wholesale when even the bound cannot win.
//
// RailsSettleInTime carries the chunk-invariant §4 rail-settling feasibility
// (it does not depend on the swept fin counts), so a searcher can discard an
// unsettling chunk without evaluating a single point.
type Bound struct {
	DArray float64
	EArray float64
	EDP    float64
	Area   float64
	PADP   float64

	RailsSettleInTime bool
}

// boundSlack is a one-sided safety margin applied to the final bound values.
// The corner evaluation below is already a rigorous floating-point lower
// bound — every operation mirrors EvalInto's expression shape with each
// argument replaced by its extreme over the rectangle, and IEEE-754
// correctly-rounded +, ×, /, max are monotone — but the margin (half an ulp
// of slack per final value) keeps the bound strictly conservative even
// against a future refactoring that perturbs an operation order. Searchers
// must prune only on bound > incumbent (strict), so exact objective ties are
// always evaluated and canonical tie-breaking stays bit-identical.
const boundSlack = 1 - 1e-12

// BoundRect returns a lower bound on the metrics of every point (npre, nwr)
// with npreLo ≤ npre ≤ npreHi and nwrLo ≤ nwr ≤ nwrHi in the prepared chunk.
//
// The bound evaluates the Table-2/3 model once with each per-point term at
// its minimum over the rectangle (DESIGN.md §11 derives the monotonicity
// ranges):
//
//   - C_BL and C_COL increase in both N_pre and N_wr, so every capacitance —
//     and with it every per-point energy C·V·ΔV and the read/column delays —
//     is minimized at the (npreLo, nwrLo) corner.
//   - The write-buffer drain delay C_BL·Vdd/(coef·N_wr·I_TG) decreases in
//     N_wr: the bound divides the minimal numerator (at nwrLo) by the maximal
//     denominator (at nwrHi), a lower bound on the true mixed-corner minimum.
//   - The precharge delays C_BL·ΔV/(coef·N_pre·I_ON,p) decrease in N_pre:
//     again minimal numerator (npreLo) over maximal denominator (npreHi).
//
// Summing per-term minima under the monotone totals of Eq. (2)-(5) yields a
// valid — if not always tight — bound for the whole rectangle.
func (e *Evaluator) BoundRect(npreLo, npreHi, nwrLo, nwrHi int) (Bound, error) {
	if !e.prepared {
		return Bound{}, fmt.Errorf("array: BoundRect before a successful Prepare")
	}
	if npreLo < 1 || npreHi < npreLo || nwrLo < 1 || nwrHi < nwrLo {
		return Bound{}, fmt.Errorf("array: BoundRect: invalid rectangle N_pre ∈ [%d,%d], N_wr ∈ [%d,%d]",
			npreLo, npreHi, nwrLo, nwrHi)
	}

	// Minimal capacitances: the (npreLo, nwrLo) corner, with wire.BL's exact
	// expression shape so floating-point monotonicity carries over.
	fLo := float64(nwrLo)
	blBaseLo := e.blFixed + float64(npreLo+1)*e.cdp
	var cBLmin, cCOLmin float64
	if e.muxed {
		cBLmin = blBaseLo + 2*fLo*e.sumCd + e.blMuxCd
		cCOLmin = e.colBase + e.colW*fLo*e.sumCg
	} else {
		cBLmin = blBaseLo + fLo*e.sumCd + e.cdp + e.blMuxCd
	}

	// Per-point component minima (energies depend only on the capacitance;
	// the anti-monotone delays take the maximal current denominator).
	dCOL, eCOL := component(cCOLmin, e.vdd, e.vdd, e.iCol)
	dBLr, eBLr := component(cBLmin, e.dvBLRd, e.deltaVS, e.iRead)
	if e.hGroups > 1 {
		// The hybrid read bitline delay is a max of terms each monotone
		// increasing in C_BL, so evaluating it at cBLmin bounds the rectangle.
		dBLr = e.hybridBLDelay(cBLmin)
	}
	dBLw, eBLw := component(cBLmin, e.vdd, e.vdd, coefBLwr*float64(nwrHi)*e.iTG)
	iPreMax := coefPRE * float64(npreHi) * e.ionP
	dPreR, ePreR := component(cBLmin, e.vdd, e.deltaVS, iPreMax)
	dPreW, ePreW := component(cBLmin, e.vdd, e.vdd, iPreMax)

	// Eq. (2)-(5) totals over the minima, in EvalInto's operation order.
	b := &e.parts
	readRow := e.dReadRow + dBLr
	readCol := e.dColBase + dCOL
	dRead := math.Max(readRow, readCol) + b.DSenseAmp + dPreR + e.dMuxExtra
	writeCol := e.dColBase + dCOL + dBLw
	dWrite := math.Max(e.dWriteRow, writeCol) + b.DWriteCell + dPreW
	dArray := math.Max(dRead, dWrite)

	preWrE := ePreW
	if e.allCols {
		preWrE = e.wMult*ePreW + e.acMinusW*ePreR
	}
	eRead := e.eReadBase + e.blRdMult*eBLr +
		b.EColDec + b.EColDrv + eCOL +
		e.saE + e.preRdMult*ePreR +
		e.railE + e.eMuxExtra
	eWrite := e.eWriteBase + eCOL +
		e.wrMult*eBLw + e.wrCellE + preWrE
	eSw := e.beta*eRead + e.oneMinusBeta*eWrite
	eArray := e.alpha*eSw + e.leakCoef*dArray

	// Area is exactly monotone increasing in both fin counts, so the low
	// corner is its minimum; the PADP bound multiplies the three lower
	// bounds (correctly-rounded × is monotone).
	areaMin := (e.area0 + float64(npreLo)*e.areaPre) + float64(nwrLo)*e.areaWr

	return Bound{
		DArray:            dArray * boundSlack,
		EArray:            eArray * boundSlack,
		EDP:               (eArray * dArray) * boundSlack,
		Area:              areaMin * boundSlack,
		PADP:              ((eArray * dArray) * areaMin) * boundSlack,
		RailsSettleInTime: e.settles,
	}, nil
}
