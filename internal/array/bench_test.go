package array

import (
	"testing"

	"sramco/internal/wire"
)

func benchEvaluator(b *testing.B) *Evaluator {
	b.Helper()
	ev, err := NewEvaluator(testTech(b), Activity{Alpha: 0.5, Beta: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	g := wire.Geometry{NR: 256, NC: 512, W: 64, Npre: 1, Nwr: 1}
	if err := ev.Prepare(g, 0.55, -0.1, 0.55); err != nil {
		b.Fatal(err)
	}
	return ev
}

// BenchmarkEvalBlock measures the batched per-point cost of an 8-point block
// (two N_pre rows of four N_wr points each — the shape the issue targets),
// reported per point for comparison with BenchmarkModelEvaluationPrepared.
func BenchmarkEvalBlock(b *testing.B) {
	ev := benchEvaluator(b)
	npres := []int{7, 7, 7, 7, 8, 8, 8, 8}
	nwrs := []int{1, 2, 3, 4, 1, 2, 3, 4}
	out := make([]Result, len(npres))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.EvalBlock(npres, nwrs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(npres)), "ns/point")
}

// BenchmarkEvalSweep measures the struct-of-arrays row kernel on a full
// 20-point N_wr row — the exact shape the branch-and-bound searcher runs.
func BenchmarkEvalSweep(b *testing.B) {
	ev := benchEvaluator(b)
	var sweep SweepBlock
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.EvalSweep(1+i%50, 1, 20, &sweep); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*20), "ns/point")
}

// BenchmarkBoundRect measures the per-rectangle cost of the lower bound the
// searcher pays before deciding to prune or sweep.
func BenchmarkBoundRect(b *testing.B) {
	ev := benchEvaluator(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.BoundRect(1, 50, 1, 20); err != nil {
			b.Fatal(err)
		}
	}
}
