package wire

import (
	"math"
	"testing"
	"testing/quick"
)

var dc = DeviceCaps{Cdn: 0.04e-15, Cdp: 0.04e-15, Cgn: 0.07e-15, Cgp: 0.07e-15}

func geo(nr, nc int) Geometry { return Geometry{NR: nr, NC: nc, W: 64, Npre: 4, Nwr: 2} }

func TestWireConstants(t *testing.T) {
	// C_width = 5 · 43 nm · 0.17 fF/µm = 36.55 aF (paper §5 numbers).
	want := 5 * 43e-9 * 0.17e-9
	if math.Abs(CWidth()-want)/want > 1e-12 {
		t.Fatalf("CWidth = %g, want %g", CWidth(), want)
	}
	if math.Abs(CHeight()-0.4*CWidth()) > 1e-25 {
		t.Fatalf("CHeight = %g, want 0.4·CWidth", CHeight())
	}
}

func TestGeometryValidate(t *testing.T) {
	good := []Geometry{
		{NR: 64, NC: 64, W: 64, Npre: 1, Nwr: 1},
		{NR: 2, NC: 1024, W: 64, Npre: 50, Nwr: 20},
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", g, err)
		}
	}
	bad := []Geometry{
		{NR: 48, NC: 64, W: 64, Npre: 1, Nwr: 1},  // nr not power of two
		{NR: 64, NC: 48, W: 64, Npre: 1, Nwr: 1},  // nc not power of two
		{NR: 64, NC: 32, W: 64, Npre: 1, Nwr: 1},  // nc < W
		{NR: 64, NC: 64, W: 64, Npre: 0, Nwr: 1},  // Npre < 1
		{NR: 64, NC: 64, W: 64, Npre: 1, Nwr: 0},  // Nwr < 1
		{NR: 1, NC: 64, W: 64, Npre: 1, Nwr: 1},   // nr < 2
		{NR: 64, NC: 64, W: 48, Npre: 1, Nwr: 1},  // W not power of two
		{NR: 64, NC: 64, W: -1, Npre: 1, Nwr: 1},  // W negative
		{NR: -64, NC: 64, W: 64, Npre: 1, Nwr: 1}, // negative
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", g)
		}
	}
}

func TestDeviceCapsValidate(t *testing.T) {
	if err := dc.Validate(); err != nil {
		t.Fatalf("valid caps rejected: %v", err)
	}
	badDC := dc
	badDC.Cgn = 0
	if err := badDC.Validate(); err == nil {
		t.Fatal("zero Cgn accepted")
	}
}

func TestTable1HandComputed(t *testing.T) {
	g := Geometry{NR: 64, NC: 16, W: 64, Npre: 7, Nwr: 1}
	// CVDD = nc(Cw + 2Cdp) + 40 Cdp
	wantCVDD := 16*(CWidth()+2*dc.Cdp) + 40*dc.Cdp
	if got := CVDD(g, dc); math.Abs(got-wantCVDD) > 1e-25 {
		t.Errorf("CVDD = %g, want %g", got, wantCVDD)
	}
	wantCVSS := 16*(CWidth()+2*dc.Cdn) + 40*dc.Cdn
	if got := CVSS(g, dc); math.Abs(got-wantCVSS) > 1e-25 {
		t.Errorf("CVSS = %g, want %g", got, wantCVSS)
	}
	wantWL := 16*(CWidth()+2*dc.Cgn) + 27*(dc.Cdn+dc.Cdp)
	if got := WL(g, dc); math.Abs(got-wantWL) > 1e-25 {
		t.Errorf("WL = %g, want %g", got, wantWL)
	}
	// nc = 16 ≤ W = 64: no mux.
	if got := COL(g, dc); got != 0 {
		t.Errorf("COL = %g, want 0 for unmuxed array", got)
	}
	wantBL := 64*(CHeight()+dc.Cdn) + 8*dc.Cdp + 1*(dc.Cdn+dc.Cdp) + dc.Cdp
	if got := BL(g, dc); math.Abs(got-wantBL) > 1e-25 {
		t.Errorf("BL = %g, want %g", got, wantBL)
	}
}

func TestTable1MuxedBranch(t *testing.T) {
	g := Geometry{NR: 256, NC: 128, W: 64, Npre: 18, Nwr: 4}
	if !g.Muxed() {
		t.Fatal("expected muxed geometry")
	}
	wantCOL := 128*CWidth() + 27*(dc.Cdn+dc.Cdp) + 2*64*4*(dc.Cgn+dc.Cgp)
	if got := COL(g, dc); math.Abs(got-wantCOL) > 1e-25 {
		t.Errorf("COL = %g, want %g", got, wantCOL)
	}
	wantBL := 256*(CHeight()+dc.Cdn) + 19*dc.Cdp + 2*4*(dc.Cdn+dc.Cdp)
	if got := BL(g, dc); math.Abs(got-wantBL) > 1e-25 {
		t.Errorf("BL = %g, want %g", got, wantBL)
	}
}

// TestCapacitancesMonotone: all Table-1 capacitances must grow (or stay
// equal) when the geometry grows — the property the optimizer exploits.
func TestCapacitancesMonotone(t *testing.T) {
	prop := func(e1, e2 uint8, pre, wr uint8) bool {
		nr := 1 << (1 + e1%9) // 2..512
		nc := 64 << (e2 % 5)  // 64..1024
		np := 1 + int(pre%50) // 1..50
		nw := 1 + int(wr%20)  // 1..20
		g := Geometry{NR: nr, NC: nc, W: 64, Npre: np, Nwr: nw}
		g2 := Geometry{NR: nr * 2, NC: nc * 2, W: 64, Npre: np + 1, Nwr: nw + 1}
		if g.Validate() != nil || g2.Validate() != nil {
			return false
		}
		return CVDD(g2, dc) >= CVDD(g, dc) &&
			CVSS(g2, dc) >= CVSS(g, dc) &&
			WL(g2, dc) >= WL(g, dc) &&
			COL(g2, dc) >= COL(g, dc) &&
			BL(g2, dc) >= BL(g, dc) &&
			BL(g, dc) > 0 && WL(g, dc) > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBLGrowsWithPrechargerFins(t *testing.T) {
	g1 := geo(128, 128)
	g2 := g1
	g2.Npre = g1.Npre + 10
	if !(BL(g2, dc) > BL(g1, dc)) {
		t.Error("BL capacitance must grow with N_pre (the paper's core trade-off)")
	}
	g3 := g1
	g3.Nwr = g1.Nwr + 5
	if !(BL(g3, dc) > BL(g1, dc)) {
		t.Error("BL capacitance must grow with N_wr")
	}
}

func TestBitsAndMuxed(t *testing.T) {
	g := geo(128, 64)
	if g.Bits() != 8192 {
		t.Errorf("Bits = %d, want 8192 (1KB)", g.Bits())
	}
	if g.Muxed() {
		t.Error("nc=W must not be muxed")
	}
	if !geo(64, 128).Muxed() {
		t.Error("nc>W must be muxed")
	}
}

func TestDividedWordlineGeometry(t *testing.T) {
	g := Geometry{NR: 256, NC: 512, W: 64, Npre: 8, Nwr: 2, WLSegs: 4}
	if err := g.Validate(); err != nil {
		t.Fatalf("valid DWL geometry rejected: %v", err)
	}
	if g.Segments() != 4 {
		t.Errorf("Segments = %d", g.Segments())
	}
	flat := g
	flat.WLSegs = 0
	if flat.Segments() != 1 {
		t.Errorf("flat Segments = %d", flat.Segments())
	}
	bad := g
	bad.WLSegs = 3 // not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("WLSegs=3 accepted")
	}
	narrow := g
	narrow.NC = 128
	narrow.WLSegs = 4 // segment width 32 < W=64
	if err := narrow.Validate(); err == nil {
		t.Error("segment narrower than access width accepted")
	}
}

func TestDWLCapacitances(t *testing.T) {
	g := Geometry{NR: 256, NC: 512, W: 64, Npre: 8, Nwr: 2, WLSegs: 4}
	flatWL := WL(g, dc)
	gwl := GWL(g, dc)
	lwl := LWL(g, dc)
	if !(gwl < flatWL) {
		t.Errorf("global WL (%g) should be lighter than flat WL (%g): no access gates", gwl, flatWL)
	}
	if !(lwl < flatWL) {
		t.Errorf("local WL (%g) must be far below flat WL (%g)", lwl, flatWL)
	}
	// The local segment carries 1/4 of the access gates.
	g8 := g
	g8.WLSegs = 8
	if !(LWL(g8, dc) < lwl) {
		t.Error("more segments must shrink the local wordline")
	}
	if LWLDriverFins() < 1 {
		t.Error("LWL driver fins must be positive")
	}
}
