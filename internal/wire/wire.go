// Package wire models the interconnect capacitances of the SRAM array,
// implementing Table 1 of the paper together with its layout-derived wire
// constants: a 43 nm metal pitch (7 nm FinFET, scaled from Intel 14 nm) and
// an ITRS-2012 wire capacitance of 0.17 fF/µm.
package wire

import (
	"fmt"
	"math/bits"
)

// Process wire constants (paper §5).
const (
	PMetal = 43e-9           // metal pitch (m)
	Cw     = 0.17e-15 / 1e-6 // wire capacitance per metre (F/m)
)

// CellWidth and CellHeight are the 6T cell dimensions implied by the layout
// of Fig. 1(b): the cell spans 5 metal pitches horizontally, and its height
// is 0.4× its width (the paper's C_height = 0.4·C_width relation).
const (
	CellWidth  = 5 * PMetal
	CellHeight = 0.4 * CellWidth
)

// CWidth returns the wire capacitance across one cell width (the per-cell
// contribution to horizontal wires: WL, CVDD, CVSS, COL).
func CWidth() float64 { return CellWidth * Cw }

// CHeight returns the wire capacitance across one cell height (the per-cell
// contribution to vertical wires: BL).
func CHeight() float64 { return CellHeight * Cw }

// DeviceCaps carries the per-fin FinFET capacitances entering Table 1.
type DeviceCaps struct {
	Cdn float64 // drain capacitance, n-channel, per fin
	Cdp float64 // drain capacitance, p-channel, per fin
	Cgn float64 // gate capacitance, n-channel, per fin
	Cgp float64 // gate capacitance, p-channel, per fin
}

// Validate reports an error when any capacitance is non-positive.
func (d DeviceCaps) Validate() error {
	if d.Cdn <= 0 || d.Cdp <= 0 || d.Cgn <= 0 || d.Cgp <= 0 {
		return fmt.Errorf("wire: non-positive device capacitance: %+v", d)
	}
	return nil
}

// Geometry is the array organization (paper §4): n_r rows × n_c columns,
// W bits accessed per cycle, and the precharger / write-buffer fin counts.
//
// WLSegs extends the paper's flat wordline with a divided-wordline (DWL)
// hierarchy: a global wordline spans the row and per-segment AND gates
// drive local wordlines, so only n_c/WLSegs cells see the access disturb.
// WLSegs ≤ 1 selects the paper's flat organization.
type Geometry struct {
	NR   int // number of rows (power of two)
	NC   int // number of columns (power of two)
	W    int // access width in bits
	Npre int // precharger PFET fins
	Nwr  int // write-buffer fins

	WLSegs int // wordline segments (0/1 = flat; else a power of two)

	// Mux is the sense-amp sharing ratio: Mux accessed columns share one
	// sense amplifier through an output column multiplexer, so the array
	// carries W/Mux sense amps plus W·Mux transmission gates. 0 (or 1)
	// selects the paper's organization of one sense amp per accessed bit.
	// The omitempty tag keeps the degenerate encoding byte-identical to
	// designs that predate the field.
	Mux int `json:",omitempty"`
}

// Segments returns the normalized wordline segment count (≥ 1).
func (g Geometry) Segments() int {
	if g.WLSegs < 1 {
		return 1
	}
	return g.WLSegs
}

// MuxRatio returns the normalized sense-amp sharing ratio (≥ 1).
func (g Geometry) MuxRatio() int {
	if g.Mux < 2 {
		return 1
	}
	return g.Mux
}

// Bits returns the array capacity in bits (M = n_r · n_c).
func (g Geometry) Bits() int { return g.NR * g.NC }

// Muxed reports whether a column multiplexer is needed (n_c > W).
func (g Geometry) Muxed() bool { return g.NC > g.W }

// Validate checks the paper's structural constraints.
func (g Geometry) Validate() error {
	if g.NR < 2 || bits.OnesCount(uint(g.NR)) != 1 {
		return fmt.Errorf("wire: n_r = %d must be a power of two ≥ 2", g.NR)
	}
	if g.NC < 1 || bits.OnesCount(uint(g.NC)) != 1 {
		return fmt.Errorf("wire: n_c = %d must be a power of two ≥ 1", g.NC)
	}
	if g.W < 1 || bits.OnesCount(uint(g.W)) != 1 {
		return fmt.Errorf("wire: W = %d must be a power of two ≥ 1", g.W)
	}
	if g.NC < g.W {
		return fmt.Errorf("wire: n_c = %d must be ≥ W = %d", g.NC, g.W)
	}
	if g.Npre < 1 {
		return fmt.Errorf("wire: N_pre = %d must be ≥ 1", g.Npre)
	}
	if g.Nwr < 1 {
		return fmt.Errorf("wire: N_wr = %d must be ≥ 1", g.Nwr)
	}
	if s := g.Segments(); s > 1 {
		if bits.OnesCount(uint(s)) != 1 {
			return fmt.Errorf("wire: WLSegs = %d must be a power of two", s)
		}
		if g.NC/s < g.W {
			return fmt.Errorf("wire: segment width %d below access width %d", g.NC/s, g.W)
		}
	}
	if g.Mux < 0 {
		return fmt.Errorf("wire: Mux = %d must be ≥ 0", g.Mux)
	}
	if m := g.MuxRatio(); m > 1 {
		if bits.OnesCount(uint(m)) != 1 {
			return fmt.Errorf("wire: Mux = %d must be a power of two", m)
		}
		if m > g.W {
			return fmt.Errorf("wire: Mux = %d exceeds access width %d", m, g.W)
		}
	}
	return nil
}

// railDriverFins is the fixed fin count of the CVDD/CVSS rail drivers
// (paper: 20 fins, sized for n_c = 1024).
const railDriverFins = 20

// wlDriverFins is the fixed fin count of the last WL/COL driver stage
// (Table 1: 27·(C_dn + C_dp)).
const wlDriverFins = 27

// CVDD returns the cell-Vdd rail capacitance (Table 1):
// n_c(C_width + 2C_dp) + 2·20·C_dp.
func CVDD(g Geometry, d DeviceCaps) float64 {
	return float64(g.NC)*(CWidth()+2*d.Cdp) + 2*railDriverFins*d.Cdp
}

// CVSS returns the cell-ground rail capacitance (Table 1):
// n_c(C_width + 2C_dn) + 2·20·C_dn.
func CVSS(g Geometry, d DeviceCaps) float64 {
	return float64(g.NC)*(CWidth()+2*d.Cdn) + 2*railDriverFins*d.Cdn
}

// WL returns the flat wordline capacitance (Table 1):
// n_c(C_width + 2C_gn) + 27(C_dn + C_dp).
func WL(g Geometry, d DeviceCaps) float64 {
	return float64(g.NC)*(CWidth()+2*d.Cgn) + wlDriverFins*(d.Cdn+d.Cdp)
}

// lwlDriverFins is the fin count of each local-wordline AND driver in the
// divided-wordline organization.
const lwlDriverFins = 8

// GWL returns the global wordline capacitance of a divided-wordline row:
// the wire spans all n_c columns but loads only one AND-gate input per
// segment instead of two access gates per cell.
func GWL(g Geometry, d DeviceCaps) float64 {
	return float64(g.NC)*CWidth() + float64(g.Segments())*2*(d.Cgn+d.Cgp) +
		wlDriverFins*(d.Cdn+d.Cdp)
}

// LWL returns the local wordline capacitance of one segment: the access
// gates of n_c/WLSegs cells plus its local driver drain.
func LWL(g Geometry, d DeviceCaps) float64 {
	cols := float64(g.NC / g.Segments())
	return cols*(CWidth()+2*d.Cgn) + lwlDriverFins*(d.Cdn+d.Cdp)
}

// LWLDriverFins exposes the local driver sizing for the array model.
func LWLDriverFins() int { return lwlDriverFins }

// COL returns the column-select line capacitance (Table 1): zero when no
// column multiplexer is needed, else
// n_c·C_width + 27(C_dn + C_dp) + 2·W·N_wr(C_gn + C_gp).
func COL(g Geometry, d DeviceCaps) float64 {
	if !g.Muxed() {
		return 0
	}
	return float64(g.NC)*CWidth() + wlDriverFins*(d.Cdn+d.Cdp) +
		2*float64(g.W)*float64(g.Nwr)*(d.Cgn+d.Cgp)
}

// BL returns the bitline capacitance (Table 1). Without a column mux the
// write buffer connects directly (one TG worth of drain); with a mux the
// write path goes through two transmission gates.
//
// BL is composed from BLFixed plus the precharger and write-buffer drain
// terms, in exactly that order, so an evaluator that amortizes BLFixed
// across an (N_pre, N_wr) sweep reproduces BL bit-for-bit.
func BL(g Geometry, d DeviceCaps) float64 {
	base := BLFixed(g, d) + float64(g.Npre+1)*d.Cdp
	if !g.Muxed() {
		return base + float64(g.Nwr)*(d.Cdn+d.Cdp) + d.Cdp
	}
	return base + 2*float64(g.Nwr)*(d.Cdn+d.Cdp)
}

// BLFixed returns the part of the bitline capacitance that is independent of
// the precharger and write-buffer fin counts: the cell drains and wire of
// the n_r rows, n_r(C_height + C_dn).
func BLFixed(g Geometry, d DeviceCaps) float64 {
	return float64(g.NR) * (CHeight() + d.Cdn)
}

// COLFixed returns the part of the column-select capacitance that is
// independent of N_wr: the wire spanning the array plus the driver drain,
// n_c·C_width + 27(C_dn + C_dp). Zero when no column multiplexer is needed.
func COLFixed(g Geometry, d DeviceCaps) float64 {
	if !g.Muxed() {
		return 0
	}
	return float64(g.NC)*CWidth() + wlDriverFins*(d.Cdn+d.Cdp)
}

// MuxSel returns the sense-amp-sharing select-line capacitance: a wire
// spanning the W accessed columns loading one transmission-gate pair per
// shared sense amp, driven by a last-stage driver like WL/COL. Zero when no
// sense amps are shared (MuxRatio ≤ 1).
func MuxSel(g Geometry, d DeviceCaps) float64 {
	m := g.MuxRatio()
	if m <= 1 {
		return 0
	}
	return float64(g.W)*CWidth() + 2*float64(g.W/m)*(d.Cgn+d.Cgp) +
		wlDriverFins*(d.Cdn+d.Cdp)
}

// FinArea is the layout area charged per peripheral fin: a 2×4 metal-pitch
// footprint (one fin plus its contacts and isolation).
const FinArea = (2 * PMetal) * (4 * PMetal)

// saFins is the fin count charged per sense amplifier (cross-coupled pair,
// precharge devices and output latch).
const saFins = 16

// muxTGFins is the fin count of one output-mux transmission gate.
const muxTGFins = 2

// MuxArea returns the layout area of the output column multiplexer: W·mux
// transmission gates of muxTGFins fins each. Zero when no sense amps are
// shared.
func MuxArea(w, mux int) float64 {
	if mux <= 1 {
		return 0
	}
	return float64(w) * float64(mux) * muxTGFins * FinArea
}

// Area returns the layout area of the array (m²): the cell matrix plus row
// drivers, rail drivers, sense amps, output mux, prechargers and write
// buffers. It is composed as
// (AreaBase + N_pre·AreaPreUnit) + N_wr·AreaWrUnit — in exactly that order —
// so an evaluator that amortizes the N_pre/N_wr-invariant prefix across a
// sweep reproduces Area bit-for-bit.
func Area(g Geometry) float64 {
	return (AreaBase(g) + float64(g.Npre)*AreaPreUnit(g)) + float64(g.Nwr)*AreaWrUnit(g)
}

// AreaBase returns the N_pre/N_wr-independent part of Area: cells, row
// drivers, rail drivers, sense amps and the output mux, summed as
// ((((cells+rows)+rails)+sa)+mux).
func AreaBase(g Geometry) float64 {
	drv := wlDriverFins
	if s := g.Segments(); s > 1 {
		drv += s * lwlDriverFins
	}
	m := g.MuxRatio()
	cells := float64(g.NR) * float64(g.NC) * CellWidth * CellHeight
	rows := float64(g.NR) * float64(drv) * FinArea
	rails := 4 * railDriverFins * FinArea
	sa := float64(g.W/m) * saFins * FinArea
	mux := MuxArea(g.W, m)
	return (((cells + rows) + rails) + sa) + mux
}

// AreaPreUnit returns the area added per precharger fin: one fin per column.
func AreaPreUnit(g Geometry) float64 { return float64(g.NC) * FinArea }

// AreaWrUnit returns the area added per write-buffer fin: two fins (the
// transmission-gate pair) per accessed bit.
func AreaWrUnit(g Geometry) float64 { return float64(g.W) * 2 * FinArea }
