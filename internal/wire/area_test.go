package wire

import "testing"

// TestMuxAreaMonotone pins the sanity properties of the column-mux area
// term: MuxArea is non-decreasing in both inputs, exactly zero for the
// degenerate encodings, and scales linearly in the access width.
func TestMuxAreaMonotone(t *testing.T) {
	if MuxArea(64, 0) != 0 || MuxArea(64, 1) != 0 {
		t.Error("degenerate mux ratios must contribute exactly zero area")
	}
	for _, w := range []int{8, 16, 32, 64, 128} {
		prev := 0.0
		for _, m := range []int{0, 2, 4, 8} {
			a := MuxArea(w, m)
			if a < prev {
				t.Errorf("MuxArea(%d, %d) = %g decreased from %g", w, m, a, prev)
			}
			prev = a
		}
	}
	for _, m := range []int{2, 4, 8} {
		prev := 0.0
		for _, w := range []int{8, 16, 32, 64, 128} {
			a := MuxArea(w, m)
			if a <= prev {
				t.Errorf("MuxArea(%d, %d) = %g did not grow with width from %g", w, m, a, prev)
			}
			prev = a
		}
	}
	if got, want := MuxArea(128, 4), 2*MuxArea(64, 4); got != want {
		t.Errorf("MuxArea not linear in width: MuxArea(128,4)=%g, want %g", got, want)
	}
}

// TestAreaMonotoneInBuffers pins that total layout area is non-decreasing
// (in fact strictly increasing) in the precharger and write-buffer sizing
// knobs, and that the factored form (AreaBase + Npre·AreaPreUnit +
// Nwr·AreaWrUnit) reproduces Area bit-for-bit — the contract the sweeping
// evaluator's amortized area path relies on.
func TestAreaMonotoneInBuffers(t *testing.T) {
	for _, mux := range []int{0, 2, 4, 8} {
		g := Geometry{NR: 256, NC: 128, W: 64, Npre: 1, Nwr: 1, Mux: mux}
		if err := g.Validate(); err != nil {
			t.Fatalf("mux=%d: %v", mux, err)
		}
		for npre := 1; npre <= 32; npre++ {
			for nwr := 1; nwr <= 4; nwr++ {
				g.Npre, g.Nwr = npre, nwr
				a := Area(g)
				if want := (AreaBase(g) + float64(npre)*AreaPreUnit(g)) + float64(nwr)*AreaWrUnit(g); a != want {
					t.Fatalf("mux=%d npre=%d nwr=%d: Area %g != factored form %g", mux, npre, nwr, a, want)
				}
				g.Npre = npre + 1
				if up := Area(g); up <= a {
					t.Errorf("mux=%d npre=%d nwr=%d: area %g did not grow with npre (%g)", mux, npre, nwr, up, a)
				}
				g.Npre, g.Nwr = npre, nwr+1
				if up := Area(g); up <= a {
					t.Errorf("mux=%d npre=%d nwr=%d: area %g did not grow with nwr (%g)", mux, npre, nwr, up, a)
				}
			}
		}
	}
}

// TestMuxRatioEncoding pins the canonical degenerate encoding: 0 and 1 both
// mean "no sharing" and report ratio 1; validation rejects a non-power-of-
// two ratio and a ratio above the access width.
func TestMuxRatioEncoding(t *testing.T) {
	g := Geometry{NR: 128, NC: 128, W: 64, Npre: 1, Nwr: 1}
	if g.MuxRatio() != 1 {
		t.Errorf("Mux=0 ratio = %d, want 1", g.MuxRatio())
	}
	g.Mux = 1
	if g.MuxRatio() != 1 {
		t.Errorf("Mux=1 ratio = %d, want 1", g.MuxRatio())
	}
	g.Mux = 8
	if g.MuxRatio() != 8 {
		t.Errorf("Mux=8 ratio = %d, want 8", g.MuxRatio())
	}
	g.Mux = 3
	if err := g.Validate(); err == nil {
		t.Error("non-power-of-two mux ratio accepted")
	}
	g.Mux = 128
	if err := g.Validate(); err == nil {
		t.Error("mux ratio above the access width accepted")
	}
}
