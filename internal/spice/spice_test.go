package spice

import (
	"math"
	"strings"
	"testing"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1", 1},
		{"450m", 0.45},
		{"450mV", 0.45},
		{"0.1p", 0.1e-12},
		{"2meg", 2e6},
		{"1k", 1e3},
		{"3.5n", 3.5e-9},
		{"10f", 10e-15},
		{"-240m", -0.24},
		{"1e-12", 1e-12},
		{"2u", 2e-6},
		{"5g", 5e9},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > math.Abs(c.want)*1e-12 {
			t.Errorf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1x1", "--3"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) accepted", bad)
		}
	}
}

func TestParseAndRunDivider(t *testing.T) {
	deck := `
* resistive divider
.title divider test
v1 in gnd DC 1.0
r1 in mid 1k
r2 mid gnd 3k
.op
.print v(mid) v(in)
.end
`
	d, err := Parse(strings.NewReader(deck), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "divider test" {
		t.Errorf("title %q", d.Title)
	}
	var out strings.Builder
	if err := d.Run(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "v(mid) = 0.75") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestParseInverterDCSweep(t *testing.T) {
	deck := `
vdd vdd 0 DC 450m
vin in 0 DC 0
mp out in vdd plvt
mn out in 0 nlvt fins=1
.dc vin 0 450m 45m
.print v(out)
`
	d, err := Parse(strings.NewReader(deck), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := d.Run(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Header ×2 + 11 sweep points.
	if len(lines) != 13 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	// First point: out ≈ Vdd; last: out ≈ 0.
	first := strings.Fields(lines[2])
	last := strings.Fields(lines[len(lines)-1])
	fv, _ := ParseValue(first[1])
	lv, _ := ParseValue(last[1])
	if fv < 0.4 {
		t.Errorf("VTC start %g, want ≈0.45", fv)
	}
	if lv > 0.05 {
		t.Errorf("VTC end %g, want ≈0", lv)
	}
}

func TestParseTransientWithPWLAndIC(t *testing.T) {
	deck := `
vin in 0 PWL(0 0 1n 0 1.001n 1 5n 1)
r1 in out 1k
c1 out 0 1p
.ic v(out)=0
.tran 10p 5n uic
.print v(out)
`
	d, err := Parse(strings.NewReader(deck), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := d.Run(&out); err != nil {
		t.Fatal(err)
	}
	// Final value approaches 1 after ~4 RC.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	last := strings.Fields(lines[len(lines)-1])
	v, _ := ParseValue(last[1])
	if v < 0.9 {
		t.Errorf("final RC value %g, want ≥0.9:\n%s", v, out.String())
	}
}

func TestContinuationAndComments(t *testing.T) {
	deck := `
* comment line
v1 a 0
+ DC 2 ; trailing comment
r1 a 0 1k
.op
.print v(a)
`
	d, err := Parse(strings.NewReader(deck), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := d.Run(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "v(a) = 2") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestSRAMCellDeck(t *testing.T) {
	// The 6T cell expressed as a netlist: hold state must be stable.
	deck := `
.title 6t hold
vdd vdd 0 DC 450m
vbl bl 0 DC 450m
vblb blb 0 DC 450m
vwl wl 0 DC 0
mpu1 q qb vdd phvt
mpd1 q qb 0 nhvt
max1 bl wl q nhvt
mpu2 qb q vdd phvt
mpd2 qb q 0 nhvt
max2 blb wl qb nhvt
.ic v(q)=0 v(qb)=450m
.op
.print v(q) v(qb)
`
	d, err := Parse(strings.NewReader(deck), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := d.Run(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "v(q) = ") {
		t.Fatalf("missing q:\n%s", s)
	}
	// q stays low, qb stays high.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "v(q) = ") {
			v, _ := ParseValue(strings.TrimPrefix(line, "v(q) = "))
			if v > 0.05 {
				t.Errorf("hold state lost: %s", line)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown card":    "x1 a b 5\n.op\n",
		"unknown control": ".foo\n",
		"bad fet model":   "m1 d g s weird\n.op\n",
		"bad fins":        "m1 d g s nlvt fins=zero\n.op\n",
		"bad fet param":   "m1 d g s nlvt w=5\n.op\n",
		"short fet":       "m1 d g\n.op\n",
		"bad r":           "r1 a b\n.op\n",
		"bad value":       "r1 a b 1x\n.op\n",
		"bad dc card":     ".dc v1 0 1\n",
		"bad tran":        ".tran 1n\n",
		"bad ic":          ".ic q=1\n",
		"odd pwl":         "v1 a 0 PWL(0 1 2)\n.op\n",
	}
	for name, deck := range cases {
		if _, err := Parse(strings.NewReader(deck), nil); err == nil {
			t.Errorf("%s: parse accepted %q", name, deck)
		}
	}
}

func TestRunWithoutAnalyses(t *testing.T) {
	d, err := Parse(strings.NewReader("r1 a 0 1k\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := d.Run(&out); err == nil {
		t.Error("deck without analyses should fail to run")
	}
}

func TestFETParams(t *testing.T) {
	deck := `
vd d 0 DC 450m
m1 d g 0 nhvt fins=3 dvt=20m
.op
.print v(d)
`
	if _, err := Parse(strings.NewReader(deck), nil); err != nil {
		t.Fatalf("fins/dvt parameters rejected: %v", err)
	}
}
