package spice

import (
	"math"
	"strings"
	"testing"

	"sramco/internal/circuit"
	"sramco/internal/device"
)

// TestNetlistRoundTrip builds a 6T cell programmatically, dumps it with
// WriteNetlist, re-parses it with this package, and verifies both circuits
// solve to the same operating point — the exporter and parser agree on the
// dialect.
func TestNetlistRoundTrip(t *testing.T) {
	lib := device.Default7nm()
	build := func() *circuit.Circuit {
		c := circuit.New()
		c.AddV("vdd", "VDD", circuit.Ground, circuit.DC(device.Vdd))
		c.AddV("vwl", "WL", circuit.Ground, circuit.DC(0))
		c.AddV("vbl", "BL", circuit.Ground, circuit.DC(device.Vdd))
		c.AddV("vblb", "BLB", circuit.Ground, circuit.DC(device.Vdd))
		c.AddFET(circuit.FET{Name: "pu1", Model: lib.PHVT, Fins: 1, D: "Q", G: "QB", S: "VDD"})
		c.AddFET(circuit.FET{Name: "pd1", Model: lib.NHVT, Fins: 1, D: "Q", G: "QB", S: circuit.Ground})
		c.AddFET(circuit.FET{Name: "ax1", Model: lib.NHVT, Fins: 1, D: "BL", G: "WL", S: "Q"})
		c.AddFET(circuit.FET{Name: "pu2", Model: lib.PHVT, Fins: 1, D: "QB", G: "Q", S: "VDD"})
		c.AddFET(circuit.FET{Name: "pd2", Model: lib.NHVT, Fins: 1, D: "QB", G: "Q", S: circuit.Ground})
		c.AddFET(circuit.FET{Name: "ax2", Model: lib.NHVT, Fins: 2, DVt: 0.01, D: "BLB", G: "WL", S: "QB"})
		c.AddR("rload", "Q", circuit.Ground, 1e9)
		c.AddC("cq", "Q", circuit.Ground, 0.1e-15)
		c.SetIC("Q", 0)
		c.SetIC("QB", device.Vdd)
		return c
	}
	orig := build()
	var deck strings.Builder
	if err := orig.WriteNetlist(&deck, "round trip"); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(deck.String()), lib)
	if err != nil {
		t.Fatalf("re-parse failed: %v\ndeck:\n%s", err, deck.String())
	}
	if parsed.Title != "round trip" {
		t.Errorf("title %q", parsed.Title)
	}

	r1, err := orig.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := parsed.Circuit.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"Q", "QB", "VDD"} {
		// Node names are lowercased... the parser keeps case as written;
		// WriteNetlist wrote original case, but parseLine lowercases only
		// card heads, not node fields — verify both agree.
		v1, v2 := r1.V(n), r2.V(n)
		if math.Abs(v1-v2) > 1e-9 {
			t.Errorf("node %s: %g vs %g after round trip", n, v1, v2)
		}
	}
}

// TestNetlistRoundTripPWL checks PWL sources survive the round trip.
func TestNetlistRoundTripPWL(t *testing.T) {
	c := circuit.New()
	c.AddV("vin", "in", circuit.Ground, circuit.NewPWL(
		circuit.PWLPoint{T: 0, V: 0},
		circuit.PWLPoint{T: 1e-9, V: 0.45},
	))
	c.AddR("r1", "in", "out", 1e3)
	c.AddC("c1", "out", circuit.Ground, 1e-15)
	var deck strings.Builder
	if err := c.WriteNetlist(&deck, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(deck.String(), "PWL(0 0 1e-09 0.45)") {
		t.Fatalf("PWL card missing:\n%s", deck.String())
	}
	parsed, err := Parse(strings.NewReader(deck.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := parsed.Circuit.Transient(circuit.TranOpts{TStop: 2e-9, DT: 5e-12})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Final("out"); math.Abs(f-0.45) > 0.05 {
		t.Errorf("final out %g after round-tripped ramp", f)
	}
}
