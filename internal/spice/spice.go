// Package spice provides a SPICE-dialect netlist front end for the bundled
// circuit simulator: a parser for a compact subset of the classic deck
// format (FinFET/R/C/V/I cards, .ic, .op/.dc/.tran analyses, .print) and a
// runner that executes the analyses and prints tabular results.
//
// Supported cards (case-insensitive, '*' and ';' comments, '+' line
// continuation):
//
//	Mxxx  d g s model [fins=N] [dvt=V]    model ∈ {nlvt, nhvt, plvt, phvt}
//	Rxxx  a b value
//	Cxxx  a b value
//	Vxxx  a b DC value | PWL(t1 v1 t2 v2 ...)
//	Ixxx  a b DC value
//	.title any text
//	.ic v(node)=value ...
//	.op
//	.dc Vxxx start stop step
//	.tran dt tstop [uic]
//	.print node [node ...]
//	.end
//
// Values accept the usual SI suffixes (f p n u m k meg g, plus 'v'/'s'
// unit letters, e.g. 450m, 0.1p, 2meg).
package spice

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sramco/internal/circuit"
	"sramco/internal/device"
)

// Analysis is one simulation request from the deck.
type Analysis interface{ isAnalysis() }

// OpAnalysis requests a DC operating point (.op).
type OpAnalysis struct{}

func (OpAnalysis) isAnalysis() {}

// DCAnalysis requests a DC sweep of a voltage source (.dc).
type DCAnalysis struct {
	Source            string
	Start, Stop, Step float64
}

func (DCAnalysis) isAnalysis() {}

// TranAnalysis requests a transient run (.tran).
type TranAnalysis struct {
	DT, TStop float64
	UIC       bool
}

func (TranAnalysis) isAnalysis() {}

// Deck is a parsed netlist plus its analysis requests.
type Deck struct {
	Title    string
	Circuit  *circuit.Circuit
	Analyses []Analysis
	Prints   []string // nodes to report; empty means sources' nodes only
}

// ParseValue parses a SPICE number with optional SI suffix and unit letter.
func ParseValue(s string) (float64, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	if ls == "" {
		return 0, fmt.Errorf("spice: empty value")
	}
	// Strip trailing unit letters (v, a, s, f as in farad handled below —
	// note 'f' alone after digits is femto, "ff" would be femto-farad).
	suffixes := []struct {
		suf   string
		scale float64
	}{
		{"meg", 1e6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3},
		{"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
	}
	// Remove a trailing unit letter that is not itself a scale suffix.
	for _, unit := range []string{"v", "a", "s", "hz", "ohm"} {
		if len(ls) > len(unit) && strings.HasSuffix(ls, unit) {
			// Keep 'f' meaning femto: only strip the unit when what remains
			// still ends in a digit or a scale suffix.
			trimmed := ls[:len(ls)-len(unit)]
			if trimmed != "" && (isDigitEnd(trimmed) || hasScaleSuffix(trimmed)) {
				ls = trimmed
				break
			}
		}
	}
	for _, sx := range suffixes {
		if strings.HasSuffix(ls, sx.suf) {
			base := strings.TrimSuffix(ls, sx.suf)
			v, err := strconv.ParseFloat(base, 64)
			if err != nil {
				return 0, fmt.Errorf("spice: bad value %q", s)
			}
			return v * sx.scale, nil
		}
	}
	v, err := strconv.ParseFloat(ls, 64)
	if err != nil {
		return 0, fmt.Errorf("spice: bad value %q", s)
	}
	return v, nil
}

func isDigitEnd(s string) bool {
	c := s[len(s)-1]
	return c >= '0' && c <= '9' || c == '.'
}

func hasScaleSuffix(s string) bool {
	for _, sx := range []string{"meg", "t", "g", "k", "m", "u", "n", "p", "f"} {
		if strings.HasSuffix(s, sx) {
			return true
		}
	}
	return false
}

// Parse reads a netlist deck, building the circuit against the given device
// library (nil selects the default 7 nm library).
func Parse(r io.Reader, lib *device.Library) (*Deck, error) {
	if lib == nil {
		lib = device.Default7nm()
	}
	deck := &Deck{Circuit: circuit.New()}
	scanner := bufio.NewScanner(r)

	// Join continuation lines first.
	var lines []string
	for scanner.Scan() {
		raw := scanner.Text()
		if i := strings.IndexByte(raw, ';'); i >= 0 {
			raw = raw[:i]
		}
		line := strings.TrimRight(raw, " \t")
		if trimmed := strings.TrimSpace(line); trimmed == "" || strings.HasPrefix(trimmed, "*") {
			continue
		}
		if strings.HasPrefix(strings.TrimSpace(line), "+") && len(lines) > 0 {
			lines[len(lines)-1] += " " + strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "+"))
			continue
		}
		lines = append(lines, strings.TrimSpace(line))
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("spice: reading deck: %w", err)
	}

	for n, line := range lines {
		if err := deck.parseLine(line, lib); err != nil {
			return nil, fmt.Errorf("spice: card %d (%q): %w", n+1, line, err)
		}
	}
	return deck, nil
}

// node normalizes node names: gnd aliases to the simulator ground.
func node(s string) string {
	if strings.EqualFold(s, "gnd") {
		return circuit.Ground
	}
	return s
}

func (d *Deck) parseLine(line string, lib *device.Library) error {
	fields := strings.Fields(line)
	head := strings.ToLower(fields[0])
	switch {
	case head == ".end":
		return nil
	case head == ".title":
		d.Title = strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		return nil
	case head == ".op":
		d.Analyses = append(d.Analyses, OpAnalysis{})
		return nil
	case head == ".dc":
		if len(fields) != 5 {
			return fmt.Errorf("want .dc SRC start stop step")
		}
		start, err1 := ParseValue(fields[2])
		stop, err2 := ParseValue(fields[3])
		step, err3 := ParseValue(fields[4])
		if err1 != nil || err2 != nil || err3 != nil || step == 0 {
			return fmt.Errorf("bad .dc numbers")
		}
		d.Analyses = append(d.Analyses, DCAnalysis{Source: strings.ToLower(fields[1]), Start: start, Stop: stop, Step: step})
		return nil
	case head == ".tran":
		if len(fields) < 3 {
			return fmt.Errorf("want .tran dt tstop [uic]")
		}
		dt, err1 := ParseValue(fields[1])
		tstop, err2 := ParseValue(fields[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad .tran numbers")
		}
		uic := len(fields) > 3 && strings.EqualFold(fields[3], "uic")
		d.Analyses = append(d.Analyses, TranAnalysis{DT: dt, TStop: tstop, UIC: uic})
		return nil
	case head == ".print":
		for _, f := range fields[1:] {
			f = strings.TrimSuffix(f, ")")
			if lf := strings.ToLower(f); strings.HasPrefix(lf, "v(") {
				f = f[2:]
			}
			d.Prints = append(d.Prints, node(f))
		}
		return nil
	case head == ".ic":
		for _, f := range fields[1:] {
			eq := strings.IndexByte(f, '=')
			if eq < 0 || !strings.HasPrefix(strings.ToLower(f), "v(") {
				return fmt.Errorf("want .ic v(node)=value")
			}
			name := strings.TrimSuffix(f[2:eq], ")")
			v, err := ParseValue(f[eq+1:])
			if err != nil {
				return err
			}
			d.Circuit.SetIC(node(name), v)
		}
		return nil
	case strings.HasPrefix(head, "."):
		return fmt.Errorf("unknown control card %s", head)
	}

	name := strings.ToLower(fields[0])
	switch head[0] {
	case 'm':
		return d.parseFET(name, fields, lib)
	case 'r':
		if len(fields) != 4 {
			return fmt.Errorf("want Rxxx a b value")
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		d.Circuit.AddR(name, node(fields[1]), node(fields[2]), v)
		return nil
	case 'c':
		if len(fields) != 4 {
			return fmt.Errorf("want Cxxx a b value")
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		d.Circuit.AddC(name, node(fields[1]), node(fields[2]), v)
		return nil
	case 'v':
		w, err := parseSourceWave(fields[3:])
		if err != nil {
			return err
		}
		d.Circuit.AddV(name, node(fields[1]), node(fields[2]), w)
		return nil
	case 'i':
		w, err := parseSourceWave(fields[3:])
		if err != nil {
			return err
		}
		d.Circuit.AddI(name, node(fields[1]), node(fields[2]), w)
		return nil
	}
	return fmt.Errorf("unknown card type %q", fields[0])
}

func (d *Deck) parseFET(name string, fields []string, lib *device.Library) error {
	if len(fields) < 5 {
		return fmt.Errorf("want Mxxx d g s model [fins=N] [dvt=V]")
	}
	var model *device.Model
	switch strings.ToLower(fields[4]) {
	case "nlvt":
		model = lib.NLVT
	case "nhvt":
		model = lib.NHVT
	case "plvt":
		model = lib.PLVT
	case "phvt":
		model = lib.PHVT
	default:
		return fmt.Errorf("unknown model %q (want nlvt/nhvt/plvt/phvt)", fields[4])
	}
	fins := 1
	dvt := 0.0
	for _, f := range fields[5:] {
		lf := strings.ToLower(f)
		switch {
		case strings.HasPrefix(lf, "fins="):
			n, err := strconv.Atoi(lf[len("fins="):])
			if err != nil || n < 1 {
				return fmt.Errorf("bad fins in %q", f)
			}
			fins = n
		case strings.HasPrefix(lf, "dvt="):
			v, err := ParseValue(lf[len("dvt="):])
			if err != nil {
				return err
			}
			dvt = v
		default:
			return fmt.Errorf("unknown FET parameter %q", f)
		}
	}
	d.Circuit.AddFET(circuit.FET{
		Name: name, Model: model, Fins: fins, DVt: dvt,
		D: node(fields[1]), G: node(fields[2]), S: node(fields[3]),
	})
	return nil
}

// parseSourceWave parses "DC v" or "PWL(t v t v ...)".
func parseSourceWave(fields []string) (circuit.Waveform, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("missing source value")
	}
	joined := strings.ToLower(strings.Join(fields, " "))
	switch {
	case strings.HasPrefix(joined, "dc"):
		v, err := ParseValue(strings.TrimSpace(joined[2:]))
		if err != nil {
			return nil, err
		}
		return circuit.DC(v), nil
	case strings.HasPrefix(joined, "pwl"):
		inner := strings.TrimPrefix(joined, "pwl")
		inner = strings.TrimSpace(inner)
		inner = strings.TrimPrefix(inner, "(")
		inner = strings.TrimSuffix(inner, ")")
		parts := strings.FieldsFunc(inner, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
		if len(parts) < 2 || len(parts)%2 != 0 {
			return nil, fmt.Errorf("PWL needs an even number of values")
		}
		pts := make([]circuit.PWLPoint, 0, len(parts)/2)
		for i := 0; i < len(parts); i += 2 {
			t, err1 := ParseValue(parts[i])
			v, err2 := ParseValue(parts[i+1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad PWL pair %q %q", parts[i], parts[i+1])
			}
			pts = append(pts, circuit.PWLPoint{T: t, V: v})
		}
		return circuit.NewPWL(pts...), nil
	default:
		// Bare value means DC.
		v, err := ParseValue(fields[0])
		if err != nil {
			return nil, err
		}
		return circuit.DC(v), nil
	}
}

// Run executes every analysis in deck order, writing tabular results to w.
func (d *Deck) Run(w io.Writer) error {
	if len(d.Analyses) == 0 {
		return fmt.Errorf("spice: deck has no analyses (.op/.dc/.tran)")
	}
	for _, a := range d.Analyses {
		switch an := a.(type) {
		case OpAnalysis:
			res, err := d.Circuit.DCOperatingPoint()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "* operating point")
			for _, n := range d.Prints {
				fmt.Fprintf(w, "v(%s) = %.6g\n", n, res.V(n))
			}
		case DCAnalysis:
			var values []float64
			if an.Step > 0 {
				for v := an.Start; v <= an.Stop+an.Step*1e-9; v += an.Step {
					values = append(values, v)
				}
			} else {
				for v := an.Start; v >= an.Stop+an.Step*1e-9; v += an.Step {
					values = append(values, v)
				}
			}
			rs, err := d.Circuit.DCSweep(an.Source, values)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "* dc sweep of %s\n%-12s", an.Source, an.Source)
			for _, n := range d.Prints {
				fmt.Fprintf(w, " %-12s", "v("+n+")")
			}
			fmt.Fprintln(w)
			for i, r := range rs {
				fmt.Fprintf(w, "%-12.6g", values[i])
				for _, n := range d.Prints {
					fmt.Fprintf(w, " %-12.6g", r.V(n))
				}
				fmt.Fprintln(w)
			}
		case TranAnalysis:
			res, err := d.Circuit.Transient(circuit.TranOpts{TStop: an.TStop, DT: an.DT, UIC: an.UIC})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "* transient to %g\n%-14s", an.TStop, "t")
			for _, n := range d.Prints {
				fmt.Fprintf(w, " %-12s", "v("+n+")")
			}
			fmt.Fprintln(w)
			// Thin the output to at most ~200 printed rows.
			stride := len(res.Times)/200 + 1
			for i := 0; i < len(res.Times); i += stride {
				fmt.Fprintf(w, "%-14.6g", res.Times[i])
				for _, n := range d.Prints {
					fmt.Fprintf(w, " %-12.6g", res.V(n)[i])
				}
				fmt.Fprintln(w)
			}
		}
	}
	return nil
}
