// Package unit provides SI unit constants and human-readable formatting for
// the physical quantities that flow through sramco: voltages, currents,
// capacitances, times, energies and powers. All internal computation is in
// base SI units (V, A, F, s, J, W); this package only scales at the edges.
package unit

import (
	"fmt"
	"math"
)

// Scaling constants. Multiply to convert into base SI; divide to convert out.
const (
	Milli = 1e-3
	Micro = 1e-6
	Nano  = 1e-9
	Pico  = 1e-12
	Femto = 1e-15
	Atto  = 1e-18
)

// Convenience constants for common engineering units.
const (
	MV = Milli // millivolt in volts
	UA = Micro // microampere in amperes
	NA = Nano  // nanoampere in amperes
	FF = Femto // femtofarad in farads
	PS = Pico  // picosecond in seconds
	NS = Nano  // nanosecond in seconds
	FJ = Femto // femtojoule in joules
	AJ = Atto  // attojoule in joules
	NW = Nano  // nanowatt in watts
	UW = Micro // microwatt in watts
	UM = Micro // micrometre in metres
	NM = Nano  // nanometre in metres
)

type prefix struct {
	scale  float64
	symbol string
}

var prefixes = []prefix{
	{1e-18, "a"}, {1e-15, "f"}, {1e-12, "p"}, {1e-9, "n"},
	{1e-6, "µ"}, {1e-3, "m"}, {1, ""}, {1e3, "k"}, {1e6, "M"}, {1e9, "G"},
}

// Format renders v with an SI prefix and the given unit symbol, e.g.
// Format(3.2e-12, "s") == "3.20ps". Zero renders without a prefix.
func Format(v float64, symbol string) string {
	if v == 0 {
		return "0" + symbol
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprintf("%g%s", v, symbol)
	}
	a := math.Abs(v)
	best := prefixes[len(prefixes)-1]
	for _, p := range prefixes {
		if a < p.scale*1000 {
			best = p
			break
		}
	}
	return fmt.Sprintf("%.3g%s%s", v/best.scale, best.symbol, symbol)
}

// Volts, Amps, Farads, Seconds, Joules, Watts format a base-SI value with
// the conventional symbol.
func Volts(v float64) string   { return Format(v, "V") }
func Amps(v float64) string    { return Format(v, "A") }
func Farads(v float64) string  { return Format(v, "F") }
func Seconds(v float64) string { return Format(v, "s") }
func Joules(v float64) string  { return Format(v, "J") }
func Watts(v float64) string   { return Format(v, "W") }

// Bytes formats a memory capacity in bits as B/KB (binary, as in the paper:
// 1 KB = 8192 bits).
func Bytes(bits int) string {
	b := bits / 8
	switch {
	case b >= 1024 && b%1024 == 0:
		return fmt.Sprintf("%dKB", b/1024)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
