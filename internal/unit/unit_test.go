package unit

import (
	"math"
	"testing"
)

func TestFormat(t *testing.T) {
	cases := []struct {
		v      float64
		symbol string
		want   string
	}{
		{0, "V", "0V"},
		{0.45, "V", "450mV"},
		{3.2e-12, "s", "3.2ps"},
		{1.692e-9, "W", "1.69nW"},
		{9.5e-5, "A", "95µA"},
		{0.17e-15, "F", "170aF"},
		{2.5e3, "Hz", "2.5kHz"},
		{-0.1, "V", "-100mV"},
	}
	for _, c := range cases {
		if got := Format(c.v, c.symbol); got != c.want {
			t.Errorf("Format(%g, %q) = %q, want %q", c.v, c.symbol, got, c.want)
		}
	}
}

func TestFormatNonFinite(t *testing.T) {
	if got := Format(math.NaN(), "V"); got != "NaNV" {
		t.Errorf("NaN format = %q", got)
	}
	if got := Format(math.Inf(1), "V"); got != "+InfV" {
		t.Errorf("Inf format = %q", got)
	}
}

func TestNamedFormatters(t *testing.T) {
	if got := Seconds(64e-12); got != "64ps" {
		t.Errorf("Seconds = %q", got)
	}
	if got := Watts(0.082e-9); got != "82pW" {
		t.Errorf("Watts = %q", got)
	}
	if got := Volts(0.55); got != "550mV" {
		t.Errorf("Volts = %q", got)
	}
	if got := Amps(1e-9); got != "1nA" {
		t.Errorf("Amps = %q", got)
	}
	if got := Farads(3e-15); got != "3fF" {
		t.Errorf("Farads = %q", got)
	}
	if got := Joules(5e-18); got != "5aJ" {
		t.Errorf("Joules = %q", got)
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		bits int
		want string
	}{
		{1024, "128B"},
		{2048, "256B"},
		{8192, "1KB"},
		{32768, "4KB"},
		{131072, "16KB"},
	}
	for _, c := range cases {
		if got := Bytes(c.bits); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.bits, got, c.want)
		}
	}
}
