// Package cliutil is the shared command-line plumbing of the sramco
// commands and examples: a common fatal-exit path that runs registered
// cleanups before exiting non-zero, and the observability flag bundle
// (-trace, -debug, -metrics, -progress, -cpuprofile, -memprofile) wired to
// the internal/obs sinks and registry.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"sramco/internal/obs"
)

var (
	name     = "sramco"
	cleanups []func()
)

// SetName sets the prefix used by Fatalf and warnings. Call it first in
// main, before any other cliutil use.
func SetName(n string) { name = n }

// OnExit registers fn to run before the process exits through Fatalf or, in
// the success path, through Shutdown. Cleanups run last-registered first.
func OnExit(fn func()) { cleanups = append(cleanups, fn) }

// Shutdown runs the registered cleanups once. Call it at the end of a
// successful main; Fatalf exits without unwinding defers, so a plain defer
// of the cleanup work would be skipped on the error path.
func Shutdown() {
	fns := cleanups
	cleanups = nil
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}

// Fatalf runs the registered cleanups (flushing trace files, profiles and
// metric dumps), prints the formatted message to stderr prefixed with the
// command name, and exits with status 1.
func Fatalf(format string, args ...any) {
	Shutdown()
	fmt.Fprintf(os.Stderr, "%s: %s\n", name, fmt.Sprintf(format, args...))
	os.Exit(1)
}

// warnf reports a non-fatal problem on the exit path.
func warnf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", name, fmt.Sprintf(format, args...))
}

// Obs is the observability flag bundle shared by the sramco commands.
type Obs struct {
	TracePath  string // -trace: JSONL span/point trace file
	Debug      bool   // -debug: log spans and points to stderr
	Metrics    bool   // -metrics: dump the registry as JSON on exit
	Progress   bool   // -progress: live stderr ticker
	CPUProfile string // -cpuprofile: pprof CPU profile file
	MemProfile string // -memprofile: pprof heap profile file, written on exit
}

// ObsFlags registers the observability flags on the default flag set.
// Call before flag.Parse, then Start after.
func ObsFlags() *Obs {
	o := &Obs{}
	flag.StringVar(&o.TracePath, "trace", "", "write a JSON-lines trace of spans and points to `file`")
	flag.BoolVar(&o.Debug, "debug", false, "log spans and points to stderr as they happen")
	flag.BoolVar(&o.Metrics, "metrics", false, "dump the metrics registry as JSON to stderr on exit")
	flag.BoolVar(&o.Progress, "progress", false, "show a live progress line on stderr")
	flag.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	flag.StringVar(&o.MemProfile, "memprofile", "", "write a heap profile to `file` on exit")
	return o
}

// Start installs the sinks and profilers the parsed flags request and
// registers the matching teardown with OnExit, so both Shutdown and Fatalf
// flush them.
func (o *Obs) Start() error {
	var sinks obs.MultiSink
	if o.TracePath != "" {
		f, err := os.Create(o.TracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		sinks = append(sinks, obs.NewJSONLSink(f))
		OnExit(func() {
			if err := f.Close(); err != nil {
				warnf("-trace: %v", err)
			}
		})
	}
	if o.Debug {
		sinks = append(sinks, obs.NewTextSink(os.Stderr))
	}
	if len(sinks) > 0 {
		sink := obs.Sink(sinks)
		if len(sinks) == 1 {
			sink = sinks[0]
		}
		obs.SetSink(sink)
		OnExit(func() { obs.SetSink(nil) })
	}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		OnExit(func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if o.MemProfile != "" {
		path := o.MemProfile
		OnExit(func() {
			f, err := os.Create(path)
			if err != nil {
				warnf("-memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				warnf("-memprofile: %v", err)
			}
		})
	}
	if o.Metrics {
		OnExit(func() {
			if err := obs.Default().Snapshot().WriteJSON(os.Stderr); err != nil {
				warnf("-metrics: %v", err)
			}
		})
	}
	return nil
}

// StartProgress starts the live stderr ticker when -progress was given and
// returns its stop function (a no-op func otherwise), so callers can
// unconditionally defer or call it.
func (o *Obs) StartProgress(render func() string) func() {
	if !o.Progress {
		return func() {}
	}
	return obs.StartProgress(os.Stderr, 250*time.Millisecond, render).Stop
}
