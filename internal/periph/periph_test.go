package periph

import (
	"math"
	"sync"
	"testing"

	"sramco/internal/device"
	"sramco/internal/wire"
)

var (
	techOnce sync.Once
	techVal  *Tech
	techErr  error
)

func tech(t *testing.T) *Tech {
	t.Helper()
	techOnce.Do(func() {
		techVal, techErr = Characterize(device.Default7nm(), CharacterizeOpts{})
	})
	if techErr != nil {
		t.Fatalf("Characterize: %v", techErr)
	}
	return techVal
}

func TestCharacterizeTau(t *testing.T) {
	tc := tech(t)
	// A 7 nm FinFET inverter at 450 mV: tau in the low picoseconds.
	if tc.Tau < 0.05e-12 || tc.Tau > 10e-12 {
		t.Errorf("tau = %g s, want 0.05-10 ps", tc.Tau)
	}
	if tc.PInv < 0 || tc.PInv > 6 {
		t.Errorf("inverter parasitic = %g, want 0-6 tau units", tc.PInv)
	}
}

func TestCharacterizeSenseAmp(t *testing.T) {
	tc := tech(t)
	if tc.SADelay <= 0 || tc.SADelay > 100e-12 {
		t.Errorf("sense-amp delay = %g, want positive and < 100 ps", tc.SADelay)
	}
	if tc.SAEnergy <= 0 || tc.SAEnergy > 1e-15 {
		t.Errorf("sense-amp energy = %g, want positive sub-fJ", tc.SAEnergy)
	}
}

func TestCharacterizeNilLibrary(t *testing.T) {
	if _, err := Characterize(nil, CharacterizeOpts{}); err == nil {
		t.Fatal("expected error for nil library")
	}
}

func TestDecoderDelayGrowsWithWidth(t *testing.T) {
	tc := tech(t)
	prev := DecoderResult{}
	for bits := 0; bits <= 10; bits++ {
		r := tc.Decoder(bits, float64(int(1)<<bits)*wire.CHeight())
		if r.Delay < prev.Delay {
			t.Errorf("decoder delay shrank at %d bits: %g after %g", bits, r.Delay, prev.Delay)
		}
		if bits > 0 && r.Energy <= 0 {
			t.Errorf("decoder energy at %d bits = %g", bits, r.Energy)
		}
		prev = r
	}
}

func TestDecoderZeroBits(t *testing.T) {
	tc := tech(t)
	r := tc.Decoder(0, 0)
	if r.Delay <= 0 || r.Energy <= 0 {
		t.Errorf("0-bit decoder should still cost a buffer: %+v", r)
	}
}

func TestDecoderDelayMagnitude(t *testing.T) {
	tc := tech(t)
	// A 9-bit row decoder at this node should take a handful of FO4s:
	// between 2 and 40 tau·(4+p) units.
	fo4 := tc.Tau * (4 + tc.PInv)
	r := tc.Decoder(9, 512*wire.CHeight())
	if r.Delay < 2*fo4 || r.Delay > 40*fo4 {
		t.Errorf("9-bit decoder delay = %g (%.1f FO4), want 2-40 FO4", r.Delay, r.Delay/fo4)
	}
}

func TestRowAndColumnDecoder(t *testing.T) {
	tc := tech(t)
	g := wire.Geometry{NR: 256, NC: 128, W: 64, Npre: 8, Nwr: 2}
	row := tc.RowDecoder(g)
	if row.Delay <= 0 {
		t.Error("row decoder delay must be positive")
	}
	col := tc.ColumnDecoder(g)
	if col.Delay <= 0 || col.Energy <= 0 {
		t.Error("muxed column decoder must have cost")
	}
	// Unmuxed: column decoder vanishes (Table 3).
	g2 := wire.Geometry{NR: 256, NC: 64, W: 64, Npre: 8, Nwr: 2}
	col2 := tc.ColumnDecoder(g2)
	if col2.Delay != 0 || col2.Energy != 0 {
		t.Errorf("unmuxed column decoder should cost nothing: %+v", col2)
	}
	// The 1-of-512 row decoder must be slower than the 1-of-2 word decoder.
	if colBig := tc.Decoder(1, 128*wire.CWidth()); row.Delay <= colBig.Delay {
		t.Errorf("9-bit decoder (%g) should be slower than 1-bit (%g)", row.Delay, colBig.Delay)
	}
}

func TestDriverScalesWithFins(t *testing.T) {
	tc := tech(t)
	d27 := tc.Driver(WLDriverFins)
	d20 := tc.Driver(RailDriverFins)
	if d27.Delay <= 0 || d27.Energy <= 0 {
		t.Fatalf("driver result %+v", d27)
	}
	if d27.Delay <= d20.Delay {
		t.Errorf("27-fin driver (%g) should be slower than 20-fin (%g)", d27.Delay, d20.Delay)
	}
	if d27.Energy <= d20.Energy {
		t.Errorf("27-fin driver energy (%g) should exceed 20-fin (%g)", d27.Energy, d20.Energy)
	}
	// 27 fins over 3 scaling stages is exactly k=3 per stage.
	wantDelay := 3 * tc.Tau * (3 + tc.PInv)
	if math.Abs(d27.Delay-wantDelay)/wantDelay > 1e-9 {
		t.Errorf("27-fin driver delay = %g, want %g", d27.Delay, wantDelay)
	}
}

func TestTable2Currents(t *testing.T) {
	tc := tech(t)
	if tc.IONPfet() != device.Default7nm().PLVT.ION() {
		t.Error("IONPfet mismatch")
	}
	if tg := tc.IONTG(); tg <= tc.IONPfet() {
		t.Errorf("TG current (%g) must exceed single PFET (%g)", tg, tc.IONPfet())
	}
	// Rail driver currents grow with their rail voltage.
	if !(tc.ICVDD(0.64) > tc.ICVDD(0.55)) {
		t.Error("ICVDD must grow with VDDC")
	}
	if !(tc.ICVSS(-0.24) > tc.ICVSS(0)) {
		t.Error("ICVSS must grow with |VSSC|")
	}
	if !(tc.IWL(0.54) > tc.IWL(0.45)) {
		t.Error("IWL must grow with VWL")
	}
	for _, v := range []float64{tc.ICVDD(0.55), tc.ICVSS(-0.1), tc.IWL(0.49)} {
		if v <= 0 || v > 1e-3 {
			t.Errorf("unit current %g out of physical range", v)
		}
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	tc := tech(t)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative decoder bits", func() { tc.Decoder(-1, 0) })
	mustPanic("zero driver fins", func() { tc.Driver(0) })
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 64: 6, 512: 9, 1024: 10}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}
