package periph

import (
	"testing"

	"sramco/internal/circuit"
	"sramco/internal/device"
)

// TestLogicalEffortMatchesSimulatedNAND cross-checks the logical-effort
// constants against the circuit simulator, per the paper's "derived
// analytically and verified by SPICE simulations" methodology: a gate-level
// NAND2 driving four unit loads must be within 2.5× of the logical-effort
// prediction τ·(g·h + p).
func TestLogicalEffortMatchesSimulatedNAND(t *testing.T) {
	tc := tech(t)
	lib := device.Default7nm()
	const h = 4.0

	ckt := circuit.New()
	ckt.AddV("vdd", "VDD", circuit.Ground, circuit.DC(tc.Vdd))
	// Input A switches; input B held high so the series NFET stack conducts.
	ckt.AddV("va", "a", circuit.Ground, circuit.Step(0, tc.Vdd, 20e-12, 1e-12))
	ckt.AddV("vb", "b", circuit.Ground, circuit.DC(tc.Vdd))
	// NAND2: two parallel PFETs, two series NFETs (stack node "mid").
	ckt.AddFET(circuit.FET{Name: "mpa", Model: lib.PLVT, Fins: 1, D: "out", G: "a", S: "VDD"})
	ckt.AddFET(circuit.FET{Name: "mpb", Model: lib.PLVT, Fins: 1, D: "out", G: "b", S: "VDD"})
	ckt.AddFET(circuit.FET{Name: "mna", Model: lib.NLVT, Fins: 1, D: "out", G: "a", S: "mid"})
	ckt.AddFET(circuit.FET{Name: "mnb", Model: lib.NLVT, Fins: 1, D: "mid", G: "b", S: circuit.Ground})
	cUnit := lib.NLVT.CgFin + lib.PLVT.CgFin
	ckt.AddC("cl", "out", circuit.Ground, h*cUnit)
	ckt.AddC("cp", "out", circuit.Ground, 2*(lib.NLVT.CdFin+lib.PLVT.CdFin))

	res, err := ckt.Transient(circuit.TranOpts{TStop: 200e-12, DT: 0.1e-12})
	if err != nil {
		t.Fatal(err)
	}
	half := tc.Vdd / 2
	tIn, err := res.CrossTime("a", half, circuit.RisingEdge, 0)
	if err != nil {
		t.Fatal(err)
	}
	tOut, err := res.CrossTime("out", half, circuit.FallingEdge, tIn)
	if err != nil {
		t.Fatal(err)
	}
	simulated := tOut - tIn

	predicted := tc.Tau * (nandEffort(2)*h + nandParasitic(2))
	ratio := simulated / predicted
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("NAND2 delay: simulated %g vs logical-effort %g (ratio %.2f, want 0.4-2.5)",
			simulated, predicted, ratio)
	}
}

// TestDriverChainMatchesSimulation cross-checks the superbuffer model: a
// simulated 1→3→9 inverter chain driving a 27-fin gate load must be within
// 2.5× of Driver(27).Delay (the model of the first three stages).
func TestDriverChainMatchesSimulation(t *testing.T) {
	tc := tech(t)
	lib := device.Default7nm()

	ckt := circuit.New()
	ckt.AddV("vdd", "VDD", circuit.Ground, circuit.DC(tc.Vdd))
	ckt.AddV("vin", "s0", circuit.Ground, circuit.Step(0, tc.Vdd, 20e-12, 1e-12))
	cg := lib.NLVT.CgFin + lib.PLVT.CgFin
	cd := lib.NLVT.CdFin + lib.PLVT.CdFin
	// The simulator's FETs carry no intrinsic capacitance, so each node
	// gets its explicit loading: the driving stage's drains plus the next
	// stage's gates (exactly what the analytical model charges).
	stage := func(fins, nextFins int, in, out string) {
		ckt.AddFET(circuit.FET{Name: in + "p", Model: lib.PLVT, Fins: fins, D: out, G: in, S: "VDD"})
		ckt.AddFET(circuit.FET{Name: in + "n", Model: lib.NLVT, Fins: fins, D: out, G: in, S: circuit.Ground})
		ckt.AddC("c"+out, out, circuit.Ground, float64(fins)*cd+float64(nextFins)*cg)
	}
	stage(1, 3, "s0", "s1")
	stage(3, 9, "s1", "s2")
	stage(9, 27, "s2", "s3")

	res, err := ckt.Transient(circuit.TranOpts{TStop: 300e-12, DT: 0.1e-12})
	if err != nil {
		t.Fatal(err)
	}
	half := tc.Vdd / 2
	tIn, err := res.CrossTime("s0", half, circuit.RisingEdge, 0)
	if err != nil {
		t.Fatal(err)
	}
	tOut, err := res.CrossTime("s3", half, circuit.FallingEdge, tIn)
	if err != nil {
		t.Fatal(err)
	}
	simulated := tOut - tIn
	predicted := tc.Driver(WLDriverFins).Delay
	ratio := simulated / predicted
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("driver chain: simulated %g vs model %g (ratio %.2f)", simulated, predicted, ratio)
	}
}
