// Package periph models the SRAM array's peripheral circuits (paper Fig. 6):
// row/column decoders, wordline superbuffer drivers, precharger, write
// buffer, sense amplifier, and the assist-rail multiplexers/drivers.
//
// Delay models follow the paper's methodology: the decoder and driver chains
// are derived analytically (logical effort) from a base inverter time
// constant that is *characterized with the bundled circuit simulator*, and
// the sense amplifier is characterized directly by transient simulation —
// "derived analytically and verified by SPICE simulations" (§4).
//
// All peripheral devices are LVT (§2), regardless of the cell flavor.
package periph

import (
	"fmt"
	"math"

	"sramco/internal/circuit"
	"sramco/internal/device"
	"sramco/internal/wire"
)

// Fixed driver fin counts from the paper.
const (
	RailDriverFins = 20 // CVDD/CVSS rail drivers (sized for n_c = 1024)
	WLDriverFins   = 27 // last stage of the WL/COL superbuffer
	DriverStages   = 4  // inverter stages per superbuffer ("four inverter stages")
)

// Logical-effort constants: NAND-k logical effort (k+2)/3 and parasitic
// delay ≈ k in inverter units.
func nandEffort(k int) float64    { return float64(k+2) / 3 }
func nandParasitic(k int) float64 { return float64(k) }

// Tech is a characterized peripheral technology: the LVT base inverter time
// constant plus the device library and supply it was characterized at.
type Tech struct {
	Lib *device.Library
	Vdd float64

	Tau  float64 // inverter delay per unit electrical effort (s)
	PInv float64 // inverter parasitic delay, in Tau units

	SADelay  float64 // sense amplifier resolution delay at ΔVs (s)
	SAEnergy float64 // sense amplifier switching energy per operation (J)
}

// CharacterizeOpts configures technology characterization.
type CharacterizeOpts struct {
	Vdd    float64 // supply; defaults to device.Vdd
	DeltaV float64 // sense voltage ΔVs; defaults to 0.120 V (paper §5)
}

// Characterize measures the base inverter time constant and the sense
// amplifier with the circuit simulator.
func Characterize(lib *device.Library, opts CharacterizeOpts) (*Tech, error) {
	if lib == nil {
		return nil, fmt.Errorf("periph: nil library")
	}
	vdd := opts.Vdd
	if vdd == 0 {
		vdd = device.Vdd
	}
	dv := opts.DeltaV
	if dv == 0 {
		dv = 0.120
	}
	t := &Tech{Lib: lib, Vdd: vdd}

	// Inverter characterization: measure the 50%-to-50% delay of a 1-fin LVT
	// inverter driving h unit gate loads, for h = 1 and h = 4; solve
	// d = Tau·(h + PInv).
	d1, err := t.inverterDelay(1)
	if err != nil {
		return nil, fmt.Errorf("periph: FO1 characterization: %w", err)
	}
	d4, err := t.inverterDelay(4)
	if err != nil {
		return nil, fmt.Errorf("periph: FO4 characterization: %w", err)
	}
	t.Tau = (d4 - d1) / 3
	if t.Tau <= 0 {
		return nil, fmt.Errorf("periph: non-positive tau (d1=%g, d4=%g)", d1, d4)
	}
	t.PInv = d1/t.Tau - 1
	if t.PInv < 0 {
		t.PInv = 0
	}

	if err := t.characterizeSenseAmp(dv); err != nil {
		return nil, err
	}
	return t, nil
}

// unitInputCap returns the input capacitance of a 1-fin inverter.
func (t *Tech) unitInputCap() float64 {
	return t.Lib.NLVT.CgFin + t.Lib.PLVT.CgFin
}

// inverterDelay simulates a 1-fin LVT inverter driving h unit loads and
// returns the average of the rising and falling 50%-to-50% delays.
func (t *Tech) inverterDelay(h float64) (float64, error) {
	const (
		tEdge = 20e-12
		rise  = 1e-12
		tStop = 220e-12
		dt    = 0.1e-12
	)
	ckt := circuit.New()
	ckt.AddV("vdd", "VDD", circuit.Ground, circuit.DC(t.Vdd))
	ckt.AddV("vin", "in", circuit.Ground, circuit.NewPWL(
		circuit.PWLPoint{T: 0, V: 0},
		circuit.PWLPoint{T: tEdge, V: 0},
		circuit.PWLPoint{T: tEdge + rise, V: t.Vdd},
		circuit.PWLPoint{T: tStop / 2, V: t.Vdd},
		circuit.PWLPoint{T: tStop/2 + rise, V: 0},
	))
	ckt.AddFET(circuit.FET{Name: "mp", Model: t.Lib.PLVT, Fins: 1, D: "out", G: "in", S: "VDD"})
	ckt.AddFET(circuit.FET{Name: "mn", Model: t.Lib.NLVT, Fins: 1, D: "out", G: "in", S: circuit.Ground})
	// Load: h unit gate caps plus the inverter's own drain parasitics.
	ckt.AddC("cload", "out", circuit.Ground, h*t.unitInputCap())
	ckt.AddC("cpar", "out", circuit.Ground, t.Lib.NLVT.CdFin+t.Lib.PLVT.CdFin)
	res, err := ckt.Transient(circuit.TranOpts{TStop: tStop, DT: dt})
	if err != nil {
		return 0, err
	}
	half := t.Vdd / 2
	inRise, err := res.CrossTime("in", half, circuit.RisingEdge, 0)
	if err != nil {
		return 0, err
	}
	outFall, err := res.CrossTime("out", half, circuit.FallingEdge, inRise)
	if err != nil {
		return 0, err
	}
	inFall, err := res.CrossTime("in", half, circuit.FallingEdge, outFall)
	if err != nil {
		return 0, err
	}
	outRise, err := res.CrossTime("out", half, circuit.RisingEdge, inFall)
	if err != nil {
		return 0, err
	}
	return ((outFall - inRise) + (outRise - inFall)) / 2, nil
}

// characterizeSenseAmp simulates a latch-type sense amplifier: a
// cross-coupled inverter pair (2-fin devices) whose internal nodes start at
// the precharge level split by ΔVs, enabled through a 2-fin footer. The
// delay is the time for the low-going node to fall below 10% of Vdd.
func (t *Tech) characterizeSenseAmp(deltaV float64) error {
	const (
		tEn   = 2e-12
		rise  = 1e-12
		tStop = 300e-12
		dt    = 0.1e-12
	)
	// Internal node loading: local drains plus output mux/buffer gates.
	cNode := 2*(t.Lib.NLVT.CdFin+t.Lib.PLVT.CdFin) + 4*t.unitInputCap()

	ckt := circuit.New()
	ckt.AddV("vdd", "VDD", circuit.Ground, circuit.DC(t.Vdd))
	ckt.AddV("ven", "en", circuit.Ground, circuit.Step(0, t.Vdd, tEn, rise))
	ckt.AddFET(circuit.FET{Name: "mpa", Model: t.Lib.PLVT, Fins: 2, D: "sa", G: "sb", S: "VDD"})
	ckt.AddFET(circuit.FET{Name: "mna", Model: t.Lib.NLVT, Fins: 2, D: "sa", G: "sb", S: "foot"})
	ckt.AddFET(circuit.FET{Name: "mpb", Model: t.Lib.PLVT, Fins: 2, D: "sb", G: "sa", S: "VDD"})
	ckt.AddFET(circuit.FET{Name: "mnb", Model: t.Lib.NLVT, Fins: 2, D: "sb", G: "sa", S: "foot"})
	ckt.AddFET(circuit.FET{Name: "mfoot", Model: t.Lib.NLVT, Fins: 2, D: "foot", G: "en", S: circuit.Ground})
	ckt.AddC("ca", "sa", circuit.Ground, cNode)
	ckt.AddC("cb", "sb", circuit.Ground, cNode)
	ckt.AddC("cf", "foot", circuit.Ground, t.Lib.NLVT.CdFin*4)
	ckt.SetIC("sa", t.Vdd-deltaV) // the side sensing the discharged bitline
	ckt.SetIC("sb", t.Vdd)
	ckt.SetIC("foot", t.Vdd-deltaV)
	res, err := ckt.Transient(circuit.TranOpts{TStop: tStop, DT: dt, UIC: true})
	if err != nil {
		return fmt.Errorf("periph: sense-amp transient: %w", err)
	}
	tEnHalf, err := res.CrossTime("en", t.Vdd/2, circuit.RisingEdge, 0)
	if err != nil {
		return fmt.Errorf("periph: sense-amp enable edge: %w", err)
	}
	tLow, err := res.CrossTime("sa", 0.1*t.Vdd, circuit.FallingEdge, tEnHalf)
	if err != nil {
		return fmt.Errorf("periph: sense amp did not resolve: %w", err)
	}
	if hi := res.Final("sb"); hi < 0.9*t.Vdd {
		return fmt.Errorf("periph: sense amp resolved wrong: sb=%g", hi)
	}
	t.SADelay = tLow - tEnHalf
	// Energy: one internal node plus the foot swing ~ full rail.
	t.SAEnergy = (cNode + 4*t.Lib.NLVT.CdFin) * t.Vdd * t.Vdd
	return nil
}

// DecoderResult carries the delay and switching energy of one decoder.
type DecoderResult struct {
	Delay  float64 // s
	Energy float64 // J per access
}

// Decoder models a predecoded row/column decoder selecting one of 2^nBits
// outputs, each loading the decoder with the first stage of a superbuffer.
// lineWireCap is the wire capacitance of one predecode line spanning the
// decoded dimension (n_r cell heights for the row decoder, n_c cell widths
// for the column decoder).
//
// Delay follows the logical-effort method on the critical path
// (address buffer → NAND2 predecoder → inverter → final NAND), with the
// number of stages chosen for stage effort ≈ 4; energy counts the switched
// predecode lines, the selected final gate, and the driven load.
func (t *Tech) Decoder(nBits int, lineWireCap float64) DecoderResult {
	if nBits < 0 {
		panic(fmt.Sprintf("periph: negative decoder width %d", nBits))
	}
	cUnit := t.unitInputCap()
	cLoad := cUnit // superbuffer first stage (1 fin)
	if nBits == 0 {
		// Single output: just an enable buffer.
		return DecoderResult{
			Delay:  t.Tau * (cLoad/cUnit + t.PInv),
			Energy: (cLoad + t.Lib.NLVT.CdFin + t.Lib.PLVT.CdFin) * t.Vdd * t.Vdd,
		}
	}
	outputs := 1 << nBits
	groups := (nBits + 1) / 2 // predecode in pairs; an odd bit forms its own group
	finalInputs := groups
	if finalInputs < 2 {
		finalInputs = 2
	}

	// Path logical effort: NAND2 predecode × final NAND-k.
	g := nandEffort(2) * nandEffort(finalInputs)
	// Branching: each predecode line fans out to outputs/4 final gates (a
	// pair group has 4 lines); the line wire adds to the electrical effort
	// through its capacitance at the predecode stage.
	branch := math.Max(1, float64(outputs)/4)
	cFinalGateIn := cUnit * nandEffort(finalInputs)
	cLine := branch*cFinalGateIn + lineWireCap
	// Electrical effort referenced to a unit input, ending at the load.
	h := (cLine / cUnit) * (cLoad / cFinalGateIn)
	f := g * h
	if f < 1 {
		f = 1
	}
	// Stage count: the two NAND stages plus enough inverters for stage
	// effort ≈ 4.
	n := int(math.Round(math.Log(f) / math.Log(4)))
	if n < 2 {
		n = 2
	}
	parasitic := nandParasitic(2) + nandParasitic(finalInputs) + float64(n-2)*t.PInv
	delay := t.Tau * (float64(n)*math.Pow(f, 1/float64(n)) + parasitic)

	// Energy: per access, one predecode line per group toggles (plus its
	// wire) with a 0.5 charging-activity factor, one final gate switches,
	// and the load is driven.
	eLines := 0.5 * float64(groups) * cLine * t.Vdd * t.Vdd
	eFinal := (cFinalGateIn*float64(finalInputs) + cLoad + t.Lib.NLVT.CdFin + t.Lib.PLVT.CdFin) * t.Vdd * t.Vdd
	return DecoderResult{Delay: delay, Energy: eLines + eFinal}
}

// RowDecoder evaluates the row decoder of an array geometry: log2(n_r)
// inputs with predecode lines spanning the array height.
func (t *Tech) RowDecoder(g wire.Geometry) DecoderResult {
	return t.Decoder(log2(g.NR), float64(g.NR)*wire.CHeight())
}

// ColumnDecoder evaluates the column decoder: log2(n_c/W) inputs with lines
// spanning the array width. For an unmuxed array it returns zeros (Table 3:
// all column-mux components vanish when n_c ≤ W).
func (t *Tech) ColumnDecoder(g wire.Geometry) DecoderResult {
	if !g.Muxed() {
		return DecoderResult{}
	}
	return t.Decoder(log2(g.NC/g.W), float64(g.NC)*wire.CWidth())
}

// Driver models the 4-stage superbuffer that drives the WL, COL, CVDD and
// CVSS rails. The returned values cover the first three stages only; the
// final stage's interaction with its rail is modeled by the Table-2
// interconnect equations (whose capacitances already include the final
// stage's drain, and whose currents are the final stage's drive).
type DriverResult struct {
	Delay  float64 // s, first DriverStages-1 stages
	Energy float64 // J, first DriverStages-1 stages plus final-stage gate
}

// Driver evaluates a superbuffer whose final stage has finalFins fins.
func (t *Tech) Driver(finalFins int) DriverResult {
	if finalFins < 1 {
		panic(fmt.Sprintf("periph: driver final stage %d fins", finalFins))
	}
	k := math.Pow(float64(finalFins), 1.0/float64(DriverStages-1))
	delay := float64(DriverStages-1) * t.Tau * (k + t.PInv)
	cd := t.Lib.NLVT.CdFin + t.Lib.PLVT.CdFin
	cg := t.unitInputCap()
	energy := 0.0
	for i := 1; i < DriverStages; i++ {
		stageFins := math.Pow(k, float64(i-1))
		nextFins := math.Pow(k, float64(i))
		energy += (stageFins*cd + nextFins*cg) * t.Vdd * t.Vdd
	}
	return DriverResult{Delay: delay, Energy: energy}
}

// Currents of Table 2 — all per the paper's coefficient fits, with the unit
// currents taken from the LVT peripheral devices.

// IONPfet returns the on current of a single-fin LVT PFET at nominal bias.
func (t *Tech) IONPfet() float64 { return t.Lib.PLVT.ION() }

// IONTG returns the on current of a single-fin transmission gate (NFET and
// PFET in parallel at full rail).
func (t *Tech) IONTG() float64 { return t.Lib.NLVT.ION() + t.Lib.PLVT.ION() }

// ICVDD returns the unit current of the CVDD rail driver PFET operating at
// the boosted rail vddc.
func (t *Tech) ICVDD(vddc float64) float64 {
	return math.Abs(t.Lib.PLVT.Ids(-vddc, -vddc))
}

// ICVSS returns the unit current of the CVSS rail driver NFET discharging
// the rail from Vdd to vssc (gate overdriven by the full Vdd−vssc swing).
func (t *Tech) ICVSS(vssc float64) float64 {
	return t.Lib.NLVT.Ids(t.Vdd-vssc, t.Vdd-vssc)
}

// IWL returns the unit current of the WL driver's final-stage PFET sourced
// at the overdriven rail vwl.
func (t *Tech) IWL(vwl float64) float64 {
	return math.Abs(t.Lib.PLVT.Ids(-vwl, -vwl))
}

func log2(n int) int {
	b := 0
	for v := n; v > 1; v >>= 1 {
		b++
	}
	return b
}
