package assist

import (
	"testing"

	"sramco/internal/device"
)

func TestCatalogue(t *testing.T) {
	if len(All()) != int(NumTechniques) {
		t.Fatalf("All() returned %d techniques, want %d", len(All()), NumTechniques)
	}
	wantKind := map[Technique]Kind{
		WLUnderdrive: Read, VddBoost: Read, NegativeGnd: Read,
		WLOverdrive: Write, NegativeBL: Write,
	}
	for tech, k := range wantKind {
		if tech.Kind() != k {
			t.Errorf("%v.Kind() = %v, want %v", tech, tech.Kind(), k)
		}
	}
	adopted := map[Technique]bool{VddBoost: true, NegativeGnd: true, WLOverdrive: true}
	for _, tech := range All() {
		if tech.Adopted() != adopted[tech] {
			t.Errorf("%v.Adopted() = %v, want %v", tech, tech.Adopted(), adopted[tech])
		}
	}
	if len(Adopted()) != 3 {
		t.Errorf("Adopted() = %v, want 3 techniques", Adopted())
	}
	for _, tech := range All() {
		if tech.String() == "" {
			t.Errorf("technique %d has empty name", tech)
		}
	}
}

func TestApplyRead(t *testing.T) {
	vdd := device.Vdd
	b := VddBoost.ApplyRead(vdd, 0.55)
	if b.VDDC != 0.55 || b.VSSC != 0 || b.VWL != vdd || b.Vdd != vdd {
		t.Errorf("VddBoost bias = %+v", b)
	}
	b = NegativeGnd.ApplyRead(vdd, -0.24)
	if b.VSSC != -0.24 || b.VDDC != vdd {
		t.Errorf("NegativeGnd bias = %+v", b)
	}
	b = WLUnderdrive.ApplyRead(vdd, 0.30)
	if b.VWL != 0.30 || b.VDDC != vdd {
		t.Errorf("WLUnderdrive bias = %+v", b)
	}
}

func TestApplyWrite(t *testing.T) {
	vdd := device.Vdd
	b := WLOverdrive.ApplyWrite(vdd, 0.54)
	if b.VWL != 0.54 || b.VBL != 0 {
		t.Errorf("WLOverdrive bias = %+v", b)
	}
	b = NegativeBL.ApplyWrite(vdd, -0.10)
	if b.VBL != -0.10 || b.VWL != vdd {
		t.Errorf("NegativeBL bias = %+v", b)
	}
}

func TestApplyWrongKindPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("read tech as write", func() { VddBoost.ApplyWrite(0.45, 0.55) })
	mustPanic("write tech as read", func() { WLOverdrive.ApplyRead(0.45, 0.54) })
	mustPanic("invalid kind", func() { Technique(99).Kind() })
	mustPanic("invalid adopted", func() { Technique(-1).Adopted() })
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("Kind.String mismatch")
	}
	if Technique(42).String() == "" {
		t.Error("invalid technique String should still describe itself")
	}
}
