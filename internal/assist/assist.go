// Package assist catalogues the SRAM read/write assist techniques evaluated
// by the paper (§3) and maps each technique's knob voltage onto the cell
// bias it perturbs. The paper evaluates five techniques and adopts three:
// Vdd boost and negative Gnd for read, wordline overdrive for write.
package assist

import (
	"fmt"

	"sramco/internal/cell"
)

// Kind distinguishes read-assist from write-assist techniques.
type Kind int

const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Technique enumerates the assist techniques of paper §3.
type Technique int

const (
	// WLUnderdrive lowers the read wordline below Vdd, weakening the access
	// transistor: RSNM improves but read current collapses (Fig. 3(d);
	// evaluated and rejected).
	WLUnderdrive Technique = iota
	// VddBoost raises the cell supply rail to VDDC > Vdd during read,
	// strengthening the pull-down: RSNM improves with almost no read-delay
	// cost (Fig. 3(b); adopted).
	VddBoost
	// NegativeGnd drives the cell ground rail to VSSC < 0 during read,
	// strengthening both pull-down and access: the read current rises
	// steeply (Fig. 3(c); adopted).
	NegativeGnd
	// WLOverdrive raises the write wordline to VWL > Vdd, strengthening the
	// access transistor: write margin and cell write delay improve
	// (Fig. 5(a); adopted).
	WLOverdrive
	// NegativeBL drives the written-0 bitline below ground: larger
	// gate-to-source voltage on the access transistor (Fig. 5(b);
	// evaluated and rejected in favor of WLOD).
	NegativeBL
	NumTechniques
)

var techniqueInfo = [NumTechniques]struct {
	name    string
	kind    Kind
	adopted bool
}{
	WLUnderdrive: {"WL underdrive", Read, false},
	VddBoost:     {"Vdd boost", Read, true},
	NegativeGnd:  {"negative Gnd", Read, true},
	WLOverdrive:  {"WL overdrive", Write, true},
	NegativeBL:   {"negative BL", Write, false},
}

func (t Technique) valid() bool { return t >= 0 && t < NumTechniques }

// String returns the technique's conventional name.
func (t Technique) String() string {
	if !t.valid() {
		return fmt.Sprintf("Technique(%d)", int(t))
	}
	return techniqueInfo[t].name
}

// Kind returns whether the technique assists reads or writes.
func (t Technique) Kind() Kind {
	if !t.valid() {
		panic(fmt.Sprintf("assist: invalid technique %d", int(t)))
	}
	return techniqueInfo[t].kind
}

// Adopted reports whether the paper adopts the technique in its final
// co-optimization (Vdd boost + negative Gnd + WL overdrive).
func (t Technique) Adopted() bool {
	if !t.valid() {
		panic(fmt.Sprintf("assist: invalid technique %d", int(t)))
	}
	return techniqueInfo[t].adopted
}

// ApplyRead returns the read bias at supply vdd with the technique's knob
// set to v (absolute volts: VWL for WLUD, VDDC for boost, VSSC for negative
// Gnd). It panics for write techniques.
func (t Technique) ApplyRead(vdd, v float64) cell.ReadBias {
	b := cell.NominalRead(vdd)
	switch t {
	case WLUnderdrive:
		b.VWL = v
	case VddBoost:
		b.VDDC = v
	case NegativeGnd:
		b.VSSC = v
	default:
		panic(fmt.Sprintf("assist: %v is not a read technique", t))
	}
	return b
}

// ApplyWrite returns the write bias at supply vdd with the technique's knob
// set to v (VWL for WLOD, VBL for negative BL). It panics for read
// techniques.
func (t Technique) ApplyWrite(vdd, v float64) cell.WriteBias {
	b := cell.NominalWrite(vdd)
	switch t {
	case WLOverdrive:
		b.VWL = v
	case NegativeBL:
		b.VBL = v
	default:
		panic(fmt.Sprintf("assist: %v is not a write technique", t))
	}
	return b
}

// Adopted returns the three techniques the paper's framework adopts.
func Adopted() []Technique {
	return []Technique{VddBoost, NegativeGnd, WLOverdrive}
}

// All returns every catalogued technique.
func All() []Technique {
	ts := make([]Technique, NumTechniques)
	for i := range ts {
		ts[i] = Technique(i)
	}
	return ts
}
