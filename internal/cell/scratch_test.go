package cell

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sramco/internal/device"
)

// TestScratchMatchesNaive proves the reusable scratch path reproduces the
// per-sample Cell methods: SNMs bit-identical, write margin within the trip
// tolerance. Several variations run through ONE scratch back to back, so any
// state leaking between samples would show up as a mismatch.
func TestScratchMatchesNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("full-sim parity test")
	}
	base := New(device.HVT)
	s, err := NewScratch(base)
	if err != nil {
		t.Fatal(err)
	}
	vdd := device.Vdd
	rb := NominalRead(vdd)
	wb := NominalWrite(vdd)

	rng := rand.New(rand.NewSource(5))
	vars := []Variation{{}}
	for k := 0; k < 2; k++ {
		var v Variation
		for i := range v {
			v[i] = rng.NormFloat64() * 0.025
		}
		vars = append(vars, v)
	}

	for vi, dvt := range vars {
		naive := &Cell{Lib: base.Lib, Flavor: base.Flavor, DVt: dvt}

		h0, err0 := naive.HoldSNM(vdd)
		h1, err1 := s.HoldSNM(dvt, vdd)
		if err0 != nil || err1 != nil {
			t.Fatalf("var %d hold: %v / %v", vi, err0, err1)
		}
		if h0 != h1 {
			t.Errorf("var %d: HoldSNM naive %v != scratch %v", vi, h0, h1)
		}

		r0, err0 := naive.ReadSNM(rb)
		r1, err1 := s.ReadSNM(dvt, rb)
		if err0 != nil || err1 != nil {
			t.Fatalf("var %d read: %v / %v", vi, err0, err1)
		}
		if r0 != r1 {
			t.Errorf("var %d: ReadSNM naive %v != scratch %v", vi, r0, r1)
		}

		w0, err0 := naive.WriteMargin(wb)
		w1, err1 := s.WriteMargin(dvt, wb)
		if err0 != nil || err1 != nil {
			t.Fatalf("var %d write: %v / %v", vi, err0, err1)
		}
		if math.Abs(w0-w1) > writeTripTolV {
			t.Errorf("var %d: WriteMargin naive %v vs scratch %v (> %v apart)", vi, w0, w1, writeTripTolV)
		}
	}
}

// TestScratchWriteFail proves the scratch write path reports ErrWriteFail for
// a cell that cannot flip, matching the naive semantics the Monte Carlo
// engine's fail-fraction accounting depends on.
func TestScratchWriteFail(t *testing.T) {
	base := New(device.HVT)
	s, err := NewScratch(base)
	if err != nil {
		t.Fatal(err)
	}
	// A wordline far below threshold cannot flip the cell.
	wb := WriteBias{Vdd: device.Vdd, VWL: 0.05, VBL: 0}
	if _, err := s.WriteMargin(Variation{}, wb); !errors.Is(err, ErrWriteFail) {
		t.Fatalf("want ErrWriteFail, got %v", err)
	}
}
