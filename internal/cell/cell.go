// Package cell characterizes the 6T SRAM cell of the paper: static noise
// margins from butterfly curves (Seevinck's largest-embedded-square method),
// write margin and trip point, read current, leakage power, and cell-level
// write delay — all measured with the bundled circuit simulator, exactly as
// the paper measures them with SPICE.
//
// The cell is the all-single-fin 6T topology of Fig. 1(a): cross-coupled
// inverters (PU/PD) plus NFET access transistors (AX), with the cell supply
// (CVDD), cell ground (CVSS) and wordline (WL) rails switchable to assist
// levels per Fig. 4.
package cell

import (
	"fmt"

	"sramco/internal/circuit"
	"sramco/internal/device"
)

// Transistor enumerates the six cell transistors for per-device variation.
type Transistor int

const (
	PUL Transistor = iota // left pull-up (PFET)
	PDL                   // left pull-down (NFET)
	AXL                   // left access (NFET)
	PUR                   // right pull-up (PFET)
	PDR                   // right pull-down (NFET)
	AXR                   // right access (NFET)
	NumTransistors
)

var transistorNames = [...]string{"PUL", "PDL", "AXL", "PUR", "PDR", "AXR"}

func (t Transistor) String() string {
	if t < 0 || int(t) >= len(transistorNames) {
		return fmt.Sprintf("Transistor(%d)", int(t))
	}
	return transistorNames[t]
}

// Variation holds per-transistor threshold-voltage shifts (V) for Monte
// Carlo analysis. The zero value is the nominal cell.
type Variation [NumTransistors]float64

// Cell describes a 6T SRAM cell instance to characterize.
type Cell struct {
	Lib    *device.Library
	Flavor device.Flavor // flavor of the six cell transistors
	DVt    Variation
}

// New returns a nominal cell of the given flavor using the default library.
func New(f device.Flavor) *Cell {
	return &Cell{Lib: device.Default7nm(), Flavor: f}
}

// ForRegion returns a cell instance of flavor f sharing this cell's library
// and per-transistor variation — the per-region characterization hook of a
// hybrid array, where each row group may carry its own cell flavor.
func (c *Cell) ForRegion(f device.Flavor) *Cell {
	rc := *c
	rc.Flavor = f
	return &rc
}

// ReadBias is the rail condition during a read access (paper Fig. 4):
// BLs precharged to Vdd, wordline at VWL (= Vdd unless WL underdrive is being
// evaluated), cell rails at VDDC (boost) and VSSC (negative ground).
type ReadBias struct {
	Vdd  float64 // nominal supply / BL precharge level
	VDDC float64 // cell supply rail during read (≥ Vdd when boosted)
	VSSC float64 // cell ground rail during read (≤ 0 when negative-Gnd assist)
	VWL  float64 // wordline level during read
}

// NominalRead returns the no-assist read bias at supply vdd.
func NominalRead(vdd float64) ReadBias {
	return ReadBias{Vdd: vdd, VDDC: vdd, VSSC: 0, VWL: vdd}
}

// WriteBias is the rail condition during a write access: wordline at VWL
// (overdriven above Vdd for the WLOD assist), the written-0 bitline at VBL
// (negative for the negative-BL assist), cell rails nominal.
type WriteBias struct {
	Vdd float64
	VWL float64 // wordline level during write
	VBL float64 // level of the bitline driving the 0 (≤ 0 with negative-BL assist)
}

// NominalWrite returns the no-assist write bias at supply vdd.
func NominalWrite(vdd float64) WriteBias {
	return WriteBias{Vdd: vdd, VWL: vdd, VBL: 0}
}

func (c *Cell) n() *device.Model { return c.Lib.Model(device.NFET, c.Flavor) }
func (c *Cell) p() *device.Model { return c.Lib.Model(device.PFET, c.Flavor) }

// addHalf adds one half-cell (inverter + access transistor) with the given
// node names. side 0 is left (PUL/PDL/AXL), side 1 is right.
func (c *Cell) addHalf(ckt *circuit.Circuit, side int, in, out, cvdd, cvss, bl, wl string) {
	base := Transistor(side * 3)
	ckt.AddFET(circuit.FET{Name: "pu" + out, Model: c.p(), Fins: 1, DVt: c.DVt[base+PUL], D: out, G: in, S: cvdd})
	ckt.AddFET(circuit.FET{Name: "pd" + out, Model: c.n(), Fins: 1, DVt: c.DVt[base+PDL], D: out, G: in, S: cvss})
	ckt.AddFET(circuit.FET{Name: "ax" + out, Model: c.n(), Fins: 1, DVt: c.DVt[base+AXL], D: bl, G: wl, S: out})
}

// fullCell builds the complete 6T cell with independently forced rails.
// Returned circuit has sources: vcvdd, vcvss, vwl, vbl, vblb.
func (c *Cell) fullCell(cvdd, cvss, vwl, vbl, vblb float64) *circuit.Circuit {
	ckt := circuit.New()
	ckt.AddV("vcvdd", "CVDD", circuit.Ground, circuit.DC(cvdd))
	ckt.AddV("vcvss", "CVSS", circuit.Ground, circuit.DC(cvss))
	ckt.AddV("vwl", "WL", circuit.Ground, circuit.DC(vwl))
	ckt.AddV("vbl", "BL", circuit.Ground, circuit.DC(vbl))
	ckt.AddV("vblb", "BLB", circuit.Ground, circuit.DC(vblb))
	c.addHalf(ckt, 0, "QB", "Q", "CVDD", "CVSS", "BL", "WL")
	c.addHalf(ckt, 1, "Q", "QB", "CVDD", "CVSS", "BLB", "WL")
	return ckt
}

// StorageNodeCap returns the total capacitance loading one storage node
// (gate caps of the opposite inverter plus local drain junctions).
func (c *Cell) StorageNodeCap() float64 {
	return c.n().CgFin + c.p().CgFin + c.n().CdFin + c.p().CdFin + c.n().CdFin
}

// LeakagePower returns the standby leakage power (W) of the cell holding a
// '0' with WL off, rails nominal and both bitlines precharged to vdd — the
// quantity plotted in paper Fig. 2(b).
func (c *Cell) LeakagePower(vdd float64) (float64, error) {
	ckt := c.fullCell(vdd, 0, 0, vdd, vdd)
	ckt.SetIC("Q", 0)
	ckt.SetIC("QB", vdd)
	r, err := ckt.DCOperatingPoint()
	if err != nil {
		return 0, fmt.Errorf("cell: leakage operating point: %w", err)
	}
	p := vdd*r.SourceCurrent("vcvdd") + vdd*r.SourceCurrent("vbl") + vdd*r.SourceCurrent("vblb")
	// CVSS and WL sit at 0 V and deliver no power.
	if p < 0 {
		return 0, fmt.Errorf("cell: negative leakage power %g", p)
	}
	return p, nil
}

// ReadCurrent returns the cell read current (A): the current the cell sinks
// from the '0'-side bitline at the start of a read access under bias b.
func (c *Cell) ReadCurrent(b ReadBias) (float64, error) {
	ckt := c.fullCell(b.VDDC, b.VSSC, b.VWL, b.Vdd, b.Vdd)
	ckt.SetIC("Q", b.VSSC)
	ckt.SetIC("QB", b.VDDC)
	r, err := ckt.DCOperatingPoint()
	if err != nil {
		return 0, fmt.Errorf("cell: read-current operating point: %w", err)
	}
	// Confirm the read did not destroy the state (else the measured current
	// is meaningless).
	if r.V("Q") > r.V("QB") {
		return 0, fmt.Errorf("cell: cell flipped during read-current measurement (Q=%.3f, QB=%.3f)", r.V("Q"), r.V("QB"))
	}
	return r.SourceCurrent("vbl"), nil
}
