package cell

import (
	"fmt"
	"math"

	"sramco/internal/circuit"
	"sramco/internal/num"
	"sramco/internal/obs"
)

// vtcPoints is the sweep resolution used for butterfly curves.
const vtcPoints = 181

// VTC is a sampled voltage transfer curve y(x), monotone nonincreasing.
type VTC struct {
	X, Y []float64
}

// interp returns a linear interpolant over the curve (clamping at the ends
// via flat extension, achieved by evaluating within the hull only).
func (v *VTC) interp() (num.Interp1D, error) { return num.NewLinear1D(v.X, v.Y) }

// halfVTC sweeps the input of one half-cell (inverter + access transistor
// loading) and records the output, under explicit rail voltages.
//
// side selects which physical half (0 = left: output Q; 1 = right: output
// QB) so that per-transistor variation lands on the right devices.
func (c *Cell) halfVTC(side int, cvdd, cvss, bl, wl float64, lo, hi float64) (*VTC, error) {
	ckt := circuit.New()
	ckt.AddV("vcvdd", "CVDD", circuit.Ground, circuit.DC(cvdd))
	ckt.AddV("vcvss", "CVSS", circuit.Ground, circuit.DC(cvss))
	ckt.AddV("vwl", "WL", circuit.Ground, circuit.DC(wl))
	ckt.AddV("vbl", "BL", circuit.Ground, circuit.DC(bl))
	ckt.AddV("vin", "IN", circuit.Ground, circuit.DC(lo))
	c.addHalf(ckt, side, "IN", "OUT", "CVDD", "CVSS", "BL", "WL")
	ckt.SetIC("OUT", cvdd)

	mVTCSweeps.Inc()
	xs := num.Linspace(lo, hi, vtcPoints)
	rs, err := ckt.DCSweep("vin", xs)
	if err != nil {
		return nil, fmt.Errorf("cell: VTC sweep (side %d): %w", side, err)
	}
	ys := make([]float64, len(rs))
	for i, r := range rs {
		ys[i] = r.V("OUT")
	}
	return &VTC{X: xs, Y: ys}, nil
}

// flip mirrors a VTC across the diagonal: the curve x = f(y) becomes
// y = f⁻¹(x), resampled with strictly increasing x.
func (v *VTC) flip() *VTC {
	n := len(v.X)
	fx := make([]float64, 0, n)
	fy := make([]float64, 0, n)
	// Walking the original curve from last to first sample yields ascending
	// x (= original y) because the VTC is nonincreasing.
	for i := n - 1; i >= 0; i-- {
		x, y := v.Y[i], v.X[i]
		if len(fx) > 0 && x <= fx[len(fx)-1]+1e-9 {
			continue // drop duplicates from rail-flat segments
		}
		fx = append(fx, x)
		fy = append(fy, y)
	}
	return &VTC{X: fx, Y: fy}
}

// Butterfly holds the two butterfly branches in a common (x, y) plane:
// A is the left half-cell VTC y = f(x); B is the mirrored right half-cell
// VTC y = g⁻¹(x).
type Butterfly struct {
	A, B *VTC
}

// SNM returns the static noise margin: the side of the largest square that
// fits inside each butterfly lobe, minimized over the two lobes (Seevinck).
// A non-bistable butterfly (fewer than two lobes) yields 0.
func (b *Butterfly) SNM() (float64, error) {
	fa, err := b.A.interp()
	if err != nil {
		return 0, fmt.Errorf("cell: butterfly branch A: %w", err)
	}
	fb, err := b.B.interp()
	if err != nil {
		return 0, fmt.Errorf("cell: butterfly branch B: %w", err)
	}
	lobe1 := maxSquare(fa, fb, b.A.X[0], b.A.X[len(b.A.X)-1])
	lobe2 := maxSquare(fb, fa, b.B.X[0], b.B.X[len(b.B.X)-1])
	return math.Min(lobe1, lobe2), nil
}

// maxSquare returns the side of the largest square with its upper-left
// corner on curve up and lower-right corner on curve low, i.e. the largest s
// such that up(x) − s = low(x + s) for some x — the embedded square of one
// butterfly lobe. Returns 0 when the lobe is absent.
func maxSquare(up, low num.Interp1D, lo, hi float64) float64 {
	span := hi - lo
	best := 0.0
	const xSteps = 160
	for i := 0; i <= xSteps; i++ {
		x := lo + span*float64(i)/xSteps
		gap := func(s float64) float64 { return up.Eval(x) - s - low.Eval(x+s) }
		if gap(0) <= 0 {
			continue // not inside this lobe
		}
		// Scan for a sign change, then bisect.
		prevS := 0.0
		const sSteps = 64
		for j := 1; j <= sSteps; j++ {
			s := span * float64(j) / sSteps
			if gap(s) <= 0 {
				root, err := num.Bisect(gap, prevS, s, 1e-7)
				if err == nil && root > best {
					best = root
				}
				break
			}
			prevS = s
		}
	}
	return best
}

// holdButterfly builds the butterfly of the cell in hold (WL = 0, rails
// nominal, BLs precharged to vdd).
func (c *Cell) holdButterfly(vdd float64) (*Butterfly, error) {
	a, err := c.halfVTC(0, vdd, 0, vdd, 0, 0, vdd)
	if err != nil {
		return nil, err
	}
	bRaw, err := c.halfVTC(1, vdd, 0, vdd, 0, 0, vdd)
	if err != nil {
		return nil, err
	}
	return &Butterfly{A: a, B: bRaw.flip()}, nil
}

// readButterfly builds the butterfly during a read access: both access
// transistors on at VWL, both bitlines clamped at Vdd, rails at VDDC/VSSC.
func (c *Cell) readButterfly(b ReadBias) (*Butterfly, error) {
	lo, hi := math.Min(b.VSSC, 0), math.Max(b.VDDC, b.Vdd)
	a, err := c.halfVTC(0, b.VDDC, b.VSSC, b.Vdd, b.VWL, lo, hi)
	if err != nil {
		return nil, err
	}
	bRaw, err := c.halfVTC(1, b.VDDC, b.VSSC, b.Vdd, b.VWL, lo, hi)
	if err != nil {
		return nil, err
	}
	return &Butterfly{A: a, B: bRaw.flip()}, nil
}

// HoldButterfly returns the two branches of the hold-state butterfly for
// plotting or export (cmd/cellchar -butterfly).
func (c *Cell) HoldButterfly(vdd float64) (*Butterfly, error) { return c.holdButterfly(vdd) }

// ReadButterfly returns the two branches of the read-access butterfly under
// the given assist bias.
func (c *Cell) ReadButterfly(b ReadBias) (*Butterfly, error) { return c.readButterfly(b) }

// HoldSNM returns the hold static noise margin (paper Fig. 2(a)).
func (c *Cell) HoldSNM(vdd float64) (float64, error) {
	sp := obs.StartSpan("cell.hold_snm")
	mSNMExtractions.Inc()
	bf, err := c.holdButterfly(vdd)
	if err != nil {
		return 0, err
	}
	snm, err := bf.SNM()
	if err == nil {
		sp.Float("snm", snm)
		sp.End()
	}
	return snm, err
}

// ReadSNM returns the read static noise margin under the given assist bias
// (paper Figs. 3(a)-(d)).
func (c *Cell) ReadSNM(b ReadBias) (float64, error) {
	sp := obs.StartSpan("cell.read_snm")
	mSNMExtractions.Inc()
	bf, err := c.readButterfly(b)
	if err != nil {
		return 0, err
	}
	snm, err := bf.SNM()
	if err == nil {
		sp.Float("vddc", b.VDDC)
		sp.Float("vssc", b.VSSC)
		sp.Float("snm", snm)
		sp.End()
	}
	return snm, err
}
