package cell

import (
	"fmt"
	"math"

	"sramco/internal/circuit"
	"sramco/internal/obs"
)

// writeTripTolV is the wordline-interval width at which the scratch-path
// write-trip bisection stops. The naive WriteTripWL runs a fixed 28
// iterations (interval ~2 nV) because the rail searches built on it pin
// results to a 10 mV grid; the Monte Carlo path only needs the trip well
// below the ΔVt-induced write-margin spread (σ_WM ~ tens of mV), so it stops
// at 0.5 mV — trip error ≤ 0.25 mV — and saves ~17 transient probes per
// sample.
const writeTripTolV = 0.5e-3

// Scratch is a reusable per-worker evaluator for the three Monte Carlo cell
// metrics. It builds each netlist once and re-solves it under new ΔVt
// perturbations and rail biases via SetFETDVt/SetV, reusing the circuit
// package's Newton workspaces instead of reconstructing circuits, result
// maps, and waveform records per sample. SNM results are bit-identical to
// the Cell methods; the write margin differs only by the trip tolerance
// above.
//
// A Scratch is not safe for concurrent use; the Monte Carlo engine keeps one
// per worker.
type Scratch struct {
	cell Cell // copy with zeroed DVt; flavor and library are fixed

	vtc   [2]*circuit.Circuit // half-cell VTC netlists, side 0 (left) and 1 (right)
	sweep [2]*circuit.Sweeper

	wr     *circuit.Circuit // full-cell write netlist with storage caps
	wrTran *circuit.TranRunner

	xs, ysA, ysB []float64 // sweep buffers (vtcPoints long)
}

// NewScratch builds the reusable netlists for cells of c's library and
// flavor. Per-sample ΔVt arrives via the method arguments, not c.DVt.
func NewScratch(c *Cell) (*Scratch, error) {
	s := &Scratch{cell: Cell{Lib: c.Lib, Flavor: c.Flavor}}
	for side := 0; side < 2; side++ {
		ckt := circuit.New()
		ckt.AddV("vcvdd", "CVDD", circuit.Ground, circuit.DC(0))
		ckt.AddV("vcvss", "CVSS", circuit.Ground, circuit.DC(0))
		ckt.AddV("vwl", "WL", circuit.Ground, circuit.DC(0))
		ckt.AddV("vbl", "BL", circuit.Ground, circuit.DC(0))
		ckt.AddV("vin", "IN", circuit.Ground, circuit.DC(0))
		s.cell.addHalf(ckt, side, "IN", "OUT", "CVDD", "CVSS", "BL", "WL")
		sw, err := ckt.NewSweeper("vin", "OUT")
		if err != nil {
			return nil, err
		}
		s.vtc[side] = ckt
		s.sweep[side] = sw
	}

	wr := circuit.New()
	wr.AddV("vcvdd", "CVDD", circuit.Ground, circuit.DC(0))
	wr.AddV("vcvss", "CVSS", circuit.Ground, circuit.DC(0))
	wr.AddV("vwl", "WL", circuit.Ground, circuit.DC(0))
	wr.AddV("vbl", "BL", circuit.Ground, circuit.DC(0))
	wr.AddV("vblb", "BLB", circuit.Ground, circuit.DC(0))
	s.cell.addHalf(wr, 0, "QB", "Q", "CVDD", "CVSS", "BL", "WL")
	s.cell.addHalf(wr, 1, "Q", "QB", "CVDD", "CVSS", "BLB", "WL")
	cq := s.cell.StorageNodeCap()
	wr.AddC("cq", "Q", circuit.Ground, cq)
	wr.AddC("cqb", "QB", circuit.Ground, cq)
	s.wr = wr
	s.wrTran = wr.NewTranRunner()

	s.xs = make([]float64, vtcPoints)
	s.ysA = make([]float64, vtcPoints)
	s.ysB = make([]float64, vtcPoints)
	return s, nil
}

// setHalfDVt loads one side's ΔVt triple into a netlist built by addHalf
// with output node out.
func setHalfDVt(ckt *circuit.Circuit, side int, out string, dvt Variation) {
	base := Transistor(side * 3)
	ckt.SetFETDVt("pu"+out, dvt[base+PUL])
	ckt.SetFETDVt("pd"+out, dvt[base+PDL])
	ckt.SetFETDVt("ax"+out, dvt[base+AXL])
}

// linspaceInto fills dst exactly like num.Linspace(lo, hi, len(dst)).
func linspaceInto(dst []float64, lo, hi float64) {
	n := len(dst)
	step := (hi - lo) / float64(n-1)
	for i := range dst {
		dst[i] = lo + float64(i)*step
	}
	dst[n-1] = hi
}

// halfVTC sweeps one prebuilt half-cell under the given rails into ys,
// mirroring Cell.halfVTC's numerics exactly.
func (s *Scratch) halfVTC(side int, dvt Variation, cvdd, cvss, bl, wl, lo, hi float64, ys []float64) (*VTC, error) {
	ckt := s.vtc[side]
	setHalfDVt(ckt, side, "OUT", dvt)
	ckt.SetV("vcvdd", circuit.DC(cvdd))
	ckt.SetV("vcvss", circuit.DC(cvss))
	ckt.SetV("vwl", circuit.DC(wl))
	ckt.SetV("vbl", circuit.DC(bl))
	ckt.SetV("vin", circuit.DC(lo))
	ckt.SetIC("OUT", cvdd)

	mVTCSweeps.Inc()
	linspaceInto(s.xs, lo, hi)
	if err := s.sweep[side].Sweep(s.xs, ys); err != nil {
		return nil, fmt.Errorf("cell: VTC sweep (side %d): %w", side, err)
	}
	return &VTC{X: s.xs, Y: ys}, nil
}

// butterfly builds the butterfly under explicit rails; the flip of side B
// allocates its own storage, so the returned butterfly does not alias ysB.
func (s *Scratch) butterfly(dvt Variation, cvdd, cvss, bl, wl, lo, hi float64) (*Butterfly, error) {
	a, err := s.halfVTC(0, dvt, cvdd, cvss, bl, wl, lo, hi, s.ysA)
	if err != nil {
		return nil, err
	}
	bRaw, err := s.halfVTC(1, dvt, cvdd, cvss, bl, wl, lo, hi, s.ysB)
	if err != nil {
		return nil, err
	}
	return &Butterfly{A: a, B: bRaw.flip()}, nil
}

// HoldSNM returns the hold static noise margin of the perturbed cell,
// bit-identical to Cell.HoldSNM with c.DVt = dvt.
func (s *Scratch) HoldSNM(dvt Variation, vdd float64) (float64, error) {
	sp := obs.StartSpan("cell.hold_snm")
	mSNMExtractions.Inc()
	bf, err := s.butterfly(dvt, vdd, 0, vdd, 0, 0, vdd)
	if err != nil {
		return 0, err
	}
	snm, err := bf.SNM()
	if err == nil {
		sp.Float("snm", snm)
		sp.End()
	}
	return snm, err
}

// ReadSNM returns the read static noise margin of the perturbed cell under
// bias b, bit-identical to Cell.ReadSNM with c.DVt = dvt.
func (s *Scratch) ReadSNM(dvt Variation, b ReadBias) (float64, error) {
	sp := obs.StartSpan("cell.read_snm")
	mSNMExtractions.Inc()
	lo, hi := math.Min(b.VSSC, 0), math.Max(b.VDDC, b.Vdd)
	bf, err := s.butterfly(dvt, b.VDDC, b.VSSC, b.Vdd, b.VWL, lo, hi)
	if err != nil {
		return 0, err
	}
	snm, err := bf.SNM()
	if err == nil {
		sp.Float("vddc", b.VDDC)
		sp.Float("vssc", b.VSSC)
		sp.Float("snm", snm)
		sp.End()
	}
	return snm, err
}

// writeFlips runs one transient probe at wordline level vwl on the prebuilt
// write netlist and reports whether the cell flipped.
func (s *Scratch) writeFlips(b WriteBias, vwl float64) (bool, error) {
	mWriteProbes.Inc()
	wr := s.wr
	wr.SetV("vwl", circuit.DC(vwl))
	if err := s.wrTran.Run(circuit.TranOpts{TStop: 300e-12, DT: 0.5e-12, UIC: true}); err != nil {
		return false, err
	}
	return s.wrTran.FinalV("Q") < s.wrTran.FinalV("QB"), nil
}

// WriteMargin returns the write margin of the perturbed cell under bias b:
// VWL minus the trip wordline voltage, found by tolerance bisection on the
// reusable write netlist. Semantics match Cell.WriteMargin (including
// ErrWriteFail when the cell does not flip at full VWL); the trip differs
// from the 28-step bisection by at most writeTripTolV/2.
func (s *Scratch) WriteMargin(dvt Variation, b WriteBias) (float64, error) {
	sp := obs.StartSpan("cell.write_trip")
	mWriteTrips.Inc()
	probes := 0
	wr := s.wr
	setHalfDVt(wr, 0, "Q", dvt)
	setHalfDVt(wr, 1, "QB", dvt)
	wr.SetV("vcvdd", circuit.DC(b.Vdd))
	wr.SetV("vcvss", circuit.DC(0))
	wr.SetV("vbl", circuit.DC(b.VBL))
	wr.SetV("vblb", circuit.DC(b.Vdd))
	wr.SetIC("Q", b.Vdd)
	wr.SetIC("QB", 0)

	flips := func(vwl float64) (bool, error) {
		probes++
		return s.writeFlips(b, vwl)
	}
	lo, hi := 0.0, b.VWL
	fl, err := flips(lo)
	if err != nil {
		return 0, fmt.Errorf("cell: write trip at WL=0: %w", err)
	}
	if fl {
		sp.Int("probes", int64(probes))
		sp.Float("trip", 0)
		sp.End()
		return b.VWL, nil // flips even with WL off — degenerate, trip = 0
	}
	fh, err := flips(hi)
	if err != nil {
		return 0, fmt.Errorf("cell: write trip at WL=%g: %w", hi, err)
	}
	if !fh {
		return 0, fmt.Errorf("cell: write fails even at WL=%gV: %w", hi, ErrWriteFail)
	}
	for hi-lo > writeTripTolV {
		mid := 0.5 * (lo + hi)
		fm, err := flips(mid)
		if err != nil {
			return 0, fmt.Errorf("cell: write trip at WL=%g: %w", mid, err)
		}
		if fm {
			hi = mid
		} else {
			lo = mid
		}
	}
	trip := 0.5 * (lo + hi)
	sp.Int("probes", int64(probes))
	sp.Float("trip", trip)
	sp.End()
	return b.VWL - trip, nil
}
