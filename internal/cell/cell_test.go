package cell

import (
	"math"
	"testing"

	"sramco/internal/device"
)

const vdd = device.Vdd

func TestLeakagePowerMatchesPaperAnchors(t *testing.T) {
	// Paper §5: P_leak(6T-LVT) = 1.692 nW, P_leak(6T-HVT) = 0.082 nW at
	// 450 mV. Our simulated cell must land within 15% of both, and the
	// ratio must be ≈20× (the library relation).
	lvt, err := New(device.LVT).LeakagePower(vdd)
	if err != nil {
		t.Fatal(err)
	}
	hvt, err := New(device.HVT).LeakagePower(vdd)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(lvt-1.692e-9) / 1.692e-9; e > 0.15 {
		t.Errorf("LVT leakage = %g, want ≈1.692nW (err %.0f%%)", lvt, e*100)
	}
	if e := math.Abs(hvt-0.082e-9) / 0.082e-9; e > 0.15 {
		t.Errorf("HVT leakage = %g, want ≈0.082nW (err %.0f%%)", hvt, e*100)
	}
	if r := lvt / hvt; r < 15 || r > 25 {
		t.Errorf("leakage ratio = %.1f, want ≈20", r)
	}
}

func TestLeakageDropsWithVdd(t *testing.T) {
	c := New(device.HVT)
	prev := math.Inf(1)
	for _, v := range []float64{0.45, 0.35, 0.25, 0.15} {
		p, err := c.LeakagePower(v)
		if err != nil {
			t.Fatalf("leakage at %g: %v", v, err)
		}
		if p >= prev {
			t.Errorf("leakage at %gV (%g) not below leakage at higher Vdd (%g)", v, p, prev)
		}
		prev = p
	}
}

func TestHoldSNMProperties(t *testing.T) {
	lvt, err := New(device.LVT).HoldSNM(vdd)
	if err != nil {
		t.Fatal(err)
	}
	hvt, err := New(device.HVT).HoldSNM(vdd)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 2(a): HSNM of both flavors exceeds 35% of Vdd at nominal;
	// HVT ≥ LVT.
	if lvt < 0.35*vdd {
		t.Errorf("LVT HSNM = %g, want ≥ 0.35·Vdd", lvt)
	}
	if hvt < lvt-0.005 {
		t.Errorf("HVT HSNM (%g) should not be materially below LVT (%g)", hvt, lvt)
	}
	// SNM can never exceed Vdd/2.
	if lvt > vdd/2 || hvt > vdd/2 {
		t.Errorf("HSNM exceeds Vdd/2: lvt=%g hvt=%g", lvt, hvt)
	}
}

func TestHoldSNMDecreasesWithVdd(t *testing.T) {
	c := New(device.HVT)
	prev := math.Inf(1)
	for _, v := range []float64{0.45, 0.35, 0.25} {
		snm, err := c.HoldSNM(v)
		if err != nil {
			t.Fatalf("HSNM at %g: %v", v, err)
		}
		if snm >= prev {
			t.Errorf("HSNM at %gV (%g) should fall with Vdd (prev %g)", v, snm, prev)
		}
		prev = snm
	}
}

func TestReadSNMBelowHoldSNM(t *testing.T) {
	for _, f := range []device.Flavor{device.LVT, device.HVT} {
		c := New(f)
		h, err := c.HoldSNM(vdd)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.ReadSNM(NominalRead(vdd))
		if err != nil {
			t.Fatal(err)
		}
		if r >= h {
			t.Errorf("%v: RSNM (%g) must be below HSNM (%g)", f, r, h)
		}
		if r <= 0 {
			t.Errorf("%v: RSNM = %g, cell must still be read-stable", f, r)
		}
	}
}

func TestHVTReadSNMExceedsLVT(t *testing.T) {
	// Paper Fig. 3(a): RSNM of 6T-HVT is larger than 6T-LVT (1.9× in their
	// library; we require a clear improvement).
	lvt, err := New(device.LVT).ReadSNM(NominalRead(vdd))
	if err != nil {
		t.Fatal(err)
	}
	hvt, err := New(device.HVT).ReadSNM(NominalRead(vdd))
	if err != nil {
		t.Fatal(err)
	}
	if hvt < 1.2*lvt {
		t.Errorf("HVT RSNM (%g) should clearly exceed LVT RSNM (%g)", hvt, lvt)
	}
}

func TestVddBoostImprovesRSNM(t *testing.T) {
	// Paper Fig. 3(b): RSNM increases with VDDC.
	c := New(device.HVT)
	prev := -1.0
	for _, vddc := range []float64{0.45, 0.50, 0.55, 0.60, 0.64} {
		b := NominalRead(vdd)
		b.VDDC = vddc
		snm, err := c.ReadSNM(b)
		if err != nil {
			t.Fatalf("RSNM at VDDC=%g: %v", vddc, err)
		}
		if snm <= prev {
			t.Errorf("RSNM at VDDC=%g (%g) not above previous (%g)", vddc, snm, prev)
		}
		prev = snm
	}
}

func TestNegativeGndBoostsReadCurrent(t *testing.T) {
	// Paper Fig. 3(c) / §5: negative Gnd strongly increases I_read; RSNM is
	// mildly improved (both PD and AX get stronger).
	c := New(device.HVT)
	b0 := NominalRead(vdd)
	i0, err := c.ReadCurrent(b0)
	if err != nil {
		t.Fatal(err)
	}
	b := b0
	b.VSSC = -0.24
	i1, err := c.ReadCurrent(b)
	if err != nil {
		t.Fatal(err)
	}
	if gain := i1 / i0; gain < 2.5 || gain > 6 {
		t.Errorf("I_read gain at VSSC=-240mV = %.2f×, want 2.5-6× (paper: ≈4.3×)", gain)
	}
	s0, err := c.ReadSNM(b0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.ReadSNM(b)
	if err != nil {
		t.Fatal(err)
	}
	if s1 < s0 {
		t.Errorf("negative Gnd should not degrade RSNM here: %g -> %g", s0, s1)
	}
	if s1 > 1.5*s0 {
		t.Errorf("negative Gnd RSNM influence should be mild: %g -> %g", s0, s1)
	}
}

func TestWLUnderdriveTradeoff(t *testing.T) {
	// Paper Fig. 3(d): WL underdrive raises RSNM but cuts read current.
	c := New(device.HVT)
	b := NominalRead(vdd)
	snmNom, err := c.ReadSNM(b)
	if err != nil {
		t.Fatal(err)
	}
	iNom, err := c.ReadCurrent(b)
	if err != nil {
		t.Fatal(err)
	}
	b.VWL = 0.30
	snmUD, err := c.ReadSNM(b)
	if err != nil {
		t.Fatal(err)
	}
	iUD, err := c.ReadCurrent(b)
	if err != nil {
		t.Fatal(err)
	}
	if snmUD <= snmNom {
		t.Errorf("WLUD must raise RSNM: %g -> %g", snmNom, snmUD)
	}
	if iUD >= iNom {
		t.Errorf("WLUD must cut read current: %g -> %g", iNom, iUD)
	}
}

func TestHVTReadCurrentLowerThanLVT(t *testing.T) {
	lvt, err := New(device.LVT).ReadCurrent(NominalRead(vdd))
	if err != nil {
		t.Fatal(err)
	}
	hvt, err := New(device.HVT).ReadCurrent(NominalRead(vdd))
	if err != nil {
		t.Fatal(err)
	}
	if r := lvt / hvt; r < 1.5 || r > 3.5 {
		t.Errorf("I_read LVT/HVT = %.2f, want ≈2 (paper library relation)", r)
	}
}

func TestWriteMarginRespondsToAssists(t *testing.T) {
	c := New(device.HVT)
	wmNom, err := c.WriteMargin(NominalWrite(vdd))
	if err != nil {
		t.Fatal(err)
	}
	// WLOD raises WM (paper Fig. 5(a)).
	bOD := NominalWrite(vdd)
	bOD.VWL = 0.54
	wmOD, err := c.WriteMargin(bOD)
	if err != nil {
		t.Fatal(err)
	}
	if wmOD <= wmNom {
		t.Errorf("WLOD must raise WM: %g -> %g", wmNom, wmOD)
	}
	// Negative BL raises WM (paper Fig. 5(b)).
	bNB := NominalWrite(vdd)
	bNB.VBL = -0.10
	wmNB, err := c.WriteMargin(bNB)
	if err != nil {
		t.Fatal(err)
	}
	if wmNB <= wmNom {
		t.Errorf("negative BL must raise WM: %g -> %g", wmNom, wmNB)
	}
}

func TestPaperVWLStarAnchors(t *testing.T) {
	// Paper §5: the minimum VWL meeting WM ≥ 0.35·Vdd is 490 mV for LVT and
	// 540 mV for HVT. Allow ±40 mV on our simulated substrate.
	delta := 0.35 * vdd
	lvt, err := New(device.LVT).MinVWLForWriteMargin(NominalWrite(vdd), delta, 0.70)
	if err != nil {
		t.Fatal(err)
	}
	hvt, err := New(device.HVT).MinVWLForWriteMargin(NominalWrite(vdd), delta, 0.70)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lvt-0.49) > 0.04 {
		t.Errorf("LVT VWL* = %g, paper: 0.49 (±40mV)", lvt)
	}
	if math.Abs(hvt-0.54) > 0.04 {
		t.Errorf("HVT VWL* = %g, paper: 0.54 (±40mV)", hvt)
	}
	if hvt <= lvt {
		t.Errorf("HVT VWL* (%g) must exceed LVT VWL* (%g)", hvt, lvt)
	}
}

func TestWriteDelayProperties(t *testing.T) {
	c := New(device.HVT)
	dNom, err := c.WriteDelay(NominalWrite(vdd))
	if err != nil {
		t.Fatal(err)
	}
	if dNom <= 0 || dNom > 50e-12 {
		t.Fatalf("write delay = %g, want a few ps", dNom)
	}
	// WLOD speeds up the write (paper Fig. 5(a)).
	b := NominalWrite(vdd)
	b.VWL = 0.60
	dOD, err := c.WriteDelay(b)
	if err != nil {
		t.Fatal(err)
	}
	if dOD >= dNom {
		t.Errorf("WLOD must cut write delay: %g -> %g", dNom, dOD)
	}
}

func TestVariationShiftsMargins(t *testing.T) {
	// Lowering all six thresholds makes the HVT cell LVT-like, so its RSNM
	// must move toward the (lower) LVT value — the same ordering the paper
	// reports between the two flavors (Fig. 3(a)).
	nom := New(device.HVT)
	snmNom, err := nom.ReadSNM(NominalRead(vdd))
	if err != nil {
		t.Fatal(err)
	}
	var v Variation
	for i := range v {
		v[i] = -0.05
	}
	shifted := &Cell{Lib: device.Default7nm(), Flavor: device.HVT, DVt: v}
	snmShifted, err := shifted.ReadSNM(NominalRead(vdd))
	if err != nil {
		t.Fatal(err)
	}
	if snmShifted >= snmNom {
		t.Errorf("lowering all Vt must reduce RSNM toward LVT: %g -> %g", snmNom, snmShifted)
	}
}

func TestAsymmetricVariationBreaksSymmetry(t *testing.T) {
	var v Variation
	v[PDL] = 0.06
	c := &Cell{Lib: device.Default7nm(), Flavor: device.LVT, DVt: v}
	bf, err := c.readButterfly(NominalRead(vdd))
	if err != nil {
		t.Fatal(err)
	}
	snm, err := bf.SNM()
	if err != nil {
		t.Fatal(err)
	}
	sym, err := New(device.LVT).ReadSNM(NominalRead(vdd))
	if err != nil {
		t.Fatal(err)
	}
	if snm >= sym {
		t.Errorf("single-sided variation should reduce SNM: %g vs %g", snm, sym)
	}
}

func TestReadCurrentFitExponent(t *testing.T) {
	// Paper §5: I_read = b·(V_DDC−V_SSC−V_t)^a with a = 1.3 for HVT.
	c := New(device.HVT)
	rb := NominalRead(vdd)
	rb.VDDC = 0.55
	vsscs := []float64{0, -0.04, -0.08, -0.12, -0.16, -0.20, -0.24}
	vt := c.Lib.NHVT.Vt0
	a, b, err := c.ReadCurrentFit(rb, vsscs, vt)
	if err != nil {
		t.Fatal(err)
	}
	if a < 0.9 || a > 1.8 {
		t.Errorf("fit exponent a = %.2f, want ≈1.3 (paper)", a)
	}
	if b <= 0 {
		t.Errorf("fit coefficient b = %g, want positive", b)
	}
}

func TestTransistorString(t *testing.T) {
	if PUL.String() != "PUL" || AXR.String() != "AXR" {
		t.Error("Transistor.String mismatch")
	}
	if Transistor(99).String() == "" {
		t.Error("out-of-range Transistor.String empty")
	}
}

func TestStorageNodeCapPositive(t *testing.T) {
	if c := New(device.LVT).StorageNodeCap(); c <= 0 || c > 1e-15 {
		t.Errorf("storage node cap = %g, want sub-fF positive", c)
	}
}
