package cell

import "sramco/internal/obs"

// Cell-characterization metrics: one VTC sweep per butterfly branch, one
// transient flip probe per write-trip bisection step, one rail probe per
// minimum-rail binary-search evaluation. All counters are deterministic
// for a given workload.
var (
	mVTCSweeps      = obs.NewCounter("cell.vtc.sweeps")
	mSNMExtractions = obs.NewCounter("cell.snm.extractions")
	mWriteProbes    = obs.NewCounter("cell.write.trip_probes")
	mWriteTrips     = obs.NewCounter("cell.write.trip_searches")
	mRailProbes     = obs.NewCounter("cell.rail.search_probes")
)
