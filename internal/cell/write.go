package cell

import (
	"errors"
	"fmt"
	"math"

	"sramco/internal/circuit"
	"sramco/internal/obs"
)

// ErrWriteFail reports that the cell does not flip even with the wordline at
// the full applied bias — the write margin is ≤ 0. It is a legitimate
// characterization outcome (a failing Monte Carlo sample, an infeasible
// assist level), not a solver failure; callers distinguish it from
// infrastructure errors with errors.Is.
var ErrWriteFail = errors.New("write margin ≤ 0")

// WriteTripWL returns the minimum wordline voltage that flips a cell holding
// '1' on Q when BL is driven to b.VBL (writing a '0'). The paper defines the
// write margin relative to this trip point.
//
// Flip detection is transient (dynamic): the DC problem is singular exactly
// at the trip fold, so each probe applies the wordline level to the cell
// with its storage nodes loaded by their physical capacitances and checks
// whether the state flips within a generous settling window.
func (c *Cell) WriteTripWL(b WriteBias) (float64, error) {
	sp := obs.StartSpan("cell.write_trip")
	mWriteTrips.Inc()
	probes := 0
	flips := func(vwl float64) (bool, error) {
		probes++
		mWriteProbes.Inc()
		ckt := circuit.New()
		ckt.AddV("vcvdd", "CVDD", circuit.Ground, circuit.DC(b.Vdd))
		ckt.AddV("vcvss", "CVSS", circuit.Ground, circuit.DC(0))
		ckt.AddV("vwl", "WL", circuit.Ground, circuit.DC(vwl))
		ckt.AddV("vbl", "BL", circuit.Ground, circuit.DC(b.VBL))
		ckt.AddV("vblb", "BLB", circuit.Ground, circuit.DC(b.Vdd))
		c.addHalf(ckt, 0, "QB", "Q", "CVDD", "CVSS", "BL", "WL")
		c.addHalf(ckt, 1, "Q", "QB", "CVDD", "CVSS", "BLB", "WL")
		cq := c.StorageNodeCap()
		ckt.AddC("cq", "Q", circuit.Ground, cq)
		ckt.AddC("cqb", "QB", circuit.Ground, cq)
		ckt.SetIC("Q", b.Vdd)
		ckt.SetIC("QB", 0)
		res, err := ckt.Transient(circuit.TranOpts{TStop: 300e-12, DT: 0.5e-12, UIC: true})
		if err != nil {
			return false, err
		}
		return res.Final("Q") < res.Final("QB"), nil
	}
	lo, hi := 0.0, b.VWL
	fl, err := flips(lo)
	if err != nil {
		return 0, fmt.Errorf("cell: write trip at WL=0: %w", err)
	}
	if fl {
		sp.Int("probes", int64(probes))
		sp.Float("trip", 0)
		sp.End()
		return 0, nil // flips even with WL off — degenerate
	}
	fh, err := flips(hi)
	if err != nil {
		return 0, fmt.Errorf("cell: write trip at WL=%g: %w", hi, err)
	}
	if !fh {
		return 0, fmt.Errorf("cell: write fails even at WL=%gV: %w", hi, ErrWriteFail)
	}
	for i := 0; i < 28; i++ {
		mid := 0.5 * (lo + hi)
		fm, err := flips(mid)
		if err != nil {
			return 0, fmt.Errorf("cell: write trip at WL=%g: %w", mid, err)
		}
		if fm {
			hi = mid
		} else {
			lo = mid
		}
	}
	trip := 0.5 * (lo + hi)
	sp.Int("probes", int64(probes))
	sp.Float("trip", trip)
	sp.End()
	return trip, nil
}

// WriteMargin returns the write margin under bias b: the applied wordline
// voltage minus the minimum wordline voltage needed to flip the cell
// (paper §3.2; at VWL = Vdd this is exactly the paper's WM definition).
func (c *Cell) WriteMargin(b WriteBias) (float64, error) {
	trip, err := c.WriteTripWL(b)
	if err != nil {
		return 0, err
	}
	return b.VWL - trip, nil
}

// WriteDelay returns the cell-level write delay (s): the time from the
// wordline reaching 50 % of Vdd until Q and QB cross, writing a '0' over a
// stored '1' (paper §3.2 definition; ≈1.5 ps for 6T-HVT with no assist).
func (c *Cell) WriteDelay(b WriteBias) (float64, error) {
	const (
		tStart = 2e-12  // WL step start
		tRise  = 1e-12  // WL rise time
		tStop  = 60e-12 // simulation window
		dt     = 0.05e-12
	)
	ckt := circuit.New()
	ckt.AddV("vcvdd", "CVDD", circuit.Ground, circuit.DC(b.Vdd))
	ckt.AddV("vcvss", "CVSS", circuit.Ground, circuit.DC(0))
	ckt.AddV("vwl", "WL", circuit.Ground, circuit.Step(0, b.VWL, tStart, tRise))
	ckt.AddV("vbl", "BL", circuit.Ground, circuit.DC(b.VBL))
	ckt.AddV("vblb", "BLB", circuit.Ground, circuit.DC(b.Vdd))
	c.addHalf(ckt, 0, "QB", "Q", "CVDD", "CVSS", "BL", "WL")
	c.addHalf(ckt, 1, "Q", "QB", "CVDD", "CVSS", "BLB", "WL")
	cq := c.StorageNodeCap()
	ckt.AddC("cq", "Q", circuit.Ground, cq)
	ckt.AddC("cqb", "QB", circuit.Ground, cq)
	ckt.SetIC("Q", b.Vdd)
	ckt.SetIC("QB", 0)

	res, err := ckt.Transient(circuit.TranOpts{TStop: tStop, DT: dt})
	if err != nil {
		return 0, fmt.Errorf("cell: write-delay transient: %w", err)
	}
	tWL, err := res.CrossTime("WL", 0.5*b.Vdd, circuit.RisingEdge, 0)
	if err != nil {
		return 0, fmt.Errorf("cell: WL never reached 50%%: %w", err)
	}
	tCross, err := crossEachOther(res, "Q", "QB", tWL)
	if err != nil {
		return 0, err
	}
	return tCross - tWL, nil
}

// crossEachOther returns the first time after tMin at which trace a drops
// below trace b.
func crossEachOther(res *circuit.TranResult, a, b string, tMin float64) (float64, error) {
	va, vb := res.V(a), res.V(b)
	for i := 1; i < len(va); i++ {
		if res.Times[i] < tMin {
			continue
		}
		d0 := va[i-1] - vb[i-1]
		d1 := va[i] - vb[i]
		if d0 > 0 && d1 <= 0 {
			frac := d0 / (d0 - d1)
			return res.Times[i-1] + frac*(res.Times[i]-res.Times[i-1]), nil
		}
	}
	return 0, fmt.Errorf("cell: %s and %s never crossed (write did not complete)", a, b)
}

// MinVDDCForReadSNM returns the smallest VDDC (searched on a 10 mV grid like
// the paper's rail granularity) at which the read SNM meets target, with the
// other read-bias fields taken from b. It returns an error if even vMax
// fails.
func (c *Cell) MinVDDCForReadSNM(b ReadBias, target, vMax float64) (float64, error) {
	meets := func(vddc float64) (bool, error) {
		bb := b
		bb.VDDC = vddc
		snm, err := c.ReadSNM(bb)
		if err != nil {
			return false, err
		}
		return snm >= target, nil
	}
	return minRailSearch(meets, b.Vdd, vMax, "VDDC")
}

// MinVWLForWriteMargin returns the smallest write-assist VWL (10 mV grid) at
// which the write margin meets target.
func (c *Cell) MinVWLForWriteMargin(b WriteBias, target, vMax float64) (float64, error) {
	meets := func(vwl float64) (bool, error) {
		bb := b
		bb.VWL = vwl
		wm, err := c.WriteMargin(bb)
		if err != nil {
			return false, err
		}
		return wm >= target, nil
	}
	return minRailSearch(meets, b.Vdd, vMax, "VWL")
}

// minRailSearch finds the smallest voltage on a 10 mV grid in [vMin, vMax]
// satisfying a monotone predicate.
func minRailSearch(meetsRaw func(float64) (bool, error), vMin, vMax float64, what string) (float64, error) {
	sp := obs.StartSpan("cell.rail_search")
	probes := 0
	meets := func(v float64) (bool, error) {
		probes++
		mRailProbes.Inc()
		return meetsRaw(v)
	}
	const grid = 0.010
	n := int((vMax-vMin)/grid + 0.5)
	lo, hi := 0, n // grid indices; predicate assumed false below lo-1... binary search
	ok, err := meets(vMax)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("cell: %s search: target unmet even at %gV", what, vMax)
	}
	if ok0, err := meets(vMin); err != nil {
		return 0, err
	} else if ok0 {
		sp.Str("rail", what)
		sp.Int("probes", int64(probes))
		sp.Float("v", vMin)
		sp.End()
		return vMin, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		v := vMin + float64(mid)*grid
		ok, err := meets(v)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	v := vMin + float64(hi)*grid
	sp.Str("rail", what)
	sp.Int("probes", int64(probes))
	sp.Float("v", v)
	sp.End()
	return v, nil
}

// ReadCurrentFit fits the paper's analytical read-current law
// I_read = b·(V_DDC − V_SSC − V_t)^a to simulated read currents over a range
// of VSSC values by log-log least squares, given the device threshold vt.
// It returns (a, b).
func (c *Cell) ReadCurrentFit(rb ReadBias, vsscs []float64, vt float64) (a, bCoef float64, err error) {
	var xs, ys []float64
	for _, vssc := range vsscs {
		bb := rb
		bb.VSSC = vssc
		i, err := c.ReadCurrent(bb)
		if err != nil {
			return 0, 0, err
		}
		drive := bb.VDDC - vssc - vt
		if drive <= 0 || i <= 0 {
			continue
		}
		xs = append(xs, drive)
		ys = append(ys, i)
	}
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("cell: read-current fit needs ≥2 usable points, got %d", len(xs))
	}
	// Linear regression of ln(i) on ln(drive).
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for k := range xs {
		lx, ly := math.Log(xs[k]), math.Log(ys[k])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	a = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	lnB := (sy - a*sx) / n
	return a, math.Exp(lnB), nil
}
