package cell

import (
	"fmt"

	"sramco/internal/circuit"
)

// BLDischargeDelay simulates the read bitline discharge end to end: the
// bitline is a real capacitor cBL precharged to Vdd, the wordline steps on,
// and the accessed cell sinks charge until the bitline has fallen by
// deltaV (the sense threshold). This is the transient ground truth for the
// paper's Eq. (1) estimate D = C_BL·ΔV_S/I_read, which evaluates the read
// current at the initial bias only.
func (c *Cell) BLDischargeDelay(b ReadBias, cBL, deltaV float64) (float64, error) {
	if cBL <= 0 || deltaV <= 0 || deltaV >= b.Vdd {
		return 0, fmt.Errorf("cell: invalid BL discharge setup cBL=%g ΔV=%g", cBL, deltaV)
	}
	const (
		tWL  = 2e-12
		rise = 1e-12
	)
	ckt := circuit.New()
	ckt.AddV("vcvdd", "CVDD", circuit.Ground, circuit.DC(b.VDDC))
	ckt.AddV("vcvss", "CVSS", circuit.Ground, circuit.DC(b.VSSC))
	ckt.AddV("vwl", "WL", circuit.Ground, circuit.Step(0, b.VWL, tWL, rise))
	ckt.AddV("vblb", "BLB", circuit.Ground, circuit.DC(b.Vdd))
	// The bitline floats on its capacitance, precharged to Vdd.
	ckt.AddC("cbl", "BL", circuit.Ground, cBL)
	c.addHalf(ckt, 0, "QB", "Q", "CVDD", "CVSS", "BL", "WL")
	c.addHalf(ckt, 1, "Q", "QB", "CVDD", "CVSS", "BLB", "WL")
	cq := c.StorageNodeCap()
	ckt.AddC("cq", "Q", circuit.Ground, cq)
	ckt.AddC("cqb", "QB", circuit.Ground, cq)
	ckt.SetIC("Q", b.VSSC)
	ckt.SetIC("QB", b.VDDC)
	ckt.SetIC("BL", b.Vdd)

	// Budget the window from the analytical estimate, with ample slack.
	iRead, err := c.ReadCurrent(b)
	if err != nil {
		return 0, err
	}
	est := cBL * deltaV / iRead
	tStop := tWL + 6*est
	res, err := ckt.Transient(circuit.TranOpts{TStop: tStop, DT: tStop / 3000, UIC: true})
	if err != nil {
		return 0, fmt.Errorf("cell: BL discharge transient: %w", err)
	}
	tHalfWL, err := res.CrossTime("WL", 0.5*b.Vdd, circuit.RisingEdge, 0)
	if err != nil {
		return 0, err
	}
	tSense, err := res.CrossTime("BL", b.Vdd-deltaV, circuit.FallingEdge, tHalfWL)
	if err != nil {
		return 0, fmt.Errorf("cell: bitline never reached the sense threshold: %w", err)
	}
	return tSense - tHalfWL, nil
}
