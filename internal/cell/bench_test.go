package cell

import (
	"testing"

	"sramco/internal/device"
)

// BenchmarkReadSNM measures one read-SNM extraction (two VTC sweeps plus
// the largest-square search) — the unit of work behind Figs. 2-3 and the
// Monte Carlo yield engine.
func BenchmarkReadSNM(b *testing.B) {
	c := New(device.HVT)
	bias := NominalRead(device.Vdd)
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadSNM(bias); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeakagePower measures one standby-leakage operating point.
func BenchmarkLeakagePower(b *testing.B) {
	c := New(device.HVT)
	for i := 0; i < b.N; i++ {
		if _, err := c.LeakagePower(device.Vdd); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteMargin measures one write-margin extraction (bisection of
// dynamic flip probes).
func BenchmarkWriteMargin(b *testing.B) {
	c := New(device.HVT)
	bias := NominalWrite(device.Vdd)
	for i := 0; i < b.N; i++ {
		if _, err := c.WriteMargin(bias); err != nil {
			b.Fatal(err)
		}
	}
}
