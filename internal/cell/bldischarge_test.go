package cell

import (
	"testing"

	"sramco/internal/device"
)

// TestEq1AgreesWithTransient validates the paper's Eq. (1) delay model
// against full transient simulation: D = C_BL·ΔV_S/I_read must agree with
// the simulated bitline discharge within a modest band (the analytical form
// uses the initial-bias current; the transient current varies slightly as
// the bitline falls).
func TestEq1AgreesWithTransient(t *testing.T) {
	c := New(device.HVT)
	const (
		cBL    = 5e-15 // ≈ a 64-cell column
		deltaV = 0.120
	)
	for _, b := range []ReadBias{
		NominalRead(vdd),
		{Vdd: vdd, VDDC: 0.55, VSSC: 0, VWL: vdd},
		{Vdd: vdd, VDDC: 0.55, VSSC: -0.24, VWL: vdd},
	} {
		iRead, err := c.ReadCurrent(b)
		if err != nil {
			t.Fatal(err)
		}
		analytic := cBL * deltaV / iRead
		sim, err := c.BLDischargeDelay(b, cBL, deltaV)
		if err != nil {
			t.Fatalf("bias %+v: %v", b, err)
		}
		ratio := sim / analytic
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("bias VDDC=%g VSSC=%g: transient %g vs Eq.(1) %g (ratio %.2f, want 0.5-2.0)",
				b.VDDC, b.VSSC, sim, analytic, ratio)
		}
	}
}

// TestBLDischargeFasterWithNegativeGnd checks the transient ground truth
// reproduces Fig. 3(c)'s ordering, independent of the analytical model.
func TestBLDischargeFasterWithNegativeGnd(t *testing.T) {
	c := New(device.HVT)
	const cBL, dv = 5e-15, 0.120
	b0 := ReadBias{Vdd: vdd, VDDC: 0.55, VSSC: 0, VWL: vdd}
	b1 := ReadBias{Vdd: vdd, VDDC: 0.55, VSSC: -0.24, VWL: vdd}
	d0, err := c.BLDischargeDelay(b0, cBL, dv)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := c.BLDischargeDelay(b1, cBL, dv)
	if err != nil {
		t.Fatal(err)
	}
	if !(d1 < d0/1.8) {
		t.Errorf("negative Gnd transient speedup only %g -> %g", d0, d1)
	}
}

func TestBLDischargeValidation(t *testing.T) {
	c := New(device.HVT)
	if _, err := c.BLDischargeDelay(NominalRead(vdd), 0, 0.12); err == nil {
		t.Error("zero C_BL accepted")
	}
	if _, err := c.BLDischargeDelay(NominalRead(vdd), 5e-15, 0.5); err == nil {
		t.Error("ΔV ≥ Vdd accepted")
	}
}
