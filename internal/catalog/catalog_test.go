package catalog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testFingerprint() [32]byte {
	var fp [32]byte
	for i := range fp {
		fp[i] = byte(i * 7)
	}
	return fp
}

func buildTest(t *testing.T, n int) *Catalog {
	t.Helper()
	b := NewBuilder(testFingerprint())
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("optimize|cap=%d|flavor=hvt|method=m2|obj=edp|dwl=false|alpha=0.5|beta=0.5|w=64", 1<<i)
		body := []byte(fmt.Sprintf(`{"edp_js":%d.5e-21,"entry":%d}`, i, i))
		if err := b.Add(key, body); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	c := buildTest(t, 12)
	if c.Len() != 12 {
		t.Fatalf("Len = %d, want 12", c.Len())
	}
	if c.Fingerprint() != testFingerprint() {
		t.Error("fingerprint did not survive the round trip")
	}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("optimize|cap=%d|flavor=hvt|method=m2|obj=edp|dwl=false|alpha=0.5|beta=0.5|w=64", 1<<i)
		body, ok := c.Lookup(key)
		if !ok {
			t.Fatalf("entry %d missing", i)
		}
		want := []byte(fmt.Sprintf(`{"edp_js":%d.5e-21,"entry":%d}`, i, i))
		if !bytes.Equal(body, want) {
			t.Errorf("entry %d body = %s, want %s", i, body, want)
		}
	}
	if _, ok := c.Lookup("optimize|cap=12345"); ok {
		t.Error("lookup of an absent key succeeded")
	}
	keys := c.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("Keys not sorted")
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	// Two builders fed the same entries in different orders must encode the
	// same bytes.
	mk := func(order []int) []byte {
		b := NewBuilder(testFingerprint())
		for _, i := range order {
			if err := b.Add(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("body-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return b.Encode()
	}
	if !bytes.Equal(mk([]int{0, 1, 2, 3}), mk([]int{3, 1, 0, 2})) {
		t.Error("encoding depends on insertion order")
	}
}

func TestBuilderRejectsBadEntries(t *testing.T) {
	b := NewBuilder(testFingerprint())
	if err := b.Add("", []byte("x")); err == nil {
		t.Error("empty key accepted")
	}
	if err := b.Add("k", nil); err == nil {
		t.Error("empty body accepted")
	}
	if err := b.Add("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("k", []byte("y")); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	img := append([]byte(nil), buildTest(t, 4).data...)
	if _, err := Decode(img[:10]); err == nil {
		t.Error("truncated image accepted")
	}
	for _, off := range []int{0, 9, 41, 50, len(img) - 2} {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0xFF
		if _, err := Decode(bad); err == nil {
			t.Errorf("flipping byte %d went undetected", off)
		}
	}
	if _, err := Decode(append(append([]byte(nil), img...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestEmptyCatalog(t *testing.T) {
	c, err := NewBuilder(testFingerprint()).Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Lookup("anything"); ok {
		t.Error("lookup in empty catalog succeeded")
	}
}

func TestWriteFileLoad(t *testing.T) {
	c := buildTest(t, 8)
	path := filepath.Join(t.TempDir(), "catalog.bin")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != c.Fingerprint() || got.Len() != c.Len() {
		t.Errorf("loaded catalog differs: %d entries", got.Len())
	}
	if !bytes.Equal(got.data, c.data) {
		t.Error("loaded image not byte-identical")
	}
	// Overwriting must be atomic-rename clean (no error, new content wins).
	c2 := buildTest(t, 3)
	if err := c2.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 3 {
		t.Errorf("overwritten catalog has %d entries, want 3", got2.Len())
	}
}

// TestWriteFileWorldReadable: the rename must not publish the catalog with
// CreateTemp's private 0600 mode — a catalog built by a deploy user has to
// be readable by the service account that loads it.
func TestWriteFileWorldReadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.bin")
	if err := buildTest(t, 2).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Errorf("catalog file mode = %04o, want 0644", perm)
	}
}

// TestDecodeRejectsStaleVersion pins the format bump: the version byte is
// part of the magic, so a version-2 image (built before the canonical keys
// gained the hybrid-group and column-mux dimensions) must be rejected as a
// whole rather than silently missing every lookup.
func TestDecodeRejectsStaleVersion(t *testing.T) {
	if Version != 3 {
		t.Fatalf("Version = %d; this PR bumped the format to 3 — update the stale-version probe below", Version)
	}
	img := append([]byte(nil), buildTest(t, 4).data...)
	img[7] = Version - 1
	if _, err := Decode(img); err == nil {
		t.Error("version-2 image accepted by a version-3 reader")
	}
	img[7] = Version + 1
	if _, err := Decode(img); err == nil {
		t.Error("future-version image accepted")
	}
}
