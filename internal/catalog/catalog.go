// Package catalog implements the precomputed design-space catalog: a
// versioned, read-only store of canonical serving responses keyed by the
// technology fingerprint of the framework that produced them.
//
// The whole search space of the paper is small — per (capacity, flavor,
// method) roughly 150k points at ~50 ns each — so every standard-grid
// optimum and Pareto front can be precomputed and served at O(1) per
// lookup. A catalog is one flat byte image: a fixed header carrying the
// format version and the 32-byte technology fingerprint, followed by
// length-prefixed (key, body) entries sorted by key, closed by a CRC-32 of
// everything before it. Loading builds a map from key to a subslice of the
// image — no per-entry copies, mmap-friendly — and lookups are a single map
// probe. Encoding is deterministic: the same entries always produce the
// same bytes, so catalog files diff and cache cleanly.
//
// Bodies are opaque bytes. The serving layer stores the exact marshaled
// response it would write on a cache miss, which makes catalog hits
// bit-identical to live fills by construction (DESIGN.md §9).
package catalog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Version is the on-disk format version; it participates in the magic so a
// reader never misparses a future layout. Version 2: response bodies carry
// the branch-and-bound search stats (PrunedBound), so version-1 catalogs
// would no longer be bit-identical to live fills and must be rebuilt.
// Version 3: canonical request keys gained the hybrid-group and column-mux
// dimensions (…|groups=N|mux=M) and response bodies carry Area/PADP, so
// version-2 catalogs would miss every lookup and must be rebuilt.
const Version = 3

// magic opens every catalog file: format name plus version byte.
var magic = [8]byte{'S', 'R', 'A', 'M', 'C', 'A', 'T', Version}

const (
	headerLen  = 8 + 32 + 4 // magic + fingerprint + entry count
	trailerLen = 4          // CRC-32 (IEEE) of everything before it
	// maxEntries bounds decode-time allocation on corrupt or hostile
	// inputs; the real grid is a few dozen entries.
	maxEntries = 1 << 20
)

// Catalog is a loaded, immutable design-space catalog. Safe for concurrent
// use: lookups never mutate state.
type Catalog struct {
	fpr   [32]byte
	data  []byte            // the encoded image; bodies alias into it
	index map[string][]byte // key → body subslice
	keys  []string          // sorted
}

// Builder accumulates entries for encoding into a Catalog.
type Builder struct {
	fpr [32]byte
	m   map[string][]byte
}

// NewBuilder starts an empty catalog for a technology fingerprint.
func NewBuilder(fingerprint [32]byte) *Builder {
	return &Builder{fpr: fingerprint, m: make(map[string][]byte)}
}

// Add stores body under key. Keys must be non-empty and unique; bodies must
// be non-empty (a catalog holds only successful responses).
func (b *Builder) Add(key string, body []byte) error {
	if key == "" {
		return fmt.Errorf("catalog: empty key")
	}
	if len(body) == 0 {
		return fmt.Errorf("catalog: empty body for key %q", key)
	}
	if _, ok := b.m[key]; ok {
		return fmt.Errorf("catalog: duplicate key %q", key)
	}
	b.m[key] = body
	return nil
}

// Len returns the number of entries added so far.
func (b *Builder) Len() int { return len(b.m) }

// Encode serializes the entries into the flat catalog image. Deterministic:
// entries are written in sorted key order.
func (b *Builder) Encode() []byte {
	keys := make([]string, 0, len(b.m))
	size := headerLen + trailerLen
	for k, v := range b.m {
		keys = append(keys, k)
		size += 8 + len(k) + len(v)
	}
	sort.Strings(keys)

	buf := make([]byte, 0, size)
	buf = append(buf, magic[:]...)
	buf = append(buf, b.fpr[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		v := b.m[k]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, k...)
		buf = append(buf, v...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// Build encodes the entries and loads them back as a Catalog, sharing no
// state with the Builder.
func (b *Builder) Build() (*Catalog, error) { return Decode(b.Encode()) }

// Decode parses a catalog image. The image is retained: entry bodies alias
// into it, so the caller must not mutate data afterwards.
func Decode(data []byte) (*Catalog, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("catalog: image truncated (%d bytes)", len(data))
	}
	if string(data[:8]) != string(magic[:]) {
		return nil, fmt.Errorf("catalog: bad magic %q (format version mismatch?)", data[:8])
	}
	payload, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("catalog: checksum mismatch (file %08x, computed %08x)", got, want)
	}
	c := &Catalog{data: data}
	copy(c.fpr[:], data[8:40])
	count := binary.LittleEndian.Uint32(data[40:44])
	if count > maxEntries {
		return nil, fmt.Errorf("catalog: implausible entry count %d", count)
	}
	c.index = make(map[string][]byte, count)
	c.keys = make([]string, 0, count)
	off := headerLen
	for i := uint32(0); i < count; i++ {
		if off+8 > len(payload) {
			return nil, fmt.Errorf("catalog: entry %d header past end of image", i)
		}
		kLen := int(binary.LittleEndian.Uint32(payload[off : off+4]))
		vLen := int(binary.LittleEndian.Uint32(payload[off+4 : off+8]))
		off += 8
		if kLen <= 0 || vLen <= 0 || off+kLen+vLen > len(payload) {
			return nil, fmt.Errorf("catalog: entry %d (%d+%d bytes) past end of image", i, kLen, vLen)
		}
		key := string(payload[off : off+kLen])
		if _, dup := c.index[key]; dup {
			return nil, fmt.Errorf("catalog: duplicate key %q", key)
		}
		c.index[key] = payload[off+kLen : off+kLen+vLen : off+kLen+vLen]
		c.keys = append(c.keys, key)
		off += kLen + vLen
	}
	if off != len(payload) {
		return nil, fmt.Errorf("catalog: %d trailing bytes after last entry", len(payload)-off)
	}
	sort.Strings(c.keys)
	return c, nil
}

// Load reads and decodes the catalog at path.
func Load(path string) (*Catalog, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// WriteFile persists the catalog image atomically: it writes a temporary
// file in the destination directory and renames it over path, so readers
// never observe a torn catalog.
func (c *Catalog) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(c.data); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp opens 0600; a catalog is a shared artifact (built by a
	// deploy step, read by the service account), so open it up before the
	// rename publishes it.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Fingerprint returns the technology fingerprint the catalog was built for.
func (c *Catalog) Fingerprint() [32]byte { return c.fpr }

// Len returns the number of entries.
func (c *Catalog) Len() int { return len(c.index) }

// Size returns the encoded image size in bytes.
func (c *Catalog) Size() int { return len(c.data) }

// Keys returns the entry keys in sorted order. The caller must not mutate
// the returned slice.
func (c *Catalog) Keys() []string { return c.keys }

// Lookup returns the stored body for key. The returned bytes alias the
// catalog image and must not be mutated.
func (c *Catalog) Lookup(key string) ([]byte, bool) {
	body, ok := c.index[key]
	return body, ok
}
