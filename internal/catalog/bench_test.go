package catalog

import (
	"fmt"
	"testing"
)

// BenchmarkCatalogLookup measures the catalog-backed serving hot path: one
// key lookup against a realistic grid-sized catalog. The acceptance budget
// is ≤ 1 µs/op; a map probe over interned subslices is ~50 ns.
func BenchmarkCatalogLookup(b *testing.B) {
	bld := NewBuilder(testFingerprint())
	var keys []string
	for cap := 1024; cap <= 16384; cap *= 2 {
		for _, flavor := range []string{"lvt", "hvt"} {
			for _, method := range []string{"m1", "m2"} {
				for _, obj := range []string{"edp", "delay", "energy"} {
					key := fmt.Sprintf("optimize|cap=%d|flavor=%s|method=%s|obj=%s|dwl=false|alpha=0.5|beta=0.5|w=64",
						cap, flavor, method, obj)
					if err := bld.Add(key, []byte(`{"edp_js":1.4e-21,"delay_s":2.5e-10}`)); err != nil {
						b.Fatal(err)
					}
					keys = append(keys, key)
				}
			}
		}
	}
	c, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup(keys[i%len(keys)]); !ok {
			b.Fatal("lookup missed")
		}
	}
}
