package device

import (
	"math"
	"testing"
)

func TestCornerShiftsStrength(t *testing.T) {
	lib := Default7nm()
	tt := lib.NHVT
	ss := tt.AtCorner(SS)
	ff := tt.AtCorner(FF)
	if !(ss.ION() < tt.ION() && tt.ION() < ff.ION()) {
		t.Errorf("ION ordering SS < TT < FF violated: %g %g %g", ss.ION(), tt.ION(), ff.ION())
	}
	if !(ss.IOFF() < tt.IOFF() && tt.IOFF() < ff.IOFF()) {
		t.Errorf("IOFF ordering SS < TT < FF violated")
	}
}

func TestSkewedCorners(t *testing.T) {
	lib := Default7nm()
	sf := lib.AtCorner(SF)
	fs := lib.AtCorner(FS)
	// SF: slow N, fast P.
	if !(sf.NLVT.ION() < lib.NLVT.ION()) || !(sf.PLVT.ION() > lib.PLVT.ION()) {
		t.Error("SF corner must slow NFETs and speed PFETs")
	}
	// FS: fast N, slow P.
	if !(fs.NLVT.ION() > lib.NLVT.ION()) || !(fs.PLVT.ION() < lib.PLVT.ION()) {
		t.Error("FS corner must speed NFETs and slow PFETs")
	}
}

func TestTTCornerIdentity(t *testing.T) {
	lib := Default7nm()
	if lib.AtCorner(TT) != lib {
		t.Error("TT corner must return the same library")
	}
	if lib.NLVT.AtCorner(TT) != lib.NLVT {
		t.Error("TT corner must return the same model")
	}
}

func TestCornerStringAndList(t *testing.T) {
	want := map[Corner]string{TT: "TT", SS: "SS", FF: "FF", SF: "SF", FS: "FS"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("corner %d string %q", c, c.String())
		}
	}
	if Corner(42).String() == "" {
		t.Error("unknown corner string empty")
	}
	if len(Corners()) != 5 || Corners()[0] != TT {
		t.Errorf("Corners() = %v", Corners())
	}
}

func TestTemperatureLeakageGrowsExponentially(t *testing.T) {
	m := Default7nm().NHVT
	cold := m.AtTemperature(233) // -40 C
	hot := m.AtTemperature(398)  // 125 C
	if !(cold.IOFF() < m.IOFF() && m.IOFF() < hot.IOFF()) {
		t.Fatalf("IOFF ordering with temperature violated: %g %g %g", cold.IOFF(), m.IOFF(), hot.IOFF())
	}
	// Subthreshold leakage should grow by well over an order of magnitude
	// from -40 C to 125 C.
	if ratio := hot.IOFF() / cold.IOFF(); ratio < 10 {
		t.Errorf("IOFF(125C)/IOFF(-40C) = %.1f, want ≥10", ratio)
	}
}

func TestTemperatureIONNearZTC(t *testing.T) {
	// Near-threshold FinFETs sit close to the zero-temperature-coefficient
	// point: ION must move much less than IOFF.
	m := Default7nm().NLVT
	hot := m.AtTemperature(398)
	ionChange := math.Abs(hot.ION()-m.ION()) / m.ION()
	ioffChange := math.Abs(hot.IOFF()-m.IOFF()) / m.IOFF()
	if ionChange > 0.4 {
		t.Errorf("ION changed %.0f%% over 98 K, want <40%% (near-ZTC)", ionChange*100)
	}
	if ioffChange < 2*ionChange {
		t.Errorf("IOFF (%.0f%%) should move far more than ION (%.0f%%)", ioffChange*100, ionChange*100)
	}
}

func TestTemperatureIdentityAndValidation(t *testing.T) {
	m := Default7nm().NLVT
	if m.AtTemperature(Troom) != m {
		t.Error("Troom must return the same model")
	}
	lib := Default7nm()
	if lib.AtTemperature(Troom) != lib {
		t.Error("Troom must return the same library")
	}
	hot := lib.AtTemperature(350)
	if hot == lib || hot.NLVT == lib.NLVT {
		t.Error("non-room temperature must return adjusted copies")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive temperature must panic")
		}
	}()
	m.AtTemperature(0)
}

func TestCornerDoesNotMutateOriginal(t *testing.T) {
	lib := Default7nm()
	vt := lib.NLVT.Vt0
	_ = lib.AtCorner(SS)
	_ = lib.AtTemperature(398)
	if lib.NLVT.Vt0 != vt {
		t.Error("corner/temperature derivation mutated the shared library")
	}
}
