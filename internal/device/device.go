// Package device implements a compact model for the 7 nm FinFET devices used
// by the paper's SRAM cells and peripheral circuits.
//
// The model is a smoothed EKV-style I-V: an exponential subthreshold region
// blending into a power-law (velocity-saturated) strong-inversion region with
// exponent alpha ≈ 1.3, matching the read-current law the paper fitted to its
// SPICE library (I_read = b·(V_DDC − V_SSC − V_t)^1.3). Widths are quantized
// in fins, as FinFETs require.
//
// Each flavor (LVT/HVT) and polarity (N/P) is numerically calibrated so that
// ION, IOFF and the ION/IOFF ratio reproduce the relations the paper states
// for its library: HVT has 2× lower ION, 20× lower IOFF and 10× higher
// ON/OFF ratio than LVT at the nominal 450 mV supply.
package device

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"sramco/internal/num"
)

// Thermal voltage kT/q at 300 K, in volts.
const PhiT = 0.025852

// Vdd is the nominal supply voltage of the 7 nm library, in volts.
const Vdd = 0.450

// Polarity distinguishes n-channel from p-channel FinFETs.
type Polarity int

const (
	NFET Polarity = iota
	PFET
)

func (p Polarity) String() string {
	if p == PFET {
		return "PFET"
	}
	return "NFET"
}

// Flavor is the threshold-voltage flavor of a device.
type Flavor int

const (
	LVT Flavor = iota // low threshold voltage: fast, leaky
	HVT               // high threshold voltage: slow, very low leakage
)

func (f Flavor) String() string {
	if f == HVT {
		return "HVT"
	}
	return "LVT"
}

// Other returns the complementary flavor — the alternate a hybrid
// (per-row-group) organization assigns to the regions its group mask selects.
func (f Flavor) Other() Flavor {
	if f == LVT {
		return HVT
	}
	return LVT
}

// ParseFlavor parses a flavor name ("lvt" or "hvt", case-insensitive) — the
// inverse of String. It is the single parser shared by the CLIs and the
// serving layer, so the canonical string forms used in cache keys cannot
// drift between entry points.
func ParseFlavor(s string) (Flavor, error) {
	switch {
	case strings.EqualFold(s, "lvt"):
		return LVT, nil
	case strings.EqualFold(s, "hvt"):
		return HVT, nil
	}
	return 0, fmt.Errorf("device: unknown flavor %q (want lvt or hvt)", s)
}

// Params holds the compact-model parameters of one device type (single fin).
type Params struct {
	Polarity Polarity
	Flavor   Flavor

	Vt0    float64 // threshold voltage at Vds = 0 (V), magnitude
	N      float64 // subthreshold ideality factor
	Alpha  float64 // strong-inversion current exponent (velocity saturation)
	I0     float64 // current scale per fin (A / V^Alpha)
	DIBL   float64 // drain-induced barrier lowering (V/V); small for FinFETs
	Lambda float64 // channel-length modulation (1/V)
	VsatK  float64 // fraction of overdrive that sets the saturation voltage

	CgFin float64 // gate capacitance per fin (F)
	CdFin float64 // drain/source junction capacitance per fin (F)
}

// Model is a calibrated device type. It is immutable after construction.
type Model struct {
	Params
}

// ids computes the per-fin drain current for vds ≥ 0 with a threshold shift
// dvt (positive dvt raises the threshold).
func (m *Model) ids(vgs, vds, dvt float64) float64 {
	vt := m.Vt0 + dvt - m.DIBL*vds
	nphit := m.N * PhiT
	x := (vgs - vt) / nphit
	// Smooth overdrive: n·φt·ln(1+e^x), guarded against overflow.
	var veff float64
	switch {
	case x > 40:
		veff = nphit * x
	case x < -40:
		veff = nphit * math.Exp(x)
	default:
		veff = nphit * math.Log1p(math.Exp(x))
	}
	if veff <= 0 {
		return 0
	}
	vdsat := m.VsatK*veff + 2*PhiT
	fsat := math.Tanh(vds / vdsat)
	return m.I0 * math.Pow(veff, m.Alpha) * fsat * (1 + m.Lambda*vds)
}

// Ids returns the per-fin drain current (A) as a function of gate-source and
// drain-source voltage, for the device's own polarity convention:
//
//   - NFET: current flows into the drain when vgs > Vt and vds > 0.
//   - PFET: pass the same node voltages; the model mirrors internally, and a
//     negative value means current flows out of the drain (source→drain
//     conduction), the usual SPICE sign convention.
//
// Negative vds (NFET) is handled by source/drain exchange, keeping the model
// symmetric as required for pass-gates.
func (m *Model) Ids(vgs, vds float64) float64 { return m.IdsShift(vgs, vds, 0) }

// IdsShift is Ids with an additional threshold-voltage shift dvt (used for
// Monte Carlo variation analysis). Positive dvt makes the device weaker for
// both polarities.
func (m *Model) IdsShift(vgs, vds, dvt float64) float64 {
	if m.Polarity == PFET {
		// Mirror into NFET coordinates.
		return -m.idsSym(-vgs, -vds, dvt)
	}
	return m.idsSym(vgs, vds, dvt)
}

// idsSym handles drain/source exchange for negative vds.
func (m *Model) idsSym(vgs, vds, dvt float64) float64 {
	if vds < 0 {
		return -m.ids(vgs-vds, -vds, dvt)
	}
	return m.ids(vgs, vds, dvt)
}

// ION returns the per-fin on current at |vgs| = |vds| = Vdd.
func (m *Model) ION() float64 { return math.Abs(m.IdsShift(m.sign()*Vdd, m.sign()*Vdd, 0)) }

// IOFF returns the per-fin off current at vgs = 0, |vds| = Vdd.
func (m *Model) IOFF() float64 { return math.Abs(m.IdsShift(0, m.sign()*Vdd, 0)) }

// OnOffRatio returns ION/IOFF.
func (m *Model) OnOffRatio() float64 { return m.ION() / m.IOFF() }

func (m *Model) sign() float64 {
	if m.Polarity == PFET {
		return -1
	}
	return 1
}

// SubthresholdSwing returns the modeled subthreshold swing in V/decade,
// measured between IOFF and 10×IOFF.
func (m *Model) SubthresholdSwing() float64 {
	s := m.sign()
	target := m.IOFF() * 10
	v, err := num.Brent(func(vg float64) float64 {
		return math.Abs(m.IdsShift(s*vg, s*Vdd, 0)) - target
	}, 0, m.Vt0, 1e-7)
	if err != nil {
		return math.NaN()
	}
	return v
}

// String identifies the device type.
func (m *Model) String() string {
	return fmt.Sprintf("%s-%s(Vt0=%.0fmV)", m.Flavor, m.Polarity, m.Vt0*1e3)
}

// Library is a calibrated set of the four device types of the 7 nm process.
type Library struct {
	NLVT, NHVT, PLVT, PHVT *Model
}

// Model returns the library model for the given polarity and flavor.
func (l *Library) Model(p Polarity, f Flavor) *Model {
	switch {
	case p == NFET && f == LVT:
		return l.NLVT
	case p == NFET && f == HVT:
		return l.NHVT
	case p == PFET && f == LVT:
		return l.PLVT
	default:
		return l.PHVT
	}
}

// Calibration targets for the default 7 nm library. The absolute ION scale is
// anchored so that the simulated HVT cell read current tracks the paper's
// fitted law I_read = 9.5e-5·(V_DDC−V_SSC−0.335)^1.3; the relative relations
// (HVT = LVT/2 ION, LVT/20 IOFF) are the paper's stated library properties.
const (
	targetIONnLVT  = 23.5e-6  // A/fin
	targetIOFFnLVT = 1.25e-9  // A/fin
	targetIONnHVT  = 11.75e-6 // = LVT/2
	targetIOFFnHVT = 62.5e-12 // = LVT/20
	pfetIONRatio   = 0.85     // PFET ION relative to NFET (FinFETs are nearly balanced)
	pfetIOFFRatio  = 0.85
)

// Default per-fin capacitances (F). Grounded in ITRS-class numbers for a
// short 7 nm fin; calibrated so the array model reproduces the paper's
// delay structure (bitline-dominated read path, Fig. 7(d)).
const (
	defaultCgFin = 0.035e-15
	defaultCdFin = 0.020e-15
)

var (
	defaultOnce sync.Once
	defaultLib  *Library
)

// Default7nm returns the calibrated default 7 nm FinFET library. The library
// is built once and shared; models are immutable.
func Default7nm() *Library {
	defaultOnce.Do(func() {
		defaultLib = &Library{
			NLVT: mustCalibrate(baseParams(NFET, LVT), targetIONnLVT, targetIOFFnLVT),
			NHVT: mustCalibrate(baseParams(NFET, HVT), targetIONnHVT, targetIOFFnHVT),
			PLVT: mustCalibrate(baseParams(PFET, LVT), targetIONnLVT*pfetIONRatio, targetIOFFnLVT*pfetIOFFRatio),
			PHVT: mustCalibrate(baseParams(PFET, HVT), targetIONnHVT*pfetIONRatio, targetIOFFnHVT*pfetIOFFRatio),
		}
	})
	return defaultLib
}

func baseParams(p Polarity, f Flavor) Params {
	return Params{
		Polarity: p,
		Flavor:   f,
		N:        1.42, // with Alpha=1.3 this yields ~65 mV/dec effective swing
		Alpha:    1.3,
		DIBL:     0.020, // FinFETs: negligible DIBL (paper §1)
		Lambda:   0.05,
		VsatK:    0.55,
		CgFin:    defaultCgFin,
		CdFin:    defaultCdFin,
	}
}

// Calibrate solves for (Vt0, I0) such that the model hits the given per-fin
// ION and IOFF at the nominal supply. It returns an error when the targets
// are unreachable within the threshold search window.
func Calibrate(base Params, ion, ioff float64) (*Model, error) {
	if ion <= 0 || ioff <= 0 || ioff >= ion {
		return nil, fmt.Errorf("device: invalid calibration targets ION=%g IOFF=%g", ion, ioff)
	}
	probe := &Model{Params: base}
	probe.I0 = 1
	// With I0 = 1, Ids scales linearly in I0, so the ON/OFF ratio depends on
	// Vt0 alone. Solve ratio(Vt0) = ion/ioff, then set the scale.
	wantRatio := ion / ioff
	ratioErr := func(vt float64) float64 {
		probe.Vt0 = vt
		gOn := math.Abs(probe.IdsShift(probe.sign()*Vdd, probe.sign()*Vdd, 0))
		gOff := math.Abs(probe.IdsShift(0, probe.sign()*Vdd, 0))
		return math.Log(gOn/gOff) - math.Log(wantRatio)
	}
	vt, err := num.Brent(ratioErr, 0.03, 0.44, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("device: calibration failed for %s-%s: %w", base.Flavor, base.Polarity, err)
	}
	probe.Vt0 = vt
	gOn := math.Abs(probe.IdsShift(probe.sign()*Vdd, probe.sign()*Vdd, 0))
	out := base
	out.Vt0 = vt
	out.I0 = ion / gOn
	return &Model{Params: out}, nil
}

func mustCalibrate(base Params, ion, ioff float64) *Model {
	m, err := Calibrate(base, ion, ioff)
	if err != nil {
		panic(err)
	}
	return m
}
