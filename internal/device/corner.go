package device

import (
	"fmt"
	"math"
)

// Process corners. Single-fin SRAM transistors see both global (corner) and
// local (Monte Carlo) variation; corners shift every device of a polarity
// together, which is how foundry sign-off models them.
type Corner int

const (
	TT Corner = iota // typical N / typical P
	SS               // slow N / slow P
	FF               // fast N / fast P
	SF               // slow N / fast P (worst write)
	FS               // fast N / slow P (worst read stability)
)

func (c Corner) String() string {
	switch c {
	case TT:
		return "TT"
	case SS:
		return "SS"
	case FF:
		return "FF"
	case SF:
		return "SF"
	case FS:
		return "FS"
	default:
		return fmt.Sprintf("Corner(%d)", int(c))
	}
}

// Corners returns all five corners, typical first.
func Corners() []Corner { return []Corner{TT, SS, FF, SF, FS} }

// CornerVtShift is the global threshold shift magnitude of a slow/fast
// corner (V): a 3σ global-variation budget for single-fin 7 nm devices.
const CornerVtShift = 0.030

// shifts returns the (n, p) threshold shifts of a corner. Positive shifts
// slow a device down for either polarity (the model applies the magnitude
// with the correct sign internally).
func (c Corner) shifts() (n, p float64) {
	switch c {
	case SS:
		return CornerVtShift, CornerVtShift
	case FF:
		return -CornerVtShift, -CornerVtShift
	case SF:
		return CornerVtShift, -CornerVtShift
	case FS:
		return -CornerVtShift, CornerVtShift
	default:
		return 0, 0
	}
}

// AtCorner returns a copy of the model with the corner's global threshold
// shift applied. TT returns the receiver unchanged.
func (m *Model) AtCorner(c Corner) *Model {
	ns, ps := c.shifts()
	shift := ns
	if m.Polarity == PFET {
		shift = ps
	}
	if shift == 0 {
		return m
	}
	p := m.Params
	p.Vt0 += shift
	return &Model{Params: p}
}

// AtCorner returns a library with every model shifted to the corner.
func (l *Library) AtCorner(c Corner) *Library {
	if c == TT {
		return l
	}
	return &Library{
		NLVT: l.NLVT.AtCorner(c),
		NHVT: l.NHVT.AtCorner(c),
		PLVT: l.PLVT.AtCorner(c),
		PHVT: l.PHVT.AtCorner(c),
	}
}

// Temperature behavior. The base models are calibrated at Troom = 300 K;
// AtTemperature rescales the thermal voltage, threshold and mobility with
// standard coefficients. Near-threshold FinFETs operate close to the
// zero-temperature-coefficient point: ION moves little with temperature
// while IOFF rises exponentially.
const (
	Troom = 300.0 // K, calibration temperature

	// tcVt is the threshold temperature coefficient (V/K, Vt falls as T
	// rises).
	tcVt = 0.0006
	// mobilityExp is the phonon-scattering mobility exponent:
	// µ(T) = µ(300)·(300/T)^mobilityExp.
	mobilityExp = 1.3
)

// AtTemperature returns a copy of the model adjusted to temperature tK
// (kelvin). It panics on non-positive temperatures.
func (m *Model) AtTemperature(tK float64) *Model {
	if tK <= 0 {
		panic(fmt.Sprintf("device: non-physical temperature %g K", tK))
	}
	if tK == Troom {
		return m
	}
	p := m.Params
	p.Vt0 -= tcVt * (tK - Troom)
	p.I0 *= math.Pow(Troom/tK, mobilityExp)
	// The subthreshold slope scales with kT/q: fold the thermal-voltage
	// ratio into the ideality factor so the shared PhiT constant stays
	// valid.
	p.N *= tK / Troom
	return &Model{Params: p}
}

// AtTemperature returns a library with every model adjusted to tK.
func (l *Library) AtTemperature(tK float64) *Library {
	if tK == Troom {
		return l
	}
	return &Library{
		NLVT: l.NLVT.AtTemperature(tK),
		NHVT: l.NHVT.AtTemperature(tK),
		PLVT: l.PLVT.AtTemperature(tK),
		PHVT: l.PHVT.AtTemperature(tK),
	}
}
