package device

import (
	"math"
	"testing"
	"testing/quick"
)

func relErr(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

func TestCalibrationHitsTargets(t *testing.T) {
	lib := Default7nm()
	cases := []struct {
		name      string
		m         *Model
		ion, ioff float64
	}{
		{"NLVT", lib.NLVT, targetIONnLVT, targetIOFFnLVT},
		{"NHVT", lib.NHVT, targetIONnHVT, targetIOFFnHVT},
		{"PLVT", lib.PLVT, targetIONnLVT * pfetIONRatio, targetIOFFnLVT * pfetIOFFRatio},
		{"PHVT", lib.PHVT, targetIONnHVT * pfetIONRatio, targetIOFFnHVT * pfetIOFFRatio},
	}
	for _, c := range cases {
		if e := relErr(c.m.ION(), c.ion); e > 1e-6 {
			t.Errorf("%s ION = %g, want %g (rel err %g)", c.name, c.m.ION(), c.ion, e)
		}
		if e := relErr(c.m.IOFF(), c.ioff); e > 1e-6 {
			t.Errorf("%s IOFF = %g, want %g (rel err %g)", c.name, c.m.IOFF(), c.ioff, e)
		}
	}
}

// TestPaperLibraryRelations checks the three relations the paper states for
// its 7 nm library: HVT has 2× lower ION, 20× lower IOFF, 10× higher ON/OFF.
func TestPaperLibraryRelations(t *testing.T) {
	lib := Default7nm()
	if r := lib.NLVT.ION() / lib.NHVT.ION(); relErr(r, 2) > 1e-6 {
		t.Errorf("ION LVT/HVT = %g, want 2", r)
	}
	if r := lib.NLVT.IOFF() / lib.NHVT.IOFF(); relErr(r, 20) > 1e-6 {
		t.Errorf("IOFF LVT/HVT = %g, want 20", r)
	}
	if r := lib.NHVT.OnOffRatio() / lib.NLVT.OnOffRatio(); relErr(r, 10) > 1e-6 {
		t.Errorf("on/off ratio HVT/LVT = %g, want 10", r)
	}
}

func TestThresholdOrdering(t *testing.T) {
	lib := Default7nm()
	if !(lib.NHVT.Vt0 > lib.NLVT.Vt0) {
		t.Errorf("HVT Vt0 (%g) must exceed LVT Vt0 (%g)", lib.NHVT.Vt0, lib.NLVT.Vt0)
	}
	// The calibrated HVT threshold should land near the paper's fitted
	// 335 mV (the fit lumps the series read path, so allow a window).
	if lib.NHVT.Vt0 < 0.25 || lib.NHVT.Vt0 > 0.42 {
		t.Errorf("HVT Vt0 = %g, expected within [0.25, 0.42]", lib.NHVT.Vt0)
	}
}

func TestSubthresholdSwing(t *testing.T) {
	lib := Default7nm()
	ss := lib.NLVT.SubthresholdSwing()
	if math.IsNaN(ss) {
		t.Fatal("SubthresholdSwing returned NaN")
	}
	if ss < 0.055 || ss > 0.080 {
		t.Errorf("subthreshold swing = %.1f mV/dec, want 55-80 (FinFET-class)", ss*1e3)
	}
}

func TestIdsZeroAtVdsZero(t *testing.T) {
	lib := Default7nm()
	for _, m := range []*Model{lib.NLVT, lib.NHVT, lib.PLVT, lib.PHVT} {
		if got := m.Ids(0.45, 0); got != 0 {
			t.Errorf("%v: Ids(0.45, 0) = %g, want 0", m, got)
		}
	}
}

func TestIdsSourceDrainSymmetry(t *testing.T) {
	m := Default7nm().NLVT
	// Swapping source and drain must negate the current when the gate
	// voltage is re-referenced to the new source.
	vg, vd, vs := 0.45, 0.10, 0.30
	fwd := m.Ids(vg-vs, vd-vs)
	rev := m.Ids(vg-vd, vs-vd)
	if math.Abs(fwd+rev) > 1e-12*math.Max(math.Abs(fwd), 1) {
		t.Errorf("symmetry violated: fwd=%g rev=%g", fwd, rev)
	}
}

func TestPFETMirror(t *testing.T) {
	lib := Default7nm()
	// A PFET with source at Vdd and gate at 0 is on and conducts from
	// source to drain: Ids (into drain) must be negative.
	i := lib.PLVT.Ids(-Vdd, -Vdd)
	if i >= 0 {
		t.Errorf("on PFET Ids = %g, want negative", i)
	}
	if relErr(math.Abs(i), lib.PLVT.ION()) > 1e-9 {
		t.Errorf("|Ids| = %g disagrees with ION() = %g", math.Abs(i), lib.PLVT.ION())
	}
}

// TestIdsMonotone is a property test: drain current must be nondecreasing in
// vgs and in vds (for vds ≥ 0), which the Newton solver relies on.
func TestIdsMonotone(t *testing.T) {
	m := Default7nm().NHVT
	prop := func(a, b, c, d float64) bool {
		vgs1 := math.Mod(math.Abs(a), 0.7)
		vgs2 := math.Mod(math.Abs(b), 0.7)
		if vgs1 > vgs2 {
			vgs1, vgs2 = vgs2, vgs1
		}
		vds1 := math.Mod(math.Abs(c), 0.7)
		vds2 := math.Mod(math.Abs(d), 0.7)
		if vds1 > vds2 {
			vds1, vds2 = vds2, vds1
		}
		if m.Ids(vgs1, vds1) > m.Ids(vgs2, vds1)+1e-15 {
			return false
		}
		return m.Ids(vgs1, vds1) <= m.Ids(vgs1, vds2)+1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIdsShiftWeakens(t *testing.T) {
	lib := Default7nm()
	for _, m := range []*Model{lib.NLVT, lib.PLVT} {
		s := m.sign()
		base := math.Abs(m.IdsShift(s*Vdd, s*Vdd, 0))
		weak := math.Abs(m.IdsShift(s*Vdd, s*Vdd, 0.05))
		if weak >= base {
			t.Errorf("%v: +50mV Vt shift should weaken device: %g vs %g", m, weak, base)
		}
	}
}

func TestCalibrateRejectsBadTargets(t *testing.T) {
	base := baseParams(NFET, LVT)
	if _, err := Calibrate(base, -1, 1e-9); err == nil {
		t.Error("expected error for negative ION")
	}
	if _, err := Calibrate(base, 1e-6, 2e-6); err == nil {
		t.Error("expected error for IOFF > ION")
	}
	if _, err := Calibrate(base, 1e-6, 0); err == nil {
		t.Error("expected error for zero IOFF")
	}
}

func TestLibraryModelLookup(t *testing.T) {
	lib := Default7nm()
	if lib.Model(NFET, LVT) != lib.NLVT || lib.Model(NFET, HVT) != lib.NHVT ||
		lib.Model(PFET, LVT) != lib.PLVT || lib.Model(PFET, HVT) != lib.PHVT {
		t.Error("Model lookup mismatch")
	}
}

func TestStringers(t *testing.T) {
	if NFET.String() != "NFET" || PFET.String() != "PFET" {
		t.Error("Polarity.String mismatch")
	}
	if LVT.String() != "LVT" || HVT.String() != "HVT" {
		t.Error("Flavor.String mismatch")
	}
	if s := Default7nm().NHVT.String(); s == "" {
		t.Error("empty Model.String")
	}
}
