package num

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %g", s.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("Std = %g", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %g/%g", s.Min, s.Max)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Fatalf("Median = %g", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.Std != 0 || s.Median != 3.5 {
		t.Fatalf("bad single-sample summary: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %g, want 2", g)
	}
	if g := GeoMean([]float64{8}); math.Abs(g-8) > 1e-12 {
		t.Fatalf("GeoMean = %g, want 8", g)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}
