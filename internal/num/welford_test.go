package num

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelfordMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 257)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*0.03 + 0.2
		w.Add(xs[i], 1)
	}
	s := Summarize(xs)
	if math.Abs(w.Mean()-s.Mean) > 1e-12 {
		t.Errorf("mean %g vs %g", w.Mean(), s.Mean)
	}
	if math.Abs(w.Std()-s.Std) > 1e-12 {
		t.Errorf("std %g vs %g", w.Std(), s.Std)
	}
	if w.MinV != s.Min || w.MaxV != s.Max {
		t.Errorf("min/max %g/%g vs %g/%g", w.MinV, w.MaxV, s.Min, s.Max)
	}
	if math.Abs(w.ESS()-float64(len(xs))) > 1e-9 {
		t.Errorf("ESS %g, want %d for unit weights", w.ESS(), len(xs))
	}
}

// TestWelfordMergeInOrderDeterministic proves block-wise accumulation merged
// in a fixed block order agrees with the sequential accumulator to rounding
// error and — the property the Monte Carlo streaming reducer depends on —
// that the same merge order reproduces identical bits every time.
func TestWelfordMergeInOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const blocks, per = 9, 17
	var seq Welford
	parts := make([]Welford, blocks)
	for b := 0; b < blocks; b++ {
		for j := 0; j < per; j++ {
			x := rng.NormFloat64()
			w := 0.5 + rng.Float64()
			seq.Add(x, w)
			parts[b].Add(x, w)
		}
	}
	var merged Welford
	for b := 0; b < blocks; b++ {
		merged.Merge(parts[b])
	}
	if merged.Count != seq.Count {
		t.Fatalf("counts differ: %+v vs %+v", merged, seq)
	}
	if math.Abs(merged.Mean()-seq.Mean()) > 1e-12 || math.Abs(merged.Var()-seq.Var()) > 1e-12 {
		t.Errorf("moments differ: mean %g vs %g, var %g vs %g",
			merged.Mean(), seq.Mean(), merged.Var(), seq.Var())
	}
	// And the merge order is reproducible: merging again gives identical bits.
	var again Welford
	for b := 0; b < blocks; b++ {
		again.Merge(parts[b])
	}
	if again != merged {
		t.Error("in-order merge is not bit-reproducible")
	}
}

func TestWelfordWeighted(t *testing.T) {
	// A weight-2 observation must equal two unit observations for the mean
	// (frequency view) while ESS drops below the raw count.
	var a, b Welford
	a.Add(1, 2)
	a.Add(4, 1)
	b.Add(1, 1)
	b.Add(1, 1)
	b.Add(4, 1)
	if math.Abs(a.Mean()-b.Mean()) > 1e-15 {
		t.Errorf("weighted mean %g vs unit-weight %g", a.Mean(), b.Mean())
	}
	if a.ESS() >= 3 {
		t.Errorf("ESS %g should be < 3 under unequal weights", a.ESS())
	}
}

func TestInvNormCDF(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.15865525393145707, -1},
		{0.9986501019683699, 3},
		{1.3498980316300933e-03, -3},
		{0.975, 1.959963984540054},
	}
	for _, c := range cases {
		if got := InvNormCDF(c.p); math.Abs(got-c.z) > 1e-9 {
			t.Errorf("InvNormCDF(%g) = %g, want %g", c.p, got, c.z)
		}
	}
	// Round trip across the domain, including the far tails.
	for _, p := range []float64{1e-12, 1e-6, 0.02, 0.3, 0.7, 0.98, 1 - 1e-6} {
		z := InvNormCDF(p)
		back := 0.5 * math.Erfc(-z/math.Sqrt2)
		if math.Abs(back-p) > 1e-12*math.Max(1, p/1e-12) && math.Abs(back-p)/p > 1e-9 {
			t.Errorf("Φ(Φ⁻¹(%g)) = %g", p, back)
		}
	}
	if !math.IsInf(InvNormCDF(0), -1) || !math.IsInf(InvNormCDF(1), 1) {
		t.Error("endpoints must map to ∓Inf")
	}
	if !math.IsNaN(InvNormCDF(-0.1)) || !math.IsNaN(InvNormCDF(1.1)) || !math.IsNaN(InvNormCDF(math.NaN())) {
		t.Error("out-of-domain p must map to NaN")
	}
}

func TestMuMinusKSigmaCI(t *testing.T) {
	var w Welford
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		w.Add(rng.NormFloat64(), 1)
	}
	half := w.MuMinusKSigmaCI(3, 1.96)
	// σ≈1, n=4000: half ≈ 1.96·sqrt(5.5/4000) ≈ 0.0727.
	want := 1.96 * w.Std() * math.Sqrt(5.5/w.ESS())
	if math.Abs(half-want) > 1e-12 {
		t.Errorf("CI half-width %g, want %g", half, want)
	}
	var empty Welford
	if !math.IsInf(empty.MuMinusKSigmaCI(3, 1.96), 1) {
		t.Error("empty accumulator must report an infinite CI")
	}
}

func TestWilsonCI(t *testing.T) {
	lo, hi := WilsonCI(0, 100, 1.96)
	if lo != 0 || hi <= 0 || hi > 0.1 {
		t.Errorf("Wilson at p=0: [%g, %g]", lo, hi)
	}
	lo, hi = WilsonCI(0.5, 100, 1.96)
	if math.Abs((lo+hi)/2-0.5) > 0.01 || hi-lo > 0.25 {
		t.Errorf("Wilson at p=0.5: [%g, %g]", lo, hi)
	}
	if lo, hi = WilsonCI(0.5, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("Wilson with no trials: [%g, %g]", lo, hi)
	}
}
