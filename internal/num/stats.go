package num

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("num: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already sorted sample
// using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("num: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// GeoMean returns the geometric mean of positive samples.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("num: GeoMean of empty sample")
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
