package num

import (
	"math"
	"testing"
)

// TestSobolFirstPoints pins the unscrambled sequence against the classical
// Sobol' values: after the origin point, coordinates walk the dyadic net
// {0.5, 0.75, 0.25, ...} in every dimension.
func TestSobolFirstPoints(t *testing.T) {
	s, err := NewSobol(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, 6)
	// Point 0 is the (half-ulp offset) origin.
	s.At(0, u)
	for d, v := range u {
		if math.Abs(v-0.5/(1<<32)) > 1e-18 {
			t.Errorf("point 0 dim %d = %g", d, v)
		}
	}
	s.At(1, u)
	for d, v := range u {
		if math.Abs(v-0.5) > 1e-9 {
			t.Errorf("point 1 dim %d = %g, want 0.5", d, v)
		}
	}
	s.At(2, u)
	want2 := []float64{0.75, 0.25, 0.25, 0.25, 0.75, 0.75}
	for d, v := range u {
		if math.Abs(v-want2[d]) > 1e-9 {
			t.Errorf("point 2 dim %d = %g, want %g", d, v, want2[d])
		}
	}
	s.At(3, u)
	want3 := []float64{0.25, 0.75, 0.75, 0.75, 0.25, 0.25}
	for d, v := range u {
		if math.Abs(v-want3[d]) > 1e-9 {
			t.Errorf("point 3 dim %d = %g, want %g", d, v, want3[d])
		}
	}
}

// TestSobolStratification checks the defining net property in each dimension:
// the first 2^k points place exactly one point in each of the 2^k dyadic
// intervals, scrambled or not.
func TestSobolStratification(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0xDEADBEEF} {
		s, err := NewSobol(6, seed)
		if err != nil {
			t.Fatal(err)
		}
		u := make([]float64, 6)
		const k = 6 // 64 points, 64 bins
		n := 1 << k
		for d := 0; d < 6; d++ {
			bins := make([]int, n)
			for i := 0; i < n; i++ {
				s.At(int64(i), u)
				bins[int(u[d]*float64(n))]++
			}
			for b, c := range bins {
				if c != 1 {
					t.Fatalf("seed %d dim %d: bin %d has %d points, want 1", seed, d, b, c)
				}
			}
		}
	}
}

func TestSobolScrambleDeterministicAndDistinct(t *testing.T) {
	a, _ := NewSobol(6, 42)
	b, _ := NewSobol(6, 42)
	c, _ := NewSobol(6, 43)
	ua, ub, uc := make([]float64, 6), make([]float64, 6), make([]float64, 6)
	same, diff := true, false
	for i := int64(0); i < 32; i++ {
		a.At(i, ua)
		b.At(i, ub)
		c.At(i, uc)
		for d := 0; d < 6; d++ {
			if ua[d] != ub[d] {
				same = false
			}
			if ua[d] != uc[d] {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed must reproduce the same sequence")
	}
	if !diff {
		t.Error("different seeds must scramble differently")
	}
}

func TestSobolBounds(t *testing.T) {
	if _, err := NewSobol(0, 1); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewSobol(7, 1); err == nil {
		t.Error("dim 7 accepted")
	}
	s, _ := NewSobol(6, 99)
	u := make([]float64, 6)
	for i := int64(0); i < 1000; i++ {
		s.At(i, u)
		for d, v := range u {
			if !(v > 0 && v < 1) {
				t.Fatalf("point %d dim %d = %g outside (0,1)", i, d, v)
			}
		}
	}
}
