package num

import "math"

// Welford accumulates weighted running moments (West's update, Chan's
// merge): mean and variance in one pass, numerically stable, with the
// effective sample size needed for confidence intervals over importance-
// weighted draws. The zero value is an empty accumulator.
//
// Merging is deterministic only for a fixed merge order; parallel reducers
// must combine partial accumulators in a canonical (e.g. block-index) order
// to keep results bit-identical across schedules.
type Welford struct {
	Count int64   // number of observations
	SumW  float64 // Σw
	SumW2 float64 // Σw²
	M     float64 // weighted mean
	M2    float64 // Σw·(x−mean)² (scaled second central moment)
	MinV  float64 // smallest observed x
	MaxV  float64 // largest observed x
}

// Add folds in one observation of weight w (> 0).
func (a *Welford) Add(x, w float64) {
	if a.Count == 0 {
		a.MinV, a.MaxV = x, x
	} else {
		if x < a.MinV {
			a.MinV = x
		}
		if x > a.MaxV {
			a.MaxV = x
		}
	}
	a.Count++
	a.SumW += w
	a.SumW2 += w * w
	d := x - a.M
	a.M += (w / a.SumW) * d
	a.M2 += w * d * (x - a.M)
}

// Merge folds accumulator b into a (Chan et al. pairwise combination).
func (a *Welford) Merge(b Welford) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	if b.MinV < a.MinV {
		a.MinV = b.MinV
	}
	if b.MaxV > a.MaxV {
		a.MaxV = b.MaxV
	}
	d := b.M - a.M
	w := a.SumW + b.SumW
	a.M2 += b.M2 + d*d*a.SumW*b.SumW/w
	a.M += d * b.SumW / w
	a.SumW = w
	a.SumW2 += b.SumW2
	a.Count += b.Count
}

// Mean returns the weighted mean (NaN when empty).
func (a *Welford) Mean() float64 {
	if a.Count == 0 {
		return math.NaN()
	}
	return a.M
}

// Var returns the unbiased weighted sample variance (reliability weights):
// M2 / (Σw − Σw²/Σw). For unit weights this is the usual n−1 estimator. It
// returns 0 when fewer than two observations carry weight.
func (a *Welford) Var() float64 {
	if a.Count < 2 || a.SumW <= 0 {
		return 0
	}
	denom := a.SumW - a.SumW2/a.SumW
	if denom <= 0 {
		return 0
	}
	return a.M2 / denom
}

// Std returns the weighted sample standard deviation.
func (a *Welford) Std() float64 { return math.Sqrt(a.Var()) }

// ESS returns Kish's effective sample size (Σw)²/Σw² — the number of
// equally-weighted samples with the same estimator variance. Equal weights
// give ESS = Count.
func (a *Welford) ESS() float64 {
	if a.SumW2 <= 0 {
		return 0
	}
	return a.SumW * a.SumW / a.SumW2
}

// MuMinusKSigmaCI returns the delta-method confidence half-width on the
// μ − k·σ statistic at confidence quantile z (1.96 for 95%):
//
//	Var(μ̂ − k·σ̂) ≈ σ²/n_eff · (1 + k²/2)
//
// using Var(μ̂) = σ²/n, Var(σ̂) ≈ σ²/(2n) and Cov(μ̂, σ̂) = 0, all exact in
// the Gaussian limit the paper's μ−3σ yield metric assumes (DESIGN.md §12).
func (a *Welford) MuMinusKSigmaCI(k, z float64) float64 {
	ess := a.ESS()
	if ess < 2 {
		return math.Inf(1)
	}
	return z * a.Std() * math.Sqrt((1+k*k/2)/ess)
}

// WilsonCI returns the Wilson score interval [lo, hi] for a binomial
// proportion estimated as p from n effective trials at quantile z. Unlike
// the normal-approximation interval it stays inside [0, 1] and does not
// collapse to a point at p = 0 or 1 — exactly the regime of small fail
// fractions the yield constraint cares about.
func WilsonCI(p, n, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Acklam's rational approximations for the inverse normal CDF.
var invNormA = [6]float64{
	-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
	1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
}
var invNormB = [5]float64{
	-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
	6.680131188771972e+01, -1.328068155288572e+01,
}
var invNormC = [6]float64{
	-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
	-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
}
var invNormD = [4]float64{
	7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
	3.754408661907416e+00,
}

// InvNormCDF returns Φ⁻¹(p), the standard normal quantile, via Acklam's
// rational approximation refined with one Halley step against math.Erfc —
// accurate to full double precision over (0, 1). It returns ∓Inf at p = 0
// and p = 1 and NaN outside [0, 1].
func InvNormCDF(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((invNormC[0]*q+invNormC[1])*q+invNormC[2])*q+invNormC[3])*q+invNormC[4])*q + invNormC[5]) /
			((((invNormD[0]*q+invNormD[1])*q+invNormD[2])*q+invNormD[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((invNormA[0]*r+invNormA[1])*r+invNormA[2])*r+invNormA[3])*r+invNormA[4])*r + invNormA[5]) * q /
			(((((invNormB[0]*r+invNormB[1])*r+invNormB[2])*r+invNormB[3])*r+invNormB[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((invNormC[0]*q+invNormC[1])*q+invNormC[2])*q+invNormC[3])*q+invNormC[4])*q + invNormC[5]) /
			((((invNormD[0]*q+invNormD[1])*q+invNormD[2])*q+invNormD[3])*q + 1)
	}
	// One Halley refinement: e = Φ(x) − p, u = e·φ(x)⁻¹.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
