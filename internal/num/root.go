package num

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by root finders when the supplied interval does
// not bracket a sign change.
var ErrNoBracket = errors.New("num: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget without meeting tolerance.
var ErrNoConverge = errors.New("num: iteration did not converge")

// Bisect finds a root of f in [a, b] by bisection to absolute x-tolerance
// tol. f(a) and f(b) must have opposite signs (or one endpoint must be an
// exact root).
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). It converges superlinearly on
// smooth functions and never leaves the bracket.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b, fa, fb = b, a, fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = 0.5 * (a + b)
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d, c, fc = c, b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b, fa, fb = b, a, fb, fa
		}
	}
	return b, ErrNoConverge
}

// GoldenMin minimizes a unimodal function on [a, b] by golden-section search
// to x-tolerance tol, returning the minimizing x.
func GoldenMin(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for math.Abs(b-a) > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b)
}
