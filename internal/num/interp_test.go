package num

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLinear1DExactAtKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{1, 3, 2, 8}
	li, err := NewLinear1D(xs, ys)
	if err != nil {
		t.Fatalf("NewLinear1D: %v", err)
	}
	for i := range xs {
		if got := li.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-12 {
			t.Fatalf("Eval(%g) = %g, want %g", xs[i], got, ys[i])
		}
	}
	if got := li.Eval(0.5); math.Abs(got-2) > 1e-12 {
		t.Fatalf("midpoint = %g, want 2", got)
	}
	// Linear extrapolation beyond the hull.
	if got := li.Eval(5); math.Abs(got-11) > 1e-12 {
		t.Fatalf("extrapolated = %g, want 11", got)
	}
}

func TestPCHIPExactAtKnots(t *testing.T) {
	xs := []float64{0, 0.5, 1.2, 2, 3}
	ys := []float64{0, 1, 0.8, 2, 5}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatalf("NewPCHIP: %v", err)
	}
	for i := range xs {
		if got := p.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-12 {
			t.Fatalf("Eval(%g) = %g, want %g", xs[i], got, ys[i])
		}
	}
}

func TestPCHIPClampsOutsideDomain(t *testing.T) {
	p, err := NewPCHIP([]float64{0, 1, 2}, []float64{5, 7, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(-3); got != 5 {
		t.Fatalf("left clamp = %g, want 5", got)
	}
	if got := p.Eval(9); got != 6 {
		t.Fatalf("right clamp = %g, want 6", got)
	}
}

func TestPCHIPTwoPoints(t *testing.T) {
	p, err := NewPCHIP([]float64{0, 2}, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Eval(1) = %g, want 2", got)
	}
}

// TestPCHIPMonotonePreserving: for monotone data, the interpolant must stay
// within [min(y), max(y)] and be monotone — the property that makes PCHIP
// the right choice for characterized current/delay tables.
func TestPCHIPMonotonePreserving(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x, y := 0.0, 0.0
		for i := 0; i < n; i++ {
			x += 0.1 + rng.Float64()
			y += rng.Float64() // nondecreasing
			xs[i], ys[i] = x, y
		}
		p, err := NewPCHIP(xs, ys)
		if err != nil {
			return false
		}
		prev := math.Inf(-1)
		for _, xe := range Linspace(xs[0], xs[n-1], 200) {
			v := p.Eval(xe)
			if v < ys[0]-1e-9 || v > ys[n-1]+1e-9 {
				return false
			}
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpTableValidation(t *testing.T) {
	if _, err := NewLinear1D([]float64{0, 1}, []float64{1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := NewLinear1D([]float64{0}, []float64{1}); err == nil {
		t.Fatal("expected too-few-points error")
	}
	if _, err := NewLinear1D([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("expected non-increasing error")
	}
	if _, err := NewPCHIP([]float64{0, 1}, []float64{1, math.NaN()}); err == nil {
		t.Fatal("expected NaN rejection")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("Linspace[%d] = %g, want %g", i, xs[i], want[i])
		}
	}
	if !sort.Float64sAreSorted(xs) {
		t.Fatal("Linspace not sorted")
	}
}

func TestDomain(t *testing.T) {
	p, _ := NewPCHIP([]float64{2, 3, 4}, []float64{0, 1, 2})
	lo, hi := p.Domain()
	if lo != 2 || hi != 4 {
		t.Fatalf("Domain = (%g, %g)", lo, hi)
	}
}
