// Package num provides the numerical kernels used throughout sramco:
// dense linear algebra, scalar root finding, interpolation, minimization,
// and summary statistics.
//
// The package is deliberately small and dependency-free. Circuit matrices in
// this project are tiny (tens of unknowns), so a dense LU with partial
// pivoting is both simpler and faster than a sparse solver.
package num

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution at the
// working precision.
var ErrSingular = errors.New("num: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("num: invalid matrix dims %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Zero resets every element to 0 without reallocating.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M·x. It panics if dimensions disagree.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("num: MulVec dim mismatch: %d×%d times %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return y
}

// LU holds an in-place LU factorization with partial pivoting.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// NewLU allocates factorization storage for n×n systems, for use with
// Refactor/SolveInto on hot paths that factor the same-sized matrix
// repeatedly (the Newton loop re-factors the Jacobian every iteration).
func NewLU(n int) *LU {
	if n < 0 {
		panic(fmt.Sprintf("num: invalid LU size %d", n))
	}
	return &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
}

// Factor computes the LU factorization of a square matrix. The input is not
// modified. Factor returns ErrSingular if a pivot underflows the tolerance
// relative to the matrix scale.
func Factor(m *Matrix) (*LU, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("num: Factor requires square matrix, got %d×%d", m.Rows, m.Cols)
	}
	f := NewLU(m.Rows)
	if err := f.Refactor(m); err != nil {
		return nil, err
	}
	return f, nil
}

// Refactor recomputes the factorization of m into f's existing storage —
// identical arithmetic to Factor, zero allocation. m must match the size f
// was created with.
func (f *LU) Refactor(m *Matrix) error {
	if m.Rows != m.Cols || m.Rows != f.n {
		return fmt.Errorf("num: Refactor size mismatch: LU n=%d, matrix %d×%d", f.n, m.Rows, m.Cols)
	}
	n := f.n
	f.sign = 1
	copy(f.lu, m.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	scale := 0.0
	for _, v := range f.lu {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return ErrSingular
	}
	tol := scale * 1e-300
	a := f.lu
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest magnitude in column k at/below row k.
		p := k
		best := math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > best {
				best, p = v, i
			}
		}
		if best <= tol {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := a[k*n+k]
		for i := k + 1; i < n; i++ {
			l := a[i*n+k] / pivot
			a[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
		}
	}
	return nil
}

// Solve solves A·x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, f.n)
	f.SolveInto(x, b)
	return x
}

// SolveInto solves A·x = b into dst without allocating. dst and b must both
// have length n and must not alias.
func (f *LU) SolveInto(dst, b []float64) {
	if len(b) != f.n || len(dst) != f.n {
		panic(fmt.Sprintf("num: LU.SolveInto dim mismatch: n=%d len(dst)=%d len(b)=%d", f.n, len(dst), len(b)))
	}
	n := f.n
	x := dst
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	a := f.lu
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += a[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / a[i*n+i]
	}
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveLinear is a convenience wrapper: factor A and solve A·x = b.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// NormInf returns the infinity norm (max absolute value) of a vector.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of a vector.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
