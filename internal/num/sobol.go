package num

import "fmt"

// sobolMaxDim is the number of dimensions this generator carries direction
// numbers for — the six per-transistor ΔVt dimensions of the 6T cell Monte
// Carlo are the only consumer.
const sobolMaxDim = 6

// sobolBits is the precision of one coordinate. 32 bits (≈2.3e-10 spacing)
// is far below the resolution at which Φ⁻¹ changes the yield statistics.
const sobolBits = 32

// Joe–Kuo "new-joe-kuo-6" primitive-polynomial parameters for dimensions
// 2..6 (dimension 1 is the van der Corput sequence in base 2).
var sobolParams = [sobolMaxDim - 1]struct {
	s uint   // polynomial degree
	a uint32 // polynomial coefficients (bits of a)
	m []uint32
}{
	{1, 0, []uint32{1}},
	{2, 1, []uint32{1, 3}},
	{3, 1, []uint32{1, 3, 1}},
	{3, 2, []uint32{1, 1, 1}},
	{4, 1, []uint32{1, 1, 3, 3}},
}

// Sobol is a digitally-shifted (scrambled) Sobol' low-discrepancy sequence
// with random point access: At(i) returns point i directly from the Gray
// code of the index, so parallel workers can evaluate disjoint index blocks
// without sharing sequential generator state — the property the Monte Carlo
// engine's deterministic block partitioning relies on.
type Sobol struct {
	dim   int
	v     [sobolMaxDim][sobolBits]uint32 // direction numbers, bit-reversed scale
	shift [sobolMaxDim]uint32            // per-dimension digital shift (scramble)
}

// NewSobol builds a dim-dimensional (1 ≤ dim ≤ 6) scrambled Sobol'
// generator. seed selects the digital shift: the same seed reproduces the
// same scrambled sequence, seed 0 is the unscrambled sequence.
func NewSobol(dim int, seed uint64) (*Sobol, error) {
	if dim < 1 || dim > sobolMaxDim {
		return nil, fmt.Errorf("num: Sobol supports 1..%d dimensions, got %d", sobolMaxDim, dim)
	}
	s := &Sobol{dim: dim}
	// Dimension 1: v_k = 2^(32−k−1) (van der Corput).
	for k := 0; k < sobolBits; k++ {
		s.v[0][k] = 1 << (sobolBits - 1 - k)
	}
	for d := 1; d < dim; d++ {
		p := sobolParams[d-1]
		deg := int(p.s)
		var m [sobolBits]uint32
		copy(m[:], p.m)
		// Recurrence m_k = 2^deg·m_{k−deg} ⊕ m_{k−deg} ⊕ Σ 2^i·a_i·m_{k−i}.
		for k := deg; k < sobolBits; k++ {
			mk := m[k-deg] ^ (m[k-deg] << deg)
			for i := 1; i < deg; i++ {
				if (p.a>>(deg-1-i))&1 == 1 {
					mk ^= m[k-i] << i
				}
			}
			m[k] = mk
		}
		for k := 0; k < sobolBits; k++ {
			s.v[d][k] = m[k] << (sobolBits - 1 - k)
		}
	}
	if seed != 0 {
		x := seed
		for d := 0; d < dim; d++ {
			// SplitMix64 stream: independent 32-bit digital shifts per axis.
			x += 0x9E3779B97F4A7C15
			z := x
			z ^= z >> 30
			z *= 0xBF58476D1CE4E5B9
			z ^= z >> 27
			z *= 0x94D049BB133111EB
			z ^= z >> 31
			s.shift[d] = uint32(z >> 32)
		}
	}
	return s, nil
}

// Dim returns the dimensionality of the sequence.
func (s *Sobol) Dim() int { return s.dim }

// At fills u[0:dim] with point i (i ≥ 0) of the scrambled sequence. Every
// coordinate lies strictly inside (0, 1), so Φ⁻¹ of a coordinate is always
// finite.
func (s *Sobol) At(i int64, u []float64) {
	if i < 0 {
		panic("num: Sobol.At with negative index")
	}
	g := uint64(i) ^ (uint64(i) >> 1) // Gray code: x_i = ⊕ v_k over set bits
	for d := 0; d < s.dim; d++ {
		x := s.shift[d]
		for k, gg := 0, g; gg != 0 && k < sobolBits; k, gg = k+1, gg>>1 {
			if gg&1 == 1 {
				x ^= s.v[d][k]
			}
		}
		u[d] = (float64(x) + 0.5) / (1 << sobolBits)
	}
}
