package num

import (
	"fmt"
	"math"
	"sort"
)

// Interp1D interpolates tabulated (x, y) samples. X must be strictly
// increasing. Evaluation outside the domain clamps to the end intervals
// (linear extrapolation for Linear1D, flat clamp for PCHIP).
type Interp1D interface {
	Eval(x float64) float64
	Domain() (lo, hi float64)
}

// linear1D is a piecewise-linear interpolant.
type linear1D struct {
	xs, ys []float64
}

// NewLinear1D builds a piecewise-linear interpolant over strictly increasing
// xs. It linearly extrapolates beyond the domain using the boundary segments.
func NewLinear1D(xs, ys []float64) (Interp1D, error) {
	if err := checkTable(xs, ys); err != nil {
		return nil, err
	}
	l := &linear1D{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
	return l, nil
}

func (l *linear1D) Domain() (float64, float64) { return l.xs[0], l.xs[len(l.xs)-1] }

func (l *linear1D) Eval(x float64) float64 {
	i := segIndex(l.xs, x)
	x0, x1 := l.xs[i], l.xs[i+1]
	y0, y1 := l.ys[i], l.ys[i+1]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// pchip is a monotone piecewise-cubic Hermite interpolant
// (Fritsch–Carlson). It never overshoots the data, which matters when
// interpolating characterized delays and currents that must stay positive.
type pchip struct {
	xs, ys, ds []float64
}

// NewPCHIP builds a monotone cubic interpolant over strictly increasing xs.
// Evaluation outside the domain clamps x to the domain boundary.
func NewPCHIP(xs, ys []float64) (Interp1D, error) {
	if err := checkTable(xs, ys); err != nil {
		return nil, err
	}
	n := len(xs)
	p := &pchip{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		ds: make([]float64, n),
	}
	if n == 2 {
		d := (ys[1] - ys[0]) / (xs[1] - xs[0])
		p.ds[0], p.ds[1] = d, d
		return p, nil
	}
	h := make([]float64, n-1)
	delta := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		h[i] = xs[i+1] - xs[i]
		delta[i] = (ys[i+1] - ys[i]) / h[i]
	}
	for i := 1; i < n-1; i++ {
		if delta[i-1]*delta[i] <= 0 {
			p.ds[i] = 0
			continue
		}
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		p.ds[i] = (w1 + w2) / (w1/delta[i-1] + w2/delta[i])
	}
	p.ds[0] = endpointSlope(h[0], h[1], delta[0], delta[1])
	p.ds[n-1] = endpointSlope(h[n-2], h[n-3], delta[n-2], delta[n-3])
	return p, nil
}

// endpointSlope is the Fritsch–Carlson one-sided three-point estimate with
// monotonicity clipping.
func endpointSlope(h0, h1, d0, d1 float64) float64 {
	d := ((2*h0+h1)*d0 - h0*d1) / (h0 + h1)
	if d*d0 <= 0 {
		return 0
	}
	if d0*d1 <= 0 && math.Abs(d) > 3*math.Abs(d0) {
		return 3 * d0
	}
	return d
}

func (p *pchip) Domain() (float64, float64) { return p.xs[0], p.xs[len(p.xs)-1] }

func (p *pchip) Eval(x float64) float64 {
	if x <= p.xs[0] {
		return p.ys[0]
	}
	if x >= p.xs[len(p.xs)-1] {
		return p.ys[len(p.ys)-1]
	}
	i := segIndex(p.xs, x)
	h := p.xs[i+1] - p.xs[i]
	t := (x - p.xs[i]) / h
	h00 := (1 + 2*t) * (1 - t) * (1 - t)
	h10 := t * (1 - t) * (1 - t)
	h01 := t * t * (3 - 2*t)
	h11 := t * t * (t - 1)
	return h00*p.ys[i] + h10*h*p.ds[i] + h01*p.ys[i+1] + h11*h*p.ds[i+1]
}

// segIndex returns the index i of the interval [xs[i], xs[i+1]] containing x,
// clamped to the valid range for extrapolation.
func segIndex(xs []float64, x float64) int {
	i := sort.SearchFloat64s(xs, x) - 1
	if i < 0 {
		i = 0
	}
	if i > len(xs)-2 {
		i = len(xs) - 2
	}
	return i
}

func checkTable(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("num: interp table length mismatch: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return fmt.Errorf("num: interp table needs ≥2 points, got %d", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if !(xs[i] > xs[i-1]) {
			return fmt.Errorf("num: interp xs not strictly increasing at index %d (%g after %g)", i, xs[i], xs[i-1])
		}
	}
	for i, v := range ys {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("num: interp ys[%d] is not finite: %g", i, v)
		}
	}
	return nil
}

// Linspace returns n evenly spaced samples from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("num: Linspace needs n ≥ 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
