package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("got x=%v, want [1 3]", x)
	}
}

func TestSolveLinearIdentity(t *testing.T) {
	n := 5
	a := NewMatrix(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		b[i] = float64(i) - 2.5
	}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("identity solve mismatch at %d: %g vs %g", i, x[i], b[i])
		}
	}
}

func TestFactorSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Fatal("expected ErrSingular for rank-1 matrix")
	}
	z := NewMatrix(3, 3)
	if _, err := Factor(z); err == nil {
		t.Fatal("expected ErrSingular for zero matrix")
	}
}

func TestFactorNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Factor(a); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestPivotingHandlesZeroDiagonal(t *testing.T) {
	// Leading zero forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveLinear(a, []float64{2, 3})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("got %v, want [3 2]", x)
	}
}

func TestDet(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 4)
	a.Set(1, 1, 2)
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if d := f.Det(); math.Abs(d-2) > 1e-12 {
		t.Fatalf("Det = %g, want 2", d)
	}
}

// TestSolveRandomResidual is a property test: for random well-conditioned
// systems, A·x must reproduce b to near machine precision.
func TestSolveRandomResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			// Diagonal dominance keeps the system well conditioned.
			a.Add(i, i, float64(n)*2)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		r := a.MulVec(x)
		for i := range r {
			r[i] -= b[i]
		}
		return NormInf(r) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if NormInf(v) != 4 {
		t.Fatalf("NormInf = %g", NormInf(v))
	}
	if math.Abs(Norm2(v)-5) > 1e-12 {
		t.Fatalf("Norm2 = %g", Norm2(v))
	}
	if NormInf(nil) != 0 || Norm2(nil) != 0 {
		t.Fatal("norms of empty vector should be 0")
	}
}
