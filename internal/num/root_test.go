package num

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectSimple(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Bisect(f, 0, 2, 1e-10)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-9 {
		t.Fatalf("root = %.12f, want sqrt(2)", x)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Bisect(f, 0, 1, 1e-10); err != nil || x != 0 {
		t.Fatalf("got (%g, %v), want (0, nil)", x, err)
	}
	if x, err := Bisect(f, -1, 0, 1e-10); err != nil || x != 0 {
		t.Fatalf("got (%g, %v), want (0, nil)", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-10); err != ErrNoBracket {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentPolynomial(t *testing.T) {
	f := func(x float64) float64 { return (x + 3) * (x - 1) * (x - 1) * (x - 1) }
	x, err := Brent(f, -4, 0, 1e-12)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	if math.Abs(x+3) > 1e-9 {
		t.Fatalf("root = %g, want -3", x)
	}
}

func TestBrentTranscendental(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) - x }
	x, err := Brent(f, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	if math.Abs(f(x)) > 1e-10 {
		t.Fatalf("f(root) = %g", f(x))
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*x }
	if _, err := Brent(f, -1, 1, 1e-10); err != ErrNoBracket {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

// TestBrentMatchesBisect is a property test: both root finders must agree on
// random monotone cubics that bracket a root.
func TestBrentMatchesBisect(t *testing.T) {
	prop := func(shift float64) bool {
		c := math.Mod(math.Abs(shift), 5.0) // root location in [0, 5)
		f := func(x float64) float64 { return (x - c) * (1 + (x-c)*(x-c)) }
		xb, err1 := Bisect(f, -6, 6, 1e-11)
		xr, err2 := Brent(f, -6, 6, 1e-11)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(xb-c) < 1e-9 && math.Abs(xr-c) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenMin(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	x := GoldenMin(f, -10, 10, 1e-9)
	if math.Abs(x-1.7) > 1e-6 {
		t.Fatalf("argmin = %g, want 1.7", x)
	}
}
