// Package lut provides characterization lookup tables. The paper's flow
// measures cell and peripheral quantities with SPICE and stores anything
// with a variable dependency in look-up tables consulted by the analytical
// array model (§5); this package is that storage layer, filled by running
// the bundled circuit simulator over sweep grids.
package lut

import (
	"fmt"
	"math"

	"sramco/internal/num"
)

// Table1D is a characterized scalar function of one variable, interpolated
// monotonically (PCHIP) between grid points and clamped outside the grid.
type Table1D struct {
	Name   string
	xs, ys []float64
	interp num.Interp1D
}

// Build1D fills a 1-D table by evaluating f on the grid xs (strictly
// increasing). Any evaluation error aborts the build.
func Build1D(name string, xs []float64, f func(x float64) (float64, error)) (*Table1D, error) {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		y, err := f(x)
		if err != nil {
			return nil, fmt.Errorf("lut: %s at x=%g: %w", name, x, err)
		}
		ys[i] = y
	}
	return From1D(name, xs, ys)
}

// From1D wraps existing samples in a table.
func From1D(name string, xs, ys []float64) (*Table1D, error) {
	in, err := num.NewPCHIP(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("lut: %s: %w", name, err)
	}
	return &Table1D{
		Name:   name,
		xs:     append([]float64(nil), xs...),
		ys:     append([]float64(nil), ys...),
		interp: in,
	}, nil
}

// Eval interpolates the table at x.
func (t *Table1D) Eval(x float64) float64 { return t.interp.Eval(x) }

// Domain returns the characterized range.
func (t *Table1D) Domain() (lo, hi float64) { return t.interp.Domain() }

// Grid returns copies of the underlying sample grid.
func (t *Table1D) Grid() (xs, ys []float64) {
	return append([]float64(nil), t.xs...), append([]float64(nil), t.ys...)
}

// Table2D is a characterized scalar function of two variables with bilinear
// interpolation, clamped at the grid boundary.
type Table2D struct {
	Name   string
	xs, ys []float64
	zs     []float64 // row-major: zs[i*len(ys)+j] = f(xs[i], ys[j])
}

// Build2D fills a 2-D table by evaluating f over the grid xs × ys.
func Build2D(name string, xs, ys []float64, f func(x, y float64) (float64, error)) (*Table2D, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return nil, fmt.Errorf("lut: %s: 2-D table needs ≥2 points per axis", name)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("lut: %s: x grid not strictly increasing", name)
		}
	}
	for j := 1; j < len(ys); j++ {
		if ys[j] <= ys[j-1] {
			return nil, fmt.Errorf("lut: %s: y grid not strictly increasing", name)
		}
	}
	zs := make([]float64, len(xs)*len(ys))
	for i, x := range xs {
		for j, y := range ys {
			z, err := f(x, y)
			if err != nil {
				return nil, fmt.Errorf("lut: %s at (%g, %g): %w", name, x, y, err)
			}
			if math.IsNaN(z) || math.IsInf(z, 0) {
				return nil, fmt.Errorf("lut: %s at (%g, %g): non-finite value %g", name, x, y, z)
			}
			zs[i*len(ys)+j] = z
		}
	}
	return &Table2D{
		Name: name,
		xs:   append([]float64(nil), xs...),
		ys:   append([]float64(nil), ys...),
		zs:   zs,
	}, nil
}

// Eval bilinearly interpolates the table at (x, y), clamping to the grid.
func (t *Table2D) Eval(x, y float64) float64 {
	i, fx := cellOf(t.xs, x)
	j, fy := cellOf(t.ys, y)
	n := len(t.ys)
	z00 := t.zs[i*n+j]
	z10 := t.zs[(i+1)*n+j]
	z01 := t.zs[i*n+j+1]
	z11 := t.zs[(i+1)*n+j+1]
	return z00*(1-fx)*(1-fy) + z10*fx*(1-fy) + z01*(1-fx)*fy + z11*fx*fy
}

// cellOf locates the grid interval containing v and the clamped fractional
// position within it.
func cellOf(grid []float64, v float64) (int, float64) {
	n := len(grid)
	if v <= grid[0] {
		return 0, 0
	}
	if v >= grid[n-1] {
		return n - 2, 1
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if grid[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, (v - grid[lo]) / (grid[lo+1] - grid[lo])
}
