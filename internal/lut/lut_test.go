package lut

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"sramco/internal/num"
)

func TestBuild1DAndEval(t *testing.T) {
	xs := num.Linspace(0, 1, 11)
	tab, err := Build1D("square", xs, func(x float64) (float64, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.35, 0.5, 0.99, 1} {
		if got := tab.Eval(x); math.Abs(got-x*x) > 0.01 {
			t.Errorf("Eval(%g) = %g, want ≈%g", x, got, x*x)
		}
	}
	lo, hi := tab.Domain()
	if lo != 0 || hi != 1 {
		t.Errorf("Domain = (%g, %g)", lo, hi)
	}
	gx, gy := tab.Grid()
	if len(gx) != 11 || len(gy) != 11 {
		t.Errorf("Grid lengths %d, %d", len(gx), len(gy))
	}
}

func TestBuild1DPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Build1D("bad", []float64{0, 1}, func(x float64) (float64, error) {
		if x > 0.5 {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestTable1DClampsOutsideGrid(t *testing.T) {
	tab, err := Build1D("lin", []float64{0, 1}, func(x float64) (float64, error) { return 2 * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Eval(-5); got != 0 {
		t.Errorf("left clamp = %g", got)
	}
	if got := tab.Eval(9); got != 2 {
		t.Errorf("right clamp = %g", got)
	}
}

func TestBuild2DAndEval(t *testing.T) {
	xs := num.Linspace(0, 2, 5)
	ys := num.Linspace(-1, 1, 5)
	tab, err := Build2D("plane", xs, ys, func(x, y float64) (float64, error) { return 3*x - 2*y + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	// A bilinear table reproduces an affine function exactly.
	for _, x := range []float64{0, 0.3, 1.1, 2} {
		for _, y := range []float64{-1, -0.2, 0.7, 1} {
			want := 3*x - 2*y + 1
			if got := tab.Eval(x, y); math.Abs(got-want) > 1e-12 {
				t.Errorf("Eval(%g, %g) = %g, want %g", x, y, got, want)
			}
		}
	}
	// Clamping outside the grid.
	if got := tab.Eval(99, 0); math.Abs(got-tab.Eval(2, 0)) > 1e-12 {
		t.Errorf("x clamp: %g vs %g", got, tab.Eval(2, 0))
	}
	if got := tab.Eval(0, -99); math.Abs(got-tab.Eval(0, -1)) > 1e-12 {
		t.Errorf("y clamp: %g vs %g", got, tab.Eval(0, -1))
	}
}

func TestBuild2DValidation(t *testing.T) {
	f := func(x, y float64) (float64, error) { return 0, nil }
	if _, err := Build2D("t", []float64{0}, []float64{0, 1}, f); err == nil {
		t.Error("single x point accepted")
	}
	if _, err := Build2D("t", []float64{0, 0}, []float64{0, 1}, f); err == nil {
		t.Error("non-increasing x accepted")
	}
	if _, err := Build2D("t", []float64{0, 1}, []float64{1, 0}, f); err == nil {
		t.Error("decreasing y accepted")
	}
	if _, err := Build2D("t", []float64{0, 1}, []float64{0, 1},
		func(x, y float64) (float64, error) { return math.NaN(), nil }); err == nil {
		t.Error("NaN value accepted")
	}
	boom := errors.New("boom")
	if _, err := Build2D("t", []float64{0, 1}, []float64{0, 1},
		func(x, y float64) (float64, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Error("eval error not propagated")
	}
}

// TestTable2DWithinHull: bilinear interpolation never leaves the convex
// hull of the corner samples of each grid cell.
func TestTable2DWithinHull(t *testing.T) {
	xs := num.Linspace(0, 1, 4)
	ys := num.Linspace(0, 1, 4)
	tab, err := Build2D("rand", xs, ys, func(x, y float64) (float64, error) {
		return math.Sin(7*x) * math.Cos(11*y), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 1)
		y := math.Mod(math.Abs(b), 1)
		v := tab.Eval(x, y)
		return v >= -1-1e-9 && v <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
