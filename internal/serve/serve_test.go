package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sramco"
	"sramco/internal/obs"
)

// testFW shares one characterized framework across every test in the
// package; construction runs circuit simulations and is not free.
var testFW = sync.OnceValues(func() (*sramco.Framework, error) {
	return sramco.NewFramework(sramco.TechPaper)
})

func framework(t testing.TB) *sramco.Framework {
	t.Helper()
	fw, err := testFW()
	if err != nil {
		t.Fatalf("NewFramework: %v", err)
	}
	return fw
}

// counterDeltas snapshots the serve counters so a test can assert on the
// deltas it caused, independent of other tests in the package.
type counterDeltas struct {
	names  []string
	before map[string]int64
}

func snapshotCounters(names ...string) *counterDeltas {
	d := &counterDeltas{names: names, before: map[string]int64{}}
	for _, n := range names {
		d.before[n] = obs.Default().CounterValue(n)
	}
	return d
}

func (d *counterDeltas) delta(name string) int64 {
	return obs.Default().CounterValue(name) - d.before[name]
}

func postJSON(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, resp.Header, b
}

const optimizeBody = `{"capacity_bytes":128,"flavor":"hvt","method":"m2"}`

func TestOptimizeEndpoint(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, hdr, body := postJSON(t, ts.URL+"/v1/optimize", optimizeBody)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	if got := hdr.Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if bits := resp.Design.Geom.NR * resp.Design.Geom.NC; bits != 128*8 {
		t.Errorf("optimum holds %d bits, want %d", bits, 128*8)
	}
	if resp.EDP <= 0 || resp.DelayS <= 0 || resp.EnergyJ <= 0 {
		t.Errorf("non-positive metrics: %+v", resp)
	}
	if resp.Request.Method != "m2" || resp.Request.Objective != "edp" {
		t.Errorf("request echo not canonical: %+v", resp.Request)
	}
	if resp.Stats.Evaluated == 0 {
		t.Error("search stats missing from response")
	}

	// A repeat must be a cache hit with a bit-identical body.
	code2, hdr2, body2 := postJSON(t, ts.URL+"/v1/optimize", optimizeBody)
	if code2 != http.StatusOK || hdr2.Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d X-Cache %q", code2, hdr2.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached body differs from original")
	}
}

func TestCanonicalizationSharesCacheEntries(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Five spellings of the same search: flavor case, explicit defaults.
	bodies := []string{
		`{"capacity_bytes":128,"flavor":"HVT"}`,
		`{"capacity_bytes":128,"flavor":"hvt","method":"M2"}`,
		`{"capacity_bytes":128,"flavor":"hvt","method":"m2","objective":"edp"}`,
		`{"capacity_bytes":128,"flavor":"hvt","alpha":0.5,"beta":0.5}`,
		`{"capacity_bytes":128,"flavor":"hvt","w":64,"timeout_ms":55000}`,
	}
	d := snapshotCounters("serve.cache.miss", "serve.cache.hit")
	var first []byte
	for i, b := range bodies {
		code, _, body := postJSON(t, ts.URL+"/v1/optimize", b)
		if code != http.StatusOK {
			t.Fatalf("spelling %d: status %d, body %s", i, code, body)
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(first, body) {
			t.Errorf("spelling %d produced a different body", i)
		}
	}
	if got := d.delta("serve.cache.miss"); got != 1 {
		t.Errorf("cache misses = %d, want 1 (all spellings share one key)", got)
	}
	if got := d.delta("serve.cache.hit"); got != int64(len(bodies)-1) {
		t.Errorf("cache hits = %d, want %d", got, len(bodies)-1)
	}
}

// TestCoalescing floods the server with concurrent identical requests and
// asserts exactly one underlying search ran: one cache fill, everyone else
// either coalesced onto it or (after it finished) hit the cache, and every
// body is bit-identical.
func TestCoalescing(t *testing.T) {
	const n = 100
	fw := framework(t)
	s := New(fw, Config{Workers: 4})

	gate := make(chan struct{})
	var searches atomic.Int64
	s.optimizeFn = func(ctx context.Context, opts sramco.Options) (*sramco.Optimum, error) {
		searches.Add(1)
		<-gate
		return fw.OptimizeWithContext(ctx, opts)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := snapshotCounters("serve.cache.miss", "serve.cache.hit", "serve.coalesced")

	type result struct {
		code int
		body []byte
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			code, _, body := func() (int, http.Header, []byte) {
				resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(optimizeBody))
				if err != nil {
					return 0, nil, []byte(err.Error())
				}
				defer resp.Body.Close()
				b, _ := io.ReadAll(resp.Body)
				return resp.StatusCode, resp.Header, b
			}()
			results <- result{code, body}
		}()
	}

	// Wait until the leader is inside the gated fill and the other n-1
	// callers are all registered on it, then release the gate: nothing can
	// have fallen through to a cache hit, so they must all coalesce.
	deadline := time.After(30 * time.Second)
	for searches.Load() < 1 || s.flight.waiters() < n-1 {
		select {
		case <-deadline:
			t.Fatalf("stuck waiting for coalescing: searches=%d waiters=%d",
				searches.Load(), s.flight.waiters())
		case <-time.After(time.Millisecond):
		}
	}
	close(gate)

	var first []byte
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("request failed: status %d, body %s", r.code, r.body)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Errorf("response %d not bit-identical to the first", i)
		}
	}

	if got := searches.Load(); got != 1 {
		t.Errorf("underlying searches = %d, want exactly 1", got)
	}
	if got := d.delta("serve.cache.miss"); got != 1 {
		t.Errorf("serve.cache.miss = %d, want 1", got)
	}
	if got := d.delta("serve.coalesced"); got < n-1 {
		t.Errorf("serve.coalesced = %d, want >= %d", got, n-1)
	}

	// After the fill, the same request is a plain cache hit, bit-identical.
	code, hdr, body := postJSON(t, ts.URL+"/v1/optimize", optimizeBody)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("post-fill request: status %d X-Cache %q", code, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(first, body) {
		t.Error("cache hit body differs from coalesced bodies")
	}
}

// TestDrain verifies the shutdown sequence: draining refuses new work,
// flips healthz to 503, but the in-flight request finishes and is answered.
func TestDrain(t *testing.T) {
	fw := framework(t)
	s := New(fw, Config{})

	gate := make(chan struct{})
	entered := make(chan struct{})
	var enterOnce sync.Once
	s.optimizeFn = func(ctx context.Context, opts sramco.Options) (*sramco.Optimum, error) {
		enterOnce.Do(func() { close(entered) })
		<-gate
		return fw.OptimizeWithContext(ctx, opts)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inflight := make(chan struct {
		code int
		body []byte
	}, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(optimizeBody))
		if err != nil {
			inflight <- struct {
				code int
				body []byte
			}{0, []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- struct {
			code int
			body []byte
		}{resp.StatusCode, b}
	}()
	<-entered

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Draining must become observable: healthz flips to 503 and new /v1/*
	// work is refused while the in-flight request is still running.
	waitFor(t, "healthz to report draining", func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	if code, _, body := postJSON(t, ts.URL+"/v1/optimize", `{"capacity_bytes":256,"flavor":"lvt"}`); code != http.StatusServiceUnavailable {
		t.Errorf("new request during drain: status %d, body %s, want 503", code, body)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a request still in flight", err)
	default:
	}

	close(gate)
	r := <-inflight
	if r.code != http.StatusOK {
		t.Errorf("in-flight request dropped during drain: status %d, body %s", r.code, r.body)
	}
	if err := <-drained; err != nil {
		t.Errorf("Drain: %v", err)
	}
}

// TestDeadlinePropagation proves the per-request deadline reaches the
// optimizer's context: the fill blocks until its ctx is done, so only the
// propagated deadline can unblock it.
func TestDeadlinePropagation(t *testing.T) {
	s := New(framework(t), Config{})
	s.optimizeFn = func(ctx context.Context, opts sramco.Options) (*sramco.Optimum, error) {
		if _, ok := ctx.Deadline(); !ok {
			t.Error("optimizer ctx has no deadline")
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	code, _, body := postJSON(t, ts.URL+"/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","timeout_ms":50}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s, want 504", code, body)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline took %s to fire", elapsed)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Status != http.StatusGatewayTimeout {
		t.Errorf("error body not structured: %s", body)
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, body := postJSON(t, ts.URL+"/v1/evaluate",
		`{"flavor":"hvt","nr":64,"nc":16,"npre":4,"nwr":4,"vssc":-0.07}`)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	var resp EvaluateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.EDP <= 0 {
		t.Errorf("EDP = %g", resp.EDP)
	}
	// The method-pinned rails must have been applied.
	if resp.Result.Design.VDDC <= 0 || resp.Result.Design.VWL <= 0 {
		t.Errorf("rails not pinned: %+v", resp.Result.Design)
	}
}

func TestParetoEndpoint(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, body := postJSON(t, ts.URL+"/v1/pareto", `{"capacity_bytes":128,"flavor":"hvt"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	var resp ParetoResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	for i := 1; i < len(resp.Front); i++ {
		if resp.Front[i].Result.DArray < resp.Front[i-1].Result.DArray {
			t.Error("front not sorted by increasing delay")
		}
	}
}

func TestYieldEndpoint(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, body := postJSON(t, ts.URL+"/v1/yield",
		`{"flavor":"hvt","n":16,"seed":7,"metrics":["wm","hsnm"]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	var resp YieldResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Samples != 16 {
		t.Errorf("samples = %d, want 16", resp.Samples)
	}
	if resp.HSNM == nil || resp.WM == nil || resp.RSNM != nil {
		t.Errorf("metric selection not honored: %+v", resp)
	}
	// Request order "wm","hsnm" canonicalizes to the fixed order.
	if got := strings.Join(resp.Request.Metrics, ","); got != "hsnm,wm" {
		t.Errorf("canonical metrics = %q, want hsnm,wm", got)
	}
}

func TestRequestValidation(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
	}{
		{"malformed JSON", "/v1/optimize", `{"capacity_bytes":`},
		{"unknown field", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","bogus":1}`},
		{"trailing garbage", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt"} extra`},
		{"bad flavor", "/v1/optimize", `{"capacity_bytes":128,"flavor":"xvt"}`},
		{"bad method", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","method":"m3"}`},
		{"bad objective", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","objective":"speed"}`},
		{"non power of two", "/v1/optimize", `{"capacity_bytes":100,"flavor":"hvt"}`},
		{"zero capacity", "/v1/optimize", `{"flavor":"hvt"}`},
		{"huge capacity", "/v1/optimize", `{"capacity_bytes":1073741824,"flavor":"hvt"}`},
		{"bad activity", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","alpha":1.5}`},
		{"negative timeout", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","timeout_ms":-1}`},
		{"bad geometry", "/v1/evaluate", `{"flavor":"hvt","nr":65,"nc":16,"npre":4,"nwr":4}`},
		{"positive vssc", "/v1/evaluate", `{"flavor":"hvt","nr":64,"nc":16,"npre":4,"nwr":4,"vssc":0.1}`},
		{"yield n too small", "/v1/yield", `{"flavor":"hvt","n":1}`},
		{"yield n too large", "/v1/yield", fmt.Sprintf(`{"flavor":"hvt","n":%d}`, maxYieldSamples+1)},
		{"yield bad metric", "/v1/yield", `{"flavor":"hvt","n":16,"metrics":["snm"]}`},
		{"yield bad sampler", "/v1/yield", `{"flavor":"hvt","n":16,"sampler":"halton"}`},
		{"yield tilt too small", "/v1/yield", `{"flavor":"hvt","n":16,"tilt":0.5}`},
		{"yield tilt too large", "/v1/yield", `{"flavor":"hvt","n":16,"tilt":9}`},
		{"yield bad rel_ci", "/v1/yield", `{"flavor":"hvt","n":16,"rel_ci":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := postJSON(t, ts.URL+tc.path, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, body %s, want 400", code, body)
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("error body not structured JSON: %s", body)
			}
			if env.Error.Status != http.StatusBadRequest || env.Error.Message == "" {
				t.Errorf("bad envelope: %+v", env)
			}
		})
	}

	// Non-POST on a /v1/* endpoint.
	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/optimize: status %d, want 405", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cause some traffic so the serve counters exist with nonzero values.
	postJSON(t, ts.URL+"/v1/optimize", optimizeBody)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if _, ok := snap.Counters["serve.requests"]; !ok {
		t.Error("serve.requests missing from metrics snapshot")
	}

	promResp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	prom, _ := io.ReadAll(promResp.Body)
	if !strings.Contains(string(prom), "# TYPE serve_requests counter") {
		t.Errorf("prom rendering missing counter family:\n%.400s", prom)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
