package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sramco"
)

const evalLine = `{"op":"evaluate","flavor":"hvt","nr":32,"nc":32,"npre":1,"nwr":1}`

// readBatch posts an NDJSON batch and decodes every result line.
func readBatch(t *testing.T, url, body string) (int, []batchResult) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var out []batchResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxBodyBytes)
	for sc.Scan() {
		var r batchResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("batch line %q: %v", sc.Bytes(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading batch stream: %v", err)
	}
	return resp.StatusCode, out
}

// TestBatchMixedOps drives optimize, evaluate and pareto items through one
// batch and checks each result against the standalone endpoint: same status,
// bit-identical body.
func TestBatchMixedOps(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batch := strings.Join([]string{
		`{"op":"optimize","capacity_bytes":128,"flavor":"hvt"}`,
		evalLine,
		``, // blank lines are allowed and skipped
		`{"op":"pareto","capacity_bytes":128,"flavor":"hvt"}`,
		`{"op":"optimize","capacity_bytes":262144,"flavor":"hvt"}`, // infeasible
	}, "\n")
	code, results := readBatch(t, ts.URL, batch)
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	byIndex := map[int]batchResult{}
	for _, r := range results {
		byIndex[r.Index] = r
	}

	// Index is the item's ordinal among decoded items; the blank line
	// between items 1 and 2 does not count.
	standalone := map[int]struct {
		path, body string
		status     int
	}{
		0: {"/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt"}`, http.StatusOK},
		1: {"/v1/evaluate", strings.Replace(evalLine, `"op":"evaluate",`, "", 1), http.StatusOK},
		2: {"/v1/pareto", `{"capacity_bytes":128,"flavor":"hvt"}`, http.StatusOK},
		3: {"/v1/optimize", `{"capacity_bytes":262144,"flavor":"hvt"}`, http.StatusUnprocessableEntity},
	}
	for idx, want := range standalone {
		r, ok := byIndex[idx]
		if !ok {
			t.Errorf("no result for input line index %d", idx)
			continue
		}
		if r.Status != want.status {
			t.Errorf("item %d: status %d, want %d (body %s)", idx, r.Status, want.status, r.Body)
			continue
		}
		code, _, body := postJSON(t, ts.URL+want.path, want.body)
		if code != want.status {
			t.Errorf("standalone %s: status %d, want %d", want.path, code, want.status)
			continue
		}
		if !bytes.Equal(r.Body, body) {
			t.Errorf("item %d: batch body not bit-identical to %s", idx, want.path)
		}
	}

	// The batch populated the shared cache: standalone repeats are hits.
	_, hdr, _ := postJSON(t, ts.URL+"/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt"}`)
	if got := hdr.Get("X-Cache"); got != "hit" {
		t.Errorf("standalone after batch X-Cache = %q, want hit", got)
	}
}

// TestBatchStreamsBeforeCompletion holds one batch item open behind a gate
// and asserts the other item's NDJSON line arrives while the gate is still
// closed — the handler must flush per line, not buffer until the end.
func TestBatchStreamsBeforeCompletion(t *testing.T) {
	fw := framework(t)
	// Two worker slots, so the gated optimize fill cannot starve the
	// evaluate item on a single-core machine.
	s := New(fw, Config{Workers: 2})
	gate := make(chan struct{})
	s.optimizeFn = func(ctx context.Context, opts sramco.Options) (*sramco.Optimum, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
		return fw.OptimizeWithContext(ctx, opts)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batch := `{"op":"optimize","capacity_bytes":128,"flavor":"hvt"}` + "\n" + evalLine
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	// Read the first line while the optimize fill is still gated.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxBodyBytes)
	if !sc.Scan() {
		t.Fatalf("no first line before gate opened: %v", sc.Err())
	}
	var first batchResult
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line: %v", err)
	}
	if first.Op != "evaluate" || first.Status != http.StatusOK {
		t.Fatalf("first streamed line = op %q status %d, want the ungated evaluate", first.Op, first.Status)
	}

	close(gate)
	if !sc.Scan() {
		t.Fatalf("no second line after gate opened: %v", sc.Err())
	}
	var second batchResult
	if err := json.Unmarshal(sc.Bytes(), &second); err != nil {
		t.Fatalf("second line: %v", err)
	}
	if second.Op != "optimize" || second.Status != http.StatusOK {
		t.Errorf("second line = op %q status %d, want optimize/200", second.Op, second.Status)
	}
	if sc.Scan() {
		t.Errorf("unexpected extra line: %s", sc.Bytes())
	}
}

// TestBatchRejectsMalformedInput: any bad line fails the whole batch with a
// 400 before anything streams.
func TestBatchRejectsMalformedInput(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := map[string]string{
		"empty body":     "",
		"blank lines":    "\n\n\n",
		"not json":       "hello",
		"missing op":     `{"capacity_bytes":128,"flavor":"hvt"}`,
		"unknown op":     `{"op":"yield","flavor":"hvt"}`,
		"bad field":      `{"op":"optimize","capacity_bytes":128,"flavor":"hvt","bogus":1}`,
		"invalid flavor": `{"op":"optimize","capacity_bytes":128,"flavor":"xvt"}`,
		"good then bad":  `{"op":"optimize","capacity_bytes":128,"flavor":"hvt"}` + "\nnope",
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var env errorEnvelope
		if jerr := json.NewDecoder(resp.Body).Decode(&env); jerr != nil {
			t.Errorf("%s: non-envelope error body: %v", name, jerr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/batch"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET: status %d, want 405", resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/batch?timeout_ms=-5", "application/x-ndjson", strings.NewReader(evalLine))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative timeout_ms: status %d, want 400", resp.StatusCode)
	}
}

// TestBatchDeadlineStopsEvalFills pins the evaluate-loop deadline
// semantics: once the batch deadline passes mid-item, the handler must not
// launch fills for the remaining evaluate items (the expired item's fill is
// still running on its flightGroup goroutine — a new fill would share the
// batchEvaluator with it) but answer them with the deadline error. The
// pre-fix code started a fill per remaining item, which this test observes
// as extra evalHook entries (and, under -race, as a data race on the
// evaluator map).
func TestBatchDeadlineStopsEvalFills(t *testing.T) {
	// Several worker slots, so a stray post-deadline fill would reach the
	// shared evaluator instead of parking on the pool semaphore behind the
	// gated straggler.
	s := New(framework(t), Config{Timeout: 100 * time.Millisecond, Workers: 4})
	gate := make(chan struct{})
	var fills atomic.Int32
	s.evalHook = func() {
		fills.Add(1)
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Three distinct (uncached) evaluate items; the first blocks in the
	// hook until well past the 100ms batch deadline.
	batch := strings.Join([]string{
		`{"op":"evaluate","flavor":"hvt","nr":32,"nc":32,"npre":1,"nwr":1}`,
		`{"op":"evaluate","flavor":"hvt","nr":64,"nc":32,"npre":1,"nwr":1}`,
		`{"op":"evaluate","flavor":"hvt","nr":128,"nc":32,"npre":1,"nwr":1}`,
	}, "\n")
	code, results := readBatch(t, ts.URL, batch+"\n")
	defer close(gate) // let straggler fills finish and unwind

	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, r := range results {
		if r.Status != http.StatusGatewayTimeout {
			t.Errorf("item %d: status %d, want 504 after batch deadline", r.Index, r.Status)
		}
	}

	// Count fills with the gate still closed, so any stray post-deadline
	// fill is parked in the hook where it stays countable; the grace sleep
	// gives such strays time to get scheduled before the assertion.
	waitFor(t, "first fill to start", func() bool { return fills.Load() >= 1 })
	time.Sleep(50 * time.Millisecond)
	if n := fills.Load(); n != 1 {
		t.Errorf("%d evaluate fills started, want 1 (no new fills after the deadline)", n)
	}
}

// TestBatchByteLimitBoundary: a body of exactly maxBatchBytes — final line
// unterminated — is accepted; one byte more is a 400. The pre-fix
// accounting charged a newline the unterminated line didn't have, rejecting
// exact-limit bodies.
func TestBatchByteLimitBoundary(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One real item, then whitespace-only padding lines (skipped by the
	// decoder) up to exactly maxBatchBytes, without a trailing newline.
	var sb strings.Builder
	sb.WriteString(evalLine + "\n")
	pad := strings.Repeat(" ", maxBodyBytes-1) + "\n"
	for sb.Len()+len(pad) <= maxBatchBytes {
		sb.WriteString(pad)
	}
	sb.WriteString(strings.Repeat(" ", maxBatchBytes-sb.Len()))
	body := sb.String()
	if len(body) != maxBatchBytes {
		t.Fatalf("built a %d-byte body, want exactly %d", len(body), maxBatchBytes)
	}

	code, results := readBatch(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("exact-limit body: status %d, want 200", code)
	}
	if len(results) != 1 || results[0].Status != http.StatusOK {
		t.Fatalf("exact-limit body: results %+v, want one OK item", results)
	}

	if code, _ := readBatch(t, ts.URL, body+" "); code != http.StatusBadRequest {
		t.Errorf("over-limit body: status %d, want 400", code)
	}
}

// TestBatchItemLimit: a batch over maxBatchItems is refused up front.
func TestBatchItemLimit(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sb strings.Builder
	for i := 0; i <= maxBatchItems; i++ {
		sb.WriteString(evalLine)
		sb.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}

// BenchmarkBatch64 measures a 64-item evaluate batch through the full HTTP
// handler, shared-Evaluator path included. Items vary by geometry so the
// batch is real work, not 64 cache hits; the cache is disabled to keep every
// iteration on the fill path.
func BenchmarkBatch64(b *testing.B) {
	s := New(framework(b), Config{CacheSize: -1})
	var sb strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, `{"op":"evaluate","flavor":"hvt","nr":%d,"nc":%d,"npre":1,"nwr":1}`+"\n", 16<<(i%5), 32<<(i%3))
	}
	body := sb.String()

	run := func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.handleBatch(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	run() // warm the framework and evaluator paths
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}
