package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func ok200(body string) cached { return cached{status: http.StatusOK, body: []byte(body)} }

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", ok200("A"))
	c.Put("b", ok200("B"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before capacity reached")
	}
	// a was just used, so inserting c evicts b (the least recently used).
	c.Put("c", ok200("C"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should still be cached", k)
		}
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestLRUCacheUpdateAndDisable(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", ok200("A"))
	c.Put("a", ok200("A2"))
	if got, _ := c.Get("a"); !bytes.Equal(got.body, []byte("A2")) {
		t.Errorf("update not applied: %q", got.body)
	}
	if c.Len() != 1 {
		t.Errorf("duplicate Put grew the cache: len %d", c.Len())
	}

	off := newLRUCache(-1)
	off.Put("a", ok200("A"))
	if _, ok := off.Get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestLRUCacheKeepsStatus(t *testing.T) {
	c := newLRUCache(2)
	c.Put("bad", cached{status: http.StatusUnprocessableEntity, body: []byte(`{"error":{}}`)})
	got, ok := c.Get("bad")
	if !ok || got.status != http.StatusUnprocessableEntity {
		t.Errorf("cached status = %d ok=%t, want 422", got.status, ok)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	const n = 25
	gate := make(chan struct{})
	var fills atomic.Int64

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, shared, err := g.Do(context.Background(), "k", func() (cached, error) {
				fills.Add(1)
				<-gate
				return ok200("body"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			bodies[i] = res.body
		}(i)
	}
	waitForCond(t, func() bool { return fills.Load() == 1 && g.waiters() == n-1 })
	close(gate)
	wg.Wait()

	if fills.Load() != 1 {
		t.Errorf("fills = %d, want 1", fills.Load())
	}
	if sharedCount.Load() != n-1 {
		t.Errorf("shared callers = %d, want %d", sharedCount.Load(), n-1)
	}
	for i, b := range bodies {
		if !bytes.Equal(b, []byte("body")) {
			t.Errorf("body %d = %q", i, b)
		}
	}

	// The key is released after the fill: a new Do runs a new fill.
	_, shared, err := g.Do(context.Background(), "k", func() (cached, error) { return ok200("x"), nil })
	if err != nil || shared {
		t.Errorf("post-fill Do: shared=%t err=%v", shared, err)
	}
}

func TestFlightGroupWaiterTimeout(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		g.Do(context.Background(), "k", func() (cached, error) {
			close(started)
			<-gate
			return ok200("late"), nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := g.Do(ctx, "k", func() (cached, error) {
		t.Error("canceled waiter must not run a second fill")
		return cached{}, nil
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Errorf("shared=%t err=%v, want canceled waiter", shared, err)
	}
	close(gate) // leader finishes undisturbed
}

func TestFlightGroupErrorPropagates(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("boom")
	_, _, err := g.Do(context.Background(), "k", func() (cached, error) { return cached{}, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
