package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sramco"
)

// TestCoalescedFillSurvivesFirstCallersDeadline is the regression test for
// the fill-deadline bug: the fill used to inherit the first caller's
// requested deadline, so an impatient first caller poisoned the shared
// computation for every patient waiter coalesced behind it. Now the fill
// runs under the server cap only — the first caller times out alone, and a
// patient second caller coalesces onto the still-running fill and gets the
// result.
func TestCoalescedFillSurvivesFirstCallersDeadline(t *testing.T) {
	fw := framework(t)
	s := New(fw, Config{})
	gate := make(chan struct{})
	var searches atomic.Int64
	s.optimizeFn = func(ctx context.Context, opts sramco.Options) (*sramco.Optimum, error) {
		searches.Add(1)
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
		return fw.OptimizeWithContext(ctx, opts)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	impatient := `{"capacity_bytes":128,"flavor":"hvt","timeout_ms":30}`
	type reply struct {
		code  int
		cache string
		body  []byte
		err   error
	}
	post := func(body string, ch chan<- reply) {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			ch <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		ch <- reply{code: resp.StatusCode, cache: resp.Header.Get("X-Cache"), body: b, err: err}
	}

	first := make(chan reply, 1)
	go post(impatient, first)
	waitFor(t, "fill to start", func() bool { return searches.Load() == 1 })

	// The impatient caller must get its timeout while the fill keeps running.
	r1 := <-first
	if r1.err != nil {
		t.Fatalf("first caller: %v", r1.err)
	}
	if r1.code != http.StatusGatewayTimeout {
		t.Fatalf("first caller status %d body %s, want 504", r1.code, r1.body)
	}

	// A patient caller for the same search coalesces onto the orphaned fill.
	second := make(chan reply, 1)
	go post(optimizeBody, second)
	waitFor(t, "second caller to coalesce", func() bool { return s.flight.waiters() >= 1 })

	close(gate)
	r2 := <-second
	if r2.err != nil {
		t.Fatalf("second caller: %v", r2.err)
	}
	if r2.code != http.StatusOK || r2.cache != "coalesced" {
		t.Fatalf("second caller status %d X-Cache %q body %s, want 200/coalesced",
			r2.code, r2.cache, r2.body)
	}
	if searches.Load() != 1 {
		t.Errorf("searches = %d, want 1 (the second caller must not refill)", searches.Load())
	}
}

// TestInflightGaugeConsistentUnderConcurrency hammers admit/release from
// many goroutines and checks the published serve.inflight gauge lands back
// where it started. The pre-fix Set(counter.Add(±1)) pattern let two
// concurrent updates apply their Sets out of order, leaving a stale
// nonzero gauge behind.
func TestInflightGaugeConsistentUnderConcurrency(t *testing.T) {
	s := New(framework(t), Config{})
	before := gInflight.Value()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				release, err := s.admit()
				if err != nil {
					t.Error(err)
					return
				}
				release()
			}
		}()
	}
	wg.Wait()
	if after := gInflight.Value(); after != before {
		t.Errorf("serve.inflight drifted from %g to %g across balanced admit/release", before, after)
	}
}

// TestInfeasibleCachedAsStructuredError is the regression test for the
// ErrInfeasible handling bug: an infeasible request used to fall through the
// generic error path uncached, re-running the search on every retry. It must
// come back as a structured 422 envelope and be cached like a success.
func TestInfeasibleCachedAsStructuredError(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 256 KB = 2^21 bits exceeds the largest array the search space holds
	// (NRMax·NCMax = 2^20 bits) while staying under the request size cap.
	infeasible := `{"capacity_bytes":262144,"flavor":"hvt"}`

	d := snapshotCounters("serve.cache.miss", "serve.cache.hit")
	code, hdr, body := postJSON(t, ts.URL+"/v1/optimize", infeasible)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d body %s, want 422", code, body)
	}
	if got := hdr.Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("422 body is not a structured envelope: %v: %s", err, body)
	}
	if env.Error.Status != http.StatusUnprocessableEntity || env.Error.Message == "" {
		t.Errorf("envelope = %+v, want populated 422 error", env.Error)
	}

	code2, hdr2, body2 := postJSON(t, ts.URL+"/v1/optimize", infeasible)
	if code2 != http.StatusUnprocessableEntity || hdr2.Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d X-Cache %q, want 422/hit", code2, hdr2.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached 422 body differs from original")
	}
	if d.delta("serve.cache.miss") != 1 || d.delta("serve.cache.hit") != 1 {
		t.Errorf("cache.miss=%d cache.hit=%d, want 1/1 (infeasible result must be cached)",
			d.delta("serve.cache.miss"), d.delta("serve.cache.hit"))
	}
}
