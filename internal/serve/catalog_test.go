package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"sramco"
	"sramco/internal/catalog"
)

// TestCatalogServesLookups installs a synthetic catalog and asserts the
// serving layer answers from it — X-Cache: catalog, exact bytes, no search
// run — while uncatalogued requests still fall through to a live fill.
func TestCatalogServesLookups(t *testing.T) {
	fw := framework(t)
	s := New(fw, Config{})
	var searches atomic.Int64
	s.optimizeFn = func(ctx context.Context, opts sramco.Options) (*sramco.Optimum, error) {
		searches.Add(1)
		return fw.OptimizeWithContext(ctx, opts)
	}

	req := OptimizeRequest{CapacityBytes: 128, Flavor: "hvt"}
	if aerr := req.normalize(); aerr != nil {
		t.Fatal(aerr)
	}
	canned := []byte(`{"canned":true}`)
	bld := catalog.NewBuilder(fw.Fingerprint())
	if err := bld.Add(req.key("optimize"), canned); err != nil {
		t.Fatal(err)
	}
	cat, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	s.SetCatalog(cat)
	if s.Catalog() != cat {
		t.Fatal("Catalog() does not return the installed catalog")
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := snapshotCounters("serve.catalog.hit", "serve.cache.miss", "serve.cache.hit")
	code, hdr, body := postJSON(t, ts.URL+"/v1/optimize", optimizeBody)
	if code != http.StatusOK || hdr.Get("X-Cache") != "catalog" {
		t.Fatalf("status %d X-Cache %q, want 200/catalog", code, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(body, canned) {
		t.Errorf("body %s, want the catalog entry verbatim", body)
	}
	if searches.Load() != 0 {
		t.Errorf("catalog hit ran %d searches", searches.Load())
	}
	if d.delta("serve.catalog.hit") != 1 || d.delta("serve.cache.miss") != 0 {
		t.Errorf("catalog.hit=%d cache.miss=%d, want 1/0",
			d.delta("serve.catalog.hit"), d.delta("serve.cache.miss"))
	}

	// A request outside the grid falls through to a live fill.
	code, hdr, _ = postJSON(t, ts.URL+"/v1/optimize", `{"capacity_bytes":256,"flavor":"hvt"}`)
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("uncatalogued: status %d X-Cache %q, want 200/miss", code, hdr.Get("X-Cache"))
	}
	if searches.Load() != 1 {
		t.Errorf("uncatalogued request ran %d searches, want 1", searches.Load())
	}

	// Clearing the catalog (an atomic swap to nil) restores live behavior.
	s.SetCatalog(nil)
	code, hdr, _ = postJSON(t, ts.URL+"/v1/optimize", optimizeBody)
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("after clear: status %d X-Cache %q, want 200/miss", code, hdr.Get("X-Cache"))
	}
}

// TestCatalogMatchesGoldenOptima is the catalog acceptance gate: for every
// row of testdata/golden_optima.json, a catalog-served /v1/optimize response
// must be bit-identical to the live-search response, and its design must be
// the golden design.
func TestCatalogMatchesGoldenOptima(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/golden_optima.json")
	if err != nil {
		t.Fatal(err)
	}
	var golden struct {
		Rows []struct {
			CapacityBits int    `json:"capacity_bits"`
			Flavor       string `json:"flavor"`
			Method       string `json:"method"`
			NR           int    `json:"nr"`
			NC           int    `json:"nc"`
			Npre         int    `json:"npre"`
			Nwr          int    `json:"nwr"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden.Rows) == 0 {
		t.Fatal("no golden rows")
	}

	fw := framework(t)
	caps := map[int]bool{}
	var grid CatalogGrid
	for _, r := range golden.Rows {
		if b := r.CapacityBits / 8; !caps[b] {
			caps[b] = true
			grid.CapacitiesBytes = append(grid.CapacitiesBytes, b)
		}
	}
	grid.Flavors = []string{"lvt", "hvt"}
	grid.Methods = []string{"m1", "m2"}
	grid.Objectives = []string{"edp"}

	withCat := New(fw, Config{})
	cat, err := withCat.BuildCatalog(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Fingerprint() != fw.Fingerprint() {
		t.Error("catalog fingerprint does not match the framework")
	}
	withCat.SetCatalog(cat)
	live := New(fw, Config{})

	tsCat := httptest.NewServer(withCat.Handler())
	defer tsCat.Close()
	tsLive := httptest.NewServer(live.Handler())
	defer tsLive.Close()

	for _, row := range golden.Rows {
		body := fmt.Sprintf(`{"capacity_bytes":%d,"flavor":%q,"method":%q}`,
			row.CapacityBits/8, strings.ToLower(row.Flavor), strings.ToLower(row.Method))
		code, hdr, got := postJSON(t, tsCat.URL+"/v1/optimize", body)
		if code != http.StatusOK || hdr.Get("X-Cache") != "catalog" {
			t.Fatalf("%s: status %d X-Cache %q, want 200/catalog", body, code, hdr.Get("X-Cache"))
		}
		codeLive, _, want := postJSON(t, tsLive.URL+"/v1/optimize", body)
		if codeLive != http.StatusOK {
			t.Fatalf("%s: live search failed: %d %s", body, codeLive, want)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: catalog response not bit-identical to live search", body)
		}
		var resp OptimizeResponse
		if err := json.Unmarshal(got, &resp); err != nil {
			t.Fatal(err)
		}
		g := resp.Design.Geom
		if g.NR != row.NR || g.NC != row.NC || g.Npre != row.Npre || g.Nwr != row.Nwr {
			t.Errorf("%s: catalog design %dx%d npre=%d nwr=%d, golden %dx%d npre=%d nwr=%d",
				body, g.NR, g.NC, g.Npre, g.Nwr, row.NR, row.NC, row.Npre, row.Nwr)
		}
	}
}
