package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sramco"
	"sramco/internal/array"
	"sramco/internal/obs"
)

// Batch guardrails: one batch is many requests, so it gets a larger body
// budget than a single call but a hard item ceiling.
const (
	maxBatchItems = 256
	maxBatchBytes = 8 << 20
)

var mBatchItems = obs.NewCounter("serve.batch.items")

// batchItem is one decoded, normalized line of a /v1/batch request.
type batchItem struct {
	op  string
	opt *OptimizeRequest // op == "optimize" | "pareto"
	ev  *EvaluateRequest // op == "evaluate"
}

// decodeBatch parses an NDJSON batch body: one request object per line,
// each tagged with an "op" field naming the endpoint ("optimize",
// "evaluate" or "pareto") next to that endpoint's ordinary request fields.
// Blank lines are skipped. Every line is strict-decoded and normalized up
// front — any malformed line fails the whole batch with a 400 before
// anything streams, so a batch response is always a clean NDJSON stream.
func decodeBatch(r io.Reader) ([]batchItem, *apiError) {
	// Read one byte past the limit so a body of exactly maxBatchBytes is
	// accepted and anything larger is detected without buffering it all.
	body, err := io.ReadAll(io.LimitReader(r, maxBatchBytes+1))
	if err != nil {
		return nil, badRequest("batch body: %v", err)
	}
	if len(body) > maxBatchBytes {
		return nil, badRequest("batch body exceeds the %d byte limit", maxBatchBytes)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), maxBodyBytes)
	var items []batchItem
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if len(items) >= maxBatchItems {
			return nil, badRequest("batch exceeds the %d item limit", maxBatchItems)
		}
		var env struct {
			Op string `json:"op"`
		}
		if err := json.Unmarshal(raw, &env); err != nil {
			return nil, badRequest("batch line %d: %v", line, err)
		}
		switch env.Op {
		case "optimize", "pareto":
			var it struct {
				Op string `json:"op"`
				OptimizeRequest
			}
			if aerr := decodeJSON(bytes.NewReader(raw), &it); aerr != nil {
				return nil, badRequest("batch line %d: %s", line, aerr.Message)
			}
			req := it.OptimizeRequest
			if aerr := req.normalize(); aerr != nil {
				return nil, badRequest("batch line %d: %s", line, aerr.Message)
			}
			// Per-item deadlines do not exist in a batch: the whole batch
			// shares one deadline (the ?timeout_ms query parameter, capped
			// by the server), and keys never include deadlines anyway.
			req.TimeoutMS = 0
			items = append(items, batchItem{op: env.Op, opt: &req})
		case "evaluate":
			var it struct {
				Op string `json:"op"`
				EvaluateRequest
			}
			if aerr := decodeJSON(bytes.NewReader(raw), &it); aerr != nil {
				return nil, badRequest("batch line %d: %s", line, aerr.Message)
			}
			req := it.EvaluateRequest
			if aerr := req.normalize(); aerr != nil {
				return nil, badRequest("batch line %d: %s", line, aerr.Message)
			}
			items = append(items, batchItem{op: env.Op, ev: &req})
		case "":
			return nil, badRequest("batch line %d: missing op (want optimize, evaluate or pareto)", line)
		default:
			return nil, badRequest("batch line %d: unknown op %q (want optimize, evaluate or pareto)", line, env.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, badRequest("batch body: %v", err)
	}
	if len(items) == 0 {
		return nil, badRequest("batch body is empty")
	}
	return items, nil
}

// key returns the item's canonical cache key.
func (it batchItem) key() string {
	if it.ev != nil {
		return it.ev.key()
	}
	return it.opt.key(it.op)
}

// batchResult is one streamed NDJSON line of a /v1/batch response: the
// item's ordinal in the request (blank lines don't count), the HTTP status
// the item would have received as a
// standalone request, the cache tier that answered (empty on error), and
// the exact response (or error-envelope) bytes.
type batchResult struct {
	Index  int             `json:"index"`
	Op     string          `json:"op"`
	Status int             `json:"status"`
	Cache  string          `json:"cache,omitempty"`
	Body   json.RawMessage `json:"body"`
}

// toBatchResult builds one streamed line and records the item's per-line
// RED series: each batch item lands under the "/v1/batch:<op>" endpoint
// label with the same outcome classification a standalone request gets, so
// per-endpoint latency panels see through the batch envelope.
func toBatchResult(idx int, op string, res cached, state string, err error, d time.Duration) batchResult {
	if err != nil {
		aerr := asAPIError(err)
		mErrors.Inc()
		observeRED("/v1/batch:"+op, outcomeFor(aerr.Status, state), d)
		b, _ := json.Marshal(errorEnvelope{Error: *aerr})
		return batchResult{Index: idx, Op: op, Status: aerr.Status, Body: b}
	}
	if res.status != http.StatusOK {
		mErrors.Inc()
	}
	observeRED("/v1/batch:"+op, outcomeFor(res.status, state), d)
	return batchResult{Index: idx, Op: op, Status: res.status, Cache: state, Body: res.body}
}

// batchEvaluator shares prepared array.Evaluator instances across the
// evaluate items of one batch, one per (flavor, activity): consecutive
// items differing only in fin counts reuse the memoized chunk-invariant
// state from Prepare instead of recomputing it. The batch handler drives
// evaluate items sequentially, but a fill whose waiter timed out keeps
// running on its flightGroup goroutine — the mutex makes that overlap safe
// (Prepare/Eval share per-Evaluator state), and handleBatch additionally
// stops launching new fills once the batch deadline has passed so nothing
// queues up behind a straggler.
type batchEvaluator struct {
	fw   *sramco.Framework
	hook func() // test seam (Server.evalHook); nil in production

	mu sync.Mutex
	m  map[batchEvalKey]*array.Evaluator
}

type batchEvalKey struct {
	flavor      sramco.Flavor
	alpha, beta float64
}

func newBatchEvaluator(fw *sramco.Framework, hook func()) *batchEvaluator {
	return &batchEvaluator{fw: fw, hook: hook, m: make(map[batchEvalKey]*array.Evaluator)}
}

func (e *batchEvaluator) eval(flavor sramco.Flavor, d sramco.Design, act sramco.Activity) (*sramco.Result, error) {
	if e.hook != nil {
		e.hook()
	}
	if d.Groups != 0 {
		// Hybrid designs carry per-group cell state a shared single-flavor
		// Evaluator cannot memoize; evaluate them standalone.
		return e.fw.Evaluate(flavor, d, act)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := batchEvalKey{flavor: flavor, alpha: act.Alpha, beta: act.Beta}
	ev, ok := e.m[k]
	if !ok {
		tech, err := e.fw.Core().ArrayTech(flavor)
		if err != nil {
			return nil, err
		}
		if ev, err = array.NewEvaluator(tech, act); err != nil {
			return nil, err
		}
		e.m[k] = ev
	}
	if err := ev.Prepare(d.Geom, d.VDDC, d.VSSC, d.VWL); err != nil {
		return nil, err
	}
	return ev.Eval(d.Geom.Npre, d.Geom.Nwr)
}

// handleBatch answers POST /v1/batch: many optimize/evaluate/pareto items
// in one NDJSON body, results streamed back as NDJSON in completion order,
// flushed per line so callers read early results while later chunks still
// compute. Each item goes through the same catalog → cache → coalesced-fill
// path as its standalone endpoint and carries its own status; the HTTP
// status of the stream itself is 200 once decoding succeeds. Evaluate items
// run sequentially on shared prepared Evaluators; optimize/pareto items fan
// out onto the worker pool. One admit spans the whole batch, so draining
// waits for it like any other request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, &apiError{Status: http.StatusMethodNotAllowed, Message: "use POST with an NDJSON body"})
		return
	}
	timeoutMS := 0
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, badRequest("timeout_ms query parameter %q must be a non-negative integer", q))
			return
		}
		timeoutMS = v
	}
	items, aerr := decodeBatch(r.Body)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	release, err := s.admit()
	if err != nil {
		writeError(w, asAPIError(err))
		return
	}
	defer release()
	mBatchItems.Add(int64(len(items)))

	batchCtx, cancel := context.WithTimeout(r.Context(), s.effectiveTimeout(timeoutMS))
	defer cancel()

	results := make(chan batchResult, len(items))
	var wg sync.WaitGroup
	var evalIdx []int
	for i, it := range items {
		if it.op == "evaluate" {
			evalIdx = append(evalIdx, i)
			continue
		}
		wg.Add(1)
		go func(i int, it batchItem) {
			defer wg.Done()
			fill := func(ctx context.Context) (any, error) {
				if it.op == "pareto" {
					return s.paretoResult(ctx, *it.opt)
				}
				return s.optimizeResult(ctx, *it.opt)
			}
			t0 := time.Now()
			res, state, err := s.respond(batchCtx, it.key(), fill)
			results <- toBatchResult(i, it.op, res, state, err, time.Since(t0))
		}(i, it)
	}
	if len(evalIdx) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := newBatchEvaluator(s.fw, s.evalHook)
			for n, i := range evalIdx {
				// Once the batch deadline has passed, respond returns early
				// while its fill keeps running on the flightGroup goroutine;
				// launching the next item's fill would then contend on the
				// shared evaluator behind that straggler. Answer the remaining
				// items with the deadline error instead.
				if batchCtx.Err() != nil {
					for _, j := range evalIdx[n:] {
						results <- toBatchResult(j, items[j].op, cached{}, "", context.Cause(batchCtx), 0)
					}
					return
				}
				it := items[i]
				t0 := time.Now()
				res, state, err := s.respond(batchCtx, it.key(), func(ctx context.Context) (any, error) {
					return s.evaluateResult(*it.ev, ev)
				})
				results <- toBatchResult(i, it.op, res, state, err, time.Since(t0))
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for res := range results {
		if err := enc.Encode(res); err != nil {
			mErrors.Inc()
			return // client went away; producers unwind via batchCtx
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
