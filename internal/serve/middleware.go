package serve

import (
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"sramco/internal/obs"
)

// RED metrics (rate, errors, duration), labeled per endpoint × outcome.
//
// Every series is pre-registered from the fixed endpoint/outcome sets below,
// so the request hot path is two map lookups and an atomic histogram
// observe — no name formatting, no registry mutex. Label cardinality is
// bounded by construction: unknown paths collapse into the "other" endpoint.
//
// /healthz and /metrics are deliberately part of the endpoint set rather
// than excluded: load-balancer probes and scrapes land in their own labeled
// series, so they can be graphed (or ignored) without skewing the /v1/*
// latency distributions.
const (
	outcomeOK        = "ok"
	outcomeCatalog   = "catalog"
	outcomeHit       = "hit"
	outcomeMiss      = "miss"
	outcomeCoalesced = "coalesced"
	outcomeError     = "error"
	outcomeTimeout   = "timeout"
)

var redEndpoints = []string{
	"/v1/optimize", "/v1/evaluate", "/v1/pareto", "/v1/yield", "/v1/batch",
	// Per-line accounting inside a batch: each NDJSON item is recorded
	// under its op's sub-endpoint, next to the batch envelope itself.
	"/v1/batch:optimize", "/v1/batch:evaluate", "/v1/batch:pareto",
	"/healthz", "/metrics", "/debug/trace",
	"other",
}

var redOutcomes = []string{
	outcomeOK, outcomeCatalog, outcomeHit, outcomeMiss, outcomeCoalesced,
	outcomeError, outcomeTimeout,
}

var (
	redHist     = map[string]map[string]*obs.Histogram{}
	redErrors   = map[string]*obs.Counter{}
	redTimeouts = map[string]*obs.Counter{}
)

func init() {
	for _, ep := range redEndpoints {
		byOutcome := make(map[string]*obs.Histogram, len(redOutcomes))
		for _, oc := range redOutcomes {
			byOutcome[oc] = obs.NewHistogram(obs.LabeledName("serve.request_duration", "endpoint", ep, "outcome", oc))
		}
		redHist[ep] = byOutcome
		redErrors[ep] = obs.NewCounter(obs.LabeledName("serve.request_errors", "endpoint", ep))
		redTimeouts[ep] = obs.NewCounter(obs.LabeledName("serve.request_timeouts", "endpoint", ep))
	}
}

// endpointLabel maps a request path onto the bounded endpoint label set.
func endpointLabel(path string) string {
	if _, ok := redHist[path]; ok {
		return path
	}
	return "other"
}

// outcomeFor classifies one finished request: timeouts and errors by
// status, successes by the cache tier that answered (outcomeOK when no
// tier applies — health checks, metrics scrapes, batch envelopes).
func outcomeFor(status int, cacheTier string) string {
	switch {
	case status == http.StatusGatewayTimeout:
		return outcomeTimeout
	case status >= 400:
		return outcomeError
	}
	switch cacheTier {
	case outcomeCatalog, outcomeHit, outcomeMiss, outcomeCoalesced:
		return cacheTier
	}
	return outcomeOK
}

// observeRED records one finished request into the labeled series.
func observeRED(endpoint, outcome string, d time.Duration) {
	byOutcome, ok := redHist[endpoint]
	if !ok {
		byOutcome = redHist["other"]
		endpoint = "other"
	}
	h, ok := byOutcome[outcome]
	if !ok {
		h = byOutcome[outcomeError]
		outcome = outcomeError
	}
	h.Observe(d)
	switch outcome {
	case outcomeTimeout:
		redTimeouts[endpoint].Inc()
	case outcomeError:
		redErrors[endpoint].Inc()
	}
}

// statusWriter captures the status code a handler writes (200 when the
// handler never calls WriteHeader) while passing everything else through.
// It forwards Flush so the /v1/batch per-line streaming keeps working
// behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps the service mux with the request-observability layer:
//
//   - Trace context: adopt the trace ID from an inbound W3C traceparent
//     header (minting a fresh one otherwise), store it in the request
//     context so every obs span below shares it, and echo it as both
//     X-Request-Id and an outbound traceparent.
//   - A serve.request span per request (when a trace sink is installed),
//     carrying method, path, status and outcome.
//   - RED metrics: per-endpoint × outcome duration histograms plus error
//     and timeout counters.
//   - Structured access logs through cfg.AccessLog (skipping /healthz and
//     /metrics, which would otherwise dominate the log with probe traffic).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tid, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			tid = obs.NewTraceID()
		}
		ctx := obs.ContextWithTrace(r.Context(), tid)
		tp := obs.FormatTraceparent(tid, obs.NewSpanID())
		hdr := w.Header()
		// The trace ID is bytes 3..35 of the formatted traceparent; slicing
		// it out saves a second hex rendering on every request.
		requestID := tp[3:35]
		hdr.Set("X-Request-Id", requestID)
		hdr.Set("Traceparent", tp)

		sp := obs.StartSpanCtx(ctx, "serve.request")
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))

		dur := time.Since(start)
		ep := endpointLabel(r.URL.Path)
		cacheTier := hdr.Get("X-Cache")
		outcome := outcomeFor(sw.status(), cacheTier)
		observeRED(ep, outcome, dur)
		if sp.On() {
			sp.Str("method", r.Method)
			sp.Str("path", r.URL.Path)
			sp.Int("status", int64(sw.status()))
			sp.Str("outcome", outcome)
			sp.End()
		}
		if lg := s.cfg.AccessLog; lg != nil && ep != "/healthz" && ep != "/metrics" {
			lg.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status()),
				slog.String("cache", cacheTier),
				slog.Duration("dur", dur),
				slog.String("request_id", requestID),
			)
		}
	})
}

// Runtime gauges, sampled on every /metrics scrape rather than on a timer:
// scrape-driven sampling costs nothing between scrapes and is always as
// fresh as the scrape interval.
var (
	gGoroutines = obs.NewGauge("runtime.goroutines")
	gHeapAlloc  = obs.NewGauge("runtime.heap_alloc_bytes")
	gHeapSys    = obs.NewGauge("runtime.heap_sys_bytes")
	gGCPause    = obs.NewGauge("runtime.gc_pause_total_seconds")
	gGCRuns     = obs.NewGauge("runtime.gc_runs")
)

func sampleRuntimeGauges() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gGoroutines.Set(float64(runtime.NumGoroutine()))
	gHeapAlloc.Set(float64(ms.HeapAlloc))
	gHeapSys.Set(float64(ms.HeapSys))
	gGCPause.Set(float64(ms.PauseTotalNs) / 1e9)
	gGCRuns.Set(float64(ms.NumGC))
}
