package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"sramco"
	"sramco/internal/catalog"
	"sramco/internal/obs"
)

var (
	mCatalogBuilds = obs.NewCounter("serve.catalog.builds")
	gCatalogSize   = obs.NewGauge("serve.catalog.entries")
	hCatalogBuild  = obs.NewHistogram("serve.catalog.build_duration")
)

// CatalogGrid enumerates the slice of the request space a catalog
// precomputes: the cross product of capacities, flavors, methods and
// objectives for /v1/optimize, plus (optionally) the /v1/pareto front of
// each (capacity, flavor, method) cell under the default objective.
type CatalogGrid struct {
	CapacitiesBytes []int
	Flavors         []string
	Methods         []string
	Objectives      []string
	Pareto          bool
	// Groups lists additional hybrid group counts to precompute per
	// objective cell (the single-flavor search, groups=0, is always built).
	Groups []int
}

// DefaultCatalogGrid covers the paper's standard design space: 1–16 KB
// arrays for both flavors, both assist methods and every objective — 100
// optimize entries plus 20 Pareto fronts.
func DefaultCatalogGrid() CatalogGrid {
	return CatalogGrid{
		CapacitiesBytes: []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10},
		Flavors:         []string{"lvt", "hvt"},
		Methods:         []string{"m1", "m2"},
		Objectives:      []string{"edp", "delay", "energy", "area", "padp"},
		Pareto:          true,
	}
}

// SetCatalog atomically installs cat as the precomputed lookup tier; nil
// clears it. Requests racing the swap see either the old or the new catalog
// — both are complete, so there is no torn state. The caller is responsible
// for only installing catalogs whose fingerprint matches the framework's.
func (s *Server) SetCatalog(cat *catalog.Catalog) {
	if cat != nil {
		gCatalogSize.Set(float64(cat.Len()))
	} else {
		gCatalogSize.Set(0)
	}
	s.cat.Store(cat)
}

// Catalog returns the currently installed catalog, or nil.
func (s *Server) Catalog() *catalog.Catalog { return s.cat.Load() }

// BuildCatalog precomputes the grid against the server's framework and
// returns the resulting catalog, fingerprinted with the framework's current
// technology. Every entry is produced by the same fill path a live cache
// miss would take and stored under the same canonical key, which makes
// catalog hits bit-identical to live fills by construction. Infeasible grid
// cells are skipped (the serving layer caches their 422s on demand); any
// other failure aborts the build. The build does not touch the server's
// request metrics or result cache.
func (s *Server) BuildCatalog(ctx context.Context, grid CatalogGrid) (*catalog.Catalog, error) {
	start := time.Now()
	mCatalogBuilds.Inc()
	sp := obs.StartSpanCtx(ctx, "serve.catalog.build")
	defer func() { sp.End(); hCatalogBuild.Observe(time.Since(start)) }()

	b := catalog.NewBuilder(s.fw.Fingerprint())
	add := func(key string, v any) error {
		body, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("serve: catalog entry %s: %w", key, err)
		}
		return b.Add(key, body)
	}
	for _, capBytes := range grid.CapacitiesBytes {
		for _, flavor := range grid.Flavors {
			for _, method := range grid.Methods {
				for _, obj := range grid.Objectives {
					for _, groups := range append([]int{0}, grid.Groups...) {
						if err := ctx.Err(); err != nil {
							return nil, err
						}
						req := OptimizeRequest{CapacityBytes: capBytes, Flavor: flavor, Method: method, Objective: obj, Groups: groups}
						if aerr := req.normalize(); aerr != nil {
							return nil, fmt.Errorf("serve: catalog grid cell invalid: %s", aerr.Message)
						}
						v, err := s.optimizeResult(ctx, req)
						if errors.Is(err, sramco.ErrInfeasible) {
							continue
						}
						if err != nil {
							return nil, fmt.Errorf("serve: catalog fill %s: %w", req.key("optimize"), err)
						}
						if err := add(req.key("optimize"), v); err != nil {
							return nil, err
						}
					}
				}
				if !grid.Pareto {
					continue
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				req := OptimizeRequest{CapacityBytes: capBytes, Flavor: flavor, Method: method}
				if aerr := req.normalize(); aerr != nil {
					return nil, fmt.Errorf("serve: catalog grid cell invalid: %s", aerr.Message)
				}
				v, err := s.paretoResult(ctx, req)
				if errors.Is(err, sramco.ErrInfeasible) {
					continue
				}
				if err != nil {
					return nil, fmt.Errorf("serve: catalog fill %s: %w", req.key("pareto"), err)
				}
				if err := add(req.key("pareto"), v); err != nil {
					return nil, err
				}
			}
		}
	}
	cat, err := b.Build()
	if err != nil {
		return nil, err
	}
	sp.Int("entries", int64(cat.Len()))
	return cat, nil
}
