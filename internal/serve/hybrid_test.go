package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHybridRequestValidation pins the 4xx surface of the new search
// dimensions: every malformed groups/mux/objective combination must come
// back as a structured 400 envelope naming the offending field — never a
// 500, never a silent acceptance.
func TestHybridRequestValidation(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name string
		path string
		body string
		want string // substring of the error message
	}{
		{"negative groups", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","groups":-2}`, "groups"},
		{"non-power-of-two groups", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","groups":3}`, "groups"},
		{"groups above max", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","groups":16}`, "groups"},
		{"groups exceed rows", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","w":256,"groups":8}`, "rows"},
		{"negative mux", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","mux":-4}`, "mux"},
		{"non-power-of-two mux", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","mux":3}`, "mux"},
		{"mux above width", "/v1/optimize", `{"capacity_bytes":1024,"flavor":"lvt","w":16,"mux":32}`, "mux"},
		{"unknown objective", "/v1/optimize", `{"capacity_bytes":128,"flavor":"hvt","objective":"adp"}`, "objective"},
		{"evaluate bad groups", "/v1/evaluate", `{"nr":32,"nc":64,"w":32,"flavor":"lvt","npre":1,"nwr":1,"groups":5}`, "groups"},
		{"evaluate rows not divisible", "/v1/evaluate", `{"nr":36,"nc":64,"w":32,"flavor":"lvt","npre":1,"nwr":1,"groups":8}`, ""},
		{"evaluate mask without groups", "/v1/evaluate", `{"nr":32,"nc":64,"w":32,"flavor":"lvt","npre":1,"nwr":1,"group_mask":3}`, "group_mask"},
		{"evaluate mask overflow", "/v1/evaluate", `{"nr":32,"nc":64,"w":32,"flavor":"lvt","npre":1,"nwr":1,"groups":2,"group_mask":4}`, "group_mask"},
		{"evaluate bad mux", "/v1/evaluate", `{"nr":32,"nc":64,"w":32,"flavor":"lvt","npre":1,"nwr":1,"mux":3}`, "mux"},
	} {
		code, _, body := postJSON(t, ts.URL+tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, code, body)
			continue
		}
		var env struct {
			Error apiError `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: unparseable envelope %s: %v", tc.name, body, err)
			continue
		}
		if env.Error.Status != http.StatusBadRequest || env.Error.Message == "" {
			t.Errorf("%s: malformed envelope %+v", tc.name, env.Error)
		}
		if tc.want != "" && !strings.Contains(strings.ToLower(env.Error.Message), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, env.Error.Message, tc.want)
		}
	}
}

// TestHybridEvaluateEndpoint round-trips a hybrid + muxed design through
// /v1/evaluate: the response must echo the hybrid fields on the design and
// carry the new area/PADP metrics.
func TestHybridEvaluateEndpoint(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, body := postJSON(t, ts.URL+"/v1/evaluate",
		`{"nr":64,"nc":64,"w":32,"flavor":"lvt","method":"m2","npre":4,"nwr":1,"mux":2,"groups":4,"group_mask":5}`)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	var resp EvaluateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Request.Groups != 4 || resp.Request.GroupMask != 5 || resp.Request.Mux != 2 {
		t.Errorf("request echo lost hybrid fields: %+v", resp.Request)
	}
	d := resp.Result.Design
	if d.Groups != 4 || d.GroupMask != 5 || d.Geom.MuxRatio() != 2 {
		t.Errorf("result design lost hybrid fields: %+v", d)
	}
	if resp.Result.Area <= 0 || resp.Result.PADP <= 0 {
		t.Errorf("area/PADP missing from result: area=%g padp=%g", resp.Result.Area, resp.Result.PADP)
	}
	if resp.Result.PADP != resp.Result.EDP*resp.Result.Area {
		t.Errorf("PADP %g != EDP·Area %g", resp.Result.PADP, resp.Result.EDP*resp.Result.Area)
	}
}

// TestHybridOptimizeEndpoint runs a small live hybrid search through the
// serving layer and checks the canonical-key separation: the same cell with
// and without the hybrid dimension must occupy distinct cache entries.
func TestHybridOptimizeEndpoint(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	plainBody := `{"capacity_bytes":128,"flavor":"lvt","method":"m2","objective":"padp"}`
	hybBody := `{"capacity_bytes":128,"flavor":"lvt","method":"m2","objective":"padp","groups":2,"mux":2}`

	code, _, body := postJSON(t, ts.URL+"/v1/optimize", plainBody)
	if code != http.StatusOK {
		t.Fatalf("plain: status %d, body %s", code, body)
	}
	var plain OptimizeResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}

	code, hdr, body := postJSON(t, ts.URL+"/v1/optimize", hybBody)
	if code != http.StatusOK {
		t.Fatalf("hybrid: status %d, body %s", code, body)
	}
	if got := hdr.Get("X-Cache"); got != "miss" {
		t.Errorf("hybrid request hit the plain request's cache entry (X-Cache %q)", got)
	}
	var hyb OptimizeResponse
	if err := json.Unmarshal(body, &hyb); err != nil {
		t.Fatal(err)
	}
	if hyb.Request.Groups != 2 || hyb.Request.Mux != 2 {
		t.Errorf("request echo lost hybrid fields: %+v", hyb.Request)
	}
	if hyb.Result.PADP > plain.Result.PADP {
		t.Errorf("hybrid optimum PADP %g worse than the pure search %g", hyb.Result.PADP, plain.Result.PADP)
	}

	// groups=1 canonicalizes to the degenerate search: same canonical key,
	// so the second request must hit the first's cache entry.
	code, hdr, _ = postJSON(t, ts.URL+"/v1/optimize",
		`{"capacity_bytes":128,"flavor":"lvt","method":"m2","objective":"padp","groups":1,"mux":1}`)
	if code != http.StatusOK {
		t.Fatalf("degenerate: status %d", code)
	}
	if got := hdr.Get("X-Cache"); got != "hit" {
		t.Errorf("groups=1/mux=1 should canonicalize onto the plain entry (X-Cache %q)", got)
	}
}

// TestCatalogServesHybridEntries is the byte-equality gate for the bumped
// (version 3) catalog format: a catalog built with hybrid group counts in
// its grid must answer hybrid /v1/optimize lookups bit-identically to a
// live search, under distinct canonical keys from the single-flavor
// entries of the same grid cell.
func TestCatalogServesHybridEntries(t *testing.T) {
	fw := framework(t)
	grid := CatalogGrid{
		CapacitiesBytes: []int{128},
		Flavors:         []string{"lvt"},
		Methods:         []string{"m2"},
		Objectives:      []string{"edp", "padp"},
		Groups:          []int{2},
	}
	withCat := New(fw, Config{})
	cat, err := withCat.BuildCatalog(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	// 2 objectives × (plain + groups=2).
	if got, want := cat.Len(), 4; got != want {
		t.Fatalf("catalog has %d entries, want %d", got, want)
	}
	withCat.SetCatalog(cat)
	live := New(fw, Config{})

	tsCat := httptest.NewServer(withCat.Handler())
	defer tsCat.Close()
	tsLive := httptest.NewServer(live.Handler())
	defer tsLive.Close()

	seen := map[string]bool{}
	for _, obj := range []string{"edp", "padp"} {
		for _, groups := range []int{0, 2} {
			body := fmt.Sprintf(`{"capacity_bytes":128,"flavor":"lvt","method":"m2","objective":%q,"groups":%d}`, obj, groups)
			code, hdr, got := postJSON(t, tsCat.URL+"/v1/optimize", body)
			if code != http.StatusOK || hdr.Get("X-Cache") != "catalog" {
				t.Fatalf("%s: status %d X-Cache %q, want 200/catalog", body, code, hdr.Get("X-Cache"))
			}
			codeLive, _, want := postJSON(t, tsLive.URL+"/v1/optimize", body)
			if codeLive != http.StatusOK {
				t.Fatalf("%s: live search failed: %d %s", body, codeLive, want)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: catalog response not bit-identical to live search", body)
			}
			if seen[string(got)] {
				t.Errorf("%s: response identical to another grid cell — canonical keys collided", body)
			}
			seen[string(got)] = true
		}
	}
}
