package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"sramco"
	"sramco/internal/array"
	"sramco/internal/mc"
	"sramco/internal/wire"
)

// maxBodyBytes bounds every request body the decoders will read; the
// request structs are small, so anything larger is abuse, not a request.
const maxBodyBytes = 1 << 20

// Request-size and workload guardrails. The service is a shared resource:
// a single request must not be able to pin a worker for minutes.
const (
	maxCapacityBytes = 1 << 20 // 1 MB array: largest capacity the search serves
	maxYieldSamples  = 20000   // Monte Carlo sample ceiling per request
)

// apiError is a structured client-visible failure: Status is the HTTP code,
// Message the body. It implements error so the handlers can return it
// through the ordinary error path.
type apiError struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

// badRequest builds a 400 apiError.
func badRequest(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Message: fmt.Sprintf(format, args...)}
}

// decodeJSON strictly decodes one JSON object from r into dst: unknown
// fields, trailing garbage and oversized bodies are all 400s, never panics.
func decodeJSON(r io.Reader, dst any) *apiError {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	// A second Decode must see EOF: one request, one object.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return badRequest("invalid request body: trailing data after JSON object")
	}
	return nil
}

// OptimizeRequest is the body of /v1/optimize and /v1/pareto.
type OptimizeRequest struct {
	CapacityBytes int    `json:"capacity_bytes"`
	Flavor        string `json:"flavor"`              // "lvt" | "hvt"
	Method        string `json:"method,omitempty"`    // "m1" | "m2" (default)
	Objective     string `json:"objective,omitempty"` // "edp" (default) | "delay" | "energy" | "area" | "padp"
	DWL           bool   `json:"dwl,omitempty"`       // also search divided-wordline segmentation

	// Groups > 1 searches hybrid cell assignments: the rows split into that
	// many groups, each free to carry flavor or its complement. 0 or 1 keep
	// the single-flavor search.
	Groups int `json:"groups,omitempty"`
	// Mux > 1 extends the search with column-mux ratios (sense-amp sharing)
	// up to this power of two. 0 or 1 search the unshared organization only.
	Mux int `json:"mux,omitempty"`

	Alpha *float64 `json:"alpha,omitempty"` // activity α, default 0.5
	Beta  *float64 `json:"beta,omitempty"`  // activity β, default 0.5
	W     int      `json:"w,omitempty"`     // access width in bits, default 64

	TimeoutMS int `json:"timeout_ms,omitempty"` // per-request deadline; capped by the server's
}

// normalize validates the request and fills defaults in place, so that two
// requests meaning the same search canonicalize to the same struct (and
// therefore the same cache key).
func (r *OptimizeRequest) normalize() *apiError {
	if r.CapacityBytes <= 0 {
		return badRequest("capacity_bytes must be positive, got %d", r.CapacityBytes)
	}
	if r.CapacityBytes > maxCapacityBytes {
		return badRequest("capacity_bytes %d exceeds the %d limit", r.CapacityBytes, maxCapacityBytes)
	}
	bits := r.CapacityBytes * 8
	if bits&(bits-1) != 0 {
		return badRequest("capacity_bytes %d must make a power-of-two bit count", r.CapacityBytes)
	}
	flavor, err := sramco.ParseFlavor(r.Flavor)
	if err != nil {
		return badRequest("%v", err)
	}
	r.Flavor = strings.ToLower(flavor.String())
	if r.Method == "" {
		r.Method = "m2"
	}
	method, err := sramco.ParseMethod(r.Method)
	if err != nil {
		return badRequest("%v", err)
	}
	r.Method = strings.ToLower(method.String())
	if _, ok := sramco.ObjectiveByName(r.Objective); !ok {
		return badRequest("unknown objective %q (want edp, delay, energy, area or padp)", r.Objective)
	}
	if r.Objective == "" {
		r.Objective = "edp"
	}
	r.Objective = strings.ToLower(r.Objective)
	if r.Groups < 0 {
		return badRequest("groups must be non-negative, got %d", r.Groups)
	}
	if r.Groups == 1 {
		r.Groups = 0 // canonical "single flavor" spelling
	}
	if r.Groups > 1 {
		if r.Groups > array.MaxGroups || r.Groups&(r.Groups-1) != 0 {
			return badRequest("groups=%d must be a power of two ≤ %d", r.Groups, array.MaxGroups)
		}
	}
	if r.Mux < 0 {
		return badRequest("mux must be non-negative, got %d", r.Mux)
	}
	if r.Mux == 1 {
		r.Mux = 0 // canonical "no sharing" spelling
	}
	if r.Mux > 1 && r.Mux&(r.Mux-1) != 0 {
		return badRequest("mux=%d must be a power of two", r.Mux)
	}
	if r.Alpha == nil {
		r.Alpha = ptr(0.5)
	}
	if r.Beta == nil {
		r.Beta = ptr(0.5)
	}
	if *r.Alpha < 0 || *r.Alpha > 1 || *r.Beta < 0 || *r.Beta > 1 {
		return badRequest("activity alpha=%g beta=%g must be within [0,1]", *r.Alpha, *r.Beta)
	}
	if r.W == 0 {
		r.W = 64
	}
	if r.W < 1 || r.W > bits {
		return badRequest("access width w=%d out of range", r.W)
	}
	if r.Groups > bits/r.W {
		// The tallest organization has bits/w rows; more groups than rows can
		// never divide evenly, so the whole search would be empty.
		return badRequest("groups=%d exceeds the %d rows of the tallest organization", r.Groups, bits/r.W)
	}
	if r.Mux > r.W {
		return badRequest("mux=%d exceeds the access width w=%d", r.Mux, r.W)
	}
	if r.TimeoutMS < 0 {
		return badRequest("timeout_ms must be non-negative, got %d", r.TimeoutMS)
	}
	return nil
}

// key returns the canonical cache key of a normalized request under the
// given endpoint prefix. The per-request deadline is deliberately excluded:
// it shapes how long a caller waits, not what is computed.
func (r *OptimizeRequest) key(endpoint string) string {
	return fmt.Sprintf("%s|cap=%d|flavor=%s|method=%s|obj=%s|dwl=%t|alpha=%g|beta=%g|w=%d|groups=%d|mux=%d",
		endpoint, r.CapacityBytes, r.Flavor, r.Method, r.Objective, r.DWL, *r.Alpha, *r.Beta, r.W, r.Groups, r.Mux)
}

// options maps a normalized request onto the search options.
func (r *OptimizeRequest) options() (sramco.Options, error) {
	flavor, err := sramco.ParseFlavor(r.Flavor)
	if err != nil {
		return sramco.Options{}, err
	}
	method, err := sramco.ParseMethod(r.Method)
	if err != nil {
		return sramco.Options{}, err
	}
	obj, ok := sramco.ObjectiveByName(r.Objective)
	if !ok {
		return sramco.Options{}, fmt.Errorf("serve: unknown objective %q", r.Objective)
	}
	o := sramco.Options{
		CapacityBits: r.CapacityBytes * 8,
		Flavor:       flavor,
		Method:       method,
		Objective:    obj,
		Activity:     sramco.Activity{Alpha: *r.Alpha, Beta: *r.Beta},
		W:            r.W,
		SearchWLSegs: r.DWL,
		HybridGroups: r.Groups,
	}
	if r.Mux > 1 {
		// The zero Space means "defaults" to Options.normalize; widening one
		// bound therefore starts from the full default space.
		sp := sramco.DefaultSearchSpace()
		sp.MuxMax = r.Mux
		o.Space = sp
	}
	return o, nil
}

// EvaluateRequest is the body of /v1/evaluate: one explicit design point.
// The assist rails VDDC/VWL default to the values the method pins for the
// flavor; VSSC defaults to 0.
type EvaluateRequest struct {
	Flavor string `json:"flavor"`
	Method string `json:"method,omitempty"` // pins the default rails

	NR     int `json:"nr"`
	NC     int `json:"nc"`
	Npre   int `json:"npre"`
	Nwr    int `json:"nwr"`
	W      int `json:"w,omitempty"`       // default min(64, nc)
	WLSegs int `json:"wl_segs,omitempty"` // default 1 (flat wordline)
	Mux    int `json:"mux,omitempty"`     // column-mux ratio; 0/1 = one SA per column pair

	// Groups/GroupMask select a hybrid cell assignment: the rows split into
	// Groups equal groups (SA-near first) and set mask bits carry the
	// complement of Flavor. Zero evaluates the single-flavor array.
	Groups    int    `json:"groups,omitempty"`
	GroupMask uint32 `json:"group_mask,omitempty"`

	VDDC *float64 `json:"vddc,omitempty"` // volts; default: method-pinned rail
	VSSC float64  `json:"vssc,omitempty"` // volts, ≤ 0
	VWL  *float64 `json:"vwl,omitempty"`  // volts; default: method-pinned rail

	Alpha *float64 `json:"alpha,omitempty"`
	Beta  *float64 `json:"beta,omitempty"`
}

func (r *EvaluateRequest) normalize() *apiError {
	flavor, err := sramco.ParseFlavor(r.Flavor)
	if err != nil {
		return badRequest("%v", err)
	}
	r.Flavor = strings.ToLower(flavor.String())
	if r.Method == "" {
		r.Method = "m2"
	}
	method, err := sramco.ParseMethod(r.Method)
	if err != nil {
		return badRequest("%v", err)
	}
	r.Method = strings.ToLower(method.String())
	if r.NR <= 0 || r.NC <= 0 {
		return badRequest("nr=%d nc=%d must be positive", r.NR, r.NC)
	}
	if r.NR*r.NC > maxCapacityBytes*8 {
		return badRequest("nr·nc = %d bits exceeds the %d limit", r.NR*r.NC, maxCapacityBytes*8)
	}
	if r.W == 0 {
		r.W = 64
		if r.NC < r.W {
			r.W = r.NC
		}
	}
	if r.WLSegs == 0 {
		r.WLSegs = 1
	}
	if r.Mux == 1 {
		r.Mux = 0 // canonical "no sharing" spelling
	}
	geom := wire.Geometry{NR: r.NR, NC: r.NC, W: r.W, Npre: r.Npre, Nwr: r.Nwr, WLSegs: r.WLSegs, Mux: r.Mux}
	if err := geom.Validate(); err != nil {
		return badRequest("%v", err)
	}
	if r.Groups < 0 {
		return badRequest("groups must be non-negative, got %d", r.Groups)
	}
	if r.Groups == 1 {
		r.Groups = 0 // canonical "single flavor" spelling
	}
	if r.Groups == 0 && r.GroupMask != 0 {
		return badRequest("group_mask=%#x requires groups", r.GroupMask)
	}
	if r.Groups > 1 {
		if r.Groups > array.MaxGroups || r.Groups&(r.Groups-1) != 0 {
			return badRequest("groups=%d must be a power of two ≤ %d", r.Groups, array.MaxGroups)
		}
		if r.NR%r.Groups != 0 {
			return badRequest("groups=%d must divide nr=%d", r.Groups, r.NR)
		}
		if r.GroupMask >= 1<<uint(r.Groups) {
			return badRequest("group_mask=%#x has bits beyond groups=%d", r.GroupMask, r.Groups)
		}
	}
	if r.VSSC > 0 {
		return badRequest("vssc=%g must be ≤ 0", r.VSSC)
	}
	if r.Alpha == nil {
		r.Alpha = ptr(0.5)
	}
	if r.Beta == nil {
		r.Beta = ptr(0.5)
	}
	if *r.Alpha < 0 || *r.Alpha > 1 || *r.Beta < 0 || *r.Beta > 1 {
		return badRequest("activity alpha=%g beta=%g must be within [0,1]", *r.Alpha, *r.Beta)
	}
	return nil
}

func (r *EvaluateRequest) key() string {
	return fmt.Sprintf("evaluate|flavor=%s|method=%s|geom=%dx%d:%d:%d:%d:%d|vddc=%s|vssc=%g|vwl=%s|alpha=%g|beta=%g|groups=%d|mask=%d|mux=%d",
		r.Flavor, r.Method, r.NR, r.NC, r.W, r.Npre, r.Nwr, r.WLSegs,
		optF(r.VDDC), r.VSSC, optF(r.VWL), *r.Alpha, *r.Beta, r.Groups, r.GroupMask, r.Mux)
}

// design assembles the array design, pinning unspecified rails from the
// framework's (flavor, method) characterization.
func (r *EvaluateRequest) design(fw *sramco.Framework) (sramco.Flavor, sramco.Design, sramco.Activity, error) {
	flavor, err := sramco.ParseFlavor(r.Flavor)
	if err != nil {
		return 0, sramco.Design{}, sramco.Activity{}, err
	}
	method, err := sramco.ParseMethod(r.Method)
	if err != nil {
		return 0, sramco.Design{}, sramco.Activity{}, err
	}
	vddc, vwl, err := fw.Rails(flavor, method)
	if err != nil {
		return 0, sramco.Design{}, sramco.Activity{}, err
	}
	if r.VDDC != nil {
		vddc = *r.VDDC
	}
	if r.VWL != nil {
		vwl = *r.VWL
	}
	d := sramco.Design{
		Geom: wire.Geometry{NR: r.NR, NC: r.NC, W: r.W, Npre: r.Npre, Nwr: r.Nwr, WLSegs: r.WLSegs, Mux: r.Mux},
		VDDC: vddc, VSSC: r.VSSC, VWL: vwl,
		Groups: r.Groups, GroupMask: r.GroupMask,
	}
	return flavor, d, sramco.Activity{Alpha: *r.Alpha, Beta: *r.Beta}, nil
}

// YieldRequest is the body of /v1/yield: a Monte Carlo margin run. With
// ?stream=1 the response is NDJSON checkpoint lines instead of one summary
// object.
type YieldRequest struct {
	Flavor  string   `json:"flavor"`
	N       int      `json:"n"`
	Seed    int64    `json:"seed,omitempty"`
	SigmaVt float64  `json:"sigma_vt,omitempty"` // default mc.DefaultSigmaVt
	Metrics []string `json:"metrics,omitempty"`  // subset of hsnm/rsnm/wm; default all

	// Sampler selects the draw sequence: "mc" (default), "sobol" or "lhs".
	Sampler string `json:"sampler,omitempty"`
	// Tilt is the importance-sampling σ inflation τ in [1, mc.MaxTilt];
	// 0 or 1 disables the tilt.
	Tilt float64 `json:"tilt,omitempty"`
	// RelCI, when positive, stops the run early once every requested
	// metric's 95% CI half-width on μ−3σ is within RelCI·|μ−3σ|; N becomes
	// the sample budget rather than an exact count.
	RelCI float64 `json:"rel_ci,omitempty"`

	TimeoutMS int `json:"timeout_ms,omitempty"`
}

func (r *YieldRequest) normalize() *apiError {
	flavor, err := sramco.ParseFlavor(r.Flavor)
	if err != nil {
		return badRequest("%v", err)
	}
	r.Flavor = strings.ToLower(flavor.String())
	if r.N < 2 {
		return badRequest("n must be ≥ 2 samples, got %d", r.N)
	}
	if r.N > maxYieldSamples {
		return badRequest("n=%d exceeds the %d sample limit", r.N, maxYieldSamples)
	}
	if r.SigmaVt < 0 {
		return badRequest("sigma_vt=%g must be non-negative", r.SigmaVt)
	}
	if r.SigmaVt == 0 {
		r.SigmaVt = mc.DefaultSigmaVt
	}
	if len(r.Metrics) == 0 {
		r.Metrics = []string{"hsnm", "rsnm", "wm"}
	}
	seen := map[string]bool{}
	for _, m := range r.Metrics {
		m = strings.ToLower(m)
		switch m {
		case "hsnm", "rsnm", "wm":
			seen[m] = true
		default:
			return badRequest("unknown metric %q (want hsnm, rsnm or wm)", m)
		}
	}
	// Canonical metric order is fixed, independent of request order.
	ordered := make([]string, 0, 3)
	for _, m := range []string{"hsnm", "rsnm", "wm"} {
		if seen[m] {
			ordered = append(ordered, m)
		}
	}
	r.Metrics = ordered
	if r.Sampler == "" {
		r.Sampler = "mc"
	}
	sampler, err := sramco.ParseMCSampler(strings.ToLower(r.Sampler))
	if err != nil {
		return badRequest("%v", err)
	}
	r.Sampler = sampler.String()
	if r.Tilt == 1 {
		r.Tilt = 0 // canonical "no tilt" spelling, so both hit one cache key
	}
	if r.Tilt != 0 && !(r.Tilt >= 1 && r.Tilt <= mc.MaxTilt) {
		return badRequest("tilt=%g must be in [1, %g]", r.Tilt, mc.MaxTilt)
	}
	if !(r.RelCI >= 0 && r.RelCI < 1) {
		return badRequest("rel_ci=%g must be in [0, 1)", r.RelCI)
	}
	if r.TimeoutMS < 0 {
		return badRequest("timeout_ms must be non-negative, got %d", r.TimeoutMS)
	}
	return nil
}

func (r *YieldRequest) key() string {
	return fmt.Sprintf("yield|flavor=%s|n=%d|seed=%d|sigma=%g|metrics=%s|sampler=%s|tilt=%g|relci=%g",
		r.Flavor, r.N, r.Seed, r.SigmaVt, strings.Join(r.Metrics, ","), r.Sampler, r.Tilt, r.RelCI)
}

// config maps a normalized request onto the Monte Carlo configuration.
func (r *YieldRequest) config() (sramco.MCConfig, error) {
	flavor, err := sramco.ParseFlavor(r.Flavor)
	if err != nil {
		return sramco.MCConfig{}, err
	}
	var metrics mc.Metric
	for _, m := range r.Metrics {
		switch m {
		case "hsnm":
			metrics |= mc.HSNM
		case "rsnm":
			metrics |= mc.RSNM
		case "wm":
			metrics |= mc.WM
		}
	}
	var sampler sramco.MCSampler
	if r.Sampler != "" { // zero value (plain MC) for requests built in code
		if sampler, err = sramco.ParseMCSampler(r.Sampler); err != nil {
			return sramco.MCConfig{}, err
		}
	}
	return sramco.MCConfig{
		Flavor:  flavor,
		N:       r.N,
		Seed:    r.Seed,
		SigmaVt: r.SigmaVt,
		Metrics: metrics,
		Sampler: sampler,
		Tilt:    r.Tilt,
	}, nil
}

// streamConfig maps a normalized request onto the streaming configuration.
func (r *YieldRequest) streamConfig() (sramco.MCStreamConfig, error) {
	cfg, err := r.config()
	if err != nil {
		return sramco.MCStreamConfig{}, err
	}
	return sramco.MCStreamConfig{Config: cfg, RelCI: r.RelCI}, nil
}

func ptr[T any](v T) *T { return &v }

// optF renders an optional float for a cache key: "-" when unset.
func optF(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%g", *v)
}

// asAPIError maps any handler error to its client-visible form.
func asAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	switch {
	case errors.Is(err, sramco.ErrInfeasible):
		return &apiError{Status: http.StatusUnprocessableEntity, Message: err.Error()}
	case errors.Is(err, errDraining):
		return &apiError{Status: http.StatusServiceUnavailable, Message: err.Error()}
	case isDeadline(err):
		return &apiError{Status: http.StatusGatewayTimeout, Message: err.Error()}
	case isCanceled(err):
		return &apiError{Status: http.StatusServiceUnavailable, Message: err.Error()}
	}
	return &apiError{Status: http.StatusInternalServerError, Message: err.Error()}
}
