package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sramco/internal/obs"
)

// syncBuffer is a bytes.Buffer safe for the handler goroutine to write
// (access log) while the test goroutine reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceEndToEnd is the tentpole's proof: one request carrying a W3C
// traceparent yields the same trace ID in the X-Request-Id response header,
// the access log line, and the /debug/trace dump — which must contain both
// the HTTP-layer span and the core search span the fill emitted.
func TestTraceEndToEnd(t *testing.T) {
	rec := obs.NewRecorder(1024)
	prev := obs.SetSink(rec)
	defer obs.SetSink(prev)

	var logBuf syncBuffer
	s := New(framework(t), Config{
		Recorder:  rec,
		AccessLog: slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize",
		strings.NewReader(`{"capacity_bytes":256,"flavor":"lvt"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// The inbound trace ID is adopted, not re-minted.
	if got := resp.Header.Get("X-Request-Id"); got != traceID {
		t.Fatalf("X-Request-Id = %q, want the inbound trace ID %q", got, traceID)
	}
	outTP, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || outTP.String() != traceID {
		t.Errorf("outbound traceparent %q does not continue the trace", resp.Header.Get("Traceparent"))
	}

	// The access log line and the recorded spans land just after the
	// response is written; poll rather than assume ordering.
	waitFor(t, "access log line with the trace ID", func() bool {
		line := logBuf.String()
		return strings.Contains(line, traceID) && strings.Contains(line, "path=/v1/optimize")
	})

	var dumps []struct {
		TraceID string `json:"trace_id"`
		Events  []struct {
			Name string `json:"name"`
		} `json:"events"`
	}
	waitFor(t, "/debug/trace to contain the request's spans", func() bool {
		r, err := http.Get(ts.URL + "/debug/trace?limit=8")
		if err != nil {
			return false
		}
		defer r.Body.Close()
		dumps = dumps[:0]
		if err := json.NewDecoder(r.Body).Decode(&dumps); err != nil {
			return false
		}
		for _, d := range dumps {
			if d.TraceID != traceID {
				continue
			}
			var gotServe, gotSearch bool
			for _, ev := range d.Events {
				gotServe = gotServe || ev.Name == "serve.request"
				gotSearch = gotSearch || ev.Name == "core.search"
			}
			return gotServe && gotSearch
		}
		return false
	})

	// A request without a traceparent gets a freshly minted, parseable ID.
	code, hdr, _ := postJSON(t, ts.URL+"/v1/optimize", `{"capacity_bytes":256,"flavor":"lvt"}`)
	if code != http.StatusOK {
		t.Fatalf("untraced request: status %d", code)
	}
	minted := hdr.Get("X-Request-Id")
	if _, ok := obs.ParseTraceID(minted); !ok || minted == traceID {
		t.Errorf("minted X-Request-Id %q invalid or reused", minted)
	}

	// Bad limit values are rejected, not silently defaulted.
	r, err := http.Get(ts.URL + "/debug/trace?limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=-1: status %d, want 400", r.StatusCode)
	}
}

// redCount reads the per-endpoint × outcome request-duration series.
func redCount(endpoint, outcome string) int64 {
	return obs.Default().HistogramCount(
		obs.LabeledName("serve.request_duration", "endpoint", endpoint, "outcome", outcome))
}

// TestREDSeriesPerEndpointOutcome drives one endpoint through its outcomes
// — cold miss, warm hit, catalog answer, client error — and asserts each
// lands in a differently-labeled series of the same family, with the error
// counter moving only for the error.
func TestREDSeriesPerEndpointOutcome(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const ep = "/v1/optimize"
	body := `{"capacity_bytes":512,"flavor":"hvt"}`
	base := map[string]int64{}
	for _, oc := range []string{"miss", "hit", "catalog", "error"} {
		base[oc] = redCount(ep, oc)
	}
	errsBefore := obs.Default().CounterValue(
		obs.LabeledName("serve.request_errors", "endpoint", ep))

	expect := func(what, oc string, want int64) {
		t.Helper()
		waitFor(t, what, func() bool { return redCount(ep, oc)-base[oc] == want })
	}

	if code, _, b := postJSON(t, ts.URL+ep, body); code != http.StatusOK {
		t.Fatalf("cold request: %d %s", code, b)
	}
	expect("cold request in the miss series", "miss", 1)

	if code, hdr, _ := postJSON(t, ts.URL+ep, body); code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("warm request not a hit")
	}
	expect("warm request in the hit series", "hit", 1)
	expect("warm request not in the miss series", "miss", 1)

	// Install a catalog covering this request: same key, new tier, new label.
	cat, err := s.BuildCatalog(context.Background(), CatalogGrid{
		CapacitiesBytes: []int{512},
		Flavors:         []string{"hvt"},
		Methods:         []string{"m2"},
		Objectives:      []string{"edp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetCatalog(cat)
	if code, hdr, _ := postJSON(t, ts.URL+ep, body); code != http.StatusOK || hdr.Get("X-Cache") != "catalog" {
		t.Fatalf("catalog request: code %d X-Cache %q", code, hdr.Get("X-Cache"))
	}
	expect("catalog answer in the catalog series", "catalog", 1)

	if code, _, _ := postJSON(t, ts.URL+ep, `{"capacity_bytes":`); code != http.StatusBadRequest {
		t.Fatalf("malformed request: %d, want 400", code)
	}
	expect("bad request in the error series", "error", 1)
	waitFor(t, "endpoint error counter", func() bool {
		return obs.Default().CounterValue(
			obs.LabeledName("serve.request_errors", "endpoint", ep))-errsBefore == 1
	})
}

// TestProbeAndUnknownEndpointLabels pins the satellite decision: /healthz
// and /metrics get their own labeled series (not mixed into /v1/*, not
// dropped), unknown paths collapse into "other", and probe traffic stays
// out of the access log.
func TestProbeAndUnknownEndpointLabels(t *testing.T) {
	var logBuf syncBuffer
	s := New(framework(t), Config{AccessLog: slog.New(slog.NewTextHandler(&logBuf, nil))})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	healthBefore := redCount("/healthz", "ok")
	metricsBefore := redCount("/metrics", "ok")
	otherBefore := redCount("other", "error")

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d, want 404", resp.StatusCode)
	}

	waitFor(t, "healthz probe in its own series", func() bool {
		return redCount("/healthz", "ok")-healthBefore == 1
	})
	waitFor(t, "metrics scrape in its own series", func() bool {
		return redCount("/metrics", "ok")-metricsBefore == 1
	})
	waitFor(t, "unknown path in the other series", func() bool {
		return redCount("other", "error")-otherBefore == 1
	})

	// Probe traffic must not reach the access log; the 404 must.
	waitFor(t, "404 in the access log", func() bool {
		return strings.Contains(logBuf.String(), "/no/such/path")
	})
	if log := logBuf.String(); strings.Contains(log, "/healthz") || strings.Contains(log, "path=/metrics") {
		t.Errorf("probe traffic leaked into the access log:\n%s", log)
	}
}

// TestPromExposesLabeledSeriesAndRuntimeGauges checks the scrape surface:
// the per-endpoint histograms render as one family with real labels, and
// the runtime gauges are sampled on scrape.
func TestPromExposesLabeledSeriesAndRuntimeGauges(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Traffic so the optimize series is non-empty.
	postJSON(t, ts.URL+"/v1/optimize", optimizeBody)

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	prom := out.String()

	for _, want := range []string{
		"# TYPE serve_request_duration_seconds histogram",
		`serve_request_duration_seconds_count{endpoint="/v1/optimize",outcome="miss"}`,
		`serve_request_duration_seconds_bucket{endpoint="/v1/optimize",outcome="miss",le="+Inf"}`,
		"# TYPE runtime_goroutines gauge",
		"# TYPE runtime_heap_alloc_bytes gauge",
		"# TYPE serve_request_errors counter",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	// One TYPE line for the whole request_duration family, not one per series.
	if n := strings.Count(prom, "# TYPE serve_request_duration_seconds histogram"); n != 1 {
		t.Errorf("request_duration family has %d TYPE lines, want 1", n)
	}
	// Runtime gauges are sampled on scrape: goroutines is never zero in a
	// running process.
	if strings.Contains(prom, "runtime_goroutines 0\n") {
		t.Error("runtime_goroutines not sampled on scrape")
	}
}

// TestBatchItemsLandInSubEndpointSeries verifies per-line batch accounting:
// items are recorded under /v1/batch:<op>, separate from the envelope.
func TestBatchItemsLandInSubEndpointSeries(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	evBefore := redCount("/v1/batch:evaluate", "miss")
	envBefore := redCount("/v1/batch", "ok")

	body := `{"op":"evaluate","flavor":"hvt","nr":64,"nc":128,"npre":2,"nwr":2}` + "\n" +
		`{"op":"evaluate","flavor":"hvt","nr":64,"nc":128,"npre":2,"nwr":4}` + "\n"
	resp, err := http.Post(ts.URL+"/v1/batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	_, _ = sink.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, sink.String())
	}

	waitFor(t, "batch items in the sub-endpoint series", func() bool {
		return redCount("/v1/batch:evaluate", "miss")-evBefore == 2
	})
	waitFor(t, "batch envelope in its own series", func() bool {
		return redCount("/v1/batch", "ok")-envBefore == 1
	})
}
