package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sramco"
)

// fuzzServer builds a Server whose heavy compute functions are replaced by
// canned results from one real tiny run each, so the fuzzer exercises the
// full decode → normalize → canonical-key → respond path at decoder speed.
// The /v1/evaluate path stays fully real (a single model evaluation is
// microseconds).
func fuzzServer(f *testing.F) *Server {
	f.Helper()
	fw := framework(f)
	s := New(fw, Config{})

	oreq := OptimizeRequest{CapacityBytes: 128, Flavor: "hvt"}
	if aerr := oreq.normalize(); aerr != nil {
		f.Fatalf("seed optimize request: %v", aerr)
	}
	opts, err := oreq.options()
	if err != nil {
		f.Fatal(err)
	}
	opt, err := fw.OptimizeWithContext(context.Background(), opts)
	if err != nil {
		f.Fatalf("seed optimize: %v", err)
	}
	pareto, err := fw.ParetoSearchContext(context.Background(), opts)
	if err != nil {
		f.Fatalf("seed pareto: %v", err)
	}
	yreq := YieldRequest{Flavor: "hvt", N: 16}
	if aerr := yreq.normalize(); aerr != nil {
		f.Fatalf("seed yield request: %v", aerr)
	}
	ycfg, err := yreq.config()
	if err != nil {
		f.Fatal(err)
	}
	yres, err := sramco.MonteCarloYieldContext(context.Background(), ycfg)
	if err != nil {
		f.Fatalf("seed yield: %v", err)
	}

	s.optimizeFn = func(context.Context, sramco.Options) (*sramco.Optimum, error) { return opt, nil }
	s.paretoFn = func(context.Context, sramco.Options) (*sramco.ParetoResult, error) { return pareto, nil }
	s.yieldFn = func(context.Context, sramco.MCConfig) (*sramco.MCResult, error) { return yres, nil }
	return s
}

// FuzzDecodeRequest throws arbitrary bodies at every /v1/* endpoint. The
// contract under fuzz: the handler stack never panics, success responses are
// valid JSON, and every rejection is a structured error envelope with a
// 4xx/5xx status — malformed input must surface as a 400-class error, not a
// crash.
func FuzzDecodeRequest(f *testing.F) {
	s := fuzzServer(f)
	h := s.Handler()
	paths := []string{"/v1/optimize", "/v1/evaluate", "/v1/pareto", "/v1/yield"}

	seeds := []struct {
		which uint8
		body  string
	}{
		{0, `{"capacity_bytes":128,"flavor":"hvt"}`},
		{0, `{"capacity_bytes":128,"flavor":"HVT","method":"M2","objective":"edp","alpha":0.5,"beta":0.5,"w":64,"timeout_ms":50}`},
		{1, `{"nr":32,"nc":64,"w":32,"flavor":"lvt","method":"m2"}`},
		{2, `{"capacity_bytes":1024,"flavor":"lvt","method":"m2"}`},
		{3, `{"flavor":"hvt","n":16,"seed":7,"metrics":["hsnm","wm"]}`},
		{0, ``},                                   // empty body
		{0, `{`},                                  // truncated JSON
		{0, `null`},                               // JSON null
		{0, `[]`},                                 // wrong top-level type
		{0, `{"capacity_bytes":128}{"x":1}`},      // trailing data
		{0, `{"capacity_bytes":-5}`},              // negative capacity
		{0, `{"capacity_bytes":1e30}`},            // overflow
		{0, `{"capacity_bytes":128,"bogus":1}`},   // unknown field
		{0, `{"capacity_bytes":128,"w":-1}`},      // invalid width
		{0, `{"capacity_bytes":128,"alpha":2}`},   // activity out of range
		{1, `{"nr":0,"nc":0}`},                    // degenerate geometry
		{1, `{"nr":32,"nc":64,"vddc":-3}`},        // implausible rail
		{3, `{"flavor":"hvt","n":1}`},             // too few samples
		{3, `{"flavor":"hvt","n":999999999}`},     // absurd sample count
		{3, `{"flavor":"hvt","metrics":["bad"]}`}, // unknown metric
		{0, `{"capacity_bytes":1024,"flavor":"lvt","objective":"padp","groups":8,"mux":4}`},
		{0, `{"capacity_bytes":1024,"flavor":"hvt","objective":"area"}`},
		{0, `{"capacity_bytes":128,"flavor":"hvt","groups":3}`},                 // non-power-of-two groups
		{0, `{"capacity_bytes":128,"flavor":"hvt","w":64,"groups":8}`},          // groups exceed the tallest organization's rows
		{0, `{"capacity_bytes":128,"flavor":"hvt","mux":3}`},                    // non-power-of-two mux
		{0, `{"capacity_bytes":128,"flavor":"hvt","mux":-2}`},                   // negative mux
		{0, `{"capacity_bytes":1024,"flavor":"lvt","w":16,"mux":32}`},           // mux wider than the access width
		{1, `{"nr":32,"nc":64,"w":32,"flavor":"lvt","method":"m2","mux":2,"groups":4,"group_mask":5}`},
		{1, `{"nr":32,"nc":64,"w":32,"flavor":"lvt","method":"m2","group_mask":3}`}, // mask without groups
		{1, `{"nr":36,"nc":64,"w":32,"flavor":"lvt","method":"m2","groups":8}`},     // rows not divisible by groups
	}
	for _, s := range seeds {
		f.Add(s.which, []byte(s.body))
	}

	f.Fuzz(func(t *testing.T, which uint8, body []byte) {
		path := paths[int(which)%len(paths)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // a panic here is a fuzz failure

		res := rec.Result()
		defer res.Body.Close()
		if res.StatusCode == http.StatusOK {
			var v map[string]any
			if err := json.NewDecoder(res.Body).Decode(&v); err != nil {
				t.Fatalf("%s: 200 with unparseable body: %v", path, err)
			}
			return
		}
		if res.StatusCode < 400 || res.StatusCode > 599 {
			t.Fatalf("%s: unexpected status %d for body %q", path, res.StatusCode, body)
		}
		var env struct {
			Error struct {
				Status  int    `json:"status"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
			t.Fatalf("%s: status %d without structured envelope (body %q): %v",
				path, res.StatusCode, rec.Body.Bytes(), err)
		}
		if env.Error.Message == "" || env.Error.Status != res.StatusCode {
			t.Fatalf("%s: malformed envelope %+v for status %d", path, env.Error, res.StatusCode)
		}
	})
}

// FuzzDecodeBatch throws arbitrary NDJSON bodies at the /v1/batch decoder.
// The contract: decodeBatch never panics; it either rejects the whole batch
// with a 400 apiError or returns at least one item, and every returned item
// is internally consistent — op-tagged with exactly the matching request
// populated, and a canonical key that is stable under re-normalization.
func FuzzDecodeBatch(f *testing.F) {
	seeds := []string{
		`{"op":"optimize","capacity_bytes":128,"flavor":"hvt"}`,
		`{"op":"evaluate","flavor":"hvt","nr":32,"nc":32,"npre":1,"nwr":1}`,
		`{"op":"pareto","capacity_bytes":1024,"flavor":"lvt","method":"m1"}`,
		"{\"op\":\"optimize\",\"capacity_bytes\":128,\"flavor\":\"HVT\",\"timeout_ms\":50}\n\n{\"op\":\"evaluate\",\"flavor\":\"lvt\",\"nr\":16,\"nc\":16,\"npre\":1,\"nwr\":1}",
		"",
		"\n\n",
		"nope",
		`{"op":"optimize"`,
		`{"op":""}`,
		`{"op":"yield","flavor":"hvt"}`,
		`{"capacity_bytes":128,"flavor":"hvt"}`,
		`{"op":"optimize","capacity_bytes":-1}`,
		`{"op":"optimize","capacity_bytes":128,"flavor":"hvt","bogus":true}`,
		`{"op":"evaluate","nr":0,"nc":0}`,
		"{\"op\":\"optimize\",\"capacity_bytes\":128,\"flavor\":\"hvt\"}\nnull",
		`{"op":3}`,
		`{"op":"optimize","capacity_bytes":1024,"flavor":"lvt","objective":"padp","groups":4,"mux":2}`,
		`{"op":"evaluate","flavor":"lvt","nr":32,"nc":32,"npre":1,"nwr":1,"groups":2,"group_mask":1,"mux":2}`,
		`{"op":"optimize","capacity_bytes":128,"flavor":"hvt","groups":3}`,
		`{"op":"evaluate","flavor":"lvt","nr":32,"nc":32,"npre":1,"nwr":1,"group_mask":7}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		items, aerr := decodeBatch(bytes.NewReader(body)) // a panic here is a fuzz failure
		if aerr != nil {
			if aerr.Status != http.StatusBadRequest || aerr.Message == "" {
				t.Fatalf("decode error = %+v, want populated 400", aerr)
			}
			return
		}
		if len(items) == 0 {
			t.Fatal("nil error with zero items")
		}
		for i, it := range items {
			switch it.op {
			case "optimize", "pareto":
				if it.opt == nil || it.ev != nil {
					t.Fatalf("item %d: op %q with wrong request population", i, it.op)
				}
				if it.opt.TimeoutMS != 0 {
					t.Fatalf("item %d: per-item deadline survived decode", i)
				}
				req := *it.opt
				if aerr := req.normalize(); aerr != nil || req.key(it.op) != it.key() {
					t.Fatalf("item %d: key not stable under re-normalization (%v)", i, aerr)
				}
			case "evaluate":
				if it.ev == nil || it.opt != nil {
					t.Fatalf("item %d: op %q with wrong request population", i, it.op)
				}
				req := *it.ev
				if aerr := req.normalize(); aerr != nil || req.key() != it.key() {
					t.Fatalf("item %d: key not stable under re-normalization (%v)", i, aerr)
				}
			default:
				t.Fatalf("item %d: unexpected op %q", i, it.op)
			}
		}
	})
}
