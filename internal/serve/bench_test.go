package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServeOptimizeCached measures the hot serving path: a fully
// cached /v1/optimize request through the real handler stack (decode,
// normalize, canonical key, LRU hit, write). The first request fills the
// cache outside the timed loop.
func BenchmarkServeOptimizeCached(b *testing.B) {
	s := New(framework(b), Config{})
	warm := httptest.NewRequest(http.MethodPost, "/v1/optimize", strings.NewReader(optimizeBody))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm-up fill failed: %d %s", rec.Code, rec.Body.String())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", strings.NewReader(optimizeBody))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// BenchmarkServeOptimizeCatalogHit measures the fastest tier of the read
// path with the full observability middleware in front: decode, normalize,
// canonical key, catalog lookup, write — plus trace minting, the RED
// histogram observe and the response headers. This is the guarded serving
// benchmark: the middleware must stay within the bench-compare gate of the
// pre-middleware baseline.
func BenchmarkServeOptimizeCatalogHit(b *testing.B) {
	s := New(framework(b), Config{})
	cat, err := s.BuildCatalog(context.Background(), CatalogGrid{
		CapacitiesBytes: []int{128},
		Flavors:         []string{"hvt"},
		Methods:         []string{"m2"},
		Objectives:      []string{"edp"},
	})
	if err != nil {
		b.Fatal(err)
	}
	s.SetCatalog(cat)

	warm := httptest.NewRequest(http.MethodPost, "/v1/optimize", strings.NewReader(optimizeBody))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "catalog" {
		b.Fatalf("warm-up: code %d X-Cache %q, want a catalog answer", rec.Code, rec.Header().Get("X-Cache"))
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", strings.NewReader(optimizeBody))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
