package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServeOptimizeCached measures the hot serving path: a fully
// cached /v1/optimize request through the real handler stack (decode,
// normalize, canonical key, LRU hit, write). The first request fills the
// cache outside the timed loop.
func BenchmarkServeOptimizeCached(b *testing.B) {
	s := New(framework(b), Config{})
	warm := httptest.NewRequest(http.MethodPost, "/v1/optimize", strings.NewReader(optimizeBody))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm-up fill failed: %d %s", rec.Code, rec.Body.String())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", strings.NewReader(optimizeBody))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
