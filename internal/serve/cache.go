package serve

import (
	"container/list"
	"sync"
)

// cached is one cacheable response: the HTTP status plus the exact bytes
// written to the first caller. Deterministic failures (422 infeasible
// envelopes) cache exactly like successes — the status rides along so a hit
// replays the original response verbatim.
type cached struct {
	status int
	body   []byte
}

// lruCache is a bounded least-recently-used cache from canonical request
// keys to marshaled responses. Storing the exact bytes written to the
// first caller guarantees every later hit is bit-identical to the original
// response. Safe for concurrent use.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	res cached
}

// newLRUCache returns a cache bounded to capacity entries; capacity ≤ 0
// disables caching (every Get misses, every Put is dropped).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached response for key and marks it most recently used.
func (c *lruCache) Get(key string) (cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return cached{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// Put stores res under key, evicting the least recently used entry when
// the cache is full. The caller must not mutate res.body afterwards.
func (c *lruCache) Put(key string, res cached) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).res = res
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
