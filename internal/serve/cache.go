package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded least-recently-used cache from canonical request
// keys to marshaled response bodies. Storing the exact bytes written to the
// first caller guarantees every later hit is bit-identical to the original
// response. Safe for concurrent use.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key  string
	body []byte
}

// newLRUCache returns a cache bounded to capacity entries; capacity ≤ 0
// disables caching (every Get misses, every Put is dropped).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached body for key and marks it most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// Put stores body under key, evicting the least recently used entry when
// the cache is full. The caller must not mutate body afterwards.
func (c *lruCache) Put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).body = body
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
